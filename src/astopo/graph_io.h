// Annotated AS-graph serialization — the artifact ASAP bootstraps build
// from BGP data and disseminate to every surrogate (paper Sec. 6.1 duties
// 1 & 3; Sec. 6.3 sizes it at ~800 KB for the 2005 Internet).
//
// Line format, one edge per line, ASNs in wire numbers:
//
//   E|<asn_a>|<asn_b>|<p2c|c2p|peer|sibling>     # relationship seen from a
//
// plus one node line per AS so isolated nodes and tiers survive:
//
//   N|<asn>|<1|2|3>                              # tier
#pragma once

#include <string>
#include <string_view>

#include "astopo/as_graph.h"
#include "common/expected.h"

namespace asap::astopo {

// Serializes nodes and annotated edges (geo coordinates are synthetic-world
// metadata and deliberately not part of the dissemination format).
std::string serialize_graph(const AsGraph& graph);

// Parses the text form back into a graph. Node ids are assigned in file
// order; edges reference ASNs and must follow their node lines.
Expected<AsGraph> parse_graph(std::string_view text);

}  // namespace asap::astopo
