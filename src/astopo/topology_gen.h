// Synthetic Internet-like AS topology generator.
//
// Substitutes for the paper's RouteViews/RIPE/CERNET BGP snapshot
// (2005-09-26: 20,955 ASes, 56,907 links). The generator reproduces the
// structural properties ASAP depends on:
//   * a strict customer/provider hierarchy with a tier-1 peering clique, so
//     valley-free routing is meaningful;
//   * multi-homed stub ASes whose provider sets span different hierarchies —
//     the paper's Fig. 4(right) shortcut scenario;
//   * geographic clustering (continents), so AS-hop count and latency
//     correlate (paper property 3);
//   * heavy-tailed degree distribution via preferential provider attachment.
#pragma once

#include <cstdint>
#include <vector>

#include "astopo/as_graph.h"
#include "common/rng.h"

namespace asap::astopo {

struct TopologyParams {
  std::size_t total_as = 6000;
  std::size_t tier1_count = 12;
  double tier2_fraction = 0.15;
  std::size_t continents = 6;
  // Half-axes of the ellipse the continent centres sit on, in km. Sized so
  // the farthest centre pair is ~12,000 km (~60 ms one-way propagation),
  // matching transpacific Internet paths.
  double continent_radius_x_km = 3600.0;
  double continent_radius_y_km = 1800.0;
  // Zipf skew of the AS-to-continent assignment (0 = uniform). The 2005
  // peer population was strongly concentrated in North America/Europe.
  double continent_zipf_s = 0.8;
  // Scatter of AS positions around their continent centre, in km.
  double continent_sigma_km = 800.0;
  // Probability that a provider is chosen on the same continent.
  double same_continent_provider_bias = 0.9;
  // Fraction of stub ASes with >= 2 providers (multi-homed).
  double stub_multihoming_fraction = 0.45;
  // Probability of a peering link between two tier-2 ASes on the same
  // continent (scaled by degree).
  double tier2_peering_prob = 0.08;
  // Expected number of stub-to-stub / stub-to-tier2 IXP-style peering links
  // per 100 stubs.
  double stub_peering_per_100 = 4.0;
};

struct Topology {
  AsGraph graph;
  std::vector<AsId> tier1;
  std::vector<AsId> tier2;
  std::vector<AsId> stubs;
  std::vector<GeoPoint> continent_centers;
};

// Generates a topology; deterministic given the RNG state.
Topology generate_topology(const TopologyParams& params, Rng& rng);

// Great-circle-ish distance on the synthetic map (plain Euclidean; the map
// is a plane sized like an unrolled Earth).
double geo_distance_km(const GeoPoint& a, const GeoPoint& b);

}  // namespace asap::astopo
