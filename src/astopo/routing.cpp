#include "astopo/routing.h"

#include <cassert>
#include <deque>

namespace asap::astopo {

std::vector<AsId> RouteTable::path(AsId src) const {
  std::vector<AsId> result;
  if (!reachable(src)) return result;
  AsId cur = src;
  result.push_back(cur);
  while (cur != dest_) {
    const RouteEntry& e = entries_[cur.value()];
    assert(e.next_hop.valid());
    cur = e.next_hop;
    result.push_back(cur);
    assert(result.size() <= entries_.size());  // no loops in a correct table
  }
  return result;
}

RouteTable compute_routes(const AsGraph& graph, AsId dest) {
  const auto n = graph.as_count();
  std::vector<RouteEntry> entries(n);

  auto cls = [&](AsId a) { return entries[a.value()].cls; };
  auto hops = [&](AsId a) { return entries[a.value()].hops; };

  // Phase 1: customer routes. BFS from dest following "neighbor is my
  // provider" links: if x has a customer route (or is dest), every provider
  // of x learns a customer route through x. Sibling links propagate within
  // the same class.
  entries[dest.value()] = RouteEntry{RouteClass::kSelf, 0, AsId::invalid(), 0xFFFFFFFFu};
  std::deque<AsId> queue{dest};
  while (!queue.empty()) {
    AsId x = queue.front();
    queue.pop_front();
    for (const auto& adj : graph.neighbors(x)) {
      if (!graph.edge_enabled(adj.edge_id)) continue;  // withdrawn (route flap)
      if (adj.type != LinkType::kToProvider && adj.type != LinkType::kToSibling) continue;
      AsId y = adj.neighbor;
      if (cls(y) != RouteClass::kUnreachable) continue;
      entries[y.value()].cls = RouteClass::kCustomer;
      entries[y.value()].hops = static_cast<std::uint8_t>(hops(x) + 1);
      queue.push_back(y);
    }
  }

  // Phase 2: peer routes. An AS whose selected route is a customer route (or
  // dest itself) exports it across peering links; the receiver uses it only
  // if it has no customer route of its own.
  for (std::uint32_t i = 0; i < n; ++i) {
    AsId y(i);
    if (cls(y) != RouteClass::kUnreachable) continue;
    std::uint8_t best = 0xFF;
    for (const auto& adj : graph.neighbors(y)) {
      if (!graph.edge_enabled(adj.edge_id)) continue;
      if (adj.type != LinkType::kToPeer) continue;
      RouteClass xc = cls(adj.neighbor);
      if (xc != RouteClass::kSelf && xc != RouteClass::kCustomer) continue;
      std::uint8_t candidate = static_cast<std::uint8_t>(hops(adj.neighbor) + 1);
      best = std::min(best, candidate);
    }
    if (best != 0xFF) {
      entries[i].cls = RouteClass::kPeer;
      entries[i].hops = best;
    }
  }

  // Phase 3: provider routes. Every routed AS exports its selected route to
  // its customers; relax downhill in increasing hop order (bucket queue).
  std::vector<std::vector<AsId>> buckets(256);
  for (std::uint32_t i = 0; i < n; ++i) {
    AsId y(i);
    if (cls(y) != RouteClass::kUnreachable) buckets[hops(y)].push_back(y);
  }
  for (std::size_t h = 0; h + 1 < buckets.size(); ++h) {
    for (std::size_t qi = 0; qi < buckets[h].size(); ++qi) {
      AsId x = buckets[h][qi];
      if (hops(x) != h) continue;  // stale bucket entry
      for (const auto& adj : graph.neighbors(x)) {
        if (!graph.edge_enabled(adj.edge_id)) continue;
        if (adj.type != LinkType::kToCustomer && adj.type != LinkType::kToSibling) continue;
        AsId y = adj.neighbor;
        auto candidate = static_cast<std::uint8_t>(h + 1);
        RouteEntry& ye = entries[y.value()];
        if (ye.cls == RouteClass::kUnreachable ||
            (ye.cls == RouteClass::kProvider && candidate < ye.hops)) {
          ye.cls = RouteClass::kProvider;
          ye.hops = candidate;
          buckets[candidate].push_back(y);
        }
      }
    }
  }

  // Final pass: deterministic next-hop selection (min neighbor ASN among
  // equally good candidates) plus the edge id toward it.
  for (std::uint32_t i = 0; i < n; ++i) {
    AsId y(i);
    RouteEntry& ye = entries[i];
    if (ye.cls == RouteClass::kUnreachable || ye.cls == RouteClass::kSelf) continue;
    std::uint32_t best_asn = 0xFFFFFFFFu;
    for (const auto& adj : graph.neighbors(y)) {
      if (!graph.edge_enabled(adj.edge_id)) continue;
      AsId x = adj.neighbor;
      const RouteEntry& xe = entries[x.value()];
      if (xe.cls == RouteClass::kUnreachable) continue;
      if (xe.hops + 1 != ye.hops) continue;
      bool usable = false;
      switch (ye.cls) {
        case RouteClass::kCustomer:
          usable = (adj.type == LinkType::kToCustomer || adj.type == LinkType::kToSibling) &&
                   (xe.cls == RouteClass::kSelf || xe.cls == RouteClass::kCustomer);
          break;
        case RouteClass::kPeer:
          usable = adj.type == LinkType::kToPeer &&
                   (xe.cls == RouteClass::kSelf || xe.cls == RouteClass::kCustomer);
          break;
        case RouteClass::kProvider:
          usable = adj.type == LinkType::kToProvider || adj.type == LinkType::kToSibling;
          break;
        default:
          break;
      }
      if (!usable) continue;
      std::uint32_t asn = graph.node(x).asn;
      if (asn < best_asn) {
        best_asn = asn;
        ye.next_hop = x;
        ye.next_edge = adj.edge_id;
      }
    }
    assert(ye.next_hop.valid());
  }

  return RouteTable(dest, std::move(entries));
}

std::vector<AsId> as_path(const AsGraph& graph, AsId src, AsId dest) {
  return compute_routes(graph, dest).path(src);
}

}  // namespace asap::astopo
