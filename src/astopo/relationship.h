// AS-to-AS link relationships and the valley-free path state machine.
//
// Inter-AS routing is constrained by commercial contracts (Gao 2001): a
// provider transits traffic for its customers, peers exchange only their own
// and customer routes, and customers never transit for providers. A legal
// ("valley-free") AS path is therefore
//
//     (customer->provider)*  (peer-peer)?  (provider->customer)*
//
// with sibling links transparent. Both the BGP routing simulation
// (routing.h) and ASAP's close-cluster BFS (valley_free.h) share the
// transition rules defined here so substrate and protocol cannot disagree
// about what a legal path is.
#pragma once

#include <cstdint>
#include <string_view>

namespace asap::astopo {

// Type of a *directed* adjacency entry, relative to the "from" AS.
enum class LinkType : std::uint8_t {
  kToProvider = 0,  // from is a customer of the neighbor (uphill)
  kToCustomer = 1,  // from is a provider of the neighbor (downhill)
  kToPeer = 2,      // settlement-free peering (flat)
  kToSibling = 3,   // same organization (transparent)
};

// Returns the link type seen from the other endpoint.
constexpr LinkType reverse(LinkType t) {
  switch (t) {
    case LinkType::kToProvider: return LinkType::kToCustomer;
    case LinkType::kToCustomer: return LinkType::kToProvider;
    case LinkType::kToPeer: return LinkType::kToPeer;
    case LinkType::kToSibling: return LinkType::kToSibling;
  }
  return LinkType::kToPeer;  // unreachable
}

constexpr std::string_view link_type_name(LinkType t) {
  switch (t) {
    case LinkType::kToProvider: return "to-provider";
    case LinkType::kToCustomer: return "to-customer";
    case LinkType::kToPeer: return "to-peer";
    case LinkType::kToSibling: return "to-sibling";
  }
  return "?";
}

// Phase of a partially built valley-free path.
enum class PathState : std::uint8_t {
  kUp = 0,    // crossed only uphill/sibling links so far (includes the start)
  kPeer = 1,  // crossed exactly one peer link
  kDown = 2,  // crossed at least one downhill link
};

// Whether a path currently in `state` may cross a link of type `t`, and the
// state after crossing. Returns false when the extension would form a valley.
constexpr bool can_extend(PathState state, LinkType t, PathState& next) {
  switch (state) {
    case PathState::kUp:
      switch (t) {
        case LinkType::kToProvider: next = PathState::kUp; return true;
        case LinkType::kToPeer: next = PathState::kPeer; return true;
        case LinkType::kToCustomer: next = PathState::kDown; return true;
        case LinkType::kToSibling: next = PathState::kUp; return true;
      }
      return false;
    case PathState::kPeer:
      switch (t) {
        case LinkType::kToCustomer: next = PathState::kDown; return true;
        case LinkType::kToSibling: next = PathState::kPeer; return true;
        case LinkType::kToProvider:
        case LinkType::kToPeer: return false;
      }
      return false;
    case PathState::kDown:
      switch (t) {
        case LinkType::kToCustomer: next = PathState::kDown; return true;
        case LinkType::kToSibling: next = PathState::kDown; return true;
        case LinkType::kToProvider:
        case LinkType::kToPeer: return false;
      }
      return false;
  }
  return false;
}

}  // namespace asap::astopo
