#include "astopo/as_graph.h"

#include <cassert>

namespace asap::astopo {

AsId AsGraph::add_as(std::uint32_t asn, AsTier tier, GeoPoint geo) {
  AsId id(static_cast<std::uint32_t>(nodes_.size()));
  nodes_.push_back(AsNode{asn, tier, geo});
  adjacency_.emplace_back();
  return id;
}

std::uint32_t AsGraph::add_edge(AsId a, AsId b, LinkType type_from_a) {
  assert(a.valid() && b.valid() && a != b);
  assert(a.value() < nodes_.size() && b.value() < nodes_.size());
  auto edge_id = static_cast<std::uint32_t>(edge_endpoints_.size());
  edge_endpoints_.emplace_back(a, b);
  adjacency_[a.value()].push_back(AsAdjacency{b, type_from_a, edge_id});
  adjacency_[b.value()].push_back(AsAdjacency{a, reverse(type_from_a), edge_id});
  return edge_id;
}

void AsGraph::set_edge_enabled(std::uint32_t edge_id, bool enabled) {
  assert(edge_id < edge_endpoints_.size());
  if (edge_enabled_.empty()) edge_enabled_.assign(edge_endpoints_.size(), 1);
  // add_edge after the first flap keeps the vector in step.
  edge_enabled_.resize(edge_endpoints_.size(), 1);
  edge_enabled_[edge_id] = enabled ? 1 : 0;
}

void AsGraph::set_edge_type(std::uint32_t edge_id, LinkType type_from_a) {
  assert(edge_id < edge_endpoints_.size());
  auto [a, b] = edge_endpoints_[edge_id];
  for (auto& adj : adjacency_[a.value()]) {
    if (adj.edge_id == edge_id) adj.type = type_from_a;
  }
  for (auto& adj : adjacency_[b.value()]) {
    if (adj.edge_id == edge_id) adj.type = reverse(type_from_a);
  }
}

LinkType AsGraph::edge_type(std::uint32_t edge_id) const {
  auto [a, b] = edge_endpoints_[edge_id];
  for (const auto& adj : adjacency_[a.value()]) {
    if (adj.edge_id == edge_id) return adj.type;
  }
  return LinkType::kToPeer;  // unreachable: every edge has an adjacency entry
}

std::optional<AsId> AsGraph::find_by_asn(std::uint32_t asn) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].asn == asn) return AsId(static_cast<std::uint32_t>(i));
  }
  return std::nullopt;
}

std::optional<LinkType> AsGraph::link_between(AsId a, AsId b) const {
  for (const auto& adj : neighbors(a)) {
    if (adj.neighbor == b) return adj.type;
  }
  return std::nullopt;
}

bool AsGraph::validate() const {
  for (std::size_t i = 0; i < adjacency_.size(); ++i) {
    AsId a(static_cast<std::uint32_t>(i));
    for (const auto& adj : adjacency_[i]) {
      if (!adj.neighbor.valid() || adj.neighbor.value() >= nodes_.size()) return false;
      if (adj.edge_id >= edge_endpoints_.size()) return false;
      auto [ea, eb] = edge_endpoints_[adj.edge_id];
      if (!((ea == a && eb == adj.neighbor) || (ea == adj.neighbor && eb == a))) return false;
      // Find the mirror entry.
      bool found = false;
      for (const auto& back : adjacency_[adj.neighbor.value()]) {
        if (back.edge_id == adj.edge_id && back.neighbor == a) {
          if (back.type != reverse(adj.type)) return false;
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
  }
  return true;
}

}  // namespace asap::astopo
