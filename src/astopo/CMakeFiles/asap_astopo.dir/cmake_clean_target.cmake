file(REMOVE_RECURSE
  "libasap_astopo.a"
)
