# Empty dependencies file for asap_astopo.
# This may be replaced when dependencies are built.
