file(REMOVE_RECURSE
  "CMakeFiles/asap_astopo.dir/as_graph.cpp.o"
  "CMakeFiles/asap_astopo.dir/as_graph.cpp.o.d"
  "CMakeFiles/asap_astopo.dir/bgp_table.cpp.o"
  "CMakeFiles/asap_astopo.dir/bgp_table.cpp.o.d"
  "CMakeFiles/asap_astopo.dir/gao_inference.cpp.o"
  "CMakeFiles/asap_astopo.dir/gao_inference.cpp.o.d"
  "CMakeFiles/asap_astopo.dir/graph_io.cpp.o"
  "CMakeFiles/asap_astopo.dir/graph_io.cpp.o.d"
  "CMakeFiles/asap_astopo.dir/routing.cpp.o"
  "CMakeFiles/asap_astopo.dir/routing.cpp.o.d"
  "CMakeFiles/asap_astopo.dir/topology_gen.cpp.o"
  "CMakeFiles/asap_astopo.dir/topology_gen.cpp.o.d"
  "CMakeFiles/asap_astopo.dir/valley_free.cpp.o"
  "CMakeFiles/asap_astopo.dir/valley_free.cpp.o.d"
  "libasap_astopo.a"
  "libasap_astopo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asap_astopo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
