
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/astopo/as_graph.cpp" "src/astopo/CMakeFiles/asap_astopo.dir/as_graph.cpp.o" "gcc" "src/astopo/CMakeFiles/asap_astopo.dir/as_graph.cpp.o.d"
  "/root/repo/src/astopo/bgp_table.cpp" "src/astopo/CMakeFiles/asap_astopo.dir/bgp_table.cpp.o" "gcc" "src/astopo/CMakeFiles/asap_astopo.dir/bgp_table.cpp.o.d"
  "/root/repo/src/astopo/gao_inference.cpp" "src/astopo/CMakeFiles/asap_astopo.dir/gao_inference.cpp.o" "gcc" "src/astopo/CMakeFiles/asap_astopo.dir/gao_inference.cpp.o.d"
  "/root/repo/src/astopo/graph_io.cpp" "src/astopo/CMakeFiles/asap_astopo.dir/graph_io.cpp.o" "gcc" "src/astopo/CMakeFiles/asap_astopo.dir/graph_io.cpp.o.d"
  "/root/repo/src/astopo/routing.cpp" "src/astopo/CMakeFiles/asap_astopo.dir/routing.cpp.o" "gcc" "src/astopo/CMakeFiles/asap_astopo.dir/routing.cpp.o.d"
  "/root/repo/src/astopo/topology_gen.cpp" "src/astopo/CMakeFiles/asap_astopo.dir/topology_gen.cpp.o" "gcc" "src/astopo/CMakeFiles/asap_astopo.dir/topology_gen.cpp.o.d"
  "/root/repo/src/astopo/valley_free.cpp" "src/astopo/CMakeFiles/asap_astopo.dir/valley_free.cpp.o" "gcc" "src/astopo/CMakeFiles/asap_astopo.dir/valley_free.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/common/CMakeFiles/asap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
