#include "astopo/valley_free.h"

#include <deque>

namespace asap::astopo {

std::vector<std::uint8_t> valley_free_hops(const AsGraph& graph, AsId source,
                                           std::uint8_t max_hops) {
  const auto n = graph.as_count();
  // BFS over (AS, PathState) pairs; states indexed 0..2.
  std::vector<std::uint8_t> state_dist(n * 3, kVfUnreached);
  std::vector<std::uint8_t> best(n, kVfUnreached);

  auto idx = [n](AsId a, PathState s) {
    return static_cast<std::size_t>(s) * n + a.value();
  };

  std::deque<std::pair<AsId, PathState>> queue;
  state_dist[idx(source, PathState::kUp)] = 0;
  best[source.value()] = 0;
  queue.emplace_back(source, PathState::kUp);

  while (!queue.empty()) {
    auto [as, state] = queue.front();
    queue.pop_front();
    std::uint8_t d = state_dist[idx(as, state)];
    if (d >= max_hops) continue;
    for (const auto& adj : graph.neighbors(as)) {
      if (!graph.edge_enabled(adj.edge_id)) continue;  // withdrawn (route flap)
      PathState next_state;
      if (!can_extend(state, adj.type, next_state)) continue;
      std::size_t i = idx(adj.neighbor, next_state);
      if (state_dist[i] != kVfUnreached) continue;
      state_dist[i] = static_cast<std::uint8_t>(d + 1);
      best[adj.neighbor.value()] =
          std::min(best[adj.neighbor.value()], static_cast<std::uint8_t>(d + 1));
      queue.emplace_back(adj.neighbor, next_state);
    }
  }
  return best;
}

std::vector<std::uint8_t> unconstrained_hops(const AsGraph& graph, AsId source,
                                             std::uint8_t max_hops) {
  const auto n = graph.as_count();
  std::vector<std::uint8_t> dist(n, kVfUnreached);
  std::deque<AsId> queue{source};
  dist[source.value()] = 0;
  while (!queue.empty()) {
    AsId as = queue.front();
    queue.pop_front();
    std::uint8_t d = dist[as.value()];
    if (d >= max_hops) continue;
    for (const auto& adj : graph.neighbors(as)) {
      if (!graph.edge_enabled(adj.edge_id)) continue;
      if (dist[adj.neighbor.value()] != kVfUnreached) continue;
      dist[adj.neighbor.value()] = static_cast<std::uint8_t>(d + 1);
      queue.push_back(adj.neighbor);
    }
  }
  return dist;
}

bool is_valley_free(const AsGraph& graph, const std::vector<AsId>& path) {
  if (path.size() <= 1) return true;
  PathState state = PathState::kUp;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    auto type = graph.link_between(path[i], path[i + 1]);
    if (!type) return false;
    PathState next;
    if (!can_extend(state, *type, next)) return false;
    state = next;
  }
  return true;
}

}  // namespace asap::astopo
