#include "astopo/graph_io.h"

#include <charconv>
#include <unordered_map>

namespace asap::astopo {

namespace {

std::string_view rel_token(LinkType t) {
  switch (t) {
    case LinkType::kToProvider: return "c2p";  // a is customer, b provider
    case LinkType::kToCustomer: return "p2c";
    case LinkType::kToPeer: return "peer";
    case LinkType::kToSibling: return "sibling";
  }
  return "?";
}

bool parse_u32(std::string_view text, std::uint32_t& out) {
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

}  // namespace

std::string serialize_graph(const AsGraph& graph) {
  std::string out;
  for (std::uint32_t i = 0; i < graph.as_count(); ++i) {
    AsId id(i);
    out += "N|";
    out += std::to_string(graph.node(id).asn);
    out += '|';
    out += std::to_string(static_cast<int>(graph.node(id).tier));
    out += '\n';
  }
  for (std::uint32_t e = 0; e < graph.edge_count(); ++e) {
    auto [a, b] = graph.edge_endpoints(e);
    auto type = graph.link_between(a, b);
    out += "E|";
    out += std::to_string(graph.node(a).asn);
    out += '|';
    out += std::to_string(graph.node(b).asn);
    out += '|';
    out += rel_token(*type);
    out += '\n';
  }
  return out;
}

Expected<AsGraph> parse_graph(std::string_view text) {
  AsGraph graph;
  std::unordered_map<std::uint32_t, AsId> by_asn;
  std::size_t line_no = 0;
  while (!text.empty()) {
    ++line_no;
    auto nl = text.find('\n');
    std::string_view line = text.substr(0, nl);
    text = nl == std::string_view::npos ? std::string_view() : text.substr(nl + 1);
    if (line.empty()) continue;
    auto error = [&](const char* what) {
      return make_error("graph line " + std::to_string(line_no) + ": " + what);
    };
    if (line.size() < 2 || line[1] != '|') return error("expected 'N|' or 'E|'");
    char kind = line[0];
    line.remove_prefix(2);

    if (kind == 'N') {
      auto bar = line.find('|');
      if (bar == std::string_view::npos) return error("missing tier");
      std::uint32_t asn = 0;
      std::uint32_t tier = 0;
      if (!parse_u32(line.substr(0, bar), asn) || !parse_u32(line.substr(bar + 1), tier) ||
          tier < 1 || tier > 3) {
        return error("bad node fields");
      }
      if (by_asn.contains(asn)) return error("duplicate ASN");
      by_asn[asn] = graph.add_as(asn, static_cast<AsTier>(tier));
      continue;
    }
    if (kind == 'E') {
      auto bar1 = line.find('|');
      if (bar1 == std::string_view::npos) return error("missing edge fields");
      auto bar2 = line.find('|', bar1 + 1);
      if (bar2 == std::string_view::npos) return error("missing relationship");
      std::uint32_t asn_a = 0;
      std::uint32_t asn_b = 0;
      if (!parse_u32(line.substr(0, bar1), asn_a) ||
          !parse_u32(line.substr(bar1 + 1, bar2 - bar1 - 1), asn_b)) {
        return error("bad edge ASNs");
      }
      auto a = by_asn.find(asn_a);
      auto b = by_asn.find(asn_b);
      if (a == by_asn.end() || b == by_asn.end()) return error("edge before node");
      if (asn_a == asn_b) return error("self-loop");
      std::string_view rel = line.substr(bar2 + 1);
      LinkType type;
      if (rel == "c2p") {
        type = LinkType::kToProvider;
      } else if (rel == "p2c") {
        type = LinkType::kToCustomer;
      } else if (rel == "peer") {
        type = LinkType::kToPeer;
      } else if (rel == "sibling") {
        type = LinkType::kToSibling;
      } else {
        return error("unknown relationship");
      }
      graph.add_edge(a->second, b->second, type);
      continue;
    }
    return error("unknown record kind");
  }
  if (!graph.validate()) return make_error("graph: validation failed after parse");
  return graph;
}

}  // namespace asap::astopo
