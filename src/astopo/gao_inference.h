// Gao's AS-relationship inference algorithm (L. Gao, "On inferring
// autonomous system relationships in the Internet", IEEE/ACM ToN 2001),
// which the paper uses to annotate its AS graph (Sec. 7.1).
//
// Input: a set of AS paths (e.g. from a BGP RIB). Output: an annotated AS
// graph. The algorithm:
//   1. For each path, locate the highest-degree AS ("top provider"): edges
//      left of it are customer->provider, edges right are provider->customer.
//   2. Tally the directed transit votes over all paths; edges voted in both
//      directions more than `sibling_votes` times become siblings, otherwise
//      the majority direction wins.
//   3. Peering heuristic: an edge adjacent to the top provider whose
//      endpoints never transit for each other and whose degrees differ by
//      less than `peer_degree_ratio` becomes peer-peer.
#pragma once

#include <cstdint>
#include <vector>

#include "astopo/as_graph.h"

namespace asap::astopo {

struct GaoParams {
  // Both-direction transit vote count at/above which an edge is a sibling
  // link (Gao's L parameter).
  int sibling_votes = 2;
  // Max degree ratio between endpoints of a candidate peer edge (Gao's R).
  // Peers interconnect networks of comparable size; customers of the top
  // provider are typically an order of magnitude smaller.
  double peer_degree_ratio = 3.0;
};

struct InferredRelationships {
  // The annotated graph rebuilt from the paths (nodes = ASNs seen in paths).
  AsGraph graph;
  std::size_t provider_customer_edges = 0;
  std::size_t peer_edges = 0;
  std::size_t sibling_edges = 0;
};

InferredRelationships infer_relationships(
    const std::vector<std::vector<std::uint32_t>>& as_paths, const GaoParams& params = {});

// Accuracy of an inferred annotation against ground truth: fraction of
// edges present in both graphs whose type matches (per-endpoint view).
double annotation_accuracy(const AsGraph& truth, const AsGraph& inferred);

}  // namespace asap::astopo
