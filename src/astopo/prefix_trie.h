// Binary trie over IPv4 prefixes with longest-prefix-match lookup.
//
// This is the data structure behind the paper's "IP prefix to origin AS
// mapping table" (Sec. 3.1): BGP RIB prefixes are inserted with their origin
// AS, and peer IPs are grouped into clusters by their longest matched prefix.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/ip.h"

namespace asap::astopo {

template <typename Value>
class PrefixTrie {
 public:
  // Inserts or overwrites the value at `prefix`. Returns true when the
  // prefix was newly inserted, false when an existing value was replaced.
  bool insert(const Prefix& prefix, Value value) {
    Node* node = &root_;
    std::uint32_t bits = prefix.address().bits();
    for (int depth = 0; depth < prefix.length(); ++depth) {
      int bit = (bits >> (31 - depth)) & 1;
      auto& child = node->children[bit];
      if (!child) child = std::make_unique<Node>();
      node = child.get();
    }
    bool fresh = !node->value.has_value();
    node->value = std::move(value);
    if (fresh) ++size_;
    return fresh;
  }

  // Longest-prefix match for an address; nullopt when nothing covers it.
  [[nodiscard]] std::optional<Value> lookup(Ipv4Addr ip) const {
    const Node* node = &root_;
    std::optional<Value> best = node->value;
    std::uint32_t bits = ip.bits();
    for (int depth = 0; depth < 32; ++depth) {
      int bit = (bits >> (31 - depth)) & 1;
      const auto& child = node->children[bit];
      if (!child) break;
      node = child.get();
      if (node->value) best = node->value;
    }
    return best;
  }

  // Longest matched prefix itself (for cluster identity), paired with value.
  [[nodiscard]] std::optional<std::pair<Prefix, Value>> lookup_prefix(Ipv4Addr ip) const {
    const Node* node = &root_;
    std::optional<std::pair<Prefix, Value>> best;
    if (node->value) best = {Prefix(Ipv4Addr(0), 0), *node->value};
    std::uint32_t bits = ip.bits();
    for (int depth = 0; depth < 32; ++depth) {
      int bit = (bits >> (31 - depth)) & 1;
      const auto& child = node->children[bit];
      if (!child) break;
      node = child.get();
      if (node->value) best = {Prefix(ip, depth + 1), *node->value};
    }
    return best;
  }

  // Exact-match lookup.
  [[nodiscard]] std::optional<Value> find_exact(const Prefix& prefix) const {
    const Node* node = &root_;
    std::uint32_t bits = prefix.address().bits();
    for (int depth = 0; depth < prefix.length(); ++depth) {
      int bit = (bits >> (31 - depth)) & 1;
      const auto& child = node->children[bit];
      if (!child) return std::nullopt;
      node = child.get();
    }
    return node->value;
  }

  // Removes the value at `prefix`; returns true when something was removed.
  // (Trie nodes are not pruned; removal is rare in our workloads.)
  bool erase(const Prefix& prefix) {
    Node* node = &root_;
    std::uint32_t bits = prefix.address().bits();
    for (int depth = 0; depth < prefix.length(); ++depth) {
      int bit = (bits >> (31 - depth)) & 1;
      auto& child = node->children[bit];
      if (!child) return false;
      node = child.get();
    }
    if (!node->value) return false;
    node->value.reset();
    --size_;
    return true;
  }

  [[nodiscard]] std::size_t size() const { return size_; }

  // Visits every stored (prefix, value) pair in address order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    visit(&root_, 0, 0, fn);
  }

 private:
  struct Node {
    std::optional<Value> value;
    std::unique_ptr<Node> children[2];
  };

  template <typename Fn>
  static void visit(const Node* node, std::uint32_t bits, int depth, Fn& fn) {
    if (node->value) fn(Prefix(Ipv4Addr(bits), depth), *node->value);
    for (int bit = 0; bit < 2; ++bit) {
      if (node->children[bit]) {
        std::uint32_t child_bits = bits | (static_cast<std::uint32_t>(bit) << (31 - depth));
        visit(node->children[bit].get(), child_bits, depth + 1, fn);
      }
    }
  }

  Node root_;
  std::size_t size_ = 0;
};

}  // namespace asap::astopo
