#include "astopo/gao_inference.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <unordered_map>

namespace asap::astopo {

namespace {

using AsnPair = std::pair<std::uint32_t, std::uint32_t>;

AsnPair ordered(std::uint32_t a, std::uint32_t b) {
  return {std::min(a, b), std::max(a, b)};
}

}  // namespace

InferredRelationships infer_relationships(
    const std::vector<std::vector<std::uint32_t>>& as_paths, const GaoParams& params) {
  // Degree of each ASN over the union of path edges.
  std::unordered_map<std::uint32_t, std::size_t> degree;
  std::map<AsnPair, bool> edge_seen;
  for (const auto& path : as_paths) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      if (path[i] == path[i + 1]) continue;
      auto key = ordered(path[i], path[i + 1]);
      if (edge_seen.emplace(key, true).second) {
        ++degree[key.first];
        ++degree[key.second];
      }
    }
  }

  // Phase 1+2: transit votes. votes[{u,v}] counts paths asserting that v
  // transits for u, i.e. u is v's customer (u -> v is customer->provider).
  std::map<AsnPair, int> customer_to_provider;  // key (u,v) means u customer of v
  // Edges that ever appear adjacent to a path's top provider (peer
  // candidates) and, separately, how often each edge is crossed while NOT
  // adjacent to the top — genuine transit evidence that disqualifies
  // peering (votes across the top edge itself are artifacts of the top
  // choice, as Gao's refined algorithm observes).
  std::map<AsnPair, bool> top_adjacent;
  std::map<AsnPair, int> nontop_occurrences;

  for (const auto& path : as_paths) {
    if (path.size() < 2) continue;
    // Find highest-degree AS position.
    std::size_t top = 0;
    for (std::size_t i = 1; i < path.size(); ++i) {
      if (degree[path[i]] > degree[path[top]]) top = i;
    }
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      if (path[i] == path[i + 1]) continue;
      if (i + 1 <= top) {
        ++customer_to_provider[{path[i], path[i + 1]}];  // uphill segment
      } else {
        ++customer_to_provider[{path[i + 1], path[i]}];  // downhill segment
      }
      if (i == top || i + 1 == top) {
        top_adjacent[ordered(path[i], path[i + 1])] = true;
      } else {
        ++nontop_occurrences[ordered(path[i], path[i + 1])];
      }
    }
  }

  // Decide each edge's relationship.
  struct Decision {
    LinkType type_from_lo;  // relationship seen from the lower ASN endpoint
  };
  std::map<AsnPair, Decision> decisions;
  for (const auto& [key, _] : edge_seen) {
    auto [lo, hi] = key;
    int lo_customer = 0;  // votes for lo being customer of hi
    int hi_customer = 0;
    if (auto it = customer_to_provider.find({lo, hi}); it != customer_to_provider.end()) {
      lo_customer = it->second;
    }
    if (auto it = customer_to_provider.find({hi, lo}); it != customer_to_provider.end()) {
      hi_customer = it->second;
    }
    LinkType type_from_lo;
    if (lo_customer >= params.sibling_votes && hi_customer >= params.sibling_votes) {
      type_from_lo = LinkType::kToSibling;
    } else if (lo_customer >= hi_customer) {
      type_from_lo = LinkType::kToProvider;  // lo is customer: hi is lo's provider
    } else {
      type_from_lo = LinkType::kToCustomer;
    }
    decisions[key] = Decision{type_from_lo};
  }

  // Phase 3: peering heuristic. An edge is re-labelled peer-peer when it
  // (a) appears adjacent to the top provider, (b) is never crossed in a
  // non-top position (no genuine transit through it), (c) is not a sibling
  // link, and (d) joins ASes of comparable degree — a leaf hanging off the
  // top provider fails (d), a tier-1 interconnect passes all four.
  for (const auto& [key, _] : top_adjacent) {
    auto it = decisions.find(key);
    if (it == decisions.end() || it->second.type_from_lo == LinkType::kToSibling) continue;
    if (auto n = nontop_occurrences.find(key);
        n != nontop_occurrences.end() && n->second > 0) {
      continue;  // real transit crossed this edge below the top
    }
    auto [lo, hi] = key;
    double dlo = static_cast<double>(degree[lo]);
    double dhi = static_cast<double>(degree[hi]);
    double ratio = std::max(dlo, dhi) / std::max(1.0, std::min(dlo, dhi));
    if (ratio < params.peer_degree_ratio) {
      it->second.type_from_lo = LinkType::kToPeer;
    }
  }

  // Build the annotated graph with ASNs sorted for determinism.
  InferredRelationships result;
  std::map<std::uint32_t, AsId> id_of;
  for (const auto& [asn, _] : degree) {
    id_of[asn] = AsId::invalid();
  }
  for (auto& [asn, id] : id_of) {
    id = result.graph.add_as(asn);
  }
  for (const auto& [key, decision] : decisions) {
    auto [lo, hi] = key;
    result.graph.add_edge(id_of[lo], id_of[hi], decision.type_from_lo);
    switch (decision.type_from_lo) {
      case LinkType::kToProvider:
      case LinkType::kToCustomer: ++result.provider_customer_edges; break;
      case LinkType::kToPeer: ++result.peer_edges; break;
      case LinkType::kToSibling: ++result.sibling_edges; break;
    }
  }
  return result;
}

double annotation_accuracy(const AsGraph& truth, const AsGraph& inferred) {
  std::size_t common = 0;
  std::size_t matching = 0;
  for (std::uint32_t i = 0; i < inferred.as_count(); ++i) {
    AsId ia(i);
    auto ta = truth.find_by_asn(inferred.node(ia).asn);
    if (!ta) continue;
    for (const auto& adj : inferred.neighbors(ia)) {
      // Count each undirected edge once, from the endpoint added first.
      if (inferred.node(adj.neighbor).asn < inferred.node(ia).asn) continue;
      auto tb = truth.find_by_asn(inferred.node(adj.neighbor).asn);
      if (!tb) continue;
      auto truth_type = truth.link_between(*ta, *tb);
      if (!truth_type) continue;
      ++common;
      if (*truth_type == adj.type) ++matching;
    }
  }
  return common == 0 ? 0.0 : static_cast<double>(matching) / static_cast<double>(common);
}

}  // namespace asap::astopo
