#include "astopo/bgp_table.h"

#include <algorithm>
#include <charconv>
#include <set>
#include <sstream>

#include "astopo/routing.h"

namespace asap::astopo {

namespace {

std::vector<std::uint32_t> parse_path(std::string_view text, bool& ok) {
  std::vector<std::uint32_t> path;
  ok = true;
  while (!text.empty()) {
    while (!text.empty() && text.front() == ' ') text.remove_prefix(1);
    if (text.empty()) break;
    std::uint32_t asn = 0;
    auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), asn);
    if (ec != std::errc()) {
      ok = false;
      return path;
    }
    path.push_back(asn);
    text.remove_prefix(static_cast<std::size_t>(ptr - text.data()));
  }
  if (path.empty()) ok = false;
  return path;
}

std::string path_to_string(const std::vector<std::uint32_t>& path) {
  std::string out;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i > 0) out += ' ';
    out += std::to_string(path[i]);
  }
  return out;
}

// Collapses AS-path prepending (consecutive duplicates).
std::vector<std::uint32_t> collapse(const std::vector<std::uint32_t>& path) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t asn : path) {
    if (out.empty() || out.back() != asn) out.push_back(asn);
  }
  return out;
}

}  // namespace

void BgpRib::add(RibEntry entry) {
  entries_.push_back(std::move(entry));
  trie_dirty_ = true;
}

void BgpRib::apply(const BgpUpdate& update) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&](const RibEntry& e) { return e.prefix == update.prefix; });
  if (update.kind == BgpUpdate::Kind::kWithdraw) {
    if (it != entries_.end()) entries_.erase(it);
  } else {
    if (it != entries_.end()) {
      it->as_path = update.as_path;
    } else {
      entries_.push_back(RibEntry{update.prefix, update.as_path});
    }
  }
  trie_dirty_ = true;
}

const PrefixTrie<std::uint32_t>& BgpRib::trie() const {
  if (trie_dirty_) {
    trie_ = PrefixTrie<std::uint32_t>();
    for (const auto& e : entries_) {
      if (!e.as_path.empty()) trie_.insert(e.prefix, e.as_path.back());
    }
    trie_dirty_ = false;
  }
  return trie_;
}

std::uint32_t BgpRib::origin_of(Ipv4Addr ip) const {
  auto hit = trie().lookup(ip);
  return hit.value_or(0);
}

std::optional<Prefix> BgpRib::matched_prefix(Ipv4Addr ip) const {
  auto hit = trie().lookup_prefix(ip);
  if (!hit) return std::nullopt;
  return hit->first;
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> BgpRib::extract_links() const {
  std::set<std::pair<std::uint32_t, std::uint32_t>> links;
  for (const auto& e : entries_) {
    auto path = collapse(e.as_path);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      auto a = std::min(path[i], path[i + 1]);
      auto b = std::max(path[i], path[i + 1]);
      if (a != b) links.emplace(a, b);
    }
  }
  return {links.begin(), links.end()};
}

std::vector<std::vector<std::uint32_t>> BgpRib::distinct_paths() const {
  std::set<std::vector<std::uint32_t>> paths;
  for (const auto& e : entries_) {
    auto path = collapse(e.as_path);
    if (path.size() >= 2) paths.insert(std::move(path));
  }
  return {paths.begin(), paths.end()};
}

std::string BgpRib::serialize() const {
  std::string out;
  for (const auto& e : entries_) {
    out += "R|";
    out += e.prefix.to_string();
    out += '|';
    out += path_to_string(e.as_path);
    out += '\n';
  }
  return out;
}

Expected<BgpRib> BgpRib::parse(std::string_view text) {
  BgpRib rib;
  std::size_t line_no = 0;
  while (!text.empty()) {
    ++line_no;
    auto nl = text.find('\n');
    std::string_view line = text.substr(0, nl);
    text = (nl == std::string_view::npos) ? std::string_view() : text.substr(nl + 1);
    if (line.empty()) continue;
    if (line.substr(0, 2) != "R|") {
      return make_error("RIB line " + std::to_string(line_no) + ": expected 'R|'");
    }
    line.remove_prefix(2);
    auto bar = line.find('|');
    if (bar == std::string_view::npos) {
      return make_error("RIB line " + std::to_string(line_no) + ": missing path separator");
    }
    auto prefix = Prefix::parse(line.substr(0, bar));
    if (!prefix) {
      return make_error("RIB line " + std::to_string(line_no) + ": bad prefix");
    }
    bool ok = false;
    auto path = parse_path(line.substr(bar + 1), ok);
    if (!ok) {
      return make_error("RIB line " + std::to_string(line_no) + ": bad AS path");
    }
    rib.add(RibEntry{*prefix, std::move(path)});
  }
  return rib;
}

Expected<BgpUpdate> parse_update(std::string_view line) {
  if (line.size() >= 2 && line.substr(0, 2) == "W|") {
    auto prefix = Prefix::parse(line.substr(2));
    if (!prefix) return make_error("withdraw: bad prefix");
    return BgpUpdate{BgpUpdate::Kind::kWithdraw, *prefix, {}};
  }
  if (line.size() >= 2 && line.substr(0, 2) == "A|") {
    line.remove_prefix(2);
    auto bar = line.find('|');
    if (bar == std::string_view::npos) return make_error("announce: missing path");
    auto prefix = Prefix::parse(line.substr(0, bar));
    if (!prefix) return make_error("announce: bad prefix");
    bool ok = false;
    auto path = parse_path(line.substr(bar + 1), ok);
    if (!ok) return make_error("announce: bad AS path");
    return BgpUpdate{BgpUpdate::Kind::kAnnounce, *prefix, std::move(path)};
  }
  return make_error("update: unknown record type");
}

std::string serialize_update(const BgpUpdate& update) {
  if (update.kind == BgpUpdate::Kind::kWithdraw) {
    return "W|" + update.prefix.to_string();
  }
  return "A|" + update.prefix.to_string() + "|" + path_to_string(update.as_path);
}

PrefixAllocation allocate_prefixes(const AsGraph& graph, const std::vector<AsId>& host_ases,
                                   const PrefixAllocationParams& params, Rng& rng) {
  PrefixAllocation alloc;
  std::vector<bool> is_host(graph.as_count(), false);
  for (AsId h : host_ases) is_host[h.value()] = true;

  // Hand out disjoint blocks by walking the unicast address space from
  // 1.0.0.0 upward; each allocation advances the cursor past the block.
  std::uint64_t cursor = std::uint64_t{1} << 24;  // 1.0.0.0
  auto take_prefix = [&](int len) {
    std::uint64_t block = std::uint64_t{1} << (32 - len);
    cursor = (cursor + block - 1) / block * block;  // align up
    Prefix p(Ipv4Addr(static_cast<std::uint32_t>(cursor)), len);
    cursor += block;
    return p;
  };

  for (std::uint32_t i = 0; i < graph.as_count(); ++i) {
    AsId as(i);
    int count = static_cast<int>(
        rng.range(params.min_prefixes_per_as, params.max_prefixes_per_as));
    if (is_host[i]) count += params.extra_host_prefixes;
    for (int p = 0; p < count; ++p) {
      int len = static_cast<int>(rng.range(params.min_prefix_len, params.max_prefix_len));
      alloc.prefixes.emplace_back(take_prefix(len), as);
    }
  }
  return alloc;
}

BgpRib build_rib(const AsGraph& graph, const PrefixAllocation& alloc, AsId observer) {
  // Group prefixes by origin so each origin's route table is computed once.
  std::vector<std::vector<Prefix>> by_origin(graph.as_count());
  for (const auto& [prefix, origin] : alloc.prefixes) {
    by_origin[origin.value()].push_back(prefix);
  }
  BgpRib rib;
  for (std::uint32_t i = 0; i < graph.as_count(); ++i) {
    if (by_origin[i].empty()) continue;
    AsId origin(i);
    RouteTable table = compute_routes(graph, origin);
    if (!table.reachable(observer) && observer != origin) continue;
    auto as_ids = table.path(observer);
    std::vector<std::uint32_t> asns;
    asns.reserve(as_ids.size());
    for (AsId a : as_ids) asns.push_back(graph.node(a).asn);
    if (asns.empty()) asns.push_back(graph.node(origin).asn);
    for (const Prefix& p : by_origin[i]) {
      rib.add(RibEntry{p, asns});
    }
  }
  return rib;
}

}  // namespace asap::astopo
