// Policy-compliant BGP route simulation.
//
// For a destination AS d, computes the route every other AS selects under
// the standard Gao-Rexford model:
//   * export rules — an AS exports customer routes (and its own) to
//     everyone, but exports peer/provider-learned routes only to customers;
//   * selection — prefer customer over peer over provider routes, then
//     fewer AS hops, then lowest next-hop ASN (deterministic tie-break).
//
// The selected paths are valley-free by construction but generally NOT
// latency-optimal — exactly the gap one-hop peer relays exploit (paper
// Sec. 3.3, Fig. 4).
#pragma once

#include <cstdint>
#include <vector>

#include "astopo/as_graph.h"
#include "common/ids.h"

namespace asap::astopo {

enum class RouteClass : std::uint8_t {
  kSelf = 0,
  kCustomer = 1,  // learned from a customer
  kPeer = 2,      // learned from a peer
  kProvider = 3,  // learned from a provider
  kUnreachable = 4,
};

struct RouteEntry {
  RouteClass cls = RouteClass::kUnreachable;
  std::uint8_t hops = 0xFF;                  // AS hops to the destination
  AsId next_hop = AsId::invalid();           // neighbor toward the destination
  std::uint32_t next_edge = 0xFFFFFFFFu;     // edge id toward the destination
};

// All routes toward one destination AS.
class RouteTable {
 public:
  RouteTable(AsId dest, std::vector<RouteEntry> entries)
      : dest_(dest), entries_(std::move(entries)) {}

  [[nodiscard]] AsId dest() const { return dest_; }
  [[nodiscard]] const RouteEntry& entry(AsId as) const { return entries_[as.value()]; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  [[nodiscard]] bool reachable(AsId src) const {
    return entries_[src.value()].cls != RouteClass::kUnreachable;
  }

  // AS-level path src -> ... -> dest (inclusive). Empty when unreachable.
  [[nodiscard]] std::vector<AsId> path(AsId src) const;

 private:
  AsId dest_;
  std::vector<RouteEntry> entries_;
};

// Computes the route table toward `dest`. O(V + E).
RouteTable compute_routes(const AsGraph& graph, AsId dest);

// Convenience: AS-level path between two ASes (via a throwaway table).
std::vector<AsId> as_path(const AsGraph& graph, AsId src, AsId dest);

}  // namespace asap::astopo
