// Valley-free k-hop reachability, the graph primitive behind ASAP's
// construct-close-cluster-set() BFS (paper Fig. 9).
//
// From a source AS, enumerates every AS reachable over a valley-free path of
// at most k AS hops, with the minimum such hop count. Per the paper
// (citing Mao et al. [16]), shortest valley-free hop counts are a reasonably
// accurate inference of real AS paths, which is why the protocol can use
// this purely topological search before confirming candidates with latency
// probes.
#pragma once

#include <cstdint>
#include <vector>

#include "astopo/as_graph.h"
#include "common/ids.h"

namespace asap::astopo {

inline constexpr std::uint8_t kVfUnreached = 0xFF;

// dist[a] = min valley-free hops source->a (0 for the source itself), or
// kVfUnreached if no valley-free path of <= max_hops exists.
std::vector<std::uint8_t> valley_free_hops(const AsGraph& graph, AsId source,
                                           std::uint8_t max_hops);

// Same search ignoring the valley-free constraint (plain BFS). Used by the
// ablation that asks whether respecting BGP policy in the close-set search
// actually matters.
std::vector<std::uint8_t> unconstrained_hops(const AsGraph& graph, AsId source,
                                             std::uint8_t max_hops);

// True when `path` (a sequence of adjacent ASes) is valley-free in `graph`.
// Non-adjacent consecutive ASes make the path invalid. Used by tests and by
// the Gao-inference validation pipeline.
bool is_valley_free(const AsGraph& graph, const std::vector<AsId>& path);

}  // namespace asap::astopo
