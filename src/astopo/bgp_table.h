// BGP RIB snapshot and update stream in a line-oriented text format, plus
// prefix allocation for the synthetic world.
//
// This reproduces the paper's data-ingestion pipeline (Sec. 3.1): from BGP
// table entries and updates, build an IP-prefix -> origin-AS mapping table
// and extract AS-AS connectivity. Formats:
//
//   RIB entry:   "R|<prefix>|<asn> <asn> ... <asn>"   (last ASN = origin)
//   Announce:    "A|<prefix>|<asn> <asn> ... <asn>"
//   Withdraw:    "W|<prefix>"
//
// The AS path is the observation-point-to-origin path, as in RouteViews
// dumps. AS-path prepending may repeat ASNs; consumers deduplicate.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "astopo/as_graph.h"
#include "astopo/prefix_trie.h"
#include "common/expected.h"
#include "common/ids.h"
#include "common/ip.h"
#include "common/rng.h"

namespace asap::astopo {

struct RibEntry {
  Prefix prefix;
  std::vector<std::uint32_t> as_path;  // observer ... origin (wire ASNs)
};

struct BgpUpdate {
  enum class Kind : std::uint8_t { kAnnounce, kWithdraw };
  Kind kind = Kind::kAnnounce;
  Prefix prefix;
  std::vector<std::uint32_t> as_path;  // empty for withdrawals
};

// A routing information base keyed by prefix.
class BgpRib {
 public:
  void add(RibEntry entry);
  void apply(const BgpUpdate& update);

  [[nodiscard]] const std::vector<RibEntry>& entries() const { return entries_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  // Origin ASN of the longest matching prefix for `ip` (0 when none).
  [[nodiscard]] std::uint32_t origin_of(Ipv4Addr ip) const;
  // Longest matching prefix itself.
  [[nodiscard]] std::optional<Prefix> matched_prefix(Ipv4Addr ip) const;

  // Prefix -> origin-ASN trie (rebuilt lazily after mutations).
  [[nodiscard]] const PrefixTrie<std::uint32_t>& trie() const;

  // Distinct undirected AS-AS links appearing in any AS path.
  [[nodiscard]] std::vector<std::pair<std::uint32_t, std::uint32_t>> extract_links() const;

  // All distinct AS paths (prepending collapsed), for relationship inference.
  [[nodiscard]] std::vector<std::vector<std::uint32_t>> distinct_paths() const;

  // Text serialization (one "R|..." line per entry).
  [[nodiscard]] std::string serialize() const;
  static Expected<BgpRib> parse(std::string_view text);

 private:
  std::vector<RibEntry> entries_;
  mutable PrefixTrie<std::uint32_t> trie_;
  mutable bool trie_dirty_ = true;
};

// Parses one update line ("A|..." / "W|...").
Expected<BgpUpdate> parse_update(std::string_view line);
std::string serialize_update(const BgpUpdate& update);

// --- Synthetic prefix allocation -----------------------------------------

struct PrefixAllocationParams {
  // Every AS originates at least one prefix; host-bearing ASes get more.
  int min_prefixes_per_as = 1;
  int max_prefixes_per_as = 3;
  // Extra prefixes handed to designated "host" ASes so that the host-AS
  // prefix count matches the paper's ratio (7,171 prefixes / 1,461 ASes).
  int extra_host_prefixes = 4;
  int min_prefix_len = 18;
  int max_prefix_len = 24;
};

struct PrefixAllocation {
  // Disjoint prefixes with their origin AS (dense id).
  std::vector<std::pair<Prefix, AsId>> prefixes;
};

// Allocates non-overlapping prefixes across all ASes; `host_ases` receive
// `extra_host_prefixes` additional prefixes each. Deterministic given rng.
PrefixAllocation allocate_prefixes(const AsGraph& graph, const std::vector<AsId>& host_ases,
                                   const PrefixAllocationParams& params, Rng& rng);

// Builds a RIB as observed from `observer`: one entry per allocated prefix
// whose AS path is the BGP-simulated path observer -> origin.
BgpRib build_rib(const AsGraph& graph, const PrefixAllocation& alloc, AsId observer);

}  // namespace asap::astopo
