#include "astopo/topology_gen.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <unordered_set>

namespace asap::astopo {

namespace {

// Deduplicates undirected edges during generation.
struct EdgeSet {
  std::unordered_set<std::uint64_t> seen;

  bool insert(AsId a, AsId b) {
    auto lo = std::min(a.value(), b.value());
    auto hi = std::max(a.value(), b.value());
    return seen.insert((std::uint64_t(lo) << 32) | hi).second;
  }
};

// Picks a provider from `candidates` with preferential attachment (weight =
// degree + 1) and a same-continent bias.
AsId pick_provider(const AsGraph& graph, const std::vector<AsId>& candidates,
                   std::size_t my_continent, const std::vector<std::size_t>& continent_of,
                   double same_continent_bias, Rng& rng) {
  assert(!candidates.empty());
  bool want_same = rng.chance(same_continent_bias);
  double total = 0.0;
  for (AsId c : candidates) {
    bool same = continent_of[c.value()] == my_continent;
    if (want_same && !same) continue;
    total += static_cast<double>(graph.degree(c) + 1);
  }
  if (total == 0.0) {
    want_same = false;
    for (AsId c : candidates) total += static_cast<double>(graph.degree(c) + 1);
  }
  double pick = rng.uniform() * total;
  for (AsId c : candidates) {
    bool same = continent_of[c.value()] == my_continent;
    if (want_same && !same) continue;
    pick -= static_cast<double>(graph.degree(c) + 1);
    if (pick <= 0.0) return c;
  }
  return candidates.back();
}

}  // namespace

double geo_distance_km(const GeoPoint& a, const GeoPoint& b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

Topology generate_topology(const TopologyParams& params, Rng& rng) {
  assert(params.total_as >= params.tier1_count + 10);
  Topology topo;
  AsGraph& graph = topo.graph;

  // Continent centres on an ellipse; nearest neighbours sit a few thousand
  // km apart, the farthest pair ~2x the x half-axis.
  for (std::size_t c = 0; c < params.continents; ++c) {
    double angle = 2.0 * std::numbers::pi * static_cast<double>(c) /
                   static_cast<double>(params.continents);
    GeoPoint centre{
        10000.0 + params.continent_radius_x_km * std::cos(angle) + rng.uniform(-800.0, 800.0),
        5000.0 + params.continent_radius_y_km * std::sin(angle) + rng.uniform(-500.0, 500.0)};
    topo.continent_centers.push_back(centre);
  }

  // Shuffled wire ASNs so dense ids and ASNs are uncorrelated, as on the
  // real Internet.
  std::vector<std::uint32_t> asns(params.total_as);
  for (std::size_t i = 0; i < asns.size(); ++i) asns[i] = static_cast<std::uint32_t>(i + 1);
  rng.shuffle(asns);

  auto tier2_count = static_cast<std::size_t>(
      static_cast<double>(params.total_as) * params.tier2_fraction);
  std::size_t stub_count = params.total_as - params.tier1_count - tier2_count;

  std::vector<std::size_t> continent_of(params.total_as);
  auto place = [&](std::size_t continent, double sigma) {
    const GeoPoint& c = topo.continent_centers[continent];
    return GeoPoint{c.x + rng.normal(0.0, sigma), c.y + rng.normal(0.0, sigma * 0.6)};
  };

  std::size_t next = 0;
  // Tier-1: spread round-robin over continents, tight scatter (backbone POPs
  // sit in major hubs).
  for (std::size_t i = 0; i < params.tier1_count; ++i, ++next) {
    std::size_t continent = i % params.continents;
    continent_of[next] = continent;
    topo.tier1.push_back(
        graph.add_as(asns[next], AsTier::kTier1, place(continent, 300.0)));
  }
  // Tier-2 transit ASes and stubs follow the skewed continent weights.
  auto pick_continent = [&]() {
    return static_cast<std::size_t>(rng.zipf(params.continents, params.continent_zipf_s));
  };
  for (std::size_t i = 0; i < tier2_count; ++i, ++next) {
    std::size_t continent = pick_continent();
    continent_of[next] = continent;
    topo.tier2.push_back(
        graph.add_as(asns[next], AsTier::kTier2, place(continent, params.continent_sigma_km * 0.7)));
  }
  // Stubs.
  for (std::size_t i = 0; i < stub_count; ++i, ++next) {
    std::size_t continent = pick_continent();
    continent_of[next] = continent;
    topo.stubs.push_back(
        graph.add_as(asns[next], AsTier::kStub, place(continent, params.continent_sigma_km)));
  }

  EdgeSet edges;

  // Tier-1 full peering clique.
  for (std::size_t i = 0; i < topo.tier1.size(); ++i) {
    for (std::size_t j = i + 1; j < topo.tier1.size(); ++j) {
      if (edges.insert(topo.tier1[i], topo.tier1[j])) {
        graph.add_edge(topo.tier1[i], topo.tier1[j], LinkType::kToPeer);
      }
    }
  }

  // Tier-2: 1-3 providers among tier-1 (and, for later tier-2s, occasionally
  // an earlier tier-2, deepening the hierarchy).
  for (std::size_t i = 0; i < topo.tier2.size(); ++i) {
    AsId me = topo.tier2[i];
    std::size_t provider_count = 1 + rng.below(3);
    for (std::size_t p = 0; p < provider_count; ++p) {
      AsId provider;
      if (i > 4 && rng.chance(0.35)) {
        std::vector<AsId> earlier(topo.tier2.begin(), topo.tier2.begin() + i);
        provider = pick_provider(graph, earlier, continent_of[me.value()], continent_of,
                                 params.same_continent_provider_bias, rng);
      } else {
        provider = pick_provider(graph, topo.tier1, continent_of[me.value()], continent_of,
                                 params.same_continent_provider_bias, rng);
      }
      if (edges.insert(me, provider)) {
        graph.add_edge(me, provider, LinkType::kToProvider);
      }
    }
  }

  // Tier-2 same-continent peering.
  for (std::size_t i = 0; i < topo.tier2.size(); ++i) {
    for (std::size_t j = i + 1; j < topo.tier2.size(); ++j) {
      AsId a = topo.tier2[i];
      AsId b = topo.tier2[j];
      if (continent_of[a.value()] != continent_of[b.value()]) continue;
      if (!rng.chance(params.tier2_peering_prob)) continue;
      if (edges.insert(a, b)) graph.add_edge(a, b, LinkType::kToPeer);
    }
  }

  // Stubs: providers among tier-2 (85%) or tier-1 (15%); multi-homed stubs
  // get 2-3 providers, deliberately allowed to span continents/hierarchies
  // (the Fig. 4 shortcut scenario).
  for (AsId me : topo.stubs) {
    std::size_t provider_count = 1;
    if (rng.chance(params.stub_multihoming_fraction)) provider_count = 2 + rng.below(2);
    for (std::size_t p = 0; p < provider_count; ++p) {
      // Secondary providers of multi-homed stubs ignore the continent bias
      // half the time; that is what creates cross-hierarchy shortcuts.
      double bias = (p == 0) ? params.same_continent_provider_bias
                             : params.same_continent_provider_bias * 0.5;
      const std::vector<AsId>& pool = rng.chance(0.15) ? topo.tier1 : topo.tier2;
      AsId provider = pick_provider(graph, pool, continent_of[me.value()], continent_of, bias, rng);
      if (edges.insert(me, provider)) {
        graph.add_edge(me, provider, LinkType::kToProvider);
      }
    }
  }

  // IXP-style peering among stubs / between stubs and tier-2s on the same
  // continent.
  auto ixp_links = static_cast<std::size_t>(
      static_cast<double>(topo.stubs.size()) * params.stub_peering_per_100 / 100.0);
  std::size_t attempts = 0;
  std::size_t made = 0;
  while (made < ixp_links && attempts < ixp_links * 20) {
    ++attempts;
    AsId a = topo.stubs[rng.index_of(topo.stubs)];
    AsId b = rng.chance(0.5) ? topo.stubs[rng.index_of(topo.stubs)]
                             : topo.tier2[rng.index_of(topo.tier2)];
    if (a == b) continue;
    if (continent_of[a.value()] != continent_of[b.value()]) continue;
    if (!edges.insert(a, b)) continue;
    graph.add_edge(a, b, LinkType::kToPeer);
    ++made;
  }

  assert(graph.validate());
  return topo;
}

}  // namespace asap::astopo
