// Annotated AS-level graph: nodes are Autonomous Systems, undirected edges
// carry a commercial relationship (provider/customer, peer, sibling).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "astopo/relationship.h"
#include "common/ids.h"

namespace asap::astopo {

// Tier labels assigned by the synthetic generator (informational; the
// routing logic only looks at link types).
enum class AsTier : std::uint8_t { kTier1 = 1, kTier2 = 2, kStub = 3 };

// Geographic position of an AS on the synthetic world map, in kilometres.
struct GeoPoint {
  double x = 0.0;
  double y = 0.0;
};

// One directed adjacency entry.
struct AsAdjacency {
  AsId neighbor;
  LinkType type;
  std::uint32_t edge_id;  // undirected edge index, shared with the reverse entry
};

struct AsNode {
  std::uint32_t asn = 0;          // wire-format AS number
  AsTier tier = AsTier::kStub;
  GeoPoint geo;
};

class AsGraph {
 public:
  // Adds an AS; returns its dense id. ASNs must be unique (checked by
  // find_by_asn users; the graph itself does not index ASNs).
  AsId add_as(std::uint32_t asn, AsTier tier = AsTier::kStub, GeoPoint geo = {});

  // Adds an undirected edge a<->b where `type_from_a` is the relationship
  // seen from a (e.g. kToProvider means b is a's provider). Returns the
  // edge id. Duplicate edges are the caller's responsibility to avoid.
  std::uint32_t add_edge(AsId a, AsId b, LinkType type_from_a);

  [[nodiscard]] std::size_t as_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edge_endpoints_.size(); }

  [[nodiscard]] const AsNode& node(AsId id) const { return nodes_[id.value()]; }
  [[nodiscard]] std::span<const AsAdjacency> neighbors(AsId id) const {
    return adjacency_[id.value()];
  }
  [[nodiscard]] std::size_t degree(AsId id) const { return adjacency_[id.value()].size(); }

  // Endpoints of an undirected edge, in insertion order (a, b).
  [[nodiscard]] std::pair<AsId, AsId> edge_endpoints(std::uint32_t edge_id) const {
    return edge_endpoints_[edge_id];
  }

  // --- BGP-level route flaps (living-world soak runtime) --------------------
  // A disabled edge stays in the adjacency lists but is skipped by route
  // computation (compute_routes) and the valley-free BFS — the session-level
  // view of a withdrawn BGP adjacency. All edges start enabled, and a graph
  // that never disables an edge behaves bitwise identically to one without
  // the feature. Mutations are NOT thread-safe against concurrent readers:
  // only call from single-threaded protocol simulations, and invalidate any
  // PathOracle built over this graph afterwards (see
  // netmodel::PathOracle::invalidate_*).
  void set_edge_enabled(std::uint32_t edge_id, bool enabled);
  [[nodiscard]] bool edge_enabled(std::uint32_t edge_id) const {
    return edge_enabled_.empty() || edge_enabled_[edge_id] != 0;
  }
  // Rewrites the commercial relationship of an existing edge (a policy
  // change): `type_from_a` is the new type seen from the edge's first
  // endpoint; the mirror adjacency entry gets the reversed type. Same
  // thread-safety and invalidation caveats as set_edge_enabled.
  void set_edge_type(std::uint32_t edge_id, LinkType type_from_a);
  // Relationship of an edge as seen from its first endpoint.
  [[nodiscard]] LinkType edge_type(std::uint32_t edge_id) const;

  // Linear scan lookup by wire ASN (used by parsers; O(n)).
  [[nodiscard]] std::optional<AsId> find_by_asn(std::uint32_t asn) const;

  // Returns the link type a->b if the edge exists.
  [[nodiscard]] std::optional<LinkType> link_between(AsId a, AsId b) const;

  // Structural validation: every adjacency entry has a symmetric reverse
  // entry with the reversed link type and the same edge id. Returns false on
  // the first violation (used by tests and after parsing external data).
  [[nodiscard]] bool validate() const;

 private:
  std::vector<AsNode> nodes_;
  std::vector<std::vector<AsAdjacency>> adjacency_;
  std::vector<std::pair<AsId, AsId>> edge_endpoints_;
  // Lazily sized on the first set_edge_enabled(): empty means every edge is
  // enabled, so graphs that never flap pay nothing.
  std::vector<std::uint8_t> edge_enabled_;
};

}  // namespace asap::astopo
