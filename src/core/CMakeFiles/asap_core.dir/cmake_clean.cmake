file(REMOVE_RECURSE
  "CMakeFiles/asap_core.dir/close_cluster.cpp.o"
  "CMakeFiles/asap_core.dir/close_cluster.cpp.o.d"
  "CMakeFiles/asap_core.dir/config_io.cpp.o"
  "CMakeFiles/asap_core.dir/config_io.cpp.o.d"
  "CMakeFiles/asap_core.dir/protocol.cpp.o"
  "CMakeFiles/asap_core.dir/protocol.cpp.o.d"
  "CMakeFiles/asap_core.dir/select_relay.cpp.o"
  "CMakeFiles/asap_core.dir/select_relay.cpp.o.d"
  "CMakeFiles/asap_core.dir/wire.cpp.o"
  "CMakeFiles/asap_core.dir/wire.cpp.o.d"
  "libasap_core.a"
  "libasap_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asap_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
