
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/close_cluster.cpp" "src/core/CMakeFiles/asap_core.dir/close_cluster.cpp.o" "gcc" "src/core/CMakeFiles/asap_core.dir/close_cluster.cpp.o.d"
  "/root/repo/src/core/config_io.cpp" "src/core/CMakeFiles/asap_core.dir/config_io.cpp.o" "gcc" "src/core/CMakeFiles/asap_core.dir/config_io.cpp.o.d"
  "/root/repo/src/core/protocol.cpp" "src/core/CMakeFiles/asap_core.dir/protocol.cpp.o" "gcc" "src/core/CMakeFiles/asap_core.dir/protocol.cpp.o.d"
  "/root/repo/src/core/select_relay.cpp" "src/core/CMakeFiles/asap_core.dir/select_relay.cpp.o" "gcc" "src/core/CMakeFiles/asap_core.dir/select_relay.cpp.o.d"
  "/root/repo/src/core/wire.cpp" "src/core/CMakeFiles/asap_core.dir/wire.cpp.o" "gcc" "src/core/CMakeFiles/asap_core.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/population/CMakeFiles/asap_population.dir/DependInfo.cmake"
  "/root/repo/src/sim/CMakeFiles/asap_sim.dir/DependInfo.cmake"
  "/root/repo/src/voip/CMakeFiles/asap_voip.dir/DependInfo.cmake"
  "/root/repo/src/netmodel/CMakeFiles/asap_netmodel.dir/DependInfo.cmake"
  "/root/repo/src/astopo/CMakeFiles/asap_astopo.dir/DependInfo.cmake"
  "/root/repo/src/common/CMakeFiles/asap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
