// Control-plane seam for select-close-relay(): where close cluster sets
// come from.
//
// The flat implementation answers every view from a CloseSetCache over the
// world's ground truth — each foreign view models an on-demand transfer
// from the target cluster's surrogate (the pre-overlay behavior, and the
// default). A federated control plane (overlay::FederatedControlPlane)
// answers foreign views from a surrogate's gossip-maintained information
// base instead, so a view may be satisfied without a fetch; the `fetched`
// out-parameter tells the selector whether to charge setup messages.
#pragma once

#include <memory>

#include "core/close_cluster.h"

namespace asap::core {

class CloseSetSource {
 public:
  virtual ~CloseSetSource() = default;

  // Returns the close set of `target` as visible to a node in cluster
  // `viewer`. Sets `fetched` when satisfying the view required an
  // on-demand transfer from the target's surrogate (the caller charges
  // 2 messages plus the set's wire bytes); a view answered locally — the
  // viewer's own set, or a fresh information-base entry — leaves it false.
  // The returned reference stays valid until the source is mutated
  // (gossip round, invalidation) or destroyed.
  virtual const CloseClusterSet& view(ClusterId viewer, ClusterId target,
                                      bool& fetched) = 0;
  [[nodiscard]] virtual const AsapParams& params() const = 0;
};

// Flat directory source: every foreign view is an on-demand fetch —
// byte-identical accounting to the pre-overlay selector.
class FlatCloseSetSource final : public CloseSetSource {
 public:
  // Non-owning view over an existing cache (e.g. AsapSelector's).
  explicit FlatCloseSetSource(CloseSetCache& cache) : cache_(&cache) {}
  // Owning: builds a private cache over the world.
  FlatCloseSetSource(const population::World& world, const AsapParams& params)
      : owned_(std::make_unique<CloseSetCache>(world, params)),
        cache_(owned_.get()) {}

  const CloseClusterSet& view(ClusterId viewer, ClusterId target,
                              bool& fetched) override {
    fetched = viewer != target;
    return cache_->get(target);
  }
  [[nodiscard]] const AsapParams& params() const override {
    return cache_->params();
  }

  [[nodiscard]] CloseSetCache& cache() { return *cache_; }

 private:
  std::unique_ptr<CloseSetCache> owned_;  // null when non-owning
  CloseSetCache* cache_;
};

}  // namespace asap::core
