// Binary wire codec for the ASAP protocol messages.
//
// The simulation passes typed payloads in memory; this codec defines what
// they would cost on the wire, so overhead can be accounted in bytes (the
// paper's Limit 4 is about *traffic*, not just message counts) and so the
// protocol has a deployable message format. Encoding is little-endian,
// length-checked, and versioned with a single format byte; decode rejects
// anything malformed without over-reading.
//
// Frame layout: [version:1][tag:1][body...]
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/protocol.h"
#include "common/expected.h"

namespace asap::core::wire {

inline constexpr std::uint8_t kWireVersion = 1;

// Serializes a payload to its wire form.
std::vector<std::uint8_t> encode(const ProtocolPayload& payload);

// Parses a wire frame; errors on wrong version, unknown tag, truncation or
// trailing garbage.
Expected<ProtocolPayload> decode(std::span<const std::uint8_t> bytes);

// Wire size without materializing the buffer (exact; verified by tests
// against encode().size()).
std::size_t encoded_size(const ProtocolPayload& payload);

// Size of a close set on the wire (the dominant term of ASAP's overhead:
// close-set replies and two-hop fetches carry whole sets).
std::size_t close_set_wire_bytes(const CloseClusterSet& set);

// Per-frame fixed costs the simulation charges on top of the payload
// (IPv4 + UDP headers), matching the trace module's packet model.
inline constexpr std::size_t kPacketOverheadBytes = 28;

}  // namespace asap::core::wire
