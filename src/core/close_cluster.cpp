#include "core/close_cluster.h"

#include <algorithm>

#include "astopo/valley_free.h"

namespace asap::core {

bool CloseClusterSet::contains(ClusterId c) const { return find(c) != nullptr; }

const CloseClusterEntry* CloseClusterSet::find(ClusterId c) const {
  auto it = std::lower_bound(entries.begin(), entries.end(), c,
                             [](const CloseClusterEntry& e, ClusterId id) {
                               return e.cluster < id;
                             });
  if (it == entries.end() || it->cluster != c) return nullptr;
  return &*it;
}

CloseClusterSet construct_close_cluster_set(const population::World& world, ClusterId owner,
                                            const AsapParams& params) {
  const auto& pop = world.pop();
  const auto& graph = world.graph();
  AsId source_as = pop.cluster(owner).as;

  // BFS on the AS graph (valley-free unless ablated), bounded at k hops.
  std::vector<std::uint8_t> hops =
      params.valley_free ? astopo::valley_free_hops(graph, source_as, params.k)
                         : astopo::unconstrained_hops(graph, source_as, params.k);

  CloseClusterSet set;
  set.owner = owner;
  for (std::uint32_t as_idx = 0; as_idx < graph.as_count(); ++as_idx) {
    if (hops[as_idx] == astopo::kVfUnreached) continue;
    for (ClusterId c : pop.clusters_in_as(AsId(as_idx))) {
      if (c == owner) continue;
      // lat()/loss() between the two cluster surrogates (a "ping").
      set.probe_messages += 2;
      Millis rtt = world.cluster_rtt_ms(owner, c);
      double loss = world.cluster_loss(owner, c);
      if (rtt >= params.lat_threshold_ms || loss >= params.loss_threshold) continue;
      set.entries.push_back(CloseClusterEntry{c, rtt, loss, hops[as_idx]});
    }
  }
  std::sort(set.entries.begin(), set.entries.end(),
            [](const CloseClusterEntry& a, const CloseClusterEntry& b) {
              return a.cluster < b.cluster;
            });
  return set;
}

CloseSetCache::CloseSetCache(const population::World& world, const AsapParams& params)
    : world_(world), params_(params), sets_(world.pop().cluster_count()) {}

CloseSetCache::~CloseSetCache() {
  for (auto& slot : sets_) delete slot.load(std::memory_order_relaxed);
}

const CloseClusterSet& CloseSetCache::get(ClusterId c) {
  auto& slot = sets_[c.value()];
  CloseClusterSet* set = slot.load(std::memory_order_acquire);
  if (set != nullptr) return *set;
  std::lock_guard<std::mutex> lock(stripes_[c.value() % kLockStripes]);
  set = slot.load(std::memory_order_relaxed);
  if (set == nullptr) {
    auto built = std::make_unique<CloseClusterSet>(
        construct_close_cluster_set(world_, c, params_));
    built_.fetch_add(1, std::memory_order_relaxed);
    probe_messages_.fetch_add(built->probe_messages, std::memory_order_relaxed);
    set = built.release();
    slot.store(set, std::memory_order_release);
  }
  return *set;
}

std::size_t CloseSetCache::invalidate_ases(std::span<const AsId> ases) {
  const auto& pop = world_.pop();
  // Flag the affected ASes once so the per-set scan is O(entries).
  std::vector<std::uint8_t> affected;
  if (!ases.empty()) {
    affected.assign(world_.graph().as_count(), 0);
    for (AsId as : ases) affected[as.value()] = 1;
  }
  std::size_t evicted = 0;
  for (std::size_t i = 0; i < sets_.size(); ++i) {
    CloseClusterSet* set = sets_[i].load(std::memory_order_relaxed);
    if (set == nullptr) continue;
    bool stale = ases.empty() || affected[pop.cluster(ClusterId(i)).as.value()] != 0;
    for (std::size_t j = 0; !stale && j < set->entries.size(); ++j) {
      stale = affected[pop.cluster(set->entries[j].cluster).as.value()] != 0;
    }
    if (!stale) continue;
    // probe_messages_ stays cumulative: the lazy rebuild spends fresh probes,
    // and that repeated cost is exactly the churn overhead fig_soak reports.
    sets_[i].store(nullptr, std::memory_order_relaxed);
    delete set;
    built_.fetch_sub(1, std::memory_order_relaxed);
    invalidated_.fetch_add(1, std::memory_order_relaxed);
    ++evicted;
  }
  return evicted;
}

}  // namespace asap::core
