// Experiment configuration files: a line-oriented `key = value` format for
// WorldParams + AsapParams, so a run can be described in a file, shared,
// and reproduced exactly (the world is deterministic given its parameters).
//
//   # asap experiment
//   seed = 20050926
//   topo.total_as = 6000
//   pop.total_peers = 23366
//   asap.k = 4
//   asap.lat_threshold_ms = 300
//
// Unknown keys are an error (they are always typos); '#' starts a comment.
#pragma once

#include <string>
#include <string_view>

#include "core/params.h"
#include "population/world.h"
#include "common/expected.h"

namespace asap::core {

// Overlay control-plane knobs (overlay.* keys). Kept as plain config here —
// core cannot depend on src/overlay — and converted to overlay::OverlayParams
// by the consumers (overlay::overlay_params_from()).
struct OverlayConfig {
  std::string tier = "flat";  // "flat" | "federated"
  double gossip_period_ms = 30'000.0;
  double ib_ttl_ms = 120'000.0;
  std::uint32_t via_budget = 1;
};

struct ExperimentConfig {
  population::WorldParams world;
  AsapParams asap;
  OverlayConfig overlay;
  std::size_t sessions = 100000;
};

// Parses config text; returns the config with defaults for absent keys.
Expected<ExperimentConfig> parse_config(std::string_view text);

// Serializes every supported key (a template for hand editing).
std::string serialize_config(const ExperimentConfig& config);

// File helpers.
Expected<ExperimentConfig> load_config_file(const std::string& path);
bool save_config_file(const std::string& path, const ExperimentConfig& config);

}  // namespace asap::core
