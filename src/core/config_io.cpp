#include "core/config_io.h"

#include <charconv>
#include <cstdio>
#include <functional>
#include <map>
#include <sstream>

namespace asap::core {

namespace {

// One registry drives parsing and serialization, so they cannot drift.
struct Field {
  std::function<bool(ExperimentConfig&, std::string_view)> set;
  std::function<std::string(const ExperimentConfig&)> get;
};

template <typename T>
bool parse_number(std::string_view text, T& out) {
  if constexpr (std::is_same_v<T, bool>) {
    if (text == "1" || text == "true") {
      out = true;
      return true;
    }
    if (text == "0" || text == "false") {
      out = false;
      return true;
    }
    return false;
  } else if constexpr (std::is_floating_point_v<T>) {
    try {
      std::size_t pos = 0;
      std::string s(text);
      double v = std::stod(s, &pos);
      if (pos != s.size()) return false;
      out = static_cast<T>(v);
      return true;
    } catch (...) {
      return false;
    }
  } else {
    T v{};
    auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
    if (ec != std::errc() || ptr != text.data() + text.size()) return false;
    out = v;
    return true;
  }
}

template <typename Ref>
Field make_field(Ref ref) {
  return Field{
      [ref](ExperimentConfig& c, std::string_view text) {
        return parse_number(text, std::invoke(ref, c));
      },
      [ref](const ExperimentConfig& c) {
        auto& value = std::invoke(ref, const_cast<ExperimentConfig&>(c));
        std::ostringstream out;
        out << +value;  // promote uint8_t to a printable integer
        return out.str();
      },
  };
}

const std::map<std::string, Field, std::less<>>& registry() {
  static const std::map<std::string, Field, std::less<>> fields = {
      {"seed", make_field([](ExperimentConfig& c) -> auto& { return c.world.seed; })},
      {"latency_epoch",
       make_field([](ExperimentConfig& c) -> auto& { return c.world.latency_epoch; })},
      {"sessions", make_field([](ExperimentConfig& c) -> auto& { return c.sessions; })},
      {"topo.total_as",
       make_field([](ExperimentConfig& c) -> auto& { return c.world.topo.total_as; })},
      {"topo.tier1_count",
       make_field([](ExperimentConfig& c) -> auto& { return c.world.topo.tier1_count; })},
      {"topo.continents",
       make_field([](ExperimentConfig& c) -> auto& { return c.world.topo.continents; })},
      {"pop.host_as_count",
       make_field([](ExperimentConfig& c) -> auto& { return c.world.pop.host_as_count; })},
      {"pop.total_peers",
       make_field([](ExperimentConfig& c) -> auto& { return c.world.pop.total_peers; })},
      {"pop.cluster_zipf_s",
       make_field([](ExperimentConfig& c) -> auto& { return c.world.pop.cluster_zipf_s; })},
      {"pop.nat_enabled",
       make_field([](ExperimentConfig& c) -> auto& { return c.world.pop.nat_enabled; })},
      {"pop.sharded_generation",
       make_field(
           [](ExperimentConfig& c) -> auto& { return c.world.pop.sharded_generation; })},
      {"pop.generation_threads",
       make_field(
           [](ExperimentConfig& c) -> auto& { return c.world.pop.generation_threads; })},
      {"oracle.cache_budget_bytes",
       make_field([](ExperimentConfig& c) -> auto& {
         return c.world.oracle_cache.budget_bytes;
       })},
      {"oracle.compact_tables",
       make_field([](ExperimentConfig& c) -> auto& {
         return c.world.oracle_cache.compact_tables;
       })},
      {"world.relay_delay_one_way_ms",
       make_field(
           [](ExperimentConfig& c) -> auto& { return c.world.relay_delay_one_way_ms; })},
      {"overlay.tier",
       Field{
           [](ExperimentConfig& c, std::string_view text) {
             if (text != "flat" && text != "federated") return false;
             c.overlay.tier = std::string(text);
             return true;
           },
           [](const ExperimentConfig& c) { return c.overlay.tier; },
       }},
      {"overlay.gossip_period_ms",
       make_field(
           [](ExperimentConfig& c) -> auto& { return c.overlay.gossip_period_ms; })},
      {"overlay.ib_ttl_ms",
       make_field([](ExperimentConfig& c) -> auto& { return c.overlay.ib_ttl_ms; })},
      {"overlay.via_budget",
       make_field([](ExperimentConfig& c) -> auto& { return c.overlay.via_budget; })},
      {"asap.k", make_field([](ExperimentConfig& c) -> auto& { return c.asap.k; })},
      {"asap.lat_threshold_ms",
       make_field([](ExperimentConfig& c) -> auto& { return c.asap.lat_threshold_ms; })},
      {"asap.loss_threshold",
       make_field([](ExperimentConfig& c) -> auto& { return c.asap.loss_threshold; })},
      {"asap.size_threshold",
       make_field([](ExperimentConfig& c) -> auto& { return c.asap.size_threshold; })},
      {"asap.probe_fraction",
       make_field([](ExperimentConfig& c) -> auto& { return c.asap.probe_fraction; })},
      {"asap.max_probe_clusters",
       make_field([](ExperimentConfig& c) -> auto& { return c.asap.max_probe_clusters; })},
      {"asap.valley_free",
       make_field([](ExperimentConfig& c) -> auto& { return c.asap.valley_free; })},
      {"asap.probe_timeout_ms",
       make_field([](ExperimentConfig& c) -> auto& { return c.asap.probe_timeout_ms; })},
      {"asap.keepalive_interval_ms",
       make_field(
           [](ExperimentConfig& c) -> auto& { return c.asap.keepalive_interval_ms; })},
      {"asap.failover_backoff_base_ms",
       make_field(
           [](ExperimentConfig& c) -> auto& { return c.asap.failover_backoff_base_ms; })},
      {"asap.failover_max_retries",
       make_field(
           [](ExperimentConfig& c) -> auto& { return c.asap.failover_max_retries; })},
      {"asap.max_backup_relays",
       make_field([](ExperimentConfig& c) -> auto& { return c.asap.max_backup_relays; })},
      {"asap.quality_failover.enabled",
       make_field(
           [](ExperimentConfig& c) -> auto& { return c.asap.quality_failover; })},
      {"asap.quality_failover.trigger_mos",
       make_field(
           [](ExperimentConfig& c) -> auto& { return c.asap.quality_trigger_mos; })},
      {"asap.quality_failover.recover_mos",
       make_field(
           [](ExperimentConfig& c) -> auto& { return c.asap.quality_recover_mos; })},
      {"asap.quality_failover.window_ms",
       make_field(
           [](ExperimentConfig& c) -> auto& { return c.asap.quality_window_ms; })},
      {"asap.quality_failover.cooldown_ms",
       make_field(
           [](ExperimentConfig& c) -> auto& { return c.asap.quality_cooldown_ms; })},
      {"asap.quality_failover.ewma_alpha",
       make_field(
           [](ExperimentConfig& c) -> auto& { return c.asap.quality_ewma_alpha; })},
      {"asap.quality_failover.min_packets",
       make_field(
           [](ExperimentConfig& c) -> auto& { return c.asap.quality_min_packets; })},
      {"asap.relay_streams_per_capacity",
       make_field([](ExperimentConfig& c) -> auto& {
         return c.asap.relay_streams_per_capacity;
       })},
      {"asap.relay_min_streams",
       make_field(
           [](ExperimentConfig& c) -> auto& { return c.asap.relay_min_streams; })},
      {"asap.admission_control",
       make_field(
           [](ExperimentConfig& c) -> auto& { return c.asap.admission_control; })},
      {"asap.via_source_routing",
       make_field(
           [](ExperimentConfig& c) -> auto& { return c.asap.via_source_routing; })},
  };
  return fields;
}

// Parse-only legacy spellings, kept so existing config files load; the
// serializer emits only the canonical (namespaced) keys above.
const std::map<std::string, std::string, std::less<>>& legacy_aliases() {
  static const std::map<std::string, std::string, std::less<>> aliases = {
      {"relay_delay_one_way_ms", "world.relay_delay_one_way_ms"},
  };
  return aliases;
}

std::string fmt_ms(double v) {
  std::ostringstream out;
  out << v;
  return out.str();
}

// Cross-field sanity checks for the failover timing knobs; returns an empty
// string when the config is sound.
std::string validate(const ExperimentConfig& config) {
  const AsapParams& a = config.asap;
  if (a.probe_timeout_ms <= 0.0) {
    return "config: asap.probe_timeout_ms must be > 0 (got " + fmt_ms(a.probe_timeout_ms) +
           "); probes could never time out";
  }
  if (a.keepalive_interval_ms <= 0.0) {
    return "config: asap.keepalive_interval_ms must be > 0 (got " +
           fmt_ms(a.keepalive_interval_ms) + "); gap detection would fire continuously";
  }
  if (a.failover_backoff_base_ms <= 0.0) {
    return "config: asap.failover_backoff_base_ms must be > 0 (got " +
           fmt_ms(a.failover_backoff_base_ms) + ")";
  }
  if (a.failover_backoff_base_ms < a.keepalive_interval_ms) {
    return "config: asap.failover_backoff_base_ms (" + fmt_ms(a.failover_backoff_base_ms) +
           ") must be >= asap.keepalive_interval_ms (" + fmt_ms(a.keepalive_interval_ms) +
           "); backing off for less than one keepalive interval re-probes before "
           "detection can observe the stream again";
  }
  if (a.relay_streams_per_capacity < 0.0) {
    return "config: asap.relay_streams_per_capacity must be >= 0 (got " +
           fmt_ms(a.relay_streams_per_capacity) + "); 0 disables the capacity model";
  }
  if (a.relay_min_streams < 1) {
    return "config: asap.relay_min_streams must be >= 1 (got " +
           std::to_string(a.relay_min_streams) +
           "); a selected relay must sustain at least one stream";
  }
  if (a.admission_control && a.relay_streams_per_capacity <= 0.0) {
    return "config: asap.admission_control requires the relay-capacity model "
           "(asap.relay_streams_per_capacity > 0); class-of-service admission "
           "only acts when routes can be saturated";
  }
  if (a.quality_failover) {
    if (a.quality_trigger_mos >= a.quality_recover_mos) {
      return "config: asap.quality_failover.trigger_mos (" +
             fmt_ms(a.quality_trigger_mos) +
             ") must be < asap.quality_failover.recover_mos (" +
             fmt_ms(a.quality_recover_mos) +
             "); without the hysteresis band a path oscillating around one "
             "threshold flaps the route";
    }
    if (a.quality_window_ms < a.keepalive_interval_ms) {
      return "config: asap.quality_failover.window_ms (" + fmt_ms(a.quality_window_ms) +
             ") must be >= asap.keepalive_interval_ms (" +
             fmt_ms(a.keepalive_interval_ms) +
             "); a shorter observation window races the hard gap detector on "
             "the same silence";
    }
    if (a.quality_cooldown_ms < a.failover_backoff_base_ms) {
      return "config: asap.quality_failover.cooldown_ms (" +
             fmt_ms(a.quality_cooldown_ms) +
             ") must be >= asap.failover_backoff_base_ms (" +
             fmt_ms(a.failover_backoff_base_ms) +
             "); a cooldown shorter than one backoff round can re-trigger "
             "while the previous switchover is still settling";
    }
    if (a.quality_ewma_alpha <= 0.0 || a.quality_ewma_alpha > 1.0) {
      return "config: asap.quality_failover.ewma_alpha must be in (0, 1] (got " +
             fmt_ms(a.quality_ewma_alpha) + ")";
    }
    if (a.quality_min_packets < 1) {
      return "config: asap.quality_failover.min_packets must be >= 1 (got " +
             std::to_string(a.quality_min_packets) +
             "); a verdict needs at least one observation";
    }
  }
  const OverlayConfig& o = config.overlay;
  if (o.tier == "federated") {
    if (o.gossip_period_ms <= 0.0) {
      return "config: overlay.gossip_period_ms must be > 0 (got " +
             fmt_ms(o.gossip_period_ms) +
             ") when overlay.tier = federated; surrogates must refresh their "
             "information bases";
    }
    if (o.ib_ttl_ms < o.gossip_period_ms) {
      return "config: overlay.ib_ttl_ms (" + fmt_ms(o.ib_ttl_ms) +
             ") must be >= overlay.gossip_period_ms (" + fmt_ms(o.gossip_period_ms) +
             "); entries expiring before the next refresh degenerate the "
             "federated plane to per-call fetching";
    }
  }
  if (o.via_budget > 4) {
    return "config: overlay.via_budget must be <= 4 (got " +
           std::to_string(o.via_budget) +
           "); each via hop adds two relay delays, and beyond two hops no "
           "path in the model improves on the direct or one-hop routes";
  }
  return std::string();
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

Expected<ExperimentConfig> parse_config(std::string_view text) {
  ExperimentConfig config;
  std::size_t line_no = 0;
  while (!text.empty()) {
    ++line_no;
    auto nl = text.find('\n');
    std::string_view line = text.substr(0, nl);
    text = nl == std::string_view::npos ? std::string_view() : text.substr(nl + 1);
    if (auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;
    auto eq = line.find('=');
    if (eq == std::string_view::npos) {
      return make_error("config line " + std::to_string(line_no) + ": expected key = value");
    }
    std::string_view key = trim(line.substr(0, eq));
    std::string_view value = trim(line.substr(eq + 1));
    auto it = registry().find(key);
    if (it == registry().end()) {
      if (auto alias = legacy_aliases().find(key); alias != legacy_aliases().end()) {
        it = registry().find(alias->second);
      }
    }
    if (it == registry().end()) {
      return make_error("config line " + std::to_string(line_no) + ": unknown key '" +
                        std::string(key) + "'");
    }
    if (!it->second.set(config, value)) {
      return make_error("config line " + std::to_string(line_no) + ": bad value '" +
                        std::string(value) + "' for " + std::string(key));
    }
  }
  if (std::string problem = validate(config); !problem.empty()) {
    return make_error(problem);
  }
  return config;
}

std::string serialize_config(const ExperimentConfig& config) {
  std::string out = "# asap experiment configuration\n";
  for (const auto& [key, field] : registry()) {
    out += key;
    out += " = ";
    out += field.get(config);
    out += '\n';
  }
  return out;
}

Expected<ExperimentConfig> load_config_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return make_error("config: cannot open " + path);
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return parse_config(text);
}

bool save_config_file(const std::string& path, const ExperimentConfig& config) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  std::string text = serialize_config(config);
  std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return written == text.size();
}

}  // namespace asap::core
