// construct-close-cluster-set() — paper Fig. 9.
//
// Runs (conceptually) on a cluster surrogate s: breadth-first search on the
// annotated AS graph from s's AS under valley-free constraints, up to k AS
// hops; every cluster whose surrogate answers a ping within the latency
// threshold and below the loss threshold joins the close cluster set.
#pragma once

#include <vector>

#include "core/params.h"
#include "population/world.h"
#include "common/ids.h"

namespace asap::core {

struct CloseClusterEntry {
  ClusterId cluster;
  Millis rtt_ms;       // measured surrogate-to-surrogate RTT
  double loss;         // measured surrogate-to-surrogate loss
  std::uint8_t as_hops;  // valley-free hop estimate used during the BFS
};

struct CloseClusterSet {
  ClusterId owner;
  // Sorted by cluster id for O(set) intersection in select-close-relay().
  std::vector<CloseClusterEntry> entries;
  // Probe messages spent constructing the set (2 per candidate cluster).
  std::uint64_t probe_messages = 0;

  [[nodiscard]] bool contains(ClusterId c) const;
  [[nodiscard]] const CloseClusterEntry* find(ClusterId c) const;
};

// Builds the close cluster set of `owner` over the world's ground truth.
CloseClusterSet construct_close_cluster_set(const population::World& world, ClusterId owner,
                                            const AsapParams& params);

// Lazily-built cache of close cluster sets, shared by the evaluation driver
// (one set per caller/callee/candidate cluster, reused across sessions just
// as surrogates amortize construction across their cluster's sessions).
class CloseSetCache {
 public:
  CloseSetCache(const population::World& world, const AsapParams& params)
      : world_(world), params_(params) {}

  const CloseClusterSet& get(ClusterId c);

  [[nodiscard]] std::size_t built_count() const { return built_; }
  [[nodiscard]] std::uint64_t total_probe_messages() const { return probe_messages_; }
  [[nodiscard]] const AsapParams& params() const { return params_; }

 private:
  const population::World& world_;
  AsapParams params_;
  std::vector<std::unique_ptr<CloseClusterSet>> sets_;
  std::size_t built_ = 0;
  std::uint64_t probe_messages_ = 0;
};

}  // namespace asap::core
