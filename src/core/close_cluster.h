// construct-close-cluster-set() — paper Fig. 9.
//
// Runs (conceptually) on a cluster surrogate s: breadth-first search on the
// annotated AS graph from s's AS under valley-free constraints, up to k AS
// hops; every cluster whose surrogate answers a ping within the latency
// threshold and below the loss threshold joins the close cluster set.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/params.h"
#include "population/world.h"
#include "common/ids.h"

namespace asap::core {

struct CloseClusterEntry {
  ClusterId cluster;
  Millis rtt_ms;       // measured surrogate-to-surrogate RTT
  double loss;         // measured surrogate-to-surrogate loss
  std::uint8_t as_hops;  // valley-free hop estimate used during the BFS
};

struct CloseClusterSet {
  ClusterId owner;
  // Sorted by cluster id for O(set) intersection in select-close-relay().
  std::vector<CloseClusterEntry> entries;
  // Probe messages spent constructing the set (2 per candidate cluster).
  std::uint64_t probe_messages = 0;

  [[nodiscard]] bool contains(ClusterId c) const;
  [[nodiscard]] const CloseClusterEntry* find(ClusterId c) const;
};

// Builds the close cluster set of `owner` over the world's ground truth.
CloseClusterSet construct_close_cluster_set(const population::World& world, ClusterId owner,
                                            const AsapParams& params);

// Lazily-built cache of close cluster sets, shared by the evaluation driver
// (one set per caller/callee/candidate cluster, reused across sessions just
// as surrogates amortize construction across their cluster's sessions).
//
// Concurrency-safe: get() may be called from many threads at once. The slot
// array is pre-sized at construction (the world's cluster count is fixed),
// lookups are a single acquire load, and slot initialization is
// double-checked under a striped lock so each set is built exactly once —
// built_count() and total_probe_messages() therefore report the same
// Fig. 18 overhead numbers regardless of thread count.
class CloseSetCache {
 public:
  CloseSetCache(const population::World& world, const AsapParams& params);
  ~CloseSetCache();

  CloseSetCache(const CloseSetCache&) = delete;
  CloseSetCache& operator=(const CloseSetCache&) = delete;

  const CloseClusterSet& get(ClusterId c);

  // --- Incremental maintenance (route flaps / churn) -----------------------
  // Evicts every built set that can observe a routing change in the given
  // ASes: sets owned by a cluster in an affected AS, and sets holding an
  // entry whose cluster sits in an affected AS (its measured rtt/loss rode
  // the invalidated routes). An empty span evicts every built set. Evicted
  // sets rebuild lazily on the next get(). Returns the number of sets
  // evicted. NOT thread-safe against concurrent get(): the evicted sets are
  // deleted immediately, so only call from single-threaded simulations
  // (matching the World mutation hooks that produce the AS list).
  std::size_t invalidate_ases(std::span<const AsId> ases);
  [[nodiscard]] std::uint64_t invalidated_count() const {
    return invalidated_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t built_count() const {
    return built_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_probe_messages() const {
    return probe_messages_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const AsapParams& params() const { return params_; }

 private:
  static constexpr std::size_t kLockStripes = 64;

  const population::World& world_;
  AsapParams params_;
  // Owned; a slot is published exactly once with release ordering and stays
  // at a stable address for the cache's lifetime.
  std::vector<std::atomic<CloseClusterSet*>> sets_;
  std::array<std::mutex, kLockStripes> stripes_;
  std::atomic<std::size_t> built_{0};
  std::atomic<std::uint64_t> probe_messages_{0};
  std::atomic<std::uint64_t> invalidated_{0};
};

}  // namespace asap::core
