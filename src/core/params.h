// ASAP protocol parameters (paper Sec. 6.2 / 7.1 defaults).
#pragma once

#include <cstdint>

#include "common/units.h"

namespace asap::core {

struct AsapParams {
  // Valley-free BFS depth for close-cluster-set construction. The paper
  // sets k = 4: >90% of sessions with direct RTT below 300 ms have at most
  // 4 AS hops.
  std::uint8_t k = 4;
  // Latency threshold (ms) to stop path expansion / accept relay paths;
  // "latT can be set close to 300 ms" (one-way limit 150 ms).
  Millis lat_threshold_ms = 300.0;
  // Loss-rate threshold to accept a cluster into the close set.
  double loss_threshold = 0.05;
  // One-hop relay-node count below which two-hop selection starts
  // ("sizeT in select-close-relay() ... set to 300").
  std::uint32_t size_threshold = 300;
  // Per-intermediary one-way relay delay (Sec. 3.2: measured ~12 ms, 20 ms
  // used conservatively).
  Millis relay_delay_one_way_ms = kRelayDelayOneWayMs;
  // Fraction of accepted candidate clusters an end host actually probes
  // before picking the relay (Sec. 7.3's overhead-reduction knob).
  double probe_fraction = 0.10;
  // Hard cap on verification probes per session (0 = no cap).
  std::uint32_t max_probe_clusters = 400;
  // Cap on enumerated two-hop cluster pairs per session (the count of
  // two-hop *paths* is still exact; this only bounds stored pairs).
  std::uint32_t max_two_hop_pairs = 4096;
  // If false, the close-set BFS ignores valley-free constraints (ablation).
  bool valley_free = true;

  // --- Failure detection & mid-call failover (robustness extension) --------
  // Reply deadline for pings, verification probes and close-set requests
  // (previously a hard-coded 3000 ms protocol constant).
  Millis probe_timeout_ms = 3000.0;
  // Voice keepalive cadence: a relayed stream that should be flowing but has
  // received nothing for this long is declared broken and failover starts.
  // Must exceed the voice packet interval (20 ms) by a wide margin.
  Millis keepalive_interval_ms = 250.0;
  // Base of the exponential backoff between failover rounds when every
  // known backup relay is dead; round i waits base * 2^i before refreshing
  // the close set and re-probing. Must be >= keepalive_interval_ms.
  Millis failover_backoff_base_ms = 400.0;
  // Backoff rounds before a failing call gives up and degrades (loses the
  // remaining voice instead of retrying forever).
  std::uint32_t failover_max_retries = 4;
  // Ranked backup relays retained from select_close_relay()'s probed
  // candidates for instant mid-call switchover (0 = rely on close-set
  // refresh alone).
  std::uint32_t max_backup_relays = 3;

  // --- Quality-triggered failover (gray-failure resilience) ----------------
  // When true, the callee runs a receiver-side quality monitor over the
  // relayed voice stream: windowed EWMA loss (sequence gaps) plus an EWMA
  // one-way-delay estimate feed the call's E-Model, and a stream whose
  // estimated MOS stays below quality_trigger_mos for quality_window_ms
  // evacuates onto the ranked backup relays through the existing failover
  // machinery — a relay that is alive but gray no longer holds the call
  // hostage. Off by default: every existing workload is bit-identical with
  // it off.
  bool quality_failover = false;
  // Hysteresis thresholds: estimated MOS below `trigger` (sustained for the
  // observation window) fires a failover; only MOS at or above `recover`
  // closes the below-floor episode. trigger < recover, so a path oscillating
  // between them cannot flap the route.
  double quality_trigger_mos = 2.8;
  double quality_recover_mos = 3.3;
  // Minimum time the estimate must stay below the trigger before a failover
  // fires. Must be >= keepalive_interval_ms (shorter windows would race the
  // hard gap detector on the same silence).
  Millis quality_window_ms = 500.0;
  // Per-call cooldown between quality-triggered failovers. Must be >=
  // failover_backoff_base_ms (a cooldown shorter than one backoff round
  // could re-trigger while the previous switchover is still settling).
  Millis quality_cooldown_ms = 2000.0;
  // EWMA smoothing factor for the loss and delay estimators, in (0, 1].
  double quality_ewma_alpha = 0.1;
  // Packets the estimators must absorb (after stream start or a committed
  // switchover) before a verdict counts.
  std::uint32_t quality_min_packets = 10;

  // --- Relay-capacity contention (multi-session runtime) -------------------
  // Concurrent forwarded voice streams a relay host sustains per unit of
  // its abstract capability score (Peer::capacity, Sec. 6's nodal
  // information): cap(h) = max(relay_min_streams,
  // floor(capacity * relay_streams_per_capacity)). 0 disables the capacity
  // model entirely — no reservations, no ProbeBusy — which keeps
  // single-call workloads bit-identical to the pre-contention runtime.
  double relay_streams_per_capacity = 0.0;
  // Floor on any enabled relay's stream cap: a host selected as relay must
  // sustain at least one bidirectional stream to be a relay at all.
  std::uint32_t relay_min_streams = 1;

  // --- Class-of-service admission control (living-world soak runtime) ------
  // When true (requires the capacity model above), relay-capacity shedding
  // becomes policy-driven: calls carry a ServiceClass (gold/silver/bronze),
  // sheds are counted per class, and a higher-class call that cannot reserve
  // a route may preempt the newest strictly-lower-class stream occupying a
  // saturated hop (the victim reroutes through the mid-call failover path).
  // Off by default: every existing workload is bit-identical with it off.
  bool admission_control = false;

  // --- Via-tier source routing (tiered overlay, DESIGN.md §15) -------------
  // When true, a call committing a relayed route announces the forwarding
  // chain with a ViaSetup control frame before the first voice packet: each
  // via relay pops the front hop and forwards, the same discipline the
  // socket datapath's asap-relay applies, so the sim and socket tiers share
  // one source-route encoding. Off by default: no frame is emitted and
  // every existing workload is bit-identical with it off.
  bool via_source_routing = false;
};

// --- Shared world-model constants (Sec. 3.2 measurement model) -------------
// These sit alongside the protocol parameters above because they are model
// inputs of the same evaluation, not derived quantities; they are header-only
// so lower layers (population::World) can share them without a link edge.
//
// Hosts inside one AS never traverse an inter-AS policy path; the paper's
// same-AS measurements still show a small positive floor (last-hop switching
// plus the intra-AS hop), modelled as a 2 ms one-way path.
inline constexpr Millis kIntraAsOneWayMs = 2.0;
// Round trip over the intra-AS floor, both directions (the former magic
// `2.0 * 2.0` in World::host_rtt_ms; access delays are added on top).
inline constexpr Millis kIntraAsRttMs = 2.0 * kIntraAsOneWayMs;
// Residual round-trip loss between two hosts of the same AS: effectively
// lossless (0.05%), matching the near-zero loss the paper reports for
// same-AS probe pairs (the former magic `0.0005` in World::host_loss).
inline constexpr double kIntraAsRttLoss = 0.0005;

}  // namespace asap::core
