#include "core/protocol.h"

#include <algorithm>
#include <cassert>

#include "core/wire.h"
#include "voip/emodel.h"

namespace asap::core {

std::string_view wire_kind_name(std::size_t variant_index) {
  // Order matches the ProtocolPayload variant declaration.
  static constexpr std::string_view kNames[] = {
      "join_request",      "join_reply",     "close_set_request",
      "close_set_reply",   "publish_info",   "surrogate_failure_report",
      "surrogate_update",  "probe",          "probe_reply",
      "call_setup",        "call_accept",    "voice_packet",
      "relay_failure_notice", "probe_busy",
      "rendezvous_register",  "rendezvous_bound",
      "ib_push",           "ib_request",     "via_setup"};
  static_assert(std::size(kNames) == std::variant_size_v<ProtocolPayload>);
  return variant_index < std::size(kNames) ? kNames[variant_index] : "?";
}

ProtocolCounters::ProtocolCounters(MetricsRegistry& registry, bool capacity_metrics,
                                   bool admission_metrics, bool via_metrics)
    : close_sets_built(registry.counter("surrogate.close_sets_built")),
      construction_probes(registry.counter("surrogate.construction_probes")),
      surrogate_failures_injected(registry.counter("surrogate.failures_injected")),
      host_failures_injected(registry.counter("host.failures_injected")),
      host_recoveries(registry.counter("host.recoveries")),
      active_relay_crashes(registry.counter("fault.active_relay_crashes")),
      loss_bursts(registry.counter("fault.loss_bursts")),
      burst_voice_drops(registry.counter("fault.burst_voice_drops")),
      fault_events_applied(registry.counter("fault.events_applied")),
      close_set_giveups(registry.counter("host.close_set_giveups")),
      surrogate_timeouts(registry.counter("host.surrogate_timeouts")),
      surrogates_elected(registry.counter("bootstrap.surrogates_elected")),
      publishes_received(registry.counter("surrogate.publishes_received")),
      probes_sent(registry.counter("probe.sent")),
      probes_answered(registry.counter("probe.answered")),
      probe_timeouts(registry.counter("probe.timeouts")),
      gaps_detected(registry.counter("failover.gaps_detected")),
      notices_received(registry.counter("failover.notices_received")),
      failover_probes(registry.counter("failover.probes")),
      dead_backups(registry.counter("failover.dead_backups")),
      switchovers(registry.counter("failover.switchovers")),
      backoffs(registry.counter("failover.backoffs")),
      close_set_refreshes(registry.counter("failover.close_set_refreshes")),
      giveups(registry.counter("failover.giveups")),
      queue_peak_depth(registry.gauge("sim.queue_peak_depth")),
      setup_time_ms(registry.histogram(
          "call.setup_time_ms", {50.0, 100.0, 200.0, 300.0, 500.0, 1000.0, 2000.0, 5000.0})),
      failover_latency_ms(registry.histogram(
          "failover.latency_ms", {100.0, 250.0, 500.0, 1000.0, 2000.0, 4000.0, 8000.0})),
      mos_pre_fault(registry.histogram("voip.mos_pre_fault",
                                       {1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5})),
      mos_post_failover(registry.histogram("voip.mos_post_failover",
                                           {1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5})) {
  if (capacity_metrics) {
    capacity_probe_rejections = registry.counter("capacity.probe_rejections");
    capacity_reservations = registry.counter("capacity.reservations");
    capacity_releases = registry.counter("capacity.releases");
    capacity_sheds = registry.counter("capacity.sheds");
    capacity_reroutes = registry.counter("capacity.reroutes");
    relay_peak_streams = registry.gauge("capacity.peak_relay_streams");
  }
  if (admission_metrics) {
    admission_preemptions = registry.counter("admission.preemptions");
    admission_sheds_bronze = registry.counter("admission.sheds_bronze");
    admission_sheds_silver = registry.counter("admission.sheds_silver");
    admission_sheds_gold = registry.counter("admission.sheds_gold");
  }
  for (std::size_t k = 0; k < wire_by_kind.size(); ++k) {
    // ProbeBusy frames only exist under the capacity model; keep the series
    // out of capacity-off digests.
    if (!capacity_metrics && wire_kind_name(k) == "probe_busy") continue;
    // The rendezvous pair only exists between a real endpoint and the
    // asap-relay daemon, which counts them in its own relayd.* registry
    // (src/relay_daemon); the simulation never sends them, so the handles
    // stay detached and the sim digest key set is unchanged.
    if (wire_kind_name(k) == "rendezvous_register" ||
        wire_kind_name(k) == "rendezvous_bound") {
      continue;
    }
    // Overlay control-plane kinds (PR 10): IbPush/IbRequest gossip is
    // accounted by overlay::FederatedControlPlane's own series, and
    // ViaSetup frames only flow when via source routing is on — the
    // handles stay detached so flat-mode sim digests keep the historical
    // key set.
    if (wire_kind_name(k) == "ib_push" || wire_kind_name(k) == "ib_request") continue;
    if (!via_metrics && wire_kind_name(k) == "via_setup") continue;
    wire_by_kind[k] = registry.counter("wire." + std::string(wire_kind_name(k)));
  }
}

GrayFailCounters::GrayFailCounters(MetricsRegistry& registry)
    : degrade_drops(registry.counter("net.degrade_drops")),
      reordered(registry.counter("net.reordered")),
      duplicated(registry.counter("net.duplicated")),
      corrupted(registry.counter("net.corrupted")),
      unknown_kind(registry.counter("wire.unknown_kind")),
      decode_errors(registry.counter("wire.decode_errors")),
      unknown_session(registry.counter("wire.unknown_session")),
      invalid_field(registry.counter("wire.invalid_field")),
      node_degrades(registry.counter("fault.node_degrades")),
      quality_triggers(registry.counter("quality_failover.triggers")),
      quality_cooldown_suppressed(registry.counter("quality_failover.cooldown_suppressed")),
      quality_recoveries(registry.counter("quality_failover.recoveries")),
      quality_detection_ms(registry.histogram(
          "quality_failover.detection_ms",
          {100.0, 250.0, 500.0, 1000.0, 2000.0, 4000.0, 8000.0})) {}

ChurnCounters::ChurnCounters(MetricsRegistry& registry)
    : peer_leaves(registry.counter("churn.peer_leaves")),
      peer_joins(registry.counter("churn.peer_joins")),
      link_fails(registry.counter("churn.link_fails")),
      link_recoveries(registry.counter("churn.link_recoveries")),
      policy_changes(registry.counter("churn.policy_changes")),
      events_skipped(registry.counter("churn.events_skipped")),
      oracle_evictions(registry.counter("churn.oracle_evictions")),
      close_sets_invalidated(registry.counter("churn.close_sets_invalidated")),
      close_set_staleness_ms(registry.histogram(
          "churn.close_set_staleness_ms",
          {100.0, 500.0, 1000.0, 5000.0, 10000.0, 30000.0, 60000.0})) {}

// State machine of one in-flight call, driven by message handlers.
struct AsapSystem::ActiveCall {
  SessionId session;
  HostId caller;
  HostId callee;
  Millis voice_duration_ms = 0.0;
  voip::Codec codec = voip::kG729aVad;
  ServiceClass service_class = ServiceClass::kBronze;
  Millis started_at_ms = 0.0;
  sim::MessageCounter counter_at_start;

  CallOutcome outcome;
  bool done = false;
  bool traced = false;  // trace sampling gate, fixed at call start

  // Relay candidate probing.
  struct Candidate {
    ClusterId cluster;
    Millis callee_leg_rtt_ms = 0.0;  // from the callee's close set
    Millis caller_leg_rtt_ms = kUnreachableMs;  // measured by probe
  };
  std::vector<Candidate> candidates;
  std::size_t probes_outstanding = 0;
  std::shared_ptr<const CloseClusterSet> callee_set;

  std::uint64_t one_hop_nodes = 0;

  // Two-hop expansion (triggered when the one-hop node set is below sizeT):
  // close sets of OS surrogates are fetched over the network and intersected
  // with the callee's set.
  bool two_hop_phase = false;
  bool relay_decided = false;
  std::size_t two_hop_fetches_outstanding = 0;
  Millis best_two_hop_estimate_ms = kUnreachableMs;
  HostId two_hop_r1 = HostId::invalid();
  HostId two_hop_r2 = HostId::invalid();
  // Best one-hop pick, remembered across the two-hop phase.
  Millis best_one_hop_estimate_ms = kUnreachableMs;
  ClusterId best_one_hop_cluster = ClusterId::invalid();

  // Voice accounting.
  Millis first_voice_sent_ms = -1.0;
  double voice_delay_sum_ms = 0.0;

  // --- Mid-call failover state ---------------------------------------------
  // Current relay chain, mutable mid-call: every voice send reads it at fire
  // time, so a committed switchover redirects the rest of the stream.
  std::vector<NodeId> route;
  // Relay hops currently holding a capacity-slot reservation for this call
  // (empty when the capacity model is off).
  std::vector<NodeId> reserved_route;
  // Ranked backup one-hop relays (cluster surrogates), best first; rebuilt
  // from a fresh close set when exhausted.
  std::vector<HostId> backups;
  std::size_t next_backup = 0;
  bool failover_in_progress = false;  // caller is probing backups
  bool notice_in_flight = false;      // callee reported, caller not yet acting
  std::uint32_t failover_rounds = 0;  // backoff rounds spent on current fault
  // Gap detection reference: last time the receiver heard voice, or the time
  // it could first legitimately expect to (stream/switchover start + RTT).
  Millis detect_floor_ms = -1.0;
  bool any_rx = false;
  std::uint32_t last_rx_seq = 0;
  Millis last_voice_rx_ms = -1.0;
  Millis fault_detected_ms = -1.0;  // first detection (segment boundary)
  Millis first_switch_ms = -1.0;    // first committed switchover
  Millis gap_started_ms = -1.0;     // open silence interval, -1 when closed
  // Segmented voice accounting: the pre-fault segment ends at the last
  // sequence number the callee received before the gap opened (packets sent
  // into the dead relay afterwards are the switchover window, not a quality
  // segment); the post-failover segment is everything stamped after the
  // first committed switchover.
  std::uint32_t sent_pre = 0, sent_post = 0;
  std::uint32_t rcv_pre = 0, rcv_post = 0;
  double delay_sum_pre = 0.0, delay_sum_post = 0.0;

  // --- Gray-failure resilience state ---------------------------------------
  // Receiver-side dedup/reorder filter: one flag per expected sequence slot,
  // sized when the stream starts. Frames outside the range (corrupted or
  // forged) are dropped before they can touch the accounting.
  std::vector<std::uint8_t> rx_seen;
  // Quality monitor (only driven when AsapParams::quality_failover): EWMA
  // loss/one-way-delay estimators, the hysteresis window and the per-call
  // trigger cooldown reference.
  double q_loss_ewma = 0.0;
  Millis q_delay_ewma_ms = 0.0;
  std::uint32_t q_samples = 0;
  Millis q_below_since_ms = -1.0;   // start of the current below-floor episode
  Millis q_last_trigger_ms = -1.0;  // cooldown reference, -1 = never fired
  bool q_cooldown_counted = false;  // one suppression count per episode
};

AsapSystem::AsapSystem(population::World& world, const AsapParams& params,
                       std::size_t bootstrap_count, MetricsRegistry* metrics)
    : world_(world), params_(params), net_(queue_, world.oracle()),
      owned_metrics_(metrics == nullptr ? std::make_unique<MetricsRegistry>() : nullptr),
      metrics_(metrics == nullptr ? owned_metrics_.get() : metrics),
      counters_(*metrics_, params.relay_streams_per_capacity > 0.0,
                params.admission_control && params.relay_streams_per_capacity > 0.0,
                params.via_source_routing),
      fault_rng_(world.fork_rng(0xFA177)), churn_rng_(world.fork_rng(0xC402E)) {
  net_.set_payload_sizer([](const ProtocolPayload& p) {
    return wire::encoded_size(p) + wire::kPacketOverheadBytes;
  });
  // Loss-burst injection: during an armed burst episode, voice packets die
  // in flight with probability voice_drop_p_. The RNG is only consulted
  // inside a burst, so fault-free runs draw nothing and stay bit-identical
  // to pre-fault-injection behaviour. Degradation episodes extend the same
  // hook (ramped gray loss) plus the perturbation/corruption hooks below;
  // all of them no-op — zero RNG draws — while no episode is active.
  net_.set_drop_fn([this](NodeId from, NodeId to, sim::MessageCategory cat) {
    bool drop = cat == sim::MessageCategory::kVoice && voice_drop_p_ > 0.0 &&
                fault_rng_.chance(voice_drop_p_);
    if (drop) {
      counters_.burst_voice_drops.inc();
      return true;
    }
    return degrade_drop(from, to, cat);
  });
  net_.set_perturb_fn([this](NodeId from, NodeId to, sim::MessageCategory cat) {
    return perturb_message(from, to, cat);
  });
  net_.set_mutate_fn(
      [this](NodeId from, NodeId to, sim::MessageCategory cat, ProtocolPayload& p) {
        return mutate_message(from, to, cat, p);
      });
  const auto& pop = world_.pop();
  hosts_.resize(pop.peer_count());
  surrogate_sets_.resize(pop.cluster_count());

  // Relay-capacity model: a host's concurrent-stream cap is its abstract
  // capability score scaled by the knob, floored so every host can carry at
  // least relay_min_streams (paper Sec. 6: a selected relay must sustain
  // one bidirectional stream).
  capacity_enabled_ = params_.relay_streams_per_capacity > 0.0;
  admission_enabled_ = capacity_enabled_ && params_.admission_control;
  if (capacity_enabled_) {
    relay_stream_cap_.resize(pop.peer_count());
    relay_streams_.assign(pop.peer_count(), 0u);
    for (std::uint32_t i = 0; i < pop.peer_count(); ++i) {
      double scaled = pop.peer(HostId(i)).capacity * params_.relay_streams_per_capacity;
      relay_stream_cap_[i] = std::max<std::uint32_t>(params_.relay_min_streams,
                                                     static_cast<std::uint32_t>(scaled));
    }
  }

  // One network node per peer, ids aligned with HostId.
  for (std::uint32_t i = 0; i < pop.peer_count(); ++i) {
    const auto& peer = pop.peer(HostId(i));
    NodeId id = net_.add_node(peer.as, peer.access_one_way_ms,
                              [this, i](NodeId from, const ProtocolPayload& p) {
                                handle_message(NodeId(i), from, p);
                              });
    assert(id.value() == i);
    (void)id;
    hosts_[i].cluster = peer.cluster;
  }

  // Bootstraps: dedicated, always-on servers in tier-1 ASes.
  for (std::size_t b = 0; b < bootstrap_count; ++b) {
    AsId as = world_.topo().tier1[b % world_.topo().tier1.size()];
    NodeId id = net_.add_node(as, 0.5, [this](NodeId, const ProtocolPayload&) {});
    // Re-register with the final id captured.
    net_.set_handler(id, [this, id](NodeId from, const ProtocolPayload& p) {
      handle_bootstrap(id, from, p);
    });
    bootstraps_.push_back(id);
  }

  // Quality-failover workloads export the grayfail series from the start
  // (the detector may legitimately count nothing on a healthy world, but
  // the zeroes must be visible); everything else registers lazily.
  if (params_.quality_failover) grayfail();
}

AsapSystem::~AsapSystem() = default;

NodeId AsapSystem::surrogate_node(ClusterId c) const {
  HostId s = world_.pop().cluster(c).surrogate;
  return s.valid() ? NodeId(s.value()) : NodeId::invalid();
}

bool AsapSystem::is_surrogate_of(ClusterId c, NodeId node) const {
  const auto surrogates = world_.pop().cluster_surrogates(c);
  for (HostId s : surrogates) {
    if (NodeId(s.value()) == node) return true;
  }
  return false;
}

AsapSystem::ActiveCall* AsapSystem::find_session(SessionId session) {
  auto it = sessions_.find(session.value());
  return it == sessions_.end() ? nullptr : it->second.get();
}

void AsapSystem::send(NodeId from, NodeId to, sim::MessageCategory cat,
                      ProtocolPayload payload) {
  if (!to.valid()) return;
  counters_.wire_by_kind[payload.index()].inc();
  net_.send(from, to, cat, std::move(payload));
}

void AsapSystem::send_probe(NodeId from, NodeId to, ActiveCall* call, bool relay_check,
                            std::function<void(Millis)> on_reply) {
  std::uint64_t token = next_token_++;
  if (relay_check) token |= kRelayCheckTokenBit;
  counters_.probes_sent.inc();
  if (trace_ && call != nullptr && call->traced) {
    trace_->record(call->session.value(), TraceSpan::kProbeSent, queue_.now(),
                   to.value(), token);
  }
  pending_probes_[token] =
      PendingProbe{std::move(on_reply), queue_.now(), false,
                   call != nullptr ? call->session : SessionId::invalid()};
  send(from, to, sim::MessageCategory::kProbe, Probe{token});
  queue_.after(params_.probe_timeout_ms, [this, token]() {
    auto it = pending_probes_.find(token);
    if (it == pending_probes_.end() || it->second.done) return;
    it->second.done = true;
    counters_.probe_timeouts.inc();
    auto cb = std::move(it->second.on_reply);
    pending_probes_.erase(it);
    cb(kUnreachableMs);
  });
}

std::shared_ptr<const CloseClusterSet> AsapSystem::surrogate_close_set(ClusterId c) {
  auto& slot = surrogate_sets_[c.value()];
  if (!slot) {
    slot = std::make_shared<CloseClusterSet>(
        construct_close_cluster_set(world_, c, params_));
    counters_.close_sets_built.inc();
    counters_.construction_probes.add(slot->probe_messages);
    // Staleness bookkeeping is only sized once a churn plan is armed.
    if (!surrogate_set_built_ms_.empty()) {
      surrogate_set_built_ms_[c.value()] = queue_.now();
    }
  }
  return slot;
}

void AsapSystem::join_all() {
  const auto& pop = world_.pop();
  for (std::uint32_t i = 0; i < pop.peer_count(); ++i) {
    NodeId me(i);
    NodeId bootstrap = bootstraps_[i % bootstraps_.size()];
    send(me, bootstrap, sim::MessageCategory::kJoin, JoinRequest{pop.peer(HostId(i)).ip});
  }
  queue_.run();
}

// --- Fault injection ---------------------------------------------------------
// apply_fault() is the single entry point; the legacy fail_*/recover_host
// methods are wrappers that synthesize the equivalent FaultEvent (kept for
// tests and ad-hoc churn drivers). The crash_*/revive_* impls below hold the
// actual state flips so internal paths (deferred relay kills) can bypass the
// per-event accounting exactly as before.

void AsapSystem::crash_surrogate(ClusterId c) {
  NodeId s = surrogate_node(c);
  if (!s.valid()) return;
  hosts_[s.value()].alive = false;
  counters_.surrogate_failures_injected.inc();
}

void AsapSystem::crash_host(HostId h) {
  hosts_[h.value()].alive = false;
  counters_.host_failures_injected.inc();
}

void AsapSystem::revive_host(HostId h) {
  if (hosts_[h.value()].alive) return;
  hosts_[h.value()].alive = true;
  counters_.host_recoveries.inc();
}

void AsapSystem::fail_surrogate(ClusterId c) {
  apply_fault(sim::FaultEvent{queue_.now(), sim::FaultKind::kSurrogateCrash, c.value(), 0.0, {}});
}

void AsapSystem::fail_host(HostId h) {
  apply_fault(sim::FaultEvent{queue_.now(), sim::FaultKind::kHostCrash, h.value(), 0.0, {}});
}

void AsapSystem::recover_host(HostId h) {
  apply_fault(sim::FaultEvent{queue_.now(), sim::FaultKind::kHostRecovery, h.value(), 0.0, {}});
}

void AsapSystem::arm_fault_plan(const sim::FaultPlan& plan) {
  plan.arm(queue_, [this](const sim::FaultEvent& event) { apply_fault(event); });
  for (const auto& event : plan.events()) {
    if (event.kind == sim::FaultKind::kActiveRelayCrash ||
        event.kind == sim::FaultKind::kActiveRelayDegrade) {
      pending_call_faults_.push_back(event);
    }
    // Register the grayfail series up front so detector-off degradation runs
    // still export the net.* effect counters.
    if (event.kind == sim::FaultKind::kNodeDegradeStart ||
        event.kind == sim::FaultKind::kNodeDegradeEnd ||
        event.kind == sim::FaultKind::kActiveRelayDegrade) {
      grayfail();
    }
  }
}

void AsapSystem::apply_fault(const sim::FaultEvent& event) {
  counters_.fault_events_applied.inc();
  if (trace_) {
    // Attribute the span to the oldest traced in-flight call (the single
    // active call, in sequential use).
    for (const auto& [sid, call] : sessions_) {
      if (!call->traced) continue;
      trace_->record(sid, TraceSpan::kFaultInjected, queue_.now(),
                     static_cast<std::uint64_t>(event.kind), event.target);
      break;
    }
  }
  switch (event.kind) {
    case sim::FaultKind::kHostCrash:
      if (event.target < hosts_.size()) crash_host(HostId(event.target));
      break;
    case sim::FaultKind::kSurrogateCrash:
      if (event.target < surrogate_sets_.size()) crash_surrogate(ClusterId(event.target));
      break;
    case sim::FaultKind::kActiveRelayCrash:
      // Immediate form (deferred events are armed per call in begin_voice):
      // kill the first relay of the oldest call that is actually relaying.
      for (auto& [sid, call] : sessions_) {
        if (call->route.empty()) continue;
        crash_host(HostId(call->route.front().value()));
        counters_.active_relay_crashes.inc();
        break;
      }
      break;
    case sim::FaultKind::kHostRecovery:
      if (event.target < hosts_.size()) revive_host(HostId(event.target));
      break;
    case sim::FaultKind::kLossBurstStart:
      voice_drop_p_ = event.loss;
      counters_.loss_bursts.inc();
      break;
    case sim::FaultKind::kLossBurstEnd:
      voice_drop_p_ = 0.0;
      break;
    case sim::FaultKind::kNodeDegradeStart:
      if (event.target == sim::kDegradeAllTraffic || event.target < hosts_.size()) {
        start_degrade(event.target, event.degrade);
      }
      break;
    case sim::FaultKind::kNodeDegradeEnd:
      end_degrade(event.target);
      break;
    case sim::FaultKind::kActiveRelayDegrade:
      // Immediate form (deferred events are armed per call in begin_voice):
      // degrade the first relay of the oldest call that is actually relaying.
      for (auto& [sid, call] : sessions_) {
        if (call->route.empty()) continue;
        std::uint32_t target = call->route.front().value();
        start_degrade(target, event.degrade);
        if (event.degrade.duration_ms > 0.0) {
          queue_.after(event.degrade.duration_ms,
                       [this, target]() { end_degrade(target); });
        }
        break;
      }
      break;
  }
}

// --- Gray-failure machinery --------------------------------------------------
// Degradation episodes live in `degrades_` (keyed by node index, or
// sim::kDegradeAllTraffic for a path-level episode). The network hooks below
// consult the table on every send but draw randomness only while at least
// one episode is active, so fault-free runs stay bit-identical.

GrayFailCounters& AsapSystem::grayfail() {
  if (!grayfail_counters_) grayfail_counters_.emplace(*metrics_);
  return *grayfail_counters_;
}

void AsapSystem::start_degrade(std::uint32_t target, const sim::DegradeProfile& profile) {
  grayfail().node_degrades.inc();
  degrades_[target] = ActiveDegrade{profile, queue_.now()};
}

void AsapSystem::end_degrade(std::uint32_t target) { degrades_.erase(target); }

bool AsapSystem::degrade_drop(NodeId from, NodeId to, sim::MessageCategory cat) {
  if (degrades_.empty()) return false;
  Millis now = queue_.now();
  auto dies = [&](const ActiveDegrade& d) {
    double p = d.profile.loss;
    if (p <= 0.0) return false;
    // Loss ramps linearly from 0 at episode start to full severity: the
    // canonical slow-burn gray failure a binary detector cannot see early.
    if (d.profile.ramp_ms > 0.0) {
      p *= std::clamp((now - d.started_ms) / d.profile.ramp_ms, 0.0, 1.0);
    }
    return p > 0.0 && fault_rng_.chance(p);
  };
  bool drop = false;
  // A path-level episode grays voice only (like loss bursts); a per-node
  // episode grays everything through that node.
  if (auto g = degrades_.find(sim::kDegradeAllTraffic);
      g != degrades_.end() && cat == sim::MessageCategory::kVoice) {
    drop = dies(g->second);
  }
  if (!drop) {
    if (auto it = degrades_.find(from.value()); it != degrades_.end()) {
      drop = dies(it->second);
    }
  }
  if (!drop && to != from) {
    if (auto it = degrades_.find(to.value()); it != degrades_.end()) {
      drop = dies(it->second);
    }
  }
  if (drop) grayfail().degrade_drops.inc();
  return drop;
}

ProtocolNetwork::Perturbation AsapSystem::perturb_message(NodeId from, NodeId to,
                                                          sim::MessageCategory cat) {
  ProtocolNetwork::Perturbation p;
  if (degrades_.empty()) return p;
  auto apply = [&](const ActiveDegrade& d) {
    const sim::DegradeProfile& prof = d.profile;
    p.extra_delay_ms += prof.latency_add_ms;
    if (prof.jitter_ms > 0.0) p.extra_delay_ms += fault_rng_.exponential(prof.jitter_ms);
    if (prof.reorder > 0.0 && fault_rng_.chance(prof.reorder)) {
      // Hold the packet past its successors: a few voice intervals of lag.
      p.extra_delay_ms += kVoiceIntervalMs * (2.0 + 2.0 * fault_rng_.uniform());
    }
    if (prof.duplicate > 0.0 && fault_rng_.chance(prof.duplicate)) {
      p.duplicate = true;
      p.duplicate_lag_ms += fault_rng_.uniform(0.0, kVoiceIntervalMs);
    }
  };
  if (auto g = degrades_.find(sim::kDegradeAllTraffic);
      g != degrades_.end() && cat == sim::MessageCategory::kVoice) {
    apply(g->second);
  }
  if (auto it = degrades_.find(from.value()); it != degrades_.end()) apply(it->second);
  if (to != from) {
    if (auto it = degrades_.find(to.value()); it != degrades_.end()) apply(it->second);
  }
  return p;
}

bool AsapSystem::mutate_message(NodeId from, NodeId to, sim::MessageCategory cat,
                                ProtocolPayload& payload) {
  if (degrades_.empty()) return true;
  auto corrupt_p = [&](std::uint32_t key) {
    auto it = degrades_.find(key);
    return it == degrades_.end() ? 0.0 : it->second.profile.corrupt;
  };
  double p = corrupt_p(from.value());
  if (to != from) p = std::max(p, corrupt_p(to.value()));
  if (cat == sim::MessageCategory::kVoice) {
    p = std::max(p, corrupt_p(sim::kDegradeAllTraffic));
  }
  if (p <= 0.0 || !fault_rng_.chance(p)) return true;
  // Real corruption: flip one seeded bit of the encoded frame and decode it
  // back. An undecodable frame is dropped (counted); a frame that survives
  // decoding is delivered *mutated*, which is exactly the hostile input the
  // wire-hardening layer must absorb.
  grayfail().corrupted.inc();
  std::vector<std::uint8_t> bytes = wire::encode(payload);
  if (bytes.empty()) return false;
  bytes[fault_rng_.below(bytes.size())] ^=
      static_cast<std::uint8_t>(1u << fault_rng_.below(8));
  auto decoded = wire::decode(bytes);
  if (!decoded) return false;
  payload = std::move(*decoded);
  return true;
}

void AsapSystem::deliver_wire(NodeId self, NodeId from,
                              std::span<const std::uint8_t> bytes) {
  GrayFailCounters& gf = grayfail();
  auto decoded = wire::decode(bytes);
  if (!decoded) {
    if (decoded.error().message.find("unknown tag") != std::string::npos) {
      gf.unknown_kind.inc();
    } else {
      gf.decode_errors.inc();
    }
    return;
  }
  if (self.value() >= hosts_.size()) {
    gf.invalid_field.inc();
    return;
  }
  counters_.wire_by_kind[decoded->index()].inc();
  handle_message(self, from, *decoded);
}

// --- Living-world churn ------------------------------------------------------
// Peer events flip host state (the same alive/joined flags the fault layer
// uses) and replay the real join flow on return; route flaps mutate the world
// through its invalidation hooks and evict every close set that could observe
// the change. All state is sized lazily here so workloads that never arm a
// churn plan pay nothing and export the historical digest key set.

void AsapSystem::arm_churn_plan(const sim::ChurnPlan& plan) {
  if (!churn_counters_) churn_counters_.emplace(*metrics_);
  if (departed_.empty()) departed_.resize(surrogate_sets_.size());
  if (surrogate_set_built_ms_.empty()) {
    surrogate_set_built_ms_.assign(surrogate_sets_.size(), 0.0);
    // Sets built before arming are stamped with the current time: their
    // observed staleness starts now, not at a fictitious t=0 build.
    for (std::size_t c = 0; c < surrogate_sets_.size(); ++c) {
      if (surrogate_sets_[c]) surrogate_set_built_ms_[c] = queue_.now();
    }
  }
  plan.arm(queue_, [this](const sim::ChurnEvent& event) { apply_churn(event); });
}

void AsapSystem::apply_churn(const sim::ChurnEvent& event) {
  assert(churn_counters_.has_value());  // only reachable through arm_churn_plan
  ChurnCounters& cc = *churn_counters_;
  const auto& pop = world_.pop();
  switch (event.kind) {
    case sim::ChurnKind::kPeerLeave: {
      if (event.target >= pop.cluster_count()) {
        cc.events_skipped.inc();
        return;
      }
      // A departing member must be present and must not be serving as a
      // surrogate (surrogate death is the fault layer's story, with its
      // re-election machinery; churn models ordinary members coming and
      // going).
      const auto& cluster = pop.cluster(ClusterId(event.target));
      std::vector<HostId> eligible;
      for (HostId m : cluster.members) {
        const HostState& s = hosts_[m.value()];
        if (!s.joined || !s.alive) continue;
        if (is_surrogate_of(ClusterId(event.target), NodeId(m.value()))) continue;
        eligible.push_back(m);
      }
      if (eligible.empty()) {
        cc.events_skipped.inc();
        return;
      }
      HostId leaver = eligible[churn_rng_.below(eligible.size())];
      hosts_[leaver.value()].alive = false;
      hosts_[leaver.value()].joined = false;
      departed_[event.target].push_back(leaver);
      cc.peer_leaves.inc();
      return;
    }
    case sim::ChurnKind::kPeerJoin: {
      if (event.target >= departed_.size() || departed_[event.target].empty()) {
        cc.events_skipped.inc();
        return;
      }
      HostId joiner = departed_[event.target].back();
      departed_[event.target].pop_back();
      hosts_[joiner.value()].alive = true;
      // Rejoining replays the real join flow — bootstrap round trip,
      // surrogate discovery, info publish — so the overlay re-integrates
      // the host the same way join_all() integrated it.
      NodeId me(joiner.value());
      send(me, bootstraps_[joiner.value() % bootstraps_.size()],
           sim::MessageCategory::kJoin, JoinRequest{pop.peer(joiner).ip});
      cc.peer_joins.inc();
      return;
    }
    case sim::ChurnKind::kLinkFail: {
      if (world_.graph().edge_count() == 0) {
        cc.events_skipped.inc();
        return;
      }
      auto evicted = world_.fail_link(event.target);
      cc.link_fails.inc();
      cc.oracle_evictions.add(evicted.size());
      invalidate_close_sets(evicted);
      return;
    }
    case sim::ChurnKind::kLinkRecover: {
      if (world_.graph().edge_count() == 0) {
        cc.events_skipped.inc();
        return;
      }
      auto evicted = world_.recover_link(event.target);
      cc.link_recoveries.inc();
      cc.oracle_evictions.add(evicted.size());
      invalidate_close_sets({});  // restored routes can improve sets anywhere
      return;
    }
    case sim::ChurnKind::kPolicyChange: {
      if (world_.graph().edge_count() == 0) {
        cc.events_skipped.inc();
        return;
      }
      auto evicted = world_.flip_policy(event.target);
      cc.policy_changes.inc();
      cc.oracle_evictions.add(evicted.size());
      if (!evicted.empty()) invalidate_close_sets({});
      return;
    }
  }
}

void AsapSystem::invalidate_close_sets(std::span<const AsId> ases) {
  ChurnCounters& cc = *churn_counters_;
  const auto& pop = world_.pop();
  std::vector<std::uint8_t> affected;
  if (!ases.empty()) {
    affected.assign(world_.graph().as_count(), 0);
    for (AsId as : ases) affected[as.value()] = 1;
  }
  // Pass 1: evict stale surrogate caches. A set is stale when its owner's
  // AS routes changed (every measured leg rode those tables) or any entry's
  // cluster sits in an affected AS (that leg's rtt/loss is now fiction).
  std::vector<std::uint8_t> owner_evicted(surrogate_sets_.size(), 0);
  for (std::size_t c = 0; c < surrogate_sets_.size(); ++c) {
    const auto& set = surrogate_sets_[c];
    if (!set) continue;
    bool stale = ases.empty() || affected[pop.cluster(ClusterId(c)).as.value()] != 0;
    for (std::size_t j = 0; !stale && j < set->entries.size(); ++j) {
      stale = affected[pop.cluster(set->entries[j].cluster).as.value()] != 0;
    }
    if (!stale) continue;
    cc.close_sets_invalidated.inc();
    cc.close_set_staleness_ms.observe(queue_.now() - surrogate_set_built_ms_[c]);
    surrogate_sets_[c] = nullptr;  // members holding the shared_ptr keep theirs
    owner_evicted[c] = 1;
  }
  // Pass 2: drop per-host copies of evicted sets so the next fetch pulls a
  // fresh one instead of serving the stale snapshot forever.
  for (auto& host : hosts_) {
    if (host.close_set && host.close_set->owner.value() < owner_evicted.size() &&
        owner_evicted[host.close_set->owner.value()] != 0) {
      host.close_set = nullptr;
    }
  }
}

// --- Relay-capacity bookkeeping ----------------------------------------------

std::uint32_t AsapSystem::relay_stream_capacity(HostId h) const {
  return capacity_enabled_ ? relay_stream_cap_[h.value()] : 0u;
}

std::uint32_t AsapSystem::relay_streams_in_use(HostId h) const {
  return capacity_enabled_ ? relay_streams_[h.value()] : 0u;
}

bool AsapSystem::relay_at_capacity(HostId h) const {
  return capacity_enabled_ && relay_streams_[h.value()] >= relay_stream_cap_[h.value()];
}

bool AsapSystem::try_reserve_route(ActiveCall& call, const std::vector<NodeId>& route) {
  if (!capacity_enabled_) return true;
  for (std::size_t i = 0; i < route.size(); ++i) {
    if (relay_at_capacity(HostId(route[i].value()))) {
      for (std::size_t j = 0; j < i; ++j) --relay_streams_[route[j].value()];
      return false;
    }
    ++relay_streams_[route[i].value()];
  }
  for (NodeId hop : route) {
    counters_.capacity_reservations.inc();
    counters_.relay_peak_streams.max_of(static_cast<double>(relay_streams_[hop.value()]));
  }
  call.reserved_route = route;
  return true;
}

void AsapSystem::release_route(ActiveCall& call) {
  if (!capacity_enabled_) return;
  for (NodeId hop : call.reserved_route) {
    assert(relay_streams_[hop.value()] > 0);
    --relay_streams_[hop.value()];
    counters_.capacity_releases.inc();
  }
  call.reserved_route.clear();
}

bool AsapSystem::reserve_or_preempt(ActiveCall& call, const std::vector<NodeId>& route) {
  // Each pass either reserves or evicts a strictly lower-class victim from
  // the saturated hop; the class chain strictly decreases, so the loop is
  // bounded by the number of service classes.
  while (true) {
    if (try_reserve_route(call, route)) return true;
    if (!admission_enabled_ || call.service_class == ServiceClass::kBronze) return false;
    NodeId full = NodeId::invalid();
    for (NodeId hop : route) {
      if (relay_at_capacity(HostId(hop.value()))) {
        full = hop;
        break;
      }
    }
    if (!full.valid()) return false;
    // Victim policy: lowest class first, then the newest stream (highest
    // session id) — the call that displaced the least established work.
    ActiveCall* victim = nullptr;
    for (auto& [sid, other] : sessions_) {
      if (other.get() == &call || other->service_class >= call.service_class) continue;
      if (std::find(other->reserved_route.begin(), other->reserved_route.end(), full) ==
          other->reserved_route.end()) {
        continue;
      }
      if (victim == nullptr || other->service_class < victim->service_class ||
          (other->service_class == victim->service_class && sid > victim->session.value())) {
        victim = other.get();
      }
    }
    if (victim == nullptr) return false;  // hop saturated by equal/higher classes
    preempt(*victim);
  }
}

void AsapSystem::preempt(ActiveCall& victim) {
  // Make-before-break: only the reservation is taken now. The victim keeps
  // streaming over its old route (a brief, deliberate grace overload of the
  // relay) until the scheduled failover below commits a new one.
  release_route(victim);
  victim.outcome.was_preempted = true;
  counters_.admission_preemptions.inc();
  if (trace_ && victim.traced) {
    trace_->record(victim.session.value(), TraceSpan::kRouteSwitch, queue_.now(),
                   static_cast<std::uint64_t>(victim.service_class), 1);
  }
  SessionId session = victim.session;
  queue_.after(0.0, [this, session]() {
    ActiveCall* call = find_session(session);
    if (call == nullptr || call->done || call->failover_in_progress ||
        call->outcome.failover_gave_up) {
      return;
    }
    call->failover_in_progress = true;
    try_next_backup(*call);
  });
}

void AsapSystem::fetch_close_set(HostId host, std::function<void()> on_ready) {
  HostState& state = hosts_[host.value()];
  if (state.close_set) {
    queue_.after(0.0, std::move(on_ready));
    return;
  }
  state.close_set_waiters.push_back(std::move(on_ready));
  if (!state.fetch_in_flight) start_close_set_fetch(host);
}

void AsapSystem::start_close_set_fetch(HostId host) {
  HostState& state = hosts_[host.value()];
  state.fetch_in_flight = true;
  NodeId me(host.value());
  // A host that is itself a surrogate of its cluster computes the set
  // locally.
  if (is_surrogate_of(state.cluster, me)) {
    state.close_set = surrogate_close_set(state.cluster);
    queue_.after(0.0, [this, host]() { deliver_close_set(host); });
    return;
  }
  send(me, state.surrogate, sim::MessageCategory::kCloseSet, CloseSetRequest{});
  queue_.after(params_.probe_timeout_ms, [this, host]() {
    HostState& s = hosts_[host.value()];
    if (s.close_set || !s.fetch_in_flight) return;  // reply already arrived
    // Timeout: the surrogate is gone. Report to a bootstrap; it elects a
    // replacement and tells us. Retry (bounded), then give up degraded.
    if (s.close_set_retries >= 3) {
      counters_.close_set_giveups.inc();
      deliver_close_set(host);
      return;
    }
    ++s.close_set_retries;
    counters_.surrogate_timeouts.inc();
    NodeId me(host.value());
    send(me, bootstraps_.front(), sim::MessageCategory::kJoin,
         SurrogateFailureReport{s.cluster, s.surrogate});
    // Allow time for the SurrogateUpdate to arrive, then retry the fetch.
    queue_.after(params_.probe_timeout_ms, [this, host]() {
      if (!hosts_[host.value()].close_set) start_close_set_fetch(host);
    });
  });
}

void AsapSystem::deliver_close_set(HostId host) {
  HostState& state = hosts_[host.value()];
  state.fetch_in_flight = false;
  std::vector<std::function<void()>> waiters;
  waiters.swap(state.close_set_waiters);
  for (auto& waiter : waiters) waiter();
}

void AsapSystem::handle_bootstrap(NodeId self, NodeId from, const ProtocolPayload& payload) {
  if (const auto* join = std::get_if<JoinRequest>(&payload)) {
    const auto& pop = world_.pop();
    auto cluster = pop.cluster_of_ip(join->ip);
    if (!cluster) return;  // unknown prefix: ignore (joiner will time out)
    JoinReply reply;
    reply.asn = world_.graph().node(pop.cluster(*cluster).as).asn;
    reply.cluster = *cluster;
    // Large clusters run several surrogates (Sec. 6.3); members shard
    // statically across them.
    HostId assigned = pop.assigned_surrogate(*cluster, HostId(from.value()));
    reply.surrogate = assigned.valid() ? NodeId(assigned.value()) : NodeId::invalid();
    send(self, from, sim::MessageCategory::kJoin, reply);
    return;
  }
  if (const auto* report = std::get_if<SurrogateFailureReport>(&payload)) {
    const auto& pop = world_.pop();
    if (report->failed.valid() && is_surrogate_of(report->cluster, report->failed)) {
      HostId replacement =
          world_.elect_surrogate(report->cluster, HostId(report->failed.value()));
      counters_.surrogates_elected.inc();
      if (replacement.valid()) {
        NodeId new_node(replacement.value());
        send(self, new_node, sim::MessageCategory::kJoin,
             SurrogateUpdate{report->cluster, new_node});
      }
    }
    HostId reassigned = pop.assigned_surrogate(report->cluster, HostId(from.value()));
    send(self, from, sim::MessageCategory::kJoin,
         SurrogateUpdate{report->cluster,
                         reassigned.valid() ? NodeId(reassigned.value()) : NodeId::invalid()});
    return;
  }
}

void AsapSystem::handle_message(NodeId self, NodeId from, const ProtocolPayload& payload) {
  HostState& state = hosts_[self.value()];
  if (!state.alive) return;  // crashed node: silently drops everything

  if (const auto* reply = std::get_if<JoinReply>(&payload)) {
    state.joined = true;
    state.surrogate = reply->surrogate.valid() ? reply->surrogate : self;
    // Publish nodal information to the surrogate (paper Sec. 6.1 duty 3).
    if (state.surrogate != self) {
      send(self, state.surrogate, sim::MessageCategory::kPublish,
           PublishInfo{world_.pop().peer(HostId(self.value())).capacity});
    }
    return;
  }
  if (std::get_if<CloseSetRequest>(&payload)) {
    // Serve only if we really are a surrogate of our cluster.
    if (is_surrogate_of(state.cluster, self)) {
      send(self, from, sim::MessageCategory::kCloseSet,
           CloseSetReply{surrogate_close_set(state.cluster)});
    }
    return;
  }
  if (const auto* reply = std::get_if<CloseSetReply>(&payload)) {
    // A reply can be (a) this host's own close set (join/call setup) or
    // (b) another surrogate's set fetched during a caller's two-hop
    // expansion. The two-hop case is recognizable: the expanding caller
    // already holds its own set and the reply carries a foreign owner. The
    // fetches are not tokened on the wire, so a foreign set is routed to
    // this host's oldest call still in its two-hop phase.
    if (state.close_set != nullptr && reply->set != nullptr &&
        reply->set->owner != state.cluster) {
      for (auto& [sid, call] : sessions_) {
        if (call->caller == HostId(self.value()) && call->two_hop_phase) {
          on_two_hop_close_set(*call, reply->set->owner, reply->set);
          return;
        }
      }
    }
    state.close_set = reply->set;
    deliver_close_set(HostId(self.value()));
    return;
  }
  if (std::get_if<PublishInfo>(&payload)) {
    counters_.publishes_received.inc();
    return;
  }
  if (const auto* update = std::get_if<SurrogateUpdate>(&payload)) {
    if (update->cluster == state.cluster) state.surrogate = update->new_surrogate;
    return;
  }
  if (const auto* probe = std::get_if<Probe>(&payload)) {
    // An at-capacity relay refuses relay-check probes (it cannot take
    // another stream); plain pings are always answered.
    if ((probe->token & kRelayCheckTokenBit) != 0 &&
        relay_at_capacity(HostId(self.value()))) {
      counters_.capacity_probe_rejections.inc();
      send(self, from, sim::MessageCategory::kProbe, ProbeBusy{probe->token});
    } else {
      send(self, from, sim::MessageCategory::kProbe, ProbeReply{probe->token});
    }
    return;
  }
  if (const auto* reply = std::get_if<ProbeReply>(&payload)) {
    auto it = pending_probes_.find(reply->token);
    if (it == pending_probes_.end() || it->second.done) return;
    it->second.done = true;
    Millis rtt = queue_.now() - it->second.sent_at_ms;
    counters_.probes_answered.inc();
    if (trace_ && it->second.session.valid()) {
      ActiveCall* call = find_session(it->second.session);
      if (call != nullptr && call->traced) {
        trace_->record(call->session.value(), TraceSpan::kProbeAnswered, queue_.now(),
                       reply->token, static_cast<std::uint64_t>(rtt * 1000.0));
      }
    }
    auto cb = std::move(it->second.on_reply);
    pending_probes_.erase(it);
    cb(rtt);
    return;
  }
  if (const auto* busy = std::get_if<ProbeBusy>(&payload)) {
    auto it = pending_probes_.find(busy->token);
    if (it == pending_probes_.end() || it->second.done) return;
    it->second.done = true;
    auto cb = std::move(it->second.on_reply);
    pending_probes_.erase(it);
    cb(kRelayBusyMs);
    return;
  }
  if (const auto* setup = std::get_if<CallSetup>(&payload)) {
    // Callee: fetch own close set, then accept with it attached.
    HostId me(self.value());
    SessionId session = setup->session;
    fetch_close_set(me, [this, self, from, session]() {
      send(self, from, sim::MessageCategory::kCallSignal,
           CallAccept{session, hosts_[self.value()].close_set});
    });
    return;
  }
  if (const auto* accept = std::get_if<CallAccept>(&payload)) {
    if (ActiveCall* call = find_session(accept->session)) {
      on_call_accept(*call, *accept);
    } else if (grayfail_active()) {
      grayfail().unknown_session.inc();
    }
    return;
  }
  if (const auto* voice = std::get_if<VoicePacket>(&payload)) {
    if (!voice->route.empty()) {
      // We are a relay on the path: forward after the per-node relay delay.
      VoicePacket next = *voice;
      NodeId hop = next.route.front();
      next.route.erase(next.route.begin());
      queue_.after(params_.relay_delay_one_way_ms, [this, self, hop, next]() {
        send(self, hop, sim::MessageCategory::kVoice, next);
      });
      return;
    }
    if (ActiveCall* call = find_session(voice->session)) {
      record_voice_receipt(*call, *voice);
    } else if (grayfail_active()) {
      // Finalized or never-opened session id (stale in-flight packet, or a
      // corrupted session field): dropped, never dereferenced.
      grayfail().unknown_session.inc();
    }
    return;
  }
  if (const auto* notice = std::get_if<RelayFailureNotice>(&payload)) {
    ActiveCall* call = find_session(notice->session);
    if (call != nullptr && HostId(self.value()) == call->caller) {
      on_relay_failure_notice(*call);
    } else if (call == nullptr && grayfail_active()) {
      grayfail().unknown_session.inc();
    }
    return;
  }
  if (std::get_if<RendezvousRegister>(&payload) != nullptr ||
      std::get_if<RendezvousBound>(&payload) != nullptr) {
    // Rendezvous frames are addressed to an asap-relay daemon, never to a
    // protocol host; one arriving here (misdirected or fuzzed) is counted
    // and dropped like any other frame for a session we don't serve.
    if (grayfail_active()) grayfail().unknown_session.inc();
    return;
  }
  if (const auto* via = std::get_if<ViaSetup>(&payload)) {
    // Via-tier source routing (DESIGN.md §15): a relay on the chain pops
    // the front hop, rewrites from_node to itself and forwards after the
    // per-node relay delay — the same hop discipline the socket datapath's
    // RelayCore applies, sharing the wire encoding. An empty route means
    // this node is the chain's terminus; the sim's voice datapath carries
    // the route per packet, so there is no per-session state to record.
    if (!via->route.empty()) {
      ViaSetup next = *via;
      NodeId hop(next.route.front());
      next.route.erase(next.route.begin());
      next.from_node = self.value();
      queue_.after(params_.relay_delay_one_way_ms, [this, self, hop, next]() {
        send(self, hop, sim::MessageCategory::kCallSignal, next);
      });
    }
    return;
  }
  if (std::get_if<IbPush>(&payload) != nullptr ||
      std::get_if<IbRequest>(&payload) != nullptr) {
    // Surrogate-federation gossip runs in overlay::FederatedControlPlane
    // (with its own accounting); a frame arriving at a protocol host is
    // misdirected or fuzzed — counted and dropped like rendezvous frames.
    if (grayfail_active()) grayfail().unknown_session.inc();
    return;
  }
}

// --- Session scheduling ------------------------------------------------------

CallHandle AsapSystem::place_call(const CallSpec& spec) {
  SessionId session(next_session_++);
  if (spec.start_at_ms > queue_.now()) {
    queue_.at(spec.start_at_ms,
              [this, session, spec]() { start_session(session, spec); });
  } else {
    start_session(session, spec);
  }
  return CallHandle(session);
}

void AsapSystem::start_session(SessionId session, const CallSpec& spec) {
  auto owned = std::make_unique<ActiveCall>();
  ActiveCall& call = *owned;
  call.session = session;
  call.caller = spec.caller;
  call.callee = spec.callee;
  call.voice_duration_ms = spec.voice_duration_ms;
  call.codec = spec.codec;
  call.service_class = spec.service_class;
  call.started_at_ms = queue_.now();
  call.counter_at_start = net_.counter();
  call.traced = trace_ != nullptr && trace_->sampled(session.value());
  sessions_.emplace(session.value(), std::move(owned));
  peak_concurrent_sessions_ = std::max(peak_concurrent_sessions_, sessions_.size());
  if (call.traced) {
    trace_->record(session.value(), TraceSpan::kCallStart, queue_.now(),
                   spec.caller.value(), spec.callee.value());
  }

  NodeId me(spec.caller.value());
  NodeId peer(spec.callee.value());

  // Explicit source route: the caller dictated the forwarding chain, so
  // relay discovery (ping, close sets, probing) is skipped entirely and the
  // chain is committed as-is. Gated on via_source_routing so default
  // workloads stay bit-identical; the route's ViaSetup announcement and
  // per-packet forwarding then follow the same discipline as a selected
  // two-hop route.
  if (params_.via_source_routing && !spec.via_route.empty()) {
    std::vector<NodeId> route;
    route.reserve(spec.via_route.size());
    for (HostId hop : spec.via_route) route.push_back(NodeId(hop.value()));
    call.outcome.used_relay = true;
    call.outcome.relay.relay1 = spec.via_route.front();
    if (spec.via_route.size() > 1) {
      call.outcome.relay.relay2 = spec.via_route[1];
      call.outcome.relay.rtt_ms = world_.relay2_rtt_ms(
          call.caller, spec.via_route[0], spec.via_route[1], call.callee);
    } else {
      call.outcome.relay.rtt_ms =
          world_.relay_rtt_ms(call.caller, spec.via_route[0], call.callee);
    }
    begin_voice(call, route);
    return;
  }

  // NAT gate: when no direct UDP session can be established at all, skip
  // the ping and go straight to relay selection — this is the Skype-era
  // reason relays exist in the first place.
  if (!world_.pop().direct_possible(spec.caller, spec.callee)) {
    call.outcome.nat_blocked = true;
    fetch_close_set(call.caller, [this, me, peer, session]() {
      send(me, peer, sim::MessageCategory::kCallSignal, CallSetup{session});
    });
  } else {
    // Step 1: measure the direct IP routing RTT with a ping.
    send_probe(me, peer, &call, /*relay_check=*/false,
               [this, me, peer, session](Millis rtt) {
                 ActiveCall* call = find_session(session);
                 if (call == nullptr) return;
                 call->outcome.direct_rtt_ms = rtt;
                 if (rtt < params_.lat_threshold_ms) {
                   // Direct path meets the requirement: no relay needed.
                   begin_voice(*call, {});
                   return;
                 }
                 // Step 2: relay selection. Fetch our close set, then ask
                 // the callee.
                 fetch_close_set(call->caller, [this, me, peer, session]() {
                   send(me, peer, sim::MessageCategory::kCallSignal, CallSetup{session});
                 });
               });
  }
}

CallOutcome AsapSystem::call(HostId caller, HostId callee, Millis voice_duration_ms) {
  CallSpec spec;
  spec.caller = caller;
  spec.callee = callee;
  spec.start_at_ms = queue_.now();  // not in the future: starts synchronously
  spec.voice_duration_ms = voice_duration_ms;
  CallHandle handle = place_call(spec);
  // Drive the simulation until the call completes (or the queue drains,
  // which means something timed out without recovery).
  while (!finished(handle) && queue_.step()) {
  }
  return take_outcome(handle);
}

CallOutcome run_call(AsapSystem& system, const CallSpec& spec) {
  CallHandle handle = system.place_call(spec);
  // Step — don't drain: events scheduled beyond the completion stay queued,
  // preserving the deprecated call()'s sequential timing exactly.
  while (!system.finished(handle) && system.queue().step()) {
  }
  return system.take_outcome(handle);
}

void AsapSystem::run_until_idle() {
  queue_.run();
  // Sessions still in flight after the queue drained are stalled for good
  // (nothing left can wake them): finalize them, oldest first, as
  // incomplete calls — the concurrent equivalent of the legacy blocking
  // call() returning when the queue ran dry.
  while (!sessions_.empty()) {
    auto it = sessions_.begin();
    std::uint32_t sid = it->first;
    std::unique_ptr<ActiveCall> call = std::move(it->second);
    sessions_.erase(it);
    release_route(*call);
    finalize_outcome(sid, std::move(call->outcome));
  }
}

void AsapSystem::run_until(Millis until_ms) { queue_.run_until(until_ms); }

bool AsapSystem::finished(CallHandle handle) const {
  return handle.valid() && completed_.count(handle.session().value()) != 0;
}

const CallOutcome* AsapSystem::outcome(CallHandle handle) const {
  if (!handle.valid()) return nullptr;
  auto it = completed_.find(handle.session().value());
  return it == completed_.end() ? nullptr : &it->second;
}

CallOutcome AsapSystem::take_outcome(CallHandle handle) {
  if (!handle.valid()) return CallOutcome{};
  auto done = completed_.find(handle.session().value());
  if (done != completed_.end()) {
    CallOutcome outcome = std::move(done->second);
    completed_.erase(done);
    return outcome;
  }
  auto live = sessions_.find(handle.session().value());
  if (live != sessions_.end()) {
    // A live session may only be finalized when the queue has drained —
    // then nothing can ever wake it and it is stalled for good. While
    // events remain, harvesting early must not erase the session (that
    // used to kill the call and leak its route reservation): report
    // "not finished yet" and leave it running.
    if (!queue_.empty()) return CallOutcome{};
    std::unique_ptr<ActiveCall> call = std::move(live->second);
    sessions_.erase(live);
    release_route(*call);
    return std::move(call->outcome);
  }
  return CallOutcome{};
}

void AsapSystem::complete_session(ActiveCall& call) {
  std::uint32_t sid = call.session.value();
  auto it = sessions_.find(sid);
  assert(it != sessions_.end() && it->second.get() == &call);
  std::unique_ptr<ActiveCall> owned = std::move(it->second);
  sessions_.erase(it);
  finalize_outcome(sid, std::move(owned->outcome));
}

void AsapSystem::finalize_outcome(std::uint32_t sid, CallOutcome&& outcome) {
  // Fire-and-forget retention: hand the outcome to the callback and drop
  // it, keeping the finished table empty over long soaks. Without a
  // callback the outcome is stored regardless — it is never silently lost.
  if (retention_ == OutcomeRetention::kDiscardAfterCallback && on_complete_) {
    CallOutcome local = std::move(outcome);
    on_complete_(CallHandle(SessionId(sid)), local);
    return;
  }
  auto [slot, inserted] = completed_.emplace(sid, std::move(outcome));
  (void)inserted;
  if (on_complete_) on_complete_(CallHandle(SessionId(sid)), slot->second);
}

void AsapSystem::on_call_accept(ActiveCall& call, const CallAccept& accept) {
  call.callee_set = accept.callee_set;
  const auto& pop = world_.pop();
  HostState& caller_state = hosts_[call.caller.value()];

  if (!caller_state.close_set || !call.callee_set) {
    // Degraded: no close sets available. Falling back to the direct path is
    // only possible when NAT permits it; otherwise the call fails cleanly.
    if (!call.outcome.nat_blocked) begin_voice(call, {});
    return;
  }

  // Intersect S1 and S2; accept clusters whose estimated relay latency
  // meets latT (the estimate uses close-set latencies; probing refines it).
  ClusterId c1 = caller_state.cluster;
  ClusterId c2 = hosts_[call.callee.value()].cluster;
  const CloseClusterSet& s1 = *caller_state.close_set;
  const CloseClusterSet& s2 = *call.callee_set;
  for (const auto& e1 : s1.entries) {
    const CloseClusterEntry* e2 = s2.find(e1.cluster);
    if (e2 == nullptr || e1.cluster == c1 || e1.cluster == c2) continue;
    Millis estimate = e1.rtt_ms + e2->rtt_ms + 2.0 * params_.relay_delay_one_way_ms;
    if (estimate >= params_.lat_threshold_ms) continue;
    call.candidates.push_back(
        ActiveCall::Candidate{e1.cluster, e2->rtt_ms, kUnreachableMs});
    call.one_hop_nodes += pop.cluster(e1.cluster).members.size();
  }

  if (call.candidates.empty()) {
    if (!call.outcome.nat_blocked) begin_voice(call, {});
    return;
  }

  // Probe the best candidates' surrogates from the caller side.
  std::size_t to_probe = call.candidates.size();
  if (params_.max_probe_clusters > 0) {
    to_probe = std::min<std::size_t>(to_probe, params_.max_probe_clusters);
  }
  call.probes_outstanding = to_probe;
  NodeId me(call.caller.value());
  SessionId session = call.session;
  for (std::size_t i = 0; i < to_probe; ++i) {
    ClusterId cluster = call.candidates[i].cluster;
    NodeId relay = surrogate_node(cluster);
    send_probe(me, relay, &call, /*relay_check=*/true, [this, i, session](Millis rtt) {
      ActiveCall* call = find_session(session);
      if (call == nullptr) return;
      if (rtt == kRelayBusyMs) ++call->outcome.relay_busy_rejections;
      call->candidates[i].caller_leg_rtt_ms = rtt;
      --call->probes_outstanding;
      maybe_finish_probing(*call);
    });
  }
}

void AsapSystem::maybe_finish_probing(ActiveCall& call) {
  if (call.probes_outstanding > 0) return;

  // Pick the one-hop relay with the lowest measured caller leg + advertised
  // callee leg (plus relay penalty).
  for (const auto& cand : call.candidates) {
    if (cand.caller_leg_rtt_ms >= kUnreachableMs) continue;
    Millis estimate = cand.caller_leg_rtt_ms + cand.callee_leg_rtt_ms +
                      2.0 * params_.relay_delay_one_way_ms;
    if (estimate < call.best_one_hop_estimate_ms) {
      call.best_one_hop_estimate_ms = estimate;
      call.best_one_hop_cluster = cand.cluster;
    }
  }

  // Two-hop expansion, as in select-close-relay(): when the one-hop node
  // set is small, fetch the close sets of the OS surrogates and look for
  // r1 -> r2 chains (paper Fig. 10). Bounded fetch fan-out.
  if (call.one_hop_nodes < params_.size_threshold && !call.candidates.empty() &&
      !call.two_hop_phase) {
    call.two_hop_phase = true;
    NodeId me(call.caller.value());
    std::size_t fetches = std::min<std::size_t>(call.candidates.size(), kMaxTwoHopFetches);
    call.two_hop_fetches_outstanding = fetches;
    for (std::size_t i = 0; i < fetches; ++i) {
      NodeId r1 = surrogate_node(call.candidates[i].cluster);
      send(me, r1, sim::MessageCategory::kCloseSet, CloseSetRequest{});
    }
    // Deadline: proceed with whatever arrived.
    queue_.after(params_.probe_timeout_ms, [this, session = call.session]() {
      ActiveCall* call = find_session(session);
      if (call == nullptr) return;
      if (call->two_hop_fetches_outstanding > 0) {
        call->two_hop_fetches_outstanding = 0;
        decide_relay(*call);
      }
    });
    return;
  }
  decide_relay(call);
}

void AsapSystem::on_two_hop_close_set(ActiveCall& call, ClusterId r1_cluster,
                                      const std::shared_ptr<const CloseClusterSet>& os1) {
  if (call.two_hop_fetches_outstanding == 0) return;
  --call.two_hop_fetches_outstanding;

  // h1's leg to r1 comes from the measured probe; r1 -> r2 from OS1; the
  // callee leg from the callee's close set.
  const auto& pop = world_.pop();
  Millis leg1 = kUnreachableMs;
  for (const auto& cand : call.candidates) {
    if (cand.cluster == r1_cluster) leg1 = cand.caller_leg_rtt_ms;
  }
  if (leg1 < kUnreachableMs && os1 && call.callee_set) {
    for (const auto& mid : os1->entries) {
      const CloseClusterEntry* e2 = call.callee_set->find(mid.cluster);
      if (e2 == nullptr || mid.cluster == r1_cluster) continue;
      if (pop.cluster(mid.cluster).relay_capable_members == 0) continue;
      Millis estimate = leg1 + mid.rtt_ms + e2->rtt_ms +
                        4.0 * params_.relay_delay_one_way_ms;
      if (estimate < call.best_two_hop_estimate_ms) {
        call.best_two_hop_estimate_ms = estimate;
        call.two_hop_r1 = pop.cluster(r1_cluster).surrogate;
        call.two_hop_r2 = pop.cluster(mid.cluster).surrogate;
      }
    }
  }
  if (call.two_hop_fetches_outstanding == 0) decide_relay(call);
}

void AsapSystem::decide_relay(ActiveCall& call) {
  if (call.relay_decided) return;
  call.relay_decided = true;
  if (trace_ && call.traced) {
    // a = best one-hop cluster (or invalid), b = candidate count.
    trace_->record(call.session.value(), TraceSpan::kRelaySelected, queue_.now(),
                   call.best_one_hop_cluster.value(), call.candidates.size());
  }

  bool two_hop_wins = call.best_two_hop_estimate_ms < call.best_one_hop_estimate_ms &&
                      call.two_hop_r1.valid();

  // Retain a ranked backup-relay list from the probed candidates for
  // mid-call switchover: reachable surrogates ordered by measured estimate,
  // the winner excluded below once it is known.
  if (params_.max_backup_relays > 0) {
    std::vector<std::pair<Millis, HostId>> ranked;
    for (const auto& cand : call.candidates) {
      if (cand.caller_leg_rtt_ms >= kUnreachableMs) continue;
      Millis estimate = cand.caller_leg_rtt_ms + cand.callee_leg_rtt_ms +
                        2.0 * params_.relay_delay_one_way_ms;
      HostId surrogate = world_.pop().cluster(cand.cluster).surrogate;
      if (!surrogate.valid()) continue;
      ranked.emplace_back(estimate, surrogate);
    }
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first < b.first;
      return a.second.value() < b.second.value();
    });
    HostId winner1 = two_hop_wins ? call.two_hop_r1
                                  : (call.best_one_hop_cluster.valid()
                                         ? world_.pop().cluster(call.best_one_hop_cluster).surrogate
                                         : HostId::invalid());
    HostId winner2 = two_hop_wins ? call.two_hop_r2 : HostId::invalid();
    for (const auto& [estimate, surrogate] : ranked) {
      if (call.backups.size() >= params_.max_backup_relays) break;
      if (surrogate == winner1 || surrogate == winner2) continue;
      if (std::find(call.backups.begin(), call.backups.end(), surrogate) !=
          call.backups.end()) {
        continue;
      }
      call.backups.push_back(surrogate);
    }
    call.outcome.backup_relays = call.backups;
  }
  if (two_hop_wins) {
    call.outcome.used_relay = true;
    call.outcome.relay.relay1 = call.two_hop_r1;
    call.outcome.relay.relay2 = call.two_hop_r2;
    call.outcome.relay.rtt_ms =
        world_.relay2_rtt_ms(call.caller, call.two_hop_r1, call.two_hop_r2, call.callee);
    begin_voice(call, {NodeId(call.two_hop_r1.value()), NodeId(call.two_hop_r2.value())});
    return;
  }
  if (!call.best_one_hop_cluster.valid()) {
    if (!call.outcome.nat_blocked) begin_voice(call, {});
    return;
  }
  HostId relay = world_.pop().cluster(call.best_one_hop_cluster).surrogate;
  call.outcome.used_relay = true;
  call.outcome.relay.relay1 = relay;
  call.outcome.relay.rtt_ms =
      world_.relay_rtt_ms(call.caller, relay, call.callee);
  call.outcome.relay.loss = world_.relay_loss(call.caller, relay, call.callee);
  begin_voice(call, {NodeId(relay.value())});
}

void AsapSystem::try_next_setup_relay(ActiveCall& call) {
  if (call.next_backup >= call.backups.size()) {
    // No relay has a free stream slot: degrade to the direct path when NAT
    // allows it; otherwise the call stalls and finalizes incomplete. Under
    // admission control the shed is attributed to the call's class.
    if (admission_enabled_) {
      switch (call.service_class) {
        case ServiceClass::kBronze: counters_.admission_sheds_bronze.inc(); break;
        case ServiceClass::kSilver: counters_.admission_sheds_silver.inc(); break;
        case ServiceClass::kGold: counters_.admission_sheds_gold.inc(); break;
      }
    }
    call.outcome.used_relay = false;
    call.outcome.relay = RelayChoice{};
    if (!call.outcome.nat_blocked) begin_voice(call, {});
    return;
  }
  HostId backup = call.backups[call.next_backup++];
  SessionId session = call.session;
  send_probe(NodeId(call.caller.value()), NodeId(backup.value()), &call,
             /*relay_check=*/true, [this, session, backup](Millis rtt) {
               ActiveCall* call = find_session(session);
               if (call == nullptr || call->done) return;
               if (rtt == kRelayBusyMs) {
                 ++call->outcome.relay_busy_rejections;
                 try_next_setup_relay(*call);
               } else if (rtt >= kUnreachableMs) {
                 counters_.dead_backups.inc();
                 try_next_setup_relay(*call);
               } else {
                 call->outcome.used_relay = true;
                 call->outcome.relay.relay1 = backup;
                 call->outcome.relay.relay2 = HostId::invalid();
                 call->outcome.relay.rtt_ms =
                     world_.relay_rtt_ms(call->caller, backup, call->callee);
                 call->outcome.relay.loss =
                     world_.relay_loss(call->caller, backup, call->callee);
                 counters_.capacity_reroutes.inc();
                 begin_voice(*call, {NodeId(backup.value())});
               }
             });
}

void AsapSystem::begin_voice(ActiveCall& call, const std::vector<NodeId>& relay_route) {
  if (!relay_route.empty() && !reserve_or_preempt(call, relay_route)) {
    // The probed winner filled up between its probe reply and this commit
    // (another session took its last stream slot): shed the newest stream —
    // this call — onto the ranked backups instead of overloading the relay.
    ++call.outcome.capacity_sheds;
    counters_.capacity_sheds.inc();
    try_next_setup_relay(call);
    return;
  }
  call.first_voice_sent_ms = queue_.now();
  call.route = relay_route;
  SessionId session = call.session;
  NodeId me(call.caller.value());
  NodeId peer(call.callee.value());
  if (params_.via_source_routing && !call.route.empty()) {
    // Announce the forwarding chain ahead of the stream (via-tier source
    // routing): the first hop receives the remaining chain ending at the
    // callee, mirroring the per-packet VoicePacket route discipline.
    ViaSetup via;
    via.session = session;
    via.from_node = me.value();
    via.route.reserve(call.route.size());
    for (std::size_t i = 1; i < call.route.size(); ++i) {
      via.route.push_back(call.route[i].value());
    }
    via.route.push_back(peer.value());
    send(me, call.route.front(), sim::MessageCategory::kCallSignal, via);
  }
  auto packets = static_cast<std::uint32_t>(call.voice_duration_ms / kVoiceIntervalMs);
  packets = std::max<std::uint32_t>(packets, 1);
  call.outcome.voice_packets_sent = packets;
  // Per-sequence receipt bitmap: exact loss accounting stays correct when a
  // degraded path reorders or duplicates packets (one byte per 20 ms frame).
  call.rx_seen.assign(packets, 0);
  for (std::uint32_t seq = 0; seq < packets; ++seq) {
    queue_.after(static_cast<Millis>(seq) * kVoiceIntervalMs,
                 [this, me, peer, seq, session]() {
                   ActiveCall* call = find_session(session);
                   if (call == nullptr) return;
                   VoicePacket pkt;
                   pkt.session = call->session;
                   pkt.seq = seq;
                   pkt.sent_at_ms = queue_.now();
                   // Segment accounting (see ActiveCall comment).
                   if (call->first_switch_ms >= 0.0 &&
                       pkt.sent_at_ms >= call->first_switch_ms) {
                     ++call->sent_post;
                   }
                   // The route is read at fire time: a committed switchover
                   // redirects every subsequent packet.
                   if (call->route.empty()) {
                     send(me, peer, sim::MessageCategory::kVoice, pkt);
                   } else {
                     // Route: first relay receives the packet with the rest
                     // of the chain (ending at the callee) to forward along.
                     pkt.route.assign(call->route.begin() + 1, call->route.end());
                     pkt.route.push_back(peer);
                     send(me, call->route.front(), sim::MessageCategory::kVoice, pkt);
                   }
                 });
  }
  // Relayed streams are monitored for mid-call relay death; direct streams
  // have no alternative path, so a dead endpoint simply loses the voice.
  if (!call.route.empty()) {
    Millis allowance = call.outcome.relay.rtt_ms < kUnreachableMs
                           ? call.outcome.relay.rtt_ms
                           : params_.lat_threshold_ms;
    call.detect_floor_ms = call.first_voice_sent_ms + allowance;
    schedule_keepalive_check(call);
  }
  // Deferred active-relay fault events: their clocks start now.
  if (!pending_call_faults_.empty()) {
    std::vector<sim::FaultEvent> faults;
    faults.swap(pending_call_faults_);
    for (const auto& event : faults) {
      queue_.after(event.at_ms, [this, session, event]() {
        ActiveCall* call = find_session(session);
        if (call == nullptr || call->done) return;
        if (call->route.empty()) return;  // direct call: nothing to hit
        std::uint32_t target = call->route.front().value();
        if (event.kind == sim::FaultKind::kActiveRelayDegrade) {
          // The relay stays alive but goes gray: keepalives flow, quality
          // rots. Only the quality monitor can evacuate the call.
          start_degrade(target, event.degrade);
          if (event.degrade.duration_ms > 0.0) {
            queue_.after(event.degrade.duration_ms,
                         [this, target]() { end_degrade(target); });
          }
        } else {
          crash_host(HostId(target));
          counters_.active_relay_crashes.inc();
        }
      });
    }
  }
  // Close the call after the stream plus a generous in-flight allowance.
  queue_.after(call.voice_duration_ms + 10000.0, [this, session]() {
    if (ActiveCall* call = find_session(session)) finish_call(*call);
  });
}

void AsapSystem::record_voice_receipt(ActiveCall& call, const VoicePacket& voice) {
  Millis now = queue_.now();
  // Wire hardening: a sequence number past the stream length can only come
  // from in-flight corruption — count it, never index with it.
  if (voice.seq >= call.rx_seen.size()) {
    if (grayfail_active()) grayfail().invalid_field.inc();
    return;
  }
  // Dedup: a duplicated copy of an already-heard frame carries no new audio
  // and must not inflate the receive count (loss would go negative).
  if (call.rx_seen[voice.seq] != 0) {
    ++call.outcome.duplicate_voice_packets;
    if (grayfail_active()) grayfail().duplicated.inc();
    return;
  }
  call.rx_seen[voice.seq] = 1;
  // A fresh frame at or below the receive frontier arrived out of order
  // (held back by a degraded path, or raced through a dying route during a
  // make-before-break switch). It is real audio — count it — but it must
  // not move the frontier backwards.
  bool reordered = call.any_rx && voice.seq <= call.last_rx_seq;
  if (reordered) {
    ++call.outcome.reordered_voice_packets;
    if (grayfail_active()) grayfail().reordered.inc();
  }
  ++call.outcome.voice_packets_received;
  call.voice_delay_sum_ms += now - voice.sent_at_ms;

  // Slots between the frontier and this frame that no packet ever filled.
  // (Slots above last_rx_seq can never have been seen — the frontier is the
  // maximum heard sequence — so the bitmap scan counts exactly the frames
  // the old arithmetic `seq - expected_next` did, and stays exact if a
  // reordered frame later fills one.)
  std::uint32_t expected_next = call.any_rx ? call.last_rx_seq + 1 : 0;
  std::uint32_t hole_slots = 0;
  for (std::uint32_t s = expected_next; s < voice.seq; ++s) {
    if (call.rx_seen[s] == 0) ++hole_slots;
  }

  // Close an open silence interval and account the sequence hole it left.
  if (call.gap_started_ms >= 0.0) {
    call.outcome.voice_gap_ms =
        std::max(call.outcome.voice_gap_ms, now - call.gap_started_ms);
    call.outcome.packets_lost_in_failover += hole_slots;
    call.gap_started_ms = -1.0;
  }
  if (!reordered) {
    call.last_rx_seq = voice.seq;
    call.any_rx = true;
  }
  call.last_voice_rx_ms = now;
  call.detect_floor_ms = now;

  // Segment accounting: everything received before the first detection is
  // the pre-fault segment (its sent count is frozen at detection time from
  // the highest sequence heard); post-failover is classified by send stamp.
  if (call.fault_detected_ms < 0.0) {
    ++call.rcv_pre;
    call.delay_sum_pre += now - voice.sent_at_ms;
  } else if (call.first_switch_ms >= 0.0 && voice.sent_at_ms >= call.first_switch_ms) {
    ++call.rcv_post;
    call.delay_sum_post += now - voice.sent_at_ms;
  }

  if (params_.quality_failover && !call.route.empty()) {
    update_quality_monitor(call, voice, reordered ? 0 : hole_slots);
  }
}

// --- Receiver-side quality monitor (gray-failure detection) ------------------
//
// The hard keepalive detector only sees total silence; a relay that is alive
// but gray (rising loss, inflating delay) keeps the keepalives flowing while
// the call rots. The callee therefore estimates its own listening quality
// from the stream itself: an EWMA over sequence holes approximates loss, an
// EWMA over (arrival - sent_at) approximates one-way delay, and the two feed
// the call codec's E-Model. A MOS estimate that stays below the trigger
// floor for the full observation window evacuates the call through the
// existing failover machinery (notice -> ranked backups -> switchover).

void AsapSystem::update_quality_monitor(ActiveCall& call, const VoicePacket& voice,
                                        std::uint32_t gap_slots) {
  const double alpha = params_.quality_ewma_alpha;
  // Every never-filled slot before this frame drags the loss estimate toward
  // 1; the frame itself drags it toward 0. A reordered frame that fills an
  // old hole contributes only the receipt (gap_slots = 0).
  for (std::uint32_t i = 0; i < gap_slots; ++i) {
    call.q_loss_ewma = (1.0 - alpha) * call.q_loss_ewma + alpha;
  }
  call.q_loss_ewma *= 1.0 - alpha;
  Millis delay = queue_.now() - voice.sent_at_ms;
  call.q_delay_ewma_ms = call.q_samples == 0
                             ? delay
                             : (1.0 - alpha) * call.q_delay_ewma_ms + alpha * delay;
  ++call.q_samples;
  // The estimators must absorb a minimum of evidence (after stream start or
  // an estimator reset) before any verdict counts.
  if (call.q_samples < params_.quality_min_packets) return;

  voip::EModel emodel(call.codec);
  double mos = voip::EModel::mos_from_r(
      emodel.r_factor(call.q_delay_ewma_ms, std::clamp(call.q_loss_ewma, 0.0, 1.0)));
  Millis now = queue_.now();
  if (mos >= params_.quality_recover_mos) {
    // Hysteresis: only the higher recover threshold closes a below-floor
    // episode, so a path oscillating around the trigger cannot flap.
    if (call.q_below_since_ms >= 0.0) {
      call.q_below_since_ms = -1.0;
      call.q_cooldown_counted = false;
      grayfail().quality_recoveries.inc();
    }
    return;
  }
  if (mos >= params_.quality_trigger_mos) return;  // inside the band: hold state
  if (call.q_below_since_ms < 0.0) {
    call.q_below_since_ms = now;
    return;
  }
  if (now - call.q_below_since_ms < params_.quality_window_ms) return;
  on_quality_degraded(call);
}

void AsapSystem::on_quality_degraded(ActiveCall& call) {
  // The hard-gap machinery owns the call while a notice or probe round is in
  // flight, and a given-up call stays put.
  if (call.done || call.failover_in_progress || call.notice_in_flight ||
      call.outcome.failover_gave_up) {
    return;
  }
  Millis now = queue_.now();
  if (call.q_last_trigger_ms >= 0.0 &&
      now - call.q_last_trigger_ms < params_.quality_cooldown_ms) {
    // One suppression count per below-floor episode, not per packet.
    if (!call.q_cooldown_counted) {
      call.q_cooldown_counted = true;
      grayfail().quality_cooldown_suppressed.inc();
    }
    return;
  }
  call.q_last_trigger_ms = now;
  grayfail().quality_triggers.inc();
  ++call.outcome.quality_failovers;
  if (call.outcome.quality_detection_ms >= kUnreachableMs) {
    call.outcome.quality_detection_ms = now - call.first_voice_sent_ms;
    grayfail().quality_detection_ms.observe(call.outcome.quality_detection_ms);
  }
  // The verdict is spent: the post-switch path starts with fresh estimators
  // and must re-earn quality_min_packets of evidence.
  call.q_loss_ewma = 0.0;
  call.q_delay_ewma_ms = 0.0;
  call.q_samples = 0;
  call.q_below_since_ms = -1.0;
  call.q_cooldown_counted = false;
  if (call.fault_detected_ms < 0.0) {
    call.fault_detected_ms = now;
    // Freeze the pre-fault segment exactly as the hard detector does.
    call.sent_pre = call.any_rx ? call.last_rx_seq + 1 : 0;
  }
  // Unlike a hard gap, the stream is still (poorly) flowing: no silence
  // interval opens here — voice_gap_ms keeps measuring true silence only.
  if (trace_ && call.traced) {
    trace_->record(call.session.value(), TraceSpan::kKeepaliveGap, queue_.now(),
                   call.last_rx_seq, /*detail=*/1);  // 1 = quality-triggered
  }
  call.notice_in_flight = true;
  send(NodeId(call.callee.value()), NodeId(call.caller.value()),
       sim::MessageCategory::kCallSignal,
       RelayFailureNotice{call.session, call.any_rx ? call.last_rx_seq : 0});
}

void AsapSystem::finish_call(ActiveCall& call) {
  if (call.done) return;
  call.done = true;
  call.outcome.completed = true;
  call.outcome.setup_time_ms = call.first_voice_sent_ms - call.started_at_ms;
  if (call.outcome.voice_packets_received > 0) {
    call.outcome.mean_voice_one_way_ms =
        call.voice_delay_sum_ms / call.outcome.voice_packets_received;
  }
  // A call that gave up (or never recovered) loses the stream tail: the
  // silence runs from the gap's start to where the stream would have ended.
  if (call.gap_started_ms >= 0.0) {
    Millis stream_end = call.first_voice_sent_ms + call.voice_duration_ms;
    if (stream_end > call.gap_started_ms) {
      call.outcome.voice_gap_ms =
          std::max(call.outcome.voice_gap_ms, stream_end - call.gap_started_ms);
    }
    std::uint32_t expected_next = call.any_rx ? call.last_rx_seq + 1 : 0;
    std::uint32_t tail_end = std::min(call.outcome.voice_packets_sent,
                                      static_cast<std::uint32_t>(call.rx_seen.size()));
    for (std::uint32_t s = expected_next; s < tail_end; ++s) {
      if (call.rx_seen[s] == 0) ++call.outcome.packets_lost_in_failover;
    }
  }
  // Segmented E-Model MOS (the paper's Sec. 7.2 quality metric, applied to
  // the observed stream segments around the fault). A fault-free call has
  // one segment: the whole stream.
  if (call.fault_detected_ms < 0.0) call.sent_pre = call.outcome.voice_packets_sent;
  voip::EModel emodel(call.codec);
  if (call.rcv_pre > 0 && call.sent_pre > 0) {
    double loss = 1.0 - static_cast<double>(call.rcv_pre) /
                            static_cast<double>(call.sent_pre);
    loss = std::clamp(loss, 0.0, 1.0);
    Millis one_way = call.delay_sum_pre / call.rcv_pre;
    call.outcome.mos_pre_fault = voip::EModel::mos_from_r(emodel.r_factor(one_way, loss));
  }
  if (call.rcv_post > 0 && call.sent_post > 0) {
    double loss = 1.0 - static_cast<double>(call.rcv_post) /
                            static_cast<double>(call.sent_post);
    loss = std::clamp(loss, 0.0, 1.0);
    Millis one_way = call.delay_sum_post / call.rcv_post;
    call.outcome.mos_post_failover =
        voip::EModel::mos_from_r(emodel.r_factor(one_way, loss));
  }
  call.outcome.voice_packets_post_failover = call.rcv_post;
  sim::MessageCounter diff = net_.counter().diff_since(call.counter_at_start);
  call.outcome.control_messages = diff.control_total();
  call.outcome.control_bytes = diff.control_bytes();

  // Observability: per-call distributions and the event-queue high-water
  // mark (single adds on pre-registered handles; see ProtocolCounters).
  counters_.setup_time_ms.observe(call.outcome.setup_time_ms);
  if (call.outcome.failover_latency_ms < kUnreachableMs) {
    counters_.failover_latency_ms.observe(call.outcome.failover_latency_ms);
  }
  if (call.outcome.mos_pre_fault > 0.0) {
    counters_.mos_pre_fault.observe(call.outcome.mos_pre_fault);
  }
  if (call.outcome.mos_post_failover > 0.0) {
    counters_.mos_post_failover.observe(call.outcome.mos_post_failover);
  }
  counters_.queue_peak_depth.max_of(static_cast<double>(queue_.peak_pending()));
  if (trace_ && call.traced) {
    trace_->record(call.session.value(), TraceSpan::kCallEnd, queue_.now(),
                   call.outcome.voice_packets_received, call.outcome.failovers);
  }
  release_route(call);
  complete_session(call);  // `call` is dead after this line
}

// --- Mid-call failover state machine ----------------------------------------
//
//   stream gap at callee (keepalive check)          [schedule_keepalive_check]
//     -> RelayFailureNotice to caller               [on_voice_gap_detected]
//     -> probe next ranked backup                   [try_next_backup]
//          alive  -> switch the route               [commit_switchover]
//          dead   -> next backup; list exhausted -> [failover_backoff]
//     -> exponential backoff, close-set refresh
//        (re-electing a dead surrogate on the way)  [rebuild_backups_and_retry]
//     -> retry cap reached                          [give_up_failover]

void AsapSystem::schedule_keepalive_check(ActiveCall& call) {
  SessionId session = call.session;
  queue_.after(params_.keepalive_interval_ms, [this, session]() {
    ActiveCall* call = find_session(session);
    if (call == nullptr) return;
    if (call->done || call->outcome.failover_gave_up) return;
    Millis now = queue_.now();
    Millis allowance = call->outcome.relay.rtt_ms < kUnreachableMs
                           ? call->outcome.relay.rtt_ms
                           : params_.lat_threshold_ms;
    Millis stream_end = call->first_voice_sent_ms + call->voice_duration_ms;
    // Once every packet still in flight has had time to land, the silence
    // is just the stream being over: stop monitoring.
    if (now > stream_end + allowance + params_.keepalive_interval_ms) return;
    if (!call->failover_in_progress && !call->notice_in_flight &&
        now - call->detect_floor_ms > params_.keepalive_interval_ms) {
      on_voice_gap_detected(*call);
    }
    schedule_keepalive_check(*call);
  });
}

void AsapSystem::on_voice_gap_detected(ActiveCall& call) {
  call.notice_in_flight = true;
  if (call.fault_detected_ms < 0.0) {
    call.fault_detected_ms = queue_.now();
    // Freeze the pre-fault segment: packets up to the highest sequence the
    // callee heard were carried by the healthy relay.
    call.sent_pre = call.any_rx ? call.last_rx_seq + 1 : 0;
  }
  call.gap_started_ms = call.any_rx ? call.last_voice_rx_ms : call.first_voice_sent_ms;
  counters_.gaps_detected.inc();
  if (trace_ && call.traced) {
    trace_->record(call.session.value(), TraceSpan::kKeepaliveGap, queue_.now(),
                   call.last_rx_seq, 0);
  }
  // The callee tells the caller out of band (signalling does not ride the
  // dead relay); the message is real and counted against overhead.
  send(NodeId(call.callee.value()), NodeId(call.caller.value()),
       sim::MessageCategory::kCallSignal,
       RelayFailureNotice{call.session, call.any_rx ? call.last_rx_seq : 0});
}

void AsapSystem::on_relay_failure_notice(ActiveCall& call) {
  if (call.done || call.failover_in_progress || call.outcome.failover_gave_up) return;
  call.notice_in_flight = false;
  call.failover_in_progress = true;
  counters_.notices_received.inc();
  try_next_backup(call);
}

void AsapSystem::try_next_backup(ActiveCall& call) {
  if (call.next_backup >= call.backups.size()) {
    failover_backoff(call);
    return;
  }
  HostId backup = call.backups[call.next_backup++];
  ++call.outcome.failover_probes;
  counters_.failover_probes.inc();
  SessionId session = call.session;
  send_probe(NodeId(call.caller.value()), NodeId(backup.value()), &call,
             /*relay_check=*/true, [this, session, backup](Millis rtt) {
               ActiveCall* call = find_session(session);
               if (call == nullptr || call->done) return;
               if (rtt == kRelayBusyMs) {
                 ++call->outcome.relay_busy_rejections;
                 try_next_backup(*call);
               } else if (rtt >= kUnreachableMs) {
                 counters_.dead_backups.inc();
                 try_next_backup(*call);
               } else {
                 commit_switchover(*call, backup, rtt);
               }
             });
}

void AsapSystem::commit_switchover(ActiveCall& call, HostId backup, Millis /*probed_rtt_ms*/) {
  // The dead route's stream slots free up first; the backup must then still
  // have one at commit time (it answered the probe a moment ago, but
  // another session may have taken its last slot since).
  release_route(call);
  std::vector<NodeId> new_route = {NodeId(backup.value())};
  if (!reserve_or_preempt(call, new_route)) {
    ++call.outcome.capacity_sheds;
    counters_.capacity_sheds.inc();
    try_next_backup(call);
    return;
  }
  call.route = std::move(new_route);
  call.outcome.used_relay = true;
  call.outcome.relay.relay1 = backup;
  call.outcome.relay.relay2 = HostId::invalid();
  call.outcome.relay.rtt_ms = world_.relay_rtt_ms(call.caller, backup, call.callee);
  call.outcome.relay.loss = world_.relay_loss(call.caller, backup, call.callee);
  ++call.outcome.failovers;
  counters_.switchovers.inc();
  if (trace_ && call.traced) {
    trace_->record(call.session.value(), TraceSpan::kRouteSwitch, queue_.now(),
                   backup.value(),
                   static_cast<std::uint64_t>(call.outcome.relay.rtt_ms * 1000.0));
  }
  Millis now = queue_.now();
  if (call.first_switch_ms < 0.0) {
    call.first_switch_ms = now;
    call.outcome.failover_latency_ms = now - call.fault_detected_ms;
  }
  // Give the new path time to deliver before gap detection re-arms.
  call.detect_floor_ms = now + call.outcome.relay.rtt_ms;
  call.failover_in_progress = false;
  call.failover_rounds = 0;  // a later, distinct fault gets a fresh budget
}

void AsapSystem::failover_backoff(ActiveCall& call) {
  if (call.failover_rounds >= params_.failover_max_retries) {
    give_up_failover(call);
    return;
  }
  Millis wait =
      params_.failover_backoff_base_ms * static_cast<double>(1u << call.failover_rounds);
  ++call.failover_rounds;
  counters_.backoffs.inc();
  if (trace_ && call.traced) {
    trace_->record(call.session.value(), TraceSpan::kFailoverRound, queue_.now(),
                   call.failover_rounds, static_cast<std::uint64_t>(wait));
  }
  SessionId session = call.session;
  queue_.after(wait, [this, session]() {
    ActiveCall* call = find_session(session);
    if (call == nullptr || call->done) return;
    rebuild_backups_and_retry(*call);
  });
}

void AsapSystem::rebuild_backups_and_retry(ActiveCall& call) {
  counters_.close_set_refreshes.inc();
  // Drop the cached close set so a fresh one is fetched; if the caller's
  // surrogate died too, the fetch times out, reports to a bootstrap and a
  // replacement surrogate is elected (existing machinery, retry-capped).
  HostState& caller_state = hosts_[call.caller.value()];
  caller_state.close_set = nullptr;
  caller_state.close_set_retries = 0;
  SessionId session = call.session;
  fetch_close_set(call.caller, [this, session]() {
    ActiveCall* call = find_session(session);
    if (call == nullptr || call->done) return;
    call->backups.clear();
    call->next_backup = 0;
    const HostState& caller_state = hosts_[call->caller.value()];
    if (caller_state.close_set && call->callee_set) {
      ClusterId c1 = caller_state.cluster;
      ClusterId c2 = hosts_[call->callee.value()].cluster;
      std::vector<std::pair<Millis, HostId>> ranked;
      for (const auto& e1 : caller_state.close_set->entries) {
        const CloseClusterEntry* e2 = call->callee_set->find(e1.cluster);
        if (e2 == nullptr || e1.cluster == c1 || e1.cluster == c2) continue;
        Millis estimate = e1.rtt_ms + e2->rtt_ms + 2.0 * params_.relay_delay_one_way_ms;
        if (estimate >= params_.lat_threshold_ms) continue;
        HostId surrogate = world_.pop().cluster(e1.cluster).surrogate;
        if (!surrogate.valid()) continue;
        // Skip whatever is currently (dead) on the route.
        bool on_route = false;
        for (NodeId hop : call->route) {
          if (HostId(hop.value()) == surrogate) on_route = true;
        }
        if (on_route) continue;
        ranked.emplace_back(estimate, surrogate);
      }
      std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
        if (a.first != b.first) return a.first < b.first;
        return a.second.value() < b.second.value();
      });
      for (const auto& [estimate, surrogate] : ranked) {
        if (std::find(call->backups.begin(), call->backups.end(), surrogate) ==
            call->backups.end()) {
          call->backups.push_back(surrogate);
        }
      }
    }
    if (call->backups.empty()) {
      failover_backoff(*call);
      return;
    }
    try_next_backup(*call);
  });
}

void AsapSystem::give_up_failover(ActiveCall& call) {
  call.outcome.failover_gave_up = true;
  call.failover_in_progress = false;
  counters_.giveups.inc();
}

}  // namespace asap::core
