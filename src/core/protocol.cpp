#include "core/protocol.h"

#include <algorithm>
#include <cassert>

#include "core/wire.h"

namespace asap::core {

// State machine of one in-flight call, driven by message handlers.
struct AsapSystem::ActiveCall {
  SessionId session;
  HostId caller;
  HostId callee;
  Millis voice_duration_ms = 0.0;
  Millis started_at_ms = 0.0;
  sim::MessageCounter counter_at_start;

  CallOutcome outcome;
  bool done = false;

  // Relay candidate probing.
  struct Candidate {
    ClusterId cluster;
    Millis callee_leg_rtt_ms = 0.0;  // from the callee's close set
    Millis caller_leg_rtt_ms = kUnreachableMs;  // measured by probe
  };
  std::vector<Candidate> candidates;
  std::size_t probes_outstanding = 0;
  std::shared_ptr<const CloseClusterSet> callee_set;

  std::uint64_t one_hop_nodes = 0;

  // Two-hop expansion (triggered when the one-hop node set is below sizeT):
  // close sets of OS surrogates are fetched over the network and intersected
  // with the callee's set.
  bool two_hop_phase = false;
  bool relay_decided = false;
  std::size_t two_hop_fetches_outstanding = 0;
  Millis best_two_hop_estimate_ms = kUnreachableMs;
  HostId two_hop_r1 = HostId::invalid();
  HostId two_hop_r2 = HostId::invalid();
  // Best one-hop pick, remembered across the two-hop phase.
  Millis best_one_hop_estimate_ms = kUnreachableMs;
  ClusterId best_one_hop_cluster = ClusterId::invalid();

  // Voice accounting.
  Millis first_voice_sent_ms = -1.0;
  double voice_delay_sum_ms = 0.0;
};

AsapSystem::AsapSystem(population::World& world, const AsapParams& params,
                       std::size_t bootstrap_count)
    : world_(world), params_(params), net_(queue_, world.oracle()) {
  net_.set_payload_sizer([](const ProtocolPayload& p) {
    return wire::encoded_size(p) + wire::kPacketOverheadBytes;
  });
  const auto& pop = world_.pop();
  hosts_.resize(pop.peers().size());
  surrogate_sets_.resize(pop.clusters().size());

  // One network node per peer, ids aligned with HostId.
  for (std::uint32_t i = 0; i < pop.peers().size(); ++i) {
    const auto& peer = pop.peer(HostId(i));
    NodeId id = net_.add_node(peer.as, peer.access_one_way_ms,
                              [this, i](NodeId from, const ProtocolPayload& p) {
                                handle_message(NodeId(i), from, p);
                              });
    assert(id.value() == i);
    (void)id;
    hosts_[i].cluster = peer.cluster;
  }

  // Bootstraps: dedicated, always-on servers in tier-1 ASes.
  for (std::size_t b = 0; b < bootstrap_count; ++b) {
    AsId as = world_.topo().tier1[b % world_.topo().tier1.size()];
    NodeId id = net_.add_node(as, 0.5, [this](NodeId, const ProtocolPayload&) {});
    // Re-register with the final id captured.
    net_.set_handler(id, [this, id](NodeId from, const ProtocolPayload& p) {
      handle_bootstrap(id, from, p);
    });
    bootstraps_.push_back(id);
  }
}

AsapSystem::~AsapSystem() = default;

NodeId AsapSystem::surrogate_node(ClusterId c) const {
  HostId s = world_.pop().cluster(c).surrogate;
  return s.valid() ? NodeId(s.value()) : NodeId::invalid();
}

bool AsapSystem::is_surrogate_of(ClusterId c, NodeId node) const {
  const auto& surrogates = world_.pop().cluster(c).surrogates;
  for (HostId s : surrogates) {
    if (NodeId(s.value()) == node) return true;
  }
  return false;
}

void AsapSystem::send(NodeId from, NodeId to, sim::MessageCategory cat,
                      ProtocolPayload payload) {
  if (!to.valid()) return;
  net_.send(from, to, cat, std::move(payload));
}

void AsapSystem::send_probe(NodeId from, NodeId to, std::function<void(Millis)> on_reply) {
  std::uint64_t token = next_token_++;
  pending_probes_[token] = PendingProbe{std::move(on_reply), queue_.now(), false};
  send(from, to, sim::MessageCategory::kProbe, Probe{token});
  queue_.after(kRequestTimeoutMs, [this, token]() {
    auto it = pending_probes_.find(token);
    if (it == pending_probes_.end() || it->second.done) return;
    it->second.done = true;
    auto cb = std::move(it->second.on_reply);
    pending_probes_.erase(it);
    cb(kUnreachableMs);
  });
}

std::shared_ptr<const CloseClusterSet> AsapSystem::surrogate_close_set(ClusterId c) {
  auto& slot = surrogate_sets_[c.value()];
  if (!slot) {
    slot = std::make_shared<CloseClusterSet>(
        construct_close_cluster_set(world_, c, params_));
    metrics_.increment("surrogate.close_sets_built");
    metrics_.increment("surrogate.construction_probes", slot->probe_messages);
  }
  return slot;
}

void AsapSystem::join_all() {
  const auto& pop = world_.pop();
  for (std::uint32_t i = 0; i < pop.peers().size(); ++i) {
    NodeId me(i);
    NodeId bootstrap = bootstraps_[i % bootstraps_.size()];
    send(me, bootstrap, sim::MessageCategory::kJoin, JoinRequest{pop.peer(HostId(i)).ip});
  }
  queue_.run();
}

void AsapSystem::fail_surrogate(ClusterId c) {
  NodeId s = surrogate_node(c);
  if (!s.valid()) return;
  hosts_[s.value()].alive = false;
  metrics_.increment("surrogate.failures_injected");
}

void AsapSystem::fail_host(HostId h) {
  hosts_[h.value()].alive = false;
  metrics_.increment("host.failures_injected");
}

void AsapSystem::fetch_close_set(HostId host, std::function<void()> on_ready) {
  HostState& state = hosts_[host.value()];
  if (state.close_set) {
    queue_.after(0.0, std::move(on_ready));
    return;
  }
  state.close_set_waiters.push_back(std::move(on_ready));
  if (!state.fetch_in_flight) start_close_set_fetch(host);
}

void AsapSystem::start_close_set_fetch(HostId host) {
  HostState& state = hosts_[host.value()];
  state.fetch_in_flight = true;
  NodeId me(host.value());
  // A host that is itself a surrogate of its cluster computes the set
  // locally.
  if (is_surrogate_of(state.cluster, me)) {
    state.close_set = surrogate_close_set(state.cluster);
    queue_.after(0.0, [this, host]() { deliver_close_set(host); });
    return;
  }
  send(me, state.surrogate, sim::MessageCategory::kCloseSet, CloseSetRequest{});
  queue_.after(kRequestTimeoutMs, [this, host]() {
    HostState& s = hosts_[host.value()];
    if (s.close_set || !s.fetch_in_flight) return;  // reply already arrived
    // Timeout: the surrogate is gone. Report to a bootstrap; it elects a
    // replacement and tells us. Retry (bounded), then give up degraded.
    if (s.close_set_retries >= 3) {
      metrics_.increment("host.close_set_giveups");
      deliver_close_set(host);
      return;
    }
    ++s.close_set_retries;
    metrics_.increment("host.surrogate_timeouts");
    NodeId me(host.value());
    send(me, bootstraps_.front(), sim::MessageCategory::kJoin,
         SurrogateFailureReport{s.cluster, s.surrogate});
    // Allow time for the SurrogateUpdate to arrive, then retry the fetch.
    queue_.after(kRequestTimeoutMs, [this, host]() {
      if (!hosts_[host.value()].close_set) start_close_set_fetch(host);
    });
  });
}

void AsapSystem::deliver_close_set(HostId host) {
  HostState& state = hosts_[host.value()];
  state.fetch_in_flight = false;
  std::vector<std::function<void()>> waiters;
  waiters.swap(state.close_set_waiters);
  for (auto& waiter : waiters) waiter();
}

void AsapSystem::handle_bootstrap(NodeId self, NodeId from, const ProtocolPayload& payload) {
  if (const auto* join = std::get_if<JoinRequest>(&payload)) {
    const auto& pop = world_.pop();
    auto cluster = pop.cluster_of_ip(join->ip);
    if (!cluster) return;  // unknown prefix: ignore (joiner will time out)
    JoinReply reply;
    reply.asn = world_.graph().node(pop.cluster(*cluster).as).asn;
    reply.cluster = *cluster;
    // Large clusters run several surrogates (Sec. 6.3); members shard
    // statically across them.
    HostId assigned = pop.assigned_surrogate(*cluster, HostId(from.value()));
    reply.surrogate = assigned.valid() ? NodeId(assigned.value()) : NodeId::invalid();
    send(self, from, sim::MessageCategory::kJoin, reply);
    return;
  }
  if (const auto* report = std::get_if<SurrogateFailureReport>(&payload)) {
    auto& pop = world_.pop();
    if (report->failed.valid() && is_surrogate_of(report->cluster, report->failed)) {
      HostId replacement =
          pop.elect_surrogate(report->cluster, HostId(report->failed.value()));
      metrics_.increment("bootstrap.surrogates_elected");
      if (replacement.valid()) {
        NodeId new_node(replacement.value());
        send(self, new_node, sim::MessageCategory::kJoin,
             SurrogateUpdate{report->cluster, new_node});
      }
    }
    HostId reassigned = pop.assigned_surrogate(report->cluster, HostId(from.value()));
    send(self, from, sim::MessageCategory::kJoin,
         SurrogateUpdate{report->cluster,
                         reassigned.valid() ? NodeId(reassigned.value()) : NodeId::invalid()});
    return;
  }
}

void AsapSystem::handle_message(NodeId self, NodeId from, const ProtocolPayload& payload) {
  HostState& state = hosts_[self.value()];
  if (!state.alive) return;  // crashed node: silently drops everything

  if (const auto* reply = std::get_if<JoinReply>(&payload)) {
    state.joined = true;
    state.surrogate = reply->surrogate.valid() ? reply->surrogate : self;
    // Publish nodal information to the surrogate (paper Sec. 6.1 duty 3).
    if (state.surrogate != self) {
      send(self, state.surrogate, sim::MessageCategory::kPublish,
           PublishInfo{world_.pop().peer(HostId(self.value())).capacity});
    }
    return;
  }
  if (std::get_if<CloseSetRequest>(&payload)) {
    // Serve only if we really are a surrogate of our cluster.
    if (is_surrogate_of(state.cluster, self)) {
      send(self, from, sim::MessageCategory::kCloseSet,
           CloseSetReply{surrogate_close_set(state.cluster)});
    }
    return;
  }
  if (const auto* reply = std::get_if<CloseSetReply>(&payload)) {
    // A reply can be (a) this host's own close set (join/call setup) or
    // (b) another surrogate's set fetched during the caller's two-hop
    // expansion. The two-hop case is recognizable: the active caller
    // already holds its own set.
    bool two_hop_reply = active_call_ && active_call_->two_hop_phase &&
                         HostId(self.value()) == active_call_->caller &&
                         state.close_set != nullptr && reply->set != nullptr &&
                         reply->set->owner != state.cluster;
    if (two_hop_reply) {
      on_two_hop_close_set(reply->set->owner, reply->set);
      return;
    }
    state.close_set = reply->set;
    deliver_close_set(HostId(self.value()));
    return;
  }
  if (std::get_if<PublishInfo>(&payload)) {
    metrics_.increment("surrogate.publishes_received");
    return;
  }
  if (const auto* update = std::get_if<SurrogateUpdate>(&payload)) {
    if (update->cluster == state.cluster) state.surrogate = update->new_surrogate;
    return;
  }
  if (const auto* probe = std::get_if<Probe>(&payload)) {
    send(self, from, sim::MessageCategory::kProbe, ProbeReply{probe->token});
    return;
  }
  if (const auto* reply = std::get_if<ProbeReply>(&payload)) {
    auto it = pending_probes_.find(reply->token);
    if (it == pending_probes_.end() || it->second.done) return;
    it->second.done = true;
    Millis rtt = queue_.now() - it->second.sent_at_ms;
    auto cb = std::move(it->second.on_reply);
    pending_probes_.erase(it);
    cb(rtt);
    return;
  }
  if (const auto* setup = std::get_if<CallSetup>(&payload)) {
    // Callee: fetch own close set, then accept with it attached.
    HostId me(self.value());
    SessionId session = setup->session;
    fetch_close_set(me, [this, self, from, session]() {
      send(self, from, sim::MessageCategory::kCallSignal,
           CallAccept{session, hosts_[self.value()].close_set});
    });
    return;
  }
  if (const auto* accept = std::get_if<CallAccept>(&payload)) {
    if (active_call_ && active_call_->session == accept->session) {
      on_call_accept(*accept);
    }
    return;
  }
  if (const auto* voice = std::get_if<VoicePacket>(&payload)) {
    if (!voice->route.empty()) {
      // We are a relay on the path: forward after the per-node relay delay.
      VoicePacket next = *voice;
      NodeId hop = next.route.front();
      next.route.erase(next.route.begin());
      queue_.after(params_.relay_delay_one_way_ms, [this, self, hop, next]() {
        send(self, hop, sim::MessageCategory::kVoice, next);
      });
      return;
    }
    if (active_call_ && active_call_->session == voice->session) {
      ++active_call_->outcome.voice_packets_received;
      active_call_->voice_delay_sum_ms += queue_.now() - voice->sent_at_ms;
    }
    return;
  }
}

CallOutcome AsapSystem::call(HostId caller, HostId callee, Millis voice_duration_ms) {
  assert(!active_call_);
  active_call_ = std::make_unique<ActiveCall>();
  ActiveCall& call = *active_call_;
  call.session = SessionId(next_session_++);
  call.caller = caller;
  call.callee = callee;
  call.voice_duration_ms = voice_duration_ms;
  call.started_at_ms = queue_.now();
  call.counter_at_start = net_.counter();

  NodeId me(caller.value());
  NodeId peer(callee.value());

  // NAT gate: when no direct UDP session can be established at all, skip
  // the ping and go straight to relay selection — this is the Skype-era
  // reason relays exist in the first place.
  if (!world_.pop().direct_possible(caller, callee)) {
    call.outcome.nat_blocked = true;
    fetch_close_set(call.caller, [this, me, peer]() {
      send(me, peer, sim::MessageCategory::kCallSignal,
           CallSetup{active_call_->session});
    });
  } else {
    // Step 1: measure the direct IP routing RTT with a ping.
    send_probe(me, peer, [this, me, peer](Millis rtt) {
      ActiveCall& call = *active_call_;
      call.outcome.direct_rtt_ms = rtt;
      if (rtt < params_.lat_threshold_ms) {
        // Direct path meets the requirement: no relay selection needed.
        begin_voice({});
        return;
      }
      // Step 2: relay selection. Fetch our close set, then ask the callee.
      fetch_close_set(call.caller, [this, me, peer]() {
        send(me, peer, sim::MessageCategory::kCallSignal,
             CallSetup{active_call_->session});
      });
    });
  }

  // Drive the simulation until the call completes (or the queue drains,
  // which means something timed out without recovery).
  while (!call.done && queue_.step()) {
  }
  CallOutcome outcome = call.outcome;
  active_call_.reset();
  return outcome;
}

void AsapSystem::on_call_accept(const CallAccept& accept) {
  ActiveCall& call = *active_call_;
  call.callee_set = accept.callee_set;
  const auto& pop = world_.pop();
  HostState& caller_state = hosts_[call.caller.value()];

  if (!caller_state.close_set || !call.callee_set) {
    // Degraded: no close sets available. Falling back to the direct path is
    // only possible when NAT permits it; otherwise the call fails cleanly.
    if (!call.outcome.nat_blocked) begin_voice({});
    return;
  }

  // Intersect S1 and S2; accept clusters whose estimated relay latency
  // meets latT (the estimate uses close-set latencies; probing refines it).
  ClusterId c1 = caller_state.cluster;
  ClusterId c2 = hosts_[call.callee.value()].cluster;
  const CloseClusterSet& s1 = *caller_state.close_set;
  const CloseClusterSet& s2 = *call.callee_set;
  for (const auto& e1 : s1.entries) {
    const CloseClusterEntry* e2 = s2.find(e1.cluster);
    if (e2 == nullptr || e1.cluster == c1 || e1.cluster == c2) continue;
    Millis estimate = e1.rtt_ms + e2->rtt_ms + 2.0 * params_.relay_delay_one_way_ms;
    if (estimate >= params_.lat_threshold_ms) continue;
    call.candidates.push_back(
        ActiveCall::Candidate{e1.cluster, e2->rtt_ms, kUnreachableMs});
    call.one_hop_nodes += pop.cluster(e1.cluster).members.size();
  }

  if (call.candidates.empty()) {
    if (!call.outcome.nat_blocked) begin_voice({});
    return;
  }

  // Probe the best candidates' surrogates from the caller side.
  std::size_t to_probe = call.candidates.size();
  if (params_.max_probe_clusters > 0) {
    to_probe = std::min<std::size_t>(to_probe, params_.max_probe_clusters);
  }
  call.probes_outstanding = to_probe;
  NodeId me(call.caller.value());
  for (std::size_t i = 0; i < to_probe; ++i) {
    ClusterId cluster = call.candidates[i].cluster;
    NodeId relay = surrogate_node(cluster);
    send_probe(me, relay, [this, i](Millis rtt) {
      ActiveCall& call = *active_call_;
      call.candidates[i].caller_leg_rtt_ms = rtt;
      --call.probes_outstanding;
      maybe_finish_probing();
    });
  }
}

void AsapSystem::maybe_finish_probing() {
  ActiveCall& call = *active_call_;
  if (call.probes_outstanding > 0) return;

  // Pick the one-hop relay with the lowest measured caller leg + advertised
  // callee leg (plus relay penalty).
  for (const auto& cand : call.candidates) {
    if (cand.caller_leg_rtt_ms >= kUnreachableMs) continue;
    Millis estimate = cand.caller_leg_rtt_ms + cand.callee_leg_rtt_ms +
                      2.0 * params_.relay_delay_one_way_ms;
    if (estimate < call.best_one_hop_estimate_ms) {
      call.best_one_hop_estimate_ms = estimate;
      call.best_one_hop_cluster = cand.cluster;
    }
  }

  // Two-hop expansion, as in select-close-relay(): when the one-hop node
  // set is small, fetch the close sets of the OS surrogates and look for
  // r1 -> r2 chains (paper Fig. 10). Bounded fetch fan-out.
  if (call.one_hop_nodes < params_.size_threshold && !call.candidates.empty() &&
      !call.two_hop_phase) {
    call.two_hop_phase = true;
    NodeId me(call.caller.value());
    std::size_t fetches = std::min<std::size_t>(call.candidates.size(), kMaxTwoHopFetches);
    call.two_hop_fetches_outstanding = fetches;
    for (std::size_t i = 0; i < fetches; ++i) {
      NodeId r1 = surrogate_node(call.candidates[i].cluster);
      send(me, r1, sim::MessageCategory::kCloseSet, CloseSetRequest{});
    }
    // Deadline: proceed with whatever arrived.
    queue_.after(kRequestTimeoutMs, [this, session = call.session]() {
      if (!active_call_ || active_call_->session != session) return;
      if (active_call_->two_hop_fetches_outstanding > 0) {
        active_call_->two_hop_fetches_outstanding = 0;
        decide_relay();
      }
    });
    return;
  }
  decide_relay();
}

void AsapSystem::on_two_hop_close_set(ClusterId r1_cluster,
                                      const std::shared_ptr<const CloseClusterSet>& os1) {
  ActiveCall& call = *active_call_;
  if (call.two_hop_fetches_outstanding == 0) return;
  --call.two_hop_fetches_outstanding;

  // h1's leg to r1 comes from the measured probe; r1 -> r2 from OS1; the
  // callee leg from the callee's close set.
  const auto& pop = world_.pop();
  Millis leg1 = kUnreachableMs;
  for (const auto& cand : call.candidates) {
    if (cand.cluster == r1_cluster) leg1 = cand.caller_leg_rtt_ms;
  }
  if (leg1 < kUnreachableMs && os1 && call.callee_set) {
    for (const auto& mid : os1->entries) {
      const CloseClusterEntry* e2 = call.callee_set->find(mid.cluster);
      if (e2 == nullptr || mid.cluster == r1_cluster) continue;
      if (pop.cluster(mid.cluster).relay_capable_members == 0) continue;
      Millis estimate = leg1 + mid.rtt_ms + e2->rtt_ms +
                        4.0 * params_.relay_delay_one_way_ms;
      if (estimate < call.best_two_hop_estimate_ms) {
        call.best_two_hop_estimate_ms = estimate;
        call.two_hop_r1 = pop.cluster(r1_cluster).surrogate;
        call.two_hop_r2 = pop.cluster(mid.cluster).surrogate;
      }
    }
  }
  if (call.two_hop_fetches_outstanding == 0) decide_relay();
}

void AsapSystem::decide_relay() {
  ActiveCall& call = *active_call_;
  if (call.relay_decided) return;
  call.relay_decided = true;

  bool two_hop_wins = call.best_two_hop_estimate_ms < call.best_one_hop_estimate_ms &&
                      call.two_hop_r1.valid();
  if (two_hop_wins) {
    call.outcome.used_relay = true;
    call.outcome.relay.relay1 = call.two_hop_r1;
    call.outcome.relay.relay2 = call.two_hop_r2;
    call.outcome.relay.rtt_ms =
        world_.relay2_rtt_ms(call.caller, call.two_hop_r1, call.two_hop_r2, call.callee);
    begin_voice({NodeId(call.two_hop_r1.value()), NodeId(call.two_hop_r2.value())});
    return;
  }
  if (!call.best_one_hop_cluster.valid()) {
    if (!call.outcome.nat_blocked) begin_voice({});
    return;
  }
  HostId relay = world_.pop().cluster(call.best_one_hop_cluster).surrogate;
  call.outcome.used_relay = true;
  call.outcome.relay.relay1 = relay;
  call.outcome.relay.rtt_ms =
      world_.relay_rtt_ms(call.caller, relay, call.callee);
  call.outcome.relay.loss = world_.relay_loss(call.caller, relay, call.callee);
  begin_voice({NodeId(relay.value())});
}

void AsapSystem::begin_voice(const std::vector<NodeId>& relay_route) {
  ActiveCall& call = *active_call_;
  call.first_voice_sent_ms = queue_.now();
  NodeId me(call.caller.value());
  NodeId peer(call.callee.value());
  auto packets = static_cast<std::uint32_t>(call.voice_duration_ms / kVoiceIntervalMs);
  packets = std::max<std::uint32_t>(packets, 1);
  call.outcome.voice_packets_sent = packets;
  for (std::uint32_t seq = 0; seq < packets; ++seq) {
    queue_.after(static_cast<Millis>(seq) * kVoiceIntervalMs,
                 [this, me, peer, relay_route, seq]() {
                   ActiveCall& call = *active_call_;
                   VoicePacket pkt;
                   pkt.session = call.session;
                   pkt.seq = seq;
                   pkt.sent_at_ms = queue_.now();
                   if (relay_route.empty()) {
                     send(me, peer, sim::MessageCategory::kVoice, pkt);
                   } else {
                     // Route: first relay receives the packet with the rest
                     // of the chain (ending at the callee) to forward along.
                     pkt.route.assign(relay_route.begin() + 1, relay_route.end());
                     pkt.route.push_back(peer);
                     send(me, relay_route.front(), sim::MessageCategory::kVoice, pkt);
                   }
                 });
  }
  // Close the call after the stream plus a generous in-flight allowance.
  queue_.after(call.voice_duration_ms + 10000.0, [this]() { finish_call(); });
}

void AsapSystem::finish_call() {
  ActiveCall& call = *active_call_;
  if (call.done) return;
  call.done = true;
  call.outcome.completed = true;
  call.outcome.setup_time_ms = call.first_voice_sent_ms - call.started_at_ms;
  if (call.outcome.voice_packets_received > 0) {
    call.outcome.mean_voice_one_way_ms =
        call.voice_delay_sum_ms / call.outcome.voice_packets_received;
  }
  sim::MessageCounter diff = net_.counter().diff_since(call.counter_at_start);
  call.outcome.control_messages = diff.control_total();
  call.outcome.control_bytes = diff.control_bytes();
}

}  // namespace asap::core
