#include "core/select_relay.h"

#include <algorithm>
#include <cmath>

#include "core/wire.h"
#include "population/nat.h"

namespace asap::core {

namespace {

// Sorted-vector intersection of two close sets, yielding pairs of entries.
template <typename Fn>
void intersect(const CloseClusterSet& s1, const CloseClusterSet& s2, Fn&& fn) {
  auto it1 = s1.entries.begin();
  auto it2 = s2.entries.begin();
  while (it1 != s1.entries.end() && it2 != s2.entries.end()) {
    if (it1->cluster < it2->cluster) {
      ++it1;
    } else if (it2->cluster < it1->cluster) {
      ++it2;
    } else {
      fn(*it1, *it2);
      ++it1;
      ++it2;
    }
  }
}

}  // namespace

std::size_t probe_quota(std::size_t accepted, double fraction) {
  if (fraction >= 1.0) return accepted;
  if (fraction <= 0.0) return 0;
  auto count = static_cast<std::size_t>(
      std::ceil(static_cast<double>(accepted) * fraction));
  return std::min(count, accepted);
}

SelectRelayResult select_close_relay(const population::World& world, CloseSetSource& source,
                                     const population::Session& session, Rng& rng) {
  const AsapParams& params = source.params();
  const auto& pop = world.pop();
  SelectRelayResult result;

  ClusterId c1 = pop.peer(session.caller).cluster;
  ClusterId c2 = pop.peer(session.callee).cluster;
  bool fetched = false;
  const CloseClusterSet& s1 = source.view(c1, c1, fetched);
  const CloseClusterSet& s2 = source.view(c2, c2, fetched);
  // h1 contacts h2 for its close relay information: 2 messages. The reply
  // carries h2's close set — the dominant byte cost.
  result.messages += 2;
  result.bytes += 2 * wire::kPacketOverheadBytes + 6 /* CallSetup */ +
                  6 + wire::close_set_wire_bytes(s2) /* CallAccept */;

  // One-hop: common set CS = S1 ∩ S2; accept clusters whose relay path
  // through their surrogate meets latT. The surrogate-to-endpoint latencies
  // are known from the close sets (the endpoints sit in the owner clusters),
  // so acceptance costs no extra messages; verification probes below do.
  struct Candidate {
    ClusterId cluster;
    Millis estimate_ms;
  };
  std::vector<Candidate> accepted;
  intersect(s1, s2, [&](const CloseClusterEntry& e1, const CloseClusterEntry& e2) {
    if (e1.cluster == c1 || e1.cluster == c2) return;
    // Only openly reachable peers can relay (== every member when NAT
    // modelling is off).
    const auto& cluster = pop.cluster(e1.cluster);
    if (cluster.relay_capable_members == 0) return;
    Millis relaylat = e1.rtt_ms + e2.rtt_ms + 2.0 * params.relay_delay_one_way_ms;
    if (relaylat >= params.lat_threshold_ms) return;
    accepted.push_back(Candidate{e1.cluster, relaylat});
    result.one_hop_clusters.push_back(e1.cluster);
    result.one_hop_nodes += cluster.relay_capable_members;
  });

  // Verification probing: both endpoints ping the chosen candidates'
  // surrogates (2 messages per probed cluster). Sessions with huge close
  // sets can probe only a fraction (Sec. 7.3's overhead-reduction knob).
  std::sort(accepted.begin(), accepted.end(), [](const Candidate& a, const Candidate& b) {
    if (a.estimate_ms != b.estimate_ms) return a.estimate_ms < b.estimate_ms;
    return a.cluster < b.cluster;
  });
  std::size_t probe_count = probe_quota(accepted.size(), params.probe_fraction);
  if (params.max_probe_clusters > 0) {
    probe_count = std::min<std::size_t>(probe_count, params.max_probe_clusters);
  }
  for (std::size_t i = 0; i < probe_count; ++i) {
    const Candidate& cand = accepted[i];
    result.messages += 2;
    result.bytes += 2 * (wire::kPacketOverheadBytes + 10);  // probe + reply
    HostId relay = pop.cluster(cand.cluster).surrogate;
    Millis rtt = world.relay_rtt_ms(session.caller, relay, session.callee);
    if (rtt < result.best.rtt_ms) {
      result.best.rtt_ms = rtt;
      result.best.loss = world.relay_loss(session.caller, relay, session.callee);
      result.best.relay1 = relay;
      result.best.relay2 = HostId::invalid();
    }
  }

  // Two-hop expansion when the one-hop node set is too small. Per Fig. 10,
  // the r1 pool is exactly the accepted one-hop clusters (OS): "for each
  // cluster surrogate r1 in OS: h1 obtains r1's close cluster set" —
  // 2 messages per fetch.
  if (result.one_hop_nodes < params.size_threshold) {
    result.two_hop_triggered = true;
    for (ClusterId r1_cluster : result.one_hop_clusters) {
      // In federated mode h1's surrogate often answers from its information
      // base — only views that needed an on-demand transfer are charged.
      bool os1_fetched = false;
      const CloseClusterSet& os1 = source.view(c1, r1_cluster, os1_fetched);
      if (os1_fetched) {
        result.messages += 2;
        result.bytes += 2 * wire::kPacketOverheadBytes + 2 /* request */ +
                        2 + wire::close_set_wire_bytes(os1) /* reply */;
      }
      const CloseClusterEntry* h1_leg = s1.find(r1_cluster);
      if (h1_leg == nullptr) continue;  // r1 came from the intersection, must exist
      intersect(os1, s2, [&](const CloseClusterEntry& mid, const CloseClusterEntry& e2) {
        if (mid.cluster == c1 || mid.cluster == c2 || mid.cluster == r1_cluster) return;
        Millis relaylat = h1_leg->rtt_ms + mid.rtt_ms + e2.rtt_ms +
                          4.0 * params.relay_delay_one_way_ms;
        if (relaylat >= params.lat_threshold_ms) return;
        if (pop.cluster(mid.cluster).relay_capable_members == 0) return;
        std::uint64_t pairs = static_cast<std::uint64_t>(
                                  pop.cluster(r1_cluster).relay_capable_members) *
                              pop.cluster(mid.cluster).relay_capable_members;
        result.two_hop_pairs += pairs;
        if (result.two_hop_cluster_pairs.size() < params.max_two_hop_pairs) {
          result.two_hop_cluster_pairs.emplace_back(r1_cluster, mid.cluster);
        }
        // Track the best two-hop path through the surrogates.
        HostId r1 = pop.cluster(r1_cluster).surrogate;
        HostId r2 = pop.cluster(mid.cluster).surrogate;
        Millis rtt = world.relay2_rtt_ms(session.caller, r1, r2, session.callee);
        if (rtt < result.best.rtt_ms) {
          result.best.rtt_ms = rtt;
          result.best.loss = 1.0 - (1.0 - world.relay_loss(session.caller, r1, r2)) *
                                       (1.0 - world.host_loss(r2, session.callee));
          result.best.relay1 = r1;
          result.best.relay2 = r2;
        }
      });
    }
  }

  (void)rng;
  return result;
}

SelectRelayResult select_close_relay(const population::World& world, CloseSetCache& cache,
                                     const population::Session& session, Rng& rng) {
  FlatCloseSetSource source(cache);
  return select_close_relay(world, source, session, rng);
}

}  // namespace asap::core
