// Message-level ASAP protocol simulation (paper Sec. 6.1, Fig. 8).
//
// Runs the actual join / close-set / call flows as timed messages over the
// discrete-event network: bootstraps resolve a joining host's IP to its ASN
// and cluster surrogate; surrogates build and serve close cluster sets and
// can be re-elected on failure; end hosts ping the callee, fetch close
// sets, probe candidate relays and stream voice packets through the chosen
// relay. The evaluation benches use the algorithmic layer
// (select_close_relay) for scale; this layer exists so the protocol's
// timing, failover and message counts are *observed* in a running system —
// tests assert the two layers agree.
//
// The runtime is a concurrent multi-session scheduler: any number of calls
// can be in flight at once, each a per-session state machine keyed by
// SessionId and driven by the shared event queue. place_call() schedules a
// call (possibly in the future), run_until_idle()/run_until() drive the
// simulation, and outcomes are harvested through handles or a completion
// callback. The legacy blocking call() survives as a thin shim with its
// historical semantics intact. When the relay-capacity model is enabled
// (AsapParams::relay_streams_per_capacity > 0), every relay host carries at
// most a capability-derived number of concurrent forwarded streams: an
// at-capacity relay refuses relay-check probes with ProbeBusy, and a
// winner that fills up between probing and route commit sheds the newest
// stream to the caller's ranked backups.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <variant>
#include <vector>

#include "core/close_cluster.h"
#include "core/params.h"
#include "core/select_relay.h"
#include "population/world.h"
#include "sim/churn_plan.h"
#include "sim/event_queue.h"
#include "sim/fault_plan.h"
#include "sim/network.h"
#include "voip/codec.h"
#include "common/metrics.h"
#include "common/rng.h"

namespace asap::core {

// --- Wire messages ---------------------------------------------------------

struct JoinRequest {
  Ipv4Addr ip;
};
struct JoinReply {
  std::uint32_t asn = 0;
  ClusterId cluster;
  NodeId surrogate;  // invalid => joiner becomes its cluster's surrogate
};
struct CloseSetRequest {};
struct CloseSetReply {
  std::shared_ptr<const CloseClusterSet> set;
};
struct PublishInfo {
  double capacity = 0.0;
};
struct SurrogateFailureReport {
  ClusterId cluster;
  NodeId failed;
};
struct SurrogateUpdate {
  ClusterId cluster;
  NodeId new_surrogate;
};
struct Probe {
  std::uint64_t token;
};
struct ProbeReply {
  std::uint64_t token;
};
struct CallSetup {
  SessionId session;
};
struct CallAccept {
  SessionId session;
  std::shared_ptr<const CloseClusterSet> callee_set;
};
struct VoicePacket {
  SessionId session;
  std::uint32_t seq = 0;
  Millis sent_at_ms = 0.0;
  // Remaining forwarding chain; empty => this node is the final receiver.
  std::vector<NodeId> route;
};
// Callee -> caller: the relayed voice stream went silent (gap/keepalive
// detection fired); the caller should switch to a backup relay.
struct RelayFailureNotice {
  SessionId session;
  std::uint32_t last_seq = 0;  // highest voice seq received before the gap
};
// Relay -> prober: the probed host is already forwarding its full
// complement of voice streams and refuses to be selected. Only sent in
// answer to relay-check probes (token bit 63) when the capacity model is
// enabled; a plain ping is always answered with ProbeReply.
struct ProbeBusy {
  std::uint64_t token;
};
// Endpoint -> relay daemon (real UDP datapath, DESIGN.md §14): dial out of
// the NAT and register this endpoint as one leg of `session`. The relay
// learns the endpoint's public (observed) source address from the datagram
// itself; re-sending every keepalive interval refreshes the NAT binding and
// doubles as the relay liveness check. `node` is the registrant's protocol
// node id, so a NAT rebinding (same node, new source address) is
// distinguishable from a second endpoint joining the session.
struct RendezvousRegister {
  SessionId session;
  std::uint32_t node = 0;
};
// Relay daemon -> endpoint: registration acknowledged. Carries the
// registrant's own source address as the relay observed it (the reflexive
// address, STUN-style) and whether the session's other leg has registered —
// once `peer_present` is set, session frames are forwarded between the two
// observed bindings.
struct RendezvousBound {
  SessionId session;
  std::uint32_t observed_ip = 0;    // registrant's source IPv4, host order
  std::uint16_t observed_port = 0;  // registrant's source UDP port
  std::uint8_t peer_present = 0;    // 1 once both legs are bound
};
// Surrogate -> peer surrogate (federated control plane, DESIGN.md §15):
// gossip push of the origin cluster's close set and relay capability into
// the receiver's information base. Carries the build timestamp so receivers
// can age entries out (overlay.ib_ttl_ms) instead of serving arbitrarily
// stale knowledge.
struct IbPush {
  ClusterId origin;
  Millis built_at_ms = 0.0;
  float capability = 0.0f;  // aggregate relay capability of the origin cluster
  std::shared_ptr<const CloseClusterSet> set;
};
// Surrogate -> peer surrogate: on-demand pull of one cluster's information
// base entry (cache miss / TTL expiry between gossip rounds).
struct IbRequest {
  ClusterId cluster;
};
// Caller -> first via relay (source-routed session setup, DESIGN.md §15):
// establishes the forwarding chain for a two-hop relayed call before any
// session frame flows. `route` is the remaining via-node chain; each relay
// pops the front hop, rewrites `from_node` to itself and forwards — an
// empty route means this relay is the terminal hop, which pairs the
// upstream leg with the locally registered callee leg.
struct ViaSetup {
  SessionId session;
  std::uint32_t from_node = 0;  // protocol node id of the sending hop
  std::vector<std::uint32_t> route;
};

using ProtocolPayload =
    std::variant<JoinRequest, JoinReply, CloseSetRequest, CloseSetReply, PublishInfo,
                 SurrogateFailureReport, SurrogateUpdate, Probe, ProbeReply, CallSetup,
                 CallAccept, VoicePacket, RelayFailureNotice, ProbeBusy,
                 RendezvousRegister, RendezvousBound, IbPush, IbRequest, ViaSetup>;
using ProtocolNetwork = sim::Network<ProtocolPayload>;

// Probe tokens carry the probe's intent in their top bit: relay-check
// probes (candidate/backup selection) may be refused by an at-capacity
// relay, plain pings never are. Keeping the flag inside the existing token
// field leaves the wire format — and therefore every call's control-byte
// accounting — unchanged.
inline constexpr std::uint64_t kRelayCheckTokenBit = 1ull << 63;

// Sentinel RTT a probe callback receives when the relay answered "busy"
// instead of replying. Above kUnreachableMs so every reachability filter
// discards busy relays exactly like dead ones.
inline constexpr Millis kRelayBusyMs = 2.0 * kUnreachableMs;

// Snake-case metric suffix of a payload alternative ("wire.join_request",
// ...); index is the ProtocolPayload variant index.
[[nodiscard]] std::string_view wire_kind_name(std::size_t variant_index);

// Pre-registered observability handles for the protocol runtime: every
// hot-path record is a single relaxed atomic add on a handle resolved once
// here, never a by-name map lookup (common/metrics.h contract). Counter
// names keep the historical string-keyed spellings, so existing tests and
// dashboards read the same series. The capacity.* series (and the
// wire.probe_busy counter) are registered only when the relay-capacity
// model is on: registered handles appear in run digests even at zero, so
// capacity-off runs must export exactly the historical key set.
struct ProtocolCounters {
  ProtocolCounters(MetricsRegistry& registry, bool capacity_metrics,
                   bool admission_metrics, bool via_metrics = false);

  Counter close_sets_built, construction_probes, surrogate_failures_injected,
      host_failures_injected, host_recoveries, active_relay_crashes, loss_bursts,
      burst_voice_drops, fault_events_applied, close_set_giveups, surrogate_timeouts,
      surrogates_elected, publishes_received, probes_sent, probes_answered,
      probe_timeouts, gaps_detected, notices_received, failover_probes, dead_backups,
      switchovers, backoffs, close_set_refreshes, giveups;
  // Relay-capacity contention (detached when the model is off).
  Counter capacity_probe_rejections, capacity_reservations, capacity_releases,
      capacity_sheds, capacity_reroutes;
  // Class-of-service admission (detached unless admission control is on).
  Counter admission_preemptions, admission_sheds_bronze, admission_sheds_silver,
      admission_sheds_gold;
  // Wire messages by payload kind, indexed by ProtocolPayload variant index.
  std::array<Counter, std::variant_size_v<ProtocolPayload>> wire_by_kind;
  Gauge queue_peak_depth;
  Gauge relay_peak_streams;  // detached when the capacity model is off
  Histogram setup_time_ms, failover_latency_ms, mos_pre_fault, mos_post_failover;
};

// Observability for the gray-failure resilience layer: in-flight
// degradation effects (net.*), wire-hardening drops (wire.*) and the
// quality-failover detector (quality_failover.*). Constructed lazily the
// first time the layer can act — quality failover enabled, a fault plan
// with degradation events armed, or raw frames delivered through
// deliver_wire() — so workloads that never exercise gray failures export
// exactly the historical digest key set.
struct GrayFailCounters {
  explicit GrayFailCounters(MetricsRegistry& registry);

  // In-flight degradation effects applied by the perturbation hooks.
  Counter degrade_drops, reordered, duplicated, corrupted;
  // Wire hardening: frames dropped instead of corrupting session state.
  Counter unknown_kind, decode_errors, unknown_session, invalid_field;
  // Degradation fault events applied (start/end pairs count once each).
  Counter node_degrades;
  // Quality-triggered failover detector.
  Counter quality_triggers, quality_cooldown_suppressed, quality_recoveries;
  Histogram quality_detection_ms;
};

// Observability for the living-world churn runtime (churn.* series).
// Constructed lazily the first time a churn plan is armed, so workloads that
// never arm one export exactly the historical key set (registered handles
// appear in run digests even at zero).
struct ChurnCounters {
  explicit ChurnCounters(MetricsRegistry& registry);

  Counter peer_leaves, peer_joins, link_fails, link_recoveries, policy_changes,
      events_skipped, oracle_evictions, close_sets_invalidated;
  // Age of each surrogate close set at the moment a route flap evicted it —
  // how stale the knowledge the overlay was serving had become.
  Histogram close_set_staleness_ms;
};

// --- System ------------------------------------------------------------

// Class-of-service tier of a call under admission control: when relay
// capacity runs out, bronze calls shed first and a gold call may preempt a
// strictly lower-class stream from a saturated relay (the victim reroutes
// through the mid-call failover path).
enum class ServiceClass : std::uint8_t { kBronze = 0, kSilver = 1, kGold = 2 };

constexpr std::string_view service_class_name(ServiceClass c) {
  switch (c) {
    case ServiceClass::kBronze: return "bronze";
    case ServiceClass::kSilver: return "silver";
    case ServiceClass::kGold: return "gold";
  }
  return "?";
}

struct CallOutcome {
  bool completed = false;
  Millis direct_rtt_ms = kUnreachableMs;
  // Direct path impossible at the connectivity level (NAT): the call must
  // relay regardless of latency.
  bool nat_blocked = false;
  bool used_relay = false;
  RelayChoice relay;                 // chosen relay path (if used_relay)
  Millis setup_time_ms = 0.0;        // call initiation -> first voice packet
  std::uint64_t control_messages = 0;  // session's share of non-voice messages
  std::uint64_t control_bytes = 0;     // same, in wire bytes (incl. IP/UDP headers)
  std::uint32_t voice_packets_sent = 0;
  std::uint32_t voice_packets_received = 0;
  Millis mean_voice_one_way_ms = 0.0;

  // --- Mid-call failover & degradation (robustness extension) -------------
  std::uint32_t failovers = 0;        // successful relay switchovers
  std::uint32_t failover_probes = 0;  // probes spent checking backup relays
  bool failover_gave_up = false;      // backoff budget exhausted, call degraded
  // Detection (failure notice sent) -> first switchover committed.
  Millis failover_latency_ms = kUnreachableMs;
  // Longest silence observed by the receiver between the last pre-fault
  // packet and the first post-switchover packet (0 when no fault struck).
  Millis voice_gap_ms = 0.0;
  // Voice packets that vanished across switchovers (receiver-side sequence
  // gaps; includes the never-recovered tail when the call gave up).
  std::uint32_t packets_lost_in_failover = 0;
  std::uint32_t voice_packets_post_failover = 0;  // received after 1st switch
  // Segmented E-Model MOS (the call's codec, G.729A+VAD by default): the
  // stream before the first fault detection vs. after the failover. 0 when
  // a segment carried no voice; equals the whole-stream MOS when no fault
  // struck (post stays 0).
  double mos_pre_fault = 0.0;
  double mos_post_failover = 0.0;
  // Ranked backup relays retained from candidate probing (for tests/benches).
  std::vector<HostId> backup_relays;

  // --- Gray-failure resilience (quality monitor + wire hardening) ----------
  // Failovers fired by the receiver-side quality monitor (a subset of
  // `failovers` when the switch committed; a trigger whose probing failed
  // still counts here).
  std::uint32_t quality_failovers = 0;
  // Stream start -> first quality trigger (kUnreachableMs when the monitor
  // never fired); benches derive time-to-evacuate from it.
  Millis quality_detection_ms = kUnreachableMs;
  // Receiver-side stream hygiene: duplicated copies discarded by the dedup
  // filter and packets that arrived behind a newer sequence.
  std::uint32_t duplicate_voice_packets = 0;
  std::uint32_t reordered_voice_packets = 0;

  // --- Relay-capacity contention (multi-session runtime) ------------------
  // Relay-check probes this call had answered with ProbeBusy (candidate
  // probing, setup fallback and failover rounds).
  std::uint32_t relay_busy_rejections = 0;
  // Times the probed winner lost its last stream slot between the probe
  // reply and the route commit, shedding this call onto its backups.
  std::uint32_t capacity_sheds = 0;
  // A higher-class call evicted this stream from a saturated relay
  // (admission control); the call rerouted through the failover path.
  bool was_preempted = false;
};

// Everything place_call() needs to know about one call.
struct CallSpec {
  HostId caller;
  HostId callee;
  // Absolute simulation time at which signalling starts. A time at or
  // before the current queue time starts the call synchronously inside
  // place_call() (exactly the legacy call() sequencing); later times are
  // scheduled on the event queue.
  Millis start_at_ms = 0.0;
  Millis voice_duration_ms = 400.0;
  voip::Codec codec = voip::kG729aVad;
  // Only consulted when AsapParams::admission_control is on.
  ServiceClass service_class = ServiceClass::kBronze;
  // Explicit via source route (requires AsapParams::via_source_routing):
  // relay discovery is skipped and the call commits this forwarding chain
  // of relay hosts as-is — the programmatic twin of the asap-relay
  // daemon's --via-peer configuration on the socket datapath. At most two
  // hops are honoured (the wire RelayChoice carries relay1/relay2).
  std::vector<HostId> via_route;
};

// Opaque ticket for a placed call; pass it back to finished()/outcome()/
// take_outcome() to track and harvest the result.
class CallHandle {
 public:
  CallHandle() = default;
  [[nodiscard]] SessionId session() const { return session_; }
  [[nodiscard]] bool valid() const { return session_.valid(); }
  friend bool operator==(CallHandle a, CallHandle b) { return a.session_ == b.session_; }

 private:
  friend class AsapSystem;
  explicit CallHandle(SessionId session) : session_(session) {}
  SessionId session_ = SessionId::invalid();
};

class AsapSystem {
 public:
  // `metrics`, when given, is an external registry (e.g. a bench harness's
  // run-digest registry) the system records into; otherwise it owns one.
  AsapSystem(population::World& world, const AsapParams& params,
             std::size_t bootstrap_count = 2, MetricsRegistry* metrics = nullptr);
  ~AsapSystem();  // out of line: ActiveCall is incomplete here

  // Joins every peer (bootstrap round trips + surrogate discovery) and runs
  // the queue to quiescence. Must be called before placing calls.
  void join_all();

  // --- Concurrent session scheduling --------------------------------------
  // Registers a call; it starts at spec.start_at_ms (immediately when that
  // is not in the future) and runs whenever the queue is driven. Any number
  // of calls may be in flight at once. Voice is streamed for
  // spec.voice_duration_ms at 50 packets/s.
  CallHandle place_call(const CallSpec& spec);
  // Drives the simulation until the event queue drains, then finalizes any
  // session still in flight as an incomplete call (nothing left on the
  // queue can ever wake it). Completion callbacks fired by this final
  // sweep must not place new calls — place them before the next drive.
  void run_until_idle();
  // Drives the simulation up to absolute time `until_ms`; in-flight calls
  // stay in flight.
  void run_until(Millis until_ms);
  // True once the call's outcome is available (finished() never becomes
  // true for a stalled call until run_until_idle() finalizes it).
  [[nodiscard]] bool finished(CallHandle handle) const;
  // Borrowed view of a finished call's outcome; null while in flight.
  [[nodiscard]] const CallOutcome* outcome(CallHandle handle) const;
  // Removes and returns the outcome. A still-in-flight session is finalized
  // as incomplete only when the event queue has drained (nothing left can
  // ever wake it — the legacy drained-queue semantics); harvesting a live
  // session while events remain is a no-op that returns a default outcome
  // (completed == false) and leaves the call running, so an early harvest
  // can never change the call's eventual result. An unknown handle returns
  // a default outcome.
  CallOutcome take_outcome(CallHandle handle);
  // Invoked from inside the simulation whenever a call finishes. The
  // reference is valid for the duration of the callback; copy it or call
  // take_outcome() to keep it.
  using CompletionFn = std::function<void(CallHandle, const CallOutcome&)>;
  void set_on_complete(CompletionFn fn) { on_complete_ = std::move(fn); }
  // Outcome retention policy. kKeepAll (default, historical behaviour)
  // stores every finished outcome until harvested — a fire-and-forget
  // workload that only reads results in its completion callback grows the
  // finished table without bound. kDiscardAfterCallback hands the outcome to
  // the callback and drops it, keeping memory flat over arbitrarily long
  // soaks; finished()/outcome()/take_outcome() then never see it, and with
  // no callback installed outcomes are stored regardless (never silently
  // lost).
  enum class OutcomeRetention : std::uint8_t { kKeepAll = 0, kDiscardAfterCallback = 1 };
  void set_outcome_retention(OutcomeRetention policy) { retention_ = policy; }
  // Finished outcomes currently held for harvest (bounded-memory checks).
  [[nodiscard]] std::size_t outcomes_pending() const { return completed_.size(); }
  [[nodiscard]] std::size_t calls_in_flight() const { return sessions_.size(); }
  [[nodiscard]] std::size_t peak_concurrent_sessions() const {
    return peak_concurrent_sessions_;
  }

  // Places one call and runs the simulation until it completes
  // (compatibility shim over place_call: identical message sequence and
  // outcome for sequential use). Deprecated: use place_call() +
  // run_until_idle(), or the free run_call() helper when the exact
  // sequential stepping semantics matter (see DESIGN.md §13 migration
  // notes).
  [[deprecated("use place_call()/run_until_idle() or core::run_call()")]]
  CallOutcome call(HostId caller, HostId callee, Millis voice_duration_ms = 400.0);

  // --- Relay-capacity model ------------------------------------------------
  // Stream cap of a host when the capacity model is enabled (0 = uncapped).
  [[nodiscard]] std::uint32_t relay_stream_capacity(HostId h) const;
  // Concurrent voice streams the host is currently forwarding.
  [[nodiscard]] std::uint32_t relay_streams_in_use(HostId h) const;

  // Crashes the surrogate of `c`: it stops answering. The next close-set
  // request from a cluster member times out, is reported to a bootstrap,
  // and a new surrogate is elected and announced.
  void fail_surrogate(ClusterId c);
  // Crashes an arbitrary host (drops everything it receives from now on).
  void fail_host(HostId h);
  // Revives a crashed host (its join state is retained).
  void recover_host(HostId h);
  [[nodiscard]] bool is_alive(HostId h) const { return hosts_[h.value()].alive; }

  // --- Deterministic fault injection --------------------------------------
  // Schedules every event of `plan` on the simulation queue, offset from
  // now. kActiveRelayCrash events are deferred: their clocks start when the
  // next call's voice stream begins (each fires for exactly one call).
  void arm_fault_plan(const sim::FaultPlan& plan);
  // Applies one fault event immediately. The single fault entry point: the
  // arm() callback, and the fail_*/recover_host wrappers above, all land
  // here.
  void apply_fault(const sim::FaultEvent& event);
  // Current loss-burst voice drop probability (0 outside bursts).
  [[nodiscard]] double voice_drop_probability() const { return voice_drop_p_; }

  // --- Living-world churn (peer join/leave, BGP route flaps) ---------------
  // Schedules every event of `plan` on the simulation queue, offset from
  // now, and lazily registers the churn.* metric series (workloads that
  // never arm a plan keep the historical digest key set). Route-flap events
  // mutate the world through its fail_link/recover_link/flip_policy hooks,
  // which invalidate PathOracle tables; the affected close sets (surrogate
  // caches and per-host copies) are evicted here and rebuilt lazily — the
  // overlay re-learns the changed Internet instead of serving stale routes.
  // Single-threaded simulations only (same contract as the world hooks).
  void arm_churn_plan(const sim::ChurnPlan& plan);
  // Applies one churn event immediately (the arm() callback lands here).
  void apply_churn(const sim::ChurnEvent& event);

  // --- Wire-layer entry point (hardening / fuzzing) -------------------------
  // Decodes a raw wire frame as `self` and dispatches it through the normal
  // message handlers. Malformed frames are counted and dropped
  // (wire.unknown_kind for unknown tags, wire.decode_errors otherwise),
  // never undefined behaviour or session-state corruption. Lazily registers
  // the grayfail metric series (wire.*, net.*, quality_failover.*).
  void deliver_wire(NodeId self, NodeId from, std::span<const std::uint8_t> bytes);

  [[nodiscard]] const sim::MessageCounter& counter() const { return net_.counter(); }
  [[nodiscard]] const MetricsRegistry& metrics() const { return *metrics_; }
  // Attaches a span recorder; it samples 1-in-N sessions (TraceRecorder
  // config) and records the call timeline: probes, relay selection,
  // keepalive gaps, failover rounds, route switches. Pass nullptr to detach.
  void set_trace(TraceRecorder* trace) { trace_ = trace; }
  [[nodiscard]] sim::EventQueue& queue() { return queue_; }
  [[nodiscard]] NodeId node_of(HostId h) const { return NodeId(h.value()); }
  [[nodiscard]] NodeId surrogate_node(ClusterId c) const;
  [[nodiscard]] bool is_surrogate_of(ClusterId c, NodeId node) const;
  [[nodiscard]] bool is_joined(HostId h) const { return hosts_[h.value()].joined; }

  // Per-protocol constants. Request/probe timeouts live in AsapParams
  // (probe_timeout_ms) so deployments can tune them; see params.h.
  static constexpr Millis kVoiceIntervalMs = 20.0;  // 50 pps
  // Fan-out cap for two-hop close-set fetches per call.
  static constexpr std::size_t kMaxTwoHopFetches = 16;

 private:
  struct HostState {
    bool joined = false;
    bool alive = true;
    ClusterId cluster;
    NodeId surrogate = NodeId::invalid();
    std::shared_ptr<const CloseClusterSet> close_set;  // cached S of own cluster
    std::uint32_t close_set_retries = 0;
    bool fetch_in_flight = false;
    std::vector<std::function<void()>> close_set_waiters;
  };
  struct PendingProbe {
    std::function<void(Millis rtt_ms)> on_reply;
    Millis sent_at_ms = 0.0;
    bool done = false;
    SessionId session = SessionId::invalid();  // owning call (trace gating)
  };
  struct ActiveCall;

  void handle_message(NodeId self, NodeId from, const ProtocolPayload& payload);
  void handle_bootstrap(NodeId self, NodeId from, const ProtocolPayload& payload);
  // Session-table plumbing.
  ActiveCall* find_session(SessionId session);
  void start_session(SessionId session, const CallSpec& spec);
  // Moves the outcome into the finished table, drops the session and fires
  // the completion callback. `call` is dead after this returns.
  void complete_session(ActiveCall& call);
  void on_call_accept(ActiveCall& call, const CallAccept& accept);
  void maybe_finish_probing(ActiveCall& call);
  void on_two_hop_close_set(ActiveCall& call, ClusterId r1_cluster,
                            const std::shared_ptr<const CloseClusterSet>& os1);
  void decide_relay(ActiveCall& call);
  void begin_voice(ActiveCall& call, const std::vector<NodeId>& relay_route);
  void finish_call(ActiveCall& call);
  // --- Mid-call failover state machine ------------------------------------
  // detection (keepalive gap at the callee) -> failure notice -> backup
  // probing -> switchover | backoff + close-set refresh -> give-up.
  void schedule_keepalive_check(ActiveCall& call);
  void on_voice_gap_detected(ActiveCall& call);                     // callee side
  void on_relay_failure_notice(ActiveCall& call);                   // caller side
  void try_next_backup(ActiveCall& call);
  void commit_switchover(ActiveCall& call, HostId backup, Millis probed_rtt_ms);
  void failover_backoff(ActiveCall& call);
  void rebuild_backups_and_retry(ActiveCall& call);
  void give_up_failover(ActiveCall& call);
  // --- Gray-failure machinery ----------------------------------------------
  // Lazy accessor for the grayfail metric series (see GrayFailCounters).
  GrayFailCounters& grayfail();
  [[nodiscard]] bool grayfail_active() const { return grayfail_counters_.has_value(); }
  // Perturbation/corruption hooks installed on the network; no-ops (and no
  // RNG draws) while no degradation episode is active.
  ProtocolNetwork::Perturbation perturb_message(NodeId from, NodeId to,
                                                sim::MessageCategory cat);
  bool degrade_drop(NodeId from, NodeId to, sim::MessageCategory cat);
  bool mutate_message(NodeId from, NodeId to, sim::MessageCategory cat,
                      ProtocolPayload& payload);
  void start_degrade(std::uint32_t target, const sim::DegradeProfile& profile);
  void end_degrade(std::uint32_t target);
  // Receiver-side quality monitor: EWMA loss/delay -> E-Model MOS with
  // hysteresis; `gap` is the count of sequence slots skipped since the last
  // in-order packet (each one an observed loss).
  void update_quality_monitor(ActiveCall& call, const VoicePacket& voice,
                              std::uint32_t gap);
  void on_quality_degraded(ActiveCall& call);  // callee side, like gap detection
  // Setup-time fallback when the probed winner lost its last capacity slot
  // before the route commit: walk the ranked backups, else degrade direct.
  void try_next_setup_relay(ActiveCall& call);
  void record_voice_receipt(ActiveCall& call, const VoicePacket& voice);
  // --- Relay-capacity bookkeeping ------------------------------------------
  [[nodiscard]] bool relay_at_capacity(HostId h) const;
  // All-or-nothing slot reservation for every hop of `route`; records the
  // reservation in the call so release_route can undo it.
  bool try_reserve_route(ActiveCall& call, const std::vector<NodeId>& route);
  void release_route(ActiveCall& call);
  // try_reserve_route plus admission policy: on failure, a non-bronze call
  // may evict the newest strictly-lower-class stream from the saturated hop
  // and retry (the victim reroutes via the failover machinery). Identical
  // to try_reserve_route when admission control is off.
  bool reserve_or_preempt(ActiveCall& call, const std::vector<NodeId>& route);
  void preempt(ActiveCall& victim);
  // Stores (or, under kDiscardAfterCallback, hands off) one finished
  // outcome and fires the completion callback.
  void finalize_outcome(std::uint32_t sid, CallOutcome&& outcome);
  // Evicts every cached close set (surrogate + per-host copies) that could
  // observe a routing change in `ases`; empty span = evict all built.
  void invalidate_close_sets(std::span<const AsId> ases);
  // --- Fault impls (shared by apply_fault and the legacy wrappers) ---------
  void crash_host(HostId h);
  void crash_surrogate(ClusterId c);
  void revive_host(HostId h);
  void send(NodeId from, NodeId to, sim::MessageCategory cat, ProtocolPayload payload);
  void send_probe(NodeId from, NodeId to, ActiveCall* call, bool relay_check,
                  std::function<void(Millis)> on_reply);
  // Requests the close set of `host`'s surrogate with timeout + failover.
  void fetch_close_set(HostId host, std::function<void()> on_ready);
  void start_close_set_fetch(HostId host);
  void deliver_close_set(HostId host);
  std::shared_ptr<const CloseClusterSet> surrogate_close_set(ClusterId c);

  population::World& world_;
  AsapParams params_;
  sim::EventQueue queue_;
  ProtocolNetwork net_;
  std::unique_ptr<MetricsRegistry> owned_metrics_;  // null when external
  MetricsRegistry* metrics_;
  ProtocolCounters counters_;
  TraceRecorder* trace_ = nullptr;

  std::vector<HostState> hosts_;
  std::vector<NodeId> bootstraps_;
  // Close sets computed by surrogates (shared across requests).
  std::vector<std::shared_ptr<const CloseClusterSet>> surrogate_sets_;
  std::map<std::uint64_t, PendingProbe> pending_probes_;
  std::uint64_t next_token_ = 1;
  std::uint32_t next_session_ = 1;

  // Fault-injection state: deferred active-relay kills (armed per call at
  // voice start), the loss-burst drop probability, and the dedicated RNG
  // stream that decides which burst packets die (forked from the world
  // seed, so reruns drop the same packets).
  std::vector<sim::FaultEvent> pending_call_faults_;
  double voice_drop_p_ = 0.0;
  Rng fault_rng_;

  // Living-world churn state, sized lazily by arm_churn_plan (zero cost for
  // workloads that never arm one): the dedicated RNG picking which member
  // departs, per-cluster stacks of departed hosts awaiting rejoin, the
  // build timestamp of each surrogate close set (staleness observation at
  // eviction) and the churn.* metric handles.
  Rng churn_rng_;
  std::vector<std::vector<HostId>> departed_;
  std::vector<Millis> surrogate_set_built_ms_;
  std::optional<ChurnCounters> churn_counters_;

  // Gray-failure state: the active degradation episodes keyed by node index
  // (sim::kDegradeAllTraffic = path-level), and the lazily registered
  // grayfail metric series. Both stay empty for workloads that never see a
  // gray fault, keeping their digests and RNG streams untouched.
  struct ActiveDegrade {
    sim::DegradeProfile profile;
    Millis started_ms = 0.0;  // loss ramp reference
  };
  std::map<std::uint32_t, ActiveDegrade> degrades_;
  std::optional<GrayFailCounters> grayfail_counters_;

  // Session table: every in-flight call's state machine, keyed by session
  // id. std::map keeps iteration in session order, so cross-session sweeps
  // (stalled-call finalization, fault attribution) are deterministic.
  std::map<std::uint32_t, std::unique_ptr<ActiveCall>> sessions_;
  // Finished outcomes awaiting harvest via outcome()/take_outcome().
  std::map<std::uint32_t, CallOutcome> completed_;
  CompletionFn on_complete_;
  OutcomeRetention retention_ = OutcomeRetention::kKeepAll;
  std::size_t peak_concurrent_sessions_ = 0;

  // Relay-capacity model (sized only when enabled): per-host stream caps
  // derived from Peer::capacity and the live forwarded-stream counts.
  bool capacity_enabled_ = false;
  bool admission_enabled_ = false;
  std::vector<std::uint32_t> relay_stream_cap_;
  std::vector<std::uint32_t> relay_streams_;
};

// Sequential convenience replacing the deprecated AsapSystem::call() with
// its exact semantics: places the call and steps the queue only until the
// call finishes — unlike run_until_idle(), events scheduled after the
// completion stay queued, so interleaved sequential workloads (benches that
// alternate calls with fault injection) keep their historical timing.
CallOutcome run_call(AsapSystem& system, const CallSpec& spec);
inline CallOutcome run_call(AsapSystem& system, HostId caller, HostId callee,
                            Millis voice_duration_ms = 400.0) {
  CallSpec spec;
  spec.caller = caller;
  spec.callee = callee;
  spec.start_at_ms = system.queue().now();  // not in the future: synchronous
  spec.voice_duration_ms = voice_duration_ms;
  return run_call(system, spec);
}

}  // namespace asap::core
