// select-close-relay() — paper Fig. 10.
//
// Given a calling session (h1, h2), intersects the endpoints' close cluster
// sets to obtain one-hop relay candidates; every IP in an accepted cluster
// is a quality one-hop relay node (set OS). When OS holds fewer than sizeT
// nodes, expands to two-hop relays by fetching the close cluster sets of
// the OS surrogates and intersecting them with h2's set (set TS of node
// pairs). Message accounting follows Sec. 7.3: 2 messages for the one-hop
// exchange, 2 per fetched surrogate close set, plus 2 per verification
// probe of a candidate relay path.
#pragma once

#include <cstdint>
#include <vector>

#include "core/close_cluster.h"
#include "core/close_set_source.h"
#include "core/params.h"
#include "population/session_gen.h"
#include "common/ids.h"
#include "common/rng.h"

namespace asap::core {

struct RelayChoice {
  Millis rtt_ms = kUnreachableMs;
  double loss = 1.0;
  HostId relay1 = HostId::invalid();
  HostId relay2 = HostId::invalid();  // invalid for one-hop / direct
  [[nodiscard]] bool is_two_hop() const { return relay2.valid(); }
  [[nodiscard]] bool found() const { return relay1.valid(); }
};

struct SelectRelayResult {
  // Accepted one-hop relay clusters (surrogate clusters r with
  // relaylat(h1-r-h2) < latT).
  std::vector<ClusterId> one_hop_clusters;
  // |OS|: total one-hop relay nodes (every IP in an accepted cluster).
  std::uint64_t one_hop_nodes = 0;
  // Two-hop expansion bookkeeping.
  bool two_hop_triggered = false;
  std::uint64_t two_hop_pairs = 0;  // |TS| (node pairs), exact count
  std::vector<std::pair<ClusterId, ClusterId>> two_hop_cluster_pairs;  // capped sample
  // Best relay path found (by RTT among probed candidates).
  RelayChoice best;
  // Control messages generated for this session (Fig. 18 metric).
  std::uint64_t messages = 0;
  // The same traffic in wire bytes (close-set transfers dominate).
  std::uint64_t bytes = 0;
  // Quality paths metric as the paper counts it: one-hop nodes + two-hop
  // node pairs meeting the latency requirement.
  [[nodiscard]] std::uint64_t quality_paths() const { return one_hop_nodes + two_hop_pairs; }
};

// Number of accepted candidate clusters actually verification-probed for a
// given probe fraction: ceil(accepted * fraction), clamped to [0, accepted].
// (Sec. 7.3's overhead-reduction knob; a fraction of 1 probes everything.)
[[nodiscard]] std::size_t probe_quota(std::size_t accepted, double fraction);

// Runs select-close-relay() for a session against an abstract close-set
// source (flat cache or federated control plane). Two-hop surrogate-set
// fetches are charged only when the source reports them fetched; the
// caller↔callee setup exchange is charged unconditionally (it rides the
// session-setup frames regardless of control-plane tier). `rng` drives the
// probe-fraction subsampling (unused when probe_fraction == 1).
SelectRelayResult select_close_relay(const population::World& world, CloseSetSource& source,
                                     const population::Session& session, Rng& rng);

// Legacy entrypoint: wraps the cache in a FlatCloseSetSource — every
// foreign view fetches, so accounting is byte-identical to pre-overlay.
SelectRelayResult select_close_relay(const population::World& world, CloseSetCache& cache,
                                     const population::Session& session, Rng& rng);

}  // namespace asap::core
