#include "core/wire.h"

#include <cstring>

namespace asap::core::wire {

namespace {

enum class Tag : std::uint8_t {
  kJoinRequest = 1,
  kJoinReply = 2,
  kCloseSetRequest = 3,
  kCloseSetReply = 4,
  kPublishInfo = 5,
  kSurrogateFailureReport = 6,
  kSurrogateUpdate = 7,
  kProbe = 8,
  kProbeReply = 9,
  kCallSetup = 10,
  kCallAccept = 11,
  kVoicePacket = 12,
  kRelayFailureNotice = 13,
  kProbeBusy = 14,
  kRendezvousRegister = 15,
  kRendezvousBound = 16,
  kIbPush = 17,
  kIbRequest = 18,
  kViaSetup = 19,
};

class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    for (int i = 0; i < 2; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f32(float v) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, 4);
    u32(bits);
  }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    u64(bits);
  }

  std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  bool u8(std::uint8_t& v) { return read(&v, 1); }
  bool u16(std::uint16_t& v) {
    std::uint8_t b[2];
    if (!read(b, 2)) return false;
    v = static_cast<std::uint16_t>(b[0] | (b[1] << 8));
    return true;
  }
  bool u32(std::uint32_t& v) {
    std::uint8_t b[4];
    if (!read(b, 4)) return false;
    v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | b[i];
    return true;
  }
  bool u64(std::uint64_t& v) {
    std::uint8_t b[8];
    if (!read(b, 8)) return false;
    v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
    return true;
  }
  bool f32(float& v) {
    std::uint32_t bits;
    if (!u32(bits)) return false;
    std::memcpy(&v, &bits, 4);
    return true;
  }
  bool f64(double& v) {
    std::uint64_t bits;
    if (!u64(bits)) return false;
    std::memcpy(&v, &bits, 8);
    return true;
  }

  [[nodiscard]] bool exhausted() const { return pos_ == bytes_.size(); }
  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  bool read(std::uint8_t* dst, std::size_t n) {
    if (pos_ + n > bytes_.size()) return false;
    std::memcpy(dst, bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

void put_close_set(Writer& w, const CloseClusterSet& set) {
  w.u32(set.owner.value());
  w.u32(static_cast<std::uint32_t>(set.entries.size()));
  for (const auto& e : set.entries) {
    w.u32(e.cluster.value());
    w.f32(static_cast<float>(e.rtt_ms));
    w.f32(static_cast<float>(e.loss));
    w.u8(e.as_hops);
  }
}

bool get_close_set(Reader& r, CloseClusterSet& set) {
  std::uint32_t owner = 0;
  std::uint32_t count = 0;
  if (!r.u32(owner) || !r.u32(count)) return false;
  // Guard against absurd counts (truncation attacks): each entry costs 13
  // bytes on the wire, so `count` cannot exceed what remains.
  if (count > r.remaining() / 13) return false;
  set.owner = ClusterId(owner);
  set.entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    CloseClusterEntry e;
    std::uint32_t cluster = 0;
    float rtt = 0;
    float loss = 0;
    if (!r.u32(cluster) || !r.f32(rtt) || !r.f32(loss) || !r.u8(e.as_hops)) return false;
    e.cluster = ClusterId(cluster);
    e.rtt_ms = rtt;
    e.loss = loss;
    set.entries.push_back(e);
  }
  return true;
}

}  // namespace

std::size_t close_set_wire_bytes(const CloseClusterSet& set) {
  return 8 + set.entries.size() * 13;
}

std::vector<std::uint8_t> encode(const ProtocolPayload& payload) {
  Writer w;
  w.u8(kWireVersion);
  std::visit(
      [&w](const auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, JoinRequest>) {
          w.u8(static_cast<std::uint8_t>(Tag::kJoinRequest));
          w.u32(msg.ip.bits());
        } else if constexpr (std::is_same_v<T, JoinReply>) {
          w.u8(static_cast<std::uint8_t>(Tag::kJoinReply));
          w.u32(msg.asn);
          w.u32(msg.cluster.value());
          w.u32(msg.surrogate.value());
        } else if constexpr (std::is_same_v<T, CloseSetRequest>) {
          w.u8(static_cast<std::uint8_t>(Tag::kCloseSetRequest));
        } else if constexpr (std::is_same_v<T, CloseSetReply>) {
          w.u8(static_cast<std::uint8_t>(Tag::kCloseSetReply));
          static const CloseClusterSet kEmpty{};
          put_close_set(w, msg.set ? *msg.set : kEmpty);
        } else if constexpr (std::is_same_v<T, PublishInfo>) {
          w.u8(static_cast<std::uint8_t>(Tag::kPublishInfo));
          w.f64(msg.capacity);
        } else if constexpr (std::is_same_v<T, SurrogateFailureReport>) {
          w.u8(static_cast<std::uint8_t>(Tag::kSurrogateFailureReport));
          w.u32(msg.cluster.value());
          w.u32(msg.failed.value());
        } else if constexpr (std::is_same_v<T, SurrogateUpdate>) {
          w.u8(static_cast<std::uint8_t>(Tag::kSurrogateUpdate));
          w.u32(msg.cluster.value());
          w.u32(msg.new_surrogate.value());
        } else if constexpr (std::is_same_v<T, Probe>) {
          w.u8(static_cast<std::uint8_t>(Tag::kProbe));
          w.u64(msg.token);
        } else if constexpr (std::is_same_v<T, ProbeReply>) {
          w.u8(static_cast<std::uint8_t>(Tag::kProbeReply));
          w.u64(msg.token);
        } else if constexpr (std::is_same_v<T, CallSetup>) {
          w.u8(static_cast<std::uint8_t>(Tag::kCallSetup));
          w.u32(msg.session.value());
        } else if constexpr (std::is_same_v<T, CallAccept>) {
          w.u8(static_cast<std::uint8_t>(Tag::kCallAccept));
          w.u32(msg.session.value());
          static const CloseClusterSet kEmpty{};
          put_close_set(w, msg.callee_set ? *msg.callee_set : kEmpty);
        } else if constexpr (std::is_same_v<T, VoicePacket>) {
          w.u8(static_cast<std::uint8_t>(Tag::kVoicePacket));
          w.u32(msg.session.value());
          w.u32(msg.seq);
          w.f64(msg.sent_at_ms);
          w.u16(static_cast<std::uint16_t>(msg.route.size()));
          for (NodeId hop : msg.route) w.u32(hop.value());
        } else if constexpr (std::is_same_v<T, RelayFailureNotice>) {
          w.u8(static_cast<std::uint8_t>(Tag::kRelayFailureNotice));
          w.u32(msg.session.value());
          w.u32(msg.last_seq);
        } else if constexpr (std::is_same_v<T, ProbeBusy>) {
          w.u8(static_cast<std::uint8_t>(Tag::kProbeBusy));
          w.u64(msg.token);
        } else if constexpr (std::is_same_v<T, RendezvousRegister>) {
          w.u8(static_cast<std::uint8_t>(Tag::kRendezvousRegister));
          w.u32(msg.session.value());
          w.u32(msg.node);
        } else if constexpr (std::is_same_v<T, RendezvousBound>) {
          w.u8(static_cast<std::uint8_t>(Tag::kRendezvousBound));
          w.u32(msg.session.value());
          w.u32(msg.observed_ip);
          w.u16(msg.observed_port);
          w.u8(msg.peer_present);
        } else if constexpr (std::is_same_v<T, IbPush>) {
          w.u8(static_cast<std::uint8_t>(Tag::kIbPush));
          w.u32(msg.origin.value());
          w.f64(msg.built_at_ms);
          w.f32(msg.capability);
          static const CloseClusterSet kEmpty{};
          put_close_set(w, msg.set ? *msg.set : kEmpty);
        } else if constexpr (std::is_same_v<T, IbRequest>) {
          w.u8(static_cast<std::uint8_t>(Tag::kIbRequest));
          w.u32(msg.cluster.value());
        } else if constexpr (std::is_same_v<T, ViaSetup>) {
          w.u8(static_cast<std::uint8_t>(Tag::kViaSetup));
          w.u32(msg.session.value());
          w.u32(msg.from_node);
          w.u16(static_cast<std::uint16_t>(msg.route.size()));
          for (std::uint32_t hop : msg.route) w.u32(hop);
        }
      },
      payload);
  return w.take();
}

Expected<ProtocolPayload> decode(std::span<const std::uint8_t> bytes) {
  Reader r(bytes);
  std::uint8_t version = 0;
  std::uint8_t tag = 0;
  if (!r.u8(version) || !r.u8(tag)) return make_error("wire: truncated header");
  if (version != kWireVersion) return make_error("wire: unsupported version");

  auto finish = [&r](ProtocolPayload value) -> Expected<ProtocolPayload> {
    if (!r.exhausted()) return make_error("wire: trailing bytes");
    return value;
  };

  switch (static_cast<Tag>(tag)) {
    case Tag::kJoinRequest: {
      std::uint32_t ip = 0;
      if (!r.u32(ip)) return make_error("wire: truncated JoinRequest");
      return finish(JoinRequest{Ipv4Addr(ip)});
    }
    case Tag::kJoinReply: {
      JoinReply msg;
      std::uint32_t cluster = 0;
      std::uint32_t surrogate = 0;
      if (!r.u32(msg.asn) || !r.u32(cluster) || !r.u32(surrogate)) {
        return make_error("wire: truncated JoinReply");
      }
      msg.cluster = ClusterId(cluster);
      msg.surrogate = NodeId(surrogate);
      return finish(msg);
    }
    case Tag::kCloseSetRequest:
      return finish(CloseSetRequest{});
    case Tag::kCloseSetReply: {
      auto set = std::make_shared<CloseClusterSet>();
      if (!get_close_set(r, *set)) return make_error("wire: truncated CloseSetReply");
      return finish(CloseSetReply{std::move(set)});
    }
    case Tag::kPublishInfo: {
      PublishInfo msg;
      if (!r.f64(msg.capacity)) return make_error("wire: truncated PublishInfo");
      return finish(msg);
    }
    case Tag::kSurrogateFailureReport: {
      std::uint32_t cluster = 0;
      std::uint32_t failed = 0;
      if (!r.u32(cluster) || !r.u32(failed)) {
        return make_error("wire: truncated SurrogateFailureReport");
      }
      return finish(SurrogateFailureReport{ClusterId(cluster), NodeId(failed)});
    }
    case Tag::kSurrogateUpdate: {
      std::uint32_t cluster = 0;
      std::uint32_t node = 0;
      if (!r.u32(cluster) || !r.u32(node)) {
        return make_error("wire: truncated SurrogateUpdate");
      }
      return finish(SurrogateUpdate{ClusterId(cluster), NodeId(node)});
    }
    case Tag::kProbe: {
      Probe msg{};
      if (!r.u64(msg.token)) return make_error("wire: truncated Probe");
      return finish(msg);
    }
    case Tag::kProbeReply: {
      ProbeReply msg{};
      if (!r.u64(msg.token)) return make_error("wire: truncated ProbeReply");
      return finish(msg);
    }
    case Tag::kCallSetup: {
      std::uint32_t session = 0;
      if (!r.u32(session)) return make_error("wire: truncated CallSetup");
      return finish(CallSetup{SessionId(session)});
    }
    case Tag::kCallAccept: {
      std::uint32_t session = 0;
      if (!r.u32(session)) return make_error("wire: truncated CallAccept");
      auto set = std::make_shared<CloseClusterSet>();
      if (!get_close_set(r, *set)) return make_error("wire: truncated CallAccept set");
      return finish(CallAccept{SessionId(session), std::move(set)});
    }
    case Tag::kVoicePacket: {
      VoicePacket msg;
      std::uint32_t session = 0;
      std::uint16_t hops = 0;
      if (!r.u32(session) || !r.u32(msg.seq) || !r.f64(msg.sent_at_ms) || !r.u16(hops)) {
        return make_error("wire: truncated VoicePacket");
      }
      if (hops > r.remaining() / 4) return make_error("wire: absurd route length");
      msg.session = SessionId(session);
      msg.route.reserve(hops);
      for (std::uint16_t i = 0; i < hops; ++i) {
        std::uint32_t hop = 0;
        if (!r.u32(hop)) return make_error("wire: truncated route");
        msg.route.push_back(NodeId(hop));
      }
      return finish(msg);
    }
    case Tag::kRelayFailureNotice: {
      std::uint32_t session = 0;
      std::uint32_t last_seq = 0;
      if (!r.u32(session) || !r.u32(last_seq)) {
        return make_error("wire: truncated RelayFailureNotice");
      }
      return finish(RelayFailureNotice{SessionId(session), last_seq});
    }
    case Tag::kProbeBusy: {
      ProbeBusy msg{};
      if (!r.u64(msg.token)) return make_error("wire: truncated ProbeBusy");
      return finish(msg);
    }
    case Tag::kRendezvousRegister: {
      RendezvousRegister msg;
      std::uint32_t session = 0;
      if (!r.u32(session) || !r.u32(msg.node)) {
        return make_error("wire: truncated RendezvousRegister");
      }
      msg.session = SessionId(session);
      return finish(msg);
    }
    case Tag::kRendezvousBound: {
      RendezvousBound msg;
      std::uint32_t session = 0;
      if (!r.u32(session) || !r.u32(msg.observed_ip) || !r.u16(msg.observed_port) ||
          !r.u8(msg.peer_present)) {
        return make_error("wire: truncated RendezvousBound");
      }
      msg.session = SessionId(session);
      return finish(msg);
    }
    case Tag::kIbPush: {
      IbPush msg;
      std::uint32_t origin = 0;
      if (!r.u32(origin) || !r.f64(msg.built_at_ms) || !r.f32(msg.capability)) {
        return make_error("wire: truncated IbPush");
      }
      msg.origin = ClusterId(origin);
      auto set = std::make_shared<CloseClusterSet>();
      if (!get_close_set(r, *set)) return make_error("wire: truncated IbPush set");
      msg.set = std::move(set);
      return finish(msg);
    }
    case Tag::kIbRequest: {
      std::uint32_t cluster = 0;
      if (!r.u32(cluster)) return make_error("wire: truncated IbRequest");
      return finish(IbRequest{ClusterId(cluster)});
    }
    case Tag::kViaSetup: {
      ViaSetup msg;
      std::uint32_t session = 0;
      std::uint16_t hops = 0;
      if (!r.u32(session) || !r.u32(msg.from_node) || !r.u16(hops)) {
        return make_error("wire: truncated ViaSetup");
      }
      if (hops > r.remaining() / 4) return make_error("wire: absurd route length");
      msg.session = SessionId(session);
      msg.route.reserve(hops);
      for (std::uint16_t i = 0; i < hops; ++i) {
        std::uint32_t hop = 0;
        if (!r.u32(hop)) return make_error("wire: truncated ViaSetup route");
        msg.route.push_back(hop);
      }
      return finish(msg);
    }
  }
  return make_error("wire: unknown tag");
}

std::size_t encoded_size(const ProtocolPayload& payload) {
  constexpr std::size_t kHeader = 2;  // version + tag
  return std::visit(
      [](const auto& msg) -> std::size_t {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, JoinRequest>) {
          return kHeader + 4;
        } else if constexpr (std::is_same_v<T, JoinReply>) {
          return kHeader + 12;
        } else if constexpr (std::is_same_v<T, CloseSetRequest>) {
          return kHeader;
        } else if constexpr (std::is_same_v<T, CloseSetReply>) {
          return kHeader + (msg.set ? close_set_wire_bytes(*msg.set) : 8);
        } else if constexpr (std::is_same_v<T, PublishInfo>) {
          return kHeader + 8;
        } else if constexpr (std::is_same_v<T, SurrogateFailureReport>) {
          return kHeader + 8;
        } else if constexpr (std::is_same_v<T, SurrogateUpdate>) {
          return kHeader + 8;
        } else if constexpr (std::is_same_v<T, Probe> || std::is_same_v<T, ProbeReply> ||
                             std::is_same_v<T, ProbeBusy>) {
          return kHeader + 8;
        } else if constexpr (std::is_same_v<T, CallSetup>) {
          return kHeader + 4;
        } else if constexpr (std::is_same_v<T, CallAccept>) {
          return kHeader + 4 + (msg.callee_set ? close_set_wire_bytes(*msg.callee_set) : 8);
        } else if constexpr (std::is_same_v<T, VoicePacket>) {
          return kHeader + 4 + 4 + 8 + 2 + 4 * msg.route.size();
        } else if constexpr (std::is_same_v<T, RelayFailureNotice>) {
          return kHeader + 8;
        } else if constexpr (std::is_same_v<T, RendezvousRegister>) {
          return kHeader + 8;
        } else if constexpr (std::is_same_v<T, RendezvousBound>) {
          return kHeader + 11;
        } else if constexpr (std::is_same_v<T, IbPush>) {
          return kHeader + 16 + (msg.set ? close_set_wire_bytes(*msg.set) : 8);
        } else if constexpr (std::is_same_v<T, IbRequest>) {
          return kHeader + 4;
        } else if constexpr (std::is_same_v<T, ViaSetup>) {
          return kHeader + 4 + 4 + 2 + 4 * msg.route.size();
        }
      },
      payload);
}

}  // namespace asap::core::wire
