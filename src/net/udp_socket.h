// RAII nonblocking UDP socket.
//
// The datapath's only I/O primitive: bind (ephemeral ports supported),
// sendto, nonblocking recvfrom with truncation detection. No internal
// buffering, no threads — a PollLoop (or a test harness) drives it by
// readiness. Datagrams are the framing: one core/wire.h frame per datagram,
// so a short read can never split a frame.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "net/endpoint.h"
#include "common/expected.h"

namespace asap::net {

class UdpSocket {
 public:
  UdpSocket() = default;  // invalid until bound
  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;
  ~UdpSocket();

  // Opens a nonblocking IPv4 UDP socket bound to `local` (port 0 asks the
  // kernel for an ephemeral port; the bound address is readable through
  // local_endpoint()). Errors carry the failing syscall and errno text.
  static Expected<UdpSocket> bind(const Endpoint& local);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  // The locally bound address (resolved after ephemeral assignment).
  [[nodiscard]] const Endpoint& local_endpoint() const { return local_; }

  // Sends one datagram. Returns false when the kernel refused it (buffer
  // full / unreachable); UDP semantics — the caller counts, never retries
  // inline.
  bool send_to(const Endpoint& to, std::span<const std::uint8_t> bytes);

  struct Datagram {
    Endpoint from;
    std::size_t size = 0;    // bytes written into the caller's buffer
    bool truncated = false;  // datagram was larger than the buffer
  };
  // Nonblocking receive of one datagram into `buf`; nullopt when nothing is
  // pending. `truncated` is exact (MSG_TRUNC): an oversize datagram is
  // consumed and flagged, never silently clipped.
  std::optional<Datagram> recv_from(std::span<std::uint8_t> buf);

  void close();

 private:
  explicit UdpSocket(int fd, const Endpoint& local) : fd_(fd), local_(local) {}

  int fd_ = -1;
  Endpoint local_;
};

}  // namespace asap::net
