#include "net/addr_map.h"

#include <cassert>

namespace asap::net {

NodeId AddrMap::intern(const Endpoint& ep) {
  auto it = by_addr_.find(ep);
  if (it != by_addr_.end()) return it->second;
  NodeId id(static_cast<std::uint32_t>(by_node_.size()));
  by_node_.push_back(ep);
  by_addr_.emplace(ep, id);
  return id;
}

std::optional<NodeId> AddrMap::find(const Endpoint& ep) const {
  auto it = by_addr_.find(ep);
  if (it == by_addr_.end()) return std::nullopt;
  return it->second;
}

const Endpoint& AddrMap::endpoint_of(NodeId node) const {
  assert(node.value() < by_node_.size());
  return by_node_[node.value()];
}

void AddrMap::rebind(NodeId node, const Endpoint& new_addr) {
  assert(node.value() < by_node_.size());
  by_addr_.erase(by_node_[node.value()]);
  // Last bind wins: an address stolen from another node stops resolving to
  // it (the NAT reassigned the binding).
  by_addr_[new_addr] = node;
  by_node_[node.value()] = new_addr;
}

}  // namespace asap::net
