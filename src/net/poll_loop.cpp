#include "net/poll_loop.h"

#include <poll.h>

#include <cerrno>
#include <chrono>

namespace asap::net {

namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

PollLoop::PollLoop() : epoch_ns_(steady_ns()) {}

void PollLoop::add_socket(int fd, ReadFn on_readable) {
  sockets_.push_back(Socket{fd, std::move(on_readable)});
}

void PollLoop::remove_socket(int fd) {
  std::erase_if(sockets_, [fd](const Socket& s) { return s.fd == fd; });
}

void PollLoop::add_ticker(TickFn on_tick) { tickers_.push_back(std::move(on_tick)); }

Millis PollLoop::now_ms() const {
  return static_cast<Millis>(steady_ns() - epoch_ns_) / 1.0e6;
}

bool PollLoop::run_once(int timeout_ms) {
  std::vector<pollfd> fds;
  fds.reserve(sockets_.size());
  for (const Socket& s : sockets_) fds.push_back(pollfd{s.fd, POLLIN, 0});
  int ready;
  do {
    ready = ::poll(fds.data(), fds.size(), timeout_ms);
  } while (ready < 0 && errno == EINTR);
  if (ready < 0) return false;
  for (const pollfd& p : fds) {
    if ((p.revents & POLLIN) == 0) continue;
    // Re-resolve by fd: a callback may add or remove sockets mid-dispatch
    // (the endpoint client's rebind does), so positional indexing is unsafe.
    for (std::size_t i = 0; i < sockets_.size(); ++i) {
      if (sockets_[i].fd == p.fd) {
        sockets_[i].on_readable(now_ms());
        break;
      }
    }
  }
  Millis now = now_ms();
  for (const TickFn& tick : tickers_) tick(now);
  return true;
}

bool PollLoop::run_until(const std::function<bool()>& done, Millis deadline_ms,
                         int poll_timeout_ms) {
  while (!done()) {
    if (now_ms() >= deadline_ms) return false;
    if (!run_once(poll_timeout_ms)) return false;
  }
  return true;
}

}  // namespace asap::net
