#include "net/udp_socket.h"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

namespace asap::net {

namespace {

Error errno_error(const char* what) {
  return make_error(std::string("udp: ") + what + ": " + std::strerror(errno));
}

}  // namespace

UdpSocket::UdpSocket(UdpSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), local_(other.local_) {}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    local_ = other.local_;
  }
  return *this;
}

UdpSocket::~UdpSocket() { close(); }

void UdpSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Expected<UdpSocket> UdpSocket::bind(const Endpoint& local) {
  int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return errno_error("socket");
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    ::close(fd);
    return errno_error("fcntl(O_NONBLOCK)");
  }
  sockaddr_in sa = to_sockaddr(local);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) < 0) {
    ::close(fd);
    return errno_error("bind");
  }
  // Resolve the kernel-assigned address (ephemeral port and, when bound to
  // INADDR_ANY, the wildcard stays as given).
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    ::close(fd);
    return errno_error("getsockname");
  }
  return UdpSocket(fd, from_sockaddr(bound));
}

bool UdpSocket::send_to(const Endpoint& to, std::span<const std::uint8_t> bytes) {
  sockaddr_in sa = to_sockaddr(to);
  ssize_t n = ::sendto(fd_, bytes.data(), bytes.size(), 0,
                       reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
  return n == static_cast<ssize_t>(bytes.size());
}

std::optional<UdpSocket::Datagram> UdpSocket::recv_from(std::span<std::uint8_t> buf) {
  sockaddr_in sa;
  socklen_t len = sizeof(sa);
  // MSG_TRUNC makes the return value the datagram's real length even when it
  // exceeded `buf`, so truncation is detectable instead of silent.
  ssize_t n = ::recvfrom(fd_, buf.data(), buf.size(), MSG_TRUNC,
                         reinterpret_cast<sockaddr*>(&sa), &len);
  if (n < 0) return std::nullopt;  // EAGAIN/EWOULDBLOCK: nothing pending
  Datagram d;
  d.from = from_sockaddr(sa);
  d.truncated = static_cast<std::size_t>(n) > buf.size();
  d.size = d.truncated ? buf.size() : static_cast<std::size_t>(n);
  return d;
}

}  // namespace asap::net
