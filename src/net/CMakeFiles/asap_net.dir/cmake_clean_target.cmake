file(REMOVE_RECURSE
  "libasap_net.a"
)
