file(REMOVE_RECURSE
  "CMakeFiles/asap_net.dir/addr_map.cpp.o"
  "CMakeFiles/asap_net.dir/addr_map.cpp.o.d"
  "CMakeFiles/asap_net.dir/endpoint.cpp.o"
  "CMakeFiles/asap_net.dir/endpoint.cpp.o.d"
  "CMakeFiles/asap_net.dir/poll_loop.cpp.o"
  "CMakeFiles/asap_net.dir/poll_loop.cpp.o.d"
  "CMakeFiles/asap_net.dir/session_table.cpp.o"
  "CMakeFiles/asap_net.dir/session_table.cpp.o.d"
  "CMakeFiles/asap_net.dir/udp_socket.cpp.o"
  "CMakeFiles/asap_net.dir/udp_socket.cpp.o.d"
  "libasap_net.a"
  "libasap_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asap_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
