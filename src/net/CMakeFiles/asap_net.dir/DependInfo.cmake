
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/addr_map.cpp" "src/net/CMakeFiles/asap_net.dir/addr_map.cpp.o" "gcc" "src/net/CMakeFiles/asap_net.dir/addr_map.cpp.o.d"
  "/root/repo/src/net/endpoint.cpp" "src/net/CMakeFiles/asap_net.dir/endpoint.cpp.o" "gcc" "src/net/CMakeFiles/asap_net.dir/endpoint.cpp.o.d"
  "/root/repo/src/net/poll_loop.cpp" "src/net/CMakeFiles/asap_net.dir/poll_loop.cpp.o" "gcc" "src/net/CMakeFiles/asap_net.dir/poll_loop.cpp.o.d"
  "/root/repo/src/net/session_table.cpp" "src/net/CMakeFiles/asap_net.dir/session_table.cpp.o" "gcc" "src/net/CMakeFiles/asap_net.dir/session_table.cpp.o.d"
  "/root/repo/src/net/udp_socket.cpp" "src/net/CMakeFiles/asap_net.dir/udp_socket.cpp.o" "gcc" "src/net/CMakeFiles/asap_net.dir/udp_socket.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/common/CMakeFiles/asap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
