# Empty dependencies file for asap_net.
# This may be replaced when dependencies are built.
