#include "net/endpoint.h"

#include <arpa/inet.h>

#include <cstring>

#include "common/ip.h"

namespace asap::net {

std::string Endpoint::to_string() const {
  return Ipv4Addr(ip).to_string() + ":" + std::to_string(port);
}

std::optional<Endpoint> Endpoint::parse(std::string_view text) {
  auto colon = text.rfind(':');
  if (colon == std::string_view::npos || colon + 1 >= text.size()) return std::nullopt;
  auto addr = Ipv4Addr::parse(text.substr(0, colon));
  if (!addr) return std::nullopt;
  std::uint32_t port = 0;
  for (char c : text.substr(colon + 1)) {
    if (c < '0' || c > '9') return std::nullopt;
    port = port * 10 + static_cast<std::uint32_t>(c - '0');
    if (port > 65535) return std::nullopt;
  }
  if (port == 0) return std::nullopt;
  return Endpoint{addr->bits(), static_cast<std::uint16_t>(port)};
}

Endpoint loopback(std::uint16_t port) { return Endpoint{INADDR_LOOPBACK, port}; }

sockaddr_in to_sockaddr(const Endpoint& ep) {
  sockaddr_in sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(ep.ip);
  sa.sin_port = htons(ep.port);
  return sa;
}

Endpoint from_sockaddr(const sockaddr_in& sa) {
  return Endpoint{ntohl(sa.sin_addr.s_addr), ntohs(sa.sin_port)};
}

}  // namespace asap::net
