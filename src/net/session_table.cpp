#include "net/session_table.h"

#include <algorithm>

namespace asap::net {

int SessionBindingTable::leg_index_by_addr(const Binding& b, const Endpoint& from) {
  for (int i = 0; i < 2; ++i) {
    if (b.legs[i].bound && b.legs[i].addr == from) return i;
  }
  return -1;
}

SessionBindingTable::RegisterResult SessionBindingTable::register_leg(
    SessionId session, std::uint32_t node, const Endpoint& ep, Millis now_ms) {
  auto it = sessions_.find(session.value());
  if (it == sessions_.end()) {
    if (sessions_.size() >= max_sessions_) return RegisterResult::kTableFull;
    Binding b;
    b.legs[0] = Leg{ep, node, now_ms, true};
    sessions_.emplace(session.value(), b);
    return RegisterResult::kNew;
  }
  Binding& b = it->second;
  // An existing leg is matched by its node id, not its address: the same
  // endpoint re-registering from a new source address is the NAT-rebinding
  // case and must relearn the binding rather than open a third leg.
  for (Leg& leg : b.legs) {
    if (leg.bound && leg.node == node) {
      bool moved = leg.addr != ep;
      leg.addr = ep;
      leg.last_seen_ms = now_ms;
      return moved ? RegisterResult::kRebound : RegisterResult::kRefreshed;
    }
  }
  if (!b.legs[1].bound) {
    b.legs[1] = Leg{ep, node, now_ms, true};
    return RegisterResult::kPaired;
  }
  return RegisterResult::kRejected;
}

std::optional<Endpoint> SessionBindingTable::peer_of(SessionId session,
                                                     const Endpoint& from) const {
  auto it = sessions_.find(session.value());
  if (it == sessions_.end()) return std::nullopt;
  const Binding& b = it->second;
  if (!b.legs[0].bound || !b.legs[1].bound) return std::nullopt;
  int i = leg_index_by_addr(b, from);
  if (i < 0) return std::nullopt;
  return b.legs[1 - i].addr;
}

bool SessionBindingTable::is_leg(SessionId session, const Endpoint& from) const {
  auto it = sessions_.find(session.value());
  return it != sessions_.end() && leg_index_by_addr(it->second, from) >= 0;
}

bool SessionBindingTable::paired(SessionId session) const {
  auto it = sessions_.find(session.value());
  return it != sessions_.end() && it->second.legs[0].bound && it->second.legs[1].bound;
}

void SessionBindingTable::touch(SessionId session, const Endpoint& from, Millis now_ms) {
  auto it = sessions_.find(session.value());
  if (it == sessions_.end()) return;
  int i = leg_index_by_addr(it->second, from);
  if (i >= 0) it->second.legs[i].last_seen_ms = now_ms;
}

std::size_t SessionBindingTable::reap_idle(Millis now_ms, Millis idle_timeout_ms) {
  std::size_t reaped = 0;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    Millis last = 0.0;
    for (const Leg& leg : it->second.legs) {
      if (leg.bound) last = std::max(last, leg.last_seen_ms);
    }
    if (now_ms - last >= idle_timeout_ms) {
      it = sessions_.erase(it);
      ++reaped;
    } else {
      ++it;
    }
  }
  return reaped;
}

}  // namespace asap::net
