// UDP endpoint value type and sockaddr conversions for the real datapath.
//
// The socket layer (src/net, src/relay_daemon) addresses peers by
// (IPv4, port) pairs; everything above it keeps using the strong id types
// from common/ids.h. Endpoint is the boundary value: host-byte-order IPv4
// (matching common/ip.h's Ipv4Addr) plus a UDP port, convertible to and
// from the sockaddr_in the kernel speaks.
#pragma once

#include <netinet/in.h>

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace asap::net {

struct Endpoint {
  std::uint32_t ip = 0;    // IPv4 in host byte order (Ipv4Addr::bits())
  std::uint16_t port = 0;  // UDP port in host byte order

  [[nodiscard]] bool valid() const { return port != 0; }
  // Dotted-quad "a.b.c.d:port".
  [[nodiscard]] std::string to_string() const;
  // Parses "a.b.c.d:port"; nullopt on malformed input or port 0/overflow.
  static std::optional<Endpoint> parse(std::string_view text);

  friend bool operator==(const Endpoint& a, const Endpoint& b) {
    return a.ip == b.ip && a.port == b.port;
  }
  friend bool operator!=(const Endpoint& a, const Endpoint& b) { return !(a == b); }
  friend bool operator<(const Endpoint& a, const Endpoint& b) {
    if (a.ip != b.ip) return a.ip < b.ip;
    return a.port < b.port;
  }
};

// Loopback shorthand: 127.0.0.1 with `port` (0 = kernel-assigned ephemeral).
[[nodiscard]] Endpoint loopback(std::uint16_t port = 0);

[[nodiscard]] sockaddr_in to_sockaddr(const Endpoint& ep);
[[nodiscard]] Endpoint from_sockaddr(const sockaddr_in& sa);

}  // namespace asap::net

namespace std {
template <>
struct hash<asap::net::Endpoint> {
  size_t operator()(const asap::net::Endpoint& ep) const noexcept {
    return std::hash<uint64_t>()((uint64_t(ep.ip) << 16) ^ ep.port);
  }
};
}  // namespace std
