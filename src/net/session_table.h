// Session binding table for the rendezvous relay.
//
// Each VoIP session pairs two endpoints that both dialled out to the relay;
// the table records the source address the relay observed for each leg
// (RendezvousRegister), pairs them by session id, and answers the
// forwarding question: "a frame of session S arrived from address A — where
// does it go?". Bindings age out when idle (the NAT analogy: a mapping that
// stops being refreshed expires) and the table enforces a concurrent-
// session cap derived from the PR 5 relay-capacity model — a full relay
// refuses new sessions the way an at-capacity sim relay answers ProbeBusy.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "net/endpoint.h"
#include "common/ids.h"
#include "common/units.h"

namespace asap::net {

class SessionBindingTable {
 public:
  explicit SessionBindingTable(std::size_t max_sessions)
      : max_sessions_(max_sessions) {}

  enum class RegisterResult : std::uint8_t {
    kNew,        // first leg of a fresh session
    kPaired,     // second leg joined; forwarding is now live
    kRefreshed,  // existing leg, same address (keepalive)
    kRebound,    // existing leg reappeared from a new address (NAT rebinding)
    kTableFull,  // fresh session refused: concurrent-session cap reached
    kRejected,   // a third node id tried to join a fully paired session
  };

  // Registers (or refreshes) `ep` as the leg of `session` owned by protocol
  // node `node`, stamping its activity at `now`.
  RegisterResult register_leg(SessionId session, std::uint32_t node,
                              const Endpoint& ep, Millis now_ms);

  // Forwarding lookup: the other leg's current address, when `from` is a
  // registered leg of `session` and both legs are bound. nullopt otherwise
  // (unknown session, unknown source, or a half-open session).
  [[nodiscard]] std::optional<Endpoint> peer_of(SessionId session,
                                                const Endpoint& from) const;
  // True when `from` is a registered leg of `session`.
  [[nodiscard]] bool is_leg(SessionId session, const Endpoint& from) const;
  // True once both legs of `session` are bound.
  [[nodiscard]] bool paired(SessionId session) const;
  // Refreshes the activity stamp of the leg owning `from`.
  void touch(SessionId session, const Endpoint& from, Millis now_ms);

  // Drops every session whose legs have all been silent for at least
  // `idle_timeout_ms`; returns how many were reaped.
  std::size_t reap_idle(Millis now_ms, Millis idle_timeout_ms);

  [[nodiscard]] std::size_t open_sessions() const { return sessions_.size(); }
  [[nodiscard]] std::size_t max_sessions() const { return max_sessions_; }

 private:
  struct Leg {
    Endpoint addr;
    std::uint32_t node = 0;
    Millis last_seen_ms = 0.0;
    bool bound = false;
  };
  struct Binding {
    Leg legs[2];
  };

  [[nodiscard]] static int leg_index_by_addr(const Binding& b, const Endpoint& from);

  std::size_t max_sessions_;
  // Ordered by session id: reaping sweeps are deterministic.
  std::map<std::uint32_t, Binding> sessions_;
};

}  // namespace asap::net
