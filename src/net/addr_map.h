// Bidirectional Endpoint <-> NodeId registry.
//
// The protocol layer (core/protocol.h, core/wire.h) speaks in the strong id
// types of common/ids.h; the socket layer speaks in observed source
// addresses. AddrMap is the bridge: every distinct sockaddr observed on a
// socket is interned to a dense NodeId, so socket-side frames can be handed
// to id-keyed code (AsapSystem::deliver_wire, session tables) and replies
// can be routed back to the owning address. rebind() reassigns an existing
// node to a new address — the NAT-rebinding case, where the same endpoint
// reappears from a different (ip, port) binding.
#pragma once

#include <cstddef>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/endpoint.h"
#include "common/ids.h"

namespace asap::net {

class AddrMap {
 public:
  // Returns the node registered for `ep`, interning a fresh dense id on
  // first sight.
  NodeId intern(const Endpoint& ep);
  // The node registered for `ep`, if any (never interns).
  [[nodiscard]] std::optional<NodeId> find(const Endpoint& ep) const;
  // The address a node currently answers at. `node` must have been interned.
  [[nodiscard]] const Endpoint& endpoint_of(NodeId node) const;
  // Moves `node` to `new_addr` (NAT rebinding): the old address forgets the
  // node, the new one resolves to it. If `new_addr` is already interned to a
  // different node, that node is evicted from the address (last bind wins —
  // exactly the NAT's behaviour).
  void rebind(NodeId node, const Endpoint& new_addr);

  [[nodiscard]] std::size_t size() const { return by_node_.size(); }

 private:
  std::vector<Endpoint> by_node_;
  std::unordered_map<Endpoint, NodeId> by_addr_;
};

}  // namespace asap::net
