// Single-threaded readiness loop over UDP sockets plus millisecond tickers.
//
// The real datapath's scheduler: poll(2) over every registered fd, readable
// sockets drain through their callbacks, then every ticker runs once — the
// components (relay daemon, endpoint clients) implement their timers
// (keepalives, idle reaping, pacing) against the loop's monotonic clock
// instead of owning threads. One loop can drive a whole in-process harness
// (relay + both endpoints), which is what keeps the loopback integration
// tests deterministic enough to gate CI on.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/units.h"

namespace asap::net {

class PollLoop {
 public:
  using ReadFn = std::function<void(Millis now_ms)>;
  using TickFn = std::function<void(Millis now_ms)>;

  PollLoop();

  // Registers a socket; `on_readable` must drain it (recv until empty) —
  // readiness is level-triggered but the loop reports each fd once per
  // run_once.
  void add_socket(int fd, ReadFn on_readable);
  // Deregisters a socket (e.g. before rebinding to a fresh ephemeral port —
  // the NAT-rebinding simulation closes one fd and registers another).
  void remove_socket(int fd);
  // Registers a per-iteration timer callback, run after I/O every run_once.
  void add_ticker(TickFn on_tick);

  // Monotonic milliseconds since loop construction (steady clock).
  [[nodiscard]] Millis now_ms() const;

  // One poll iteration: waits up to `timeout_ms` for readiness, dispatches
  // readable sockets, then runs every ticker. Returns false only on a poll
  // syscall error (EINTR is retried internally).
  bool run_once(int timeout_ms);

  // Runs until `done` returns true or `deadline_ms` (loop clock) passes.
  // Returns true when `done` was reached, false on deadline or poll error.
  bool run_until(const std::function<bool()>& done, Millis deadline_ms,
                 int poll_timeout_ms = 1);

 private:
  struct Socket {
    int fd = -1;
    ReadFn on_readable;
  };

  std::int64_t epoch_ns_ = 0;
  std::vector<Socket> sockets_;
  std::vector<TickFn> tickers_;
};

}  // namespace asap::net
