// Deterministic churn plans for the living-world soak runtime.
//
// A ChurnPlan is the population/topology counterpart of a FaultPlan: a
// time-sorted list of peer join/leave events and BGP-level route flaps
// (link withdrawal/restoration, policy change) generated up front from a
// seeded RNG so identical seeds replay identical worlds. Like FaultPlan it
// is protocol-agnostic — `arm()` schedules each event on an EventQueue and
// hands it to an apply callback; the protocol layer (core::AsapSystem)
// decides what "a peer leaves cluster 7" or "edge 42 fails" means (host
// state flips, PathOracle invalidation, close-set eviction).
//
// Peer events target clusters drawn from a Zipf distribution over cluster
// *size rank* — big clusters see proportionally more churn, matching the
// heavy-tailed membership the population generator produces. The sim layer
// cannot see population::PeerPopulation (layering: population sits above
// sim), so generate() takes the cluster sizes as a plain span plus the AS
// graph's edge count.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string_view>
#include <vector>

#include "sim/event_queue.h"
#include "common/rng.h"
#include "common/units.h"

namespace asap::sim {

enum class ChurnKind : std::uint8_t {
  kPeerLeave = 0,     // target = cluster index; one member departs
  kPeerJoin = 1,      // target = cluster index; a departed member returns
  kLinkFail = 2,      // target = AS-graph edge id; the adjacency is withdrawn
  kLinkRecover = 3,   // target = AS-graph edge id; the adjacency is restored
  kPolicyChange = 4,  // target = AS-graph edge id; commercial relationship flips
};

constexpr std::string_view churn_kind_name(ChurnKind k) {
  switch (k) {
    case ChurnKind::kPeerLeave: return "peer-leave";
    case ChurnKind::kPeerJoin: return "peer-join";
    case ChurnKind::kLinkFail: return "link-fail";
    case ChurnKind::kLinkRecover: return "link-recover";
    case ChurnKind::kPolicyChange: return "policy-change";
  }
  return "?";
}

struct ChurnEvent {
  Millis at_ms = 0.0;  // offset from arm time
  ChurnKind kind = ChurnKind::kPeerLeave;
  std::uint32_t target = 0;  // cluster index or edge id, by kind
};

// Expected event counts over a planning horizon; generate() draws the times
// and targets.
struct ChurnPlanParams {
  Millis horizon_ms = 60000.0;
  // Peer churn: leaves strike Zipf(size-rank)-selected clusters; each join
  // revives one of the planned leaves (same cluster) after an exponential
  // off-time with mean `rejoin_mean_ms` (joins capped at leave count).
  std::uint32_t peer_leaves = 0;
  std::uint32_t peer_joins = 0;
  double cluster_zipf_s = 0.9;
  Millis rejoin_mean_ms = 8000.0;
  // Route flaps: fails strike uniform edges; each recovery restores one of
  // the planned fails after an exponential downtime with mean
  // `link_downtime_mean_ms` (recoveries capped at fail count). Policy
  // changes strike uniform edges at uniform times.
  std::uint32_t link_fails = 0;
  std::uint32_t link_recoveries = 0;
  Millis link_downtime_mean_ms = 5000.0;
  std::uint32_t policy_changes = 0;
};

class ChurnPlan {
 public:
  // Draws a deterministic plan; identical (params, cluster_sizes, edge_count,
  // rng state) yield identical plans. `cluster_sizes[i]` is the member count
  // of cluster i — only the size *ranking* matters (ties broken by lower
  // index ranking first, so the ordering is stable across reruns).
  static ChurnPlan generate(const ChurnPlanParams& params,
                            std::span<const std::size_t> cluster_sizes,
                            std::size_t edge_count, Rng& rng);

  // Appends one event, keeping the list time-sorted (stable for ties).
  void add(ChurnEvent event);

  [[nodiscard]] const std::vector<ChurnEvent>& events() const { return events_; }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  // Schedules every event at `queue.now() + at_ms` and hands it to `apply`.
  void arm(EventQueue& queue, std::function<void(const ChurnEvent&)> apply) const;

 private:
  std::vector<ChurnEvent> events_;  // sorted by at_ms
};

}  // namespace asap::sim
