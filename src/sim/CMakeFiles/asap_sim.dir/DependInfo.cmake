
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/arrivals.cpp" "src/sim/CMakeFiles/asap_sim.dir/arrivals.cpp.o" "gcc" "src/sim/CMakeFiles/asap_sim.dir/arrivals.cpp.o.d"
  "/root/repo/src/sim/churn_plan.cpp" "src/sim/CMakeFiles/asap_sim.dir/churn_plan.cpp.o" "gcc" "src/sim/CMakeFiles/asap_sim.dir/churn_plan.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/sim/CMakeFiles/asap_sim.dir/event_queue.cpp.o" "gcc" "src/sim/CMakeFiles/asap_sim.dir/event_queue.cpp.o.d"
  "/root/repo/src/sim/fault_plan.cpp" "src/sim/CMakeFiles/asap_sim.dir/fault_plan.cpp.o" "gcc" "src/sim/CMakeFiles/asap_sim.dir/fault_plan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/netmodel/CMakeFiles/asap_netmodel.dir/DependInfo.cmake"
  "/root/repo/src/common/CMakeFiles/asap_common.dir/DependInfo.cmake"
  "/root/repo/src/astopo/CMakeFiles/asap_astopo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
