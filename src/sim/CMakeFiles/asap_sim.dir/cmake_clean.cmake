file(REMOVE_RECURSE
  "CMakeFiles/asap_sim.dir/arrivals.cpp.o"
  "CMakeFiles/asap_sim.dir/arrivals.cpp.o.d"
  "CMakeFiles/asap_sim.dir/churn_plan.cpp.o"
  "CMakeFiles/asap_sim.dir/churn_plan.cpp.o.d"
  "CMakeFiles/asap_sim.dir/event_queue.cpp.o"
  "CMakeFiles/asap_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/asap_sim.dir/fault_plan.cpp.o"
  "CMakeFiles/asap_sim.dir/fault_plan.cpp.o.d"
  "libasap_sim.a"
  "libasap_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asap_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
