// Deterministic Poisson call-arrival schedules for load experiments: the
// offered load of a system-load sweep is a rate of independent call starts,
// modelled as exponential inter-arrival gaps drawn from a caller-supplied
// RNG stream (fork the world RNG so reruns place every call at the same
// instant).
//
// Two schedule shapes:
//  - exponential_arrivals(): constant-rate Poisson (the PR-5 load sweeps);
//  - piecewise_poisson_arrivals(): piecewise-constant-rate Poisson over
//    RateSegments, for diurnal soak runs. By memorylessness, restarting the
//    exponential-gap draw at each segment boundary samples the
//    inhomogeneous process exactly (no thinning, no approximation).
// diurnal_rate_profile() builds the classic day/night sinusoid as segments.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace asap::sim {

// `count` absolute arrival times starting at `start_ms`, with i.i.d.
// exponential gaps of mean 1000/rate_per_s milliseconds. Strictly
// non-decreasing; rate_per_s must be > 0.
std::vector<Millis> exponential_arrivals(std::size_t count, double rate_per_s, Rng& rng,
                                         Millis start_ms = 0.0);

// One constant-rate stretch of a piecewise schedule: arrivals occur at
// `rate_per_s` from `start_ms` until the next segment begins (or the
// horizon ends). A rate of 0 is a silent stretch.
struct RateSegment {
  Millis start_ms = 0.0;
  double rate_per_s = 0.0;
};

// Absolute arrival times of a piecewise-constant-rate Poisson process over
// `segments` (sorted by start_ms; the first segment's start is the schedule
// origin), truncated at `horizon_ms` (absolute). The draw restarts at every
// segment boundary — exact for piecewise-constant rates — and consumes RNG
// draws in schedule order, so identical (segments, horizon, rng state)
// yield identical schedules.
std::vector<Millis> piecewise_poisson_arrivals(const std::vector<RateSegment>& segments,
                                               Millis horizon_ms, Rng& rng);

// Diurnal rate profile: a day of `period_ms` sampled into `segments_per_day`
// equal RateSegments tracing base_rate * (1 + amplitude * sin(2*pi*t/period))
// (midpoint-sampled), repeated for `days`. amplitude in [0, 1): amplitude 0
// is a flat profile identical to a constant-rate schedule; negative rates
// cannot occur. Feed the result to piecewise_poisson_arrivals().
std::vector<RateSegment> diurnal_rate_profile(double base_rate_per_s, double amplitude,
                                              Millis period_ms, std::size_t segments_per_day,
                                              std::size_t days = 1, Millis start_ms = 0.0);

}  // namespace asap::sim
