// Deterministic Poisson call-arrival schedules for load experiments: the
// offered load of a system-load sweep is a rate of independent call starts,
// modelled as exponential inter-arrival gaps drawn from a caller-supplied
// RNG stream (fork the world RNG so reruns place every call at the same
// instant).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace asap::sim {

// `count` absolute arrival times starting at `start_ms`, with i.i.d.
// exponential gaps of mean 1000/rate_per_s milliseconds. Strictly
// non-decreasing; rate_per_s must be > 0.
std::vector<Millis> exponential_arrivals(std::size_t count, double rate_per_s, Rng& rng,
                                         Millis start_ms = 0.0);

}  // namespace asap::sim
