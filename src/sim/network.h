// Message-passing network over the discrete-event kernel.
//
// Nodes live in ASes; delivery latency is the PathOracle's one-way policy
// latency between the ASes plus each endpoint's access (last-mile) delay.
// The payload type is a template parameter so protocol layers can use typed
// variants without the sim layer knowing about them.
#pragma once

#include <cassert>
#include <functional>
#include <utility>
#include <vector>

#include "netmodel/oracle.h"
#include "sim/event_queue.h"
#include "sim/message.h"
#include "common/ids.h"
#include "common/units.h"

namespace asap::sim {

template <typename Payload>
class Network {
 public:
  // Handler invoked at the receiving node when a message arrives.
  using Handler = std::function<void(NodeId from, const Payload& payload)>;

  Network(EventQueue& queue, const netmodel::PathOracle& oracle)
      : queue_(queue), oracle_(oracle) {}

  // Registers a node; `access_one_way_ms` models its last-mile delay.
  NodeId add_node(AsId as, Millis access_one_way_ms, Handler handler) {
    NodeId id(static_cast<std::uint32_t>(nodes_.size()));
    nodes_.push_back(NodeState{as, access_one_way_ms, std::move(handler)});
    return id;
  }

  // Replaces a node's handler (used when a plain end host is promoted to
  // surrogate and its protocol role changes).
  void set_handler(NodeId id, Handler handler) {
    nodes_[id.value()].handler = std::move(handler);
  }

  [[nodiscard]] AsId as_of(NodeId id) const { return nodes_[id.value()].as; }
  [[nodiscard]] Millis access_delay_ms(NodeId id) const {
    return nodes_[id.value()].access_one_way_ms;
  }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  // One-way delivery latency between two registered nodes.
  [[nodiscard]] Millis delivery_latency_ms(NodeId from, NodeId to) const {
    const auto& a = nodes_[from.value()];
    const auto& b = nodes_[to.value()];
    Millis path = (a.as == b.as) ? kSameAsLatencyMs : oracle_.one_way_ms(a.as, b.as);
    if (path >= kUnreachableMs) return kUnreachableMs;
    return path + a.access_one_way_ms + b.access_one_way_ms;
  }

  // Optional payload sizer: when set, every send also accounts the wire
  // bytes of the message (payload encoding + packet overhead).
  void set_payload_sizer(std::function<std::size_t(const Payload&)> sizer) {
    sizer_ = std::move(sizer);
  }

  // Optional fault hook: a sent message for which this returns true is
  // counted (the sender paid for it) but lost in flight. Used by the
  // fault-injection layer for loss-burst episodes.
  void set_drop_fn(std::function<bool(NodeId from, NodeId to, MessageCategory)> fn) {
    drop_fn_ = std::move(fn);
  }

  // In-flight perturbation of one message, decided per send by the
  // perturbation hook. A default-constructed Perturbation delivers exactly
  // like an unhooked network.
  struct Perturbation {
    Millis extra_delay_ms = 0.0;  // latency inflation / jitter / reorder lag
    bool duplicate = false;       // deliver a second copy
    Millis duplicate_lag_ms = 0.0;  // extra delay of the duplicate copy
  };
  // Optional gray-failure hook: consulted after the drop hook, it can
  // inflate a message's delivery latency (latency/jitter/reordering) and
  // duplicate it. Off by default; installers must draw randomness only when
  // a degradation is actually active so unhooked behaviour stays
  // bit-identical.
  void set_perturb_fn(
      std::function<Perturbation(NodeId from, NodeId to, MessageCategory)> fn) {
    perturb_fn_ = std::move(fn);
  }
  // Optional corruption hook: may mutate the payload in flight. Returning
  // false drops the message (corruption destroyed the frame); returning true
  // delivers the (possibly mutated) payload. Runs once per send, after the
  // perturbation hook; a duplicate carries the same (mutated) payload.
  void set_mutate_fn(
      std::function<bool(NodeId from, NodeId to, MessageCategory, Payload&)> fn) {
    mutate_fn_ = std::move(fn);
  }

  // Sends a message; it is delivered (handler invoked) after the one-way
  // latency. Messages whose path is unreachable are silently dropped, as on
  // the real network — protocols must use timeouts. Out-of-range node ids
  // (possible when a forwarding chain was corrupted in flight) are dropped
  // the same way.
  void send(NodeId from, NodeId to, MessageCategory category, Payload payload) {
    counter_.record(category, sizer_ ? sizer_(payload) : 0);
    if (from.value() >= nodes_.size() || to.value() >= nodes_.size()) return;
    if (drop_fn_ && drop_fn_(from, to, category)) return;
    Millis latency = delivery_latency_ms(from, to);
    if (latency >= kUnreachableMs) return;
    Perturbation p;
    if (perturb_fn_) p = perturb_fn_(from, to, category);
    if (mutate_fn_ && !mutate_fn_(from, to, category, payload)) return;
    latency += p.extra_delay_ms;
    if (p.duplicate) {
      queue_.after(latency + p.duplicate_lag_ms, [this, from, to, payload]() {
        nodes_[to.value()].handler(from, payload);
      });
    }
    queue_.after(latency, [this, from, to, payload = std::move(payload)]() {
      nodes_[to.value()].handler(from, payload);
    });
  }

  [[nodiscard]] EventQueue& queue() { return queue_; }
  [[nodiscard]] const netmodel::PathOracle& oracle() const { return oracle_; }
  [[nodiscard]] const MessageCounter& counter() const { return counter_; }
  [[nodiscard]] MessageCounter& counter() { return counter_; }

  // Latency floor between hosts that share an AS (intra-cluster hop).
  static constexpr Millis kSameAsLatencyMs = 2.0;

 private:
  struct NodeState {
    AsId as;
    Millis access_one_way_ms;
    Handler handler;
  };

  EventQueue& queue_;
  const netmodel::PathOracle& oracle_;
  std::vector<NodeState> nodes_;
  MessageCounter counter_;
  std::function<std::size_t(const Payload&)> sizer_;
  std::function<bool(NodeId, NodeId, MessageCategory)> drop_fn_;
  std::function<Perturbation(NodeId, NodeId, MessageCategory)> perturb_fn_;
  std::function<bool(NodeId, NodeId, MessageCategory, Payload&)> mutate_fn_;
};

}  // namespace asap::sim
