#include "sim/churn_plan.h"

#include <algorithm>
#include <numeric>

namespace asap::sim {

ChurnPlan ChurnPlan::generate(const ChurnPlanParams& params,
                              std::span<const std::size_t> cluster_sizes,
                              std::size_t edge_count, Rng& rng) {
  ChurnPlan plan;

  // Rank clusters by size, descending; ties rank the lower index first so
  // the ordering (and therefore the Zipf draws) is stable across reruns.
  std::vector<std::uint32_t> by_rank(cluster_sizes.size());
  std::iota(by_rank.begin(), by_rank.end(), 0u);
  std::stable_sort(by_rank.begin(), by_rank.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return cluster_sizes[a] > cluster_sizes[b];
                   });

  // Leaves first, so joins can pair with them below (same cluster: the
  // departed member later returns).
  std::vector<ChurnEvent> leaves;
  leaves.reserve(params.peer_leaves);
  for (std::uint32_t i = 0; i < params.peer_leaves && !by_rank.empty(); ++i) {
    ChurnEvent e;
    e.at_ms = rng.uniform(0.0, params.horizon_ms);
    e.kind = ChurnKind::kPeerLeave;
    e.target = by_rank[rng.zipf(by_rank.size(), params.cluster_zipf_s)];
    leaves.push_back(e);
  }
  for (const auto& e : leaves) plan.add(e);

  std::uint32_t joins = std::min<std::uint32_t>(
      params.peer_joins, static_cast<std::uint32_t>(leaves.size()));
  for (std::uint32_t i = 0; i < joins; ++i) {
    const ChurnEvent& leave = leaves[i];
    ChurnEvent e;
    e.at_ms = leave.at_ms + rng.exponential(params.rejoin_mean_ms);
    e.kind = ChurnKind::kPeerJoin;
    e.target = leave.target;
    plan.add(e);
  }

  // Route flaps: fails first so recoveries can pair with them.
  std::vector<ChurnEvent> fails;
  fails.reserve(params.link_fails);
  for (std::uint32_t i = 0; i < params.link_fails && edge_count > 0; ++i) {
    ChurnEvent e;
    e.at_ms = rng.uniform(0.0, params.horizon_ms);
    e.kind = ChurnKind::kLinkFail;
    e.target = static_cast<std::uint32_t>(rng.below(edge_count));
    fails.push_back(e);
  }
  for (const auto& e : fails) plan.add(e);

  std::uint32_t recoveries = std::min<std::uint32_t>(
      params.link_recoveries, static_cast<std::uint32_t>(fails.size()));
  for (std::uint32_t i = 0; i < recoveries; ++i) {
    const ChurnEvent& fail = fails[i];
    ChurnEvent e;
    e.at_ms = fail.at_ms + rng.exponential(params.link_downtime_mean_ms);
    e.kind = ChurnKind::kLinkRecover;
    e.target = fail.target;
    plan.add(e);
  }

  for (std::uint32_t i = 0; i < params.policy_changes && edge_count > 0; ++i) {
    ChurnEvent e;
    e.at_ms = rng.uniform(0.0, params.horizon_ms);
    e.kind = ChurnKind::kPolicyChange;
    e.target = static_cast<std::uint32_t>(rng.below(edge_count));
    plan.add(e);
  }

  return plan;
}

void ChurnPlan::add(ChurnEvent event) {
  auto pos = std::upper_bound(
      events_.begin(), events_.end(), event,
      [](const ChurnEvent& a, const ChurnEvent& b) { return a.at_ms < b.at_ms; });
  events_.insert(pos, event);
}

void ChurnPlan::arm(EventQueue& queue, std::function<void(const ChurnEvent&)> apply) const {
  for (const auto& event : events_) {
    queue.after(event.at_ms, [event, apply]() { apply(event); });
  }
}

}  // namespace asap::sim
