// Discrete-event simulation kernel: a time-ordered queue of callbacks with
// a simulated clock in milliseconds. Events at equal times fire in
// scheduling order (stable), which keeps runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.h"

namespace asap::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Schedules `fn` at absolute simulated time `time_ms` (>= now).
  void at(Millis time_ms, Callback fn);
  // Schedules `fn` `delay_ms` after the current time.
  void after(Millis delay_ms, Callback fn);

  // Runs the earliest event; returns false when the queue is empty.
  bool step();
  // Runs until empty or `max_events` processed; returns events processed.
  std::size_t run(std::size_t max_events = static_cast<std::size_t>(-1));
  // Runs events with time <= `until_ms`; the clock ends at `until_ms`.
  std::size_t run_until(Millis until_ms);

  [[nodiscard]] Millis now() const { return now_; }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }
  // High-water mark of pending events since construction (or the last
  // reset_peak_pending()); the observability layer exports it as a gauge.
  [[nodiscard]] std::size_t peak_pending() const { return peak_pending_; }
  void reset_peak_pending() { peak_pending_ = heap_.size(); }

 private:
  struct Event {
    Millis time;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  Millis now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t peak_pending_ = 0;
};

}  // namespace asap::sim
