// Message categories and per-category counters.
//
// The paper's overhead metric (Sec. 7.1 metric 3, Fig. 18) is "the number of
// generated messages to find the quality path relay nodes"; every protocol
// interaction in this repository is tagged with a category so overhead is
// measured, never estimated.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace asap::sim {

enum class MessageCategory : std::uint8_t {
  kJoin = 0,       // bootstrap join request/reply
  kCloseSet = 1,   // close-cluster-set request/reply (surrogate service)
  kPublish = 2,    // end-host nodal information publication
  kProbe = 3,      // latency/loss probes (ping-like)
  kCallSignal = 4, // call setup / relay negotiation between end hosts
  kVoice = 5,      // voice data packets
  kCount = 6,
};

constexpr std::string_view category_name(MessageCategory c) {
  switch (c) {
    case MessageCategory::kJoin: return "join";
    case MessageCategory::kCloseSet: return "close-set";
    case MessageCategory::kPublish: return "publish";
    case MessageCategory::kProbe: return "probe";
    case MessageCategory::kCallSignal: return "call-signal";
    case MessageCategory::kVoice: return "voice";
    case MessageCategory::kCount: break;
  }
  return "?";
}

class MessageCounter {
 public:
  void record(MessageCategory c, std::uint64_t bytes = 0) {
    ++counts_[static_cast<std::size_t>(c)];
    bytes_[static_cast<std::size_t>(c)] += bytes;
  }

  [[nodiscard]] std::uint64_t count(MessageCategory c) const {
    return counts_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t bytes(MessageCategory c) const {
    return bytes_[static_cast<std::size_t>(c)];
  }
  // Total control-plane bytes (everything except voice data).
  [[nodiscard]] std::uint64_t control_bytes() const {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < bytes_.size(); ++i) {
      if (i != static_cast<std::size_t>(MessageCategory::kVoice)) total += bytes_[i];
    }
    return total;
  }
  // Total control-plane messages (everything except voice data).
  [[nodiscard]] std::uint64_t control_total() const {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      if (i != static_cast<std::size_t>(MessageCategory::kVoice)) total += counts_[i];
    }
    return total;
  }
  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t total = 0;
    for (auto c : counts_) total += c;
    return total;
  }
  void reset() {
    counts_.fill(0);
    bytes_.fill(0);
  }

  // Difference helper for per-session accounting.
  [[nodiscard]] MessageCounter diff_since(const MessageCounter& earlier) const {
    MessageCounter d;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      d.counts_[i] = counts_[i] - earlier.counts_[i];
      d.bytes_[i] = bytes_[i] - earlier.bytes_[i];
    }
    return d;
  }

 private:
  std::array<std::uint64_t, static_cast<std::size_t>(MessageCategory::kCount)> counts_{};
  std::array<std::uint64_t, static_cast<std::size_t>(MessageCategory::kCount)> bytes_{};
};

}  // namespace asap::sim
