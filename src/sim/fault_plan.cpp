#include "sim/fault_plan.h"

#include <algorithm>

namespace asap::sim {

FaultPlan FaultPlan::generate(const FaultPlanParams& params, std::size_t host_count,
                              std::size_t cluster_count, Rng& rng) {
  FaultPlan plan;

  // Host crashes first, so recoveries can pair with them below.
  std::vector<FaultEvent> crashes;
  crashes.reserve(params.host_crashes);
  for (std::uint32_t i = 0; i < params.host_crashes && host_count > 0; ++i) {
    FaultEvent e;
    e.at_ms = rng.uniform(0.0, params.horizon_ms);
    e.kind = FaultKind::kHostCrash;
    e.target = static_cast<std::uint32_t>(rng.below(host_count));
    crashes.push_back(e);
  }
  for (const auto& e : crashes) plan.add(e);

  std::uint32_t recoveries = std::min<std::uint32_t>(
      params.host_recoveries, static_cast<std::uint32_t>(crashes.size()));
  for (std::uint32_t i = 0; i < recoveries; ++i) {
    const FaultEvent& crash = crashes[i];
    FaultEvent e;
    e.at_ms = crash.at_ms + rng.exponential(params.recovery_mean_ms);
    e.kind = FaultKind::kHostRecovery;
    e.target = crash.target;
    plan.add(e);
  }

  for (std::uint32_t i = 0; i < params.surrogate_crashes && cluster_count > 0; ++i) {
    FaultEvent e;
    e.at_ms = rng.uniform(0.0, params.horizon_ms);
    e.kind = FaultKind::kSurrogateCrash;
    e.target = static_cast<std::uint32_t>(rng.below(cluster_count));
    plan.add(e);
  }

  for (std::uint32_t i = 0; i < params.active_relay_crashes; ++i) {
    FaultEvent e;
    e.at_ms = rng.uniform(0.0, params.horizon_ms);
    e.kind = FaultKind::kActiveRelayCrash;
    plan.add(e);
  }

  for (std::uint32_t i = 0; i < params.loss_bursts; ++i) {
    FaultEvent start;
    start.at_ms = rng.uniform(0.0, params.horizon_ms);
    start.kind = FaultKind::kLossBurstStart;
    start.loss = params.loss_burst_drop;
    FaultEvent end;
    end.at_ms = start.at_ms + rng.exponential(params.loss_burst_mean_ms);
    end.kind = FaultKind::kLossBurstEnd;
    plan.add(start);
    plan.add(end);
  }

  for (std::uint32_t i = 0; i < params.node_degrades && host_count > 0; ++i) {
    FaultEvent start;
    start.at_ms = rng.uniform(0.0, params.horizon_ms);
    start.kind = FaultKind::kNodeDegradeStart;
    start.target = static_cast<std::uint32_t>(rng.below(host_count));
    start.degrade = params.degrade_profile;
    FaultEvent end;
    end.at_ms = start.at_ms + rng.exponential(params.degrade_mean_ms);
    end.kind = FaultKind::kNodeDegradeEnd;
    end.target = start.target;
    plan.add(start);
    plan.add(end);
  }

  for (std::uint32_t i = 0; i < params.active_relay_degrades; ++i) {
    FaultEvent e;
    e.at_ms = rng.uniform(0.0, params.horizon_ms);
    e.kind = FaultKind::kActiveRelayDegrade;
    e.degrade = params.degrade_profile;
    if (e.degrade.duration_ms <= 0.0) {
      e.degrade.duration_ms = rng.exponential(params.degrade_mean_ms);
    }
    plan.add(e);
  }

  return plan;
}

void FaultPlan::add(FaultEvent event) {
  auto pos = std::upper_bound(
      events_.begin(), events_.end(), event,
      [](const FaultEvent& a, const FaultEvent& b) { return a.at_ms < b.at_ms; });
  events_.insert(pos, event);
}

void FaultPlan::arm(EventQueue& queue, std::function<void(const FaultEvent&)> apply) const {
  for (const auto& event : events_) {
    if (event.kind == FaultKind::kActiveRelayCrash ||
        event.kind == FaultKind::kActiveRelayDegrade) {
      continue;
    }
    queue.after(event.at_ms, [event, apply]() { apply(event); });
  }
}

}  // namespace asap::sim
