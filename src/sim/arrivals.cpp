#include "sim/arrivals.h"

#include <cassert>
#include <cmath>

namespace asap::sim {

std::vector<Millis> exponential_arrivals(std::size_t count, double rate_per_s, Rng& rng,
                                         Millis start_ms) {
  assert(rate_per_s > 0.0);
  const double mean_gap_ms = 1000.0 / rate_per_s;
  std::vector<Millis> arrivals;
  arrivals.reserve(count);
  Millis t = start_ms;
  for (std::size_t i = 0; i < count; ++i) {
    t += rng.exponential(mean_gap_ms);
    arrivals.push_back(t);
  }
  return arrivals;
}

std::vector<Millis> piecewise_poisson_arrivals(const std::vector<RateSegment>& segments,
                                               Millis horizon_ms, Rng& rng) {
  std::vector<Millis> arrivals;
  for (std::size_t s = 0; s < segments.size(); ++s) {
    const RateSegment& seg = segments[s];
    Millis seg_end = s + 1 < segments.size() ? segments[s + 1].start_ms : horizon_ms;
    seg_end = std::min(seg_end, horizon_ms);
    if (seg.rate_per_s <= 0.0 || seg.start_ms >= seg_end) continue;
    const double mean_gap_ms = 1000.0 / seg.rate_per_s;
    // Memoryless restart at the boundary: the time to the first arrival
    // inside the segment is itself exponential, so the truncated draws
    // below sample the inhomogeneous process exactly.
    Millis t = seg.start_ms + rng.exponential(mean_gap_ms);
    while (t < seg_end) {
      arrivals.push_back(t);
      t += rng.exponential(mean_gap_ms);
    }
  }
  return arrivals;
}

std::vector<RateSegment> diurnal_rate_profile(double base_rate_per_s, double amplitude,
                                              Millis period_ms, std::size_t segments_per_day,
                                              std::size_t days, Millis start_ms) {
  assert(base_rate_per_s >= 0.0 && amplitude >= 0.0 && amplitude < 1.0);
  assert(period_ms > 0.0 && segments_per_day > 0);
  std::vector<RateSegment> profile;
  profile.reserve(days * segments_per_day);
  const Millis seg_len = period_ms / static_cast<double>(segments_per_day);
  for (std::size_t d = 0; d < days; ++d) {
    for (std::size_t i = 0; i < segments_per_day; ++i) {
      Millis seg_start = start_ms + static_cast<double>(d) * period_ms +
                         static_cast<double>(i) * seg_len;
      constexpr double kTwoPi = 6.283185307179586;
      Millis mid = (static_cast<double>(i) + 0.5) * seg_len;
      double rate =
          base_rate_per_s * (1.0 + amplitude * std::sin(kTwoPi * mid / period_ms));
      profile.push_back(RateSegment{seg_start, rate});
    }
  }
  return profile;
}

}  // namespace asap::sim
