#include "sim/arrivals.h"

#include <cassert>

namespace asap::sim {

std::vector<Millis> exponential_arrivals(std::size_t count, double rate_per_s, Rng& rng,
                                         Millis start_ms) {
  assert(rate_per_s > 0.0);
  const double mean_gap_ms = 1000.0 / rate_per_s;
  std::vector<Millis> arrivals;
  arrivals.reserve(count);
  Millis t = start_ms;
  for (std::size_t i = 0; i < count; ++i) {
    t += rng.exponential(mean_gap_ms);
    arrivals.push_back(t);
  }
  return arrivals;
}

}  // namespace asap::sim
