// Deterministic fault-injection plans for the discrete-event simulation.
//
// A FaultPlan is a time-sorted list of fault events — host crashes,
// surrogate outages, active-relay kills, host recoveries and loss-burst
// episodes — generated up front from a seeded RNG (fork the world RNG) so
// the exact same faults strike at the exact same simulated times on every
// rerun. The plan itself is protocol-agnostic: `arm()` schedules each event
// on an EventQueue and hands it to an apply callback; the protocol layer
// (core::AsapSystem) decides what a "surrogate crash" or "active relay"
// means. Events of kind kActiveRelayCrash carry times relative to the next
// call's voice-stream start instead of absolute plan time, because the
// relay identity only exists once a call has selected one.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "sim/event_queue.h"
#include "common/rng.h"
#include "common/units.h"

namespace asap::sim {

enum class FaultKind : std::uint8_t {
  kHostCrash = 0,        // target = host index; the host drops all traffic
  kSurrogateCrash = 1,   // target = cluster index; kills its primary surrogate
  kActiveRelayCrash = 2, // kills the first relay of the streaming call's route;
                         // at_ms is relative to that call's voice start
  kHostRecovery = 3,     // target = host index; revives a crashed host
  kLossBurstStart = 4,   // begin dropping voice packets with probability `loss`
  kLossBurstEnd = 5,     // end the loss-burst episode
  // --- Gray failures: the node stays alive and responsive but its traffic
  // degrades (loss ramp, latency inflation, jitter, reorder/dup/corrupt).
  kNodeDegradeStart = 6, // target = host index (kDegradeAllTraffic = every
                         // message on the wire, i.e. a path-level degradation)
  kNodeDegradeEnd = 7,   // target must match the start event
  kActiveRelayDegrade = 8, // degrades the first relay of the next streaming
                           // call's route; at_ms is relative to that call's
                           // voice start, duration in degrade.duration_ms
};

// Wildcard target for kNodeDegradeStart/End: the degradation applies to all
// traffic instead of one node (a path-level gray failure).
inline constexpr std::uint32_t kDegradeAllTraffic = 0xFFFFFFFFu;

constexpr std::string_view fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kHostCrash: return "host-crash";
    case FaultKind::kSurrogateCrash: return "surrogate-crash";
    case FaultKind::kActiveRelayCrash: return "active-relay-crash";
    case FaultKind::kHostRecovery: return "host-recovery";
    case FaultKind::kLossBurstStart: return "loss-burst-start";
    case FaultKind::kLossBurstEnd: return "loss-burst-end";
    case FaultKind::kNodeDegradeStart: return "node-degrade-start";
    case FaultKind::kNodeDegradeEnd: return "node-degrade-end";
    case FaultKind::kActiveRelayDegrade: return "active-relay-degrade";
  }
  return "?";
}

// Severity profile of one gray-failure episode. All fields default to zero:
// a default profile perturbs nothing.
struct DegradeProfile {
  double loss = 0.0;          // per-packet drop probability at full ramp
  Millis ramp_ms = 0.0;       // loss ramps linearly 0 -> `loss` over this time
  Millis latency_add_ms = 0.0; // flat one-way latency inflation
  Millis jitter_ms = 0.0;      // mean of an exponential per-packet jitter term
  double reorder = 0.0;        // probability a packet is delayed past successors
  double duplicate = 0.0;      // probability a packet is delivered twice
  double corrupt = 0.0;        // probability a packet is corrupted in flight
  Millis duration_ms = 0.0;    // kActiveRelayDegrade: auto-end after this long
                               // (0 = degraded for the rest of the call)
};

struct FaultEvent {
  Millis at_ms = 0.0;  // offset from arm time (or voice start, see above)
  FaultKind kind = FaultKind::kHostCrash;
  std::uint32_t target = 0;  // host or cluster index, by kind; else unused
  double loss = 0.0;         // drop probability for loss bursts
  DegradeProfile degrade;    // only read for the degrade kinds
};

// Expected event counts over a planning horizon; generate() draws the times
// and targets.
struct FaultPlanParams {
  Millis horizon_ms = 60000.0;
  std::uint32_t host_crashes = 0;
  std::uint32_t surrogate_crashes = 0;
  std::uint32_t active_relay_crashes = 0;
  // Each recovery revives one of the planned host crashes after an
  // exponential downtime with this mean (capped at host_crashes).
  std::uint32_t host_recoveries = 0;
  Millis recovery_mean_ms = 5000.0;
  // Loss-burst episodes: start uniform in the horizon, duration exponential
  // with mean `loss_burst_mean_ms`, drop probability `loss_burst_drop`.
  std::uint32_t loss_bursts = 0;
  Millis loss_burst_mean_ms = 2000.0;
  double loss_burst_drop = 0.3;
  // Gray-failure degradation episodes: per-node episodes start uniform in
  // the horizon and last exponential(degrade_mean_ms); active-relay
  // degradations defer to the next call's voice start like
  // kActiveRelayCrash. Every episode carries `degrade_profile`.
  std::uint32_t node_degrades = 0;
  std::uint32_t active_relay_degrades = 0;
  Millis degrade_mean_ms = 2000.0;
  DegradeProfile degrade_profile;
};

class FaultPlan {
 public:
  // Draws a deterministic plan; identical (params, host_count,
  // cluster_count, rng state) yield identical plans.
  static FaultPlan generate(const FaultPlanParams& params, std::size_t host_count,
                            std::size_t cluster_count, Rng& rng);

  // Appends one event, keeping the list time-sorted (stable for ties).
  void add(FaultEvent event);

  [[nodiscard]] const std::vector<FaultEvent>& events() const { return events_; }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  // Schedules every event at `queue.now() + at_ms` and hands it to `apply`.
  // kActiveRelayCrash and kActiveRelayDegrade events are *skipped* here —
  // their clocks start at a call's voice stream, which only the protocol
  // layer knows (see core::AsapSystem::arm_fault_plan).
  void arm(EventQueue& queue, std::function<void(const FaultEvent&)> apply) const;

 private:
  std::vector<FaultEvent> events_;  // sorted by at_ms
};

}  // namespace asap::sim
