#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace asap::sim {

void EventQueue::at(Millis time_ms, Callback fn) {
  assert(time_ms >= now_);
  heap_.push(Event{time_ms, next_seq_++, std::move(fn)});
  if (heap_.size() > peak_pending_) peak_pending_ = heap_.size();
}

void EventQueue::after(Millis delay_ms, Callback fn) {
  assert(delay_ms >= 0.0);
  at(now_ + delay_ms, std::move(fn));
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; the event is copied out before pop so
  // the callback may schedule further events safely.
  Event ev = heap_.top();
  heap_.pop();
  now_ = ev.time;
  ev.fn();
  return true;
}

std::size_t EventQueue::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

std::size_t EventQueue::run_until(Millis until_ms) {
  std::size_t n = 0;
  while (!heap_.empty() && heap_.top().time <= until_ms && step()) ++n;
  if (now_ < until_ms) now_ = until_ms;
  return n;
}

}  // namespace asap::sim
