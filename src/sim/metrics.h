// Named counters for simulation-level bookkeeping (surrogate elections,
// relay switches, probe timeouts, ...). Header-only.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace asap::sim {

class MetricsRegistry {
 public:
  void increment(const std::string& name, std::uint64_t by = 1) { counters_[name] += by; }

  [[nodiscard]] std::uint64_t value(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  [[nodiscard]] const std::map<std::string, std::uint64_t>& all() const { return counters_; }

  void reset() { counters_.clear(); }

 private:
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace asap::sim
