// Simulation-level metrics: absorbed into the structured observability
// subsystem (common/metrics.h). The sim-layer alias survives so existing
// includes and the `sim::MetricsRegistry` spelling keep working; new code
// should pre-register Counter/Gauge/Histogram handles instead of using the
// string-keyed convenience API.
#pragma once

#include "common/metrics.h"

namespace asap::sim {

using MetricsRegistry = asap::MetricsRegistry;

}  // namespace asap::sim
