#include "relay_daemon/relay_daemon.h"

namespace asap::relayd {

Expected<RelayDaemon> RelayDaemon::open(const net::Endpoint& bind_addr,
                                        const RelayConfig& config,
                                        MetricsRegistry* external) {
  auto socket = net::UdpSocket::bind(bind_addr);
  if (!socket) return make_error(socket.error().message);
  return RelayDaemon(std::move(*socket), config, external);
}

RelayDaemon::RelayDaemon(net::UdpSocket socket, const RelayConfig& config,
                         MetricsRegistry* external)
    : socket_(std::move(socket)),
      core_(std::make_unique<RelayCore>(config, external)) {}

void RelayDaemon::attach(net::PollLoop& loop) {
  loop.add_socket(socket_.fd(), [this](Millis now_ms) { on_readable(now_ms); });
  loop.add_ticker([this](Millis now_ms) { on_tick(now_ms); });
}

void RelayDaemon::on_readable(Millis now_ms) {
  const RelayCore::SendFn send = [this](const net::Endpoint& to,
                                        std::span<const std::uint8_t> bytes) {
    socket_.send_to(to, bytes);
  };
  while (auto dgram = socket_.recv_from(buf_)) {
    core_->handle_datagram(dgram->from,
                           std::span<const std::uint8_t>(buf_.data(), dgram->size),
                           now_ms, send, dgram->truncated);
  }
}

}  // namespace asap::relayd
