#include "relay_daemon/relay_core.h"

#include <algorithm>
#include <variant>

#include "core/wire.h"

namespace asap::relayd {
namespace {

// Session id carried by a payload, for kinds the relay forwards between the
// legs of a bound session. Kinds with no session (joins, probes, close-set
// traffic) are not relayable.
std::optional<SessionId> session_of(const core::ProtocolPayload& payload) {
  using core::CallAccept;
  using core::CallSetup;
  using core::RelayFailureNotice;
  using core::VoicePacket;
  if (const auto* v = std::get_if<VoicePacket>(&payload)) return v->session;
  if (const auto* v = std::get_if<CallSetup>(&payload)) return v->session;
  if (const auto* v = std::get_if<CallAccept>(&payload)) return v->session;
  if (const auto* v = std::get_if<RelayFailureNotice>(&payload)) return v->session;
  return std::nullopt;
}

// Reap cadence: a fraction of the idle timeout so expiry latency is bounded,
// but never busier than 4 Hz.
constexpr Millis kMinReapIntervalMs = 250.0;

}  // namespace

std::uint32_t relay_session_cap(double capacity, double per_capacity,
                                std::uint32_t min_streams) {
  auto cap = static_cast<std::uint32_t>(capacity * per_capacity);
  return std::max(min_streams, cap);
}

RelaydCounters::RelaydCounters(MetricsRegistry& r)
    : datagrams_rx(r.counter("relayd.datagrams_rx")),
      datagrams_tx(r.counter("relayd.datagrams_tx")),
      bytes_rx(r.counter("relayd.bytes_rx")),
      bytes_tx(r.counter("relayd.bytes_tx")),
      decode_errors(r.counter("relayd.decode_errors")),
      unknown_kind(r.counter("relayd.unknown_kind")),
      oversize_drops(r.counter("relayd.oversize_drops")),
      unknown_source(r.counter("relayd.unknown_source")),
      unhandled_kind(r.counter("relayd.unhandled_kind")),
      registers(r.counter("relayd.registers")),
      rebinds(r.counter("relayd.rebinds")),
      bound_replies(r.counter("relayd.bound_replies")),
      busy_rejections(r.counter("relayd.busy_rejections")),
      keepalive_probes(r.counter("relayd.keepalive_probes")),
      sessions_opened(r.counter("relayd.sessions_opened")),
      sessions_reaped(r.counter("relayd.sessions_reaped")),
      forwarded_frames(r.counter("relayd.forwarded_frames")),
      forwarded_voice(r.counter("relayd.forwarded_voice")),
      via_setups(r.counter("relayd.via_setups")),
      via_unknown_hop(r.counter("relayd.via_unknown_hop")),
      peak_sessions(r.gauge("relayd.peak_sessions")) {}

RelayCore::RelayCore(const RelayConfig& config, MetricsRegistry* external)
    : config_(config),
      owned_metrics_(external == nullptr ? std::make_unique<MetricsRegistry>()
                                         : nullptr),
      metrics_(external == nullptr ? owned_metrics_.get() : external),
      counters_(*metrics_),
      table_(config.max_sessions) {}

void RelayCore::emit(const net::Endpoint& to, std::span<const std::uint8_t> bytes,
                     const SendFn& send) {
  counters_.datagrams_tx.inc();
  counters_.bytes_tx.add(bytes.size());
  send(to, bytes);
}

void RelayCore::emit_payload(const net::Endpoint& to,
                             const core::ProtocolPayload& payload, const SendFn& send) {
  const std::vector<std::uint8_t> bytes = core::wire::encode(payload);
  emit(to, bytes, send);
}

void RelayCore::handle_datagram(const net::Endpoint& from,
                                std::span<const std::uint8_t> bytes, Millis now_ms,
                                const SendFn& send, bool truncated) {
  counters_.datagrams_rx.inc();
  counters_.bytes_rx.add(bytes.size());
  if (truncated || bytes.size() > kMaxFrameBytes) {
    counters_.oversize_drops.inc();
    return;
  }

  // Phase-1 forwarder: no parsing beyond the oversize guard — bytes out are
  // bytes in. Frames from the fixed target go back to the most recent other
  // source; everything else goes to the target.
  if (config_.forward_target.has_value()) {
    const net::Endpoint& target = *config_.forward_target;
    if (from == target) {
      if (!forward_peer_.valid()) {
        counters_.unknown_source.inc();
        return;
      }
      counters_.forwarded_frames.inc();
      emit(forward_peer_, bytes, send);
      return;
    }
    forward_peer_ = from;
    counters_.forwarded_frames.inc();
    emit(target, bytes, send);
    return;
  }

  auto decoded = core::wire::decode(bytes);
  if (!decoded) {
    if (decoded.error().message.find("unknown tag") != std::string::npos) {
      counters_.unknown_kind.inc();
    } else {
      counters_.decode_errors.inc();
    }
    return;
  }
  handle_rendezvous(from, *decoded, bytes, now_ms, send);
}

void RelayCore::handle_rendezvous(const net::Endpoint& from,
                                  const core::ProtocolPayload& payload,
                                  std::span<const std::uint8_t> raw, Millis now_ms,
                                  const SendFn& send) {
  using Result = net::SessionBindingTable::RegisterResult;

  if (const auto* reg = std::get_if<core::RendezvousRegister>(&payload)) {
    const Result r = table_.register_leg(reg->session, reg->node, from, now_ms);
    switch (r) {
      case Result::kTableFull:
        // The socket relay refuses exactly like an at-capacity sim relay
        // refuses a relay-check probe (PR 5 capacity model).
        counters_.busy_rejections.inc();
        emit_payload(from, core::ProbeBusy{core::kRelayCheckTokenBit}, send);
        return;
      case Result::kRejected:
        counters_.unknown_source.inc();
        return;
      case Result::kNew:
        counters_.sessions_opened.inc();
        counters_.peak_sessions.max_of(static_cast<double>(table_.open_sessions()));
        break;
      case Result::kRebound:
        counters_.rebinds.inc();
        break;
      case Result::kPaired:
      case Result::kRefreshed:
        break;
    }
    counters_.registers.inc();
    core::RendezvousBound bound;
    bound.session = reg->session;
    bound.observed_ip = from.ip;
    bound.observed_port = from.port;
    bound.peer_present = table_.paired(reg->session) ? 1 : 0;
    counters_.bound_replies.inc();
    emit_payload(from, bound, send);
    // The pairing register also notifies the waiting first leg immediately
    // (its own reflexive address, peer_present set) instead of letting it
    // discover the peer on its next keepalive — setup doesn't pay a
    // keepalive interval of latency.
    if (r == Result::kPaired) {
      if (const auto peer = table_.peer_of(reg->session, from)) {
        core::RendezvousBound note;
        note.session = reg->session;
        note.observed_ip = peer->ip;
        note.observed_port = peer->port;
        note.peer_present = 1;
        counters_.bound_replies.inc();
        emit_payload(*peer, note, send);
      }
    }
    return;
  }

  // Via tier (DESIGN.md §15): a ViaSetup extends the session's forwarding
  // chain through this relay. The sender (caller or upstream via relay)
  // registers as one leg; a non-empty route registers the next via relay as
  // the other leg and forwards the setup — after which the existing
  // per-session forwarding path carries the voice through the chain with no
  // further via-specific state.
  if (const auto* via = std::get_if<core::ViaSetup>(&payload)) {
    counters_.via_setups.inc();
    const Result up = table_.register_leg(via->session, via->from_node, from, now_ms);
    switch (up) {
      case Result::kTableFull:
        counters_.busy_rejections.inc();
        emit_payload(from, core::ProbeBusy{core::kRelayCheckTokenBit}, send);
        return;
      case Result::kRejected:
        counters_.unknown_source.inc();
        return;
      case Result::kNew:
        counters_.sessions_opened.inc();
        counters_.peak_sessions.max_of(static_cast<double>(table_.open_sessions()));
        break;
      case Result::kPaired:
      case Result::kRebound:
      case Result::kRefreshed:
        break;
    }
    // Terminal hop pairing: the upstream chain reached a relay where the
    // callee side is already registered — wake the waiting leg now instead
    // of on its next keepalive.
    if (up == Result::kPaired) {
      if (const auto peer = table_.peer_of(via->session, from)) {
        core::RendezvousBound note;
        note.session = via->session;
        note.observed_ip = peer->ip;
        note.observed_port = peer->port;
        note.peer_present = 1;
        counters_.bound_replies.inc();
        emit_payload(*peer, note, send);
      }
    }
    if (via->route.empty()) return;  // route terminates here
    const std::uint32_t hop = via->route.front();
    const auto next_peer = config_.via_peers.find(hop);
    if (next_peer == config_.via_peers.end()) {
      counters_.via_unknown_hop.inc();
      return;
    }
    const Result down =
        table_.register_leg(via->session, hop, next_peer->second, now_ms);
    if (down == Result::kPaired) {
      // The downstream leg completed this relay's pair — typically the
      // caller is the other leg; tell it the path is live.
      if (const auto peer = table_.peer_of(via->session, next_peer->second)) {
        core::RendezvousBound note;
        note.session = via->session;
        note.observed_ip = peer->ip;
        note.observed_port = peer->port;
        note.peer_present = 1;
        counters_.bound_replies.inc();
        emit_payload(*peer, note, send);
      }
    }
    core::ViaSetup next;
    next.session = via->session;
    next.from_node = config_.node_id;
    next.route.assign(via->route.begin() + 1, via->route.end());
    emit_payload(next_peer->second, next, send);
    return;
  }

  // Plain ping: always answered. A relay-check probe (token bit 63) is
  // refused while the session table is full, mirroring the sim relay.
  if (const auto* probe = std::get_if<core::Probe>(&payload)) {
    const bool relay_check = (probe->token & core::kRelayCheckTokenBit) != 0;
    if (relay_check && table_.open_sessions() >= table_.max_sessions()) {
      counters_.busy_rejections.inc();
      emit_payload(from, core::ProbeBusy{probe->token}, send);
    } else {
      counters_.keepalive_probes.inc();
      emit_payload(from, core::ProbeReply{probe->token}, send);
    }
    return;
  }

  const std::optional<SessionId> session = session_of(payload);
  if (!session.has_value()) {
    counters_.unhandled_kind.inc();
    return;
  }
  const std::optional<net::Endpoint> peer = table_.peer_of(*session, from);
  if (!peer.has_value()) {
    counters_.unknown_source.inc();
    return;
  }
  table_.touch(*session, from, now_ms);
  counters_.forwarded_frames.inc();
  if (std::get_if<core::VoicePacket>(&payload) != nullptr) {
    counters_.forwarded_voice.inc();
  }
  emit(*peer, raw, send);
}

void RelayCore::on_tick(Millis now_ms) {
  const Millis interval =
      std::max(kMinReapIntervalMs, config_.idle_timeout_ms / 4.0);
  if (now_ms - last_reap_ms_ < interval) return;
  last_reap_ms_ = now_ms;
  const std::size_t reaped = table_.reap_idle(now_ms, config_.idle_timeout_ms);
  if (reaped > 0) counters_.sessions_reaped.add(reaped);
}

}  // namespace asap::relayd
