#include "relay_daemon/endpoint_client.h"

#include <algorithm>

#include "core/wire.h"

namespace asap::relayd {

Expected<EndpointClient> EndpointClient::open(const EndpointConfig& config,
                                              const net::Endpoint& bind_addr) {
  auto socket = net::UdpSocket::bind(bind_addr);
  if (!socket) return make_error(socket.error().message);
  return EndpointClient(std::move(*socket), config);
}

EndpointClient::EndpointClient(net::UdpSocket socket, const EndpointConfig& config)
    : socket_(std::move(socket)), config_(config) {}

void EndpointClient::attach(net::PollLoop& loop) {
  loop.add_socket(socket_.fd(), [this](Millis now_ms) { on_readable(now_ms); });
  loop.add_ticker([this](Millis now_ms) { on_tick(now_ms); });
  const Millis now = loop.now_ms();
  started_ = true;
  start_ms_ = now;
  last_bound_rx_ms_ = now;  // relay-timeout clock starts at registration
  send_register(now);
}

bool EndpointClient::rebind(net::PollLoop& loop, const net::Endpoint& bind_addr) {
  auto fresh = net::UdpSocket::bind(bind_addr);
  if (!fresh) return false;
  loop.remove_socket(socket_.fd());
  socket_ = std::move(*fresh);
  loop.add_socket(socket_.fd(), [this](Millis now_ms) { on_readable(now_ms); });
  // Re-register at once so the relay relearns this leg's address before the
  // next voice frame needs forwarding.
  send_register(loop.now_ms());
  return true;
}

void EndpointClient::send_payload(const core::ProtocolPayload& payload, Millis now_ms) {
  const std::vector<std::uint8_t> bytes = core::wire::encode(payload);
  socket_.send_to(config_.relay, bytes);
  if (std::get_if<core::VoicePacket>(&payload) == nullptr) {
    report_.control_messages += 1;
    report_.control_bytes += bytes.size() + core::wire::kPacketOverheadBytes;
  }
  (void)now_ms;
}

void EndpointClient::send_register(Millis now_ms) {
  last_register_ms_ = now_ms;
  send_payload(core::RendezvousRegister{config_.session, config_.node}, now_ms);
}

void EndpointClient::on_readable(Millis now_ms) {
  while (auto dgram = socket_.recv_from(buf_)) {
    if (dgram->truncated) continue;
    auto decoded = core::wire::decode(
        std::span<const std::uint8_t>(buf_.data(), dgram->size));
    if (!decoded) continue;  // endpoints drop malformed frames silently
    handle_payload(*decoded, now_ms);
  }
}

void EndpointClient::handle_payload(const core::ProtocolPayload& payload,
                                    Millis now_ms) {
  if (const auto* bound = std::get_if<core::RendezvousBound>(&payload)) {
    if (bound->session != config_.session) return;
    report_.bound = true;
    report_.observed = net::Endpoint{bound->observed_ip, bound->observed_port};
    last_bound_rx_ms_ = now_ms;
    // Source-routed path: (re)issue the ViaSetup until the chain reports the
    // peer present — each Bound without it means the route is not live yet
    // (the setup may have been lost; re-sending is an idempotent refresh).
    if (config_.caller && !config_.via_route.empty() && bound->peer_present == 0 &&
        !report_.peer_present_seen) {
      core::ViaSetup via;
      via.session = config_.session;
      via.from_node = config_.node;
      via.route = config_.via_route;
      send_payload(via, now_ms);
    }
    if (bound->peer_present != 0) {
      report_.peer_present_seen = true;
      if (config_.caller && !setup_sent_) {
        setup_sent_ = true;
        last_setup_tx_ms_ = now_ms;
        send_payload(core::CallSetup{config_.session}, now_ms);
      }
    }
    return;
  }
  if (std::get_if<core::ProbeBusy>(&payload) != nullptr) {
    report_.busy_rejected = true;
    return;
  }
  if (const auto* setup = std::get_if<core::CallSetup>(&payload)) {
    if (config_.caller || setup->session != config_.session) return;
    if (!accepted_) {
      accepted_ = true;
      send_payload(core::CallAccept{config_.session, nullptr}, now_ms);
    }
    return;
  }
  if (const auto* accept = std::get_if<core::CallAccept>(&payload)) {
    if (!config_.caller || accept->session != config_.session) return;
    if (!voice_active_) {
      voice_active_ = true;
      next_voice_due_ms_ = now_ms;  // first packet goes out on the next tick
    }
    return;
  }
  if (const auto* voice = std::get_if<core::VoicePacket>(&payload)) {
    if (config_.caller || voice->session != config_.session) return;
    on_voice(*voice, now_ms);
    return;
  }
  if (const auto* notice = std::get_if<core::RelayFailureNotice>(&payload)) {
    if (notice->session != config_.session) return;
    report_.failure_notices_received += 1;
    return;
  }
}

void EndpointClient::on_voice(const core::VoicePacket& voice, Millis now_ms) {
  if (!any_voice_) {
    any_voice_ = true;
    first_voice_rx_ms_ = now_ms;
    report_.setup_ms = now_ms - start_ms_;
  }
  last_voice_rx_ms_ = now_ms;
  gap_notice_outstanding_ = false;  // stream is alive again
  if (voice.seq >= seen_.size()) seen_.resize(voice.seq + 1, false);
  if (seen_[voice.seq]) {
    report_.duplicate_voice_packets += 1;
    return;
  }
  if (any_voice_ && voice.seq < highest_seq_) report_.reordered_voice_packets += 1;
  seen_[voice.seq] = true;
  highest_seq_ = std::max(highest_seq_, voice.seq);
  report_.voice_packets_received += 1;
  if (voice.seq == total_packets() - 1) {
    report_.completed = true;
    report_.voice_packets_lost =
        highest_seq_ + 1 - report_.voice_packets_received;
  }
}

void EndpointClient::on_tick(Millis now_ms) {
  if (!started_ || done()) return;

  // Keepalive registration: refreshes the NAT binding and solicits a Bound
  // reply, which is also the relay liveness signal.
  if (now_ms - last_register_ms_ >= config_.keepalive_interval_ms) {
    send_register(now_ms);
  }
  if (now_ms - last_bound_rx_ms_ >= config_.relay_timeout_ms) {
    report_.relay_lost = true;
    return;
  }

  if (config_.caller) {
    if (!voice_active_) {
      // A via chain can report the peer present before its far leg is live
      // (the via relay registers its downstream hop itself), so the one-shot
      // CallSetup may be dropped in flight: re-issue it on the keepalive
      // cadence until the CallAccept arrives. Idempotent — the callee
      // answers each setup at most once.
      if (setup_sent_ &&
          now_ms - last_setup_tx_ms_ >= config_.keepalive_interval_ms) {
        last_setup_tx_ms_ = now_ms;
        send_payload(core::CallSetup{config_.session}, now_ms);
      }
      return;
    }
    const std::uint32_t n = total_packets();
    while (next_seq_ < n && now_ms >= next_voice_due_ms_) {
      if (report_.voice_packets_sent == 0 && report_.setup_ms == 0.0) {
        report_.setup_ms = now_ms - start_ms_;
      }
      core::VoicePacket voice;
      voice.session = config_.session;
      voice.seq = next_seq_;
      voice.sent_at_ms = now_ms;
      send_payload(voice, now_ms);
      report_.voice_packets_sent += 1;
      next_seq_ += 1;
      next_voice_due_ms_ += config_.pacing_ms;
    }
    if (next_seq_ >= n) report_.completed = true;
    return;
  }

  // Callee: mid-call silence detection, the socket analogue of the sim's
  // keepalive-gap check — fire one failure notice per silence episode.
  if (any_voice_ && !gap_notice_outstanding_) {
    const Millis gap_threshold =
        std::max(3.0 * config_.pacing_ms, config_.keepalive_interval_ms);
    if (now_ms - last_voice_rx_ms_ >= gap_threshold) {
      report_.gap_detected = true;
      gap_notice_outstanding_ = true;
      report_.failure_notices_sent += 1;
      send_payload(core::RelayFailureNotice{config_.session, highest_seq_}, now_ms);
    }
  }
}

}  // namespace asap::relayd
