// asap-endpoint: test client driving one real call through asap-relay.
//
// Roles: caller (streams voice once the callee's leg is present), callee
// (receives and acknowledges), or pair (both legs in one process on one
// poll loop — the smallest self-contained demo of the rendezvous datapath:
//   asap-relay --print-port &   # note the port
//   asap-endpoint --relay 127.0.0.1:PORT --role pair
// exits 0 iff the call completed).

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "net/endpoint.h"
#include "net/poll_loop.h"
#include "relay_daemon/endpoint_client.h"

namespace {

void usage() {
  std::cerr << "usage: asap-endpoint --relay A.B.C.D:P [options]\n"
               "  --role caller|callee|pair   (default pair)\n"
               "  --session N           session id (default 1)\n"
               "  --node N              protocol node id (default: 1 caller, 2 callee)\n"
               "  --duration-ms X       voice duration (default 400)\n"
               "  --pacing-ms X         voice pacing (default 20 = 50 pps)\n"
               "  --keepalive-ms X      register/keepalive interval (default 250)\n"
               "  --timeout-ms X        give up after this long (default 15000)\n"
               "  --bind A.B.C.D        local bind address (default 127.0.0.1)\n"
               "  --via ID[,ID]         via route: overlay node ids of intermediate\n"
               "                        relays the caller's rendezvous relay should\n"
               "                        extend the path through (see --via-peer on\n"
               "                        asap-relay); caller leg only\n"
               "  --callee-relay A.B.C.D:P  rendezvous relay for the callee leg in\n"
               "                        pair mode (default: --relay); a via call\n"
               "                        terminates at the route's last relay\n";
}

void print_report(const char* leg, const asap::relayd::CallReport& r) {
  std::cout << "{\"leg\":\"" << leg << "\",\"completed\":" << (r.completed ? 1 : 0)
            << ",\"bound\":" << (r.bound ? 1 : 0)
            << ",\"peer_present\":" << (r.peer_present_seen ? 1 : 0)
            << ",\"busy_rejected\":" << (r.busy_rejected ? 1 : 0)
            << ",\"gap_detected\":" << (r.gap_detected ? 1 : 0)
            << ",\"relay_lost\":" << (r.relay_lost ? 1 : 0)
            << ",\"voice_sent\":" << r.voice_packets_sent
            << ",\"voice_received\":" << r.voice_packets_received
            << ",\"voice_lost\":" << r.voice_packets_lost
            << ",\"duplicates\":" << r.duplicate_voice_packets
            << ",\"reordered\":" << r.reordered_voice_packets
            << ",\"notices_sent\":" << r.failure_notices_sent
            << ",\"notices_received\":" << r.failure_notices_received
            << ",\"control_messages\":" << r.control_messages
            << ",\"control_bytes\":" << r.control_bytes
            << ",\"observed\":\"" << r.observed.to_string() << "\""
            << ",\"setup_ms\":" << r.setup_ms << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using asap::net::Endpoint;
  using asap::relayd::EndpointClient;
  using asap::relayd::EndpointConfig;

  EndpointConfig base;
  std::string role = "pair";
  std::string bind_ip = "127.0.0.1";
  std::uint32_t session = 1;
  std::uint32_t node = 0;
  double timeout_ms = 15'000.0;
  std::vector<std::uint32_t> via_route;
  Endpoint callee_relay;  // pair mode: callee leg's relay (default --relay)

  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      usage();
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--relay") {
      auto ep = Endpoint::parse(need(i));
      if (!ep) {
        std::cerr << "asap-endpoint: bad --relay\n";
        return 2;
      }
      base.relay = *ep;
    } else if (arg == "--role") {
      role = need(i);
    } else if (arg == "--session") {
      session = static_cast<std::uint32_t>(std::atol(need(i)));
    } else if (arg == "--node") {
      node = static_cast<std::uint32_t>(std::atol(need(i)));
    } else if (arg == "--duration-ms") {
      base.voice_duration_ms = std::atof(need(i));
    } else if (arg == "--pacing-ms") {
      base.pacing_ms = std::atof(need(i));
    } else if (arg == "--keepalive-ms") {
      base.keepalive_interval_ms = std::atof(need(i));
    } else if (arg == "--timeout-ms") {
      timeout_ms = std::atof(need(i));
    } else if (arg == "--bind") {
      bind_ip = need(i);
    } else if (arg == "--via") {
      std::string ids = need(i);
      for (std::size_t pos = 0; pos < ids.size();) {
        std::size_t comma = ids.find(',', pos);
        if (comma == std::string::npos) comma = ids.size();
        via_route.push_back(
            static_cast<std::uint32_t>(std::atol(ids.substr(pos, comma - pos).c_str())));
        pos = comma + 1;
      }
    } else if (arg == "--callee-relay") {
      auto ep = Endpoint::parse(need(i));
      if (!ep) {
        std::cerr << "asap-endpoint: bad --callee-relay\n";
        return 2;
      }
      callee_relay = *ep;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "asap-endpoint: unknown option " << arg << "\n";
      usage();
      return 2;
    }
  }
  if (!base.relay.valid()) {
    std::cerr << "asap-endpoint: --relay is required\n";
    usage();
    return 2;
  }
  base.session = asap::SessionId(session);
  auto bind_ep = Endpoint::parse(bind_ip + ":1");
  if (!bind_ep) {
    std::cerr << "asap-endpoint: bad --bind address\n";
    return 2;
  }
  bind_ep->port = 0;  // always ephemeral

  asap::net::PollLoop loop;

  if (role == "pair") {
    EndpointConfig caller_cfg = base;
    caller_cfg.caller = true;
    caller_cfg.node = node != 0 ? node : 1;
    caller_cfg.via_route = via_route;
    EndpointConfig callee_cfg = base;
    callee_cfg.caller = false;
    callee_cfg.node = node != 0 ? node + 1 : 2;
    if (callee_relay.valid()) callee_cfg.relay = callee_relay;

    auto caller = EndpointClient::open(caller_cfg, *bind_ep);
    auto callee = EndpointClient::open(callee_cfg, *bind_ep);
    if (!caller || !callee) {
      std::cerr << "asap-endpoint: bind failed\n";
      return 1;
    }
    caller->attach(loop);
    callee->attach(loop);
    loop.run_until([&] { return caller->done() && callee->done(); }, timeout_ms);
    print_report("caller", caller->report());
    print_report("callee", callee->report());
    return caller->report().completed && callee->report().completed ? 0 : 1;
  }

  if (role != "caller" && role != "callee") {
    std::cerr << "asap-endpoint: unknown --role " << role << "\n";
    return 2;
  }
  base.caller = role == "caller";
  base.node = node != 0 ? node : (base.caller ? 1 : 2);
  if (base.caller) base.via_route = via_route;
  auto client = EndpointClient::open(base, *bind_ep);
  if (!client) {
    std::cerr << "asap-endpoint: " << client.error().message << "\n";
    return 1;
  }
  client->attach(loop);
  loop.run_until([&] { return client->done(); }, timeout_ms);
  print_report(role.c_str(), client->report());
  return client->report().completed ? 0 : 1;
}
