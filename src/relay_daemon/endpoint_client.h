// Wire-speaking VoIP endpoint for the real UDP datapath.
//
// One EndpointClient is one leg of one call: it dials out to an asap-relay
// in rendezvous mode (RendezvousRegister, repeated every keepalive interval
// — the same cadence AsapParams::keepalive_interval_ms gives the sim — so
// the NAT binding stays open and Bound replies double as relay liveness),
// then runs the call flow in core/wire.h frames: caller sends CallSetup
// once the peer leg is present, callee answers CallAccept, caller streams
// VoicePacket at the sim's 50 pps pacing, callee detects sequence gaps,
// duplicates and reorders exactly like the sim's receiver and raises
// RelayFailureNotice when the stream goes silent mid-call.
//
// The harness contract (DESIGN.md §14): the CallReport fields mirror the
// sim's CallOutcome fields for the same CallSpec, which is what the
// loopback integration test asserts. Frames the client emits and receives
// are byte-compatible with AsapSystem::deliver_wire().
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "net/endpoint.h"
#include "net/poll_loop.h"
#include "net/udp_socket.h"
#include "core/protocol.h"
#include "common/expected.h"

namespace asap::relayd {

struct EndpointConfig {
  net::Endpoint relay;           // rendezvous relay address
  SessionId session;             // shared by both legs; the pairing key
  std::uint32_t node = 0;        // protocol node id (NAT-rebind identity)
  bool caller = false;           // caller streams voice; callee receives
  Millis voice_duration_ms = 400.0;   // both sides know the call length
  Millis pacing_ms = 20.0;            // AsapSystem::kVoiceIntervalMs (50 pps)
  Millis keepalive_interval_ms = 250.0;  // AsapParams::keepalive_interval_ms
  Millis relay_timeout_ms = 3000.0;      // AsapParams::probe_timeout_ms
  // Via tier (caller only): overlay node ids of the via relays the path
  // should be extended through, nearest first. After each Bound reply until
  // the peer is present, the caller sends a ViaSetup carrying this route to
  // its rendezvous relay, which forwards hop by hop (see RelayConfig).
  std::vector<std::uint32_t> via_route;
};

// Outcome of one leg; field names track core::CallOutcome where the sim has
// the same observable.
struct CallReport {
  bool completed = false;         // caller: all voice sent; callee: final seq seen
  bool bound = false;             // at least one RendezvousBound received
  bool peer_present_seen = false; // relay reported the other leg registered
  bool busy_rejected = false;     // relay answered ProbeBusy (table full)
  bool gap_detected = false;      // callee: mid-call silence beyond threshold
  bool relay_lost = false;        // keepalive Bound replies stopped coming
  std::uint32_t voice_packets_sent = 0;
  std::uint32_t voice_packets_received = 0;   // distinct sequences
  std::uint32_t voice_packets_lost = 0;       // receiver-side sequence gaps
  std::uint32_t duplicate_voice_packets = 0;
  std::uint32_t reordered_voice_packets = 0;
  std::uint32_t failure_notices_sent = 0;     // callee -> caller
  std::uint32_t failure_notices_received = 0;
  net::Endpoint observed;         // reflexive address the relay reported
  Millis setup_ms = 0.0;          // start -> first voice sent/received
  std::uint64_t control_messages = 0;  // non-voice frames sent
  std::uint64_t control_bytes = 0;     // wire bytes incl. IP/UDP overhead
};

class EndpointClient {
 public:
  // Binds an ephemeral loopback-or-any socket for the leg. Call attach()
  // only after the client has reached its final address (attach captures
  // `this`).
  static Expected<EndpointClient> open(const EndpointConfig& config,
                                       const net::Endpoint& bind_addr);

  EndpointClient(EndpointClient&&) = default;
  EndpointClient& operator=(EndpointClient&&) = default;

  // Registers socket + ticker on `loop` and sends the first
  // RendezvousRegister immediately.
  void attach(net::PollLoop& loop);

  void on_readable(Millis now_ms);
  void on_tick(Millis now_ms);

  // Simulates a NAT rebinding: closes the socket, binds a fresh ephemeral
  // port at `bind_addr`, swaps the registration on `loop` and re-registers
  // with the relay at once (same node id -> the relay relearns the leg).
  bool rebind(net::PollLoop& loop, const net::Endpoint& bind_addr);

  // Terminal: the leg finished (completed), was refused (busy_rejected) or
  // declared the relay dead (relay_lost).
  [[nodiscard]] bool done() const {
    return report_.completed || report_.busy_rejected || report_.relay_lost;
  }
  [[nodiscard]] const CallReport& report() const { return report_; }
  [[nodiscard]] const net::Endpoint& local_endpoint() const {
    return socket_.local_endpoint();
  }
  [[nodiscard]] const EndpointConfig& config() const { return config_; }

 private:
  EndpointClient(net::UdpSocket socket, const EndpointConfig& config);

  void send_payload(const core::ProtocolPayload& payload, Millis now_ms);
  void send_register(Millis now_ms);
  void handle_payload(const core::ProtocolPayload& payload, Millis now_ms);
  void on_voice(const core::VoicePacket& voice, Millis now_ms);
  [[nodiscard]] std::uint32_t total_packets() const {
    auto n = static_cast<std::uint32_t>(config_.voice_duration_ms / config_.pacing_ms);
    return n == 0 ? 1 : n;
  }

  net::UdpSocket socket_;
  EndpointConfig config_;
  CallReport report_;
  std::array<std::uint8_t, 4096> buf_{};

  bool started_ = false;
  Millis start_ms_ = 0.0;
  Millis last_register_ms_ = 0.0;
  Millis last_bound_rx_ms_ = 0.0;

  // Caller side.
  bool setup_sent_ = false;
  Millis last_setup_tx_ms_ = 0.0;
  bool voice_active_ = false;
  std::uint32_t next_seq_ = 0;
  Millis next_voice_due_ms_ = 0.0;

  // Callee side.
  bool accepted_ = false;
  std::vector<bool> seen_;          // distinct-sequence bitmap
  std::uint32_t highest_seq_ = 0;
  bool any_voice_ = false;
  Millis first_voice_rx_ms_ = 0.0;
  Millis last_voice_rx_ms_ = 0.0;
  bool gap_notice_outstanding_ = false;  // one notice per silence episode
};

}  // namespace asap::relayd
