// Socketed shell around RelayCore: one nonblocking UDP socket, one poll
// loop. All protocol behaviour lives in the core; this file only moves
// datagrams between the kernel and the state machine.
#pragma once

#include <array>
#include <cstdint>

#include "net/poll_loop.h"
#include "net/udp_socket.h"
#include "relay_daemon/relay_core.h"
#include "common/expected.h"

namespace asap::relayd {

class RelayDaemon {
 public:
  // Binds `bind_addr` (port 0 = kernel-assigned ephemeral; read the result
  // through local_endpoint()).
  static Expected<RelayDaemon> open(const net::Endpoint& bind_addr,
                                    const RelayConfig& config,
                                    MetricsRegistry* external = nullptr);

  RelayDaemon(RelayDaemon&&) = default;
  RelayDaemon& operator=(RelayDaemon&&) = default;

  // Registers the socket and the reaping ticker on `loop`. The daemon must
  // outlive the loop run.
  void attach(net::PollLoop& loop);

  // Drains every readable datagram into the core (one syscall per frame
  // until EAGAIN). Called by the poll loop; public so tests can pump
  // manually.
  void on_readable(Millis now_ms);
  void on_tick(Millis now_ms) { core_->on_tick(now_ms); }

  // Kills the relay (test hook simulating relay death): deregisters from
  // `loop` and closes the socket — every datagram addressed here from now on
  // is dropped by the kernel, exactly what endpoints see when a relay host
  // crashes.
  void shutdown(net::PollLoop& loop) {
    loop.remove_socket(socket_.fd());
    socket_.close();
  }

  [[nodiscard]] const net::Endpoint& local_endpoint() const {
    return socket_.local_endpoint();
  }
  [[nodiscard]] RelayCore& core() { return *core_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return core_->metrics(); }

 private:
  RelayDaemon(net::UdpSocket socket, const RelayConfig& config,
              MetricsRegistry* external);

  net::UdpSocket socket_;
  // unique_ptr: RelayCore holds its counters by value; the daemon stays
  // movable without invalidating the core's self-references.
  std::unique_ptr<RelayCore> core_;
  // Receive buffer one byte past the largest legal frame, so MSG_TRUNC
  // plus the spare byte classifies every oversize datagram exactly.
  std::array<std::uint8_t, kMaxFrameBytes + 1> buf_{};
};

}  // namespace asap::relayd
