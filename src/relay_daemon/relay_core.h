// Socket-free state machine of the asap-relay daemon.
//
// RelayCore is the whole brain of the relay — datagram in, zero or more
// datagrams out through a caller-supplied send function — with no sockets,
// threads or clocks of its own. The socketed shell (relay_daemon.h) feeds
// it from a UdpSocket; the wire-fuzz tests feed it hostile bytes directly;
// both exercise the identical parser and forwarding logic, which is what
// lets ASan/UBSan cover the code path a hostile internet datagram would
// take.
//
// Two modes, after the NDI-bridge relay progression the ROADMAP names:
//  - Forward (phase 1): a raw packet forwarder with a fixed target. Frames
//    from the target go to the most recent other source; frames from anyone
//    else go to the target. Zero transcode: bytes out are bytes in.
//  - Rendezvous (phase 2): both endpoints dial out to the relay
//    (RendezvousRegister); the relay learns their observed source
//    addresses, pairs them by session id (RendezvousBound answers carry the
//    reflexive address + pairing state), and forwards session frames
//    between the two bindings verbatim. Periodic re-registration is the
//    keepalive that holds NAT bindings open; idle sessions are reaped; a
//    full table refuses new sessions with ProbeBusy, mapping the PR 5
//    relay-capacity model onto the socket datapath.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>

#include "net/endpoint.h"
#include "net/session_table.h"
#include "core/params.h"
#include "core/protocol.h"
#include "common/metrics.h"

namespace asap::relayd {

// Largest frame the relay accepts from the wire. Generous for every control
// and voice frame the protocol defines (close-set replies excepted — those
// never traverse a rendezvous relay), small enough that an oversize
// datagram is an attack or a bug, counted and dropped.
inline constexpr std::size_t kMaxFrameBytes = 2048;

// Concurrent-session cap of a relay with abstract capability `capacity`,
// under the PR 5 capacity model (core/protocol.cpp uses the identical
// formula for sim relays): max(min_streams, floor(capacity * per_capacity)).
[[nodiscard]] std::uint32_t relay_session_cap(double capacity, double per_capacity,
                                              std::uint32_t min_streams);

struct RelayConfig {
  // Rendezvous mode unless `forward_target` is set (phase-1 forwarder).
  std::optional<net::Endpoint> forward_target;
  // Concurrent rendezvous sessions before new registrations get ProbeBusy.
  std::size_t max_sessions = 64;
  // A session none of whose legs re-registered or sent traffic for this
  // long is reaped (NAT-binding expiry analogue). Reuses the keepalive
  // cadence contract: endpoints refresh every keepalive_interval_ms, so the
  // timeout must be a comfortable multiple of it.
  Millis idle_timeout_ms = 10'000.0;
  // --- Via tier (two-hop source routing, DESIGN.md §15) --------------------
  // This relay's overlay node id: the value a ViaSetup route hop names. 0 is
  // legal (ids are opaque); a relay with an empty `via_peers` map simply
  // terminates any route at itself.
  std::uint32_t node_id = 0;
  // Control-peered via relays this node may extend a source route through:
  // overlay node id -> where that relay listens. A route hop not in this map
  // is refused (counted, dropped) — a relay only forwards through peers it
  // actually knows.
  std::map<std::uint32_t, net::Endpoint> via_peers;
};

// relayd.* observability. Registered in the daemon's registry up front —
// the daemon owns its registry (or a test passes one in); these series
// never touch a simulation digest.
struct RelaydCounters {
  explicit RelaydCounters(MetricsRegistry& registry);

  Counter datagrams_rx, datagrams_tx, bytes_rx, bytes_tx;
  // Parser rejections: malformed, unknown-tag, oversize and kernel-truncated
  // datagrams; decodable frames from addresses bound to no session.
  Counter decode_errors, unknown_kind, oversize_drops, unknown_source,
      unhandled_kind;
  // Rendezvous state machine.
  Counter registers, rebinds, bound_replies, busy_rejections, keepalive_probes,
      sessions_opened, sessions_reaped;
  // Forwarding.
  Counter forwarded_frames, forwarded_voice;
  // Via tier: source-route setups processed; route hops naming no known peer.
  Counter via_setups, via_unknown_hop;
  Gauge peak_sessions;
};

class RelayCore {
 public:
  using SendFn =
      std::function<void(const net::Endpoint& to, std::span<const std::uint8_t> bytes)>;

  // `external` lets a harness share its registry; otherwise the core owns
  // one (readable through metrics()).
  explicit RelayCore(const RelayConfig& config, MetricsRegistry* external = nullptr);

  // One datagram in. `truncated` marks a datagram the kernel clipped to the
  // receive buffer (counted with the oversize drops — the frame on the wire
  // was bigger than any legal frame). Every accepted frame is either
  // answered, forwarded, or counted and dropped; nothing is silently eaten.
  void handle_datagram(const net::Endpoint& from, std::span<const std::uint8_t> bytes,
                       Millis now_ms, const SendFn& send, bool truncated = false);

  // Periodic housekeeping (idle-session reaping). The shell calls this every
  // poll iteration; cadence is internal.
  void on_tick(Millis now_ms);

  [[nodiscard]] const MetricsRegistry& metrics() const { return *metrics_; }
  [[nodiscard]] std::size_t open_sessions() const { return table_.open_sessions(); }
  [[nodiscard]] const RelayConfig& config() const { return config_; }

 private:
  void handle_rendezvous(const net::Endpoint& from, const core::ProtocolPayload& payload,
                         std::span<const std::uint8_t> raw, Millis now_ms,
                         const SendFn& send);
  void emit(const net::Endpoint& to, std::span<const std::uint8_t> bytes,
            const SendFn& send);
  void emit_payload(const net::Endpoint& to, const core::ProtocolPayload& payload,
                    const SendFn& send);

  RelayConfig config_;
  std::unique_ptr<MetricsRegistry> owned_metrics_;  // null when external
  MetricsRegistry* metrics_;
  RelaydCounters counters_;
  net::SessionBindingTable table_;
  // Phase-1 forwarder peer: the most recent non-target source.
  net::Endpoint forward_peer_;
  Millis last_reap_ms_ = 0.0;
};

}  // namespace asap::relayd
