// asap-relay: the real-UDP relay daemon (DESIGN.md §14).
//
// Phase 1 (--mode forward --target A:P): raw datagram forwarder — frames
// from anyone go to the target, frames from the target go back to the most
// recent other source. Phase 2 (--mode rendezvous, default): endpoints dial
// out and register (NAT traversal); the relay pairs legs by session id and
// forwards session frames between the observed bindings.
//
// Capacity knobs mirror the PR 5 sim model: --max-sessions directly, or
// --capacity/--streams-per-capacity/--min-streams to derive it with the
// same formula the sim uses. A full relay refuses new sessions with
// ProbeBusy.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "net/endpoint.h"
#include "net/poll_loop.h"
#include "relay_daemon/relay_daemon.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

void usage() {
  std::cerr
      << "usage: asap-relay [options]\n"
         "  --bind A.B.C.D        bind address (default 127.0.0.1)\n"
         "  --port N              UDP port (default 0 = ephemeral)\n"
         "  --mode rendezvous|forward   (default rendezvous)\n"
         "  --target A.B.C.D:P    forward-mode fixed target\n"
         "  --max-sessions N      concurrent session cap (default 64)\n"
         "  --capacity X          derive cap from the sim capacity model\n"
         "  --streams-per-capacity X    (with --capacity)\n"
         "  --min-streams N             (with --capacity; default 1)\n"
         "  --idle-timeout-ms X   reap sessions idle this long (default 10000)\n"
         "  --node-id N           this relay's overlay node id (via tier)\n"
         "  --via-peer ID=A.B.C.D:P   peered via relay (repeatable); a ViaSetup\n"
         "                        route hop naming ID is forwarded to this address\n"
         "  --run-ms N            exit after N ms (default: until SIGINT)\n"
         "  --metrics-out PATH    write relayd.* metrics JSON on exit\n"
         "  --print-port          print the bound port on stdout at startup\n";
}

}  // namespace

int main(int argc, char** argv) {
  using asap::net::Endpoint;

  std::string bind_ip = "127.0.0.1";
  int port = 0;
  std::string mode = "rendezvous";
  std::optional<Endpoint> target;
  asap::relayd::RelayConfig config;
  double capacity = -1.0;
  double streams_per_capacity = 0.0;
  std::uint32_t min_streams = 1;
  double run_ms = -1.0;
  std::string metrics_out;
  bool print_port = false;

  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      usage();
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--bind") {
      bind_ip = need(i);
    } else if (arg == "--port") {
      port = std::atoi(need(i));
    } else if (arg == "--mode") {
      mode = need(i);
    } else if (arg == "--target") {
      target = Endpoint::parse(need(i));
      if (!target) {
        std::cerr << "asap-relay: bad --target\n";
        return 2;
      }
    } else if (arg == "--max-sessions") {
      config.max_sessions = static_cast<std::size_t>(std::atol(need(i)));
    } else if (arg == "--capacity") {
      capacity = std::atof(need(i));
    } else if (arg == "--streams-per-capacity") {
      streams_per_capacity = std::atof(need(i));
    } else if (arg == "--min-streams") {
      min_streams = static_cast<std::uint32_t>(std::atol(need(i)));
    } else if (arg == "--idle-timeout-ms") {
      config.idle_timeout_ms = std::atof(need(i));
    } else if (arg == "--node-id") {
      config.node_id = static_cast<std::uint32_t>(std::atol(need(i)));
    } else if (arg == "--via-peer") {
      const std::string spec = need(i);
      const auto eq = spec.find('=');
      auto ep = eq == std::string::npos
                    ? std::nullopt
                    : Endpoint::parse(spec.substr(eq + 1));
      if (eq == std::string::npos || !ep) {
        std::cerr << "asap-relay: bad --via-peer (want ID=A.B.C.D:P)\n";
        return 2;
      }
      config.via_peers[static_cast<std::uint32_t>(std::atol(spec.c_str()))] = *ep;
    } else if (arg == "--run-ms") {
      run_ms = std::atof(need(i));
    } else if (arg == "--metrics-out") {
      metrics_out = need(i);
    } else if (arg == "--print-port") {
      print_port = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "asap-relay: unknown option " << arg << "\n";
      usage();
      return 2;
    }
  }

  if (mode == "forward") {
    if (!target) {
      std::cerr << "asap-relay: --mode forward requires --target\n";
      return 2;
    }
    config.forward_target = target;
  } else if (mode != "rendezvous") {
    std::cerr << "asap-relay: unknown --mode " << mode << "\n";
    return 2;
  }
  if (capacity >= 0.0) {
    config.max_sessions =
        asap::relayd::relay_session_cap(capacity, streams_per_capacity, min_streams);
  }

  auto bind_ep = Endpoint::parse(bind_ip + ":" + std::to_string(port == 0 ? 1 : port));
  if (!bind_ep) {
    std::cerr << "asap-relay: bad --bind address\n";
    return 2;
  }
  bind_ep->port = static_cast<std::uint16_t>(port);

  auto daemon = asap::relayd::RelayDaemon::open(*bind_ep, config);
  if (!daemon) {
    std::cerr << "asap-relay: " << daemon.error().message << "\n";
    return 1;
  }
  if (print_port) {
    std::cout << daemon->local_endpoint().port << "\n" << std::flush;
  }
  std::cerr << "asap-relay: listening on " << daemon->local_endpoint().to_string()
            << " (" << mode << ", max_sessions=" << config.max_sessions << ")\n";

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  asap::net::PollLoop loop;
  daemon->attach(loop);
  while (g_stop == 0) {
    if (!loop.run_once(50)) break;
    if (run_ms >= 0.0 && loop.now_ms() >= run_ms) break;
  }

  const std::string json = asap::metrics_to_json(daemon->metrics());
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    out << json << "\n";
  } else {
    std::cerr << json << "\n";
  }
  return 0;
}
