file(REMOVE_RECURSE
  "CMakeFiles/asap-endpoint.dir/endpoint_main.cpp.o"
  "CMakeFiles/asap-endpoint.dir/endpoint_main.cpp.o.d"
  "asap-endpoint"
  "asap-endpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asap-endpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
