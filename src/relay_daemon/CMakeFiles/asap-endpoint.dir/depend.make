# Empty dependencies file for asap-endpoint.
# This may be replaced when dependencies are built.
