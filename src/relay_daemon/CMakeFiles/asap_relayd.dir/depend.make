# Empty dependencies file for asap_relayd.
# This may be replaced when dependencies are built.
