file(REMOVE_RECURSE
  "CMakeFiles/asap_relayd.dir/endpoint_client.cpp.o"
  "CMakeFiles/asap_relayd.dir/endpoint_client.cpp.o.d"
  "CMakeFiles/asap_relayd.dir/relay_core.cpp.o"
  "CMakeFiles/asap_relayd.dir/relay_core.cpp.o.d"
  "CMakeFiles/asap_relayd.dir/relay_daemon.cpp.o"
  "CMakeFiles/asap_relayd.dir/relay_daemon.cpp.o.d"
  "libasap_relayd.a"
  "libasap_relayd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asap_relayd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
