file(REMOVE_RECURSE
  "libasap_relayd.a"
)
