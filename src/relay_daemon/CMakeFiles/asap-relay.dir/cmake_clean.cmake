file(REMOVE_RECURSE
  "CMakeFiles/asap-relay.dir/relay_main.cpp.o"
  "CMakeFiles/asap-relay.dir/relay_main.cpp.o.d"
  "asap-relay"
  "asap-relay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asap-relay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
