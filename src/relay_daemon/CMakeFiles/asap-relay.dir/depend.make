# Empty dependencies file for asap-relay.
# This may be replaced when dependencies are built.
