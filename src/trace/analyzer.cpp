#include "trace/analyzer.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

namespace asap::trace {

namespace {

// Reconstructs one direction from the stream of outgoing voice packets at
// the sending endpoint: the sequence of destination IPs is the relay
// timeline.
DirectionAnalysis analyze_direction(const std::vector<PacketRecord>& side, Ipv4Addr self,
                                    Ipv4Addr peer) {
  DirectionAnalysis out;
  std::map<std::uint32_t, std::size_t> index_of;
  Ipv4Addr last_hop;
  bool have_last = false;
  std::size_t total = 0;

  for (const auto& pkt : side) {
    if (pkt.src != self || pkt.size < kVoicePacketBytes) continue;
    ++total;
    if (index_of.find(pkt.dst.bits()) == index_of.end()) {
      index_of[pkt.dst.bits()] = out.usage.size();
      out.usage.push_back(RelayUsage{pkt.dst, pkt.dst == peer, 0, pkt.t_s, pkt.t_s});
    }
    RelayUsage& u = out.usage[index_of[pkt.dst.bits()]];
    ++u.packets;
    u.last_s = pkt.t_s;
    if (have_last && pkt.dst != last_hop) {
      ++out.switches;
      out.stabilization_s = pkt.t_s;
    }
    last_hop = pkt.dst;
    have_last = true;
  }

  if (!out.usage.empty()) {
    auto major = std::max_element(out.usage.begin(), out.usage.end(),
                                  [](const RelayUsage& a, const RelayUsage& b) {
                                    return a.packets < b.packets;
                                  });
    out.major_index = static_cast<std::size_t>(major - out.usage.begin());
    if (total > 0) {
      out.major_share = static_cast<double>(major->packets) / static_cast<double>(total);
    }
  }
  return out;
}

// The last-hop IP that delivered the most voice packets *to* `self`.
Ipv4Addr major_incoming_hop(const std::vector<PacketRecord>& side, Ipv4Addr self) {
  std::map<std::uint32_t, std::size_t> counts;
  for (const auto& pkt : side) {
    if (pkt.dst != self || pkt.size < kVoicePacketBytes) continue;
    ++counts[pkt.src.bits()];
  }
  Ipv4Addr best;
  std::size_t best_count = 0;
  for (const auto& [bits, count] : counts) {
    if (count > best_count) {
      best_count = count;
      best = Ipv4Addr(bits);
    }
  }
  return best;
}

}  // namespace

SessionAnalysis analyze_session(const TwoSidedCapture& capture) {
  SessionAnalysis out;
  out.forward = analyze_direction(capture.caller_side, capture.caller_ip, capture.callee_ip);
  out.backward = analyze_direction(capture.callee_side, capture.callee_ip, capture.caller_ip);
  out.stabilization_s = std::max(out.forward.stabilization_s, out.backward.stabilization_s);

  if (!out.forward.usage.empty() && !out.backward.usage.empty()) {
    const RelayUsage& f = out.forward.major();
    const RelayUsage& b = out.backward.major();
    out.asymmetric = f.direct != b.direct || (!f.direct && f.next_hop != b.next_hop);
  }

  // Two-hop detection: the forward stream's first hop (seen at the caller)
  // differs from its last hop (seen arriving at the callee).
  const RelayUsage* fwd_major =
      out.forward.usage.empty() ? nullptr : &out.forward.major();
  if (fwd_major != nullptr && !fwd_major->direct) {
    Ipv4Addr last_hop = major_incoming_hop(capture.callee_side, capture.callee_ip);
    out.forward_two_hop = last_hop != fwd_major->next_hop && last_hop != capture.caller_ip;
  }

  // Probe accounting over both sides.
  std::set<std::uint32_t> probed;
  std::set<std::uint32_t> probed_late;
  double settle_s = std::max(out.stabilization_s, kStartupPhaseS);
  for (const auto* side : {&capture.caller_side, &capture.callee_side}) {
    Ipv4Addr self = side == &capture.caller_side ? capture.caller_ip : capture.callee_ip;
    for (const auto& pkt : *side) {
      if (pkt.src != self || pkt.size >= kVoicePacketBytes) continue;
      probed.insert(pkt.dst.bits());
      if (pkt.t_s > settle_s) probed_late.insert(pkt.dst.bits());
    }
  }
  out.probed_nodes = probed.size();
  out.probes_after_stabilization = probed_late.size();
  return out;
}

std::vector<SameGroupProbes> same_group_probes(
    const TwoSidedCapture& capture,
    const std::function<std::uint64_t(Ipv4Addr)>& key_of) {
  std::set<std::uint32_t> probed;
  for (const auto* side : {&capture.caller_side, &capture.callee_side}) {
    Ipv4Addr self = side == &capture.caller_side ? capture.caller_ip : capture.callee_ip;
    for (const auto& pkt : *side) {
      if (pkt.src != self || pkt.size >= kVoicePacketBytes) continue;
      probed.insert(pkt.dst.bits());
    }
  }
  std::map<std::uint64_t, std::vector<Ipv4Addr>> groups;
  for (std::uint32_t bits : probed) {
    std::uint64_t key = key_of(Ipv4Addr(bits));
    if (key == 0) continue;
    groups[key].push_back(Ipv4Addr(bits));
  }
  std::vector<SameGroupProbes> out;
  for (auto& [key, targets] : groups) {
    if (targets.size() > 1) out.push_back(SameGroupProbes{key, std::move(targets)});
  }
  return out;
}

}  // namespace asap::trace
