// Trace analyzer: reconstructs a Skype session's relay behaviour from a
// two-sided packet capture alone (the paper's Sec. 5 methodology — "we
// analyze Skype packet headers collected at the two end hosts ... to check
// if they share common destination IP addresses reached from their voice
// data ports").
//
// Recovers, per direction: the major path (relay or direct, by packet
// share), the relay time line and the stabilization time (session start to
// the last relay switch); plus session-level probe counts and same-AS
// duplicate-probe groups (Limit 2).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "trace/packet.h"
#include "common/ip.h"

namespace asap::trace {

struct RelayUsage {
  Ipv4Addr next_hop;        // relay IP, or the peer endpoint for direct
  bool direct = false;
  std::size_t packets = 0;
  double first_s = 0.0;
  double last_s = 0.0;
};

struct DirectionAnalysis {
  std::vector<RelayUsage> usage;       // ordered by first use
  std::size_t major_index = 0;         // index into `usage`
  double major_share = 0.0;            // fraction of voice packets on major
  double stabilization_s = 0.0;        // time of the last path switch
  std::size_t switches = 0;

  [[nodiscard]] const RelayUsage& major() const { return usage[major_index]; }
};

struct SessionAnalysis {
  DirectionAnalysis forward;   // caller -> callee
  DirectionAnalysis backward;  // callee -> caller
  bool asymmetric = false;     // directions use different major paths
  bool forward_two_hop = false;  // first hop at caller != last hop at callee
  std::size_t probed_nodes = 0;  // distinct probe targets over the session
  // Distinct targets probed after the session settled: after the later of
  // the last path switch and the startup phase (paper Fig. 7(c) counts 3-6
  // such nodes per session — evidence that probing never stops).
  std::size_t probes_after_stabilization = 0;
  double stabilization_s = 0.0;  // max over directions
};

// Startup phase excluded from the "probes after stabilization" count (the
// initial candidate burst belongs to selection, not to ongoing probing).
inline constexpr double kStartupPhaseS = 30.0;

SessionAnalysis analyze_session(const TwoSidedCapture& capture);

// Groups probe targets by a caller-supplied key (e.g. origin AS or longest
// matched prefix); returns the target groups with more than one member —
// the paper's Limit-2 evidence (Table 2). The key function receives each
// distinct probed IP; targets mapping to key 0 are ignored (unmapped).
struct SameGroupProbes {
  std::uint64_t group_key;
  std::vector<Ipv4Addr> targets;
};
std::vector<SameGroupProbes> same_group_probes(
    const TwoSidedCapture& capture,
    const std::function<std::uint64_t(Ipv4Addr)>& key_of);

}  // namespace asap::trace
