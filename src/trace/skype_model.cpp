#include "trace/skype_model.h"

#include <algorithm>
#include <cmath>

namespace asap::trace {

namespace {

constexpr std::uint16_t kCallerVoicePort = 21001;
constexpr std::uint16_t kCalleeVoicePort = 22001;
constexpr std::uint16_t kProbePort = 33033;

std::uint16_t relay_port(HostId h) {
  return static_cast<std::uint16_t>(30000 + h.value() % 10000);
}

// One direction's relay-selection state machine, simulated in event order.
struct Direction {
  HostId src;
  HostId dst;
  bool initiator_is_caller;  // which side's capture records the probes

  // Current path: invalid relay1 = direct.
  HostId relay1 = HostId::invalid();
  HostId relay2 = HostId::invalid();
  double current_estimate_ms = 0.0;
  bool two_hop_session = false;

  std::vector<SwitchEvent> switches;
  std::vector<ProbeEvent> probes;
};

struct Candidate {
  HostId r1;
  HostId r2;  // invalid for one-hop
};

}  // namespace

SkypeSession generate_skype_session(const population::World& world, HostId caller,
                                    HostId callee, const SkypeModelParams& params,
                                    Rng& rng) {
  const auto& pop = world.pop();
  SkypeSession session;
  session.caller = caller;
  session.callee = callee;
  session.capture.caller_ip = pop.peer(caller).ip;
  session.capture.callee_ip = pop.peer(callee).ip;
  session.capture.duration_s = params.duration_s;

  Millis direct_rtt = world.host_rtt_ms(caller, callee);
  bool asymmetric = rng.chance(params.asymmetric_prob);
  session.truth.asymmetric = asymmetric;

  // Clusters already probed, for the herding bias (supernode caches hand
  // out neighbours of nodes already known).
  std::vector<ClusterId> probed_clusters;

  auto pick_candidate = [&]() -> HostId {
    if (!probed_clusters.empty() && rng.chance(params.herding_prob)) {
      ClusterId c = probed_clusters[rng.index_of(probed_clusters)];
      const auto members = pop.cluster_members(c);
      HostId h = members[rng.index_of(members)];
      if (h != caller && h != callee) return h;
    }
    for (;;) {
      HostId h(static_cast<std::uint32_t>(rng.below(pop.peer_count())));
      if (h != caller && h != callee) return h;
    }
  };

  auto path_rtt = [&](const Direction& dir, HostId r1, HostId r2) -> Millis {
    if (!r1.valid()) return direct_rtt;
    if (!r2.valid()) return world.relay_rtt_ms(dir.src, r1, dir.dst);
    return world.relay2_rtt_ms(dir.src, r1, r2, dir.dst);
  };

  auto noisy = [&](Millis truth) {
    return truth * std::exp(params.eval_noise_sigma * rng.normal());
  };

  auto run_direction = [&](Direction& dir) {
    dir.current_estimate_ms = noisy(direct_rtt);
    dir.two_hop_session = rng.chance(params.two_hop_prob);
    // Direct paths that already satisfy users are sticky (Skype prefers
    // direct connectivity); candidates must beat them by a wide margin.
    double leave_direct_factor = direct_rtt < params.direct_ok_ms ? 3.0 : 1.0;

    // Event timeline: initial burst + background probes + re-evaluations.
    struct Ev {
      double t;
      bool is_probe;
    };
    std::vector<Ev> events;
    int burst = static_cast<int>(rng.range(params.burst_min, params.burst_max));
    for (int i = 0; i < burst; ++i) events.push_back({rng.uniform(0.2, 20.0), true});
    for (double t = 20.0; t < params.duration_s;
         t += rng.exponential(params.probe_interval_s)) {
      events.push_back({t, true});
    }
    for (double t = params.reeval_interval_s; t < params.duration_s;
         t += params.reeval_interval_s) {
      events.push_back({t, false});
    }
    std::sort(events.begin(), events.end(),
              [](const Ev& a, const Ev& b) { return a.t < b.t; });

    for (const Ev& ev : events) {
      if (!ev.is_probe) {
        dir.current_estimate_ms = noisy(path_rtt(dir, dir.relay1, dir.relay2));
        continue;
      }
      Candidate cand{pick_candidate(), HostId::invalid()};
      if (dir.two_hop_session && rng.chance(0.5)) cand.r2 = pick_candidate();
      dir.probes.push_back(ProbeEvent{ev.t, cand.r1});
      probed_clusters.push_back(pop.peer(cand.r1).cluster);
      double estimate = noisy(path_rtt(dir, cand.r1, cand.r2));
      // Switching gets stickier as the call ages (Skype damps relay bounce
      // once a path has proven itself), so stabilization times spread over
      // the session instead of bunching at its end.
      double age_factor = 1.0 + ev.t / 90.0;
      double bar = dir.relay1.valid()
                       ? dir.current_estimate_ms - params.switch_hysteresis_ms * age_factor
                       : dir.current_estimate_ms - params.switch_hysteresis_ms *
                                                       leave_direct_factor * age_factor;
      if (estimate < bar) {
        dir.relay1 = cand.r1;
        dir.relay2 = cand.r2;
        dir.current_estimate_ms = estimate;
        dir.switches.push_back(SwitchEvent{ev.t, cand.r1, cand.r2});
      }
    }
  };

  Direction fwd{caller, callee, true, {}, {}, 0.0, false, {}, {}};
  run_direction(fwd);
  Direction bwd{callee, caller, false, {}, {}, 0.0, false, {}, {}};
  if (asymmetric) {
    run_direction(bwd);
  } else {
    // Symmetric session: the backward stream uses the same relay path.
    bwd.relay1 = fwd.relay1;
    bwd.relay2 = fwd.relay2;
    bwd.switches = fwd.switches;
    bwd.two_hop_session = fwd.two_hop_session;
  }
  session.truth.forward_switches = fwd.switches;
  session.truth.backward_switches = bwd.switches;
  session.truth.forward_two_hop = fwd.relay2.valid();

  auto& caller_side = session.capture.caller_side;
  auto& callee_side = session.capture.callee_side;

  // Probe packets (request + reply) at the initiating side's capture.
  auto emit_probes = [&](const Direction& dir) {
    auto& side = dir.initiator_is_caller ? caller_side : callee_side;
    Ipv4Addr self = dir.initiator_is_caller ? session.capture.caller_ip
                                            : session.capture.callee_ip;
    std::uint16_t self_port = dir.initiator_is_caller ? kCallerVoicePort : kCalleeVoicePort;
    for (const auto& probe : dir.probes) {
      Ipv4Addr target = pop.peer(probe.target).ip;
      double rtt_s = world.host_rtt_ms(dir.src, probe.target) / 1000.0;
      side.push_back({probe.t_s, self, target, self_port, kProbePort, kProbePacketBytes});
      side.push_back({probe.t_s + rtt_s, target, self, kProbePort, self_port,
                      kProbePacketBytes});
    }
    session.truth.probes.insert(session.truth.probes.end(), dir.probes.begin(),
                                dir.probes.end());
  };
  emit_probes(fwd);
  if (asymmetric) emit_probes(bwd);

  // Voice packets: walk each direction's switch timeline.
  auto relay_at = [](const std::vector<SwitchEvent>& switches, double t, HostId& r1,
                     HostId& r2) {
    r1 = HostId::invalid();
    r2 = HostId::invalid();
    for (const auto& s : switches) {
      if (s.t_s > t) break;
      r1 = s.relay1;
      r2 = s.relay2;
    }
  };
  double step = 0.02 * params.voice_record_stride;
  for (double t = 0.5; t < params.duration_s; t += step) {
    HostId r1;
    HostId r2;
    // Forward stream: caller out, callee in.
    relay_at(fwd.switches, t, r1, r2);
    Ipv4Addr first_hop = r1.valid() ? pop.peer(r1).ip : session.capture.callee_ip;
    HostId last = r2.valid() ? r2 : r1;
    Ipv4Addr last_hop = last.valid() ? pop.peer(last).ip : session.capture.caller_ip;
    double owd_s = path_rtt(fwd, r1, r2) / 2000.0;
    caller_side.push_back({t, session.capture.caller_ip, first_hop, kCallerVoicePort,
                           r1.valid() ? relay_port(r1) : kCalleeVoicePort,
                           kVoicePacketBytes});
    callee_side.push_back({t + owd_s, last_hop, session.capture.callee_ip,
                           last.valid() ? relay_port(last) : kCallerVoicePort,
                           kCalleeVoicePort, kVoicePacketBytes});
    // Backward stream: callee out, caller in.
    relay_at(bwd.switches, t, r1, r2);
    first_hop = r1.valid() ? pop.peer(r1).ip : session.capture.caller_ip;
    last = r2.valid() ? r2 : r1;
    last_hop = last.valid() ? pop.peer(last).ip : session.capture.callee_ip;
    owd_s = path_rtt(bwd, r1, r2) / 2000.0;
    callee_side.push_back({t, session.capture.callee_ip, first_hop, kCalleeVoicePort,
                           r1.valid() ? relay_port(r1) : kCallerVoicePort,
                           kVoicePacketBytes});
    caller_side.push_back({t + owd_s, last_hop, session.capture.caller_ip,
                           last.valid() ? relay_port(last) : kCalleeVoicePort,
                           kCallerVoicePort, kVoicePacketBytes});
  }

  auto by_time = [](const PacketRecord& a, const PacketRecord& b) { return a.t_s < b.t_s; };
  std::sort(caller_side.begin(), caller_side.end(), by_time);
  std::sort(callee_side.begin(), callee_side.end(), by_time);
  return session;
}

}  // namespace asap::trace
