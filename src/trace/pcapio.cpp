#include "trace/pcapio.h"

#include <cstdio>
#include <cstring>

namespace asap::trace {

namespace {

constexpr std::uint32_t kPcapMagic = 0xA1B2C3D4;
constexpr std::uint32_t kLinkTypeEthernet = 1;
constexpr std::size_t kEthHeader = 14;
constexpr std::size_t kIpHeader = 20;
constexpr std::size_t kUdpHeader = 8;

void put_u16le(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}
void put_u32le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}
void put_u16be(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}
void put_u32be(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 3; i >= 0; --i) out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}

struct Cursor {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;

  bool need(std::size_t n) const { return pos + n <= size; }
  std::uint16_t u16le() { std::uint16_t v = data[pos] | (data[pos + 1] << 8); pos += 2; return v; }
  std::uint32_t u32le() {
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | data[pos + i];
    pos += 4;
    return v;
  }
  std::uint16_t u16be() { std::uint16_t v = (data[pos] << 8) | data[pos + 1]; pos += 2; return v; }
  std::uint32_t u32be() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | data[pos + i];
    pos += 4;
    return v;
  }
};

}  // namespace

std::vector<std::uint8_t> write_pcap(const std::vector<PacketRecord>& records, double t0_s) {
  std::vector<std::uint8_t> out;
  out.reserve(24 + records.size() * (16 + kEthHeader + kIpHeader + kUdpHeader + 64));
  // Global header.
  put_u32le(out, kPcapMagic);
  put_u16le(out, 2);   // major
  put_u16le(out, 4);   // minor
  put_u32le(out, 0);   // thiszone
  put_u32le(out, 0);   // sigfigs
  put_u32le(out, 65535);  // snaplen
  put_u32le(out, kLinkTypeEthernet);

  for (const auto& r : records) {
    double t = t0_s + r.t_s;
    auto sec = static_cast<std::uint32_t>(t);
    auto usec = static_cast<std::uint32_t>((t - sec) * 1e6);
    std::uint32_t frame_len =
        static_cast<std::uint32_t>(kEthHeader + kIpHeader + kUdpHeader + r.size);
    put_u32le(out, sec);
    put_u32le(out, usec);
    put_u32le(out, frame_len);  // incl_len: we store the whole frame
    put_u32le(out, frame_len);  // orig_len

    // Ethernet: zero MACs, ethertype IPv4.
    for (int i = 0; i < 12; ++i) out.push_back(0);
    put_u16be(out, 0x0800);
    // IPv4 header, no options, checksum left zero (valid pcap, lazy sums).
    out.push_back(0x45);  // version 4, IHL 5
    out.push_back(0);     // DSCP
    put_u16be(out, static_cast<std::uint16_t>(kIpHeader + kUdpHeader + r.size));
    put_u16be(out, 0);    // id
    put_u16be(out, 0);    // flags/frag
    out.push_back(64);    // TTL
    out.push_back(17);    // UDP
    put_u16be(out, 0);    // header checksum
    put_u32be(out, r.src.bits());
    put_u32be(out, r.dst.bits());
    // UDP header.
    put_u16be(out, r.sport);
    put_u16be(out, r.dport);
    put_u16be(out, static_cast<std::uint16_t>(kUdpHeader + r.size));
    put_u16be(out, 0);  // checksum optional for UDP/IPv4
    // Payload: zeros of the advertised size.
    out.insert(out.end(), r.size, 0);
  }
  return out;
}

Expected<std::vector<PacketRecord>> read_pcap(const std::vector<std::uint8_t>& bytes) {
  Cursor c{bytes.data(), bytes.size()};
  if (!c.need(24)) return make_error("pcap: truncated global header");
  std::uint32_t magic = c.u32le();
  if (magic != kPcapMagic) return make_error("pcap: bad magic (big-endian unsupported)");
  c.pos = 20;
  std::uint32_t linktype = c.u32le();
  if (linktype != kLinkTypeEthernet) return make_error("pcap: unsupported linktype");

  std::vector<PacketRecord> records;
  while (c.pos < c.size) {
    if (!c.need(16)) return make_error("pcap: truncated packet header");
    std::uint32_t sec = c.u32le();
    std::uint32_t usec = c.u32le();
    std::uint32_t incl = c.u32le();
    c.u32le();  // orig_len
    if (!c.need(incl)) return make_error("pcap: truncated frame");
    std::size_t frame_end = c.pos + incl;
    if (incl >= kEthHeader + kIpHeader + kUdpHeader) {
      std::size_t eth = c.pos;
      std::uint16_t ethertype = (bytes[eth + 12] << 8) | bytes[eth + 13];
      std::uint8_t ihl = bytes[eth + 14] & 0x0F;
      std::uint8_t proto = bytes[eth + 14 + 9];
      if (ethertype == 0x0800 && ihl >= 5 && proto == 17) {
        std::size_t ip = eth + kEthHeader;
        std::size_t udp = ip + std::size_t{ihl} * 4;
        if (udp + kUdpHeader <= frame_end) {
          PacketRecord r;
          r.t_s = sec + usec * 1e-6;
          Cursor ipc{bytes.data(), bytes.size(), ip + 12};
          r.src = Ipv4Addr(ipc.u32be());
          r.dst = Ipv4Addr(ipc.u32be());
          Cursor udpc{bytes.data(), bytes.size(), udp};
          r.sport = udpc.u16be();
          r.dport = udpc.u16be();
          std::uint16_t udp_len = udpc.u16be();
          r.size = udp_len >= kUdpHeader
                       ? static_cast<std::uint16_t>(udp_len - kUdpHeader)
                       : 0;
          records.push_back(r);
        }
      }
    }
    c.pos = frame_end;
  }
  return records;
}

bool write_pcap_file(const std::string& path, const std::vector<PacketRecord>& records) {
  auto bytes = write_pcap(records);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  return written == bytes.size();
}

Expected<std::vector<PacketRecord>> read_pcap_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return make_error("pcap: cannot open " + path);
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[65536];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.insert(bytes.end(), buf, buf + n);
  std::fclose(f);
  return read_pcap(bytes);
}

}  // namespace asap::trace
