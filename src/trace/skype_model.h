// Synthetic Skype-like session generator.
//
// Substitutes for the paper's captured Skype traffic (Sec. 5: 14 sessions,
// WinDump at both ends). The model reproduces the *behaviours* the paper
// measures, using the mechanisms its analysis identifies:
//   * AS-unaware relay probing: candidate supernodes are random peers, with
//     a "herding" bias toward clusters already probed (supernode caches
//     return neighbours), which yields same-AS duplicate probes (Limit 2);
//   * noisy path evaluation with sticky switching: the client switches to a
//     candidate whose (noisy) estimate beats the current path by a margin,
//     producing relay bounce and long stabilization times (Limit 3);
//   * continuous background probing during the call (Limit 4);
//   * independently chosen forward/backward relays (asymmetric sessions)
//     and occasional two-hop relaying.
// The output is a two-sided packet capture in the same shape as the
// paper's pcap data; the analyzer recovers major paths, stabilization time
// and probe counts from packets alone.
#pragma once

#include <cstdint>
#include <vector>

#include "population/world.h"
#include "trace/packet.h"
#include "common/rng.h"

namespace asap::trace {

struct SkypeModelParams {
  double duration_s = 420.0;
  // Initial probe burst: count ~ U[burst_min, burst_max] in the first 20 s.
  int burst_min = 8;
  int burst_max = 30;
  // Background probing (exponential inter-arrival).
  double probe_interval_s = 60.0;
  // Probability a probe candidate is drawn from an already-probed cluster.
  double herding_prob = 0.25;
  // Noisy path evaluation: estimate = true RTT * lognormal(sigma).
  double eval_noise_sigma = 0.18;
  // Switch to a candidate when its estimate beats the current estimate by
  // this many ms.
  double switch_hysteresis_ms = 12.0;
  // Period of current-path re-evaluation (each re-draws the noise, which is
  // what produces relay bounce).
  double reeval_interval_s = 12.0;
  // Probability the two directions run independent relay selection.
  double asymmetric_prob = 0.3;
  // Probability a direction relays through two hops.
  double two_hop_prob = 0.07;
  // Use the direct path when its RTT is below this and the coin flips.
  double direct_ok_ms = 200.0;
  double direct_use_prob = 0.7;
  // Every stride-th voice packet is recorded (50 pps nominal).
  int voice_record_stride = 10;
};

struct ProbeEvent {
  double t_s;
  HostId target;
};

struct SwitchEvent {
  double t_s;
  HostId relay1;  // invalid => direct path
  HostId relay2;  // valid only for two-hop
};

// Ground-truth journal of one generated session (what really happened);
// tests compare the analyzer's reconstruction against it.
struct SkypeSessionTruth {
  std::vector<ProbeEvent> probes;        // both directions
  std::vector<SwitchEvent> forward_switches;
  std::vector<SwitchEvent> backward_switches;
  bool asymmetric = false;
  bool forward_two_hop = false;
};

struct SkypeSession {
  HostId caller;
  HostId callee;
  TwoSidedCapture capture;
  SkypeSessionTruth truth;
};

SkypeSession generate_skype_session(const population::World& world, HostId caller,
                                    HostId callee, const SkypeModelParams& params, Rng& rng);

}  // namespace asap::trace
