// Packet-level trace records, the unit of the Section-5 measurement
// pipeline. A record is what WinDump/pcap captures at one end host: a
// timestamped UDP datagram with addresses, ports and size.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ip.h"

namespace asap::trace {

struct PacketRecord {
  double t_s = 0.0;  // capture time, seconds since session start
  Ipv4Addr src;
  Ipv4Addr dst;
  std::uint16_t sport = 0;
  std::uint16_t dport = 0;
  std::uint16_t size = 0;  // UDP payload bytes

  friend bool operator==(const PacketRecord&, const PacketRecord&) = default;
};

// Conventional sizes used by the synthetic Skype model and recognized by
// the analyzer: probes are small keep-alive-sized datagrams, voice packets
// carry a codec frame.
inline constexpr std::uint16_t kProbePacketBytes = 28;
inline constexpr std::uint16_t kVoicePacketBytes = 160;

// A two-sided capture: the same session observed at both end hosts
// (the paper ran WinDump at caller and callee).
struct TwoSidedCapture {
  Ipv4Addr caller_ip;
  Ipv4Addr callee_ip;
  std::vector<PacketRecord> caller_side;
  std::vector<PacketRecord> callee_side;
  double duration_s = 0.0;
};

}  // namespace asap::trace
