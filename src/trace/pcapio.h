// Minimal libpcap-format I/O for UDP/IPv4 packet traces.
//
// Writes standard pcap files (magic 0xa1b2c3d4, linktype EN10MB) whose
// frames are synthesized Ethernet+IPv4+UDP headers around our records, and
// reads them back. The files open in tcpdump/Wireshark; the reader accepts
// any pcap whose frames are plain UDP over IPv4 (which is what a Skype
// voice capture largely is).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/packet.h"
#include "common/expected.h"

namespace asap::trace {

// Serializes records into pcap bytes. Timestamps are offset from t0_s.
std::vector<std::uint8_t> write_pcap(const std::vector<PacketRecord>& records,
                                     double t0_s = 0.0);

// Parses pcap bytes; skips non-UDP/IPv4 frames. Timestamps are absolute
// capture times in seconds.
Expected<std::vector<PacketRecord>> read_pcap(const std::vector<std::uint8_t>& bytes);

// File convenience wrappers.
bool write_pcap_file(const std::string& path, const std::vector<PacketRecord>& records);
Expected<std::vector<PacketRecord>> read_pcap_file(const std::string& path);

}  // namespace asap::trace
