file(REMOVE_RECURSE
  "libasap_trace.a"
)
