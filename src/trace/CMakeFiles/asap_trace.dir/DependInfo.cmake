
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/analyzer.cpp" "src/trace/CMakeFiles/asap_trace.dir/analyzer.cpp.o" "gcc" "src/trace/CMakeFiles/asap_trace.dir/analyzer.cpp.o.d"
  "/root/repo/src/trace/pcapio.cpp" "src/trace/CMakeFiles/asap_trace.dir/pcapio.cpp.o" "gcc" "src/trace/CMakeFiles/asap_trace.dir/pcapio.cpp.o.d"
  "/root/repo/src/trace/skype_model.cpp" "src/trace/CMakeFiles/asap_trace.dir/skype_model.cpp.o" "gcc" "src/trace/CMakeFiles/asap_trace.dir/skype_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/population/CMakeFiles/asap_population.dir/DependInfo.cmake"
  "/root/repo/src/common/CMakeFiles/asap_common.dir/DependInfo.cmake"
  "/root/repo/src/netmodel/CMakeFiles/asap_netmodel.dir/DependInfo.cmake"
  "/root/repo/src/astopo/CMakeFiles/asap_astopo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
