file(REMOVE_RECURSE
  "CMakeFiles/asap_trace.dir/analyzer.cpp.o"
  "CMakeFiles/asap_trace.dir/analyzer.cpp.o.d"
  "CMakeFiles/asap_trace.dir/pcapio.cpp.o"
  "CMakeFiles/asap_trace.dir/pcapio.cpp.o.d"
  "CMakeFiles/asap_trace.dir/skype_model.cpp.o"
  "CMakeFiles/asap_trace.dir/skype_model.cpp.o.d"
  "libasap_trace.a"
  "libasap_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asap_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
