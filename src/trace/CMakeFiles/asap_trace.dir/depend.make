# Empty dependencies file for asap_trace.
# This may be replaced when dependencies are built.
