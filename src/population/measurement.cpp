#include "population/measurement.h"

#include "core/params.h"

namespace asap::population {

std::optional<Millis> measure_delegate_rtt(const World& world, ClusterId a, ClusterId b) {
  const auto& pop = world.pop();
  AsId as_a = pop.cluster(a).as;
  AsId as_b = pop.cluster(b).as;
  auto estimate = world.king().measure_rtt(as_a, as_b);
  if (!estimate) return std::nullopt;
  // King measures DNS-server-to-DNS-server latency; delegate access delays
  // approximate the DNS servers' positions at the cluster edge.
  const Peer& da = pop.peer(pop.cluster(a).delegate);
  const Peer& db = pop.peer(pop.cluster(b).delegate);
  return *estimate + 2.0 * (da.access_one_way_ms + db.access_one_way_ms);
}

OptimalOneHop optimal_one_hop(const World& world, const Session& session) {
  OptimalOneHop best;
  const auto& pop = world.pop();
  ClusterId ca = pop.peer(session.caller).cluster;
  ClusterId cb = pop.peer(session.callee).cluster;
  for (ClusterId c : pop.populated_clusters()) {
    if (c == ca || c == cb) continue;
    HostId relay = pop.cluster(c).delegate;
    Millis rtt = world.relay_rtt_ms(session.caller, relay, session.callee);
    if (rtt < best.rtt_ms) {
      best.rtt_ms = rtt;
      best.relay = relay;
    }
  }
  return best;
}

double reduction_rate(Millis direct_rtt_ms, Millis optimal_rtt_ms) {
  if (direct_rtt_ms <= 0.0) return 0.0;
  return (direct_rtt_ms - optimal_rtt_ms) / direct_rtt_ms;
}

OneHopScanner::OneHopScanner(const World& world) : world_(world) {
  const auto& pop = world.pop();
  entries_.reserve(pop.populated_clusters().size());
  for (ClusterId c : pop.populated_clusters()) {
    const Cluster& cluster = pop.cluster(c);
    const Peer& delegate = pop.peer(cluster.delegate);
    Entry e;
    e.one_way_to_relay_as = world.oracle().one_way_table(cluster.as).data();
    e.relay_as = cluster.as.value();
    e.relay_round_access_ms = static_cast<float>(2.0 * delegate.access_one_way_ms);
    e.delegate = cluster.delegate;
    e.cluster = c;
    entries_.push_back(e);
  }
}

template <typename Fn>
void OneHopScanner::scan(const Session& session, Fn&& fn) const {
  const auto& pop = world_.pop();
  const Peer& pa = pop.peer(session.caller);
  const Peer& pb = pop.peer(session.callee);
  ClusterId ca = pa.cluster;
  ClusterId cb = pb.cluster;
  const float* from_a = world_.oracle().one_way_table(pa.as).data();
  const float* from_b = world_.oracle().one_way_table(pb.as).data();
  const auto same_as_path =
      static_cast<float>(core::kIntraAsRttMs);  // intra-AS floor, both directions
  const float end_access =
      static_cast<float>(2.0 * (pa.access_one_way_ms + pb.access_one_way_ms));
  const float relay_penalty = static_cast<float>(2.0 * world_.params().relay_delay_one_way_ms);
  const std::uint32_t as_a = pa.as.value();
  const std::uint32_t as_b = pb.as.value();

  for (const Entry& e : entries_) {
    if (e.cluster == ca || e.cluster == cb) continue;
    if (e.delegate == session.caller || e.delegate == session.callee) continue;
    // rtt(a, r): one_way(a->r) lives in r's table at index as_a; the
    // reverse leg lives in a's table at index as_r.
    float leg_a = (e.relay_as == as_a) ? same_as_path
                                       : e.one_way_to_relay_as[as_a] + from_a[e.relay_as];
    float leg_b = (e.relay_as == as_b) ? same_as_path
                                       : e.one_way_to_relay_as[as_b] + from_b[e.relay_as];
    float rtt = leg_a + leg_b + 2.0F * e.relay_round_access_ms + end_access + relay_penalty;
    fn(e, rtt);
  }
}

OptimalOneHop OneHopScanner::best(const Session& session) const {
  OptimalOneHop out;
  float best = static_cast<float>(kUnreachableMs);
  scan(session, [&](const Entry& e, float rtt) {
    if (rtt < best) {
      best = rtt;
      out.relay = e.delegate;
    }
  });
  if (out.relay.valid()) out.rtt_ms = best;
  return out;
}

std::size_t OneHopScanner::count_quality(const Session& session, Millis threshold_ms) const {
  std::size_t count = 0;
  auto threshold = static_cast<float>(threshold_ms);
  scan(session, [&](const Entry&, float rtt) {
    if (rtt < threshold) ++count;
  });
  return count;
}

}  // namespace asap::population
