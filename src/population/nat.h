// NAT/firewall reachability — the *other* reason Skype-era VoIP needs peer
// relays. The paper studies relay selection for latency; in deployment the
// same machinery serves sessions whose direct UDP path simply cannot be
// established. Modelling NAT makes relay capability a first-class
// constraint: only openly reachable peers can serve as relays/surrogates,
// and a fraction of calls *must* relay regardless of latency.
//
// The classic STUN-era connectivity matrix (Ford et al., "Peer-to-peer
// communication across network address translators"):
//   open       <-> anything        : direct works
//   restricted <-> open/restricted : direct works (UDP hole punching)
//   symmetric  <-> open            : direct works
//   symmetric  <-> restricted      : fails (unpredictable ports)
//   symmetric  <-> symmetric       : fails
#pragma once

#include <cstdint>
#include <string_view>

namespace asap::population {

enum class NatType : std::uint8_t {
  kOpen = 0,            // public address or full-cone NAT
  kPortRestricted = 1,  // hole-punchable
  kSymmetric = 2,       // per-destination port mapping
};

constexpr std::string_view nat_type_name(NatType t) {
  switch (t) {
    case NatType::kOpen: return "open";
    case NatType::kPortRestricted: return "port-restricted";
    case NatType::kSymmetric: return "symmetric";
  }
  return "?";
}

// Whether a direct UDP session can be established between two peers.
constexpr bool can_connect_direct(NatType a, NatType b) {
  if (a == NatType::kOpen || b == NatType::kOpen) return true;
  if (a == NatType::kPortRestricted && b == NatType::kPortRestricted) return true;
  return false;  // symmetric involved with non-open peer
}

// Whether a peer can accept unsolicited traffic from arbitrary peers —
// the requirement for serving as a relay, surrogate or bootstrap target.
constexpr bool can_serve_as_relay(NatType t) { return t == NatType::kOpen; }

}  // namespace asap::population
