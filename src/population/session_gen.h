// VoIP calling-session workload generation (paper Sec. 3.3 / 7.1: 100,000
// random peer pairs; the "latent" subset with direct RTT above 300 ms is
// the population the relay-selection evaluation focuses on).
#pragma once

#include <vector>

#include "population/world.h"
#include "common/ids.h"
#include "common/units.h"

namespace asap::population {

struct Session {
  HostId caller;
  HostId callee;
  Millis direct_rtt_ms = 0.0;
  double direct_loss = 0.0;
};

// Samples `count` sessions between random peers in distinct clusters, with
// the direct IP routing RTT/loss precomputed.
std::vector<Session> generate_sessions(const World& world, std::size_t count, Rng& rng);

// Thread-count-invariant parallel variant for XL workloads: session i is
// drawn from `rng.fork(i)` (rejection-sampling inside its own stream), so
// the output depends only on `rng`'s state — NOT on `threads` — but the
// session sequence differs from the sequential generate_sessions() stream.
// `threads` = 0 means hardware concurrency.
std::vector<Session> generate_sessions_parallel(const World& world, std::size_t count,
                                                const Rng& rng, std::size_t threads = 0);

// Sessions whose direct RTT exceeds `threshold_ms` (default: the paper's
// 300 ms quality bar).
std::vector<Session> latent_sessions(const std::vector<Session>& sessions,
                                     Millis threshold_ms = kQualityRttThresholdMs);

}  // namespace asap::population
