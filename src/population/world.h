// World: the assembled trace-driven-simulation universe — topology, latency
// model, path oracle, peer population — plus host-level latency/loss
// composition helpers used by every relay-selection method.
//
// Host-to-host RTT = policy-path RTT between the hosts' ASes plus both
// hosts' last-mile access delays in each direction. A relay path adds the
// paper's 20 ms per-intermediary one-way relay delay (40 ms per RTT).
#pragma once

#include <cstdint>
#include <memory>

#include "astopo/topology_gen.h"
#include "netmodel/king.h"
#include "netmodel/latency_model.h"
#include "netmodel/oracle.h"
#include "population/peer_population.h"
#include "common/rng.h"
#include "common/units.h"

namespace asap::population {

struct WorldParams {
  astopo::TopologyParams topo;
  netmodel::LatencyParams latency;
  netmodel::KingParams king;
  PopulationParams pop;
  Millis relay_delay_one_way_ms = kRelayDelayOneWayMs;
  std::uint64_t seed = 20050926;  // the paper's BGP snapshot date
  // Latency epoch: worlds sharing a seed but differing in epoch have the
  // same topology, clusters and peers but freshly drawn link latencies and
  // pathologies — "the same Internet, a day later". Used by the close-set
  // staleness ablation.
  std::uint64_t latency_epoch = 0;
};

class World {
 public:
  explicit World(const WorldParams& params);

  [[nodiscard]] const WorldParams& params() const { return params_; }
  [[nodiscard]] const astopo::Topology& topo() const { return topo_; }
  [[nodiscard]] const astopo::AsGraph& graph() const { return topo_.graph; }
  [[nodiscard]] const netmodel::LatencyModel& latency_model() const { return *latency_; }
  [[nodiscard]] const netmodel::PathOracle& oracle() const { return *oracle_; }
  [[nodiscard]] const netmodel::KingEstimator& king() const { return *king_; }
  [[nodiscard]] const PeerPopulation& pop() const { return *pop_; }
  [[nodiscard]] PeerPopulation& pop() { return *pop_; }

  // --- Host-level ground truth ------------------------------------------
  // Direct IP routing RTT between two end hosts.
  [[nodiscard]] Millis host_rtt_ms(HostId a, HostId b) const;
  // End-to-end round-trip loss probability between two end hosts.
  [[nodiscard]] double host_loss(HostId a, HostId b) const;
  // One-hop relay path RTT: rtt(a,r) + rtt(r,b) + 2 * relay delay.
  [[nodiscard]] Millis relay_rtt_ms(HostId a, HostId r, HostId b) const;
  [[nodiscard]] double relay_loss(HostId a, HostId r, HostId b) const;
  // Two-hop relay path RTT: a-r1-r2-b with two relay penalties.
  [[nodiscard]] Millis relay2_rtt_ms(HostId a, HostId r1, HostId r2, HostId b) const;

  // --- Cluster-level (surrogate "ping") quantities ------------------------
  // RTT between the surrogates of two clusters (what ASAP's lat() measures).
  [[nodiscard]] Millis cluster_rtt_ms(ClusterId a, ClusterId b) const;
  [[nodiscard]] double cluster_loss(ClusterId a, ClusterId b) const;

  // Fresh RNG stream for a named consumer (deterministic per seed + salt).
  [[nodiscard]] Rng fork_rng(std::uint64_t salt) const;

 private:
  WorldParams params_;
  astopo::Topology topo_;
  std::unique_ptr<netmodel::LatencyModel> latency_;
  std::unique_ptr<netmodel::PathOracle> oracle_;
  std::unique_ptr<netmodel::KingEstimator> king_;
  std::unique_ptr<PeerPopulation> pop_;
};

}  // namespace asap::population
