// World: the assembled trace-driven-simulation universe — topology, latency
// model, path oracle, peer population — plus host-level latency/loss
// composition helpers used by every relay-selection method.
//
// Host-to-host RTT = policy-path RTT between the hosts' ASes plus both
// hosts' last-mile access delays in each direction. A relay path adds the
// paper's 20 ms per-intermediary one-way relay delay (40 ms per RTT).
//
// Two query tiers share the same arithmetic (bitwise-identical results):
//   - scalar helpers (host_rtt_ms, relay_rtt_ms, ...) for one-off queries;
//   - batch_* scans that hoist the endpoints' peer records and destination
//     tables out of the candidate loop, for the per-session evaluation hot
//     path (see DESIGN.md §7).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>

#include "astopo/topology_gen.h"
#include "netmodel/king.h"
#include "netmodel/latency_model.h"
#include "netmodel/oracle.h"
#include "population/peer_population.h"
#include "population/relay_directory.h"
#include "common/rng.h"
#include "common/units.h"

namespace asap::population {

struct Session;

struct WorldParams {
  astopo::TopologyParams topo;
  netmodel::LatencyParams latency;
  netmodel::KingParams king;
  PopulationParams pop;
  // Oracle table-cache policy (byte budget + u16 quantization); defaults to
  // unbounded float tables, the historical behavior.
  netmodel::OracleCacheParams oracle_cache;
  Millis relay_delay_one_way_ms = kRelayDelayOneWayMs;
  std::uint64_t seed = 20050926;  // the paper's BGP snapshot date
  // Latency epoch: worlds sharing a seed but differing in epoch have the
  // same topology, clusters and peers but freshly drawn link latencies and
  // pathologies — "the same Internet, a day later". Used by the close-set
  // staleness ablation.
  std::uint64_t latency_epoch = 0;
};

class World {
 public:
  explicit World(const WorldParams& params);

  [[nodiscard]] const WorldParams& params() const { return params_; }
  [[nodiscard]] const astopo::Topology& topo() const { return topo_; }
  [[nodiscard]] const astopo::AsGraph& graph() const { return topo_.graph; }
  [[nodiscard]] const netmodel::LatencyModel& latency_model() const { return *latency_; }
  [[nodiscard]] const netmodel::PathOracle& oracle() const { return *oracle_; }
  [[nodiscard]] const netmodel::KingEstimator& king() const { return *king_; }
  // A constructed World is immutable and safely shared across threads and
  // concurrent protocol sessions; all accessors are const. The one sanctioned
  // mutation — surrogate re-election after a crash — goes through
  // elect_surrogate() below.
  [[nodiscard]] const PeerPopulation& pop() const { return *pop_; }

  // Re-elects the surrogate of cluster `c` after `failed` crashed (forwards
  // to PeerPopulation::elect_surrogate). Returns the new surrogate, or an
  // invalid id when the cluster has no eligible member left. NOT thread-safe
  // against concurrent readers: only call from single-threaded protocol
  // simulations (the evaluation layer never mutates).
  HostId elect_surrogate(ClusterId c, HostId failed);

  // --- BGP route-flap hooks (living-world soak runtime) -------------------
  // Withdraws / restores an inter-AS adjacency, or flips its commercial
  // relationship, then invalidates exactly the PathOracle destination
  // tables the change can affect: targeted eviction on withdrawal (only
  // tables whose selected route tree crossed the edge; the rest rebuild
  // bitwise identically), full eviction on restore and policy change (route
  // *improvements* can appear anywhere). Returns the destination ASes whose
  // tables were evicted so callers can invalidate dependent caches (close
  // sets). Same thread-safety contract as elect_surrogate(): NOT safe
  // against concurrent readers — single-threaded protocol simulations only.
  std::vector<AsId> fail_link(std::uint32_t edge_id);
  std::vector<AsId> recover_link(std::uint32_t edge_id);
  // Policy change: a peer link becomes provider/customer (the edge's first
  // endpoint turns provider); a provider/customer link flips direction;
  // sibling links are organizational and never flip (returns empty).
  std::vector<AsId> flip_policy(std::uint32_t edge_id);

  // SoA facts of every populated cluster's effective relay, built lazily on
  // first use (thread-safe) and immutable afterwards.
  [[nodiscard]] const RelayDirectory& relay_directory() const;

  // --- Host-level ground truth ------------------------------------------
  // Direct IP routing RTT between two end hosts.
  [[nodiscard]] Millis host_rtt_ms(HostId a, HostId b) const;
  // End-to-end round-trip loss probability between two end hosts.
  [[nodiscard]] double host_loss(HostId a, HostId b) const;
  // One-hop relay path RTT: rtt(a,r) + rtt(r,b) + 2 * relay delay.
  [[nodiscard]] Millis relay_rtt_ms(HostId a, HostId r, HostId b) const;
  [[nodiscard]] double relay_loss(HostId a, HostId r, HostId b) const;
  // Two-hop relay path RTT: a-r1-r2-b with two relay penalties.
  [[nodiscard]] Millis relay2_rtt_ms(HostId a, HostId r1, HostId r2, HostId b) const;

  // --- Batched host/relay queries ---------------------------------------
  // Each batch call hoists the fixed endpoints' Peer records and one-way
  // destination-table spans out of the candidate loop; per candidate the
  // scan is one Peer load, one lock-free table fetch and a handful of
  // float loads — no locks, no hashing. Outputs are bitwise identical to
  // the scalar helpers above. Output spans must be at least as long as the
  // candidate span.
  //
  // host_rtt_ms(a, x) for every x in `others`.
  void batch_host_rtts(HostId a, std::span<const HostId> others,
                       std::span<Millis> out) const;
  // Both one-hop relay legs per candidate r: legs_a[i] = host_rtt_ms(a, r),
  // legs_b[i] = host_rtt_ms(r, b).
  void batch_relay_legs(HostId a, HostId b, std::span<const HostId> candidates,
                        std::span<Millis> legs_a, std::span<Millis> legs_b) const;
  // Full one-hop relay path RTT per candidate: relay_rtt_ms(a, r, b).
  void batch_relay_rtts(HostId a, HostId b, std::span<const HostId> candidates,
                        std::span<Millis> out) const;
  // Convenience overload for a session's endpoints.
  void batch_relay_rtts(const Session& session, std::span<const HostId> candidates,
                        std::span<Millis> out) const;

  // --- Cluster-level (surrogate "ping") quantities ------------------------
  // RTT between the surrogates of two clusters (what ASAP's lat() measures).
  [[nodiscard]] Millis cluster_rtt_ms(ClusterId a, ClusterId b) const;
  [[nodiscard]] double cluster_loss(ClusterId a, ClusterId b) const;

  // Fresh RNG stream for a named consumer (deterministic per seed + salt).
  [[nodiscard]] Rng fork_rng(std::uint64_t salt) const;

 private:
  WorldParams params_;
  astopo::Topology topo_;
  std::unique_ptr<netmodel::LatencyModel> latency_;
  std::unique_ptr<netmodel::PathOracle> oracle_;
  std::unique_ptr<netmodel::KingEstimator> king_;
  std::unique_ptr<PeerPopulation> pop_;
  mutable std::once_flag directory_once_;
  mutable std::unique_ptr<RelayDirectory> directory_;
};

}  // namespace asap::population
