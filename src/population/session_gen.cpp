#include "population/session_gen.h"

namespace asap::population {

std::vector<Session> generate_sessions(const World& world, std::size_t count, Rng& rng) {
  const auto& peers = world.pop().peers();
  std::vector<Session> sessions;
  sessions.reserve(count);
  while (sessions.size() < count) {
    HostId a(static_cast<std::uint32_t>(rng.below(peers.size())));
    HostId b(static_cast<std::uint32_t>(rng.below(peers.size())));
    if (a == b || peers[a.value()].cluster == peers[b.value()].cluster) continue;
    Session s{a, b, world.host_rtt_ms(a, b), world.host_loss(a, b)};
    sessions.push_back(s);
  }
  return sessions;
}

std::vector<Session> latent_sessions(const std::vector<Session>& sessions,
                                     Millis threshold_ms) {
  std::vector<Session> out;
  for (const auto& s : sessions) {
    if (s.direct_rtt_ms > threshold_ms) out.push_back(s);
  }
  return out;
}

}  // namespace asap::population
