#include "population/session_gen.h"

#include "common/thread_pool.h"

namespace asap::population {

std::vector<Session> generate_sessions(const World& world, std::size_t count, Rng& rng) {
  const auto& pop = world.pop();
  std::vector<Session> sessions;
  sessions.reserve(count);
  while (sessions.size() < count) {
    HostId a(static_cast<std::uint32_t>(rng.below(pop.peer_count())));
    HostId b(static_cast<std::uint32_t>(rng.below(pop.peer_count())));
    if (a == b || pop.peer_cluster(a) == pop.peer_cluster(b)) continue;
    Session s{a, b, world.host_rtt_ms(a, b), world.host_loss(a, b)};
    sessions.push_back(s);
  }
  return sessions;
}

std::vector<Session> generate_sessions_parallel(const World& world, std::size_t count,
                                                const Rng& rng, std::size_t threads) {
  const auto& pop = world.pop();
  std::vector<Session> sessions(count);
  ThreadPool pool(ThreadPool::resolve_threads(threads));
  pool.parallel_for(count, [&](std::size_t i) {
    // Each slot owns stream fork(i): the rejection loop stays inside it, so
    // slot outputs are independent of scheduling and thread count.
    Rng slot = rng.fork(i);
    for (;;) {
      HostId a(static_cast<std::uint32_t>(slot.below(pop.peer_count())));
      HostId b(static_cast<std::uint32_t>(slot.below(pop.peer_count())));
      if (a == b || pop.peer_cluster(a) == pop.peer_cluster(b)) continue;
      sessions[i] = Session{a, b, world.host_rtt_ms(a, b), world.host_loss(a, b)};
      return;
    }
  });
  return sessions;
}

std::vector<Session> latent_sessions(const std::vector<Session>& sessions,
                                     Millis threshold_ms) {
  std::vector<Session> out;
  for (const auto& s : sessions) {
    if (s.direct_rtt_ms > threshold_ms) out.push_back(s);
  }
  return out;
}

}  // namespace asap::population
