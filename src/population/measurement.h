// The Section-3 measurement pipeline: King-style delegate RTT measurements
// between cluster delegates (Fig. 1's procedure) and the optimal one-hop
// relay search over the measured pool.
#pragma once

#include <optional>
#include <vector>

#include "population/session_gen.h"
#include "population/world.h"
#include "common/units.h"

namespace asap::population {

// King-estimated RTT between the delegates of two clusters (nullopt when
// the DNS pair is unresponsive, ~30% of pairs).
std::optional<Millis> measure_delegate_rtt(const World& world, ClusterId a, ClusterId b);

struct OptimalOneHop {
  Millis rtt_ms = kUnreachableMs;
  HostId relay = HostId::invalid();
};

// Exhaustive offline search over every populated cluster's delegate as the
// relay (the paper's "iterate through every possible one-hop relay node C").
// Uses ground-truth host RTTs, as the paper's offline analysis does.
OptimalOneHop optimal_one_hop(const World& world, const Session& session);

// RTT reduction rate r = (direct - optimal) / direct (paper Fig. 3(a)).
double reduction_rate(Millis direct_rtt_ms, Millis optimal_rtt_ms);

// OneHopScanner: vectorized all-relays scan used by the Section-3 benches,
// which evaluate the optimal one-hop relay for *every* sampled session
// (10^5 sessions x ~7x10^3 candidate relays). Precomputes, per populated
// cluster, a borrowed view into the oracle's one-way table toward that
// cluster's AS plus the delegate's access delay, reducing each candidate
// evaluation to two array reads. Results are identical to
// optimal_one_hop(); a test asserts this.
class OneHopScanner {
 public:
  explicit OneHopScanner(const World& world);

  // Best one-hop relay for the session (same semantics as optimal_one_hop).
  [[nodiscard]] OptimalOneHop best(const Session& session) const;

  // Number of candidate one-hop relay paths meeting `threshold_ms`.
  [[nodiscard]] std::size_t count_quality(const Session& session,
                                          Millis threshold_ms = kQualityRttThresholdMs) const;

 private:
  struct Entry {
    const float* one_way_to_relay_as;  // indexed by source AS id
    std::uint32_t relay_as;
    float relay_round_access_ms;  // 2 * delegate access delay
    HostId delegate;
    ClusterId cluster;
  };

  template <typename Fn>
  void scan(const Session& session, Fn&& fn) const;

  const World& world_;
  std::vector<Entry> entries_;
};

}  // namespace asap::population
