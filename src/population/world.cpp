#include "population/world.h"

#include "core/params.h"
#include "population/session_gen.h"

namespace asap::population {

namespace {

// One-way destination-table views the batch kernels index by source AS.
// FloatTable (default mode) yields the float entry widened to double —
// exactly the arithmetic of the historical kernels, so results stay bitwise
// identical. QuantTable (compact mode) decodes the u16 code through the
// shared decoder, matching the oracle's scalar queries bitwise.
struct FloatTable {
  std::span<const float> t;
  double operator[](std::uint32_t i) const { return t[i]; }
};
struct QuantTable {
  std::span<const std::uint16_t> t;
  double operator[](std::uint32_t i) const { return netmodel::decode_rtt_quant(t[i]); }
};

struct FloatFetch {
  const netmodel::PathOracle* oracle;
  FloatTable operator()(AsId as) const { return FloatTable{oracle->one_way_table(as)}; }
};
struct QuantFetch {
  const netmodel::PathOracle* oracle;
  QuantTable operator()(AsId as) const { return QuantTable{oracle->one_way_table_q(as)}; }
};

// host_rtt_ms(src, dst) with both peers' destination tables hoisted by the
// caller. `to_dst` is the one-way table toward dst's AS (forward leg lives
// at index as_src), `to_src` the table toward src's AS (reverse leg at
// index as_dst). The arithmetic mirrors World::host_rtt_ms operation for
// operation so results are bitwise identical.
template <typename Table>
inline Millis pair_rtt_ms(const Table& to_dst, const Table& to_src,
                          std::uint32_t as_src, std::uint32_t as_dst, double access_src,
                          double access_dst) {
  if (as_src == as_dst) {
    return core::kIntraAsRttMs + 2.0 * (access_src + access_dst);
  }
  Millis fwd = to_dst[as_src];
  Millis rev = to_src[as_dst];
  if (fwd >= kUnreachableMs || rev >= kUnreachableMs) return kUnreachableMs;
  return (fwd + rev) + 2.0 * (access_src + access_dst);
}

// Kernel bodies shared by both table encodings. `fetch(AsId)` returns the
// destination-table view; per candidate the scan is one column load, one
// lock-free table fetch and a handful of element loads.
template <typename Fetch>
inline void batch_host_rtts_impl(const PeerPopulation& pop, Fetch fetch, HostId a,
                                 std::span<const HostId> others, std::span<Millis> out) {
  const AsId as_a = pop.peer_as(a);
  const double access_a = pop.peer_access_ms(a);
  const auto to_a = fetch(as_a);
  for (std::size_t i = 0; i < others.size(); ++i) {
    const AsId as_x = pop.peer_as(others[i]);
    const auto to_x = fetch(as_x);
    out[i] = pair_rtt_ms(to_x, to_a, as_a.value(), as_x.value(), access_a,
                         pop.peer_access_ms(others[i]));
  }
}

template <typename Fetch>
inline void batch_relay_legs_impl(const PeerPopulation& pop, Fetch fetch, HostId a,
                                  HostId b, std::span<const HostId> candidates,
                                  std::span<Millis> legs_a, std::span<Millis> legs_b) {
  const AsId as_a = pop.peer_as(a);
  const AsId as_b = pop.peer_as(b);
  const double access_a = pop.peer_access_ms(a);
  const double access_b = pop.peer_access_ms(b);
  const auto to_a = fetch(as_a);
  const auto to_b = fetch(as_b);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const AsId as_r = pop.peer_as(candidates[i]);
    const double access_r = pop.peer_access_ms(candidates[i]);
    const auto to_r = fetch(as_r);
    legs_a[i] = pair_rtt_ms(to_r, to_a, as_a.value(), as_r.value(), access_a, access_r);
    legs_b[i] = pair_rtt_ms(to_b, to_r, as_r.value(), as_b.value(), access_r, access_b);
  }
}

template <typename Fetch>
inline void batch_relay_rtts_impl(const PeerPopulation& pop, Fetch fetch, HostId a,
                                  HostId b, std::span<const HostId> candidates,
                                  std::span<Millis> out, Millis relay_penalty) {
  const AsId as_a = pop.peer_as(a);
  const AsId as_b = pop.peer_as(b);
  const double access_a = pop.peer_access_ms(a);
  const double access_b = pop.peer_access_ms(b);
  const auto to_a = fetch(as_a);
  const auto to_b = fetch(as_b);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const AsId as_r = pop.peer_as(candidates[i]);
    const double access_r = pop.peer_access_ms(candidates[i]);
    const auto to_r = fetch(as_r);
    Millis leg1 = pair_rtt_ms(to_r, to_a, as_a.value(), as_r.value(), access_a, access_r);
    if (leg1 >= kUnreachableMs) {
      out[i] = kUnreachableMs;
      continue;
    }
    Millis leg2 = pair_rtt_ms(to_b, to_r, as_r.value(), as_b.value(), access_r, access_b);
    if (leg2 >= kUnreachableMs) {
      out[i] = kUnreachableMs;
      continue;
    }
    out[i] = leg1 + leg2 + relay_penalty;
  }
}

}  // namespace

World::World(const WorldParams& params) : params_(params) {
  Rng root(params.seed);
  Rng topo_rng = root.fork(1);
  Rng lat_rng = root.fork(2 + (params.latency_epoch << 8));
  Rng pop_rng = root.fork(3);
  topo_ = astopo::generate_topology(params.topo, topo_rng);
  latency_ = std::make_unique<netmodel::LatencyModel>(topo_, params.latency, lat_rng);
  oracle_ = std::make_unique<netmodel::PathOracle>(topo_.graph, *latency_,
                                                   params.oracle_cache);
  king_ = std::make_unique<netmodel::KingEstimator>(*oracle_, params.king, root.fork(4).next());
  pop_ = std::make_unique<PeerPopulation>(topo_, params.pop, pop_rng);
}

HostId World::elect_surrogate(ClusterId c, HostId failed) {
  return pop_->elect_surrogate(c, failed);
}

std::vector<AsId> World::fail_link(std::uint32_t edge_id) {
  topo_.graph.set_edge_enabled(edge_id, false);
  return oracle_->invalidate_routes_through(edge_id);
}

std::vector<AsId> World::recover_link(std::uint32_t edge_id) {
  topo_.graph.set_edge_enabled(edge_id, true);
  return oracle_->invalidate_all();
}

std::vector<AsId> World::flip_policy(std::uint32_t edge_id) {
  using astopo::LinkType;
  LinkType from_a = topo_.graph.edge_type(edge_id);
  LinkType flipped = from_a;
  switch (from_a) {
    case LinkType::kToProvider: flipped = LinkType::kToCustomer; break;
    case LinkType::kToCustomer: flipped = LinkType::kToProvider; break;
    case LinkType::kToPeer: flipped = LinkType::kToCustomer; break;
    case LinkType::kToSibling: return {};  // same organization: no contract to flip
  }
  topo_.graph.set_edge_type(edge_id, flipped);
  return oracle_->invalidate_all();
}

const RelayDirectory& World::relay_directory() const {
  std::call_once(directory_once_, [this] {
    directory_ = std::make_unique<RelayDirectory>(build_relay_directory(*this));
  });
  return *directory_;
}

Millis World::host_rtt_ms(HostId a, HostId b) const {
  const Peer& pa = pop_->peer(a);
  const Peer& pb = pop_->peer(b);
  Millis path;
  if (pa.as == pb.as) {
    path = core::kIntraAsRttMs;  // intra-AS floor, both directions
  } else {
    path = oracle_->rtt_ms(pa.as, pb.as);
    if (path >= kUnreachableMs) return kUnreachableMs;
  }
  return path + 2.0 * (pa.access_one_way_ms + pb.access_one_way_ms);
}

double World::host_loss(HostId a, HostId b) const {
  const Peer& pa = pop_->peer(a);
  const Peer& pb = pop_->peer(b);
  if (pa.as == pb.as) return core::kIntraAsRttLoss;
  return oracle_->rtt_loss(pa.as, pb.as);
}

Millis World::relay_rtt_ms(HostId a, HostId r, HostId b) const {
  Millis leg1 = host_rtt_ms(a, r);
  Millis leg2 = host_rtt_ms(r, b);
  if (leg1 >= kUnreachableMs || leg2 >= kUnreachableMs) return kUnreachableMs;
  return leg1 + leg2 + 2.0 * params_.relay_delay_one_way_ms;
}

double World::relay_loss(HostId a, HostId r, HostId b) const {
  double l1 = host_loss(a, r);
  double l2 = host_loss(r, b);
  return 1.0 - (1.0 - l1) * (1.0 - l2);
}

Millis World::relay2_rtt_ms(HostId a, HostId r1, HostId r2, HostId b) const {
  Millis leg1 = host_rtt_ms(a, r1);
  Millis leg2 = host_rtt_ms(r1, r2);
  Millis leg3 = host_rtt_ms(r2, b);
  if (leg1 >= kUnreachableMs || leg2 >= kUnreachableMs || leg3 >= kUnreachableMs) {
    return kUnreachableMs;
  }
  return leg1 + leg2 + leg3 + 4.0 * params_.relay_delay_one_way_ms;
}

void World::batch_host_rtts(HostId a, std::span<const HostId> others,
                            std::span<Millis> out) const {
  if (oracle_->compact_tables()) {
    batch_host_rtts_impl(*pop_, QuantFetch{oracle_.get()}, a, others, out);
  } else {
    batch_host_rtts_impl(*pop_, FloatFetch{oracle_.get()}, a, others, out);
  }
}

void World::batch_relay_legs(HostId a, HostId b, std::span<const HostId> candidates,
                             std::span<Millis> legs_a, std::span<Millis> legs_b) const {
  if (oracle_->compact_tables()) {
    batch_relay_legs_impl(*pop_, QuantFetch{oracle_.get()}, a, b, candidates, legs_a,
                          legs_b);
  } else {
    batch_relay_legs_impl(*pop_, FloatFetch{oracle_.get()}, a, b, candidates, legs_a,
                          legs_b);
  }
}

void World::batch_relay_rtts(HostId a, HostId b, std::span<const HostId> candidates,
                             std::span<Millis> out) const {
  const Millis relay_penalty = 2.0 * params_.relay_delay_one_way_ms;
  if (oracle_->compact_tables()) {
    batch_relay_rtts_impl(*pop_, QuantFetch{oracle_.get()}, a, b, candidates, out,
                          relay_penalty);
  } else {
    batch_relay_rtts_impl(*pop_, FloatFetch{oracle_.get()}, a, b, candidates, out,
                          relay_penalty);
  }
}

void World::batch_relay_rtts(const Session& session, std::span<const HostId> candidates,
                             std::span<Millis> out) const {
  batch_relay_rtts(session.caller, session.callee, candidates, out);
}

Millis World::cluster_rtt_ms(ClusterId a, ClusterId b) const {
  return host_rtt_ms(pop_->cluster(a).surrogate, pop_->cluster(b).surrogate);
}

double World::cluster_loss(ClusterId a, ClusterId b) const {
  return host_loss(pop_->cluster(a).surrogate, pop_->cluster(b).surrogate);
}

Rng World::fork_rng(std::uint64_t salt) const { return Rng(params_.seed).fork(salt + 100); }

}  // namespace asap::population
