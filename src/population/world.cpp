#include "population/world.h"

namespace asap::population {

World::World(const WorldParams& params) : params_(params) {
  Rng root(params.seed);
  Rng topo_rng = root.fork(1);
  Rng lat_rng = root.fork(2 + (params.latency_epoch << 8));
  Rng pop_rng = root.fork(3);
  topo_ = astopo::generate_topology(params.topo, topo_rng);
  latency_ = std::make_unique<netmodel::LatencyModel>(topo_, params.latency, lat_rng);
  oracle_ = std::make_unique<netmodel::PathOracle>(topo_.graph, *latency_);
  king_ = std::make_unique<netmodel::KingEstimator>(*oracle_, params.king, root.fork(4).next());
  pop_ = std::make_unique<PeerPopulation>(topo_, params.pop, pop_rng);
}

Millis World::host_rtt_ms(HostId a, HostId b) const {
  const Peer& pa = pop_->peer(a);
  const Peer& pb = pop_->peer(b);
  Millis path;
  if (pa.as == pb.as) {
    path = 2.0 * 2.0;  // intra-AS floor, both directions
  } else {
    path = oracle_->rtt_ms(pa.as, pb.as);
    if (path >= kUnreachableMs) return kUnreachableMs;
  }
  return path + 2.0 * (pa.access_one_way_ms + pb.access_one_way_ms);
}

double World::host_loss(HostId a, HostId b) const {
  const Peer& pa = pop_->peer(a);
  const Peer& pb = pop_->peer(b);
  if (pa.as == pb.as) return 0.0005;
  return oracle_->rtt_loss(pa.as, pb.as);
}

Millis World::relay_rtt_ms(HostId a, HostId r, HostId b) const {
  Millis leg1 = host_rtt_ms(a, r);
  Millis leg2 = host_rtt_ms(r, b);
  if (leg1 >= kUnreachableMs || leg2 >= kUnreachableMs) return kUnreachableMs;
  return leg1 + leg2 + 2.0 * params_.relay_delay_one_way_ms;
}

double World::relay_loss(HostId a, HostId r, HostId b) const {
  double l1 = host_loss(a, r);
  double l2 = host_loss(r, b);
  return 1.0 - (1.0 - l1) * (1.0 - l2);
}

Millis World::relay2_rtt_ms(HostId a, HostId r1, HostId r2, HostId b) const {
  Millis leg1 = host_rtt_ms(a, r1);
  Millis leg2 = host_rtt_ms(r1, r2);
  Millis leg3 = host_rtt_ms(r2, b);
  if (leg1 >= kUnreachableMs || leg2 >= kUnreachableMs || leg3 >= kUnreachableMs) {
    return kUnreachableMs;
  }
  return leg1 + leg2 + leg3 + 4.0 * params_.relay_delay_one_way_ms;
}

Millis World::cluster_rtt_ms(ClusterId a, ClusterId b) const {
  return host_rtt_ms(pop_->cluster(a).surrogate, pop_->cluster(b).surrogate);
}

double World::cluster_loss(ClusterId a, ClusterId b) const {
  return host_loss(pop_->cluster(a).surrogate, pop_->cluster(b).surrogate);
}

Rng World::fork_rng(std::uint64_t salt) const { return Rng(params_.seed).fork(salt + 100); }

}  // namespace asap::population
