# Empty dependencies file for asap_population.
# This may be replaced when dependencies are built.
