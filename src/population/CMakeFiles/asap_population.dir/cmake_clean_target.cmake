file(REMOVE_RECURSE
  "libasap_population.a"
)
