file(REMOVE_RECURSE
  "CMakeFiles/asap_population.dir/measurement.cpp.o"
  "CMakeFiles/asap_population.dir/measurement.cpp.o.d"
  "CMakeFiles/asap_population.dir/peer_population.cpp.o"
  "CMakeFiles/asap_population.dir/peer_population.cpp.o.d"
  "CMakeFiles/asap_population.dir/relay_directory.cpp.o"
  "CMakeFiles/asap_population.dir/relay_directory.cpp.o.d"
  "CMakeFiles/asap_population.dir/session_gen.cpp.o"
  "CMakeFiles/asap_population.dir/session_gen.cpp.o.d"
  "CMakeFiles/asap_population.dir/world.cpp.o"
  "CMakeFiles/asap_population.dir/world.cpp.o.d"
  "libasap_population.a"
  "libasap_population.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asap_population.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
