
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/population/measurement.cpp" "src/population/CMakeFiles/asap_population.dir/measurement.cpp.o" "gcc" "src/population/CMakeFiles/asap_population.dir/measurement.cpp.o.d"
  "/root/repo/src/population/peer_population.cpp" "src/population/CMakeFiles/asap_population.dir/peer_population.cpp.o" "gcc" "src/population/CMakeFiles/asap_population.dir/peer_population.cpp.o.d"
  "/root/repo/src/population/relay_directory.cpp" "src/population/CMakeFiles/asap_population.dir/relay_directory.cpp.o" "gcc" "src/population/CMakeFiles/asap_population.dir/relay_directory.cpp.o.d"
  "/root/repo/src/population/session_gen.cpp" "src/population/CMakeFiles/asap_population.dir/session_gen.cpp.o" "gcc" "src/population/CMakeFiles/asap_population.dir/session_gen.cpp.o.d"
  "/root/repo/src/population/world.cpp" "src/population/CMakeFiles/asap_population.dir/world.cpp.o" "gcc" "src/population/CMakeFiles/asap_population.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/netmodel/CMakeFiles/asap_netmodel.dir/DependInfo.cmake"
  "/root/repo/src/astopo/CMakeFiles/asap_astopo.dir/DependInfo.cmake"
  "/root/repo/src/common/CMakeFiles/asap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
