#include "population/relay_directory.h"

#include "population/nat.h"
#include "population/world.h"

namespace asap::population {

RelayDirectory build_relay_directory(const World& world) {
  const auto& pop = world.pop();
  const auto& graph = world.graph();
  const auto& populated = pop.populated_clusters();

  RelayDirectory dir;
  dir.clusters.reserve(populated.size());
  dir.relays.reserve(populated.size());
  dir.surrogates.reserve(populated.size());
  dir.relay_as.reserve(populated.size());
  dir.relay_access_one_way_ms.reserve(populated.size());
  dir.relay_capability.reserve(populated.size());
  dir.relay_capable.reserve(populated.size());
  dir.as_degree.reserve(populated.size());

  for (ClusterId c : populated) {
    const Cluster& cluster = pop.cluster(c);
    HostId relay = can_serve_as_relay(pop.peer(cluster.delegate).nat) ? cluster.delegate
                                                                      : cluster.surrogate;
    const Peer& relay_peer = pop.peer(relay);
    dir.clusters.push_back(c);
    dir.relays.push_back(relay);
    dir.surrogates.push_back(cluster.surrogate);
    dir.relay_as.push_back(relay_peer.as.value());
    dir.relay_access_one_way_ms.push_back(relay_peer.access_one_way_ms);
    dir.relay_capability.push_back(relay_peer.capacity);
    dir.relay_capable.push_back(cluster.relay_capable_members > 0 ? 1 : 0);
    dir.as_degree.push_back(static_cast<std::uint32_t>(graph.degree(cluster.as)));
  }
  return dir;
}

}  // namespace asap::population
