// Synthetic P2P peer population, substituting for the paper's Gnutella
// crawl (Sec. 3.1: 269,413 IPs -> 103,625 matched -> 7,171 prefix clusters
// in 1,461 ASes; evaluation worlds of 23,366 and 103,625 online peers).
//
// Host-bearing ASes are drawn mostly from stubs; prefixes are allocated so
// the cluster/AS ratio matches the paper (~5 prefixes per host AS); peers
// are spread over clusters with a Zipf-like skew reproducing the measured
// cluster-size distribution (Sec. 6.3: 90% of clusters hold <= 100 online
// hosts, the largest approach 1,000).
//
// Storage is structure-of-arrays: each peer attribute lives in its own
// column and every cluster's member/surrogate list is a span into one
// shared arena (offset + length), so a million-peer world costs ~40 bytes
// per peer instead of two heap vectors per cluster plus AoS padding. The
// historical accessors survive as thin value-returning shims: `peer()`
// assembles a `Peer` from the columns and `cluster()` returns a `Cluster`
// view whose member/surrogate lists are `std::span`s over the arena (see
// DESIGN.md §12).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "astopo/bgp_table.h"
#include "population/nat.h"
#include "astopo/prefix_trie.h"
#include "astopo/topology_gen.h"
#include "common/ids.h"
#include "common/ip.h"
#include "common/rng.h"
#include "common/units.h"

namespace asap::population {

struct PopulationParams {
  std::size_t host_as_count = 1461;
  std::size_t total_peers = 23366;
  // Zipf exponent for peer-to-cluster assignment (0 = uniform).
  double cluster_zipf_s = 0.95;
  // Last-mile one-way access delay: lognormal body plus a slow-host tail
  // (dial-up / saturated uplinks), which produces part of Fig. 2(a)'s tail.
  double access_median_ms = 4.0;
  double access_sigma = 0.6;
  double slow_host_fraction = 0.0005;
  double slow_access_min_ms = 30.0;
  double slow_access_max_ms = 50.0;
  // NAT modelling (off by default so the paper's latency-only evaluation is
  // unchanged). When enabled, peers draw a NAT type and only open peers can
  // relay or serve as surrogates; fractions roughly match 2005-era
  // measurements of consumer connectivity.
  bool nat_enabled = false;
  double nat_open_fraction = 0.25;
  double nat_restricted_fraction = 0.50;  // remainder is symmetric
  // Sec. 6.3: "for a few large clusters containing close to 1,000 online
  // end hosts, we can select multiple surrogates in them to share the
  // possible heavy load". One surrogate per `members_per_surrogate` hosts,
  // elected by capacity.
  std::size_t members_per_surrogate = 400;
  std::size_t max_surrogates_per_cluster = 8;
  astopo::PrefixAllocationParams prefix_alloc{
      /*min_prefixes_per_as=*/1, /*max_prefixes_per_as=*/2,
      /*extra_host_prefixes=*/3, /*min_prefix_len=*/18, /*max_prefix_len=*/24};
  // Sharded generation (opt-in): the per-peer draws come from fixed-size
  // shard RNG streams (forked by shard index) and per-cluster streams
  // (forked by cluster id) instead of one sequential stream, so generation
  // parallelizes and the world is bit-identical for ANY
  // `generation_threads` value — including 1. The sharded stream differs
  // from the legacy sequential stream, so the flag defaults to off and
  // every historical seed (and golden digest) is unchanged.
  bool sharded_generation = false;
  std::size_t generation_threads = 0;  // 0 = hardware concurrency
};

// Value view of one peer, assembled from the SoA columns on access.
struct Peer {
  Ipv4Addr ip;
  ClusterId cluster;
  AsId as;
  Millis access_one_way_ms = 0.0;
  // Abstract capability score (bandwidth x stability x CPU); surrogates are
  // the highest-capacity peers of their cluster (paper Sec. 6.1).
  double capacity = 1.0;
  // kOpen unless NAT modelling is enabled.
  NatType nat = NatType::kOpen;
};

// Value view of one cluster; `members`/`surrogates` are borrowed spans into
// the population's arena, valid for the population's lifetime. The spans
// observe later surrogate re-elections (they alias the live arena), so
// snapshot them into a vector before mutating if you need the old state.
struct Cluster {
  Prefix prefix;
  AsId as;
  std::span<const HostId> members;
  HostId delegate = HostId::invalid();   // measurement representative
  HostId surrogate = HostId::invalid();  // primary (highest-capacity member)
  // Members able to serve as relays (open NAT); == members.size() when NAT
  // modelling is off.
  std::size_t relay_capable_members = 0;
  // All serving surrogates, capacity-ordered; surrogates[0] == surrogate.
  // Large clusters get several to share close-set request load (Sec. 6.3).
  std::span<const HostId> surrogates;
};

class PeerPopulation {
 public:
  PeerPopulation(const astopo::Topology& topo, const PopulationParams& params, Rng& rng);

  [[nodiscard]] std::size_t peer_count() const { return peer_ip_.size(); }
  [[nodiscard]] std::size_t cluster_count() const { return cluster_as_.size(); }

  // Assembled value views (bind fine to `const Peer&` / `const Cluster&`).
  [[nodiscard]] Peer peer(HostId h) const {
    const auto i = h.value();
    return Peer{peer_ip_[i],       peer_cluster_[i],  peer_as_[i],
                peer_access_[i],   peer_capacity_[i], peer_nat_[i]};
  }
  [[nodiscard]] Cluster cluster(ClusterId c) const {
    const auto i = c.value();
    return Cluster{cluster_prefix_[i],        cluster_as_[i],
                   cluster_members(c),        cluster_delegate_[i],
                   cluster_surrogate_[i],     cluster_relay_capable_[i],
                   cluster_surrogates(c)};
  }

  // --- Hot-path column accessors (no struct assembly) ---------------------
  [[nodiscard]] Ipv4Addr peer_ip(HostId h) const { return peer_ip_[h.value()]; }
  [[nodiscard]] ClusterId peer_cluster(HostId h) const { return peer_cluster_[h.value()]; }
  [[nodiscard]] AsId peer_as(HostId h) const { return peer_as_[h.value()]; }
  [[nodiscard]] Millis peer_access_ms(HostId h) const { return peer_access_[h.value()]; }
  [[nodiscard]] double peer_capacity(HostId h) const { return peer_capacity_[h.value()]; }
  [[nodiscard]] NatType peer_nat(HostId h) const { return peer_nat_[h.value()]; }

  [[nodiscard]] std::span<const HostId> cluster_members(ClusterId c) const {
    const auto i = c.value();
    return {member_arena_.data() + member_off_[i], member_off_[i + 1] - member_off_[i]};
  }
  [[nodiscard]] std::span<const HostId> cluster_surrogates(ClusterId c) const {
    const auto i = c.value();
    return {surrogate_arena_.data() + surrogate_off_[i], surrogate_len_[i]};
  }
  [[nodiscard]] HostId cluster_surrogate(ClusterId c) const {
    return cluster_surrogate_[c.value()];
  }
  [[nodiscard]] AsId cluster_as(ClusterId c) const { return cluster_as_[c.value()]; }

  // Clusters with at least one member.
  [[nodiscard]] const std::vector<ClusterId>& populated_clusters() const {
    return populated_clusters_;
  }
  // Populated clusters located in a given AS (view into the CSR index).
  [[nodiscard]] std::span<const ClusterId> clusters_in_as(AsId as) const {
    const auto i = as.value();
    return {clusters_by_as_list_.data() + clusters_by_as_off_[i],
            clusters_by_as_off_[i + 1] - clusters_by_as_off_[i]};
  }
  // ASes that contain at least one peer.
  [[nodiscard]] const std::vector<AsId>& host_ases() const { return host_ases_; }

  // Longest-prefix-match grouping of an arbitrary IP (paper Sec. 3.1).
  [[nodiscard]] std::optional<ClusterId> cluster_of_ip(Ipv4Addr ip) const;

  [[nodiscard]] const astopo::PrefixAllocation& prefix_allocation() const { return alloc_; }

  // Re-elects the surrogate of `c` excluding `failed` (bootstrap failover
  // path); returns the new surrogate or invalid if the cluster emptied.
  HostId elect_surrogate(ClusterId c, HostId failed);

  // The surrogate a given member should direct its requests to (static
  // sharding over the cluster's surrogate set).
  [[nodiscard]] HostId assigned_surrogate(ClusterId c, HostId member) const;

  // Whether a direct session between two peers can be established at all
  // (always true when NAT modelling is off).
  [[nodiscard]] bool direct_possible(HostId a, HostId b) const {
    return can_connect_direct(peer_nat_[a.value()], peer_nat_[b.value()]);
  }

  // Exact resident footprint of the population's own storage (columns,
  // arenas, indices; excludes the prefix allocation/trie shared with the
  // BGP layer). Deterministic — pure element-size arithmetic, no allocator
  // or machine dependence — so benches can gate a bytes/peer ceiling on it.
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  // Draws one peer's attributes into the columns at index `p` (identical
  // draw sequence to the historical AoS loop body).
  void draw_peer(std::uint32_t p, const PopulationParams& params,
                 const std::vector<std::size_t>& order, Rng& rng);
  // Counting sort of peers into the member arena (reproduces push_back
  // order: peers appear in HostId order within each cluster) and the
  // populated-cluster list.
  void build_member_arena();
  // Sizes every cluster's surrogate-arena slice (count depends only on the
  // member count, so slices can be laid out before election runs).
  void plan_surrogate_slots(const PopulationParams& params);
  // Delegate draw + relay-capable count + surrogate election for one
  // populated cluster; fills the precomputed surrogate-arena slice.
  void elect_officials_for(ClusterId c, Rng& rng, std::vector<HostId>& scratch);

  astopo::PrefixAllocation alloc_;

  // Peer columns (index = HostId).
  std::vector<Ipv4Addr> peer_ip_;
  std::vector<ClusterId> peer_cluster_;
  std::vector<AsId> peer_as_;
  std::vector<double> peer_access_;
  std::vector<double> peer_capacity_;
  std::vector<NatType> peer_nat_;

  // Cluster columns (index = ClusterId).
  std::vector<Prefix> cluster_prefix_;
  std::vector<AsId> cluster_as_;
  std::vector<HostId> cluster_delegate_;
  std::vector<HostId> cluster_surrogate_;
  std::vector<std::uint32_t> cluster_relay_capable_;

  // Member arena: cluster c's members live at
  // member_arena_[member_off_[c] .. member_off_[c+1]), in HostId order
  // (identical to the historical push_back order). Immutable after build.
  std::vector<HostId> member_arena_;
  std::vector<std::uint32_t> member_off_;
  // Surrogate arena: offset + live length per cluster. Mutable: surrogate
  // re-election edits entries in place and can shrink a cluster's length,
  // never grow it past the initially elected count.
  std::vector<HostId> surrogate_arena_;
  std::vector<std::uint32_t> surrogate_off_;
  std::vector<std::uint32_t> surrogate_len_;

  std::vector<ClusterId> populated_clusters_;
  std::vector<AsId> host_ases_;
  // CSR index of populated clusters per AS (offset + list), replacing the
  // per-AS vector-of-vectors.
  std::vector<std::uint32_t> clusters_by_as_off_;
  std::vector<ClusterId> clusters_by_as_list_;
  astopo::PrefixTrie<ClusterId> trie_;
};

}  // namespace asap::population
