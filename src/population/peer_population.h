// Synthetic P2P peer population, substituting for the paper's Gnutella
// crawl (Sec. 3.1: 269,413 IPs -> 103,625 matched -> 7,171 prefix clusters
// in 1,461 ASes; evaluation worlds of 23,366 and 103,625 online peers).
//
// Host-bearing ASes are drawn mostly from stubs; prefixes are allocated so
// the cluster/AS ratio matches the paper (~5 prefixes per host AS); peers
// are spread over clusters with a Zipf-like skew reproducing the measured
// cluster-size distribution (Sec. 6.3: 90% of clusters hold <= 100 online
// hosts, the largest approach 1,000).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "astopo/bgp_table.h"
#include "population/nat.h"
#include "astopo/prefix_trie.h"
#include "astopo/topology_gen.h"
#include "common/ids.h"
#include "common/ip.h"
#include "common/rng.h"
#include "common/units.h"

namespace asap::population {

struct PopulationParams {
  std::size_t host_as_count = 1461;
  std::size_t total_peers = 23366;
  // Zipf exponent for peer-to-cluster assignment (0 = uniform).
  double cluster_zipf_s = 0.95;
  // Last-mile one-way access delay: lognormal body plus a slow-host tail
  // (dial-up / saturated uplinks), which produces part of Fig. 2(a)'s tail.
  double access_median_ms = 4.0;
  double access_sigma = 0.6;
  double slow_host_fraction = 0.0005;
  double slow_access_min_ms = 30.0;
  double slow_access_max_ms = 50.0;
  // NAT modelling (off by default so the paper's latency-only evaluation is
  // unchanged). When enabled, peers draw a NAT type and only open peers can
  // relay or serve as surrogates; fractions roughly match 2005-era
  // measurements of consumer connectivity.
  bool nat_enabled = false;
  double nat_open_fraction = 0.25;
  double nat_restricted_fraction = 0.50;  // remainder is symmetric
  // Sec. 6.3: "for a few large clusters containing close to 1,000 online
  // end hosts, we can select multiple surrogates in them to share the
  // possible heavy load". One surrogate per `members_per_surrogate` hosts,
  // elected by capacity.
  std::size_t members_per_surrogate = 400;
  std::size_t max_surrogates_per_cluster = 8;
  astopo::PrefixAllocationParams prefix_alloc{
      /*min_prefixes_per_as=*/1, /*max_prefixes_per_as=*/2,
      /*extra_host_prefixes=*/3, /*min_prefix_len=*/18, /*max_prefix_len=*/24};
};

struct Peer {
  Ipv4Addr ip;
  ClusterId cluster;
  AsId as;
  Millis access_one_way_ms = 0.0;
  // Abstract capability score (bandwidth x stability x CPU); surrogates are
  // the highest-capacity peers of their cluster (paper Sec. 6.1).
  double capacity = 1.0;
  // kOpen unless NAT modelling is enabled.
  NatType nat = NatType::kOpen;
};

struct Cluster {
  Prefix prefix;
  AsId as;
  std::vector<HostId> members;
  HostId delegate = HostId::invalid();   // measurement representative
  HostId surrogate = HostId::invalid();  // primary (highest-capacity member)
  // Members able to serve as relays (open NAT); == members.size() when NAT
  // modelling is off.
  std::size_t relay_capable_members = 0;
  // All serving surrogates, capacity-ordered; surrogates[0] == surrogate.
  // Large clusters get several to share close-set request load (Sec. 6.3).
  std::vector<HostId> surrogates;
};

class PeerPopulation {
 public:
  PeerPopulation(const astopo::Topology& topo, const PopulationParams& params, Rng& rng);

  [[nodiscard]] const std::vector<Peer>& peers() const { return peers_; }
  [[nodiscard]] const std::vector<Cluster>& clusters() const { return clusters_; }
  [[nodiscard]] const Peer& peer(HostId h) const { return peers_[h.value()]; }
  [[nodiscard]] const Cluster& cluster(ClusterId c) const { return clusters_[c.value()]; }

  // Clusters with at least one member.
  [[nodiscard]] const std::vector<ClusterId>& populated_clusters() const {
    return populated_clusters_;
  }
  // Populated clusters located in a given AS.
  [[nodiscard]] const std::vector<ClusterId>& clusters_in_as(AsId as) const;
  // ASes that contain at least one peer.
  [[nodiscard]] const std::vector<AsId>& host_ases() const { return host_ases_; }

  // Longest-prefix-match grouping of an arbitrary IP (paper Sec. 3.1).
  [[nodiscard]] std::optional<ClusterId> cluster_of_ip(Ipv4Addr ip) const;

  [[nodiscard]] const astopo::PrefixAllocation& prefix_allocation() const { return alloc_; }

  // Re-elects the surrogate of `c` excluding `failed` (bootstrap failover
  // path); returns the new surrogate or invalid if the cluster emptied.
  HostId elect_surrogate(ClusterId c, HostId failed);

  // The surrogate a given member should direct its requests to (static
  // sharding over the cluster's surrogate set).
  [[nodiscard]] HostId assigned_surrogate(ClusterId c, HostId member) const;

  // Whether a direct session between two peers can be established at all
  // (always true when NAT modelling is off).
  [[nodiscard]] bool direct_possible(HostId a, HostId b) const {
    return can_connect_direct(peers_[a.value()].nat, peers_[b.value()].nat);
  }

 private:
  astopo::PrefixAllocation alloc_;
  std::vector<Peer> peers_;
  std::vector<Cluster> clusters_;
  std::vector<ClusterId> populated_clusters_;
  std::vector<AsId> host_ases_;
  std::vector<std::vector<ClusterId>> clusters_by_as_;
  astopo::PrefixTrie<ClusterId> trie_;
};

}  // namespace asap::population
