// RelayDirectory: a structure-of-arrays snapshot of every populated
// cluster's relay-relevant facts, built once per World and shared by all
// relay-selection methods.
//
// Before this existed, OptSelector re-derived the same five facts (effective
// relay host, NAT fallback, relay capability, AS id, access delay) for every
// populated cluster on *every session*, and dedicated_nodes() re-sorted the
// cluster list per selector — hundreds of thousands of redundant Peer /
// Cluster loads per evaluation. The directory hoists them into flat arrays
// (index-aligned, same order as PeerPopulation::populated_clusters()), so
// the per-session work collapses to a linear SoA scan that feeds the
// World::batch_* query layer.
//
// The directory is immutable after construction, hence trivially shareable
// across evaluation worker threads.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/units.h"

namespace asap::population {

class World;

struct RelayDirectory {
  // All arrays are index-aligned with populated_clusters() (entry i
  // describes populated_clusters()[i]).
  std::vector<ClusterId> clusters;
  // The cluster's effective one-hop relay: the delegate when it is openly
  // reachable, otherwise the surrogate (OptSelector's NAT fallback rule).
  std::vector<HostId> relays;
  // The cluster's primary surrogate (DEDI's deployment target).
  std::vector<HostId> surrogates;
  // The effective relay's AS id (raw value, ready for table indexing).
  std::vector<std::uint32_t> relay_as;
  // The effective relay's one-way last-mile access delay.
  std::vector<Millis> relay_access_one_way_ms;
  // The effective relay's abstract capability score (Peer::capacity) —
  // feeds the protocol runtime's concurrent-stream caps and any
  // capability-weighted selection policy.
  std::vector<double> relay_capability;
  // Whether the cluster holds at least one relay-capable (open-NAT) member;
  // clusters with none are skipped by every selection method.
  std::vector<std::uint8_t> relay_capable;
  // AS connection degree of the cluster's AS (dedicated_nodes' sort key).
  std::vector<std::uint32_t> as_degree;

  [[nodiscard]] std::size_t size() const { return clusters.size(); }
};

// Builds the directory for `world` (one linear pass over the populated
// clusters). Prefer World::relay_directory(), which builds lazily and
// caches.
RelayDirectory build_relay_directory(const World& world);

}  // namespace asap::population
