#include "population/peer_population.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "common/thread_pool.h"

namespace asap::population {

namespace {

// Sharded-generation contract: peer draws come from one forked stream per
// fixed-size block of kGenShardSize peer ids, cluster-official draws from
// one forked stream per cluster id. Both depend only on ids, never on
// thread count or execution order, so any `generation_threads` value
// (including 1) produces the identical world.
constexpr std::size_t kGenShardSize = 8192;
constexpr std::uint64_t kPeerStreamSalt = 0x70656572;     // "peer"
constexpr std::uint64_t kClusterStreamSalt = 0x636C7573;  // "clus"

}  // namespace

PeerPopulation::PeerPopulation(const astopo::Topology& topo, const PopulationParams& params,
                               Rng& rng) {
  const astopo::AsGraph& graph = topo.graph;

  // Host ASes: mostly stubs, some tier-2 (eyeball networks behind transit).
  std::vector<AsId> pool = topo.stubs;
  std::size_t tier2_share = params.host_as_count / 10;
  {
    auto picks = rng.sample_indices(topo.tier2.size(),
                                    std::min(tier2_share, topo.tier2.size()));
    for (auto i : picks) pool.push_back(topo.tier2[i]);
  }
  rng.shuffle(pool);
  std::size_t host_count = std::min(params.host_as_count, pool.size());
  std::vector<AsId> chosen(pool.begin(), pool.begin() + host_count);

  alloc_ = astopo::allocate_prefixes(graph, chosen, params.prefix_alloc, rng);

  // Clusters are the prefixes of host ASes.
  std::vector<bool> is_host(graph.as_count(), false);
  for (AsId a : chosen) is_host[a.value()] = true;
  for (const auto& [prefix, as] : alloc_.prefixes) {
    if (!is_host[as.value()]) continue;
    ClusterId id(static_cast<std::uint32_t>(cluster_as_.size()));
    cluster_prefix_.push_back(prefix);
    cluster_as_.push_back(as);
    trie_.insert(prefix, id);
  }
  const std::size_t clusters = cluster_as_.size();
  cluster_delegate_.assign(clusters, HostId::invalid());
  cluster_surrogate_.assign(clusters, HostId::invalid());
  cluster_relay_capable_.assign(clusters, 0);

  // Zipf weights over a shuffled cluster order (so big clusters are not
  // correlated with allocation order).
  std::vector<std::size_t> order(clusters);
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);

  const std::size_t n = params.total_peers;
  peer_ip_.resize(n);
  peer_cluster_.resize(n);
  peer_as_.resize(n);
  peer_access_.resize(n);
  peer_capacity_.resize(n);
  peer_nat_.assign(n, NatType::kOpen);

  if (params.sharded_generation) {
    ThreadPool gen_pool(params.generation_threads);
    const Rng peer_base = rng.fork(kPeerStreamSalt);
    const std::size_t shards = (n + kGenShardSize - 1) / kGenShardSize;
    gen_pool.parallel_for(shards, [&](std::size_t s) {
      Rng shard_rng = peer_base.fork(s);
      const std::size_t end = std::min(n, (s + 1) * kGenShardSize);
      for (std::size_t p = s * kGenShardSize; p < end; ++p) {
        draw_peer(static_cast<std::uint32_t>(p), params, order, shard_rng);
      }
    });
    build_member_arena();
    plan_surrogate_slots(params);
    const Rng cluster_base = rng.fork(kClusterStreamSalt);
    gen_pool.parallel_for(populated_clusters_.size(), [&](std::size_t i) {
      ClusterId c = populated_clusters_[i];
      Rng cluster_rng = cluster_base.fork(c.value());
      thread_local std::vector<HostId> scratch;
      elect_officials_for(c, cluster_rng, scratch);
    });
  } else {
    // Legacy sequential stream: one draw sequence shared by every peer and
    // cluster, byte-for-byte identical to the historical AoS generator.
    for (std::size_t p = 0; p < n; ++p) {
      draw_peer(static_cast<std::uint32_t>(p), params, order, rng);
    }
    build_member_arena();
    plan_surrogate_slots(params);
    std::vector<HostId> scratch;
    for (ClusterId c : populated_clusters_) elect_officials_for(c, rng, scratch);
  }

  // Per-AS populated-cluster CSR index + host-AS list (first-seen order over
  // ascending cluster id, matching the historical push_back construction).
  std::vector<std::uint32_t> as_counts(graph.as_count(), 0);
  std::vector<bool> as_seen(graph.as_count(), false);
  for (ClusterId c : populated_clusters_) {
    const AsId as = cluster_as_[c.value()];
    ++as_counts[as.value()];
    if (!as_seen[as.value()]) {
      as_seen[as.value()] = true;
      host_ases_.push_back(as);
    }
  }
  clusters_by_as_off_.assign(graph.as_count() + 1, 0);
  for (std::size_t a = 0; a < as_counts.size(); ++a) {
    clusters_by_as_off_[a + 1] = clusters_by_as_off_[a] + as_counts[a];
  }
  clusters_by_as_list_.resize(populated_clusters_.size());
  {
    std::vector<std::uint32_t> cursor(clusters_by_as_off_.begin(),
                                      clusters_by_as_off_.end() - 1);
    for (ClusterId c : populated_clusters_) {
      clusters_by_as_list_[cursor[cluster_as_[c.value()].value()]++] = c;
    }
  }
}

void PeerPopulation::draw_peer(std::uint32_t p, const PopulationParams& params,
                               const std::vector<std::size_t>& order, Rng& rng) {
  std::size_t rank = rng.zipf(order.size(), params.cluster_zipf_s);
  ClusterId c(static_cast<std::uint32_t>(order[rank]));
  const Prefix& prefix = cluster_prefix_[c.value()];
  // Host address: random host bits inside the cluster prefix.
  std::uint32_t host_bits = 0;
  int free_bits = 32 - prefix.length();
  if (free_bits > 0) {
    host_bits = static_cast<std::uint32_t>(rng.below(std::uint64_t{1} << free_bits));
  }
  peer_ip_[p] = Ipv4Addr(prefix.address().bits() | host_bits);
  peer_cluster_[p] = c;
  peer_as_[p] = cluster_as_[c.value()];
  peer_access_[p] =
      rng.chance(params.slow_host_fraction)
          ? rng.uniform(params.slow_access_min_ms, params.slow_access_max_ms)
          : rng.lognormal(params.access_median_ms, params.access_sigma);
  peer_capacity_[p] = rng.lognormal(1.0, 1.0);
  if (params.nat_enabled) {
    double draw = rng.uniform();
    if (draw < params.nat_open_fraction) {
      peer_nat_[p] = NatType::kOpen;
    } else if (draw < params.nat_open_fraction + params.nat_restricted_fraction) {
      peer_nat_[p] = NatType::kPortRestricted;
    } else {
      peer_nat_[p] = NatType::kSymmetric;
    }
  }
}

void PeerPopulation::build_member_arena() {
  const std::size_t clusters = cluster_as_.size();
  member_off_.assign(clusters + 1, 0);
  for (ClusterId c : peer_cluster_) ++member_off_[c.value() + 1];
  for (std::size_t i = 1; i <= clusters; ++i) member_off_[i] += member_off_[i - 1];
  member_arena_.resize(peer_cluster_.size());
  std::vector<std::uint32_t> cursor(member_off_.begin(), member_off_.end() - 1);
  for (std::uint32_t p = 0; p < peer_cluster_.size(); ++p) {
    member_arena_[cursor[peer_cluster_[p].value()]++] = HostId(p);
  }
  populated_clusters_.reserve(clusters);
  for (std::uint32_t ci = 0; ci < clusters; ++ci) {
    if (member_off_[ci + 1] > member_off_[ci]) populated_clusters_.push_back(ClusterId(ci));
  }
}

void PeerPopulation::plan_surrogate_slots(const PopulationParams& params) {
  const std::size_t clusters = cluster_as_.size();
  surrogate_off_.assign(clusters, 0);
  surrogate_len_.assign(clusters, 0);
  std::uint32_t total = 0;
  for (std::uint32_t ci = 0; ci < clusters; ++ci) {
    surrogate_off_[ci] = total;
    const std::size_t members = member_off_[ci + 1] - member_off_[ci];
    if (members == 0) continue;
    // Sec. 6.3: one surrogate per `members_per_surrogate` hosts (at least
    // one; capped by policy and by the cluster size itself).
    std::size_t count =
        1 + (members - 1) / std::max<std::size_t>(params.members_per_surrogate, 1);
    count = std::min({count, params.max_surrogates_per_cluster, members});
    surrogate_len_[ci] = static_cast<std::uint32_t>(count);
    total += static_cast<std::uint32_t>(count);
  }
  surrogate_arena_.assign(total, HostId::invalid());
}

void PeerPopulation::elect_officials_for(ClusterId c, Rng& rng,
                                         std::vector<HostId>& scratch) {
  const std::uint32_t ci = c.value();
  const std::span<const HostId> members = cluster_members(c);
  cluster_delegate_[ci] = members[rng.index_of(members)];
  cluster_relay_capable_[ci] = static_cast<std::uint32_t>(
      std::count_if(members.begin(), members.end(),
                    [this](HostId h) { return can_serve_as_relay(peer_nat_[h.value()]); }));
  // Surrogates: the top-capacity members. Openly reachable peers come first —
  // a NATed surrogate could not accept close-set requests — with a capacity
  // fallback when the whole cluster is NATed.
  const std::uint32_t count = surrogate_len_[ci];
  scratch.assign(members.begin(), members.end());
  std::partial_sort(scratch.begin(), scratch.begin() + count, scratch.end(),
                    [this](HostId a, HostId b) {
                      bool ra = can_serve_as_relay(peer_nat_[a.value()]);
                      bool rb = can_serve_as_relay(peer_nat_[b.value()]);
                      if (ra != rb) return ra;
                      return peer_capacity_[a.value()] > peer_capacity_[b.value()];
                    });
  std::copy(scratch.begin(), scratch.begin() + count,
            surrogate_arena_.begin() + surrogate_off_[ci]);
  cluster_surrogate_[ci] = surrogate_arena_[surrogate_off_[ci]];
}

HostId PeerPopulation::assigned_surrogate(ClusterId c, HostId member) const {
  const std::span<const HostId> surrogates = cluster_surrogates(c);
  if (surrogates.empty()) return HostId::invalid();
  // Stable shard: members hash over the surrogate set.
  std::size_t shard = member.value() % surrogates.size();
  return surrogates[shard];
}

std::optional<ClusterId> PeerPopulation::cluster_of_ip(Ipv4Addr ip) const {
  return trie_.lookup(ip);
}

HostId PeerPopulation::elect_surrogate(ClusterId c, HostId failed) {
  const std::uint32_t ci = c.value();
  const std::span<const HostId> members = cluster_members(c);
  HostId* surr = surrogate_arena_.data() + surrogate_off_[ci];
  std::uint32_t& len = surrogate_len_[ci];
  HostId best = HostId::invalid();
  double best_capacity = -1.0;
  for (HostId h : members) {
    if (h == failed) continue;
    // Prefer hosts not already serving as surrogates.
    bool already = std::find(surr, surr + len, h) != surr + len;
    if (already) continue;
    if (peer_capacity_[h.value()] > best_capacity) {
      best_capacity = peer_capacity_[h.value()];
      best = h;
    }
  }
  // Replace the failed entry in the surrogate slice (or shrink its length;
  // the arena slot past `len` simply goes unused).
  for (std::uint32_t i = 0; i < len; ++i) {
    if (surr[i] != failed) continue;
    if (best.valid()) {
      surr[i] = best;
    } else {
      for (std::uint32_t j = i + 1; j < len; ++j) surr[j - 1] = surr[j];
      --len;
    }
    break;
  }
  if (cluster_surrogate_[ci] == failed) {
    cluster_surrogate_[ci] = (len == 0) ? best : surr[0];
  }
  return cluster_surrogate_[ci];
}

std::size_t PeerPopulation::memory_bytes() const {
  auto bytes = [](const auto& v) { return v.size() * sizeof(v[0]); };
  return bytes(peer_ip_) + bytes(peer_cluster_) + bytes(peer_as_) + bytes(peer_access_) +
         bytes(peer_capacity_) + bytes(peer_nat_) + bytes(cluster_prefix_) +
         bytes(cluster_as_) + bytes(cluster_delegate_) + bytes(cluster_surrogate_) +
         bytes(cluster_relay_capable_) + bytes(member_arena_) + bytes(member_off_) +
         bytes(surrogate_arena_) + bytes(surrogate_off_) + bytes(surrogate_len_) +
         bytes(populated_clusters_) + bytes(host_ases_) + bytes(clusters_by_as_off_) +
         bytes(clusters_by_as_list_);
}

}  // namespace asap::population
