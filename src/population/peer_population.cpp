#include "population/peer_population.h"

#include <algorithm>
#include <cassert>

namespace asap::population {

PeerPopulation::PeerPopulation(const astopo::Topology& topo, const PopulationParams& params,
                               Rng& rng) {
  const astopo::AsGraph& graph = topo.graph;

  // Host ASes: mostly stubs, some tier-2 (eyeball networks behind transit).
  std::vector<AsId> pool = topo.stubs;
  std::size_t tier2_share = params.host_as_count / 10;
  {
    auto picks = rng.sample_indices(topo.tier2.size(),
                                    std::min(tier2_share, topo.tier2.size()));
    for (auto i : picks) pool.push_back(topo.tier2[i]);
  }
  rng.shuffle(pool);
  std::size_t host_count = std::min(params.host_as_count, pool.size());
  std::vector<AsId> chosen(pool.begin(), pool.begin() + host_count);

  alloc_ = astopo::allocate_prefixes(graph, chosen, params.prefix_alloc, rng);

  // Clusters are the prefixes of host ASes.
  std::vector<bool> is_host(graph.as_count(), false);
  for (AsId a : chosen) is_host[a.value()] = true;
  for (const auto& [prefix, as] : alloc_.prefixes) {
    if (!is_host[as.value()]) continue;
    ClusterId id(static_cast<std::uint32_t>(clusters_.size()));
    clusters_.push_back(
        Cluster{prefix, as, {}, HostId::invalid(), HostId::invalid(), 0, {}});
    trie_.insert(prefix, id);
  }

  // Zipf weights over a shuffled cluster order (so big clusters are not
  // correlated with allocation order).
  std::vector<std::size_t> order(clusters_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);

  peers_.reserve(params.total_peers);
  for (std::size_t p = 0; p < params.total_peers; ++p) {
    std::size_t rank = rng.zipf(order.size(), params.cluster_zipf_s);
    ClusterId c(static_cast<std::uint32_t>(order[rank]));
    Cluster& cluster = clusters_[c.value()];
    // Host address: random host bits inside the cluster prefix.
    std::uint32_t host_bits = 0;
    int free_bits = 32 - cluster.prefix.length();
    if (free_bits > 0) {
      host_bits = static_cast<std::uint32_t>(rng.below(std::uint64_t{1} << free_bits));
    }
    Peer peer;
    peer.ip = Ipv4Addr(cluster.prefix.address().bits() | host_bits);
    peer.cluster = c;
    peer.as = cluster.as;
    peer.access_one_way_ms =
        rng.chance(params.slow_host_fraction)
            ? rng.uniform(params.slow_access_min_ms, params.slow_access_max_ms)
            : rng.lognormal(params.access_median_ms, params.access_sigma);
    peer.capacity = rng.lognormal(1.0, 1.0);
    if (params.nat_enabled) {
      double draw = rng.uniform();
      if (draw < params.nat_open_fraction) {
        peer.nat = NatType::kOpen;
      } else if (draw < params.nat_open_fraction + params.nat_restricted_fraction) {
        peer.nat = NatType::kPortRestricted;
      } else {
        peer.nat = NatType::kSymmetric;
      }
    }
    HostId h(static_cast<std::uint32_t>(peers_.size()));
    peers_.push_back(peer);
    cluster.members.push_back(h);
  }

  // Delegates, surrogates, per-AS cluster index, host-AS list.
  clusters_by_as_.resize(graph.as_count());
  std::vector<bool> as_seen(graph.as_count(), false);
  for (std::uint32_t ci = 0; ci < clusters_.size(); ++ci) {
    Cluster& c = clusters_[ci];
    if (c.members.empty()) continue;
    ClusterId id(ci);
    populated_clusters_.push_back(id);
    clusters_by_as_[c.as.value()].push_back(id);
    if (!as_seen[c.as.value()]) {
      as_seen[c.as.value()] = true;
      host_ases_.push_back(c.as);
    }
    c.delegate = c.members[rng.index_of(c.members)];
    c.relay_capable_members = static_cast<std::size_t>(
        std::count_if(c.members.begin(), c.members.end(), [this](HostId h) {
          return can_serve_as_relay(peers_[h.value()].nat);
        }));
    // Surrogates: the top-capacity members, one per `members_per_surrogate`
    // hosts (at least one; capped). Openly reachable peers come first —
    // a NATed surrogate could not accept close-set requests — with a
    // capacity fallback when the whole cluster is NATed.
    std::size_t surrogate_count =
        1 + (c.members.size() - 1) / std::max<std::size_t>(params.members_per_surrogate, 1);
    surrogate_count = std::min({surrogate_count, params.max_surrogates_per_cluster,
                                c.members.size()});
    std::vector<HostId> by_capacity = c.members;
    std::partial_sort(by_capacity.begin(), by_capacity.begin() + surrogate_count,
                      by_capacity.end(), [this](HostId a, HostId b) {
                        bool ra = can_serve_as_relay(peers_[a.value()].nat);
                        bool rb = can_serve_as_relay(peers_[b.value()].nat);
                        if (ra != rb) return ra;
                        return peers_[a.value()].capacity > peers_[b.value()].capacity;
                      });
    c.surrogates.assign(by_capacity.begin(), by_capacity.begin() + surrogate_count);
    c.surrogate = c.surrogates.front();
  }
}

HostId PeerPopulation::assigned_surrogate(ClusterId c, HostId member) const {
  const Cluster& cluster = clusters_[c.value()];
  if (cluster.surrogates.empty()) return HostId::invalid();
  // Stable shard: members hash over the surrogate set.
  std::size_t shard = member.value() % cluster.surrogates.size();
  return cluster.surrogates[shard];
}

const std::vector<ClusterId>& PeerPopulation::clusters_in_as(AsId as) const {
  return clusters_by_as_[as.value()];
}

std::optional<ClusterId> PeerPopulation::cluster_of_ip(Ipv4Addr ip) const {
  return trie_.lookup(ip);
}

HostId PeerPopulation::elect_surrogate(ClusterId c, HostId failed) {
  Cluster& cluster = clusters_[c.value()];
  HostId best = HostId::invalid();
  double best_capacity = -1.0;
  for (HostId h : cluster.members) {
    if (h == failed) continue;
    // Prefer hosts not already serving as surrogates.
    bool already = std::find(cluster.surrogates.begin(), cluster.surrogates.end(), h) !=
                   cluster.surrogates.end();
    if (already && h != failed) continue;
    if (peers_[h.value()].capacity > best_capacity) {
      best_capacity = peers_[h.value()].capacity;
      best = h;
    }
  }
  // Replace the failed entry in the surrogate set (or shrink it).
  for (auto& s : cluster.surrogates) {
    if (s == failed) {
      if (best.valid()) {
        s = best;
      } else {
        cluster.surrogates.erase(
            std::remove(cluster.surrogates.begin(), cluster.surrogates.end(), failed),
            cluster.surrogates.end());
      }
      break;
    }
  }
  if (cluster.surrogate == failed) {
    cluster.surrogate = cluster.surrogates.empty() ? best : cluster.surrogates.front();
  }
  return cluster.surrogate;
}

}  // namespace asap::population
