file(REMOVE_RECURSE
  "libasap_voip.a"
)
