
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/voip/dynamics.cpp" "src/voip/CMakeFiles/asap_voip.dir/dynamics.cpp.o" "gcc" "src/voip/CMakeFiles/asap_voip.dir/dynamics.cpp.o.d"
  "/root/repo/src/voip/emodel.cpp" "src/voip/CMakeFiles/asap_voip.dir/emodel.cpp.o" "gcc" "src/voip/CMakeFiles/asap_voip.dir/emodel.cpp.o.d"
  "/root/repo/src/voip/jitter_buffer.cpp" "src/voip/CMakeFiles/asap_voip.dir/jitter_buffer.cpp.o" "gcc" "src/voip/CMakeFiles/asap_voip.dir/jitter_buffer.cpp.o.d"
  "/root/repo/src/voip/path_switching.cpp" "src/voip/CMakeFiles/asap_voip.dir/path_switching.cpp.o" "gcc" "src/voip/CMakeFiles/asap_voip.dir/path_switching.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/common/CMakeFiles/asap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
