file(REMOVE_RECURSE
  "CMakeFiles/asap_voip.dir/dynamics.cpp.o"
  "CMakeFiles/asap_voip.dir/dynamics.cpp.o.d"
  "CMakeFiles/asap_voip.dir/emodel.cpp.o"
  "CMakeFiles/asap_voip.dir/emodel.cpp.o.d"
  "CMakeFiles/asap_voip.dir/jitter_buffer.cpp.o"
  "CMakeFiles/asap_voip.dir/jitter_buffer.cpp.o.d"
  "CMakeFiles/asap_voip.dir/path_switching.cpp.o"
  "CMakeFiles/asap_voip.dir/path_switching.cpp.o.d"
  "libasap_voip.a"
  "libasap_voip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asap_voip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
