# Empty dependencies file for asap_voip.
# This may be replaced when dependencies are built.
