// VoIP quality predicates shared by the evaluation harnesses.
#pragma once

#include "voip/emodel.h"
#include "common/units.h"

namespace asap::voip {

// The paper calls a relay path a "quality path" when its RTT meets the
// 300 ms requirement (Sec. 7.1 metric 1).
[[nodiscard]] constexpr bool is_quality_rtt(Millis rtt_ms) {
  return rtt_ms < kQualityRttThresholdMs;
}

// User-satisfaction verdict for a full path (RTT + loss) under a codec.
[[nodiscard]] inline bool is_satisfactory(const EModel& model, Millis rtt_ms, double loss) {
  return is_quality_rtt(rtt_ms) && model.mos_for_rtt(rtt_ms, loss) >= kMosSatisfactionThreshold;
}

}  // namespace asap::voip
