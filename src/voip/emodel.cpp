#include "voip/emodel.h"

#include <algorithm>
#include <cmath>

namespace asap::voip {

double EModel::delay_impairment(Millis d) const {
  double id = 0.024 * d;
  if (d > 177.3) id += 0.11 * (d - 177.3);
  return id;
}

double EModel::loss_impairment(double loss) const {
  double ppl = std::clamp(loss, 0.0, 1.0) * 100.0;
  return codec_.ie + (95.0 - codec_.ie) * ppl / (ppl + codec_.bpl);
}

double EModel::r_factor(Millis network_one_way_ms, double loss) const {
  Millis mouth_to_ear = network_one_way_ms + codec_.codec_delay_ms + params_.playout_buffer_ms;
  double r = params_.r0 - params_.is - delay_impairment(mouth_to_ear) - loss_impairment(loss) +
             params_.advantage;
  return std::clamp(r, 0.0, 100.0);
}

double EModel::mos_from_r(double r) {
  if (r <= 0.0) return 1.0;
  if (r >= 100.0) return 4.5;
  double mos = 1.0 + 0.035 * r + 7.0e-6 * r * (r - 60.0) * (100.0 - r);
  // G.107's cubic dips slightly below 1 for very small R; MOS is defined on
  // [1, 4.5], so clamp.
  return std::clamp(mos, 1.0, 4.5);
}

double EModel::mos_for_rtt(Millis rtt_ms, double loss) const {
  return mos_from_r(r_factor(rtt_ms / 2.0, loss));
}

}  // namespace asap::voip
