// Playout (jitter) buffer simulation.
//
// The E-Model's delay term assumes a fixed playout buffer; this module
// closes the loop: given per-packet network delays (base one-way + jitter),
// a buffer of depth D plays packet i at send_time + D — packets arriving
// later than their playout instant are late-lost. Deeper buffers trade
// delay impairment for late loss; `sweep()` exposes that trade-off and
// `best_depth()` picks the MOS-optimal operating point, which is how an
// adaptive endpoint would size its buffer on a measured path.
#pragma once

#include <cstdint>
#include <vector>

#include "voip/emodel.h"
#include "common/metrics.h"
#include "common/rng.h"

namespace asap::voip {

struct JitterParams {
  double frame_interval_ms = 20.0;  // 50 pps
  // Per-packet jitter: exponential with this mean added to the base one-way
  // delay (a standard single-sided jitter model).
  double jitter_mean_ms = 8.0;
  // A small fraction of packets are delayed much harder (bufferbloat spikes).
  double spike_fraction = 0.01;
  double spike_ms = 120.0;
};

// Result of playing a stream through one buffer depth.
struct PlayoutResult {
  Millis buffer_depth_ms = 0.0;
  double late_loss = 0.0;        // fraction of packets missing their slot
  Millis mouth_to_ear_ms = 0.0;  // network one-way + buffer depth
  double mos = 1.0;              // E-Model MOS incl. late + network loss
};

// Pre-registered playout observability handles (see common/metrics.h); a
// stall is a packet that arrived after its playout instant and was
// discarded. Pass to play()/sweep() to count across runs.
struct PlayoutCounters {
  Counter playouts;         // voip.playouts — streams played
  Counter stalled_packets;  // voip.playout.stalled_packets — late discards
  Counter lost_packets;     // voip.playout.lost_packets — network losses
  Histogram mos;            // voip.playout.mos

  explicit PlayoutCounters(MetricsRegistry& metrics);
};

// One observed copy of one frame on the receive path. A degraded network can
// deliver the same sequence twice (duplication) or out of order (reordering);
// the playout buffer cares only about the earliest copy of each slot.
struct ArrivalEvent {
  std::uint32_t seq = 0;
  double extra_delay_ms = 0.0;  // beyond the base one-way delay
};

class JitterBufferSim {
 public:
  // Pre-draws `packets` arrival offsets for a path with the given base
  // one-way delay and network loss. Deterministic per rng state.
  JitterBufferSim(Millis base_one_way_ms, double network_loss, std::size_t packets,
                  const JitterParams& params, Rng& rng);

  // Explicit-arrivals form: per-slot extra delays as produced by
  // collapse_arrivals() (negative = the frame never arrived). Lets callers
  // feed a real observed arrival log instead of the synthetic jitter model.
  JitterBufferSim(Millis base_one_way_ms, std::vector<double> extra_delay_ms);

  // Collapses a raw arrival log — possibly duplicated and out of order — to
  // per-slot earliest arrivals: slot i holds the smallest extra delay any
  // copy of frame i achieved, or -1.0 when no copy arrived. Duplicates can
  // therefore never double-count a receipt (or mask a loss), and a late
  // reordered copy only matters if it beats the copy already heard.
  // Events whose seq is out of range are ignored (corrupted header).
  static std::vector<double> collapse_arrivals(std::size_t packets,
                                               const std::vector<ArrivalEvent>& events);

  // Plays the stream through a buffer of depth `depth_ms`. When `counters`
  // is given, records the playout and its stalled/lost packet counts.
  [[nodiscard]] PlayoutResult play(Millis depth_ms, const EModel& emodel,
                                   const PlayoutCounters* counters = nullptr) const;

  // Sweeps depths [0, max_depth] in `step` increments.
  [[nodiscard]] std::vector<PlayoutResult> sweep(Millis max_depth_ms, Millis step_ms,
                                                 const EModel& emodel,
                                                 const PlayoutCounters* counters = nullptr) const;

  // The depth with the highest MOS over the sweep.
  [[nodiscard]] PlayoutResult best_depth(Millis max_depth_ms, Millis step_ms,
                                         const EModel& emodel) const;

  [[nodiscard]] Millis base_one_way_ms() const { return base_one_way_ms_; }

 private:
  Millis base_one_way_ms_;
  double network_loss_;
  // Arrival delay beyond the base one-way, per packet; negative = network
  // lost (never arrives).
  std::vector<double> extra_delay_ms_;
};

}  // namespace asap::voip
