// ITU-T G.107 E-Model: maps one-way ("mouth-to-ear") delay and packet loss
// to an R transmission-rating factor and a Mean Opinion Score.
//
// The paper's evaluation (Sec. 7.2) computes each relay path's highest MOS
// by "fixing the codec as G.729A+VAD, given the RTT and packet loss rate of
// a path ... under the ITU-E-Model", with an assumed 0.5% average loss.
#pragma once

#include "voip/codec.h"
#include "common/units.h"

namespace asap::voip {

struct EModelParams {
  // Basic signal-to-noise rating with default G.107 settings.
  double r0 = 93.2;
  // Simultaneous impairments (quantization etc.); folded into r0's default.
  double is = 0.0;
  // Advantage factor; 0 for wired VoIP.
  double advantage = 0.0;
  // Fixed jitter/playout-buffer delay added to the network one-way delay.
  Millis playout_buffer_ms = 30.0;
};

class EModel {
 public:
  explicit EModel(Codec codec, EModelParams params = {}) : codec_(codec), params_(params) {}

  // Delay impairment Id for a mouth-to-ear delay d (G.107 simplified form,
  // Cole & Rosenbluth): Id = 0.024 d + 0.11 (d - 177.3) H(d - 177.3).
  [[nodiscard]] double delay_impairment(Millis mouth_to_ear_ms) const;

  // Effective equipment impairment Ie-eff for a packet loss probability
  // `loss` in [0, 1]: Ie + (95 - Ie) * Ppl / (Ppl + Bpl), Ppl in percent.
  [[nodiscard]] double loss_impairment(double loss) const;

  // R-factor for a *network* one-way delay (codec and playout delays are
  // added internally) and loss probability. Clamped to [0, 100].
  [[nodiscard]] double r_factor(Millis network_one_way_ms, double loss) const;

  // MOS from R per G.107: 1 + 0.035 R + 7e-6 R (R-60)(100-R).
  static double mos_from_r(double r);

  // Convenience: MOS for a path RTT (one-way = RTT/2) and loss probability.
  [[nodiscard]] double mos_for_rtt(Millis rtt_ms, double loss) const;

  [[nodiscard]] const Codec& codec() const { return codec_; }

 private:
  Codec codec_;
  EModelParams params_;
};

// The paper's satisfaction thresholds (Sec. 2 / Sec. 7.1).
inline constexpr double kMosSatisfactionThreshold = 3.6;

}  // namespace asap::voip
