// Path switching and path diversity over dynamic relay paths — the
// techniques the paper says "can be used in combination with ASAP to
// transmit voice packets" (Sec. 6.2, citing Liang/Steinbach/Girod,
// Nguyen & Zakhor, and Tao et al.).
//
// A call is simulated frame by frame (20 ms) over one or more PathDynamics
// instances:
//   * kStatic        — stay on the primary path for the whole call;
//   * kSwitching     — monitor windowed quality; when the active path's
//                      window MOS drops below a threshold and another
//                      candidate looks better, switch (paying a glitch:
//                      a brief burst of late/lost frames);
//   * kDiversity     — send every frame on the two best paths; a frame is
//                      lost only if both copies are, and plays at the
//                      earlier arrival (Liang et al.'s packet path
//                      diversity).
// The output is a per-window MOS time series plus call-level aggregates.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "voip/dynamics.h"
#include "voip/emodel.h"

namespace asap::voip {

enum class PathPolicy : std::uint8_t { kStatic = 0, kSwitching = 1, kDiversity = 2 };

constexpr std::string_view policy_name(PathPolicy p) {
  switch (p) {
    case PathPolicy::kStatic: return "static";
    case PathPolicy::kSwitching: return "switching";
    case PathPolicy::kDiversity: return "diversity";
  }
  return "?";
}

struct CallPolicyParams {
  double frame_interval_s = 0.02;   // 50 pps
  double window_s = 1.0;            // quality-evaluation window
  double switch_mos_threshold = 3.6;  // switch when window MOS drops below
  // Minimum MOS advantage the alternative must show to justify a switch.
  double switch_margin = 0.15;
  // A switch disrupts this long (frames during it count as lost).
  double switch_glitch_s = 0.15;
  // Cool-down between switches.
  double switch_holddown_s = 4.0;
};

struct CallQualityResult {
  std::vector<double> window_mos;  // one entry per window
  double mean_mos = 0.0;
  double min_window_mos = 5.0;
  // Fraction of windows below the satisfaction bar (MOS 3.6).
  double unsatisfied_fraction = 0.0;
  std::size_t switches = 0;
  std::size_t frames_sent = 0;
  std::size_t frames_lost = 0;
};

// Simulates a call of `duration_s` over `paths` (candidate relay paths,
// best-estimate first) under `policy`. `paths` must be non-empty;
// kDiversity uses the first two (or one, degenerating to kStatic). Frame
// losses are drawn from the path's instantaneous loss probability using
// `rng` (deterministic per caller-supplied stream).
CallQualityResult run_call(const std::vector<const PathDynamics*>& paths, PathPolicy policy,
                           double duration_s, const EModel& emodel,
                           const CallPolicyParams& params, Rng& rng);

}  // namespace asap::voip
