// Time-varying path quality: what a relay path looks like *during* a call.
//
// The paper's evaluation scores paths by static RTT/loss, but motivates
// path switching and path diversity (Sec. 6.2, citing Liang et al. [15],
// Nguyen & Zakhor [19] and Tao et al. [20]) precisely because real paths
// fluctuate. This module models that fluctuation so those techniques can be
// implemented and measured:
//   * loss follows a Gilbert-Elliott two-state chain (good/bad bursts);
//   * delay adds episodic congestion bursts (on/off renewal process) on
//     top of the static base RTT.
// A PathDynamics instance is deterministic given (seed, path id): episodes
// are pre-sampled over the call horizon, so repeated queries agree.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace asap::voip {

struct DynamicsParams {
  // Gilbert-Elliott: mean sojourn in the good/bad state, and the loss
  // probability in the bad state. The good-state loss is the path's static
  // base loss.
  double good_mean_s = 60.0;
  double bad_mean_s = 2.5;
  double bad_loss = 0.15;
  // Congestion bursts: exponential inter-arrival and duration; the delay
  // added during a burst is uniform in [amp_min, amp_max].
  double burst_interarrival_s = 90.0;
  double burst_duration_s = 4.0;
  Millis burst_amp_min_ms = 30.0;
  Millis burst_amp_max_ms = 250.0;
};

// Sampled instantaneous quality of one path.
struct PathState {
  Millis rtt_ms = 0.0;
  double loss = 0.0;
  bool in_loss_burst = false;
  bool in_delay_burst = false;
};

class PathDynamics {
 public:
  // `horizon_s` bounds the queryable time range; episodes are pre-sampled
  // up to it. `path_salt` separates paths sharing a seed.
  PathDynamics(Millis base_rtt_ms, double base_loss, double horizon_s,
               const DynamicsParams& params, std::uint64_t seed, std::uint64_t path_salt);

  // Path state at time t (seconds since call start), clamped to the horizon.
  [[nodiscard]] PathState at(double t_s) const;

  [[nodiscard]] Millis base_rtt_ms() const { return base_rtt_ms_; }
  [[nodiscard]] double base_loss() const { return base_loss_; }

  // Time-averaged loss over [0, horizon] (for tests).
  [[nodiscard]] double mean_loss() const;

 private:
  struct Episode {
    double start_s;
    double end_s;
    Millis extra_rtt_ms;  // 0 for pure loss episodes
  };

  Millis base_rtt_ms_;
  double base_loss_;
  double horizon_s_;
  DynamicsParams params_;
  std::vector<Episode> loss_bursts_;
  std::vector<Episode> delay_bursts_;
};

}  // namespace asap::voip
