#include "voip/jitter_buffer.h"

#include <algorithm>

namespace asap::voip {

JitterBufferSim::JitterBufferSim(Millis base_one_way_ms, double network_loss,
                                 std::size_t packets, const JitterParams& params, Rng& rng)
    : base_one_way_ms_(base_one_way_ms), network_loss_(network_loss) {
  extra_delay_ms_.reserve(packets);
  for (std::size_t i = 0; i < packets; ++i) {
    if (rng.chance(network_loss)) {
      extra_delay_ms_.push_back(-1.0);  // lost in the network
      continue;
    }
    double jitter = rng.exponential(params.jitter_mean_ms);
    if (rng.chance(params.spike_fraction)) jitter += params.spike_ms;
    extra_delay_ms_.push_back(jitter);
  }
}

JitterBufferSim::JitterBufferSim(Millis base_one_way_ms, std::vector<double> extra_delay_ms)
    : base_one_way_ms_(base_one_way_ms), extra_delay_ms_(std::move(extra_delay_ms)) {
  auto lost = static_cast<double>(std::count_if(extra_delay_ms_.begin(),
                                                extra_delay_ms_.end(),
                                                [](double d) { return d < 0.0; }));
  network_loss_ =
      extra_delay_ms_.empty() ? 0.0 : lost / static_cast<double>(extra_delay_ms_.size());
}

std::vector<double> JitterBufferSim::collapse_arrivals(
    std::size_t packets, const std::vector<ArrivalEvent>& events) {
  std::vector<double> slots(packets, -1.0);
  for (const ArrivalEvent& event : events) {
    if (event.seq >= packets || event.extra_delay_ms < 0.0) continue;
    double& slot = slots[event.seq];
    if (slot < 0.0 || event.extra_delay_ms < slot) slot = event.extra_delay_ms;
  }
  return slots;
}

PlayoutCounters::PlayoutCounters(MetricsRegistry& metrics)
    : playouts(metrics.counter("voip.playouts")),
      stalled_packets(metrics.counter("voip.playout.stalled_packets")),
      lost_packets(metrics.counter("voip.playout.lost_packets")),
      mos(metrics.histogram("voip.playout.mos", {1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5})) {}

PlayoutResult JitterBufferSim::play(Millis depth_ms, const EModel& emodel,
                                    const PlayoutCounters* counters) const {
  PlayoutResult result;
  result.buffer_depth_ms = depth_ms;
  std::size_t late = 0;
  std::size_t network_lost = 0;
  for (double extra : extra_delay_ms_) {
    if (extra < 0.0) {
      ++network_lost;
    } else if (extra > depth_ms) {
      // Arrived after its playout instant: discarded.
      ++late;
    }
  }
  auto n = static_cast<double>(extra_delay_ms_.size());
  result.late_loss = n > 0 ? static_cast<double>(late) / n : 0.0;
  double total_loss =
      n > 0 ? static_cast<double>(late + network_lost) / n : 0.0;
  result.mouth_to_ear_ms = base_one_way_ms_ + depth_ms;
  // r_factor() adds its own (codec + default playout) delay; we model the
  // buffer explicitly, so feed it the raw one-way and zero out the default.
  EModelParams ep;
  ep.playout_buffer_ms = 0.0;
  EModel explicit_buffer(emodel.codec(), ep);
  result.mos =
      EModel::mos_from_r(explicit_buffer.r_factor(result.mouth_to_ear_ms, total_loss));
  if (counters != nullptr) {
    counters->playouts.inc();
    counters->stalled_packets.add(late);
    counters->lost_packets.add(network_lost);
    counters->mos.observe(result.mos);
  }
  return result;
}

std::vector<PlayoutResult> JitterBufferSim::sweep(Millis max_depth_ms, Millis step_ms,
                                                  const EModel& emodel,
                                                  const PlayoutCounters* counters) const {
  std::vector<PlayoutResult> results;
  for (Millis d = 0.0; d <= max_depth_ms + 1e-9; d += step_ms) {
    results.push_back(play(d, emodel, counters));
  }
  return results;
}

PlayoutResult JitterBufferSim::best_depth(Millis max_depth_ms, Millis step_ms,
                                          const EModel& emodel) const {
  auto results = sweep(max_depth_ms, step_ms, emodel);
  return *std::max_element(results.begin(), results.end(),
                           [](const PlayoutResult& a, const PlayoutResult& b) {
                             return a.mos < b.mos;
                           });
}

}  // namespace asap::voip
