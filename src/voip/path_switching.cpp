#include "voip/path_switching.h"

#include <algorithm>
#include <cassert>

namespace asap::voip {

namespace {

// Windowed frame accounting folded into a MOS via the E-Model: observed
// loss rate plus the mean one-way delay of delivered frames.
struct Window {
  std::size_t sent = 0;
  std::size_t lost = 0;
  double delay_sum_ms = 0.0;

  [[nodiscard]] double mos(const EModel& emodel) const {
    if (sent == 0) return EModel::mos_from_r(100.0);
    double loss = static_cast<double>(lost) / static_cast<double>(sent);
    std::size_t delivered = sent - lost;
    double mean_rtt = delivered > 0 ? delay_sum_ms / static_cast<double>(delivered) : 0.0;
    return emodel.mos_for_rtt(mean_rtt, loss);
  }
};

}  // namespace

CallQualityResult run_call(const std::vector<const PathDynamics*>& paths, PathPolicy policy,
                           double duration_s, const EModel& emodel,
                           const CallPolicyParams& params, Rng& rng) {
  assert(!paths.empty());
  CallQualityResult result;

  std::size_t active = 0;  // index of the current primary path
  double glitch_until_s = -1.0;
  double holddown_until_s = 0.0;

  Window window;
  double window_end_s = params.window_s;

  auto close_window = [&](double now_s) {
    double mos = window.mos(emodel);
    result.window_mos.push_back(mos);
    result.min_window_mos = std::min(result.min_window_mos, mos);

    if (policy == PathPolicy::kSwitching && now_s >= holddown_until_s &&
        mos < params.switch_mos_threshold && paths.size() > 1) {
      // The bad window justifies a probe round; switch only if the current
      // path *still* looks bad right now (a burst that already ended is no
      // reason to pay the switch glitch) and a candidate looks clearly
      // better at this instant.
      PathState cur = paths[active]->at(now_s);
      double current_now = emodel.mos_for_rtt(cur.rtt_ms, cur.loss);
      if (current_now < params.switch_mos_threshold) {
        std::size_t best = active;
        double best_mos = current_now;
        for (std::size_t i = 0; i < paths.size(); ++i) {
          if (i == active) continue;
          PathState s = paths[i]->at(now_s);
          double candidate = emodel.mos_for_rtt(s.rtt_ms, s.loss);
          if (candidate > best_mos + params.switch_margin) {
            best = i;
            best_mos = candidate;
          }
        }
        if (best != active) {
          active = best;
          ++result.switches;
          glitch_until_s = now_s + params.switch_glitch_s;
          holddown_until_s = now_s + params.switch_holddown_s;
        }
      }
    }
    window = Window{};
  };

  // Integer frame count avoids floating-point drift adding a stray frame.
  auto total_frames = static_cast<std::size_t>(duration_s / params.frame_interval_s + 0.5);
  for (std::size_t frame = 0; frame < total_frames; ++frame) {
    double t = static_cast<double>(frame) * params.frame_interval_s;
    while (t >= window_end_s) {
      close_window(window_end_s);
      window_end_s += params.window_s;
    }
    ++result.frames_sent;
    ++window.sent;

    if (t < glitch_until_s) {
      ++result.frames_lost;
      ++window.lost;
      continue;
    }

    if (policy == PathPolicy::kDiversity && paths.size() > 1) {
      PathState a = paths[0]->at(t);
      PathState b = paths[1]->at(t);
      bool lost_a = rng.chance(a.loss);
      bool lost_b = rng.chance(b.loss);
      if (lost_a && lost_b) {
        ++result.frames_lost;
        ++window.lost;
      } else {
        Millis rtt = kUnreachableMs;
        if (!lost_a) rtt = std::min(rtt, a.rtt_ms);
        if (!lost_b) rtt = std::min(rtt, b.rtt_ms);
        window.delay_sum_ms += rtt;
      }
      continue;
    }

    PathState s = paths[active]->at(t);
    if (rng.chance(s.loss)) {
      ++result.frames_lost;
      ++window.lost;
    } else {
      window.delay_sum_ms += s.rtt_ms;
    }
  }
  if (window.sent > 0) close_window(duration_s);

  if (!result.window_mos.empty()) {
    double sum = 0.0;
    std::size_t unsatisfied = 0;
    for (double mos : result.window_mos) {
      sum += mos;
      if (mos < kMosSatisfactionThreshold) ++unsatisfied;
    }
    result.mean_mos = sum / static_cast<double>(result.window_mos.size());
    result.unsatisfied_fraction =
        static_cast<double>(unsatisfied) / static_cast<double>(result.window_mos.size());
  }
  return result;
}

}  // namespace asap::voip
