#include "voip/dynamics.h"

#include <algorithm>

namespace asap::voip {

PathDynamics::PathDynamics(Millis base_rtt_ms, double base_loss, double horizon_s,
                           const DynamicsParams& params, std::uint64_t seed,
                           std::uint64_t path_salt)
    : base_rtt_ms_(base_rtt_ms), base_loss_(base_loss), horizon_s_(horizon_s),
      params_(params) {
  Rng rng = Rng(seed).fork(path_salt ^ 0xD1CE5EEDULL);

  // Gilbert-Elliott sojourns, alternating good/bad from a good start.
  double t = 0.0;
  while (t < horizon_s_) {
    t += rng.exponential(params.good_mean_s);
    if (t >= horizon_s_) break;
    double end = t + rng.exponential(params.bad_mean_s);
    loss_bursts_.push_back(Episode{t, std::min(end, horizon_s_), 0.0});
    t = end;
  }

  // Congestion (delay) bursts: renewal process.
  t = 0.0;
  while (t < horizon_s_) {
    t += rng.exponential(params.burst_interarrival_s);
    if (t >= horizon_s_) break;
    double end = t + rng.exponential(params.burst_duration_s);
    Millis amp = rng.uniform(params.burst_amp_min_ms, params.burst_amp_max_ms);
    delay_bursts_.push_back(Episode{t, std::min(end, horizon_s_), amp});
    t = end;
  }
}

namespace {

template <typename Episodes>
const auto* find_episode(const Episodes& episodes, double t_s) {
  // Episodes are disjoint and time-ordered; binary search the candidate.
  auto it = std::upper_bound(episodes.begin(), episodes.end(), t_s,
                             [](double t, const auto& e) { return t < e.start_s; });
  if (it == episodes.begin()) return static_cast<const typename Episodes::value_type*>(nullptr);
  --it;
  if (t_s >= it->start_s && t_s < it->end_s) return &*it;
  return static_cast<const typename Episodes::value_type*>(nullptr);
}

}  // namespace

PathState PathDynamics::at(double t_s) const {
  t_s = std::clamp(t_s, 0.0, horizon_s_);
  PathState state;
  state.rtt_ms = base_rtt_ms_;
  state.loss = base_loss_;
  if (const auto* burst = find_episode(loss_bursts_, t_s)) {
    (void)burst;
    state.loss = std::max(base_loss_, params_.bad_loss);
    state.in_loss_burst = true;
  }
  if (const auto* burst = find_episode(delay_bursts_, t_s)) {
    state.rtt_ms += burst->extra_rtt_ms;
    state.in_delay_burst = true;
  }
  return state;
}

double PathDynamics::mean_loss() const {
  double bad_time = 0.0;
  for (const auto& e : loss_bursts_) bad_time += e.end_s - e.start_s;
  double frac = horizon_s_ > 0 ? bad_time / horizon_s_ : 0.0;
  return base_loss_ * (1.0 - frac) + std::max(base_loss_, params_.bad_loss) * frac;
}

}  // namespace asap::voip
