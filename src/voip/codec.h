// Voice codec descriptors with the E-Model equipment-impairment parameters
// from ITU-T G.113 Appendix I.
#pragma once

#include <string_view>

#include "common/units.h"

namespace asap::voip {

struct Codec {
  std::string_view name;
  double bitrate_kbps;
  // E-Model equipment impairment at zero loss.
  double ie;
  // Packet-loss robustness factor (random loss).
  double bpl;
  // Frame + look-ahead algorithmic delay added at the sender.
  Millis codec_delay_ms;
};

// The codecs the paper discusses (Sec. 2 cites MOS-vs-loss behaviour of
// G.711, G.729, G.729A and G.723.1; the evaluation fixes G.729A+VAD).
inline constexpr Codec kG711{"G.711", 64.0, 0.0, 4.3, 0.25};
inline constexpr Codec kG729{"G.729", 8.0, 10.0, 19.0, 15.0};
inline constexpr Codec kG729aVad{"G.729A+VAD", 8.0, 11.0, 19.0, 15.0};
inline constexpr Codec kG7231{"G.723.1", 6.3, 15.0, 16.1, 37.5};

inline constexpr Codec kAllCodecs[] = {kG711, kG729, kG729aVad, kG7231};

}  // namespace asap::voip
