# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("astopo")
subdirs("netmodel")
subdirs("voip")
subdirs("sim")
subdirs("population")
subdirs("core")
subdirs("relay")
subdirs("overlay")
subdirs("trace")
subdirs("net")
subdirs("relay_daemon")
