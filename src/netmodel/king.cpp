#include "netmodel/king.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace asap::netmodel {

std::optional<Millis> KingEstimator::measure_rtt(asap::AsId a, asap::AsId b) const {
  // Per-pair deterministic stream: same pair, same answer, either order.
  auto lo = std::min(a.value(), b.value());
  auto hi = std::max(a.value(), b.value());
  Rng rng(seed_ ^ (std::uint64_t(lo) << 32 | hi) * 0x9E3779B97F4A7C15ULL);
  if (!rng.chance(params_.response_rate)) return std::nullopt;
  Millis truth = oracle_.rtt_ms(a, b);
  if (truth >= kUnreachableMs) return std::nullopt;
  double noise = std::exp(params_.noise_sigma * rng.normal());
  return truth * noise + params_.dns_overhead_ms;
}

}  // namespace asap::netmodel
