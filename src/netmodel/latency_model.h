// Assigns latency and loss characteristics to a generated AS topology.
//
// Substitutes for the paper's King-measured delegate RTT matrix. Each
// undirected AS link gets a one-way latency (geographic propagation at
// ~200 km/ms times a circuitousness factor, plus a per-link base), each AS a
// transit processing delay. Pathology injection creates the paper's heavy
// tail (Fig. 2(a): ~1% of sessions above 300 ms, a few seconds at the
// extreme). All draws happen once at construction; the resulting network is
// deterministic thereafter.
#pragma once

#include <cstdint>
#include <vector>

#include "astopo/topology_gen.h"
#include "common/rng.h"
#include "common/units.h"

namespace asap::netmodel {

struct LatencyParams {
  double km_per_ms = 200.0;          // signal speed in fibre
  double detour_min = 1.05;          // circuitousness multiplier range
  double detour_max = 1.35;
  double edge_base_ms_min = 0.2;     // per-link serialization/queueing base
  double edge_base_ms_max = 1.5;
  double transit_proc_ms_min = 0.1;  // per-AS transit processing
  double transit_proc_ms_max = 0.8;

  // --- Pathology injection ------------------------------------------------
  // Three mechanisms, chosen to reproduce the paper's latent-session causes
  // (Sec. 3.3 Fig. 4): pathologies sit in the *middle* of policy paths, so
  // one-hop relays through third regions route around them.
  //
  // (1) Congested backbone interconnects: a few tier-1-adjacent links get a
  // large standing queueing delay. Sessions whose BGP path crosses one
  // become latent, yet almost any relay in a third region avoids the bad
  // interconnect — the paper's "congested AS H" scenario.
  std::size_t congested_backbone_links = 1;
  double backbone_penalty_ms_min = 50.0;   // one-way per crossing
  double backbone_penalty_ms_max = 180.0;
  double backbone_link_loss = 0.04;
  // (2) Congested small tier-2 transit ASes (probability scaled down with
  // degree: big hubs are well-provisioned, small regional providers are the
  // ones that saturate).
  double congested_tier2_fraction = 0.01;
  double congestion_penalty_ms_min = 10.0;   // one-way, per traversal
  double congestion_penalty_ms_max = 150.0;
  double congested_as_loss = 0.03;           // extra loss per traversal
  // (3) Broken uplinks of *multi-homed* stubs: the degraded link stays the
  // BGP-preferred entry for many sources (policy is latency-blind), but
  // relays whose route enters via the healthy provider fix the session —
  // the paper's Fig. 4 multi-homing scenario, and the reason random/fixed
  // relay pools sometimes find nothing below a second.
  double broken_edge_fraction = 0.05;
  double broken_edge_penalty_ms_min = 1200.0;  // one-way
  double broken_edge_penalty_ms_max = 9000.0;

  double edge_loss_min = 0.00002;
  double edge_loss_max = 0.0015;
};

class LatencyModel {
 public:
  LatencyModel(const astopo::Topology& topo, const LatencyParams& params, Rng& rng);

  // Base (symmetric) latency of a link.
  [[nodiscard]] Millis edge_latency_ms(std::uint32_t edge_id) const {
    return edge_latency_[edge_id];
  }
  // Latency when traversing the link *toward* the given AS. Broken stub
  // uplinks are inbound-degraded only: the stub notices its dead preferred
  // uplink and shifts outbound traffic to the healthy provider locally,
  // but remote sources keep sending via the BGP-preferred (broken) entry.
  [[nodiscard]] Millis edge_latency_ms(std::uint32_t edge_id, asap::AsId toward) const {
    Millis lat = edge_latency_[edge_id];
    if (broken_toward_[edge_id] == toward) lat += broken_penalty_[edge_id];
    return lat;
  }
  [[nodiscard]] double edge_loss(std::uint32_t edge_id) const { return edge_loss_[edge_id]; }
  // Delay added when a path transits *through* this AS (not at endpoints).
  [[nodiscard]] Millis transit_delay_ms(asap::AsId as) const {
    return transit_delay_[as.value()];
  }
  [[nodiscard]] double transit_loss(asap::AsId as) const { return transit_loss_[as.value()]; }
  [[nodiscard]] bool is_congested(asap::AsId as) const { return congested_[as.value()]; }
  // Broken uplink or congested backbone interconnect.
  [[nodiscard]] bool is_degraded_edge(std::uint32_t edge_id) const {
    return degraded_edge_[edge_id];
  }
  [[nodiscard]] bool is_broken(std::uint32_t edge_id) const { return degraded_edge_[edge_id]; }

  [[nodiscard]] std::size_t congested_as_count() const;
  [[nodiscard]] std::size_t broken_edge_count() const;

 private:
  std::vector<Millis> edge_latency_;
  std::vector<double> edge_loss_;
  std::vector<char> degraded_edge_;
  std::vector<asap::AsId> broken_toward_;   // invalid = not direction-broken
  std::vector<Millis> broken_penalty_;
  std::vector<Millis> transit_delay_;
  std::vector<double> transit_loss_;
  std::vector<char> congested_;
};

}  // namespace asap::netmodel
