
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netmodel/king.cpp" "src/netmodel/CMakeFiles/asap_netmodel.dir/king.cpp.o" "gcc" "src/netmodel/CMakeFiles/asap_netmodel.dir/king.cpp.o.d"
  "/root/repo/src/netmodel/latency_model.cpp" "src/netmodel/CMakeFiles/asap_netmodel.dir/latency_model.cpp.o" "gcc" "src/netmodel/CMakeFiles/asap_netmodel.dir/latency_model.cpp.o.d"
  "/root/repo/src/netmodel/oracle.cpp" "src/netmodel/CMakeFiles/asap_netmodel.dir/oracle.cpp.o" "gcc" "src/netmodel/CMakeFiles/asap_netmodel.dir/oracle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/astopo/CMakeFiles/asap_astopo.dir/DependInfo.cmake"
  "/root/repo/src/common/CMakeFiles/asap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
