# Empty dependencies file for asap_netmodel.
# This may be replaced when dependencies are built.
