file(REMOVE_RECURSE
  "CMakeFiles/asap_netmodel.dir/king.cpp.o"
  "CMakeFiles/asap_netmodel.dir/king.cpp.o.d"
  "CMakeFiles/asap_netmodel.dir/latency_model.cpp.o"
  "CMakeFiles/asap_netmodel.dir/latency_model.cpp.o.d"
  "CMakeFiles/asap_netmodel.dir/oracle.cpp.o"
  "CMakeFiles/asap_netmodel.dir/oracle.cpp.o.d"
  "libasap_netmodel.a"
  "libasap_netmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asap_netmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
