file(REMOVE_RECURSE
  "libasap_netmodel.a"
)
