// PathOracle: ground-truth latency / loss / hop-count queries between ASes
// along the BGP-selected (policy-compliant) path.
//
// This is the simulation's stand-in for "the Internet": direct IP routing
// between two end hosts follows the oracle's policy paths, which are
// valley-free but latency-suboptimal whenever congestion or broken links sit
// on them — the effect peer relays exploit.
//
// Per-destination tables (routes + dynamic-programming latency/loss arrays)
// are built lazily and cached; in the evaluation only host-bearing ASes are
// ever destinations, which bounds the cache. All query methods are safe to
// call concurrently: the table cache is guarded by a reader/writer lock, and
// tables are built outside it (two threads racing on the same destination
// both build, the first insert wins — table contents are a pure function of
// the destination, so results are unaffected).
#pragma once

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "astopo/routing.h"
#include "netmodel/latency_model.h"
#include "common/units.h"

namespace asap::netmodel {

class PathOracle {
 public:
  PathOracle(const astopo::AsGraph& graph, const LatencyModel& model)
      : graph_(graph), model_(model) {}

  // One-way latency src -> dst along the policy path. kUnreachableMs when no
  // route exists.
  [[nodiscard]] Millis one_way_ms(asap::AsId src, asap::AsId dst) const;
  // Round trip: forward plus reverse one-way (routes may be asymmetric).
  [[nodiscard]] Millis rtt_ms(asap::AsId a, asap::AsId b) const;

  // End-to-end loss probability along the one-way / round-trip path.
  [[nodiscard]] double one_way_loss(asap::AsId src, asap::AsId dst) const;
  [[nodiscard]] double rtt_loss(asap::AsId a, asap::AsId b) const;

  // AS hop count of the forward policy path (255 = unreachable).
  [[nodiscard]] std::uint8_t as_hops(asap::AsId src, asap::AsId dst) const;

  // The forward AS-level path (src..dst inclusive); empty when unreachable.
  [[nodiscard]] std::vector<asap::AsId> as_path(asap::AsId src, asap::AsId dst) const;

  // Whether the forward path transits a congested AS or broken link.
  [[nodiscard]] bool path_is_pathological(asap::AsId src, asap::AsId dst) const;

  // Performance API for all-pairs scans: borrowed view of the one-way
  // latencies toward `dest`, indexed by source AS id (kUnreachableMs cast
  // to float for unreachable sources). The span stays valid for the
  // oracle's lifetime; building it caches the destination table.
  [[nodiscard]] std::span<const float> one_way_table(asap::AsId dest) const;

  [[nodiscard]] const astopo::AsGraph& graph() const { return graph_; }
  [[nodiscard]] const LatencyModel& model() const { return model_; }
  [[nodiscard]] std::size_t cached_tables() const {
    std::shared_lock<std::shared_mutex> lock(tables_mutex_);
    return tables_.size();
  }

 private:
  struct DestTable {
    astopo::RouteTable routes;
    std::vector<float> one_way_ms;    // per source AS
    std::vector<float> log_survival;  // log(1 - loss), per source AS
  };

  const DestTable& table_for(asap::AsId dest) const;
  std::unique_ptr<DestTable> build_table(asap::AsId dest) const;

  const astopo::AsGraph& graph_;
  const LatencyModel& model_;
  mutable std::shared_mutex tables_mutex_;
  mutable std::unordered_map<std::uint32_t, std::unique_ptr<DestTable>> tables_;
};

}  // namespace asap::netmodel
