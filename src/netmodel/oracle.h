// PathOracle: ground-truth latency / loss / hop-count queries between ASes
// along the BGP-selected (policy-compliant) path.
//
// This is the simulation's stand-in for "the Internet": direct IP routing
// between two end hosts follows the oracle's policy paths, which are
// valley-free but latency-suboptimal whenever congestion or broken links sit
// on them — the effect peer relays exploit.
//
// Per-destination tables (routes + dynamic-programming latency/loss arrays)
// are built lazily and cached in a flat slot array indexed by destination AS
// id; in the evaluation only host-bearing ASes are ever destinations, which
// bounds the work. All query methods are safe to call concurrently and the
// steady-state read path is lock-free: a hit is one acquire load plus an
// array index (no hash, no shared_mutex). A miss takes one of 64 striped
// build mutexes and re-checks the slot (double-checked init, the same
// pattern as core::CloseSetCache), so every table is built exactly once per
// residency. prewarm() builds a set of destination tables up front through a
// thread pool so bulk evaluations never build under load.
//
// Million-peer worlds (100k+ host ASes over 10k+ AS graphs) cannot keep
// every table resident, so the cache is optionally *bounded*: give
// OracleCacheParams a byte budget and a CLOCK sweep (one ref bit per slot,
// second-chance) evicts cold tables whenever a build pushes the resident
// set over budget. Evicted tables are not freed inline — concurrent readers
// may still hold one_way_table() spans — but parked on a retired list that
// purge_retired() frees at quiescent points. A re-touched destination
// rebuilds exactly once through the same striped double-checked path, and a
// rebuild is bitwise identical to the evicted table as long as the topology
// has not changed. compact_tables additionally stores the per-source arrays
// as quantized u16 (RTT in 1/32 ms units, log-survival in 1/4096 nat units)
// halving table bytes at a documented ±1/64 ms per-leg tolerance; both knobs
// default off, preserving the historical unbounded float behavior bit for
// bit. See DESIGN.md §12.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "astopo/routing.h"
#include "netmodel/latency_model.h"
#include "common/units.h"

namespace asap {
class ThreadPool;
}

namespace asap::netmodel {

struct OracleCacheParams {
  // Byte budget for resident destination tables; 0 = unbounded (the
  // historical default). When a build pushes the resident bytes over the
  // budget, a CLOCK sweep evicts cold tables down to it.
  std::size_t budget_bytes = 0;
  // Store per-source latency/loss as quantized u16 instead of float,
  // halving table bytes. RTT decode error is at most 1/64 ms per one-way
  // leg (clamped at ~2047.97 ms, far beyond the 300 ms quality bar).
  // Default off: float tables are byte-identical to the historical oracle.
  bool compact_tables = false;
};

// Cumulative cache accounting; hits are only counted in bounded mode so the
// unbounded fast path stays a single acquire load.
struct OracleCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t builds = 0;     // total builds, rebuilds included
  std::uint64_t evictions = 0;  // CLOCK evictions (invalidations not included)
  std::size_t cached_tables = 0;
  std::size_t cached_bytes = 0;
  std::size_t retired_bytes = 0;  // evicted but not yet purged
};

// --- u16 quantization (compact tables) -------------------------------------
inline constexpr float kRttQuantStepMs = 1.0f / 32.0f;
inline constexpr float kLogSurvQuantStep = 1.0f / 4096.0f;
inline constexpr std::uint16_t kQuantUnreachable = 0xFFFF;

// Decodes exactly: q/32 and q/4096 are dyadic rationals representable in
// float for every u16 q, so scalar and batched decoders agree bitwise.
[[nodiscard]] inline double decode_rtt_quant(std::uint16_t q) {
  return q == kQuantUnreachable
             ? kUnreachableMs
             : static_cast<double>(static_cast<float>(q) * kRttQuantStepMs);
}
[[nodiscard]] inline double decode_log_survival_quant(std::uint16_t q) {
  return -static_cast<double>(static_cast<float>(q) * kLogSurvQuantStep);
}

class PathOracle {
 public:
  PathOracle(const astopo::AsGraph& graph, const LatencyModel& model,
             const OracleCacheParams& cache = {});
  ~PathOracle();

  PathOracle(const PathOracle&) = delete;
  PathOracle& operator=(const PathOracle&) = delete;

  // One-way latency src -> dst along the policy path. kUnreachableMs when no
  // route exists.
  [[nodiscard]] Millis one_way_ms(asap::AsId src, asap::AsId dst) const;
  // Round trip: forward plus reverse one-way (routes may be asymmetric).
  [[nodiscard]] Millis rtt_ms(asap::AsId a, asap::AsId b) const;

  // End-to-end loss probability along the one-way / round-trip path.
  [[nodiscard]] double one_way_loss(asap::AsId src, asap::AsId dst) const;
  [[nodiscard]] double rtt_loss(asap::AsId a, asap::AsId b) const;

  // AS hop count of the forward policy path (255 = unreachable).
  [[nodiscard]] std::uint8_t as_hops(asap::AsId src, asap::AsId dst) const;

  // The forward AS-level path (src..dst inclusive); empty when unreachable.
  [[nodiscard]] std::vector<asap::AsId> as_path(asap::AsId src, asap::AsId dst) const;

  // Whether the forward path transits a congested AS or broken link.
  [[nodiscard]] bool path_is_pathological(asap::AsId src, asap::AsId dst) const;

  // Performance API for all-pairs scans: borrowed view of the one-way
  // latencies toward `dest`, indexed by source AS id (kUnreachableMs cast
  // to float for unreachable sources). Building it caches the destination
  // table. In unbounded mode the span stays valid for the oracle's
  // lifetime; in bounded mode it stays valid until the next
  // purge_retired() (eviction only retires tables, it never frees them
  // under a reader). Only valid with compact_tables off; the compact
  // variant below is the u16 view.
  [[nodiscard]] std::span<const float> one_way_table(asap::AsId dest) const;
  // Compact-mode equivalent: RTT in 1/32 ms units, kQuantUnreachable
  // sentinel. Decode with decode_rtt_quant().
  [[nodiscard]] std::span<const std::uint16_t> one_way_table_q(asap::AsId dest) const;

  // Builds the destination tables of `dests` through `pool` so subsequent
  // queries (and the batched World scans) hit the lock-free fast path.
  // Duplicate ids and already-built tables are cheap no-ops; safe to call
  // concurrently with queries.
  void prewarm(std::span<const asap::AsId> dests, ThreadPool& pool) const;

  [[nodiscard]] const astopo::AsGraph& graph() const { return graph_; }
  [[nodiscard]] const LatencyModel& model() const { return model_; }
  [[nodiscard]] bool compact_tables() const { return cache_.compact_tables; }
  [[nodiscard]] bool bounded() const { return cache_.budget_bytes > 0; }
  [[nodiscard]] const OracleCacheParams& cache_params() const { return cache_; }
  [[nodiscard]] std::size_t cached_tables() const {
    return built_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] OracleCacheStats cache_stats() const;

  // Frees every table evicted by the CLOCK sweep. Evicted tables stay
  // readable (retired, not deleted) so concurrent queries holding spans or
  // DestTable references never dangle; freeing them is only legal at a
  // quiescent point — no in-flight queries — which the caller asserts by
  // calling this (evaluation end, bench chunk boundary, destruction).
  void purge_retired() const;

  // --- Incremental invalidation (BGP route flaps) --------------------------
  // After the graph withdraws an edge (AsGraph::set_edge_enabled(e, false)),
  // only destination tables whose selected route tree crosses `e` can
  // change: removing an edge shrinks the candidate route set, so a table
  // that never selected the edge rebuilds bitwise identically. This scans
  // the built tables, evicts exactly the affected ones (lazy rebuild on the
  // next query) and returns their destination ASes so higher layers can
  // invalidate dependent caches (close sets). Edge *recovery* and policy
  // changes can improve routes anywhere, so they must go through
  // invalidate_all().
  //
  // NOT thread-safe against concurrent queries: evicted tables are deleted
  // immediately, so readers holding spans would dangle. Only call from
  // single-threaded protocol simulations (the soak runtime), never during a
  // threaded evaluation sweep.
  std::vector<asap::AsId> invalidate_routes_through(std::uint32_t edge_id);
  // Evicts every built table; returns their destination ASes.
  std::vector<asap::AsId> invalidate_all();
  // Tables evicted by either invalidation entry point since construction.
  [[nodiscard]] std::uint64_t invalidated_tables() const {
    return invalidated_.load(std::memory_order_relaxed);
  }

 private:
  struct DestTable {
    astopo::RouteTable routes;
    std::vector<float> one_way_ms;    // per source AS (full mode)
    std::vector<float> log_survival;  // log(1 - loss), per source AS (full mode)
    std::vector<std::uint16_t> one_way_q;      // compact mode
    std::vector<std::uint16_t> log_survival_q; // compact mode
    std::size_t bytes = 0;  // deterministic size accounting for the budget
  };

  static constexpr std::size_t kBuildStripes = 64;

  const DestTable& table_for(asap::AsId dest) const;
  std::unique_ptr<DestTable> build_table(asap::AsId dest) const;
  // CLOCK second-chance sweep toward the budget; `protect` (the slot just
  // built) is skipped so a build can never evict its own result.
  void evict_to_budget(std::uint32_t protect) const;
  void drop_table_locked(std::uint32_t d, DestTable* table);

  const astopo::AsGraph& graph_;
  const LatencyModel& model_;
  const OracleCacheParams cache_;
  // Flat per-destination cache: a slot is published with release ordering
  // and keeps a stable address while resident; under a byte budget a cold
  // slot can be retired (exchange to nullptr) by the CLOCK sweep and later
  // rebuilt through the same striped double-checked path.
  mutable std::vector<std::atomic<DestTable*>> slots_;
  // CLOCK reference bits (second chance), set on hit/build in bounded mode.
  mutable std::vector<std::atomic<std::uint8_t>> ref_bits_;
  mutable std::array<std::mutex, kBuildStripes> build_stripes_;
  mutable std::atomic<std::size_t> built_{0};
  mutable std::atomic<std::uint64_t> builds_{0};
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> evictions_{0};
  mutable std::atomic<std::size_t> cached_bytes_{0};
  std::atomic<std::uint64_t> invalidated_{0};
  // Eviction state: hand + retired list, all under evict_mutex_.
  mutable std::mutex evict_mutex_;
  mutable std::uint32_t clock_hand_ = 0;
  mutable std::vector<DestTable*> retired_;
  mutable std::size_t retired_bytes_ = 0;
};

}  // namespace asap::netmodel
