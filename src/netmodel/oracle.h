// PathOracle: ground-truth latency / loss / hop-count queries between ASes
// along the BGP-selected (policy-compliant) path.
//
// This is the simulation's stand-in for "the Internet": direct IP routing
// between two end hosts follows the oracle's policy paths, which are
// valley-free but latency-suboptimal whenever congestion or broken links sit
// on them — the effect peer relays exploit.
//
// Per-destination tables (routes + dynamic-programming latency/loss arrays)
// are built lazily and cached in a flat slot array indexed by destination AS
// id; in the evaluation only host-bearing ASes are ever destinations, which
// bounds the work. All query methods are safe to call concurrently and the
// steady-state read path is lock-free: a hit is one acquire load plus an
// array index (no hash, no shared_mutex). A miss takes one of 64 striped
// build mutexes and re-checks the slot (double-checked init, the same
// pattern as core::CloseSetCache), so every table is built exactly once.
// prewarm() builds a set of destination tables up front through a thread
// pool so bulk evaluations never build under load.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "astopo/routing.h"
#include "netmodel/latency_model.h"
#include "common/units.h"

namespace asap {
class ThreadPool;
}

namespace asap::netmodel {

class PathOracle {
 public:
  PathOracle(const astopo::AsGraph& graph, const LatencyModel& model)
      : graph_(graph), model_(model), slots_(graph.as_count()) {}
  ~PathOracle();

  PathOracle(const PathOracle&) = delete;
  PathOracle& operator=(const PathOracle&) = delete;

  // One-way latency src -> dst along the policy path. kUnreachableMs when no
  // route exists.
  [[nodiscard]] Millis one_way_ms(asap::AsId src, asap::AsId dst) const;
  // Round trip: forward plus reverse one-way (routes may be asymmetric).
  [[nodiscard]] Millis rtt_ms(asap::AsId a, asap::AsId b) const;

  // End-to-end loss probability along the one-way / round-trip path.
  [[nodiscard]] double one_way_loss(asap::AsId src, asap::AsId dst) const;
  [[nodiscard]] double rtt_loss(asap::AsId a, asap::AsId b) const;

  // AS hop count of the forward policy path (255 = unreachable).
  [[nodiscard]] std::uint8_t as_hops(asap::AsId src, asap::AsId dst) const;

  // The forward AS-level path (src..dst inclusive); empty when unreachable.
  [[nodiscard]] std::vector<asap::AsId> as_path(asap::AsId src, asap::AsId dst) const;

  // Whether the forward path transits a congested AS or broken link.
  [[nodiscard]] bool path_is_pathological(asap::AsId src, asap::AsId dst) const;

  // Performance API for all-pairs scans: borrowed view of the one-way
  // latencies toward `dest`, indexed by source AS id (kUnreachableMs cast
  // to float for unreachable sources). The span stays valid for the
  // oracle's lifetime; building it caches the destination table.
  [[nodiscard]] std::span<const float> one_way_table(asap::AsId dest) const;

  // Builds the destination tables of `dests` through `pool` so subsequent
  // queries (and the batched World scans) hit the lock-free fast path.
  // Duplicate ids and already-built tables are cheap no-ops; safe to call
  // concurrently with queries.
  void prewarm(std::span<const asap::AsId> dests, ThreadPool& pool) const;

  [[nodiscard]] const astopo::AsGraph& graph() const { return graph_; }
  [[nodiscard]] const LatencyModel& model() const { return model_; }
  [[nodiscard]] std::size_t cached_tables() const {
    return built_.load(std::memory_order_relaxed);
  }

  // --- Incremental invalidation (BGP route flaps) --------------------------
  // After the graph withdraws an edge (AsGraph::set_edge_enabled(e, false)),
  // only destination tables whose selected route tree crosses `e` can
  // change: removing an edge shrinks the candidate route set, so a table
  // that never selected the edge rebuilds bitwise identically. This scans
  // the built tables, evicts exactly the affected ones (lazy rebuild on the
  // next query) and returns their destination ASes so higher layers can
  // invalidate dependent caches (close sets). Edge *recovery* and policy
  // changes can improve routes anywhere, so they must go through
  // invalidate_all().
  //
  // NOT thread-safe against concurrent queries: evicted tables are deleted
  // immediately, so readers holding spans would dangle. Only call from
  // single-threaded protocol simulations (the soak runtime), never during a
  // threaded evaluation sweep.
  std::vector<asap::AsId> invalidate_routes_through(std::uint32_t edge_id);
  // Evicts every built table; returns their destination ASes.
  std::vector<asap::AsId> invalidate_all();
  // Tables evicted by either invalidation entry point since construction.
  [[nodiscard]] std::uint64_t invalidated_tables() const {
    return invalidated_.load(std::memory_order_relaxed);
  }

 private:
  struct DestTable {
    astopo::RouteTable routes;
    std::vector<float> one_way_ms;    // per source AS
    std::vector<float> log_survival;  // log(1 - loss), per source AS
  };

  static constexpr std::size_t kBuildStripes = 64;

  const DestTable& table_for(asap::AsId dest) const;
  std::unique_ptr<DestTable> build_table(asap::AsId dest) const;

  const astopo::AsGraph& graph_;
  const LatencyModel& model_;
  // Flat per-destination cache: a slot is published exactly once with
  // release ordering and stays at a stable address for the oracle's
  // lifetime, so readers never lock.
  mutable std::vector<std::atomic<DestTable*>> slots_;
  mutable std::array<std::mutex, kBuildStripes> build_stripes_;
  mutable std::atomic<std::size_t> built_{0};
  std::atomic<std::uint64_t> invalidated_{0};
};

}  // namespace asap::netmodel
