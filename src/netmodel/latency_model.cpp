#include "netmodel/latency_model.h"

#include <algorithm>

namespace asap::netmodel {

LatencyModel::LatencyModel(const astopo::Topology& topo, const LatencyParams& params,
                           Rng& rng) {
  const astopo::AsGraph& graph = topo.graph;
  const auto edges = graph.edge_count();
  edge_latency_.resize(edges);
  edge_loss_.resize(edges);
  degraded_edge_.assign(edges, 0);
  broken_toward_.assign(edges, asap::AsId::invalid());
  broken_penalty_.assign(edges, 0.0);

  std::vector<std::uint32_t> backbone_links;  // tier-1-adjacent candidates

  for (std::uint32_t e = 0; e < edges; ++e) {
    auto [a, b] = graph.edge_endpoints(e);
    double km = astopo::geo_distance_km(graph.node(a).geo, graph.node(b).geo);
    double detour = rng.uniform(params.detour_min, params.detour_max);
    double base = rng.uniform(params.edge_base_ms_min, params.edge_base_ms_max);
    edge_latency_[e] = km / params.km_per_ms * detour + base;
    edge_loss_[e] = rng.uniform(params.edge_loss_min, params.edge_loss_max);

    astopo::AsTier tier_a = graph.node(a).tier;
    astopo::AsTier tier_b = graph.node(b).tier;
    // Interconnect candidates: links between transit-grade ASes with a
    // tier-1 side — the shared fabric real inter-region traffic crosses.
    bool transit_grade =
        tier_a != astopo::AsTier::kStub && tier_b != astopo::AsTier::kStub;
    if (transit_grade &&
        (tier_a == astopo::AsTier::kTier1 || tier_b == astopo::AsTier::kTier1)) {
      backbone_links.push_back(e);
    }
  }

  // Broken uplinks (the paper's Fig. 4 multi-homing scenario, and the
  // reason fixed/random relay pools sometimes find nothing under a second).
  // Eligible stubs are multi-homed with (a) a best-connected provider P1 —
  // the entry almost every remote BGP path prefers — and (b) a *deep*
  // healthy provider P2, one not directly attached to a tier-1, so via-P2
  // routes are a hop longer and only sources inside P2's own provider
  // subtree use them. Breaking P1's link inbound-only makes the direct path
  // and nearly all relay paths cross the damage, while the few clusters
  // behind P2's region still reach the stub cleanly: exactly the narrow set
  // of quality relays that close-set search finds and blind probing misses.
  auto has_tier1_provider = [&](asap::AsId as) {
    for (const auto& adj : graph.neighbors(as)) {
      if (adj.type == astopo::LinkType::kToProvider &&
          graph.node(adj.neighbor).tier == astopo::AsTier::kTier1) {
        return true;
      }
    }
    return false;
  };
  for (asap::AsId stub : topo.stubs) {
    std::uint32_t victim_edge = 0;
    std::size_t victim_degree = 0;
    std::size_t providers = 0;
    for (const auto& adj : graph.neighbors(stub)) {
      if (adj.type != astopo::LinkType::kToProvider) continue;
      ++providers;
      if (graph.degree(adj.neighbor) > victim_degree) {
        victim_degree = graph.degree(adj.neighbor);
        victim_edge = adj.edge_id;
      }
    }
    if (providers < 2) continue;  // single-homed: unroutable-around
    bool has_deep_alternate = false;
    for (const auto& adj : graph.neighbors(stub)) {
      if (adj.type != astopo::LinkType::kToProvider || adj.edge_id == victim_edge) continue;
      if (graph.node(adj.neighbor).tier == astopo::AsTier::kTier2 &&
          !has_tier1_provider(adj.neighbor)) {
        has_deep_alternate = true;
        break;
      }
    }
    if (!has_deep_alternate) continue;
    if (!rng.chance(params.broken_edge_fraction)) continue;
    degraded_edge_[victim_edge] = 1;
    broken_toward_[victim_edge] = stub;  // inbound direction only
    broken_penalty_[victim_edge] =
        rng.uniform(params.broken_edge_penalty_ms_min, params.broken_edge_penalty_ms_max);
    edge_loss_[victim_edge] = std::min(0.5, edge_loss_[victim_edge] + 0.08);
  }

  // Congested backbone interconnects (Fig. 4 left: "AS H is congested").
  // The K highest-traffic interconnects (degree product as the traffic
  // proxy) saturate — echoing the real Internet, where the famously
  // congested links were precisely the big public peering points. Only the
  // penalty magnitude is random, so every seed reliably produces a
  // population of relay-fixable latent sessions.
  std::size_t interconnects = std::min(params.congested_backbone_links, backbone_links.size());
  std::partial_sort(backbone_links.begin(), backbone_links.begin() + interconnects,
                    backbone_links.end(), [&](std::uint32_t x, std::uint32_t y) {
                      auto weight = [&](std::uint32_t e) {
                        auto [a, b] = graph.edge_endpoints(e);
                        return static_cast<double>(graph.degree(a)) *
                               static_cast<double>(graph.degree(b));
                      };
                      return weight(x) > weight(y);
                    });
  for (std::size_t i = 0; i < interconnects; ++i) {
    std::uint32_t e = backbone_links[i];
    degraded_edge_[e] = 1;
    edge_latency_[e] +=
        rng.uniform(params.backbone_penalty_ms_min, params.backbone_penalty_ms_max);
    edge_loss_[e] = std::min(0.5, edge_loss_[e] + params.backbone_link_loss);
  }

  const auto n = graph.as_count();
  transit_delay_.resize(n);
  transit_loss_.assign(n, 0.0);
  congested_.assign(n, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    asap::AsId as(i);
    transit_delay_[i] = rng.uniform(params.transit_proc_ms_min, params.transit_proc_ms_max);
    bool eligible = graph.node(as).tier == astopo::AsTier::kTier2;
    double degree_scale = std::clamp(8.0 / static_cast<double>(graph.degree(as) + 1), 0.1, 1.0);
    if (eligible && rng.chance(params.congested_tier2_fraction * degree_scale)) {
      congested_[i] = 1;
      transit_delay_[i] +=
          rng.uniform(params.congestion_penalty_ms_min, params.congestion_penalty_ms_max);
      transit_loss_[i] = params.congested_as_loss;
    }
  }
}

std::size_t LatencyModel::congested_as_count() const {
  return static_cast<std::size_t>(std::count(congested_.begin(), congested_.end(), 1));
}

std::size_t LatencyModel::broken_edge_count() const {
  return static_cast<std::size_t>(
      std::count(degraded_edge_.begin(), degraded_edge_.end(), 1));
}

}  // namespace asap::netmodel
