#include "netmodel/oracle.h"

#include <cmath>
#include <mutex>

#include "common/thread_pool.h"

namespace asap::netmodel {

PathOracle::~PathOracle() {
  for (auto& slot : slots_) delete slot.load(std::memory_order_relaxed);
}

const PathOracle::DestTable& PathOracle::table_for(asap::AsId dest) const {
  auto& slot = slots_[dest.value()];
  DestTable* table = slot.load(std::memory_order_acquire);
  if (table != nullptr) return *table;
  // Double-checked init under a striped mutex: distinct destinations build
  // in parallel (different stripes) while a given destination is built
  // exactly once — no duplicate work, no insert race.
  std::lock_guard<std::mutex> lock(build_stripes_[dest.value() % kBuildStripes]);
  table = slot.load(std::memory_order_relaxed);
  if (table == nullptr) {
    table = build_table(dest).release();
    built_.fetch_add(1, std::memory_order_relaxed);
    slot.store(table, std::memory_order_release);
  }
  return *table;
}

std::vector<asap::AsId> PathOracle::invalidate_routes_through(std::uint32_t edge_id) {
  std::vector<asap::AsId> evicted;
  const auto n = graph_.as_count();
  for (std::uint32_t d = 0; d < slots_.size(); ++d) {
    DestTable* table = slots_[d].load(std::memory_order_relaxed);
    if (table == nullptr) continue;
    bool uses_edge = false;
    for (std::uint32_t s = 0; s < n && !uses_edge; ++s) {
      const auto& e = table->routes.entry(asap::AsId(s));
      if (e.cls == astopo::RouteClass::kUnreachable ||
          e.cls == astopo::RouteClass::kSelf) {
        continue;
      }
      uses_edge = e.next_edge == edge_id;
    }
    if (!uses_edge) continue;
    slots_[d].store(nullptr, std::memory_order_relaxed);
    delete table;
    built_.fetch_sub(1, std::memory_order_relaxed);
    invalidated_.fetch_add(1, std::memory_order_relaxed);
    evicted.push_back(asap::AsId(d));
  }
  return evicted;
}

std::vector<asap::AsId> PathOracle::invalidate_all() {
  std::vector<asap::AsId> evicted;
  for (std::uint32_t d = 0; d < slots_.size(); ++d) {
    DestTable* table = slots_[d].load(std::memory_order_relaxed);
    if (table == nullptr) continue;
    slots_[d].store(nullptr, std::memory_order_relaxed);
    delete table;
    built_.fetch_sub(1, std::memory_order_relaxed);
    invalidated_.fetch_add(1, std::memory_order_relaxed);
    evicted.push_back(asap::AsId(d));
  }
  return evicted;
}

void PathOracle::prewarm(std::span<const asap::AsId> dests, ThreadPool& pool) const {
  pool.parallel_for(dests.size(), [&](std::size_t i) { (void)table_for(dests[i]); });
}

std::unique_ptr<PathOracle::DestTable> PathOracle::build_table(asap::AsId dest) const {
  auto table = std::make_unique<DestTable>(
      DestTable{astopo::compute_routes(graph_, dest), {}, {}});
  const auto n = graph_.as_count();
  table->one_way_ms.assign(n, static_cast<float>(kUnreachableMs));
  table->log_survival.assign(n, 0.0f);

  // Dynamic programming in increasing hop order: each AS's latency/loss is
  // its next hop's value plus the connecting edge, plus the next hop's
  // transit contribution when the next hop is not the destination itself.
  std::vector<std::vector<asap::AsId>> buckets(256);
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto& e = table->routes.entry(asap::AsId(i));
    if (e.cls != astopo::RouteClass::kUnreachable) buckets[e.hops].push_back(asap::AsId(i));
  }
  table->one_way_ms[dest.value()] = 0.0f;
  for (std::size_t h = 1; h < buckets.size(); ++h) {
    for (asap::AsId y : buckets[h]) {
      const auto& e = table->routes.entry(y);
      asap::AsId next = e.next_hop;
      // The edge is traversed y -> next (toward the destination).
      float lat = table->one_way_ms[next.value()] +
                  static_cast<float>(model_.edge_latency_ms(e.next_edge, next));
      float logsurv = table->log_survival[next.value()] +
                      static_cast<float>(std::log1p(-model_.edge_loss(e.next_edge)));
      if (next != dest) {
        lat += static_cast<float>(model_.transit_delay_ms(next));
        logsurv += static_cast<float>(std::log1p(-model_.transit_loss(next)));
      }
      table->one_way_ms[y.value()] = lat;
      table->log_survival[y.value()] = logsurv;
    }
  }
  return table;
}

std::span<const float> PathOracle::one_way_table(asap::AsId dest) const {
  return table_for(dest).one_way_ms;
}

Millis PathOracle::one_way_ms(asap::AsId src, asap::AsId dst) const {
  if (src == dst) return 0.0;
  const auto& t = table_for(dst);
  if (!t.routes.reachable(src)) return kUnreachableMs;
  return t.one_way_ms[src.value()];
}

Millis PathOracle::rtt_ms(asap::AsId a, asap::AsId b) const {
  Millis fwd = one_way_ms(a, b);
  Millis rev = one_way_ms(b, a);
  if (fwd >= kUnreachableMs || rev >= kUnreachableMs) return kUnreachableMs;
  return fwd + rev;
}

double PathOracle::one_way_loss(asap::AsId src, asap::AsId dst) const {
  if (src == dst) return 0.0;
  const auto& t = table_for(dst);
  if (!t.routes.reachable(src)) return 1.0;
  return 1.0 - std::exp(static_cast<double>(t.log_survival[src.value()]));
}

double PathOracle::rtt_loss(asap::AsId a, asap::AsId b) const {
  double fwd = one_way_loss(a, b);
  double rev = one_way_loss(b, a);
  return 1.0 - (1.0 - fwd) * (1.0 - rev);
}

std::uint8_t PathOracle::as_hops(asap::AsId src, asap::AsId dst) const {
  if (src == dst) return 0;
  const auto& t = table_for(dst);
  return t.routes.entry(src).hops;
}

std::vector<asap::AsId> PathOracle::as_path(asap::AsId src, asap::AsId dst) const {
  if (src == dst) return {src};
  return table_for(dst).routes.path(src);
}

bool PathOracle::path_is_pathological(asap::AsId src, asap::AsId dst) const {
  if (src == dst) return false;
  const auto& t = table_for(dst);
  if (!t.routes.reachable(src)) return true;
  asap::AsId cur = src;
  while (cur != dst) {
    const auto& e = t.routes.entry(cur);
    if (model_.is_broken(e.next_edge)) return true;
    if (e.next_hop != dst && model_.is_congested(e.next_hop)) return true;
    cur = e.next_hop;
  }
  return false;
}

}  // namespace asap::netmodel
