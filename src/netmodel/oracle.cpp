#include "netmodel/oracle.h"

#include <cassert>
#include <cmath>
#include <mutex>

#include "common/thread_pool.h"

namespace asap::netmodel {

namespace {

std::uint16_t encode_rtt_quant(float ms) {
  if (ms >= static_cast<float>(kUnreachableMs)) return kQuantUnreachable;
  long units = std::lround(ms / kRttQuantStepMs);
  if (units < 0) units = 0;
  // 0xFFFE is the largest *reachable* code (~2047.97 ms); 0xFFFF is the
  // unreachable sentinel.
  if (units >= kQuantUnreachable) units = kQuantUnreachable - 1;
  return static_cast<std::uint16_t>(units);
}

std::uint16_t encode_log_survival_quant(float log_survival) {
  long units = std::lround(-log_survival / kLogSurvQuantStep);
  if (units < 0) units = 0;
  if (units > 0xFFFF) units = 0xFFFF;  // survival floor e^-16 ~ total loss
  return static_cast<std::uint16_t>(units);
}

}  // namespace

PathOracle::PathOracle(const astopo::AsGraph& graph, const LatencyModel& model,
                       const OracleCacheParams& cache)
    : graph_(graph), model_(model), cache_(cache), slots_(graph.as_count()),
      ref_bits_(cache.budget_bytes > 0 ? graph.as_count() : 0) {}

PathOracle::~PathOracle() {
  for (auto& slot : slots_) delete slot.load(std::memory_order_relaxed);
  purge_retired();
}

const PathOracle::DestTable& PathOracle::table_for(asap::AsId dest) const {
  auto& slot = slots_[dest.value()];
  DestTable* table = slot.load(std::memory_order_acquire);
  if (table != nullptr) {
    if (bounded()) {
      // CLOCK touch: one relaxed byte store; only the bounded configuration
      // pays it, the default fast path stays a bare acquire load.
      ref_bits_[dest.value()].store(1, std::memory_order_relaxed);
      hits_.fetch_add(1, std::memory_order_relaxed);
    }
    return *table;
  }
  // Double-checked init under a striped mutex: distinct destinations build
  // in parallel (different stripes) while a given destination is built
  // exactly once per residency — no duplicate work, no insert race.
  std::lock_guard<std::mutex> lock(build_stripes_[dest.value() % kBuildStripes]);
  table = slot.load(std::memory_order_relaxed);
  if (table == nullptr) {
    table = build_table(dest).release();
    built_.fetch_add(1, std::memory_order_relaxed);
    builds_.fetch_add(1, std::memory_order_relaxed);
    cached_bytes_.fetch_add(table->bytes, std::memory_order_relaxed);
    if (bounded()) ref_bits_[dest.value()].store(1, std::memory_order_relaxed);
    slot.store(table, std::memory_order_release);
    if (bounded() && cached_bytes_.load(std::memory_order_relaxed) > cache_.budget_bytes) {
      evict_to_budget(dest.value());
    }
  }
  return *table;
}

void PathOracle::evict_to_budget(std::uint32_t protect) const {
  std::lock_guard<std::mutex> lock(evict_mutex_);
  const std::size_t n = slots_.size();
  // Bounded sweep: two passes at most (one to strip ref bits, one to evict)
  // so a budget smaller than a single table terminates instead of spinning.
  std::size_t swept = 0;
  while (cached_bytes_.load(std::memory_order_relaxed) > cache_.budget_bytes &&
         swept < 2 * n) {
    const std::uint32_t d = clock_hand_;
    clock_hand_ = static_cast<std::uint32_t>((clock_hand_ + 1) % n);
    ++swept;
    if (d == protect) continue;
    if (slots_[d].load(std::memory_order_relaxed) == nullptr) continue;
    if (ref_bits_[d].exchange(0, std::memory_order_relaxed) != 0) continue;  // second chance
    DestTable* table = slots_[d].exchange(nullptr, std::memory_order_acq_rel);
    if (table == nullptr) continue;
    // Concurrent readers may still hold spans into this table: retire it
    // (freed at the next purge_retired() quiescent point), never delete.
    retired_.push_back(table);
    retired_bytes_ += table->bytes;
    cached_bytes_.fetch_sub(table->bytes, std::memory_order_relaxed);
    built_.fetch_sub(1, std::memory_order_relaxed);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void PathOracle::purge_retired() const {
  std::lock_guard<std::mutex> lock(evict_mutex_);
  for (DestTable* table : retired_) delete table;
  retired_.clear();
  retired_bytes_ = 0;
}

OracleCacheStats PathOracle::cache_stats() const {
  OracleCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.builds = builds_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.cached_tables = built_.load(std::memory_order_relaxed);
  stats.cached_bytes = cached_bytes_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(evict_mutex_);
    stats.retired_bytes = retired_bytes_;
  }
  return stats;
}

void PathOracle::drop_table_locked(std::uint32_t d, DestTable* table) {
  slots_[d].store(nullptr, std::memory_order_relaxed);
  cached_bytes_.fetch_sub(table->bytes, std::memory_order_relaxed);
  delete table;
  built_.fetch_sub(1, std::memory_order_relaxed);
  invalidated_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<asap::AsId> PathOracle::invalidate_routes_through(std::uint32_t edge_id) {
  std::vector<asap::AsId> evicted;
  const auto n = graph_.as_count();
  for (std::uint32_t d = 0; d < slots_.size(); ++d) {
    DestTable* table = slots_[d].load(std::memory_order_relaxed);
    if (table == nullptr) continue;
    bool uses_edge = false;
    for (std::uint32_t s = 0; s < n && !uses_edge; ++s) {
      const auto& e = table->routes.entry(asap::AsId(s));
      if (e.cls == astopo::RouteClass::kUnreachable ||
          e.cls == astopo::RouteClass::kSelf) {
        continue;
      }
      uses_edge = e.next_edge == edge_id;
    }
    if (!uses_edge) continue;
    drop_table_locked(d, table);
    evicted.push_back(asap::AsId(d));
  }
  return evicted;
}

std::vector<asap::AsId> PathOracle::invalidate_all() {
  std::vector<asap::AsId> evicted;
  for (std::uint32_t d = 0; d < slots_.size(); ++d) {
    DestTable* table = slots_[d].load(std::memory_order_relaxed);
    if (table == nullptr) continue;
    drop_table_locked(d, table);
    evicted.push_back(asap::AsId(d));
  }
  return evicted;
}

void PathOracle::prewarm(std::span<const asap::AsId> dests, ThreadPool& pool) const {
  pool.parallel_for(dests.size(), [&](std::size_t i) { (void)table_for(dests[i]); });
}

std::unique_ptr<PathOracle::DestTable> PathOracle::build_table(asap::AsId dest) const {
  auto table = std::make_unique<DestTable>(
      DestTable{astopo::compute_routes(graph_, dest), {}, {}, {}, {}, 0});
  const auto n = graph_.as_count();
  table->one_way_ms.assign(n, static_cast<float>(kUnreachableMs));
  table->log_survival.assign(n, 0.0f);

  // Dynamic programming in increasing hop order: each AS's latency/loss is
  // its next hop's value plus the connecting edge, plus the next hop's
  // transit contribution when the next hop is not the destination itself.
  std::vector<std::vector<asap::AsId>> buckets(256);
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto& e = table->routes.entry(asap::AsId(i));
    if (e.cls != astopo::RouteClass::kUnreachable) buckets[e.hops].push_back(asap::AsId(i));
  }
  table->one_way_ms[dest.value()] = 0.0f;
  for (std::size_t h = 1; h < buckets.size(); ++h) {
    for (asap::AsId y : buckets[h]) {
      const auto& e = table->routes.entry(y);
      asap::AsId next = e.next_hop;
      // The edge is traversed y -> next (toward the destination).
      float lat = table->one_way_ms[next.value()] +
                  static_cast<float>(model_.edge_latency_ms(e.next_edge, next));
      float logsurv = table->log_survival[next.value()] +
                      static_cast<float>(std::log1p(-model_.edge_loss(e.next_edge)));
      if (next != dest) {
        lat += static_cast<float>(model_.transit_delay_ms(next));
        logsurv += static_cast<float>(std::log1p(-model_.transit_loss(next)));
      }
      table->one_way_ms[y.value()] = lat;
      table->log_survival[y.value()] = logsurv;
    }
  }

  if (cache_.compact_tables) {
    // Quantize the DP result to u16 and drop the float arrays: the DP
    // itself always accumulates in float so full and compact mode agree to
    // within the quantization step.
    table->one_way_q.resize(n);
    table->log_survival_q.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      table->one_way_q[i] = table->routes.reachable(asap::AsId(i))
                                ? encode_rtt_quant(table->one_way_ms[i])
                                : kQuantUnreachable;
      table->log_survival_q[i] = encode_log_survival_quant(table->log_survival[i]);
    }
    std::vector<float>().swap(table->one_way_ms);
    std::vector<float>().swap(table->log_survival);
  }

  // Deterministic size accounting (element arithmetic, not allocator
  // introspection) so budget behavior is machine-independent.
  table->bytes = sizeof(DestTable) +
                 table->routes.size() * sizeof(astopo::RouteEntry) +
                 table->one_way_ms.size() * sizeof(float) +
                 table->log_survival.size() * sizeof(float) +
                 table->one_way_q.size() * sizeof(std::uint16_t) +
                 table->log_survival_q.size() * sizeof(std::uint16_t);
  return table;
}

std::span<const float> PathOracle::one_way_table(asap::AsId dest) const {
  assert(!cache_.compact_tables && "use one_way_table_q() in compact mode");
  return table_for(dest).one_way_ms;
}

std::span<const std::uint16_t> PathOracle::one_way_table_q(asap::AsId dest) const {
  assert(cache_.compact_tables && "use one_way_table() in full mode");
  return table_for(dest).one_way_q;
}

Millis PathOracle::one_way_ms(asap::AsId src, asap::AsId dst) const {
  if (src == dst) return 0.0;
  const auto& t = table_for(dst);
  if (!t.routes.reachable(src)) return kUnreachableMs;
  if (cache_.compact_tables) return decode_rtt_quant(t.one_way_q[src.value()]);
  return t.one_way_ms[src.value()];
}

Millis PathOracle::rtt_ms(asap::AsId a, asap::AsId b) const {
  Millis fwd = one_way_ms(a, b);
  Millis rev = one_way_ms(b, a);
  if (fwd >= kUnreachableMs || rev >= kUnreachableMs) return kUnreachableMs;
  return fwd + rev;
}

double PathOracle::one_way_loss(asap::AsId src, asap::AsId dst) const {
  if (src == dst) return 0.0;
  const auto& t = table_for(dst);
  if (!t.routes.reachable(src)) return 1.0;
  if (cache_.compact_tables) {
    return 1.0 - std::exp(decode_log_survival_quant(t.log_survival_q[src.value()]));
  }
  return 1.0 - std::exp(static_cast<double>(t.log_survival[src.value()]));
}

double PathOracle::rtt_loss(asap::AsId a, asap::AsId b) const {
  double fwd = one_way_loss(a, b);
  double rev = one_way_loss(b, a);
  return 1.0 - (1.0 - fwd) * (1.0 - rev);
}

std::uint8_t PathOracle::as_hops(asap::AsId src, asap::AsId dst) const {
  if (src == dst) return 0;
  const auto& t = table_for(dst);
  return t.routes.entry(src).hops;
}

std::vector<asap::AsId> PathOracle::as_path(asap::AsId src, asap::AsId dst) const {
  if (src == dst) return {src};
  return table_for(dst).routes.path(src);
}

bool PathOracle::path_is_pathological(asap::AsId src, asap::AsId dst) const {
  if (src == dst) return false;
  const auto& t = table_for(dst);
  if (!t.routes.reachable(src)) return true;
  asap::AsId cur = src;
  while (cur != dst) {
    const auto& e = t.routes.entry(cur);
    if (model_.is_broken(e.next_edge)) return true;
    if (e.next_hop != dst && model_.is_congested(e.next_hop)) return true;
    cur = e.next_hop;
  }
  return false;
}

}  // namespace asap::netmodel
