// KingEstimator: simulates the King latency-measurement tool (Gummadi et
// al., IMW'02) the paper uses for its all-pairs delegate RTT study.
//
// King estimates host-to-host RTT through recursive DNS queries; compared
// with the true path RTT it (a) is noisy and (b) fails for a fraction of
// pairs (the paper got 1,498,749 responses out of 2,130,140 queries, ~70%).
// Both effects are reproduced deterministically: a pair either always
// responds or never does, and the noise factor is fixed per pair, so that
// repeated measurements of the same pair agree (as cached DNS-based
// estimates would).
#pragma once

#include <cstdint>
#include <optional>

#include "netmodel/oracle.h"
#include "common/units.h"

namespace asap::netmodel {

struct KingParams {
  double response_rate = 0.70;   // fraction of pairs that yield an estimate
  double noise_sigma = 0.08;     // lognormal multiplicative noise
  Millis dns_overhead_ms = 2.0;  // extra resolver handling time
};

class KingEstimator {
 public:
  KingEstimator(const PathOracle& oracle, const KingParams& params, std::uint64_t seed)
      : oracle_(oracle), params_(params), seed_(seed) {}

  // Estimated RTT between two ASes, or nullopt when the pair's DNS servers
  // do not answer recursive queries. Deterministic per (a, b) unordered pair.
  [[nodiscard]] std::optional<Millis> measure_rtt(asap::AsId a, asap::AsId b) const;

  [[nodiscard]] const KingParams& params() const { return params_; }

 private:
  const PathOracle& oracle_;
  KingParams params_;
  std::uint64_t seed_;
};

}  // namespace asap::netmodel
