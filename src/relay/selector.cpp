#include "relay/selector.h"

#include <algorithm>

#include "population/nat.h"
#include "voip/quality.h"

namespace asap::relay {

SelectionResult evaluate_relay_pool(const population::World& world,
                                    const population::Session& session,
                                    const std::vector<HostId>& pool) {
  SelectionResult result;
  for (HostId relay : pool) {
    if (relay == session.caller || relay == session.callee) continue;
    result.messages += 2;  // probe the relay path through this node
    // A NATed candidate cannot accept the relayed flows: the probe is spent
    // but the node yields nothing (the waste AS-unaware probing pays).
    if (!population::can_serve_as_relay(world.pop().peer(relay).nat)) continue;
    Millis rtt = world.relay_rtt_ms(session.caller, relay, session.callee);
    if (voip::is_quality_rtt(rtt)) ++result.quality_paths;
    if (rtt < result.shortest_rtt_ms) {
      result.shortest_rtt_ms = rtt;
      result.shortest_loss = world.relay_loss(session.caller, relay, session.callee);
    }
  }
  return result;
}

std::vector<HostId> dedicated_nodes(const population::World& world, std::size_t count) {
  const auto& pop = world.pop();
  const auto& graph = world.graph();
  std::vector<ClusterId> clusters = pop.populated_clusters();
  std::stable_sort(clusters.begin(), clusters.end(), [&](ClusterId a, ClusterId b) {
    return graph.degree(pop.cluster(a).as) > graph.degree(pop.cluster(b).as);
  });
  std::vector<HostId> nodes;
  for (ClusterId c : clusters) {
    if (nodes.size() >= count) break;
    nodes.push_back(pop.cluster(c).surrogate);
  }
  return nodes;
}

}  // namespace asap::relay
