#include "relay/selector.h"

#include <algorithm>
#include <numeric>

#include "population/nat.h"
#include "voip/quality.h"

namespace asap::relay {

SelectionResult evaluate_relay_pool(const population::World& world,
                                    const population::Session& session,
                                    std::span<const HostId> pool) {
  SelectionResult result;
  // Per-thread scratch: evaluation workers call this once per session, so
  // the buffer is reused across the whole shard without reallocation.
  static thread_local std::vector<Millis> rtts;
  rtts.resize(pool.size());
  world.batch_relay_rtts(session, pool, rtts);

  const auto& pop = world.pop();
  std::size_t best = SIZE_MAX;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    HostId relay = pool[i];
    if (relay == session.caller || relay == session.callee) continue;
    result.messages += 2;  // probe the relay path through this node
    // A NATed candidate cannot accept the relayed flows: the probe is spent
    // but the node yields nothing (the waste AS-unaware probing pays).
    if (!population::can_serve_as_relay(pop.peer_nat(relay))) continue;
    Millis rtt = rtts[i];
    if (voip::is_quality_rtt(rtt)) ++result.quality_paths;
    if (rtt < result.shortest_rtt_ms) {
      result.shortest_rtt_ms = rtt;
      best = i;
    }
  }
  if (best != SIZE_MAX) {
    result.shortest_loss = world.relay_loss(session.caller, pool[best], session.callee);
  }
  return result;
}

std::vector<HostId> dedicated_nodes(const population::World& world, std::size_t count) {
  const population::RelayDirectory& dir = world.relay_directory();
  std::vector<std::size_t> order(dir.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return dir.as_degree[a] > dir.as_degree[b];
  });
  std::vector<HostId> nodes;
  nodes.reserve(std::min(count, order.size()));
  for (std::size_t i : order) {
    if (nodes.size() >= count) break;
    nodes.push_back(dir.surrogates[i]);
  }
  return nodes;
}

}  // namespace asap::relay
