#include "relay/asap_selector.h"

namespace asap::relay {

namespace {

SelectionResult to_selection(const core::SelectRelayResult& detail) {
  SelectionResult result;
  result.quality_paths = detail.quality_paths();
  result.shortest_rtt_ms = detail.best.rtt_ms;
  result.shortest_loss = detail.best.loss;
  result.messages = detail.messages;
  return result;
}

}  // namespace

SelectionResult AsapSelector::select_session(const population::Session& session,
                                             std::uint64_t session_index) {
  Rng rng = base_rng_.fork(session_index);
  core::SelectRelayResult detail =
      core::select_close_relay(world_, *source_, session, rng);
  return to_selection(detail);
}

SelectionResult AsapSelector::select(const population::Session& session) {
  Rng rng = base_rng_.fork(serial_index_++);
  last_ = core::select_close_relay(world_, *source_, session, rng);
  return to_selection(last_);
}

}  // namespace asap::relay
