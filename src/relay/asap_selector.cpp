#include "relay/asap_selector.h"

namespace asap::relay {

SelectionResult AsapSelector::select(const population::Session& session) {
  last_ = core::select_close_relay(world_, cache_, session, rng_);
  SelectionResult result;
  result.quality_paths = last_.quality_paths();
  result.shortest_rtt_ms = last_.best.rtt_ms;
  result.shortest_loss = last_.best.loss;
  result.messages = last_.messages;
  return result;
}

}  // namespace asap::relay
