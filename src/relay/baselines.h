// The paper's baseline relay-selection methods (Sec. 7.1):
//   DEDI — RON-like: a fixed pool of dedicated relays in the 80
//          largest-degree clusters, all probed each session.
//   RAND — SOSR-like: 200 peers drawn uniformly at random per session.
//   MIX  — 40 dedicated plus 120 random per session.
//   OPT  — offline optimum with "all latency data on hand through one-hop
//          and two-hop relay path iterations".
//
// Directory-consuming selectors (DEDI, MIX, OPT) read their control-plane
// state from a RelayDirectory; the convenience constructors default to the
// world's flat global directory, and the provider-aware make_selectors
// overload (evaluation.h) routes a CloseSetProvider's directory in instead.
#pragma once

#include <memory>
#include <vector>

#include "population/relay_directory.h"
#include "relay/selector.h"
#include "common/rng.h"

namespace asap::relay {

struct BaselineConfig {
  std::size_t dedi_nodes = 80;
  std::size_t rand_nodes = 200;
  std::size_t mix_dedicated = 40;
  std::size_t mix_random = 120;
  // OPT two-hop beam: the best `opt_two_hop_beam` one-hop legs from each
  // endpoint are combined exhaustively (see OptSelector doc).
  std::size_t opt_two_hop_beam = 64;
};

// The `count` populated clusters with the largest AS connection degrees
// (DEDI's deployment rule: "80 nodes in 80 clusters with the largest
// connection degrees"); one node (the surrogate) per cluster.
std::vector<HostId> dedicated_nodes(const population::RelayDirectory& dir,
                                    std::size_t count);

class DediSelector : public Selector {
 public:
  DediSelector(const population::World& world, const population::RelayDirectory& dir,
               std::size_t node_count);
  // Convenience: the world's flat global directory.
  DediSelector(const population::World& world, std::size_t node_count)
      : DediSelector(world, world.relay_directory(), node_count) {}
  [[nodiscard]] std::string name() const override { return "DEDI"; }
  SelectionResult select_session(const population::Session& session,
                                 std::uint64_t session_index) override;

 private:
  const population::World& world_;
  std::vector<HostId> pool_;
};

// RAND and MIX draw their per-session random pools from a stream forked off
// the base RNG by session index (base_rng_ itself is never advanced), which
// makes select_session safe to call concurrently and its result a pure
// function of (session, index).
class RandSelector : public Selector {
 public:
  RandSelector(const population::World& world, std::size_t node_count, Rng rng);
  [[nodiscard]] std::string name() const override { return "RAND"; }
  SelectionResult select_session(const population::Session& session,
                                 std::uint64_t session_index) override;

 private:
  const population::World& world_;
  std::size_t node_count_;
  Rng base_rng_;
};

class MixSelector : public Selector {
 public:
  MixSelector(const population::World& world, const population::RelayDirectory& dir,
              std::size_t dedicated, std::size_t random, Rng rng);
  MixSelector(const population::World& world, std::size_t dedicated, std::size_t random,
              Rng rng)
      : MixSelector(world, world.relay_directory(), dedicated, random, rng) {}
  [[nodiscard]] std::string name() const override { return "MIX"; }
  SelectionResult select_session(const population::Session& session,
                                 std::uint64_t session_index) override;

 private:
  const population::World& world_;
  std::vector<HostId> dedicated_;
  std::size_t random_count_;
  Rng base_rng_;
};

// OPT iterates every populated cluster's delegate as a one-hop relay; for
// the two-hop search it exhaustively combines the `beam` best legs from the
// caller side with the `beam` best legs into the callee (a near-exact
// reduction of the O(n^2) full iteration: a two-hop optimum must pair a
// short caller leg with a short callee leg, and the beam far exceeds the
// number of competitive legs). OPT is an offline method: its "messages" are
// reported as 0, matching the paper's treatment (it never appears in the
// overhead figure).
class OptSelector : public Selector {
 public:
  OptSelector(const population::World& world, const population::RelayDirectory& dir,
              std::size_t two_hop_beam, bool enable_two_hop = true);
  OptSelector(const population::World& world, std::size_t two_hop_beam,
              bool enable_two_hop = true)
      : OptSelector(world, world.relay_directory(), two_hop_beam, enable_two_hop) {}
  [[nodiscard]] std::string name() const override { return "OPT"; }
  SelectionResult select_session(const population::Session& session,
                                 std::uint64_t session_index) override;

 private:
  const population::World& world_;
  const population::RelayDirectory& dir_;
  std::size_t beam_;
  bool two_hop_;
};

}  // namespace asap::relay
