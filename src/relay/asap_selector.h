// ASAP as a RelaySelector: wraps the algorithmic select-close-relay() with
// a shared close-set cache (surrogates amortize close-set construction
// across all sessions of their cluster, as in the deployed protocol).
#pragma once

#include "core/close_cluster.h"
#include "core/select_relay.h"
#include "relay/selector.h"

namespace asap::relay {

class AsapSelector : public RelaySelector {
 public:
  AsapSelector(const population::World& world, const core::AsapParams& params, Rng rng)
      : world_(world), cache_(world, params), base_rng_(rng) {}

  [[nodiscard]] std::string name() const override { return "ASAP"; }
  // Thread-safe (the close-set cache is concurrent); does not touch
  // last_detail().
  SelectionResult select_session(const population::Session& session,
                                 std::uint64_t session_index) override;
  // Serial path: additionally records the protocol-level detail below.
  SelectionResult select(const population::Session& session) override;

  // Full protocol-level result of the last serial select() call (two-hop
  // counts, accepted clusters, ...), for benches that need more than the
  // common metrics.
  [[nodiscard]] const core::SelectRelayResult& last_detail() const { return last_; }
  [[nodiscard]] core::CloseSetCache& cache() { return cache_; }

 private:
  const population::World& world_;
  core::CloseSetCache cache_;
  Rng base_rng_;
  std::uint64_t serial_index_ = 0;  // numbers serial select() calls
  core::SelectRelayResult last_;
};

}  // namespace asap::relay
