// ASAP as a relay::Selector: wraps the algorithmic select-close-relay()
// behind the common interface. The flat constructor owns a shared
// concurrent close-set cache (surrogates amortize close-set construction
// across all sessions of their cluster, as in the deployed protocol); the
// source-backed constructor consults an external control plane instead —
// e.g. overlay::FederatedControlPlane's gossip-maintained information
// bases — without changing the selection algorithm.
#pragma once

#include <memory>

#include "core/close_cluster.h"
#include "core/close_set_source.h"
#include "core/select_relay.h"
#include "relay/selector.h"

namespace asap::relay {

class AsapSelector : public Selector {
 public:
  // Flat default: a private concurrent cache over the world's ground truth
  // (byte-identical to the pre-overlay selector).
  AsapSelector(const population::World& world, const core::AsapParams& params, Rng rng)
      : world_(world),
        flat_(std::make_unique<core::FlatCloseSetSource>(world, params)),
        source_(flat_.get()),
        base_rng_(rng) {}
  // Control-plane-backed: selection reads close sets from `source` (which
  // must outlive the selector). Whether a two-hop view costs setup messages
  // is the source's call (fetched flag) — the selection algorithm itself is
  // unchanged.
  AsapSelector(const population::World& world, core::CloseSetSource& source, Rng rng)
      : world_(world), source_(&source), base_rng_(rng) {}

  [[nodiscard]] std::string name() const override { return "ASAP"; }
  // Thread-safe (the close-set source is concurrent); does not touch
  // last_detail().
  SelectionResult select_session(const population::Session& session,
                                 std::uint64_t session_index) override;
  // Serial path: additionally records the protocol-level detail below.
  SelectionResult select(const population::Session& session) override;

  // Full protocol-level result of the last serial select() call (two-hop
  // counts, accepted clusters, ...), for benches that need more than the
  // common metrics.
  [[nodiscard]] const core::SelectRelayResult& last_detail() const { return last_; }
  // The owned flat cache. Only valid for flat-constructed selectors (the
  // staleness/ablation benches); source-backed selectors have no cache of
  // their own.
  [[nodiscard]] core::CloseSetCache& cache() { return flat_->cache(); }

 private:
  const population::World& world_;
  std::unique_ptr<core::FlatCloseSetSource> flat_;  // null when source-backed
  core::CloseSetSource* source_;
  Rng base_rng_;
  std::uint64_t serial_index_ = 0;  // numbers serial select() calls
  core::SelectRelayResult last_;
};

}  // namespace asap::relay
