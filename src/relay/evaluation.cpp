#include "relay/evaluation.h"

namespace asap::relay {

std::vector<std::unique_ptr<RelaySelector>> make_selectors(const population::World& world,
                                                           const EvaluationConfig& config) {
  std::vector<std::unique_ptr<RelaySelector>> selectors;
  selectors.push_back(
      std::make_unique<DediSelector>(world, config.baselines.dedi_nodes));
  selectors.push_back(std::make_unique<RandSelector>(world, config.baselines.rand_nodes,
                                                     world.fork_rng(config.seed_salt + 1)));
  selectors.push_back(std::make_unique<MixSelector>(world, config.baselines.mix_dedicated,
                                                    config.baselines.mix_random,
                                                    world.fork_rng(config.seed_salt + 2)));
  selectors.push_back(std::make_unique<AsapSelector>(world, config.asap,
                                                     world.fork_rng(config.seed_salt + 3)));
  if (config.include_opt) {
    selectors.push_back(
        std::make_unique<OptSelector>(world, config.baselines.opt_two_hop_beam));
  }
  return selectors;
}

std::vector<MethodResults> evaluate_methods(const population::World& world,
                                            const std::vector<population::Session>& sessions,
                                            const EvaluationConfig& config) {
  auto selectors = make_selectors(world, config);
  voip::EModel emodel(config.codec);
  std::vector<MethodResults> results;
  for (auto& selector : selectors) {
    MethodResults mr;
    mr.method = selector->name();
    mr.quality_paths.reserve(sessions.size());
    for (const auto& session : sessions) {
      SelectionResult r = selector->select(session);
      mr.quality_paths.push_back(static_cast<double>(r.quality_paths));
      // The best available path: the best relay path, or the direct path
      // when no relay improves on it / none was found.
      Millis rtt = std::min(r.shortest_rtt_ms, session.direct_rtt_ms);
      double loss = r.shortest_rtt_ms <= session.direct_rtt_ms ? r.shortest_loss
                                                               : session.direct_loss;
      mr.shortest_rtt_ms.push_back(rtt);
      double mos_loss = config.fixed_loss_for_mos ? config.fixed_loss : loss;
      mr.highest_mos.push_back(emodel.mos_for_rtt(rtt, mos_loss));
      mr.messages.push_back(static_cast<double>(r.messages));
    }
    results.push_back(std::move(mr));
  }
  return results;
}

}  // namespace asap::relay
