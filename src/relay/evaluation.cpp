#include "relay/evaluation.h"

#include <algorithm>

#include "common/thread_pool.h"

namespace asap::relay {

namespace {

// Shared suite builder: DEDI/MIX/OPT read `dir`, ASAP is supplied by the
// caller (flat-owned or provider-backed). Construction order and RNG seeds
// are the published contract — both public overloads route through here so
// they cannot drift apart.
std::vector<std::unique_ptr<Selector>> make_suite(const population::World& world,
                                                  const EvaluationConfig& config,
                                                  const population::RelayDirectory& dir,
                                                  std::unique_ptr<Selector> asap) {
  std::vector<std::unique_ptr<Selector>> selectors;
  selectors.push_back(
      std::make_unique<DediSelector>(world, dir, config.baselines.dedi_nodes));
  selectors.push_back(std::make_unique<RandSelector>(world, config.baselines.rand_nodes,
                                                     world.fork_rng(config.seed_salt + 1)));
  selectors.push_back(std::make_unique<MixSelector>(world, dir,
                                                    config.baselines.mix_dedicated,
                                                    config.baselines.mix_random,
                                                    world.fork_rng(config.seed_salt + 2)));
  selectors.push_back(std::move(asap));
  if (config.include_opt) {
    selectors.push_back(
        std::make_unique<OptSelector>(world, dir, config.baselines.opt_two_hop_beam));
  }
  return selectors;
}

std::vector<MethodResults> run_methods(const population::World& world,
                                       const std::vector<population::Session>& sessions,
                                       const EvaluationConfig& config,
                                       std::vector<std::unique_ptr<Selector>> selectors) {
  voip::EModel emodel(config.codec);
  ThreadPool pool(ThreadPool::resolve_threads(config.threads));
  // Build every destination table the selectors can touch up front, in
  // parallel. Afterwards each oracle access in the session loops is a pure
  // lock-free load — no worker ever stalls on a cold table build.
  world.oracle().prewarm(world.pop().host_ases(), pool);
  std::vector<MethodResults> results;
  for (auto& selector : selectors) {
    MethodResults mr;
    mr.method = selector->name();
    // Per-method observability handles, resolved once before the loop so the
    // worker-side records are single relaxed atomic adds (detached no-op
    // handles when config.metrics is null).
    Counter m_sessions, m_messages, m_relay_wins;
    Histogram m_rtt, m_mos;
    if (config.metrics != nullptr) {
      const std::string prefix = "eval." + mr.method;
      m_sessions = config.metrics->counter(prefix + ".sessions");
      m_messages = config.metrics->counter(prefix + ".messages");
      m_relay_wins = config.metrics->counter(prefix + ".relay_wins");
      m_rtt = config.metrics->histogram(
          prefix + ".best_rtt_ms",
          {50.0, 100.0, 150.0, 200.0, 250.0, 300.0, 400.0, 600.0, 1000.0});
      m_mos = config.metrics->histogram(prefix + ".mos",
                                        {1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5});
    }
    // Pre-sized, position-indexed outputs: worker scheduling cannot reorder
    // or interleave them, which keeps results identical for any thread count.
    mr.quality_paths.resize(sessions.size());
    mr.shortest_rtt_ms.resize(sessions.size());
    mr.highest_mos.resize(sessions.size());
    mr.messages.resize(sessions.size());
    Selector* sel = selector.get();
    pool.parallel_for(sessions.size(), [&, sel](std::size_t i) {
      const auto& session = sessions[i];
      SelectionResult r = sel->select_session(session, i);
      mr.quality_paths[i] = static_cast<double>(r.quality_paths);
      // The best available path: the best relay path, or the direct path
      // when no relay improves on it / none was found.
      Millis rtt = std::min(r.shortest_rtt_ms, session.direct_rtt_ms);
      double loss = best_path_loss(r.shortest_rtt_ms, r.shortest_loss,
                                   session.direct_rtt_ms, session.direct_loss);
      mr.shortest_rtt_ms[i] = rtt;
      double mos_loss = config.fixed_loss_for_mos ? config.fixed_loss : loss;
      mr.highest_mos[i] = emodel.mos_for_rtt(rtt, mos_loss);
      mr.messages[i] = static_cast<double>(r.messages);
      m_sessions.inc();
      m_messages.add(r.messages);
      if (r.shortest_rtt_ms < session.direct_rtt_ms) m_relay_wins.inc();
      if (rtt < kUnreachableMs) m_rtt.observe(rtt);
      m_mos.observe(mr.highest_mos[i]);
    });
    results.push_back(std::move(mr));
  }
  // Quiescent point: every worker has joined, so tables evicted by the
  // bounded cache during the sweep can finally be freed (no-op when the
  // cache is unbounded or nothing was evicted).
  world.oracle().purge_retired();
  return results;
}

}  // namespace

std::vector<std::unique_ptr<Selector>> make_selectors(const population::World& world,
                                                      const EvaluationConfig& config) {
  return make_suite(world, config, world.relay_directory(),
                    std::make_unique<AsapSelector>(world, config.asap,
                                                   world.fork_rng(config.seed_salt + 3)));
}

std::vector<std::unique_ptr<Selector>> make_selectors(const population::World& world,
                                                      const EvaluationConfig& config,
                                                      CloseSetProvider& provider) {
  return make_suite(world, config, provider.directory(),
                    std::make_unique<AsapSelector>(world, provider.close_sets(),
                                                   world.fork_rng(config.seed_salt + 3)));
}

std::vector<MethodResults> evaluate_methods(const population::World& world,
                                            const std::vector<population::Session>& sessions,
                                            const EvaluationConfig& config) {
  return run_methods(world, sessions, config, make_selectors(world, config));
}

std::vector<MethodResults> evaluate_methods(const population::World& world,
                                            const std::vector<population::Session>& sessions,
                                            const EvaluationConfig& config,
                                            CloseSetProvider& provider) {
  return run_methods(world, sessions, config, make_selectors(world, config, provider));
}

}  // namespace asap::relay
