// relay::CloseSetProvider: the control plane behind the Selector suite.
//
// A provider owns the state selection consumes — the relay directory
// (cluster → effective relay, capability, degree) and the close-set source
// feeding select-close-relay() — and reports what that state costs: upkeep
// traffic and peak per-node footprint. Two implementations exist:
//
//   FlatDirectoryProvider (here, the default): the pre-overlay model. Every
//   node can consult the whole global directory and any close set on
//   demand; zero upkeep traffic, O(world) per-node state.
//
//   overlay::FederatedProvider (src/overlay): per-cluster surrogates peer
//   surrogate↔surrogate and gossip close-set / relay-capability
//   information bases; per-node state is O(cluster + peers' surrogates)
//   and foreign knowledge is eventually consistent (DESIGN.md §15).
#pragma once

#include <cstdint>
#include <string>

#include "core/close_set_source.h"
#include "population/relay_directory.h"
#include "population/world.h"

namespace asap::relay {

class CloseSetProvider {
 public:
  virtual ~CloseSetProvider() = default;
  [[nodiscard]] virtual std::string name() const = 0;

  // Close-set view backing select-close-relay().
  [[nodiscard]] virtual core::CloseSetSource& close_sets() = 0;
  // Relay directory backing DEDI/MIX/OPT (immutable snapshot semantics:
  // the reference stays valid for the provider's lifetime).
  [[nodiscard]] virtual const population::RelayDirectory& directory() const = 0;

  // Control-plane upkeep spent so far maintaining the provider's state
  // (gossip rounds); zero for the flat plane, whose knowledge is free by
  // assumption.
  [[nodiscard]] virtual std::uint64_t upkeep_messages() const { return 0; }
  [[nodiscard]] virtual std::uint64_t upkeep_bytes() const { return 0; }
  // Peak control-plane state any single node must hold, in wire bytes —
  // O(world) for the flat directory, O(cluster + peered surrogates) for
  // the federated plane (the fig_overlay scalability axis).
  [[nodiscard]] virtual std::uint64_t max_state_bytes_per_node() const = 0;
};

// The flat global directory as a provider: every node sees everything.
class FlatDirectoryProvider final : public CloseSetProvider {
 public:
  FlatDirectoryProvider(const population::World& world, const core::AsapParams& params)
      : world_(world), source_(world, params) {}

  [[nodiscard]] std::string name() const override { return "flat"; }
  [[nodiscard]] core::CloseSetSource& close_sets() override { return source_; }
  [[nodiscard]] const population::RelayDirectory& directory() const override {
    return world_.relay_directory();
  }
  [[nodiscard]] std::uint64_t max_state_bytes_per_node() const override {
    // One global directory row per populated cluster, visible to everyone:
    // cluster id + relay id + capability + degree (4 B each on the wire).
    return static_cast<std::uint64_t>(directory().size()) * 16;
  }

  [[nodiscard]] core::FlatCloseSetSource& source() { return source_; }

 private:
  const population::World& world_;
  core::FlatCloseSetSource source_;
};

}  // namespace asap::relay
