#include "relay/baselines.h"

#include <algorithm>
#include <numeric>
#include <span>

#include "population/nat.h"
#include "voip/quality.h"

namespace asap::relay {

namespace {

// Evaluates a fixed set of one-hop relay hosts against a session, counting
// quality paths and tracking the best, with 2 probe messages per evaluated
// relay. Runs on World's batched relay-RTT scan (loss is computed once, for
// the winning relay only); safe to call concurrently from evaluation
// workers. Internal: the only selection entrypoints are the Selector
// implementations below (PR 10 API unification).
SelectionResult evaluate_relay_pool(const population::World& world,
                                    const population::Session& session,
                                    std::span<const HostId> pool) {
  SelectionResult result;
  // Per-thread scratch: evaluation workers call this once per session, so
  // the buffer is reused across the whole shard without reallocation.
  static thread_local std::vector<Millis> rtts;
  rtts.resize(pool.size());
  world.batch_relay_rtts(session, pool, rtts);

  const auto& pop = world.pop();
  std::size_t best = SIZE_MAX;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    HostId relay = pool[i];
    if (relay == session.caller || relay == session.callee) continue;
    result.messages += 2;  // probe the relay path through this node
    // A NATed candidate cannot accept the relayed flows: the probe is spent
    // but the node yields nothing (the waste AS-unaware probing pays).
    if (!population::can_serve_as_relay(pop.peer_nat(relay))) continue;
    Millis rtt = rtts[i];
    if (voip::is_quality_rtt(rtt)) ++result.quality_paths;
    if (rtt < result.shortest_rtt_ms) {
      result.shortest_rtt_ms = rtt;
      best = i;
    }
  }
  if (best != SIZE_MAX) {
    result.shortest_loss = world.relay_loss(session.caller, pool[best], session.callee);
  }
  return result;
}

}  // namespace

std::vector<HostId> dedicated_nodes(const population::RelayDirectory& dir,
                                    std::size_t count) {
  std::vector<std::size_t> order(dir.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return dir.as_degree[a] > dir.as_degree[b];
  });
  std::vector<HostId> nodes;
  nodes.reserve(std::min(count, order.size()));
  for (std::size_t i : order) {
    if (nodes.size() >= count) break;
    nodes.push_back(dir.surrogates[i]);
  }
  return nodes;
}

DediSelector::DediSelector(const population::World& world,
                           const population::RelayDirectory& dir, std::size_t node_count)
    : world_(world), pool_(dedicated_nodes(dir, node_count)) {}

SelectionResult DediSelector::select_session(const population::Session& session,
                                             std::uint64_t session_index) {
  (void)session_index;  // DEDI probes a fixed pool
  return evaluate_relay_pool(world_, session, pool_);
}

RandSelector::RandSelector(const population::World& world, std::size_t node_count, Rng rng)
    : world_(world), node_count_(node_count), base_rng_(rng) {}

SelectionResult RandSelector::select_session(const population::Session& session,
                                             std::uint64_t session_index) {
  Rng rng = base_rng_.fork(session_index);
  const std::size_t peer_count = world_.pop().peer_count();
  std::size_t n = std::min(node_count_, peer_count);
  // Per-thread scratch: one pool is drawn per evaluated session, so reusing
  // the buffers removes two heap round trips from every session without
  // affecting the draws (sample_indices_into consumes the RNG identically).
  static thread_local std::vector<std::size_t> indices;
  static thread_local std::vector<HostId> pool;
  rng.sample_indices_into(peer_count, n, indices);
  pool.clear();
  pool.reserve(n);
  for (auto idx : indices) {
    pool.push_back(HostId(static_cast<std::uint32_t>(idx)));
  }
  return evaluate_relay_pool(world_, session, pool);
}

MixSelector::MixSelector(const population::World& world,
                         const population::RelayDirectory& dir, std::size_t dedicated,
                         std::size_t random, Rng rng)
    : world_(world), dedicated_(dedicated_nodes(dir, dedicated)), random_count_(random),
      base_rng_(rng) {}

SelectionResult MixSelector::select_session(const population::Session& session,
                                            std::uint64_t session_index) {
  Rng rng = base_rng_.fork(session_index);
  const std::size_t peer_count = world_.pop().peer_count();
  std::size_t n = std::min(random_count_, peer_count);
  static thread_local std::vector<std::size_t> indices;
  static thread_local std::vector<HostId> pool;
  rng.sample_indices_into(peer_count, n, indices);
  pool.clear();
  pool.reserve(dedicated_.size() + n);
  pool.assign(dedicated_.begin(), dedicated_.end());
  for (auto idx : indices) {
    pool.push_back(HostId(static_cast<std::uint32_t>(idx)));
  }
  return evaluate_relay_pool(world_, session, pool);
}

OptSelector::OptSelector(const population::World& world,
                         const population::RelayDirectory& dir, std::size_t two_hop_beam,
                         bool enable_two_hop)
    : world_(world), dir_(dir), beam_(two_hop_beam), two_hop_(enable_two_hop) {}

SelectionResult OptSelector::select_session(const population::Session& session,
                                            std::uint64_t session_index) {
  (void)session_index;  // OPT is deterministic and offline
  const auto& pop = world_.pop();
  const population::RelayDirectory& dir = dir_;
  SelectionResult result;
  ClusterId ca = pop.peer(session.caller).cluster;
  ClusterId cb = pop.peer(session.callee).cluster;

  // One batched sweep computes both relay legs for every populated
  // cluster's effective relay; the loop below is then pure arithmetic over
  // the directory's SoA arrays.
  static thread_local std::vector<Millis> legs_a_ms;
  static thread_local std::vector<Millis> legs_b_ms;
  legs_a_ms.resize(dir.size());
  legs_b_ms.resize(dir.size());
  world_.batch_relay_legs(session.caller, session.callee, dir.relays, legs_a_ms, legs_b_ms);

  struct Leg {
    HostId relay;
    Millis rtt_ms;
  };
  static thread_local std::vector<Leg> caller_legs;
  static thread_local std::vector<Leg> callee_legs;
  caller_legs.clear();
  callee_legs.clear();
  caller_legs.reserve(dir.size());
  callee_legs.reserve(dir.size());

  HostId best_one_hop = HostId::invalid();
  // One-hop: every populated cluster's effective relay (the delegate,
  // falling back to the surrogate when NAT modelling marks the delegate
  // unreachable — precomputed in the directory).
  for (std::size_t i = 0; i < dir.size(); ++i) {
    if (dir.clusters[i] == ca || dir.clusters[i] == cb) continue;
    if (dir.relay_capable[i] == 0) continue;
    Millis leg_a = legs_a_ms[i];
    Millis leg_b = legs_b_ms[i];
    // Only reachable legs may enter the two-hop beams: an unreachable leg
    // can never be part of a finite two-hop path, so keeping it would just
    // burn a beam slot and a wasted relay2 probe.
    if (leg_a < kUnreachableMs) caller_legs.push_back(Leg{dir.relays[i], leg_a});
    if (leg_b < kUnreachableMs) callee_legs.push_back(Leg{dir.relays[i], leg_b});
    if (leg_a >= kUnreachableMs || leg_b >= kUnreachableMs) continue;
    Millis rtt = leg_a + leg_b + kRelayDelayRttMs;
    if (voip::is_quality_rtt(rtt)) ++result.quality_paths;
    if (rtt < result.shortest_rtt_ms) {
      result.shortest_rtt_ms = rtt;
      best_one_hop = dir.relays[i];
    }
  }

  HostId best_r1 = HostId::invalid();
  HostId best_r2 = HostId::invalid();
  if (two_hop_) {
    // Two-hop: combine the best caller-side and callee-side legs.
    auto shortest = [](const Leg& a, const Leg& b) { return a.rtt_ms < b.rtt_ms; };
    std::size_t beam_a = std::min(beam_, caller_legs.size());
    std::size_t beam_b = std::min(beam_, callee_legs.size());
    std::partial_sort(caller_legs.begin(), caller_legs.begin() + beam_a, caller_legs.end(),
                      shortest);
    std::partial_sort(callee_legs.begin(), callee_legs.begin() + beam_b, callee_legs.end(),
                      shortest);
    static thread_local std::vector<HostId> beam_relays;
    static thread_local std::vector<Millis> mid_legs_ms;
    beam_relays.clear();
    beam_relays.reserve(beam_b);
    for (std::size_t j = 0; j < beam_b; ++j) beam_relays.push_back(callee_legs[j].relay);
    mid_legs_ms.resize(beam_b);
    const Millis two_hop_penalty = 4.0 * world_.params().relay_delay_one_way_ms;
    for (std::size_t i = 0; i < beam_a; ++i) {
      HostId r1 = caller_legs[i].relay;
      Millis leg1 = caller_legs[i].rtt_ms;
      // Middle legs r1 -> r2 for the whole callee beam in one batched scan
      // (r1's peer record and destination table are hoisted once).
      world_.batch_host_rtts(r1, beam_relays, mid_legs_ms);
      for (std::size_t j = 0; j < beam_b; ++j) {
        HostId r2 = beam_relays[j];
        if (r1 == r2) continue;
        Millis leg2 = mid_legs_ms[j];
        Millis leg3 = callee_legs[j].rtt_ms;
        if (leg2 >= kUnreachableMs) continue;  // beams hold only reachable leg1/leg3
        Millis rtt = leg1 + leg2 + leg3 + two_hop_penalty;
        if (rtt < result.shortest_rtt_ms) {
          result.shortest_rtt_ms = rtt;
          best_r1 = r1;
          best_r2 = r2;
        }
      }
    }
  }

  // Loss only for the winning path (identical to evaluating it per
  // improvement: relay_loss is a pure function of the final winner).
  if (best_r2.valid()) {
    result.shortest_loss =
        1.0 - (1.0 - world_.relay_loss(session.caller, best_r1, best_r2)) *
                  (1.0 - world_.host_loss(best_r2, session.callee));
  } else if (best_one_hop.valid()) {
    result.shortest_loss =
        world_.relay_loss(session.caller, best_one_hop, session.callee);
  }

  result.messages = 0;  // offline method
  return result;
}

}  // namespace asap::relay
