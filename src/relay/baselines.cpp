#include "relay/baselines.h"

#include <algorithm>

#include "population/nat.h"
#include "voip/quality.h"

namespace asap::relay {

DediSelector::DediSelector(const population::World& world, std::size_t node_count)
    : world_(world), pool_(dedicated_nodes(world, node_count)) {}

SelectionResult DediSelector::select_session(const population::Session& session,
                                             std::uint64_t session_index) {
  (void)session_index;  // DEDI probes a fixed pool
  return evaluate_relay_pool(world_, session, pool_);
}

RandSelector::RandSelector(const population::World& world, std::size_t node_count, Rng rng)
    : world_(world), node_count_(node_count), base_rng_(rng) {}

SelectionResult RandSelector::select_session(const population::Session& session,
                                             std::uint64_t session_index) {
  Rng rng = base_rng_.fork(session_index);
  const auto& peers = world_.pop().peers();
  std::size_t n = std::min(node_count_, peers.size());
  std::vector<HostId> pool;
  pool.reserve(n);
  for (auto idx : rng.sample_indices(peers.size(), n)) {
    pool.push_back(HostId(static_cast<std::uint32_t>(idx)));
  }
  return evaluate_relay_pool(world_, session, pool);
}

MixSelector::MixSelector(const population::World& world, std::size_t dedicated,
                         std::size_t random, Rng rng)
    : world_(world), dedicated_(dedicated_nodes(world, dedicated)), random_count_(random),
      base_rng_(rng) {}

SelectionResult MixSelector::select_session(const population::Session& session,
                                            std::uint64_t session_index) {
  Rng rng = base_rng_.fork(session_index);
  std::vector<HostId> pool = dedicated_;
  const auto& peers = world_.pop().peers();
  std::size_t n = std::min(random_count_, peers.size());
  for (auto idx : rng.sample_indices(peers.size(), n)) {
    pool.push_back(HostId(static_cast<std::uint32_t>(idx)));
  }
  return evaluate_relay_pool(world_, session, pool);
}

OptSelector::OptSelector(const population::World& world, std::size_t two_hop_beam,
                         bool enable_two_hop)
    : world_(world), beam_(two_hop_beam), two_hop_(enable_two_hop) {}

SelectionResult OptSelector::select_session(const population::Session& session,
                                            std::uint64_t session_index) {
  (void)session_index;  // OPT is deterministic and offline
  const auto& pop = world_.pop();
  SelectionResult result;
  ClusterId ca = pop.peer(session.caller).cluster;
  ClusterId cb = pop.peer(session.callee).cluster;

  struct Leg {
    HostId relay;
    Millis rtt_ms;
  };
  std::vector<Leg> caller_legs;
  std::vector<Leg> callee_legs;
  caller_legs.reserve(pop.populated_clusters().size());
  callee_legs.reserve(pop.populated_clusters().size());

  // One-hop: iterate every populated cluster's delegate (falling back to
  // the surrogate when NAT modelling marks the delegate unreachable).
  for (ClusterId c : pop.populated_clusters()) {
    if (c == ca || c == cb) continue;
    const auto& cluster = pop.cluster(c);
    if (cluster.relay_capable_members == 0) continue;
    HostId relay = population::can_serve_as_relay(pop.peer(cluster.delegate).nat)
                       ? cluster.delegate
                       : cluster.surrogate;
    Millis leg_a = world_.host_rtt_ms(session.caller, relay);
    Millis leg_b = world_.host_rtt_ms(relay, session.callee);
    caller_legs.push_back(Leg{relay, leg_a});
    callee_legs.push_back(Leg{relay, leg_b});
    if (leg_a >= kUnreachableMs || leg_b >= kUnreachableMs) continue;
    Millis rtt = leg_a + leg_b + kRelayDelayRttMs;
    if (voip::is_quality_rtt(rtt)) ++result.quality_paths;
    if (rtt < result.shortest_rtt_ms) {
      result.shortest_rtt_ms = rtt;
      result.shortest_loss = world_.relay_loss(session.caller, relay, session.callee);
    }
  }

  if (two_hop_) {
    // Two-hop: combine the best caller-side and callee-side legs.
    auto shortest = [](const Leg& a, const Leg& b) { return a.rtt_ms < b.rtt_ms; };
    std::size_t beam_a = std::min(beam_, caller_legs.size());
    std::size_t beam_b = std::min(beam_, callee_legs.size());
    std::partial_sort(caller_legs.begin(), caller_legs.begin() + beam_a, caller_legs.end(),
                      shortest);
    std::partial_sort(callee_legs.begin(), callee_legs.begin() + beam_b, callee_legs.end(),
                      shortest);
    for (std::size_t i = 0; i < beam_a; ++i) {
      for (std::size_t j = 0; j < beam_b; ++j) {
        HostId r1 = caller_legs[i].relay;
        HostId r2 = callee_legs[j].relay;
        if (r1 == r2) continue;
        Millis rtt = world_.relay2_rtt_ms(session.caller, r1, r2, session.callee);
        if (rtt < result.shortest_rtt_ms) {
          result.shortest_rtt_ms = rtt;
          result.shortest_loss =
              1.0 - (1.0 - world_.relay_loss(session.caller, r1, r2)) *
                        (1.0 - world_.host_loss(r2, session.callee));
        }
      }
    }
  }

  result.messages = 0;  // offline method
  return result;
}

}  // namespace asap::relay
