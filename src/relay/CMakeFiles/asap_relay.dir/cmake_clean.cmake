file(REMOVE_RECURSE
  "CMakeFiles/asap_relay.dir/asap_selector.cpp.o"
  "CMakeFiles/asap_relay.dir/asap_selector.cpp.o.d"
  "CMakeFiles/asap_relay.dir/baselines.cpp.o"
  "CMakeFiles/asap_relay.dir/baselines.cpp.o.d"
  "CMakeFiles/asap_relay.dir/evaluation.cpp.o"
  "CMakeFiles/asap_relay.dir/evaluation.cpp.o.d"
  "libasap_relay.a"
  "libasap_relay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asap_relay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
