file(REMOVE_RECURSE
  "libasap_relay.a"
)
