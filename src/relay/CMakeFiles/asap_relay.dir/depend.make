# Empty dependencies file for asap_relay.
# This may be replaced when dependencies are built.
