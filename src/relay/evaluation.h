// Evaluation driver: runs a set of sessions through each relay-selection
// method and collects the per-session metric distributions behind the
// paper's Figures 11-18.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "relay/asap_selector.h"
#include "relay/baselines.h"
#include "relay/provider.h"
#include "relay/selector.h"
#include "voip/emodel.h"
#include "common/metrics.h"

namespace asap::relay {

struct MethodResults {
  std::string method;
  std::vector<double> quality_paths;   // per session
  std::vector<double> shortest_rtt_ms;
  std::vector<double> highest_mos;
  std::vector<double> messages;
};

struct EvaluationConfig {
  BaselineConfig baselines;
  core::AsapParams asap;
  // The paper assumes a fixed 0.5% average loss for the MOS figures; when
  // false, the model's per-path loss is used instead.
  bool fixed_loss_for_mos = true;
  double fixed_loss = 0.005;
  voip::Codec codec = voip::kG729aVad;
  bool include_opt = true;
  std::uint64_t seed_salt = 7;
  // Worker threads for the per-session loop; 0 = hardware concurrency.
  // Results are byte-identical for every thread count: outputs are indexed
  // by session position and each session's RNG stream is forked from the
  // selector seed + session index, never shared across sessions.
  std::size_t threads = 1;
  // Optional observability sink. Handles are registered once per method
  // before the session loop; each worker record is one relaxed atomic add,
  // and everything recorded is order-independent, so enabling metrics
  // changes neither the results nor their thread-count determinism.
  MetricsRegistry* metrics = nullptr;
};

// Loss of the best available path: the relay path's when it is strictly
// faster than the direct path, the direct path's otherwise. Ties go to the
// direct path — at equal RTT there is no reason to pay for a relay hop, so
// reporting the relay's loss would skew the loss/MOS curves.
inline double best_path_loss(Millis relay_rtt_ms, double relay_loss,
                             Millis direct_rtt_ms, double direct_loss) {
  return relay_rtt_ms < direct_rtt_ms ? relay_loss : direct_loss;
}

// Builds the standard selector suite (DEDI, RAND, MIX, ASAP [, OPT]) over
// the flat global directory (the default control plane; byte-identical to
// the historical behavior).
std::vector<std::unique_ptr<Selector>> make_selectors(const population::World& world,
                                                      const EvaluationConfig& config);
// Same suite, consuming `provider`'s control-plane state instead: the
// directory-backed methods read provider.directory(), ASAP reads
// provider.close_sets(). Seeds and construction order are identical to the
// flat overload, so with a FlatDirectoryProvider the results are bitwise
// equal.
std::vector<std::unique_ptr<Selector>> make_selectors(const population::World& world,
                                                      const EvaluationConfig& config,
                                                      CloseSetProvider& provider);

// Runs every selector over `sessions`.
std::vector<MethodResults> evaluate_methods(const population::World& world,
                                            const std::vector<population::Session>& sessions,
                                            const EvaluationConfig& config);
// Provider-backed variant (selectors from the provider-aware make_selectors).
std::vector<MethodResults> evaluate_methods(const population::World& world,
                                            const std::vector<population::Session>& sessions,
                                            const EvaluationConfig& config,
                                            CloseSetProvider& provider);

}  // namespace asap::relay
