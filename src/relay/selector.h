// relay::Selector: the common interface of the five relay-node selection
// methods the paper evaluates (Sec. 7.1): DEDI (RON-like dedicated nodes),
// RAND (SOSR-like random probing), MIX, ASAP, and the offline OPT. Every
// selection entrypoint in the repo goes through this interface; the
// control-plane state a selector consumes (relay directory, close sets)
// comes from a relay::CloseSetProvider (provider.h) — flat global
// directory by default, federated surrogate overlay optionally.
#pragma once

#include <cstdint>
#include <string>

#include "population/session_gen.h"
#include "population/world.h"
#include "common/ids.h"
#include "common/units.h"

namespace asap::relay {

// Per-session evaluation outcome, the raw material of Figs. 11-18.
struct SelectionResult {
  // Number of relay paths meeting the 300 ms RTT requirement ("quality
  // paths", metric 1).
  std::uint64_t quality_paths = 0;
  // Shortest relay-path RTT found (metric 2a); kUnreachableMs if none.
  Millis shortest_rtt_ms = kUnreachableMs;
  // Loss of that shortest path (for the MOS computation, metric 2b).
  double shortest_loss = 1.0;
  // Control messages generated to find the relays (metric 3).
  std::uint64_t messages = 0;
};

class Selector {
 public:
  virtual ~Selector() = default;
  [[nodiscard]] virtual std::string name() const = 0;

  // Thread-safe evaluation entry point: implementations must tolerate
  // concurrent calls with distinct session indices. Any per-session
  // randomness is forked from the selector's base stream keyed by
  // `session_index`, so results depend only on (session, index) — never on
  // evaluation order or thread count.
  virtual SelectionResult select_session(const population::Session& session,
                                         std::uint64_t session_index) = 0;

  // Serial convenience: numbers sessions in call order. Equivalent to
  // calling select_session with indices 0, 1, 2, ... Not thread-safe.
  virtual SelectionResult select(const population::Session& session) {
    return select_session(session, serial_index_++);
  }

 private:
  std::uint64_t serial_index_ = 0;
};

}  // namespace asap::relay
