file(REMOVE_RECURSE
  "libasap_common.a"
)
