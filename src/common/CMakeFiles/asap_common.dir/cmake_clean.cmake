file(REMOVE_RECURSE
  "CMakeFiles/asap_common.dir/ip.cpp.o"
  "CMakeFiles/asap_common.dir/ip.cpp.o.d"
  "CMakeFiles/asap_common.dir/log.cpp.o"
  "CMakeFiles/asap_common.dir/log.cpp.o.d"
  "CMakeFiles/asap_common.dir/metrics.cpp.o"
  "CMakeFiles/asap_common.dir/metrics.cpp.o.d"
  "CMakeFiles/asap_common.dir/rng.cpp.o"
  "CMakeFiles/asap_common.dir/rng.cpp.o.d"
  "CMakeFiles/asap_common.dir/stats.cpp.o"
  "CMakeFiles/asap_common.dir/stats.cpp.o.d"
  "CMakeFiles/asap_common.dir/table.cpp.o"
  "CMakeFiles/asap_common.dir/table.cpp.o.d"
  "CMakeFiles/asap_common.dir/thread_pool.cpp.o"
  "CMakeFiles/asap_common.dir/thread_pool.cpp.o.d"
  "libasap_common.a"
  "libasap_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asap_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
