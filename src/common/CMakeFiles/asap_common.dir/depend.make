# Empty dependencies file for asap_common.
# This may be replaced when dependencies are built.
