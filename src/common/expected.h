// A small Expected<T> for fallible parsing/loading paths (C++20 has no
// std::expected). Carries either a value or an error message.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace asap {

struct Error {
  std::string message;
};

inline Error make_error(std::string message) { return Error{std::move(message)}; }

template <typename T>
class Expected {
 public:
  Expected(T value) : data_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Expected(Error error) : data_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool has_value() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return has_value(); }

  [[nodiscard]] T& value() {
    assert(has_value());
    return std::get<T>(data_);
  }
  [[nodiscard]] const T& value() const {
    assert(has_value());
    return std::get<T>(data_);
  }
  [[nodiscard]] const Error& error() const {
    assert(!has_value());
    return std::get<Error>(data_);
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }

 private:
  std::variant<T, Error> data_;
};

}  // namespace asap
