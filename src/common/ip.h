// IPv4 address and CIDR prefix value types.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace asap {

// An IPv4 address held in host byte order.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t bits) : bits_(bits) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : bits_((std::uint32_t(a) << 24) | (std::uint32_t(b) << 16) | (std::uint32_t(c) << 8) | d) {}

  [[nodiscard]] constexpr std::uint32_t bits() const { return bits_; }
  [[nodiscard]] std::string to_string() const;

  // Parses dotted-quad notation; returns nullopt on malformed input.
  static std::optional<Ipv4Addr> parse(std::string_view text);

  friend constexpr bool operator==(Ipv4Addr a, Ipv4Addr b) { return a.bits_ == b.bits_; }
  friend constexpr bool operator!=(Ipv4Addr a, Ipv4Addr b) { return a.bits_ != b.bits_; }
  friend constexpr bool operator<(Ipv4Addr a, Ipv4Addr b) { return a.bits_ < b.bits_; }

 private:
  std::uint32_t bits_ = 0;
};

// A CIDR prefix (address + mask length). The address is stored canonicalized:
// bits below the mask are zeroed.
class Prefix {
 public:
  constexpr Prefix() = default;
  Prefix(Ipv4Addr addr, int len);

  [[nodiscard]] Ipv4Addr address() const { return addr_; }
  [[nodiscard]] int length() const { return len_; }
  [[nodiscard]] std::uint32_t mask() const;
  [[nodiscard]] bool contains(Ipv4Addr ip) const;
  // True when `other` is fully contained in (or equal to) this prefix.
  [[nodiscard]] bool covers(const Prefix& other) const;
  [[nodiscard]] std::string to_string() const;

  // Parses "a.b.c.d/len"; returns nullopt on malformed input.
  static std::optional<Prefix> parse(std::string_view text);

  friend bool operator==(const Prefix& a, const Prefix& b) {
    return a.addr_ == b.addr_ && a.len_ == b.len_;
  }
  friend bool operator!=(const Prefix& a, const Prefix& b) { return !(a == b); }
  friend bool operator<(const Prefix& a, const Prefix& b) {
    if (a.addr_ != b.addr_) return a.addr_ < b.addr_;
    return a.len_ < b.len_;
  }

 private:
  Ipv4Addr addr_;
  int len_ = 0;
};

}  // namespace asap

namespace std {
template <>
struct hash<asap::Ipv4Addr> {
  size_t operator()(asap::Ipv4Addr a) const noexcept { return std::hash<uint32_t>()(a.bits()); }
};
template <>
struct hash<asap::Prefix> {
  size_t operator()(const asap::Prefix& p) const noexcept {
    return std::hash<uint64_t>()((uint64_t(p.address().bits()) << 6) ^ uint64_t(p.length()));
  }
};
}  // namespace std
