// Structured observability: counters, gauges, fixed-bucket histograms and
// per-session trace spans, with deterministic JSON export.
//
// Design (DESIGN.md §9):
//  - A MetricsRegistry is an instance, never a global: whoever owns a run
//    (AsapSystem, a bench harness, a test) owns its registry and wires it
//    down explicitly. Layers that take no registry record nothing.
//  - Handles (Counter/Gauge/Histogram) are registered once, up front, and
//    are plain pointers into registry-owned cells: the hot path is a single
//    relaxed atomic add — no map lookup, no lock. A default-constructed
//    handle is detached and every operation on it is a no-op, so call sites
//    never branch on "metrics enabled".
//  - Everything recorded is order-independent (integer atomic adds;
//    histogram sums kept in fixed-point milli-units), so a multi-threaded
//    run exports byte-identical JSON for any thread count — the property
//    the golden run digests gate on in CI.
//  - TraceRecorder captures timestamped span events for 1-in-N sessions.
//    It is single-threaded by design (the protocol simulation is a
//    discrete-event loop) and compiles to a no-op when ASAP_DISABLE_TRACING
//    is defined (-DASAP_DISABLE_TRACING, CMake option of the same name).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.h"

namespace asap {

class MetricsRegistry;

// Monotonic event count. Detached (default-constructed) handles no-op.
class Counter {
 public:
  Counter() = default;

  void add(std::uint64_t by) const {
    if (cell_ != nullptr) cell_->fetch_add(by, std::memory_order_relaxed);
  }
  void inc() const { add(1); }
  [[nodiscard]] std::uint64_t value() const {
    return cell_ == nullptr ? 0 : cell_->load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool attached() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::atomic<std::uint64_t>* cell) : cell_(cell) {}
  std::atomic<std::uint64_t>* cell_ = nullptr;
};

// Last-written (or running-max) level, e.g. a queue depth high-water mark.
class Gauge {
 public:
  Gauge() = default;

  void set(double v) const {
    if (cell_ != nullptr) cell_->store(v, std::memory_order_relaxed);
  }
  // Raises the gauge to `v` if `v` is larger (atomic running maximum).
  void max_of(double v) const {
    if (cell_ == nullptr) return;
    double cur = cell_->load(std::memory_order_relaxed);
    while (v > cur &&
           !cell_->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return cell_ == nullptr ? 0.0 : cell_->load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool attached() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::atomic<double>* cell) : cell_(cell) {}
  std::atomic<double>* cell_ = nullptr;
};

// Fixed-bucket distribution. Bucket i counts observations <= bounds[i]; one
// implicit overflow bucket catches the rest. The running sum is kept in
// integer milli-units so concurrent observation order cannot change the
// exported value (floating-point addition does not commute bitwise).
class Histogram {
 public:
  Histogram() = default;

  void observe(double v) const;
  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const;  // incl. overflow
  [[nodiscard]] double sum() const;  // milli-unit sum scaled back
  [[nodiscard]] const std::vector<double>* bounds() const;
  [[nodiscard]] bool attached() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  struct Cell;
  explicit Histogram(Cell* cell) : cell_(cell) {}
  Cell* cell_ = nullptr;
};

// Handle factory + storage. Registration (by name) takes a lock and is meant
// for setup paths; the returned handles are lock-free. Re-registering a name
// returns the existing cell, so independent subsystems can share series.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  // `bounds` must be strictly ascending; a histogram name keeps the bounds
  // it was first registered with.
  Histogram histogram(std::string_view name, std::vector<double> bounds);

  // String-keyed convenience API (kept for the sim-layer tests and one-off
  // call sites; registers on first use — not for hot paths).
  void increment(const std::string& name, std::uint64_t by = 1) {
    counter(name).add(by);
  }
  [[nodiscard]] std::uint64_t value(const std::string& name) const;

  // Zeroes every cell; registrations (and handed-out handles) stay valid.
  void reset();

  // Deterministic export: objects sorted by name, integer-exact counters,
  // gauges/bounds printed with round-trip precision.
  [[nodiscard]] std::string to_json() const;

  // Sorted (name, value) snapshots, for digests and tests.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  [[nodiscard]] std::vector<std::pair<std::string, double>> gauges() const;

 private:
  friend class Histogram;

  mutable std::mutex mu_;
  // deques: cell addresses must survive future registrations.
  std::deque<std::atomic<std::uint64_t>> counter_cells_;
  std::deque<std::atomic<double>> gauge_cells_;
  std::deque<Histogram::Cell> histogram_cells_;
  std::map<std::string, std::atomic<std::uint64_t>*, std::less<>> counters_by_name_;
  std::map<std::string, std::atomic<double>*, std::less<>> gauges_by_name_;
  std::map<std::string, Histogram::Cell*, std::less<>> histograms_by_name_;
};

struct Histogram::Cell {
  std::vector<double> bounds;                        // ascending upper bounds
  std::deque<std::atomic<std::uint64_t>> buckets;    // bounds.size() + 1
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::int64_t> sum_milli{0};
};

[[nodiscard]] std::string metrics_to_json(const MetricsRegistry& registry);

// Escapes `s` for inclusion in a JSON string literal (no surrounding quotes).
[[nodiscard]] std::string json_escape(std::string_view s);
// Round-trip double formatting used by every JSON emitter in the repo, so
// digests never differ by formatting.
[[nodiscard]] std::string json_number(double v);

// --- Trace spans ------------------------------------------------------------

enum class TraceSpan : std::uint8_t {
  kCallStart = 0,
  kProbeSent,
  kProbeAnswered,
  kRelaySelected,
  kKeepaliveGap,
  kFailoverRound,
  kRouteSwitch,
  kFaultInjected,
  kCallEnd,
  kCount,
};

[[nodiscard]] std::string_view trace_span_name(TraceSpan span);

struct TraceEvent {
  Millis t_ms = 0.0;  // simulated time
  TraceSpan span = TraceSpan::kCallStart;
  std::uint32_t session = 0;
  // Span-specific operands (relay/host id, rtt in micro-ms, ...); meaning is
  // documented at the record site.
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

// Per-session span timeline with 1-in-N session sampling. Not thread-safe:
// one recorder belongs to one single-threaded simulation loop.
class TraceRecorder {
 public:
#ifdef ASAP_DISABLE_TRACING
  static constexpr bool kCompiledIn = false;
#else
  static constexpr bool kCompiledIn = true;
#endif

  // Record sessions whose id is a multiple of `sample_every` (1 = all).
  void enable(std::uint32_t sample_every = 1) {
    if constexpr (!kCompiledIn) return;
    enabled_ = true;
    sample_every_ = sample_every == 0 ? 1 : sample_every;
  }
  void disable() { enabled_ = false; }
  [[nodiscard]] bool enabled() const { return kCompiledIn && enabled_; }

  // Whether events of `session` should be recorded (the sampling gate;
  // callers cache this per session).
  [[nodiscard]] bool sampled(std::uint32_t session) const {
    if constexpr (!kCompiledIn) return false;
    return enabled_ && session % sample_every_ == 0;
  }

  void record(std::uint32_t session, TraceSpan span, Millis t_ms, std::uint64_t a = 0,
              std::uint64_t b = 0) {
    if constexpr (!kCompiledIn) return;
    if (!enabled_) return;
    events_.push_back(TraceEvent{t_ms, span, session, a, b});
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  [[nodiscard]] std::size_t span_count(TraceSpan span) const;
  void clear() { events_.clear(); }

 private:
  bool enabled_ = false;
  std::uint32_t sample_every_ = 1;
  std::vector<TraceEvent> events_;
};

[[nodiscard]] std::string trace_to_json(const TraceRecorder& recorder);

// --- Output digesting -------------------------------------------------------

// FNV-1a 64-bit running hash; the run digests use it to fingerprint the
// rendered bench output (tables and section banners).
class Fnv1a64 {
 public:
  void update(std::string_view bytes) {
    for (unsigned char c : bytes) {
      hash_ ^= c;
      hash_ *= 0x100000001b3ULL;
    }
  }
  [[nodiscard]] std::uint64_t value() const { return hash_; }
  // "0x"-prefixed lower-case hex, fixed width.
  [[nodiscard]] std::string hex() const;

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

}  // namespace asap
