#include "common/ip.h"

#include <charconv>

namespace asap {

std::string Ipv4Addr::to_string() const {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    out += std::to_string((bits_ >> shift) & 0xFF);
    if (shift > 0) out += '.';
  }
  return out;
}

namespace {

// Parses an integer in [lo, hi] from the front of `text`, advancing it.
std::optional<int> parse_int(std::string_view& text, int lo, int hi) {
  int value = 0;
  const auto* begin = text.data();
  const auto* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || value < lo || value > hi) return std::nullopt;
  text.remove_prefix(static_cast<std::size_t>(ptr - begin));
  return value;
}

}  // namespace

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view text) {
  std::uint32_t bits = 0;
  for (int i = 0; i < 4; ++i) {
    auto octet = parse_int(text, 0, 255);
    if (!octet) return std::nullopt;
    bits = (bits << 8) | static_cast<std::uint32_t>(*octet);
    if (i < 3) {
      if (text.empty() || text.front() != '.') return std::nullopt;
      text.remove_prefix(1);
    }
  }
  if (!text.empty()) return std::nullopt;
  return Ipv4Addr(bits);
}

Prefix::Prefix(Ipv4Addr addr, int len) : len_(len) {
  if (len_ < 0) len_ = 0;
  if (len_ > 32) len_ = 32;
  addr_ = Ipv4Addr(addr.bits() & mask());
}

std::uint32_t Prefix::mask() const {
  if (len_ == 0) return 0;
  return ~std::uint32_t{0} << (32 - len_);
}

bool Prefix::contains(Ipv4Addr ip) const { return (ip.bits() & mask()) == addr_.bits(); }

bool Prefix::covers(const Prefix& other) const {
  return other.len_ >= len_ && contains(other.addr_);
}

std::string Prefix::to_string() const {
  return addr_.to_string() + "/" + std::to_string(len_);
}

std::optional<Prefix> Prefix::parse(std::string_view text) {
  auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = Ipv4Addr::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  std::string_view len_text = text.substr(slash + 1);
  auto len = parse_int(len_text, 0, 32);
  if (!len || !len_text.empty()) return std::nullopt;
  Prefix result(*addr, *len);
  // Reject non-canonical prefixes such as 10.0.0.1/8.
  if (result.address() != *addr) return std::nullopt;
  return result;
}

}  // namespace asap
