// Summary statistics, percentiles and distribution curves (CDF/CCDF/histogram)
// used by the benchmark harnesses to print the paper's figures as tables.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace asap {

// Welford online mean/variance plus min/max. An empty accumulator reports
// NaN for min()/max() — the same "no samples" convention percentile() uses —
// so summary rows cannot silently print fake zeros (Table::fmt renders NaN
// as "(no samples)").
class OnlineStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  // population variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::quiet_NaN();
  double max_ = std::numeric_limits<double>::quiet_NaN();
};

// Percentile with linear interpolation; q in [0, 100]. Sorts a copy.
// Returns NaN for an empty input (printable, never out-of-bounds).
double percentile(std::vector<double> values, double q);

// One (x, y) point of an empirical distribution curve.
struct CurvePoint {
  double x;
  double y;
};

// Empirical CDF sampled at `points` evenly spaced quantiles (plus min/max).
std::vector<CurvePoint> make_cdf(std::vector<double> values, std::size_t points = 20);

// Empirical CCDF: P(X > x) at the same sample positions.
std::vector<CurvePoint> make_ccdf(std::vector<double> values, std::size_t points = 20);

// Fraction of values strictly greater than `threshold`.
double fraction_above(const std::vector<double>& values, double threshold);
// Fraction of values less than or equal to `threshold`.
double fraction_at_most(const std::vector<double>& values, double threshold);

// Fixed-bin histogram over [lo, hi); values outside clamp to edge bins.
class LinearHistogram {
 public:
  LinearHistogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t bin_count(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  [[nodiscard]] std::size_t total() const { return total_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

// Logarithmic-bin histogram for heavy-tailed quantities (RTTs, path counts).
// Bin i covers [lo * ratio^i, lo * ratio^(i+1)).
class LogHistogram {
 public:
  LogHistogram(double lo, double ratio, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t bin_count(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  [[nodiscard]] std::size_t total() const { return total_; }

 private:
  double lo_;
  double ratio_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace asap
