#include "common/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace asap {

void Histogram::observe(double v) const {
  if (cell_ == nullptr) return;
  const auto& bounds = cell_->bounds;
  std::size_t i = std::lower_bound(bounds.begin(), bounds.end(), v) - bounds.begin();
  cell_->buckets[i].fetch_add(1, std::memory_order_relaxed);
  cell_->count.fetch_add(1, std::memory_order_relaxed);
  // Fixed-point accumulation: integer adds commute exactly, so the exported
  // sum is identical for any worker interleaving.
  cell_->sum_milli.fetch_add(std::llround(v * 1000.0), std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const {
  return cell_ == nullptr ? 0 : cell_->count.load(std::memory_order_relaxed);
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  if (cell_ == nullptr || i >= cell_->buckets.size()) return 0;
  return cell_->buckets[i].load(std::memory_order_relaxed);
}

double Histogram::sum() const {
  if (cell_ == nullptr) return 0.0;
  return static_cast<double>(cell_->sum_milli.load(std::memory_order_relaxed)) / 1000.0;
}

const std::vector<double>* Histogram::bounds() const {
  return cell_ == nullptr ? nullptr : &cell_->bounds;
}

Counter MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_by_name_.find(name);
  if (it == counters_by_name_.end()) {
    counter_cells_.emplace_back(0);
    it = counters_by_name_.emplace(std::string(name), &counter_cells_.back()).first;
  }
  return Counter(it->second);
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_by_name_.find(name);
  if (it == gauges_by_name_.end()) {
    gauge_cells_.emplace_back(0.0);
    it = gauges_by_name_.emplace(std::string(name), &gauge_cells_.back()).first;
  }
  return Gauge(it->second);
}

Histogram MetricsRegistry::histogram(std::string_view name, std::vector<double> bounds) {
  assert(std::is_sorted(bounds.begin(), bounds.end()));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_by_name_.find(name);
  if (it == histograms_by_name_.end()) {
    histogram_cells_.emplace_back();
    Histogram::Cell& cell = histogram_cells_.back();
    cell.bounds = std::move(bounds);
    // buckets are atomics: size the deque in place, one per bound + overflow.
    for (std::size_t i = 0; i < cell.bounds.size() + 1; ++i) cell.buckets.emplace_back(0);
    it = histograms_by_name_.emplace(std::string(name), &cell).first;
  }
  return Histogram(it->second);
}

std::uint64_t MetricsRegistry::value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_by_name_.find(name);
  if (it == counters_by_name_.end()) return 0;
  return it->second->load(std::memory_order_relaxed);
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& cell : counter_cells_) cell.store(0, std::memory_order_relaxed);
  for (auto& cell : gauge_cells_) cell.store(0.0, std::memory_order_relaxed);
  for (auto& cell : histogram_cells_) {
    for (auto& bucket : cell.buckets) bucket.store(0, std::memory_order_relaxed);
    cell.count.store(0, std::memory_order_relaxed);
    cell.sum_milli.store(0, std::memory_order_relaxed);
  }
}

std::vector<std::pair<std::string, std::uint64_t>> MetricsRegistry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_by_name_.size());
  for (const auto& [name, cell] : counters_by_name_) {
    out.emplace_back(name, cell->load(std::memory_order_relaxed));
  }
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_by_name_.size());
  for (const auto& [name, cell] : gauges_by_name_) {
    out.emplace_back(name, cell->load(std::memory_order_relaxed));
  }
  return out;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  // Integral values print without a fraction; everything else with enough
  // digits to round-trip, so equal doubles always print equal strings.
  if (v == std::floor(v) && std::abs(v) < 1.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, cell] : counters_by_name_) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(name) << "\":" << cell->load(std::memory_order_relaxed);
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, cell] : gauges_by_name_) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(name)
        << "\":" << json_number(cell->load(std::memory_order_relaxed));
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, cell] : histograms_by_name_) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(name) << "\":{\"bounds\":[";
    for (std::size_t i = 0; i < cell->bounds.size(); ++i) {
      if (i > 0) out << ',';
      out << json_number(cell->bounds[i]);
    }
    out << "],\"buckets\":[";
    for (std::size_t i = 0; i < cell->buckets.size(); ++i) {
      if (i > 0) out << ',';
      out << cell->buckets[i].load(std::memory_order_relaxed);
    }
    out << "],\"count\":" << cell->count.load(std::memory_order_relaxed)
        << ",\"sum_milli\":" << cell->sum_milli.load(std::memory_order_relaxed) << '}';
  }
  out << "}}";
  return out.str();
}

std::string metrics_to_json(const MetricsRegistry& registry) { return registry.to_json(); }

std::string_view trace_span_name(TraceSpan span) {
  switch (span) {
    case TraceSpan::kCallStart: return "call-start";
    case TraceSpan::kProbeSent: return "probe-sent";
    case TraceSpan::kProbeAnswered: return "probe-answered";
    case TraceSpan::kRelaySelected: return "relay-selected";
    case TraceSpan::kKeepaliveGap: return "keepalive-gap";
    case TraceSpan::kFailoverRound: return "failover-round";
    case TraceSpan::kRouteSwitch: return "route-switch";
    case TraceSpan::kFaultInjected: return "fault-injected";
    case TraceSpan::kCallEnd: return "call-end";
    case TraceSpan::kCount: break;
  }
  return "?";
}

std::size_t TraceRecorder::span_count(TraceSpan span) const {
  std::size_t n = 0;
  for (const auto& event : events_) {
    if (event.span == span) ++n;
  }
  return n;
}

std::string trace_to_json(const TraceRecorder& recorder) {
  std::ostringstream out;
  out << "{\"events\":[";
  bool first = true;
  for (const auto& event : recorder.events()) {
    if (!first) out << ',';
    first = false;
    out << "{\"t_ms\":" << json_number(event.t_ms) << ",\"span\":\""
        << trace_span_name(event.span) << "\",\"session\":" << event.session
        << ",\"a\":" << event.a << ",\"b\":" << event.b << '}';
  }
  out << "],\"span_counts\":{";
  first = true;
  for (std::size_t s = 0; s < static_cast<std::size_t>(TraceSpan::kCount); ++s) {
    std::size_t n = recorder.span_count(static_cast<TraceSpan>(s));
    if (n == 0) continue;
    if (!first) out << ',';
    first = false;
    out << '"' << trace_span_name(static_cast<TraceSpan>(s)) << "\":" << n;
  }
  out << "}}";
  return out.str();
}

std::string Fnv1a64::hex() const {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%016llx", static_cast<unsigned long long>(hash_));
  return buf;
}

}  // namespace asap
