// A small fixed-size worker pool for data-parallel loops.
//
// The evaluation pipeline shards 100k-session workloads across workers with
// parallel_for(); determinism is preserved by construction because every
// item writes to its own output slot and derives any randomness from its
// item index, never from execution order. The pool itself makes no ordering
// promises beyond "fn(i) runs exactly once for every i".
#pragma once

#include <cstddef>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace asap {

class ThreadPool {
 public:
  // `threads` is the total worker parallelism, including the calling thread
  // during parallel_for(); 0 means std::thread::hardware_concurrency().
  // A pool of size 1 spawns no OS threads and runs everything inline.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total parallelism (spawned workers + the caller), always >= 1.
  [[nodiscard]] std::size_t size() const { return workers_.size() + 1; }

  // Runs fn(i) exactly once for every i in [0, count), spread across the
  // pool; the calling thread participates. Blocks until all items are done.
  // If any fn throws, one of the exceptions is rethrown here after the loop
  // drains. Not reentrant: do not call parallel_for from inside fn.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  // Resolves a user-facing thread-count request: 0 -> hardware concurrency
  // (at least 1), anything else unchanged.
  static std::size_t resolve_threads(std::size_t requested);

 private:
  struct Batch {
    std::size_t count = 0;
    std::size_t next = 0;       // next item index to hand out
    std::size_t chunk = 1;      // items per grab
    std::size_t in_flight = 0;  // items handed out but not finished
    const std::function<void(std::size_t)>* fn = nullptr;
    std::exception_ptr error;
  };

  void worker_loop();
  // Drains items from the current batch; returns when the batch is empty.
  void drain_batch();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_ready_;   // workers wait here for a batch
  std::condition_variable batch_done_;   // parallel_for waits here
  Batch batch_;
  bool stop_ = false;
};

}  // namespace asap
