#include "common/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace asap {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double value, int decimals) {
  // NaN is the repo-wide "no samples" sentinel (empty percentile() input,
  // empty OnlineStats min/max); print it as words, not printf's "nan".
  if (std::isnan(value)) return "(no samples)";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string Table::fmt_int(long long value) { return std::to_string(value); }

std::string Table::fmt_pct(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    out << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      out << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << '\n';
  };
  emit_row(headers_);
  out << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

namespace {
OutputObserver g_observer = nullptr;
void* g_observer_ctx = nullptr;

void observe(std::string_view bytes) {
  if (g_observer != nullptr) g_observer(bytes, g_observer_ctx);
}
}  // namespace

void set_output_observer(OutputObserver fn, void* ctx) {
  g_observer = fn;
  g_observer_ctx = ctx;
}

void Table::print() const {
  std::string rendered = render();
  std::fputs(rendered.c_str(), stdout);
  observe(rendered);
}

void print_section(const std::string& title) {
  std::string bar(title.size() + 8, '=');
  char buf[256];
  int n = std::snprintf(buf, sizeof buf, "\n%s\n=== %s ===\n%s\n", bar.c_str(),
                        title.c_str(), bar.c_str());
  std::fputs(buf, stdout);
  if (n > 0) observe(std::string_view(buf, std::min<std::size_t>(n, sizeof buf - 1)));
}

}  // namespace asap
