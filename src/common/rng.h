// Deterministic random number generation.
//
// All randomness in the repository flows from a single user-supplied seed
// through SplitMix64 (for seeding / stream splitting) into Xoshiro256**
// (for bulk generation). Streams derived with `fork()` are statistically
// independent, which lets each subsystem own its RNG without coupling the
// sequence of draws across subsystems — adding a draw in one module never
// perturbs another module's results.
#pragma once

#include <cstdint>
#include <vector>

namespace asap {

// SplitMix64: tiny, well-distributed generator used to expand seeds.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// Xoshiro256** by Blackman & Vigna. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  // Derives an independent child stream; `salt` distinguishes siblings.
  [[nodiscard]] Rng fork(std::uint64_t salt) const;

  // Uniform integer in [0, bound) using Lemire's unbiased method. bound > 0.
  std::uint64_t below(std::uint64_t bound);
  // Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);
  // Uniform double in [0, 1).
  double uniform();
  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  // Bernoulli trial.
  bool chance(double p);
  // Standard normal via Box-Muller (no cached spare: keeps state minimal).
  double normal();
  double normal(double mean, double stddev);
  // Log-normal where `median` is the distribution median, sigma the shape.
  double lognormal(double median, double sigma);
  // Exponential with the given mean.
  double exponential(double mean);
  // Zipf-like rank sample over [0, n) with exponent `s` (s >= 0).
  // Uses rejection-inversion; O(1) expected time.
  std::uint64_t zipf(std::uint64_t n, double s);

  // Picks a uniformly random element index of a non-empty container size.
  template <typename Container>
  std::size_t index_of(const Container& c) {
    return static_cast<std::size_t>(below(c.size()));
  }

  // Fisher-Yates shuffle.
  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

  // Samples `k` distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);
  // Allocation-free variant for hot loops: clears `out` and fills it with
  // the same draws sample_indices would produce (identical RNG consumption
  // and output order), reusing out's capacity and per-thread scratch.
  void sample_indices_into(std::size_t n, std::size_t k, std::vector<std::size_t>& out);

 private:
  std::uint64_t state_[4];
};

}  // namespace asap
