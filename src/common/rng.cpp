#include "common/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>
#include <unordered_set>

namespace asap {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : state_) word = sm.next();
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::fork(std::uint64_t salt) const {
  // Mix current state with the salt through SplitMix64 to seed the child.
  SplitMix64 sm(state_[0] ^ rotl(state_[3], 13) ^ (salt * 0x9E3779B97F4A7C15ULL));
  return Rng(sm.next());
}

std::uint64_t Rng::below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

bool Rng::chance(double p) { return uniform() < p; }

double Rng::normal() {
  // Box-Muller; draw u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::lognormal(double median, double sigma) {
  return median * std::exp(sigma * normal());
}

double Rng::exponential(double mean) {
  double u = 1.0 - uniform();
  return -mean * std::log(u);
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) {
  assert(n > 0);
  if (n == 1) return 0;
  if (s <= 0.0) return below(n);
  // Rejection-inversion sampling (Hormann & Derflinger).
  const double nd = static_cast<double>(n);
  auto h = [s](double x) {
    if (std::abs(s - 1.0) < 1e-12) return std::log(x);
    return (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
  };
  auto h_inv = [s](double y) {
    if (std::abs(s - 1.0) < 1e-12) return std::exp(y);
    return std::pow(1.0 + y * (1.0 - s), 1.0 / (1.0 - s));
  };
  const double hx0 = h(0.5) - 1.0;  // h(0.5) - f(1)
  const double hn = h(nd + 0.5);
  for (;;) {
    double u = hx0 + uniform() * (hn - hx0);
    double x = h_inv(u);
    double k = std::floor(x + 0.5);
    if (k < 1.0) k = 1.0;
    if (k > nd) k = nd;
    // Accept u iff it falls in the f(k)-sized slice ending at h(k + 0.5).
    if (u < h(k + 0.5) - std::pow(k, -s)) continue;
    return static_cast<std::uint64_t>(k) - 1;  // zero-based rank
  }
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  std::vector<std::size_t> out;
  sample_indices_into(n, k, out);
  return out;
}

void Rng::sample_indices_into(std::size_t n, std::size_t k, std::vector<std::size_t>& out) {
  assert(k <= n);
  out.clear();
  out.reserve(k);
  if (k * 3 >= n) {
    // Dense case: partial Fisher-Yates over an index vector. The index
    // vector is per-thread scratch so per-session samplers (RAND/MIX draw
    // one pool per evaluated session) never reallocate in steady state.
    static thread_local std::vector<std::size_t> all;
    all.resize(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      std::size_t j = i + static_cast<std::size_t>(below(n - i));
      std::swap(all[i], all[j]);
      out.push_back(all[i]);
    }
  } else {
    // Sparse case: rejection with a reused hash set (clear keeps buckets).
    static thread_local std::unordered_set<std::size_t> seen;
    seen.clear();
    seen.reserve(k * 2);
    while (out.size() < k) {
      auto candidate = static_cast<std::size_t>(below(n));
      if (seen.insert(candidate).second) out.push_back(candidate);
    }
  }
}

}  // namespace asap
