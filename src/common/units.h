// Time and rate units used throughout the simulation.
//
// Latencies are carried as plain `double` milliseconds wrapped in a thin
// `Millis` alias: the simulation mixes measured, modelled and synthetic
// latencies arithmetically (sums of path legs, relay penalties, noise), so a
// raw floating type with a documented unit is the pragmatic choice; the
// strong-ness lives in function signatures and names ("_ms" suffixes).
#pragma once

namespace asap {

// One-way or round-trip latency in milliseconds (documented per use site).
using Millis = double;

// An RTT considered "unreachable" (failed path / probe timeout).
inline constexpr Millis kUnreachableMs = 1.0e9;

// Paper parameters (Sec. 3.2 / Sec. 7.1): measured ~12 ms per-node relay
// delay; the paper conservatively uses 20 ms one-way, 40 ms round trip.
inline constexpr Millis kRelayDelayOneWayMs = 20.0;
inline constexpr Millis kRelayDelayRttMs = 40.0;

// ITU G.114 one-way limit and the paper's RTT quality threshold.
inline constexpr Millis kOneWayLimitMs = 150.0;
inline constexpr Millis kQualityRttThresholdMs = 300.0;

}  // namespace asap
