// Strong integer id types used across the ASAP libraries.
//
// Each entity (AS, prefix cluster, host, ...) gets its own non-convertible id
// type so that an AsId can never be silently passed where a HostId is
// expected. Ids are dense indices assigned at construction time by whichever
// container owns the entity (AsGraph, PeerPopulation, ...).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

namespace asap {

// Tagged integral id. `Tag` is a phantom type; `Rep` the underlying integer.
template <typename Tag, typename Rep = std::uint32_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  // Sentinel for "no such entity".
  static constexpr Rep kInvalid = std::numeric_limits<Rep>::max();
  static constexpr StrongId invalid() { return StrongId(kInvalid); }

  friend constexpr bool operator==(StrongId a, StrongId b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(StrongId a, StrongId b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(StrongId a, StrongId b) { return a.value_ < b.value_; }
  friend constexpr bool operator>(StrongId a, StrongId b) { return a.value_ > b.value_; }
  friend constexpr bool operator<=(StrongId a, StrongId b) { return a.value_ <= b.value_; }
  friend constexpr bool operator>=(StrongId a, StrongId b) { return a.value_ >= b.value_; }

 private:
  Rep value_ = kInvalid;
};

struct AsTag {};
struct ClusterTag {};
struct HostTag {};
struct NodeTag {};
struct SessionTag {};

// Index of an AS node in an AsGraph (dense, not the wire-format ASN).
using AsId = StrongId<AsTag>;
// Index of an IP-prefix cluster in a PeerPopulation.
using ClusterId = StrongId<ClusterTag>;
// Index of a peer end host in a PeerPopulation.
using HostId = StrongId<HostTag>;
// Index of a simulation node (bootstrap/surrogate/end host) in a sim::Network.
using NodeId = StrongId<NodeTag>;
// Index of a VoIP calling session.
using SessionId = StrongId<SessionTag>;

}  // namespace asap

namespace std {
template <typename Tag, typename Rep>
struct hash<asap::StrongId<Tag, Rep>> {
  size_t operator()(asap::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>()(id.value());
  }
};
}  // namespace std
