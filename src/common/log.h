// Minimal leveled logging to stderr. Benchmarks keep stdout for results.
#pragma once

#include <string_view>

namespace asap {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global threshold; messages below it are dropped. Defaults to kInfo and can
// be overridden with the ASAP_LOG environment variable (debug/info/warn/error).
void set_log_level(LogLevel level);
LogLevel log_level();

void log_message(LogLevel level, std::string_view message);

inline void log_debug(std::string_view m) { log_message(LogLevel::kDebug, m); }
inline void log_info(std::string_view m) { log_message(LogLevel::kInfo, m); }
inline void log_warn(std::string_view m) { log_message(LogLevel::kWarn, m); }
inline void log_error(std::string_view m) { log_message(LogLevel::kError, m); }

}  // namespace asap
