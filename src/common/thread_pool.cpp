#include "common/thread_pool.h"

#include <algorithm>

namespace asap {

std::size_t ThreadPool::resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  std::size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t total = resolve_threads(threads);
  workers_.reserve(total - 1);
  for (std::size_t i = 0; i + 1 < total; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty()) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch_.count = count;
    batch_.next = 0;
    // Small chunks keep workers busy near the end of skewed workloads while
    // bounding lock traffic to ~8 grabs per worker.
    batch_.chunk = std::max<std::size_t>(1, count / (size() * 8));
    batch_.in_flight = 0;
    batch_.fn = &fn;
    batch_.error = nullptr;
  }
  work_ready_.notify_all();
  drain_batch();
  std::unique_lock<std::mutex> lock(mutex_);
  batch_done_.wait(lock, [this] {
    return batch_.next >= batch_.count && batch_.in_flight == 0;
  });
  batch_.fn = nullptr;
  if (batch_.error) {
    std::exception_ptr error = batch_.error;
    batch_.error = nullptr;
    std::rethrow_exception(error);
  }
}

void ThreadPool::drain_batch() {
  for (;;) {
    std::size_t begin;
    std::size_t end;
    const std::function<void(std::size_t)>* fn;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (batch_.fn == nullptr || batch_.next >= batch_.count) return;
      begin = batch_.next;
      end = std::min(batch_.count, begin + batch_.chunk);
      batch_.next = end;
      batch_.in_flight += end - begin;
      fn = batch_.fn;
    }
    try {
      for (std::size_t i = begin; i < end; ++i) (*fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!batch_.error) batch_.error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      batch_.in_flight -= end - begin;
      if (batch_.next >= batch_.count && batch_.in_flight == 0) {
        batch_done_.notify_all();
      }
    }
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] {
        return stop_ || (batch_.fn != nullptr && batch_.next < batch_.count);
      });
      if (stop_) return;
    }
    drain_batch();
  }
}

}  // namespace asap
