#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace asap {

void OnlineStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  return count_ ? m2_ / static_cast<double>(count_) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double q) {
  assert(q >= 0.0 && q <= 100.0);
  // Empty input yields NaN rather than asserting: release benches hit this
  // legitimately (e.g. a scaled-down run with zero latent sessions), and an
  // NDEBUG build would otherwise index out of bounds.
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  double pos = (q / 100.0) * static_cast<double>(values.size() - 1);
  auto lo = static_cast<std::size_t>(pos);
  auto hi = std::min(lo + 1, values.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

std::vector<CurvePoint> make_cdf(std::vector<double> values, std::size_t points) {
  std::vector<CurvePoint> curve;
  if (values.empty()) return curve;
  std::sort(values.begin(), values.end());
  points = std::max<std::size_t>(points, 2);
  curve.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    double frac = static_cast<double>(i) / static_cast<double>(points - 1);
    auto idx = static_cast<std::size_t>(frac * static_cast<double>(values.size() - 1));
    double y = static_cast<double>(idx + 1) / static_cast<double>(values.size());
    curve.push_back({values[idx], y});
  }
  return curve;
}

std::vector<CurvePoint> make_ccdf(std::vector<double> values, std::size_t points) {
  auto curve = make_cdf(std::move(values), points);
  for (auto& p : curve) p.y = 1.0 - p.y;
  return curve;
}

double fraction_above(const std::vector<double>& values, double threshold) {
  if (values.empty()) return 0.0;
  auto n = static_cast<double>(
      std::count_if(values.begin(), values.end(), [&](double v) { return v > threshold; }));
  return n / static_cast<double>(values.size());
}

double fraction_at_most(const std::vector<double>& values, double threshold) {
  return 1.0 - fraction_above(values, threshold);
}

LinearHistogram::LinearHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void LinearHistogram::add(double x) {
  double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(frac * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double LinearHistogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double LinearHistogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

LogHistogram::LogHistogram(double lo, double ratio, std::size_t bins)
    : lo_(lo), ratio_(ratio), counts_(bins, 0) {
  assert(lo > 0 && ratio > 1.0 && bins > 0);
}

void LogHistogram::add(double x) {
  std::ptrdiff_t idx = 0;
  if (x > lo_) {
    idx = static_cast<std::ptrdiff_t>(std::log(x / lo_) / std::log(ratio_));
  }
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double LogHistogram::bin_lo(std::size_t i) const {
  return lo_ * std::pow(ratio_, static_cast<double>(i));
}

double LogHistogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

}  // namespace asap
