#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace asap {

namespace {

LogLevel initial_level() {
  const char* env = std::getenv("ASAP_LOG");
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kInfo;
}

std::atomic<LogLevel> g_level{initial_level()};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, std::string_view message) {
  if (level < log_level()) return;
  std::fprintf(stderr, "[%s] %.*s\n", level_name(level), static_cast<int>(message.size()),
               message.data());
}

}  // namespace asap
