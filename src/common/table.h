// ASCII table rendering for benchmark output. Benches print the rows/series
// of the paper's tables and figures; this keeps that output aligned and
// machine-greppable (a leading "| " per row, header separator).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace asap {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Adds a row; cells beyond the header count are dropped, missing cells are
  // rendered empty.
  void add_row(std::vector<std::string> cells);

  // Convenience formatting helpers for numeric cells.
  static std::string fmt(double value, int decimals = 2);
  static std::string fmt_int(long long value);
  static std::string fmt_pct(double fraction, int decimals = 1);

  [[nodiscard]] std::string render() const;
  void print() const;  // render() to stdout

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints a titled section banner around bench output blocks.
void print_section(const std::string& title);

// Observer over the rendered bench output. When set, every Table::print()
// and print_section() also feeds the exact bytes it wrote to stdout to `fn`
// — the run digests hash this stream to fingerprint a bench's figures
// without touching what gets printed. Pass nullptr to detach. Not
// thread-safe; benches print from one thread.
using OutputObserver = void (*)(std::string_view bytes, void* ctx);
void set_output_observer(OutputObserver fn, void* ctx);

}  // namespace asap
