#include "overlay/federation.h"

#include <algorithm>

#include "core/protocol.h"
#include "core/wire.h"
#include "population/peer_population.h"

namespace asap::overlay {

FederatedControlPlane::FederatedControlPlane(const population::World& world,
                                             const core::AsapParams& params,
                                             const OverlayParams& overlay)
    : world_(&world),
      overlay_(overlay),
      cache_(std::make_unique<core::CloseSetCache>(world, params)) {
  const auto& clusters = world.pop().populated_clusters();
  surrogates_.resize(clusters.size());
  index_of_.reserve(clusters.size());
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    surrogates_[i].cluster = clusters[i];
    index_of_.emplace(clusters[i], i);
  }
}

const core::AsapParams& FederatedControlPlane::params() const {
  return cache_->params();
}

const FederatedControlPlane::SurrogateState* FederatedControlPlane::state_of(
    ClusterId c) const {
  auto it = index_of_.find(c);
  return it == index_of_.end() ? nullptr : &surrogates_[it->second];
}

const core::CloseClusterSet& FederatedControlPlane::view(ClusterId viewer,
                                                         ClusterId target,
                                                         bool& fetched) {
  if (viewer == target) {
    // A surrogate always knows its own set (it measures it); members ask
    // their surrogate for free, exactly as in the flat model.
    fetched = false;
    return cache_->get(target);
  }
  if (const SurrogateState* s = state_of(viewer)) {
    auto it = s->ib.find(target);
    if (it != s->ib.end() && now_ms_ - it->second.received_at_ms <= overlay_.ib_ttl_ms) {
      fetched = false;
      ib_hits_.fetch_add(1, std::memory_order_relaxed);
      return *it->second.set;
    }
  }
  // Miss or expired: on-demand fetch from the target's surrogate, at the
  // flat plane's cost. Deliberately does NOT back-fill the IB — view() must
  // stay mutation-free so concurrent, arbitrarily-ordered selection calls
  // cannot influence each other (thread-count determinism).
  fetched = true;
  ib_misses_.fetch_add(1, std::memory_order_relaxed);
  return cache_->get(target);
}

void FederatedControlPlane::run_gossip_until(Millis now_ms) {
  while (next_round_ms_ <= now_ms) {
    run_round(next_round_ms_);
    next_round_ms_ += overlay_.gossip_period_ms;
  }
  now_ms_ = std::max(now_ms_, now_ms);
}

void FederatedControlPlane::run_round(Millis at_ms) {
  ++rounds_;
  const population::RelayDirectory& dir = world_->relay_directory();
  for (std::size_t i = 0; i < surrogates_.size(); ++i) {
    SurrogateState& origin = surrogates_[i];
    // Snapshot the origin's current set; the shared_ptr keeps this epoch's
    // measurements alive in peers' IBs even after set_world()/invalidation
    // rebuilds the ground-truth cache (that persistence IS the staleness).
    auto snapshot =
        std::make_shared<const core::CloseClusterSet>(cache_->get(origin.cluster));
    origin.own = snapshot;
    const float capability = static_cast<float>(dir.relay_capability[i]);
    core::IbPush push;
    push.origin = origin.cluster;
    push.built_at_ms = at_ms;
    push.capability = capability;
    push.set = snapshot;
    const std::uint64_t frame_bytes = static_cast<std::uint64_t>(
        core::wire::kPacketOverheadBytes + core::wire::encoded_size(push));
    // Peering follows the close-set relation: push to the surrogate of
    // every cluster in the snapshot (skipping unpopulated clusters, which
    // have no surrogate to hold an IB).
    for (const core::CloseClusterEntry& entry : snapshot->entries) {
      auto it = index_of_.find(entry.cluster);
      if (it == index_of_.end() || it->second == i) continue;
      SurrogateState& peer = surrogates_[it->second];
      peer.ib[origin.cluster] = IbEntry{snapshot, at_ms, capability};
      gossip_messages_ += 1;
      gossip_bytes_ += frame_bytes;
    }
  }
  now_ms_ = std::max(now_ms_, at_ms);
}

void FederatedControlPlane::set_world(const population::World& world) {
  world_ = &world;
  cache_ = std::make_unique<core::CloseSetCache>(world, cache_->params());
}

std::size_t FederatedControlPlane::invalidate_ases(std::span<const AsId> ases) {
  cache_->invalidate_ases(ases);
  const auto& pop = world_->pop();
  auto affected = [&](ClusterId c) {
    AsId as = pop.cluster(c).as;
    return ases.empty() ||
           std::find(ases.begin(), ases.end(), as) != ases.end();
  };
  std::size_t dropped = 0;
  for (SurrogateState& s : surrogates_) {
    for (auto it = s.ib.begin(); it != s.ib.end();) {
      if (affected(it->first)) {
        it = s.ib.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
    if (s.own && affected(s.cluster)) s.own.reset();
  }
  return dropped;
}

std::uint64_t FederatedControlPlane::max_state_bytes_per_node() const {
  std::uint64_t max_bytes = 0;
  for (const SurrogateState& s : surrogates_) {
    std::uint64_t bytes = 0;
    if (s.own) bytes += core::wire::close_set_wire_bytes(*s.own);
    for (const auto& [origin, entry] : s.ib) {
      // Entry = the gossiped set plus origin metadata (id, timestamp,
      // capability — the IbPush body minus the set).
      bytes += core::wire::close_set_wire_bytes(*entry.set) + 16;
    }
    max_bytes = std::max(max_bytes, bytes);
  }
  return max_bytes;
}

}  // namespace asap::overlay
