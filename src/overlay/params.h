// Tunables for the tiered relay overlay (DESIGN.md §15).
//
// `tier` picks the control plane behind relay selection: the flat global
// directory (every node sees everything, the pre-overlay default and the
// paper's implicit model) or the federated surrogate hierarchy, where
// per-cluster surrogates peer surrogate-to-surrogate and gossip close-set /
// relay-capability information bases. Federated knowledge is eventually
// consistent: refreshed every `gossip_period_ms`, trusted for `ib_ttl_ms`,
// fetched on demand (at flat-plane cost) when missing or expired.
#pragma once

#include <cstdint>

#include "core/config_io.h"
#include "common/units.h"

namespace asap::overlay {

enum class Tier {
  kFlat,       // flat global directory (default; byte-identical goldens)
  kFederated,  // federated surrogate information bases
};

struct OverlayParams {
  Tier tier = Tier::kFlat;
  // Surrogate-to-surrogate gossip period. Each round every surrogate
  // snapshots its own close set and pushes it (IbPush) to the surrogates of
  // the clusters in that set.
  Millis gossip_period_ms = 30'000.0;
  // How long a received information-base entry is trusted before a view
  // falls back to an on-demand fetch. Must be >= gossip_period_ms, or
  // entries expire before the next refresh and the plane degenerates to
  // per-call fetching.
  Millis ib_ttl_ms = 120'000.0;
  // Maximum number of via-tier intermediate relays in a source route
  // (0 = direct / one-hop only; the session-setup frame carries the route).
  std::uint32_t via_budget = 1;
};

// Lifts the parsed overlay.* config keys (core::OverlayConfig, validated by
// parse_config) into typed overlay params.
inline OverlayParams overlay_params_from(const core::OverlayConfig& config) {
  OverlayParams params;
  params.tier = config.tier == "federated" ? Tier::kFederated : Tier::kFlat;
  params.gossip_period_ms = config.gossip_period_ms;
  params.ib_ttl_ms = config.ib_ttl_ms;
  params.via_budget = config.via_budget;
  return params;
}

}  // namespace asap::overlay
