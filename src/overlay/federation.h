// Federated surrogate control plane (DESIGN.md §15).
//
// Instead of every node consulting one flat global directory, each
// populated cluster's surrogate keeps an *information base* (IB): the close
// sets most recently gossiped to it by its peer surrogates. Peering follows
// the close-set relation itself — a surrogate pushes its set to the
// surrogates of the clusters in that set — so a node's control-plane state
// is O(own cluster + peered surrogates), not O(world). Knowledge is
// eventually consistent: refreshed every gossip period, trusted for a TTL,
// and fetched on demand (charged like the flat plane) on a miss.
//
// The plane implements core::CloseSetSource, so select-close-relay() runs
// unchanged on top of it; an IB hit simply reports `fetched = false` and
// costs no setup messages. Determinism: view() never mutates the IB — only
// run_gossip_until() and invalidate_ases() do — so concurrent evaluation
// workers see a stable snapshot and results are thread-count independent.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/close_cluster.h"
#include "core/close_set_source.h"
#include "overlay/params.h"
#include "relay/provider.h"

namespace asap::overlay {

class FederatedControlPlane final : public core::CloseSetSource {
 public:
  FederatedControlPlane(const population::World& world, const core::AsapParams& params,
                        const OverlayParams& overlay);

  // --- core::CloseSetSource -----------------------------------------------
  // Own cluster: always answered fresh (the surrogate measures its own
  // set). Peer cluster with an IB entry within TTL: answered locally,
  // `fetched = false`. Otherwise: on-demand fetch from the target's
  // surrogate over the world's current ground truth, `fetched = true` (the
  // selector charges the same messages/bytes the flat plane would).
  const core::CloseClusterSet& view(ClusterId viewer, ClusterId target,
                                    bool& fetched) override;
  [[nodiscard]] const core::AsapParams& params() const override;

  // --- Gossip & lifecycle --------------------------------------------------
  // Advances the plane's clock to `now_ms`, executing every due gossip
  // round (the first round is due at t=0). Each round, every surrogate
  // snapshots its own close set against the *current* world and pushes it
  // to its peers; the accounting below charges one IbPush frame per peer.
  void run_gossip_until(Millis now_ms);
  // Points the plane at a new world epoch (same cluster universe). Fetches
  // and future gossip read the new ground truth; existing IB entries keep
  // their old-epoch snapshots until refreshed or expired — this is the
  // staleness the fig_overlay sweep measures.
  void set_world(const population::World& world);
  // Route-flap hook (composes with the PR 6 cache invalidation): evicts
  // affected ground-truth sets and drops IB entries whose origin cluster
  // sits in an affected AS (surrogates there re-announce at the next
  // round; until then views of them fall back to fetches). Returns entries
  // dropped from information bases.
  std::size_t invalidate_ases(std::span<const AsId> ases);

  // --- Accounting -----------------------------------------------------------
  [[nodiscard]] std::uint64_t gossip_messages() const { return gossip_messages_; }
  [[nodiscard]] std::uint64_t gossip_bytes() const { return gossip_bytes_; }
  [[nodiscard]] std::uint64_t ib_hits() const {
    return ib_hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t ib_misses() const {
    return ib_misses_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t rounds_run() const { return rounds_; }
  // Largest control-plane footprint any single surrogate holds, in wire
  // bytes: its own set plus every live IB entry (set + origin metadata).
  // The fig_overlay scalability axis — O(cluster + peers), not O(world).
  [[nodiscard]] std::uint64_t max_state_bytes_per_node() const;
  [[nodiscard]] Millis now_ms() const { return now_ms_; }

 private:
  struct IbEntry {
    std::shared_ptr<const core::CloseClusterSet> set;
    Millis received_at_ms = 0.0;
    float capability = 0.0f;
  };
  struct SurrogateState {
    ClusterId cluster;
    // Last own-set snapshot pushed out (kept for state accounting).
    std::shared_ptr<const core::CloseClusterSet> own;
    // Keyed by origin cluster; std::map for deterministic iteration.
    std::map<ClusterId, IbEntry> ib;
  };

  void run_round(Millis at_ms);
  [[nodiscard]] const SurrogateState* state_of(ClusterId c) const;

  const population::World* world_;
  OverlayParams overlay_;
  // Ground truth for own-set views and on-demand fetches; rebuilt on
  // set_world (IB snapshots outlive it via shared_ptr).
  std::unique_ptr<core::CloseSetCache> cache_;
  std::vector<SurrogateState> surrogates_;  // index-aligned with populated_clusters()
  std::unordered_map<ClusterId, std::size_t> index_of_;
  Millis now_ms_ = 0.0;
  Millis next_round_ms_ = 0.0;
  std::uint64_t rounds_ = 0;
  std::uint64_t gossip_messages_ = 0;
  std::uint64_t gossip_bytes_ = 0;
  mutable std::atomic<std::uint64_t> ib_hits_{0};
  mutable std::atomic<std::uint64_t> ib_misses_{0};
};

// The federated plane as a relay::CloseSetProvider: plugs the surrogate
// hierarchy into make_selectors()/evaluate_methods() unchanged.
class FederatedProvider final : public relay::CloseSetProvider {
 public:
  FederatedProvider(const population::World& world, const core::AsapParams& params,
                    const OverlayParams& overlay)
      : world_(&world), plane_(world, params, overlay) {}

  [[nodiscard]] std::string name() const override { return "federated"; }
  [[nodiscard]] core::CloseSetSource& close_sets() override { return plane_; }
  [[nodiscard]] const population::RelayDirectory& directory() const override {
    return world_->relay_directory();
  }
  [[nodiscard]] std::uint64_t upkeep_messages() const override {
    return plane_.gossip_messages();
  }
  [[nodiscard]] std::uint64_t upkeep_bytes() const override {
    return plane_.gossip_bytes();
  }
  [[nodiscard]] std::uint64_t max_state_bytes_per_node() const override {
    return plane_.max_state_bytes_per_node();
  }

  void set_world(const population::World& world) {
    world_ = &world;
    plane_.set_world(world);
  }
  [[nodiscard]] FederatedControlPlane& plane() { return plane_; }

 private:
  const population::World* world_;
  FederatedControlPlane plane_;
};

}  // namespace asap::overlay
