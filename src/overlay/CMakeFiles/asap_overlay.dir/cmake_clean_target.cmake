file(REMOVE_RECURSE
  "libasap_overlay.a"
)
