file(REMOVE_RECURSE
  "CMakeFiles/asap_overlay.dir/federation.cpp.o"
  "CMakeFiles/asap_overlay.dir/federation.cpp.o.d"
  "libasap_overlay.a"
  "libasap_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asap_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
