# Empty dependencies file for asap_overlay.
# This may be replaced when dependencies are built.
