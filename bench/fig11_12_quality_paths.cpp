// Reproduces paper Figs. 11 & 12: per-session quality-path counts and their
// CDF for DEDI / RAND / MIX / ASAP over the latent sessions (23,366-peer
// world). Paper shape: baselines never exceed ~500 quality paths; with
// ASAP, 90% of sessions find more than 10^4.
#include <cstdio>

#include "bench_common.h"

using namespace asap;

int main(int argc, char** argv) {
  auto env = bench::read_env(argc, argv);
  bench::BenchRun run("fig11_12_quality_paths", env);
  auto world = bench::build_world(bench::eval_world_params(env), "fig11-12");
  auto workload = bench::sample_sessions(*world, env.sessions);

  auto config = run.eval_config();
  config.include_opt = false;  // OPT does not appear in the quality-path figures
  auto results = relay::evaluate_methods(*world, workload.latent, config);

  bench::print_method_summary("Fig 11: quality paths per latent session", results,
                              "quality_paths");
  for (const auto& mr : results) {
    bench::print_cdf("Fig 12: quality-path CDF — " + mr.method, "quality paths",
                     mr.quality_paths);
  }

  bench::print_section("Fig 11/12 headline comparison");
  Table table({"method", "sessions > 500 paths", "sessions > 1e4 paths", "p10 paths"});
  for (const auto& mr : results) {
    table.add_row({mr.method, Table::fmt_pct(fraction_above(mr.quality_paths, 500.0), 1),
                   Table::fmt_pct(fraction_above(mr.quality_paths, 1.0e4), 1),
                   Table::fmt(percentile(mr.quality_paths, 10), 0)});
  }
  table.print();
  return 0;
}
