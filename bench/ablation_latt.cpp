// Ablation: the latency threshold latT used both to admit clusters into
// close sets and to accept relay paths. The paper sets it "close to
// 300 ms" (from the 150 ms one-way bound). Lower latT trims the candidate
// space (fewer quality paths, less overhead) but risks finding nothing.
#include <cstdio>

#include "bench_common.h"

using namespace asap;

int main() {
  auto env = bench::read_env();
  bench::BenchRun run("ablation_latt", env);
  auto world = bench::build_world(bench::eval_world_params(env), "ablation-latT");
  auto workload = bench::sample_sessions(*world, env.sessions);
  std::vector<population::Session> sessions = workload.latent;
  if (sessions.size() > 300) sessions.resize(300);

  bench::print_section("Ablation: latency threshold latT");
  Table table({"latT (ms)", "p50 quality paths", "sessions w/o relay", "p50 shortest RTT",
               "p90 messages", "two-hop sessions"});
  for (double lat : {150.0, 200.0, 250.0, 300.0, 400.0}) {
    relay::EvaluationConfig config;
    config.metrics = run.metrics();
    config.asap.lat_threshold_ms = lat;
    relay::AsapSelector selector(*world, config.asap,
                                 world->fork_rng(2000 + static_cast<std::uint64_t>(lat)));
    std::vector<double> paths;
    std::vector<double> rtts;
    std::vector<double> msgs;
    std::size_t without = 0;
    std::size_t two_hop = 0;
    for (const auto& s : sessions) {
      auto r = selector.select(s);
      paths.push_back(static_cast<double>(r.quality_paths));
      if (r.shortest_rtt_ms >= kUnreachableMs) ++without;
      rtts.push_back(std::min(r.shortest_rtt_ms, s.direct_rtt_ms));
      msgs.push_back(static_cast<double>(r.messages));
      if (selector.last_detail().two_hop_triggered) ++two_hop;
    }
    table.add_row({Table::fmt(lat, 0), Table::fmt(percentile(paths, 50), 0),
                   Table::fmt_int(static_cast<long long>(without)),
                   Table::fmt(percentile(rtts, 50), 1), Table::fmt(percentile(msgs, 90), 0),
                   Table::fmt_int(static_cast<long long>(two_hop))});
  }
  table.print();
  return 0;
}
