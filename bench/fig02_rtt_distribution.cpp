// Reproduces paper Fig. 2: (a) the direct IP routing RTT distribution of
// 10^5 random sessions; (b) direct vs optimal one-hop relay RTTs.
//
// Paper shape to match: ~10^3 of 10^5 sessions above 300 ms, ~10^4 above
// 200 ms, a handful above 5 s; ~60% of sessions improved by the optimal
// one-hop relay, whose RTTs are mostly below 100 ms.
#include <cstdio>

#include "bench_common.h"
#include "population/measurement.h"

using namespace asap;

int main() {
  auto env = bench::read_env();
  bench::BenchRun run("fig02_rtt_distribution", env);
  auto world = bench::build_world(bench::eval_world_params(env), "fig02");
  auto workload = bench::sample_sessions(*world, env.sessions);

  std::vector<double> direct;
  direct.reserve(workload.all.size());
  for (const auto& s : workload.all) direct.push_back(s.direct_rtt_ms);

  bench::print_section("Fig 2(a): direct IP routing RTT distribution");
  {
    LogHistogram hist(10.0, 1.6, 18);
    for (double d : direct) hist.add(d);
    Table table({"RTT bin (ms)", "sessions"});
    for (std::size_t i = 0; i < hist.bins(); ++i) {
      table.add_row({Table::fmt(hist.bin_lo(i), 0) + " - " + Table::fmt(hist.bin_hi(i), 0),
                     Table::fmt_int(static_cast<long long>(hist.bin_count(i)))});
    }
    table.print();

    Table thresholds({"threshold", "sessions above", "fraction"});
    for (double t : {200.0, 300.0, 500.0, 1000.0, 5000.0}) {
      auto above = static_cast<long long>(fraction_above(direct, t) *
                                          static_cast<double>(direct.size()) + 0.5);
      thresholds.add_row({Table::fmt(t, 0) + " ms", Table::fmt_int(above),
                          Table::fmt_pct(fraction_above(direct, t), 2)});
    }
    thresholds.print();
  }

  // Fig 2(b): optimal one-hop for every session.
  population::OneHopScanner scanner(*world);
  std::vector<double> optimal;
  optimal.reserve(workload.all.size());
  std::size_t improved = 0;
  for (const auto& s : workload.all) {
    auto best = scanner.best(s);
    optimal.push_back(best.rtt_ms);
    if (best.rtt_ms < s.direct_rtt_ms) ++improved;
  }

  bench::print_section("Fig 2(b): direct vs optimal one-hop relay RTT");
  std::printf("sessions where optimal 1-hop beats direct: %zu / %zu (%.1f%%)\n", improved,
              workload.all.size(),
              100.0 * static_cast<double>(improved) / static_cast<double>(workload.all.size()));
  bench::print_cdf("direct RTT CDF", "direct RTT (ms)", direct);
  bench::print_cdf("optimal 1-hop RTT CDF", "optimal 1-hop RTT (ms)", optimal);
  std::printf("optimal 1-hop RTT below 100 ms: %s of sessions\n",
              Table::fmt_pct(fraction_at_most(optimal, 100.0), 1).c_str());
  return 0;
}
