// Validation bench for the paper's Sec. 6.2 assumption (citing Mao et al.,
// "On AS-level path inference"): "it is reasonably accurate to infer AS
// paths by computing the shortest AS hops paths". ASAP's close-set BFS
// relies on exactly this — it estimates reachability with shortest
// valley-free hop counts instead of querying real BGP paths.
//
// We measure, over random host-AS pairs: how often the shortest valley-free
// hop count equals the BGP policy path's hop count, the error distribution,
// and the latency correlation with hop count (the paper's property 3).
#include <cstdio>

#include "bench_common.h"
#include "astopo/valley_free.h"

using namespace asap;

int main() {
  auto env = bench::read_env();
  bench::BenchRun run("ablation_path_inference", env);
  auto world = bench::build_world(bench::eval_world_params(env), "path-inference");
  Rng rng = world->fork_rng(800);
  const auto& hosts = world->pop().host_ases();

  LinearHistogram error(0.0, 5.0, 5);  // policy hops - inferred hops
  std::size_t exact = 0;
  std::size_t within1 = 0;
  std::size_t total = 0;

  // Latency-vs-hops correlation accumulators.
  std::map<int, OnlineStats> latency_by_hops;

  const std::size_t kSources = 60;
  for (std::size_t i = 0; i < kSources; ++i) {
    AsId src = hosts[rng.index_of(hosts)];
    auto inferred = astopo::valley_free_hops(world->graph(), src, 16);
    for (std::size_t j = 0; j < 200; ++j) {
      AsId dst = hosts[rng.index_of(hosts)];
      if (src == dst) continue;
      auto policy_hops = world->oracle().as_hops(src, dst);
      if (policy_hops == 0xFF || inferred[dst.value()] == astopo::kVfUnreached) continue;
      int diff = static_cast<int>(policy_hops) - static_cast<int>(inferred[dst.value()]);
      ++total;
      if (diff == 0) ++exact;
      if (diff <= 1) ++within1;
      error.add(static_cast<double>(diff));
      Millis lat = world->oracle().one_way_ms(src, dst);
      if (lat < kUnreachableMs) {
        latency_by_hops[policy_hops].add(lat);
      }
    }
  }

  bench::print_section("Shortest valley-free hops vs BGP policy-path hops");
  std::printf("pairs compared: %zu\n", total);
  Table table({"policy - inferred hops", "pairs", "fraction"});
  for (std::size_t b = 0; b < error.bins(); ++b) {
    table.add_row({Table::fmt(error.bin_lo(b), 0),
                   Table::fmt_int(static_cast<long long>(error.bin_count(b))),
                   Table::fmt_pct(static_cast<double>(error.bin_count(b)) /
                                      static_cast<double>(std::max<std::size_t>(total, 1)),
                                  1)});
  }
  table.print();
  std::printf("exact: %s | within one hop: %s (Mao et al. report ~70-90%% exact on the\n"
              "2005 Internet; our policy sim is cleaner, so inference should do better)\n",
              Table::fmt_pct(static_cast<double>(exact) / total, 1).c_str(),
              Table::fmt_pct(static_cast<double>(within1) / total, 1).c_str());

  bench::print_section("Latency vs AS hop count (paper property 3)");
  Table corr({"policy AS hops", "pairs", "mean one-way (ms)", "p-ish spread (stddev)"});
  double prev_mean = 0.0;
  bool monotone = true;
  for (const auto& [hops, stats] : latency_by_hops) {
    if (stats.count() < 20) continue;
    corr.add_row({Table::fmt_int(hops), Table::fmt_int(static_cast<long long>(stats.count())),
                  Table::fmt(stats.mean(), 1), Table::fmt(stats.stddev(), 1)});
    if (stats.mean() < prev_mean) monotone = false;
    prev_mean = stats.mean();
  }
  corr.print();
  std::printf("mean latency %s with AS hops — the correlation ASAP's BFS exploits\n",
              monotone ? "increases monotonically" : "mostly increases");
  return 0;
}
