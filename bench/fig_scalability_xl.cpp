// fig_scalability_xl: million-peer memory/scalability sweep (DESIGN.md §12).
//
// Not a paper figure: the paper stops at 103,625 peers (Fig. 17). This
// bench exercises the memory architecture those figures never stress —
// SoA/arena population storage, sharded world generation and the bounded
// oracle table cache — by building worlds of 100k/500k/1M peers and
// streaming up to 10M relay-selection sessions through each within a fixed
// oracle-cache byte budget.
//
// Sessions are processed in chunks; each chunk draws its own RNG stream
// (fork by chunk index) so results are deterministic for any thread count,
// and retired oracle tables are purged at every chunk boundary (the
// quiescent point the bounded cache needs). Per world the bench reports
// peak RSS, population bytes/peer, oracle cache hit/build/eviction counts
// and end-to-end sessions/sec as one machine-readable "BENCH JSON" line.
//
// Arguments (beyond the common --threads / --metrics-out):
//   --peers LIST             comma-separated sweep (default 100000,500000,1000000)
//   --sessions N             sessions per world (default 10 x peers)
//   --chunk N                sessions per streaming chunk (default 8192)
//   --cache-budget-mb N      oracle table budget (default 1024; 0 = unbounded)
//   --no-compact             float tables instead of quantized u16
//   --candidates K           relay candidates scored per session (default 16)
//   --assert-bytes-per-peer B  exit 4 when population bytes/peer exceeds B
//
// The run also fails (exit 5) if the resident oracle bytes ever exceed the
// budget at a chunk boundary — the property the CLOCK eviction guarantees.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace asap;

namespace {

struct XlArgs {
  std::vector<std::size_t> peers = {100000, 500000, 1000000};
  std::size_t sessions = 0;  // 0 = 10 x peers
  std::size_t chunk = 8192;
  // Default sized to hold a 1M-peer world's ~768 MB working set (4000
  // host-AS tables x ~192 KB compact): a smaller budget exercises eviction
  // but every miss pays a full table rebuild, so sweeps meant to finish
  // should keep the working set resident and let eviction trim the edges.
  std::size_t cache_budget_mb = 1024;
  bool compact = true;
  std::size_t candidates = 16;
  double assert_bytes_per_peer = 0.0;  // 0 = no gate
};

// Retired tables are freed only at purge points; under a thrashing budget
// the scoring loop can evict hundreds of tables per second, so purge every
// few hundred sessions (the loop holds no table spans across sessions).
constexpr std::size_t kPurgeEverySessions = 256;

std::vector<std::size_t> parse_size_list(const char* s) {
  std::vector<std::size_t> out;
  while (*s != '\0') {
    char* end = nullptr;
    out.push_back(std::strtoull(s, &end, 10));
    s = (*end == ',') ? end + 1 : end;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::read_env();
  XlArgs args;
  for (int i = 1; i < argc; ++i) {
    auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (std::strcmp(argv[i], "--threads") == 0) {
      env.threads = std::strtoull(value(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--metrics-out") == 0) {
      env.metrics = true;
      env.metrics_out = value();
    } else if (std::strcmp(argv[i], "--peers") == 0) {
      args.peers = parse_size_list(value());
    } else if (std::strcmp(argv[i], "--sessions") == 0) {
      args.sessions = std::strtoull(value(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--chunk") == 0) {
      args.chunk = std::strtoull(value(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--cache-budget-mb") == 0) {
      args.cache_budget_mb = std::strtoull(value(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--no-compact") == 0) {
      args.compact = false;
    } else if (std::strcmp(argv[i], "--candidates") == 0) {
      args.candidates = std::strtoull(value(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--assert-bytes-per-peer") == 0) {
      args.assert_bytes_per_peer = std::strtod(value(), nullptr);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }
  if (args.chunk == 0) args.chunk = 8192;
  if (args.candidates == 0) args.candidates = 1;

  bench::BenchRun run("fig_scalability_xl", env);

  bench::print_section("XL scalability: peers sweep under a bounded oracle cache");
  Table table({"peers", "clusters", "pop MB", "B/peer", "sessions", "hit %", "evictions",
               "sess/s", "peak RSS MB"});

  int rc = 0;
  for (std::size_t peers : args.peers) {
    population::WorldParams wp = bench::xl_world_params(env, peers);
    wp.pop.generation_threads = env.threads;
    wp.oracle_cache.budget_bytes = args.cache_budget_mb * std::size_t(1) << 20;
    wp.oracle_cache.compact_tables = args.compact;
    auto world = bench::build_world(wp, "xl-" + std::to_string(peers));
    const population::RelayDirectory& dir = world->relay_directory();

    // Candidate pool: every relay-capable cluster's effective relay.
    std::vector<HostId> pool;
    pool.reserve(dir.size());
    for (std::size_t i = 0; i < dir.size(); ++i) {
      if (dir.relay_capable[i] != 0) pool.push_back(dir.relays[i]);
    }
    if (pool.empty()) {
      std::fprintf(stderr, "no relay-capable clusters at %zu peers\n", peers);
      return 2;
    }

    const std::size_t total = args.sessions != 0 ? args.sessions : 10 * peers;
    // Integer aggregation (milli-ms units) so sums are exact and
    // order-independent across chunk sizes.
    std::uint64_t relay_wins = 0, quality = 0, unreachable = 0;
    std::uint64_t best_rtt_sum_micro_ms = 0;
    std::vector<HostId> candidates(args.candidates);
    std::vector<Millis> rtts(args.candidates);
    auto start = std::chrono::steady_clock::now();
    std::size_t done = 0;
    for (std::size_t chunk_idx = 0; done < total; ++chunk_idx) {
      const std::size_t n = std::min(args.chunk, total - done);
      Rng session_rng = world->fork_rng(4242).fork(chunk_idx);
      Rng cand_rng = world->fork_rng(4243).fork(chunk_idx);
      auto sessions =
          population::generate_sessions_parallel(*world, n, session_rng, env.threads);
      // Generation itself queries the oracle (direct RTT/loss per session);
      // free whatever it evicted before the scoring scan.
      world->oracle().purge_retired();
      std::size_t since_purge = 0;
      for (const auto& s : sessions) {
        if (++since_purge == kPurgeEverySessions) {
          world->oracle().purge_retired();
          since_purge = 0;
        }
        for (std::size_t k = 0; k < args.candidates; ++k) {
          candidates[k] = pool[cand_rng.below(pool.size())];
        }
        world->batch_relay_rtts(s, candidates, rtts);
        Millis best_relay = *std::min_element(rtts.begin(), rtts.end());
        Millis best = std::min(best_relay, s.direct_rtt_ms);
        if (best >= kUnreachableMs) {
          ++unreachable;
          continue;
        }
        if (best_relay < s.direct_rtt_ms) ++relay_wins;
        if (best <= kQualityRttThresholdMs) ++quality;
        best_rtt_sum_micro_ms += static_cast<std::uint64_t>(best * 1000.0 + 0.5);
      }
      done += n;
      // Chunk boundary = quiescent point: free evicted tables, then check
      // the residency invariant the CLOCK sweep maintains.
      world->oracle().purge_retired();
      auto cs = world->oracle().cache_stats();
      if (wp.oracle_cache.budget_bytes != 0 &&
          cs.cached_bytes > wp.oracle_cache.budget_bytes) {
        std::fprintf(stderr,
                     "oracle cache over budget at chunk %zu: %zu > %zu bytes\n",
                     chunk_idx, cs.cached_bytes, wp.oracle_cache.budget_bytes);
        rc = 5;
      }
      if (chunk_idx % 16 == 0) {
        std::fprintf(stderr, "[xl-%zu] %zu/%zu sessions, rss=%zu MB\n", peers, done,
                     total, bench::read_peak_rss_kb() >> 10);
      }
    }
    double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    auto cs = world->oracle().cache_stats();
    const std::size_t pop_bytes = world->pop().memory_bytes();
    const double bpp = static_cast<double>(pop_bytes) / static_cast<double>(peers);
    const std::size_t rss_kb = bench::read_peak_rss_kb();
    const double reached = static_cast<double>(total - unreachable);
    const double sps = elapsed > 0.0 ? static_cast<double>(total) / elapsed : 0.0;
    const double hit_pct =
        cs.hits + cs.builds > 0
            ? 100.0 * static_cast<double>(cs.hits) /
                  static_cast<double>(cs.hits + cs.builds)
            : 0.0;

    table.add_row({std::to_string(peers), std::to_string(dir.size()),
                   Table::fmt(static_cast<double>(pop_bytes) / (1024.0 * 1024.0), 1),
                   Table::fmt(bpp, 1), std::to_string(total), Table::fmt(hit_pct, 2),
                   std::to_string(cs.evictions), Table::fmt(sps, 0),
                   Table::fmt(static_cast<double>(rss_kb) / 1024.0, 1)});

    std::printf(
        "BENCH JSON: {\"bench\":\"fig_scalability_xl\",\"peers\":%zu,\"clusters\":%zu,"
        "\"sessions\":%zu,\"chunk\":%zu,\"candidates\":%zu,\"cache_budget_bytes\":%zu,"
        "\"compact\":%s,\"pop_bytes\":%zu,\"bytes_per_peer\":%.2f,\"peak_rss_kb\":%zu,"
        "\"oracle_builds\":%llu,\"oracle_hits\":%llu,\"oracle_evictions\":%llu,"
        "\"oracle_cached_tables\":%zu,\"oracle_cached_bytes\":%zu,"
        "\"relay_win_frac\":%.4f,\"quality_frac\":%.4f,\"unreachable\":%llu,"
        "\"mean_best_rtt_ms\":%.3f,\"elapsed_s\":%.2f,\"sessions_per_sec\":%.0f}\n",
        peers, dir.size(), total, args.chunk, args.candidates,
        wp.oracle_cache.budget_bytes, args.compact ? "true" : "false", pop_bytes, bpp,
        rss_kb, static_cast<unsigned long long>(cs.builds),
        static_cast<unsigned long long>(cs.hits),
        static_cast<unsigned long long>(cs.evictions), cs.cached_tables, cs.cached_bytes,
        static_cast<double>(relay_wins) / static_cast<double>(total),
        static_cast<double>(quality) / static_cast<double>(total),
        static_cast<unsigned long long>(unreachable),
        reached > 0.0 ? static_cast<double>(best_rtt_sum_micro_ms) / 1000.0 / reached
                      : 0.0,
        elapsed, sps);

    if (args.assert_bytes_per_peer > 0.0 && bpp > args.assert_bytes_per_peer) {
      std::fprintf(stderr, "bytes/peer gate failed: %.2f > %.2f\n", bpp,
                   args.assert_bytes_per_peer);
      rc = 4;
    }
  }
  table.print();
  return rc;
}
