#include "bench_common.h"

#include <chrono>
#include <set>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "population/session_gen.h"
#include "voip/emodel.h"

namespace asap::bench {

BenchEnv read_env() {
  BenchEnv env;
  if (const char* s = std::getenv("ASAP_SEED")) env.seed = std::strtoull(s, nullptr, 10);
  if (const char* s = std::getenv("ASAP_SESSIONS")) {
    env.sessions = std::strtoull(s, nullptr, 10);
  }
  if (const char* s = std::getenv("ASAP_SCALE")) {
    double scale = std::strtod(s, nullptr);
    if (scale > 0.0 && scale <= 1.0) env.scale = scale;
  }
  if (const char* s = std::getenv("ASAP_THREADS")) {
    env.threads = std::strtoull(s, nullptr, 10);
  }
  if (const char* s = std::getenv("ASAP_METRICS")) {
    std::string v = s;
    if (!v.empty() && v != "0") {
      env.metrics = true;
      if (v != "1" && v != "on" && v != "true") env.metrics_dir = v;
    }
  }
  env.sessions = static_cast<std::size_t>(static_cast<double>(env.sessions) * env.scale);
  if (env.sessions < 100) env.sessions = 100;
  return env;
}

BenchEnv read_env(int argc, char** argv) {
  BenchEnv env = read_env();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      env.threads = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      env.metrics = true;
      env.metrics_out = argv[++i];
    } else {
      std::fprintf(stderr, "unknown argument: %s (supported: --threads N, --metrics-out FILE)\n",
                   argv[i]);
    }
  }
  return env;
}

namespace {

// The run whose observer is installed; build_world/sample_sessions record
// world-shape gauges into it. Benches are single-threaded at this level.
BenchRun* g_active_run = nullptr;

void hash_output(std::string_view bytes, void* ctx) {
  static_cast<Fnv1a64*>(ctx)->update(bytes);
}

population::WorldParams base_params(const BenchEnv& env) {
  population::WorldParams params;
  params.seed = env.seed;
  params.topo.total_as = static_cast<std::size_t>(6000 * env.scale);
  if (params.topo.total_as < 200) params.topo.total_as = 200;
  params.pop.host_as_count = static_cast<std::size_t>(1461 * env.scale);
  if (params.pop.host_as_count < 60) params.pop.host_as_count = 60;
  return params;
}

}  // namespace

population::WorldParams eval_world_params(const BenchEnv& env) {
  population::WorldParams params = base_params(env);
  params.pop.total_peers = static_cast<std::size_t>(23366 * env.scale);
  if (params.pop.total_peers < 1000) params.pop.total_peers = 1000;
  return params;
}

population::WorldParams scaled_world_params(const BenchEnv& env) {
  population::WorldParams params = base_params(env);
  params.pop.total_peers = static_cast<std::size_t>(103625 * env.scale);
  if (params.pop.total_peers < 4000) params.pop.total_peers = 4000;
  return params;
}

population::WorldParams small_world_params(std::uint64_t seed) {
  population::WorldParams params;
  params.seed = seed;
  params.topo.total_as = 600;
  params.pop.host_as_count = 150;
  params.pop.total_peers = 3000;
  return params;
}

population::WorldParams xl_world_params(const BenchEnv& env, std::size_t peers) {
  population::WorldParams params;
  params.seed = env.seed;
  params.pop.total_peers = peers;
  // Grow the graph with the population: ~12k ASes and ~4k host ASes per
  // million peers keeps ~100k clusters of ~10 peers — paper-shaped cluster
  // geometry — instead of thousand-member clusters in the Fig. 17 footprint.
  const double m = static_cast<double>(peers) / 1.0e6;
  params.topo.total_as = static_cast<std::size_t>(12000 * m);
  if (params.topo.total_as < 2000) params.topo.total_as = 2000;
  params.pop.host_as_count = static_cast<std::size_t>(4000 * m);
  if (params.pop.host_as_count < 700) params.pop.host_as_count = 700;
  // Wider prefix allocation (~25 clusters per host AS) so the member arena,
  // not per-cluster overhead, dominates bytes/peer.
  params.pop.prefix_alloc = astopo::PrefixAllocationParams{
      /*min_prefixes_per_as=*/1, /*max_prefixes_per_as=*/2,
      /*extra_host_prefixes=*/24, /*min_prefix_len=*/18, /*max_prefix_len=*/24};
  params.pop.sharded_generation = true;
  params.pop.generation_threads = env.threads;
  return params;
}

std::size_t read_peak_rss_kb() {
#if defined(__linux__)
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      if (std::strncmp(line, "VmHWM:", 6) == 0) {
        std::fclose(f);
        return static_cast<std::size_t>(std::strtoull(line + 6, nullptr, 10));
      }
    }
    std::fclose(f);
  }
#endif
  return 0;
}

void BenchRun::record_world_memory(std::size_t model_bytes, std::size_t peers) {
  model_bytes_ += model_bytes;
  model_peers_ += peers;
}

BenchRun::BenchRun(std::string name, const BenchEnv& env)
    : name_(std::move(name)), env_(env) {
  if (!env_.metrics) return;
  registry_ = std::make_unique<MetricsRegistry>();
  trace_ = std::make_unique<TraceRecorder>();
  trace_->enable(/*sample_every=*/16);
  set_output_observer(&hash_output, &output_hash_);
  g_active_run = this;
}

BenchRun::~BenchRun() {
  if (registry_ == nullptr) return;
  g_active_run = nullptr;
  set_output_observer(nullptr, nullptr);
  std::string path = env_.metrics_out;
  if (path.empty()) {
    path = env_.metrics_dir.empty() ? name_ + ".digest.json"
                                    : env_.metrics_dir + "/" + name_ + ".digest.json";
  }
  std::string digest = digest_json();
  // The memory tail is machine-dependent (peak RSS), so it goes only into
  // the *written* file — digest_json() stays deterministic and
  // scripts/golden.sh strips `,"memory":{...}` before comparing digests.
  std::string tail = ",\"memory\":{\"peak_rss_kb\":" + std::to_string(read_peak_rss_kb());
  tail += ",\"model_bytes\":" + std::to_string(model_bytes_);
  double bpp = model_peers_ == 0 ? 0.0
                                 : static_cast<double>(model_bytes_) /
                                       static_cast<double>(model_peers_);
  tail += ",\"bytes_per_peer\":" + json_number(bpp) + "}";
  digest.insert(digest.size() - 1, tail);
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fputs(digest.c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::fprintf(stderr, "[digest] %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "[digest] cannot write %s\n", path.c_str());
  }
}

relay::EvaluationConfig BenchRun::eval_config() const {
  relay::EvaluationConfig config;
  config.threads = env_.threads;
  config.metrics = registry_.get();
  return config;
}

std::string BenchRun::digest_json() const {
  // Deterministic by construction: fixed key order, integer-exact counters,
  // round-trip doubles, no wall-clock values, and no thread count — the
  // same run produces the same bytes on any machine with any worker count.
  std::string out = "{\"bench\":\"" + json_escape(name_) + "\",\"schema\":1";
  out += ",\"params\":{\"scale\":" + json_number(env_.scale);
  out += ",\"seed\":" + std::to_string(env_.seed);
  out += ",\"sessions\":" + std::to_string(env_.sessions) + "}";
  out += ",\"metrics\":" + metrics_to_json(*registry_);
  out += ",\"trace_spans\":{";
  for (std::size_t s = 0; s < static_cast<std::size_t>(TraceSpan::kCount); ++s) {
    if (s != 0) out += ",";
    out += "\"" + std::string(trace_span_name(static_cast<TraceSpan>(s))) + "\":";
    out += std::to_string(trace_->span_count(static_cast<TraceSpan>(s)));
  }
  out += "}";
  out += ",\"output_fnv1a64\":\"" + output_hash_.hex() + "\"}";
  return out;
}

std::unique_ptr<population::World> build_world(const population::WorldParams& params,
                                               const std::string& label) {
  auto start = std::chrono::steady_clock::now();
  auto world = std::make_unique<population::World>(params);
  auto elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start);
  std::fprintf(stderr,
               "[world:%s] seed=%llu ases=%zu links=%zu host_ases=%zu clusters=%zu "
               "peers=%zu congested=%zu broken=%zu (%.2fs)\n",
               label.c_str(), static_cast<unsigned long long>(params.seed),
               world->graph().as_count(), world->graph().edge_count(),
               world->pop().host_ases().size(), world->pop().populated_clusters().size(),
               world->pop().peer_count(), world->latency_model().congested_as_count(),
               world->latency_model().broken_edge_count(), elapsed.count());
  if (g_active_run != nullptr && g_active_run->metrics() != nullptr) {
    MetricsRegistry& m = *g_active_run->metrics();
    m.gauge("world." + label + ".ases").set(static_cast<double>(world->graph().as_count()));
    m.gauge("world." + label + ".links")
        .set(static_cast<double>(world->graph().edge_count()));
    m.gauge("world." + label + ".peers")
        .set(static_cast<double>(world->pop().peer_count()));
    m.gauge("world." + label + ".clusters")
        .set(static_cast<double>(world->pop().populated_clusters().size()));
    // Memory goes into the written digest's stripped tail, not the gauges:
    // byte counts vary with allocator/platform-independent sizing but peak
    // RSS does not, and golden digests must stay machine-independent.
    g_active_run->record_world_memory(world->pop().memory_bytes(),
                                      world->pop().peer_count());
  }
  return world;
}

SessionWorkload sample_sessions(const population::World& world, std::size_t count,
                                std::uint64_t salt) {
  Rng rng = world.fork_rng(salt);
  SessionWorkload workload;
  workload.all = population::generate_sessions(world, count, rng);
  workload.latent = population::latent_sessions(workload.all);
  std::fprintf(stderr, "[sessions] total=%zu latent(>300ms)=%zu (%.2f%%)\n",
               workload.all.size(), workload.latent.size(),
               100.0 * static_cast<double>(workload.latent.size()) /
                   static_cast<double>(workload.all.size()));
  if (g_active_run != nullptr && g_active_run->metrics() != nullptr) {
    MetricsRegistry& m = *g_active_run->metrics();
    m.gauge("workload.sessions").set(static_cast<double>(workload.all.size()));
    m.gauge("workload.latent").set(static_cast<double>(workload.latent.size()));
  }
  return workload;
}

SkypeStudy make_skype_study(const population::World& world, std::uint64_t salt) {
  const auto& pop = world.pop();
  const auto& graph = world.graph();
  const auto& centers = world.topo().continent_centers;
  Rng rng = world.fork_rng(salt);

  // Continent of a host: nearest continent centre to its AS.
  auto continent_of = [&](HostId h) {
    const auto& geo = graph.node(pop.peer(h).as).geo;
    std::size_t best = 0;
    double best_d = 1e18;
    for (std::size_t c = 0; c < centers.size(); ++c) {
      double d = astopo::geo_distance_km(geo, centers[c]);
      if (d < best_d) {
        best_d = d;
        best = c;
      }
    }
    return best;
  };

  auto pick_on = [&](std::size_t continent) {
    for (int tries = 0; tries < 100000; ++tries) {
      HostId h(static_cast<std::uint32_t>(rng.below(pop.peer_count())));
      if (continent_of(h) == continent) return h;
    }
    return HostId(0);
  };

  SkypeStudy study;
  study.sites.resize(18);

  // The paper's far sites (13-17, the "China" endpoints) make sessions 4,
  // 6-8, 10-11 problematic: their direct paths to site 1 ran at 238-355 ms.
  // Reproduce that by anchoring site 1 at the caller of a latent session
  // and drawing the far sites from latent callees of that same caller
  // region (falling back to the worst-RTT hosts found when fewer than five
  // exist).
  Rng sess_rng = rng.fork(1);
  auto samples = population::generate_sessions(world, 40000, sess_rng);
  auto latent = population::latent_sessions(samples);
  // Moderate latent band only (the paper's problematic sessions ran at
  // 238-355 ms; a caller behind a broken multi-second uplink would make
  // *every* session pathological, which is not the measured geometry).
  auto moderate = [](Millis rtt) { return rtt > kQualityRttThresholdMs && rtt < 650.0; };
  HostId site1 = HostId(0);
  for (const auto& s : latent) {
    if (moderate(s.direct_rtt_ms)) {
      site1 = s.caller;
      break;
    }
  }
  study.sites[1] = site1;

  std::set<std::uint32_t> used{site1.value()};
  int next_far = 13;
  for (const auto& s : latent) {
    if (next_far > 17) break;
    Millis rtt = world.host_rtt_ms(site1, s.callee);
    if (!moderate(rtt)) continue;
    if (!used.insert(s.callee.value()).second) continue;
    study.sites[next_far++] = s.callee;
  }
  // Fallback: pad remaining far sites with the worst partners found.
  std::size_t continent_a = continent_of(site1);
  std::size_t continent_b = (continent_a + centers.size() / 2) % centers.size();
  while (next_far <= 17) {
    HostId best = pick_on(continent_b);
    Millis best_rtt = world.host_rtt_ms(site1, best);
    for (int tries = 0; tries < 2000; ++tries) {
      HostId candidate = pick_on(continent_b);
      if (used.contains(candidate.value())) continue;
      Millis rtt = world.host_rtt_ms(site1, candidate);
      if (rtt > best_rtt) {
        best = candidate;
        best_rtt = rtt;
      }
    }
    used.insert(best.value());
    study.sites[next_far++] = best;
  }
  // Near sites 2-12: same continent as site 1.
  for (int s = 2; s <= 12; ++s) study.sites[s] = pick_on(continent_a);
  // Table 1's caller-callee site pairs, sessions 1..14.
  study.session_pairs = {{3, 5}, {1, 11}, {1, 7}, {1, 14}, {1, 3},  {1, 16}, {1, 15},
                         {1, 15}, {1, 9}, {1, 17}, {1, 13}, {1, 12}, {6, 8}, {2, 10}};
  return study;
}

void print_cdf(const std::string& title, const std::string& value_label,
               const std::vector<double>& values, std::size_t points) {
  print_section(title);
  if (values.empty()) {
    std::printf("(no data)\n");
    return;
  }
  Table table({value_label, "CDF"});
  for (const auto& p : make_cdf(values, points)) {
    table.add_row({Table::fmt(p.x, 2), Table::fmt(p.y, 4)});
  }
  table.print();
}

void print_ccdf(const std::string& title, const std::string& value_label,
                const std::vector<double>& values, std::size_t points) {
  print_section(title);
  if (values.empty()) {
    std::printf("(no data)\n");
    return;
  }
  Table table({value_label, "CCDF"});
  for (const auto& p : make_ccdf(values, points)) {
    table.add_row({Table::fmt(p.x, 2), Table::fmt(p.y, 4)});
  }
  table.print();
}

void print_method_summary(const std::string& title,
                          const std::vector<relay::MethodResults>& results,
                          const std::string& metric) {
  print_section(title);
  Table table({"method", "min", "p10", "median", "p90", "max", "mean"});
  for (const auto& mr : results) {
    const std::vector<double>* values = nullptr;
    if (metric == "quality_paths") values = &mr.quality_paths;
    if (metric == "shortest_rtt_ms") values = &mr.shortest_rtt_ms;
    if (metric == "highest_mos") values = &mr.highest_mos;
    if (metric == "messages") values = &mr.messages;
    if (values == nullptr) continue;
    if (values->empty()) {
      // Keep the method visible: a scaled-down run can legitimately produce
      // zero sessions for a method, and silently dropping the row makes the
      // table look like the method was never run.
      table.add_row({mr.method, "(no sessions)", "-", "-", "-", "-", "-"});
      continue;
    }
    OnlineStats stats;
    for (double v : *values) stats.add(v);
    table.add_row({mr.method, Table::fmt(stats.min(), 2),
                   Table::fmt(percentile(*values, 10), 2),
                   Table::fmt(percentile(*values, 50), 2),
                   Table::fmt(percentile(*values, 90), 2), Table::fmt(stats.max(), 2),
                   Table::fmt(stats.mean(), 2)});
  }
  table.print();
}

}  // namespace asap::bench
