// Living-world soak of the concurrent protocol runtime (no paper figure;
// extends the Sec. 7 evaluation to a world that changes underneath the
// overlay): each sweep row runs a diurnal Poisson call mix with gold /
// silver / bronze service classes over a world subjected to peer churn and
// BGP-level route flaps, with the relay-capacity model and class-of-service
// admission control enabled. Reported per row: per-class completion, MOS
// and one-way latency, preemptions and class sheds, PathOracle
// invalidations and close-set evictions with their observed staleness.
//
// Each row builds a fresh world: route flaps mutate the topology in place,
// so rows must not inherit a predecessor's scars. Outcomes are collected in
// a completion callback under OutcomeRetention::kDiscardAfterCallback — the
// finished table stays empty over the whole soak (printed as "pending" per
// row), demonstrating the bounded-memory harvest path.
//
// Arrival times, churn plans and class assignment all come from seeded
// forks of the world RNG and the protocol simulation is single-threaded
// discrete-event execution, so the digest is byte-identical at any
// ASAP_THREADS setting.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/protocol.h"
#include "population/session_gen.h"
#include "sim/arrivals.h"
#include "sim/churn_plan.h"

using namespace asap;

namespace {

constexpr Millis kVoiceMs = 4000.0;
constexpr Millis kHorizonMs = 60000.0;
constexpr std::size_t kClassCount = 3;

const char* kClassNames[kClassCount] = {"bronze", "silver", "gold"};

core::AsapParams protocol_params() {
  core::AsapParams params;
  params.lat_threshold_ms = 200.0;  // small world: keep relayed sessions common
  params.probe_timeout_ms = 1000.0;
  params.relay_streams_per_capacity = 0.5;
  params.admission_control = true;
  return params;
}

struct SoakConfig {
  const char* label;
  std::uint32_t peer_leaves = 0;
  std::uint32_t peer_joins = 0;
  std::uint32_t link_fails = 0;
  std::uint32_t link_recoveries = 0;
  std::uint32_t policy_changes = 0;
  double diurnal_amplitude = 0.0;
  // Offered-load multiplier on the base arrival rate; the stress row runs
  // hot enough that relays saturate and admission control actually acts.
  double rate_x = 1.0;
};

struct ClassStats {
  std::size_t calls = 0;
  std::size_t completed = 0;
  std::size_t preempted = 0;
  std::vector<double> mos;
  std::vector<double> one_way_ms;
};

struct SoakResult {
  SoakConfig config;
  std::size_t calls = 0;
  std::size_t completed = 0;
  std::size_t relayed = 0;
  std::uint64_t busy_rejections = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t sheds_by_class[kClassCount] = {0, 0, 0};
  std::uint64_t oracle_evictions = 0;
  std::uint64_t close_sets_invalidated = 0;
  std::uint64_t peer_leaves = 0;
  std::uint64_t peer_joins = 0;
  std::uint64_t churn_skipped = 0;
  double staleness_mean_ms = 0.0;  // NaN when no eviction observed staleness
  std::size_t outcomes_pending = 0;
  ClassStats per_class[kClassCount];
};

std::uint64_t delta(const MetricsRegistry& reg, const std::string& name,
                    std::map<std::string, std::uint64_t>& before) {
  std::uint64_t now = reg.value(name);
  std::uint64_t prev = before[name];
  before[name] = now;
  return now - prev;
}

SoakResult run_soak(const SoakConfig& config, const bench::BenchEnv& env,
                    bench::BenchRun& run, MetricsRegistry& registry,
                    std::map<std::string, std::uint64_t>& counter_base,
                    std::uint64_t& staleness_count_base, double& staleness_sum_base) {
  // Fresh world per row: fail_link/flip_policy permanently rewrite the
  // AS graph, and a soak row must start from the unscarred Internet.
  auto world = bench::build_world(bench::small_world_params(env.seed), config.label);
  core::AsapSystem system(*world, protocol_params(), 2, &registry);
  system.set_trace(run.trace());
  system.join_all();

  // Same cell the protocol's ChurnCounters will bind to (a histogram name
  // keeps its first registration), letting the bench read staleness
  // regardless of whether the digest layer is on.
  Histogram staleness = registry.histogram(
      "churn.close_set_staleness_ms",
      {100.0, 500.0, 1000.0, 5000.0, 10000.0, 30000.0, 60000.0});

  Rng rng = world->fork_rng(0x50AC);
  auto sessions = population::generate_sessions(*world, 4000, rng);
  auto latent = population::latent_sessions(sessions, 200.0);

  // Diurnal arrival schedule: one compressed "day" spanning the soak
  // horizon, sized so the expected call count tracks the session knob.
  std::size_t calls_target = std::clamp<std::size_t>(env.sessions / 75, 64, 256);
  double base_rate =
      config.rate_x * static_cast<double>(calls_target) / (kHorizonMs / 1000.0);
  auto profile = sim::diurnal_rate_profile(base_rate, config.diurnal_amplitude,
                                           kHorizonMs, 12);
  Rng arrival_rng = world->fork_rng(0xD1A7);
  std::vector<Millis> arrivals =
      sim::piecewise_poisson_arrivals(profile, kHorizonMs, arrival_rng);

  // Churn plan over the same horizon, from the populated cluster sizes.
  sim::ChurnPlanParams churn;
  churn.horizon_ms = kHorizonMs;
  churn.peer_leaves = config.peer_leaves;
  churn.peer_joins = config.peer_joins;
  churn.link_fails = config.link_fails;
  churn.link_recoveries = config.link_recoveries;
  churn.policy_changes = config.policy_changes;
  std::vector<std::size_t> cluster_sizes;
  cluster_sizes.reserve(world->pop().cluster_count());
  for (std::uint32_t c = 0; c < world->pop().cluster_count(); ++c) {
    cluster_sizes.push_back(world->pop().cluster_members(ClusterId(c)).size());
  }
  Rng churn_rng = world->fork_rng(0xC4B2);
  sim::ChurnPlan plan = sim::ChurnPlan::generate(churn, cluster_sizes,
                                                 world->graph().edge_count(), churn_rng);
  system.arm_churn_plan(plan);

  SoakResult result;
  result.config = config;

  // Fire-and-forget harvest: outcomes land in the callback and are dropped,
  // so the finished table stays empty for the entire soak.
  std::map<std::uint32_t, std::size_t> class_of;  // session id -> class index
  system.set_outcome_retention(core::AsapSystem::OutcomeRetention::kDiscardAfterCallback);
  system.set_on_complete([&](core::CallHandle handle, const core::CallOutcome& outcome) {
    std::size_t cls = class_of.at(handle.session().value());
    ClassStats& stats = result.per_class[cls];
    if (outcome.completed) {
      ++result.completed;
      ++stats.completed;
      if (outcome.mos_pre_fault > 0.0) stats.mos.push_back(outcome.mos_pre_fault);
      if (outcome.voice_packets_received > 0) {
        stats.one_way_ms.push_back(outcome.mean_voice_one_way_ms);
      }
    }
    if (outcome.used_relay) ++result.relayed;
    if (outcome.was_preempted) ++stats.preempted;
    result.busy_rejections += outcome.relay_busy_rejections;
  });

  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const auto& session = latent[i % latent.size()];
    core::CallSpec spec;
    spec.caller = session.caller;
    spec.callee = session.callee;
    spec.start_at_ms = arrivals[i];
    spec.voice_duration_ms = kVoiceMs;
    // Deterministic class mix: one gold and one silver per three calls.
    spec.service_class = static_cast<core::ServiceClass>(i % kClassCount);
    core::CallHandle handle = system.place_call(spec);
    class_of[handle.session().value()] = i % kClassCount;
    ++result.per_class[i % kClassCount].calls;
  }
  result.calls = arrivals.size();
  system.run_until_idle();
  result.outcomes_pending = system.outcomes_pending();

  result.preemptions = delta(registry, "admission.preemptions", counter_base);
  result.sheds_by_class[0] = delta(registry, "admission.sheds_bronze", counter_base);
  result.sheds_by_class[1] = delta(registry, "admission.sheds_silver", counter_base);
  result.sheds_by_class[2] = delta(registry, "admission.sheds_gold", counter_base);
  result.close_sets_invalidated =
      delta(registry, "churn.close_sets_invalidated", counter_base);
  result.peer_leaves = delta(registry, "churn.peer_leaves", counter_base);
  result.peer_joins = delta(registry, "churn.peer_joins", counter_base);
  result.churn_skipped = delta(registry, "churn.events_skipped", counter_base);
  result.oracle_evictions = world->oracle().invalidated_tables();
  std::uint64_t stale_n = staleness.count() - staleness_count_base;
  double stale_sum = staleness.sum() - staleness_sum_base;
  staleness_count_base = staleness.count();
  staleness_sum_base = staleness.sum();
  result.staleness_mean_ms = stale_n > 0
                                 ? stale_sum / static_cast<double>(stale_n)
                                 : std::numeric_limits<double>::quiet_NaN();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  auto env = bench::read_env(argc, argv);
  bench::BenchRun run("fig_soak", env);
  // The soak reads admission/churn counters back per row, so it always
  // records into a registry it can see — the digest registry when metrics
  // are on, a local one otherwise (identical printed output either way).
  MetricsRegistry local_registry;
  MetricsRegistry& registry = run.metrics() != nullptr ? *run.metrics() : local_registry;

  const std::vector<SoakConfig> rows = {
      {"calm", 0, 0, 0, 0, 0, 0.0, 1.0},
      {"churn", 30, 20, 0, 0, 0, 0.3, 1.0},
      {"flaps", 0, 0, 12, 8, 4, 0.3, 1.0},
      {"stress", 40, 28, 20, 12, 6, 0.6, 14.0},
  };

  bench::print_section(
      "Living-world soak: churn x route flaps x diurnal load, admission on");
  std::printf("horizon %.0f s, voice %.0f ms, classes bronze/silver/gold (1:1:1), "
              "retention discard-after-callback\n",
              kHorizonMs / 1000.0, kVoiceMs);

  std::map<std::string, std::uint64_t> counter_base;
  std::uint64_t staleness_count_base = 0;
  double staleness_sum_base = 0.0;
  std::vector<SoakResult> swept;
  for (const auto& config : rows) {
    swept.push_back(run_soak(config, env, run, registry, counter_base,
                             staleness_count_base, staleness_sum_base));
  }

  Table table({"world", "calls", "completed", "relayed", "busy answers", "preempted",
               "sheds b/s/g", "leaves/joins/skip", "oracle evictions", "sets evicted",
               "staleness (ms)", "pending"});
  for (const auto& r : swept) {
    std::string sheds = std::to_string(r.sheds_by_class[0]) + "/" +
                        std::to_string(r.sheds_by_class[1]) + "/" +
                        std::to_string(r.sheds_by_class[2]);
    std::string churn_counts = std::to_string(r.peer_leaves) + "/" +
                               std::to_string(r.peer_joins) + "/" +
                               std::to_string(r.churn_skipped);
    table.add_row({r.config.label, Table::fmt_int(static_cast<long long>(r.calls)),
                   Table::fmt_int(static_cast<long long>(r.completed)),
                   Table::fmt_int(static_cast<long long>(r.relayed)),
                   Table::fmt_int(static_cast<long long>(r.busy_rejections)),
                   Table::fmt_int(static_cast<long long>(r.preemptions)),
                   sheds, churn_counts,
                   Table::fmt_int(static_cast<long long>(r.oracle_evictions)),
                   Table::fmt_int(static_cast<long long>(r.close_sets_invalidated)),
                   Table::fmt(r.staleness_mean_ms, 0),
                   Table::fmt_int(static_cast<long long>(r.outcomes_pending))});
  }
  table.print();

  Table classes({"world/class", "calls", "completed", "preempted", "p50 one-way (ms)",
                 "p90 one-way (ms)", "mean MOS"});
  for (const auto& r : swept) {
    for (std::size_t c = 0; c < kClassCount; ++c) {
      const ClassStats& stats = r.per_class[c];
      OnlineStats mos;
      for (double v : stats.mos) mos.add(v);
      classes.add_row({std::string(r.config.label) + "/" + kClassNames[c],
                       Table::fmt_int(static_cast<long long>(stats.calls)),
                       Table::fmt_int(static_cast<long long>(stats.completed)),
                       Table::fmt_int(static_cast<long long>(stats.preempted)),
                       Table::fmt(percentile(stats.one_way_ms, 50), 0),
                       Table::fmt(percentile(stats.one_way_ms, 90), 0),
                       Table::fmt(mos.mean(), 2)});
    }
  }
  classes.print();

  const SoakResult& stress = swept.back();
  for (std::size_t c = 0; c < kClassCount; ++c) {
    bench::print_cdf("MOS CDF (stress row, " + std::string(kClassNames[c]) + ")",
                     "MOS", stress.per_class[c].mos);
    bench::print_cdf(
        "Voice one-way CDF (stress row, " + std::string(kClassNames[c]) + ")",
        "one-way (ms)", stress.per_class[c].one_way_ms);
  }
  return 0;
}
