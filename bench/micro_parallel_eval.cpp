// Throughput of the parallel evaluation driver: runs the Fig. 11-18 session
// workload through evaluate_methods() at 1/2/4/8 worker threads, reports
// sessions/sec and speedup per thread count, and cross-checks that every
// thread count reproduces the single-threaded metric vectors bit-for-bit
// (the determinism contract of EvaluationConfig::threads).
//
// Machine-readable summary on the last stdout line:
//   BENCH JSON {...}
// Respects ASAP_SEED / ASAP_SESSIONS / ASAP_SCALE like the figure benches.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "bench_common.h"

using namespace asap;

namespace {

bool identical(const std::vector<relay::MethodResults>& a,
               const std::vector<relay::MethodResults>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t m = 0; m < a.size(); ++m) {
    if (a[m].method != b[m].method) return false;
    if (a[m].quality_paths != b[m].quality_paths) return false;
    if (a[m].shortest_rtt_ms != b[m].shortest_rtt_ms) return false;
    if (a[m].highest_mos != b[m].highest_mos) return false;
    if (a[m].messages != b[m].messages) return false;
  }
  return true;
}

}  // namespace

int main() {
  auto env = bench::read_env();
  bench::BenchRun run("micro_parallel_eval", env);
  auto world = bench::build_world(bench::eval_world_params(env), "micro-parallel");
  auto workload = bench::sample_sessions(*world, env.sessions);
  const auto& sessions = workload.latent;
  if (sessions.empty()) {
    std::printf("no latent sessions; increase ASAP_SESSIONS\n");
    return 1;
  }

  const std::size_t thread_counts[] = {1, 2, 4, 8};
  std::vector<relay::MethodResults> reference;
  double base_seconds = 0.0;

  // On a single-core box every worker count time-slices one CPU, so the
  // speedup column measures scheduler noise, not scaling. Flag it rather
  // than report misleading numbers (bench/run_micro.sh --min-cores N can
  // refuse to run at all).
  const unsigned hw_threads = std::thread::hardware_concurrency();
  const bool speedup_valid = hw_threads >= 2;
  std::printf("hardware threads: %u%s\n", hw_threads,
              speedup_valid ? "" : " — speedups are NOT meaningful on this machine");

  bench::print_section("Parallel evaluation throughput (latent sessions, DEDI/RAND/MIX/ASAP)");
  Table table({"threads", "seconds", "sessions/sec", "speedup", "identical to 1T"});
  std::string json = "{\"bench\":\"micro_parallel_eval\",\"seed\":" +
                     std::to_string(env.seed) +
                     ",\"sampled_sessions\":" + std::to_string(workload.all.size()) +
                     ",\"latent_sessions\":" + std::to_string(sessions.size()) +
                     ",\"hardware_threads\":" + std::to_string(hw_threads) +
                     ",\"speedup_valid\":" + (speedup_valid ? "true" : "false") +
                     ",\"runs\":[";
  bool all_identical = true;
  for (std::size_t t = 0; t < std::size(thread_counts); ++t) {
    relay::EvaluationConfig config;
    config.metrics = run.metrics();
    config.include_opt = false;  // the online methods; OPT is offline
    config.threads = thread_counts[t];
    auto start = std::chrono::steady_clock::now();
    auto results = relay::evaluate_methods(*world, sessions, config);
    double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    // Each method evaluates every session once.
    double per_sec = static_cast<double>(sessions.size() * results.size()) / seconds;
    bool same = true;
    if (t == 0) {
      reference = results;
      base_seconds = seconds;
    } else {
      same = identical(reference, results);
      all_identical = all_identical && same;
    }
    table.add_row({std::to_string(thread_counts[t]), Table::fmt(seconds, 2),
                   Table::fmt(per_sec, 0), Table::fmt(base_seconds / seconds, 2),
                   same ? "yes" : "NO"});
    json += std::string(t == 0 ? "" : ",") + "{\"threads\":" +
            std::to_string(thread_counts[t]) + ",\"seconds\":" + Table::fmt(seconds, 4) +
            ",\"sessions_per_sec\":" + Table::fmt(per_sec, 1) +
            ",\"speedup\":" + Table::fmt(base_seconds / seconds, 3) + "}";
  }
  json += "],\"deterministic\":" + std::string(all_identical ? "true" : "false") + "}";
  table.print();
  if (!all_identical) std::printf("WARNING: thread counts disagreed — determinism bug\n");
  std::printf("BENCH JSON %s\n", json.c_str());
  return all_identical ? 0 : 1;
}
