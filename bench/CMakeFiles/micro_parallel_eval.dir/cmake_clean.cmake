file(REMOVE_RECURSE
  "CMakeFiles/micro_parallel_eval.dir/micro_parallel_eval.cpp.o"
  "CMakeFiles/micro_parallel_eval.dir/micro_parallel_eval.cpp.o.d"
  "micro_parallel_eval"
  "micro_parallel_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_parallel_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
