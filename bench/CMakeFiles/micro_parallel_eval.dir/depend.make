# Empty dependencies file for micro_parallel_eval.
# This may be replaced when dependencies are built.
