file(REMOVE_RECURSE
  "CMakeFiles/ablation_k_hops.dir/ablation_k_hops.cpp.o"
  "CMakeFiles/ablation_k_hops.dir/ablation_k_hops.cpp.o.d"
  "ablation_k_hops"
  "ablation_k_hops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_k_hops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
