# Empty dependencies file for ablation_k_hops.
# This may be replaced when dependencies are built.
