# Empty dependencies file for fig02_rtt_distribution.
# This may be replaced when dependencies are built.
