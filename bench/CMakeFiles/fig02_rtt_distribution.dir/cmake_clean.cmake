file(REMOVE_RECURSE
  "CMakeFiles/fig02_rtt_distribution.dir/fig02_rtt_distribution.cpp.o"
  "CMakeFiles/fig02_rtt_distribution.dir/fig02_rtt_distribution.cpp.o.d"
  "fig02_rtt_distribution"
  "fig02_rtt_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_rtt_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
