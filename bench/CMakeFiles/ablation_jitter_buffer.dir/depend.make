# Empty dependencies file for ablation_jitter_buffer.
# This may be replaced when dependencies are built.
