file(REMOVE_RECURSE
  "CMakeFiles/ablation_jitter_buffer.dir/ablation_jitter_buffer.cpp.o"
  "CMakeFiles/ablation_jitter_buffer.dir/ablation_jitter_buffer.cpp.o.d"
  "ablation_jitter_buffer"
  "ablation_jitter_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_jitter_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
