# Empty dependencies file for table2_same_as_probes.
# This may be replaced when dependencies are built.
