file(REMOVE_RECURSE
  "CMakeFiles/table2_same_as_probes.dir/table2_same_as_probes.cpp.o"
  "CMakeFiles/table2_same_as_probes.dir/table2_same_as_probes.cpp.o.d"
  "table2_same_as_probes"
  "table2_same_as_probes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_same_as_probes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
