file(REMOVE_RECURSE
  "CMakeFiles/fig_system_load.dir/fig_system_load.cpp.o"
  "CMakeFiles/fig_system_load.dir/fig_system_load.cpp.o.d"
  "fig_system_load"
  "fig_system_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_system_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
