# Empty dependencies file for fig_system_load.
# This may be replaced when dependencies are built.
