file(REMOVE_RECURSE
  "CMakeFiles/micro_oracle_query.dir/micro_oracle_query.cpp.o"
  "CMakeFiles/micro_oracle_query.dir/micro_oracle_query.cpp.o.d"
  "micro_oracle_query"
  "micro_oracle_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_oracle_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
