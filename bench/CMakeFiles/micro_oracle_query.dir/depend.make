# Empty dependencies file for micro_oracle_query.
# This may be replaced when dependencies are built.
