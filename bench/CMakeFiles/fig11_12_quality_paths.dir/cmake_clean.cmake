file(REMOVE_RECURSE
  "CMakeFiles/fig11_12_quality_paths.dir/fig11_12_quality_paths.cpp.o"
  "CMakeFiles/fig11_12_quality_paths.dir/fig11_12_quality_paths.cpp.o.d"
  "fig11_12_quality_paths"
  "fig11_12_quality_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_12_quality_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
