# Empty dependencies file for fig11_12_quality_paths.
# This may be replaced when dependencies are built.
