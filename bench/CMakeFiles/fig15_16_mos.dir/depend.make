# Empty dependencies file for fig15_16_mos.
# This may be replaced when dependencies are built.
