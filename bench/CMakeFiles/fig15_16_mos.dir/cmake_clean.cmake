file(REMOVE_RECURSE
  "CMakeFiles/fig15_16_mos.dir/fig15_16_mos.cpp.o"
  "CMakeFiles/fig15_16_mos.dir/fig15_16_mos.cpp.o.d"
  "fig15_16_mos"
  "fig15_16_mos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_16_mos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
