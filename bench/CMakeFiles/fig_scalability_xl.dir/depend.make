# Empty dependencies file for fig_scalability_xl.
# This may be replaced when dependencies are built.
