file(REMOVE_RECURSE
  "CMakeFiles/fig_scalability_xl.dir/fig_scalability_xl.cpp.o"
  "CMakeFiles/fig_scalability_xl.dir/fig_scalability_xl.cpp.o.d"
  "fig_scalability_xl"
  "fig_scalability_xl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_scalability_xl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
