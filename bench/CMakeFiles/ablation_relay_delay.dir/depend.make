# Empty dependencies file for ablation_relay_delay.
# This may be replaced when dependencies are built.
