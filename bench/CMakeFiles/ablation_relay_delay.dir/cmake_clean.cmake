file(REMOVE_RECURSE
  "CMakeFiles/ablation_relay_delay.dir/ablation_relay_delay.cpp.o"
  "CMakeFiles/ablation_relay_delay.dir/ablation_relay_delay.cpp.o.d"
  "ablation_relay_delay"
  "ablation_relay_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_relay_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
