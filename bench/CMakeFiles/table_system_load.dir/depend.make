# Empty dependencies file for table_system_load.
# This may be replaced when dependencies are built.
