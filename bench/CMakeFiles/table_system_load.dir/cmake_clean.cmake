file(REMOVE_RECURSE
  "CMakeFiles/table_system_load.dir/table_system_load.cpp.o"
  "CMakeFiles/table_system_load.dir/table_system_load.cpp.o.d"
  "table_system_load"
  "table_system_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_system_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
