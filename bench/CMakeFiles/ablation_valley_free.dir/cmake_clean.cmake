file(REMOVE_RECURSE
  "CMakeFiles/ablation_valley_free.dir/ablation_valley_free.cpp.o"
  "CMakeFiles/ablation_valley_free.dir/ablation_valley_free.cpp.o.d"
  "ablation_valley_free"
  "ablation_valley_free.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_valley_free.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
