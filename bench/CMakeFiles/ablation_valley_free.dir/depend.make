# Empty dependencies file for ablation_valley_free.
# This may be replaced when dependencies are built.
