# Empty dependencies file for fig03_rtt_reduction.
# This may be replaced when dependencies are built.
