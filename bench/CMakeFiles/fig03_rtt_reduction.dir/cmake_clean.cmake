file(REMOVE_RECURSE
  "CMakeFiles/fig03_rtt_reduction.dir/fig03_rtt_reduction.cpp.o"
  "CMakeFiles/fig03_rtt_reduction.dir/fig03_rtt_reduction.cpp.o.d"
  "fig03_rtt_reduction"
  "fig03_rtt_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_rtt_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
