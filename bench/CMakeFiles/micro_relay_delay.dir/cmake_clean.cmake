file(REMOVE_RECURSE
  "CMakeFiles/micro_relay_delay.dir/micro_relay_delay.cpp.o"
  "CMakeFiles/micro_relay_delay.dir/micro_relay_delay.cpp.o.d"
  "micro_relay_delay"
  "micro_relay_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_relay_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
