# Empty dependencies file for micro_relay_delay.
# This may be replaced when dependencies are built.
