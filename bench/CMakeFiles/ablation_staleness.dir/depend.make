# Empty dependencies file for ablation_staleness.
# This may be replaced when dependencies are built.
