file(REMOVE_RECURSE
  "CMakeFiles/ablation_staleness.dir/ablation_staleness.cpp.o"
  "CMakeFiles/ablation_staleness.dir/ablation_staleness.cpp.o.d"
  "ablation_staleness"
  "ablation_staleness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_staleness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
