# Empty dependencies file for ablation_path_policies.
# This may be replaced when dependencies are built.
