file(REMOVE_RECURSE
  "CMakeFiles/ablation_path_policies.dir/ablation_path_policies.cpp.o"
  "CMakeFiles/ablation_path_policies.dir/ablation_path_policies.cpp.o.d"
  "ablation_path_policies"
  "ablation_path_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_path_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
