# Empty dependencies file for ablation_sizet.
# This may be replaced when dependencies are built.
