file(REMOVE_RECURSE
  "CMakeFiles/ablation_sizet.dir/ablation_sizet.cpp.o"
  "CMakeFiles/ablation_sizet.dir/ablation_sizet.cpp.o.d"
  "ablation_sizet"
  "ablation_sizet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sizet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
