# Empty dependencies file for table_nat_connectivity.
# This may be replaced when dependencies are built.
