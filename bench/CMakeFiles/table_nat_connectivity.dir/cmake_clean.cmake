file(REMOVE_RECURSE
  "CMakeFiles/table_nat_connectivity.dir/table_nat_connectivity.cpp.o"
  "CMakeFiles/table_nat_connectivity.dir/table_nat_connectivity.cpp.o.d"
  "table_nat_connectivity"
  "table_nat_connectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_nat_connectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
