# Empty dependencies file for ablation_latt.
# This may be replaced when dependencies are built.
