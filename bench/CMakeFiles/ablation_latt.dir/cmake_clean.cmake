file(REMOVE_RECURSE
  "CMakeFiles/ablation_latt.dir/ablation_latt.cpp.o"
  "CMakeFiles/ablation_latt.dir/ablation_latt.cpp.o.d"
  "ablation_latt"
  "ablation_latt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_latt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
