# Empty dependencies file for fig_failover.
# This may be replaced when dependencies are built.
