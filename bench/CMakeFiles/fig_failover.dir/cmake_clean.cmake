file(REMOVE_RECURSE
  "CMakeFiles/fig_failover.dir/fig_failover.cpp.o"
  "CMakeFiles/fig_failover.dir/fig_failover.cpp.o.d"
  "fig_failover"
  "fig_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
