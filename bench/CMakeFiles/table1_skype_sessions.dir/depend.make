# Empty dependencies file for table1_skype_sessions.
# This may be replaced when dependencies are built.
