file(REMOVE_RECURSE
  "CMakeFiles/table1_skype_sessions.dir/table1_skype_sessions.cpp.o"
  "CMakeFiles/table1_skype_sessions.dir/table1_skype_sessions.cpp.o.d"
  "table1_skype_sessions"
  "table1_skype_sessions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_skype_sessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
