file(REMOVE_RECURSE
  "CMakeFiles/fig_soak.dir/fig_soak.cpp.o"
  "CMakeFiles/fig_soak.dir/fig_soak.cpp.o.d"
  "fig_soak"
  "fig_soak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_soak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
