# Empty dependencies file for fig_soak.
# This may be replaced when dependencies are built.
