# Empty dependencies file for fig_overlay.
# This may be replaced when dependencies are built.
