file(REMOVE_RECURSE
  "CMakeFiles/fig_overlay.dir/fig_overlay.cpp.o"
  "CMakeFiles/fig_overlay.dir/fig_overlay.cpp.o.d"
  "fig_overlay"
  "fig_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
