file(REMOVE_RECURSE
  "CMakeFiles/ablation_path_inference.dir/ablation_path_inference.cpp.o"
  "CMakeFiles/ablation_path_inference.dir/ablation_path_inference.cpp.o.d"
  "ablation_path_inference"
  "ablation_path_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_path_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
