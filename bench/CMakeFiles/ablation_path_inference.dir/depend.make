# Empty dependencies file for ablation_path_inference.
# This may be replaced when dependencies are built.
