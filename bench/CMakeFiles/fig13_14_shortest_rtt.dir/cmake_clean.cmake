file(REMOVE_RECURSE
  "CMakeFiles/fig13_14_shortest_rtt.dir/fig13_14_shortest_rtt.cpp.o"
  "CMakeFiles/fig13_14_shortest_rtt.dir/fig13_14_shortest_rtt.cpp.o.d"
  "fig13_14_shortest_rtt"
  "fig13_14_shortest_rtt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_14_shortest_rtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
