# Empty dependencies file for fig13_14_shortest_rtt.
# This may be replaced when dependencies are built.
