# Empty dependencies file for fig_grayfail.
# This may be replaced when dependencies are built.
