file(REMOVE_RECURSE
  "CMakeFiles/fig_grayfail.dir/fig_grayfail.cpp.o"
  "CMakeFiles/fig_grayfail.dir/fig_grayfail.cpp.o.d"
  "fig_grayfail"
  "fig_grayfail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_grayfail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
