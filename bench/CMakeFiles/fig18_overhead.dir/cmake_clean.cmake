file(REMOVE_RECURSE
  "CMakeFiles/fig18_overhead.dir/fig18_overhead.cpp.o"
  "CMakeFiles/fig18_overhead.dir/fig18_overhead.cpp.o.d"
  "fig18_overhead"
  "fig18_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
