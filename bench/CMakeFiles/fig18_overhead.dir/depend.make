# Empty dependencies file for fig18_overhead.
# This may be replaced when dependencies are built.
