file(REMOVE_RECURSE
  "CMakeFiles/fig06_skype_timeseries.dir/fig06_skype_timeseries.cpp.o"
  "CMakeFiles/fig06_skype_timeseries.dir/fig06_skype_timeseries.cpp.o.d"
  "fig06_skype_timeseries"
  "fig06_skype_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_skype_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
