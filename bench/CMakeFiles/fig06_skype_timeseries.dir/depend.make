# Empty dependencies file for fig06_skype_timeseries.
# This may be replaced when dependencies are built.
