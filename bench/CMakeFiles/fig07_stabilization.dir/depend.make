# Empty dependencies file for fig07_stabilization.
# This may be replaced when dependencies are built.
