file(REMOVE_RECURSE
  "CMakeFiles/fig07_stabilization.dir/fig07_stabilization.cpp.o"
  "CMakeFiles/fig07_stabilization.dir/fig07_stabilization.cpp.o.d"
  "fig07_stabilization"
  "fig07_stabilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_stabilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
