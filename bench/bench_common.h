// Shared harness for the figure/table benches: standard world profiles
// matching the paper's evaluation setups, plus printing helpers.
//
// Environment knobs (all optional):
//   ASAP_SEED     — world seed (default 20050926, the BGP snapshot date)
//   ASAP_SESSIONS — total sampled sessions (default 100000)
//   ASAP_SCALE    — fractional scale in (0,1] applied to world & session
//                   sizes for quick smoke runs (default 1)
//   ASAP_THREADS  — evaluation worker threads (default 1; 0 = hardware
//                   concurrency). The figure drivers also accept
//                   `--threads N`, which overrides the environment.
//   ASAP_METRICS  — run-digest switch. Unset or "0": off (the default; the
//                   printed figures are byte-identical to a build without
//                   the observability layer). "1": write
//                   `<bench>.digest.json` into the working directory. Any
//                   other value: treated as a directory to write the digest
//                   into. `--metrics-out FILE` turns metrics on and names
//                   the digest file directly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "population/session_gen.h"
#include "population/world.h"
#include "relay/evaluation.h"
#include "common/metrics.h"
#include "common/stats.h"
#include "common/table.h"

namespace asap::bench {

struct BenchEnv {
  std::uint64_t seed = 20050926;
  std::size_t sessions = 100000;
  double scale = 1.0;
  std::size_t threads = 1;  // 0 = hardware concurrency
  bool metrics = false;     // ASAP_METRICS / --metrics-out
  std::string metrics_out;  // explicit digest path (--metrics-out)
  std::string metrics_dir;  // directory form of ASAP_METRICS
};

BenchEnv read_env();
// read_env() plus command-line overrides (`--threads N`, `--metrics-out F`).
BenchEnv read_env(int argc, char** argv);

// One bench run's observability scope. When `env.metrics` is set it owns a
// MetricsRegistry and a TraceRecorder (sampling 1-in-16 sessions), hashes
// every table/section the bench prints, and on destruction writes the run
// digest: a small deterministic JSON file with the run parameters, every
// counter/gauge/histogram, trace span counts and the FNV-1a 64 fingerprint
// of the rendered output. `threads` is deliberately excluded from the
// digest so it is bit-identical for any worker count — the property
// scripts/golden.sh gates on. When metrics are off every accessor returns
// nullptr and the bench runs exactly as before.
class BenchRun {
 public:
  BenchRun(std::string name, const BenchEnv& env);
  ~BenchRun();
  BenchRun(const BenchRun&) = delete;
  BenchRun& operator=(const BenchRun&) = delete;

  [[nodiscard]] MetricsRegistry* metrics() { return registry_.get(); }
  [[nodiscard]] TraceRecorder* trace() { return trace_.get(); }
  // Default evaluation config with threads + metrics sink pre-wired.
  [[nodiscard]] relay::EvaluationConfig eval_config() const;
  // The digest document (also the machine-independent part of what the
  // destructor writes), for tests.
  [[nodiscard]] std::string digest_json() const;
  // Model-side memory footprint for the written digest's memory tail
  // (build_world() records the population bytes automatically).
  void record_world_memory(std::size_t model_bytes, std::size_t peers);

 private:
  std::string name_;
  BenchEnv env_;
  std::unique_ptr<MetricsRegistry> registry_;
  std::unique_ptr<TraceRecorder> trace_;
  Fnv1a64 output_hash_;
  std::size_t model_bytes_ = 0;
  std::size_t model_peers_ = 0;
};

// Peak resident set size of this process in KiB (VmHWM from
// /proc/self/status); 0 on platforms without procfs. Machine-dependent by
// nature, so it only ever appears in the written digest's `"memory"` tail,
// which scripts/golden.sh strips before comparing digests.
[[nodiscard]] std::size_t read_peak_rss_kb();

// Paper evaluation world: ~6,000 ASes, 1,461 host ASes, 23,366 peers
// ("23,366 IPs are used in all other figures").
population::WorldParams eval_world_params(const BenchEnv& env);
// Scalability world (Fig. 17): same topology footprint, 103,625 peers.
population::WorldParams scaled_world_params(const BenchEnv& env);
// Small world for micro-benches and quick demos.
population::WorldParams small_world_params(std::uint64_t seed);
// Million-peer-class world for fig_scalability_xl: the AS graph, host-AS
// pool and prefix allocation all grow with `peers` (~10 peers per cluster,
// ~12k ASes per million peers) so cluster geometry stays paper-shaped
// instead of packing everything into the Fig. 17 footprint. Enables
// sharded generation; the oracle cache budget/compaction is the caller's
// choice via the returned params' `oracle_cache`.
population::WorldParams xl_world_params(const BenchEnv& env, std::size_t peers);

// Builds a world and logs build time + basic shape to stderr.
std::unique_ptr<population::World> build_world(const population::WorldParams& params,
                                               const std::string& label);

// Samples the session workload and returns (all, latent) per the paper.
struct SessionWorkload {
  std::vector<population::Session> all;
  std::vector<population::Session> latent;  // direct RTT > 300 ms
};
SessionWorkload sample_sessions(const population::World& world, std::size_t count,
                                std::uint64_t salt = 42);

// Prints an empirical CDF as a table with the given value-column label.
void print_cdf(const std::string& title, const std::string& value_label,
               const std::vector<double>& values, std::size_t points = 15);
void print_ccdf(const std::string& title, const std::string& value_label,
                const std::vector<double>& values, std::size_t points = 15);

// Prints one summary row per method for a metric.
void print_method_summary(const std::string& title,
                          const std::vector<relay::MethodResults>& results,
                          const std::string& metric);

// The Section-5 Skype measurement geometry (paper Fig. 5 / Table 1):
// 17 sites — 1-12 on one continent ("USA/Canada"), 13-17 on another
// ("China") — and the 14 caller-callee pairs of Table 1.
struct SkypeStudy {
  std::vector<HostId> sites;                        // [0] unused; sites are 1-based
  std::vector<std::pair<int, int>> session_pairs;   // (caller site, callee site)
};
SkypeStudy make_skype_study(const population::World& world, std::uint64_t salt = 99);

// Fraction formatting helpers re-exported for the bench binaries.
using asap::Table;
using asap::print_section;

}  // namespace asap::bench
