// Reproduces paper Figs. 15 & 16: per-session highest MOS (ITU E-Model,
// codec G.729A+VAD, assumed 0.5% average loss) and its CDF for all five
// methods over the latent sessions. Paper shape: ASAP and OPT keep every
// session above MOS 3.85; the baselines leave ~3% of sessions below 2.9.
#include <cstdio>

#include "bench_common.h"

using namespace asap;

int main(int argc, char** argv) {
  auto env = bench::read_env(argc, argv);
  bench::BenchRun run("fig15_16_mos", env);
  auto world = bench::build_world(bench::eval_world_params(env), "fig15-16");
  auto workload = bench::sample_sessions(*world, env.sessions);

  auto config = run.eval_config();  // defaults: G.729A+VAD, fixed 0.5% loss
  auto results = relay::evaluate_methods(*world, workload.latent, config);

  bench::print_method_summary("Fig 15: highest MOS per latent session", results,
                              "highest_mos");
  for (const auto& mr : results) {
    bench::print_cdf("Fig 16: highest-MOS CDF — " + mr.method, "MOS", mr.highest_mos);
  }

  bench::print_section("Fig 15/16 headline comparison");
  Table table({"method", "min MOS", "sessions < 2.9", "sessions < 3.6", "sessions >= 3.85"});
  for (const auto& mr : results) {
    table.add_row({mr.method, Table::fmt(percentile(mr.highest_mos, 0), 2),
                   Table::fmt_pct(1.0 - fraction_above(mr.highest_mos, 2.9), 1),
                   Table::fmt_pct(1.0 - fraction_above(mr.highest_mos, 3.6), 1),
                   Table::fmt_pct(fraction_above(mr.highest_mos, 3.85), 1)});
  }
  table.print();
  return 0;
}
