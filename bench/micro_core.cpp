// Micro-benchmarks (google-benchmark) of the hot algorithmic primitives:
// per-destination BGP route computation, valley-free k-hop BFS, prefix-trie
// longest-prefix match, close-cluster-set construction and
// select-close-relay.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "astopo/prefix_trie.h"
#include "astopo/routing.h"
#include "astopo/valley_free.h"
#include "core/close_cluster.h"
#include "core/select_relay.h"
#include "population/measurement.h"

using namespace asap;

namespace {

const population::World& shared_world() {
  static auto world = bench::build_world(bench::small_world_params(7), "micro");
  return *world;
}

void BM_ComputeRoutes(benchmark::State& state) {
  const auto& world = shared_world();
  std::uint32_t dest = 0;
  for (auto _ : state) {
    auto table = astopo::compute_routes(world.graph(),
                                        AsId(dest++ % world.graph().as_count()));
    benchmark::DoNotOptimize(table);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(world.graph().as_count()));
}
BENCHMARK(BM_ComputeRoutes);

void BM_ValleyFreeBfs(benchmark::State& state) {
  const auto& world = shared_world();
  std::uint32_t src = 0;
  for (auto _ : state) {
    auto hops = astopo::valley_free_hops(
        world.graph(), AsId(src++ % world.graph().as_count()),
        static_cast<std::uint8_t>(state.range(0)));
    benchmark::DoNotOptimize(hops);
  }
}
BENCHMARK(BM_ValleyFreeBfs)->Arg(2)->Arg(4)->Arg(6);

void BM_PrefixTrieLookup(benchmark::State& state) {
  const auto& world = shared_world();
  Rng rng(99);
  std::vector<Ipv4Addr> queries;
  for (int i = 0; i < 1024; ++i) {
    HostId h(static_cast<std::uint32_t>(rng.below(world.pop().peer_count())));
    queries.push_back(world.pop().peer_ip(h));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    auto hit = world.pop().cluster_of_ip(queries[i++ & 1023]);
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_PrefixTrieLookup);

void BM_CloseClusterSet(benchmark::State& state) {
  const auto& world = shared_world();
  core::AsapParams params;
  std::size_t i = 0;
  const auto& clusters = world.pop().populated_clusters();
  for (auto _ : state) {
    auto set = core::construct_close_cluster_set(world, clusters[i++ % clusters.size()],
                                                 params);
    benchmark::DoNotOptimize(set);
  }
}
BENCHMARK(BM_CloseClusterSet);

void BM_SelectCloseRelay(benchmark::State& state) {
  const auto& world = shared_world();
  core::AsapParams params;
  core::CloseSetCache cache(world, params);
  Rng rng(3);
  Rng session_rng(4);
  auto sessions = population::generate_sessions(world, 256, session_rng);
  std::size_t i = 0;
  for (auto _ : state) {
    auto result = core::select_close_relay(world, cache, sessions[i++ & 255], rng);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SelectCloseRelay);

void BM_OneHopScan(benchmark::State& state) {
  const auto& world = shared_world();
  population::OneHopScanner scanner(world);
  Rng session_rng(5);
  auto sessions = population::generate_sessions(world, 256, session_rng);
  std::size_t i = 0;
  for (auto _ : state) {
    auto best = scanner.best(sessions[i++ & 255]);
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(world.pop().populated_clusters().size()));
}
BENCHMARK(BM_OneHopScan);

}  // namespace

BENCHMARK_MAIN();
