// Extension bench: NAT traversal — the deployment-side reason peer relays
// exist. With the 2005-era NAT mix enabled, a fraction of calls cannot
// establish a direct UDP session at all and must relay regardless of
// latency; and blind probing (RAND/MIX) wastes budget on NATed candidates
// that can never relay.
#include <cstdio>

#include "bench_common.h"
#include "population/nat.h"

using namespace asap;

int main() {
  auto env = bench::read_env();
  bench::BenchRun run("table_nat_connectivity", env);
  auto params = bench::eval_world_params(env);
  params.pop.nat_enabled = true;
  auto world = bench::build_world(params, "nat");
  const auto& pop = world->pop();

  bench::print_section("NAT mix and connectivity");
  {
    std::size_t counts[3] = {0, 0, 0};
    for (std::uint32_t i = 0; i < pop.peer_count(); ++i)
      ++counts[static_cast<int>(pop.peer_nat(HostId(i)))];
    Table table({"NAT type", "peers", "fraction"});
    for (int t = 0; t < 3; ++t) {
      table.add_row({std::string(population::nat_type_name(
                         static_cast<population::NatType>(t))),
                     Table::fmt_int(static_cast<long long>(counts[t])),
                     Table::fmt_pct(static_cast<double>(counts[t]) /
                                        static_cast<double>(pop.peer_count()),
                                    1)});
    }
    table.print();
  }

  auto workload = bench::sample_sessions(*world, env.sessions);
  std::size_t blocked = 0;
  for (const auto& s : workload.all) {
    if (!pop.direct_possible(s.caller, s.callee)) ++blocked;
  }
  std::printf("\nsessions blocked by NAT (must relay regardless of latency): %zu / %zu "
              "(%.1f%%)\n",
              blocked, workload.all.size(),
              100.0 * static_cast<double>(blocked) /
                  static_cast<double>(workload.all.size()));

  // Evaluate the methods on NAT-blocked sessions: the latency may be fine;
  // what matters is finding *reachable* relays efficiently.
  std::vector<population::Session> blocked_sessions;
  for (const auto& s : workload.all) {
    if (!pop.direct_possible(s.caller, s.callee)) {
      blocked_sessions.push_back(s);
      // The direct path cannot be established: mark it unusable so the
      // evaluation scores relay paths only.
      blocked_sessions.back().direct_rtt_ms = kUnreachableMs;
      blocked_sessions.back().direct_loss = 1.0;
    }
    if (blocked_sessions.size() >= 400) break;
  }
  relay::EvaluationConfig config;
  config.metrics = run.metrics();
  config.include_opt = false;
  auto results = relay::evaluate_methods(*world, blocked_sessions, config);

  bench::print_section("Relay selection for NAT-blocked sessions");
  Table table({"method", "usable relays p50", "sessions w/o quality relay",
               "relay RTT p50 (ms)", "probes wasted on NATed nodes"});
  for (const auto& mr : results) {
    std::size_t none = 0;
    for (std::size_t i = 0; i < mr.quality_paths.size(); ++i) {
      if (mr.quality_paths[i] == 0) ++none;
    }
    // Baselines probe fixed pools; the expected waste is the NATed fraction
    // of their budget. ASAP's candidates are surrogates (open by election).
    std::string waste = "0% (candidates are open surrogates)";
    if (mr.method == "RAND") waste = "~75% of 200 probes";
    if (mr.method == "MIX") waste = "~55% of 160 probes";
    if (mr.method == "DEDI") waste = "0% (dedicated nodes are open)";
    table.add_row({mr.method, Table::fmt(percentile(mr.quality_paths, 50), 0),
                   Table::fmt_int(static_cast<long long>(none)),
                   Table::fmt(percentile(mr.shortest_rtt_ms, 50), 1), waste});
  }
  table.print();
  std::printf("\nNote: shortest RTT here is the best *relay* path; the direct path does\n"
              "not exist for these sessions, so \"no usable relay\" means call failure.\n");
  return 0;
}
