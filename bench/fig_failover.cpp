// Mid-call failover evaluation (robustness extension; no paper figure):
// sweeps deterministic active-relay crash rates over relayed calls in the
// message-level protocol simulation and reports recovery-latency and
// MOS-degradation distributions plus the message cost of recovery, then
// measures loss-burst episodes against the same call mix.
//
// Every fault is drawn from a seeded fork of the world RNG, so reruns are
// byte-identical; see src/sim/fault_plan.h.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/protocol.h"
#include "population/session_gen.h"
#include "sim/fault_plan.h"

using namespace asap;

namespace {

constexpr Millis kVoiceMs = 3000.0;

struct RateResult {
  double fault_rate = 0.0;
  std::size_t calls = 0;
  std::size_t faulted = 0;
  std::size_t recovered = 0;
  std::size_t gave_up = 0;
  std::size_t unresolved = 0;  // fault struck; call ended still backing off
  std::vector<double> recovery_latency_ms;
  std::vector<double> voice_gap_ms;
  std::vector<double> mos_drop;       // pre-fault MOS - post-failover MOS
  std::vector<double> lost_packets;
  OnlineStats probes;                 // failover probes per faulted call
  OnlineStats control_clean;          // control msgs, fault-free calls
  OnlineStats control_faulted;        // control msgs, faulted calls
};

core::AsapParams protocol_params() {
  core::AsapParams params;
  params.lat_threshold_ms = 200.0;  // small world: keep relayed sessions common
  // The default 3 s probe deadline is tuned for call setup; mid-call
  // recovery needs to discover dead backups faster than the stream ends.
  params.probe_timeout_ms = 1000.0;
  return params;
}

RateResult run_rate(const bench::BenchEnv& env, double fault_rate,
                    std::size_t calls_target, bench::BenchRun& run) {
  auto world = bench::build_world(bench::small_world_params(env.seed), "fig_failover");
  core::AsapSystem system(*world, protocol_params(), 2, run.metrics());
  system.set_trace(run.trace());
  system.join_all();

  Rng rng = world->fork_rng(4242);
  auto sessions = population::generate_sessions(*world, 4000, rng);
  auto latent = population::latent_sessions(sessions, 200.0);

  // One RNG stream decides which calls are struck and when; forked per rate
  // so each sweep point is independent and reproducible.
  Rng fault_rng = world->fork_rng(0xF0 + static_cast<std::uint64_t>(fault_rate * 100));

  RateResult result;
  result.fault_rate = fault_rate;
  for (const auto& s : latent) {
    if (result.calls >= calls_target) break;
    bool strike = fault_rate > 0.0 && fault_rng.chance(fault_rate);
    if (strike) {
      sim::FaultPlan plan;
      plan.add({fault_rng.uniform(500.0, 2000.0), sim::FaultKind::kActiveRelayCrash,
                0, 0.0, {}});
      system.arm_fault_plan(plan);
    }
    auto outcome = core::run_call(system, s.caller, s.callee, kVoiceMs);
    if (!outcome.used_relay) continue;  // direct calls cannot fail over
    ++result.calls;
    if (!strike) {
      result.control_clean.add(static_cast<double>(outcome.control_messages));
      continue;
    }
    ++result.faulted;
    result.control_faulted.add(static_cast<double>(outcome.control_messages));
    result.probes.add(static_cast<double>(outcome.failover_probes));
    result.voice_gap_ms.push_back(outcome.voice_gap_ms);
    result.lost_packets.push_back(static_cast<double>(outcome.packets_lost_in_failover));
    if (outcome.failovers > 0) {
      ++result.recovered;
      result.recovery_latency_ms.push_back(outcome.failover_latency_ms);
      if (outcome.mos_pre_fault > 0.0 && outcome.mos_post_failover > 0.0) {
        result.mos_drop.push_back(outcome.mos_pre_fault - outcome.mos_post_failover);
      }
    } else if (outcome.failover_gave_up) {
      ++result.gave_up;
    } else {
      ++result.unresolved;
    }
  }
  return result;
}

void run_loss_bursts(const bench::BenchEnv& env, std::size_t calls_target,
                     bench::BenchRun& run) {
  auto world = bench::build_world(bench::small_world_params(env.seed), "loss_bursts");
  core::AsapSystem system(*world, protocol_params(), 2, run.metrics());
  system.set_trace(run.trace());
  system.join_all();
  Rng rng = world->fork_rng(4242);
  auto sessions = population::generate_sessions(*world, 4000, rng);
  auto latent = population::latent_sessions(sessions, 200.0);

  bench::print_section("Loss-burst episodes (30% drop, 1 s burst mid-call)");
  Table table({"condition", "calls", "voice delivered", "mean MOS (pre seg)",
               "spurious failovers"});
  for (bool burst : {false, true}) {
    std::size_t calls = 0;
    std::uint64_t sent = 0, received = 0, failovers = 0;
    OnlineStats mos;
    for (const auto& s : latent) {
      if (calls >= calls_target) break;
      if (burst) {
        sim::FaultPlan plan;
        // Absolute times: armed right before the call, the burst covers the
        // middle of its voice stream (setup is a few hundred ms).
        plan.add({1000.0, sim::FaultKind::kLossBurstStart, 0, 0.3, {}});
        plan.add({2000.0, sim::FaultKind::kLossBurstEnd, 0, 0.0, {}});
        system.arm_fault_plan(plan);
      }
      auto outcome = core::run_call(system, s.caller, s.callee, kVoiceMs);
      if (!outcome.used_relay) continue;
      ++calls;
      sent += outcome.voice_packets_sent;
      received += outcome.voice_packets_received;
      failovers += outcome.failovers;
      if (outcome.mos_pre_fault > 0.0) mos.add(outcome.mos_pre_fault);
    }
    double delivered = sent ? static_cast<double>(received) / static_cast<double>(sent)
                            : 0.0;
    table.add_row({burst ? "burst" : "clean",
                   Table::fmt_int(static_cast<long long>(calls)),
                   Table::fmt_pct(delivered, 1), Table::fmt(mos.mean(), 2),
                   Table::fmt_int(static_cast<long long>(failovers))});
  }
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  auto env = bench::read_env(argc, argv);
  bench::BenchRun run("fig_failover", env);
  // Protocol-level calls are far heavier than the algorithmic evaluation;
  // scale the per-rate call budget down from the session knob.
  std::size_t calls_target = std::clamp<std::size_t>(env.sessions / 2000, 10, 200);

  bench::print_section("Failover sweep: deterministic active-relay crash rates");
  std::vector<RateResult> swept;
  for (double rate : {0.0, 0.25, 0.5, 1.0}) {
    swept.push_back(run_rate(env, rate, calls_target, run));
  }

  Table table({"fault rate", "relayed calls", "faulted", "recovered", "gave up",
               "unresolved", "p50 recovery (ms)", "p90 recovery (ms)",
               "mean gap (ms)", "mean lost pkts", "mean probes"});
  for (const auto& r : swept) {
    OnlineStats gap, lost;
    for (double v : r.voice_gap_ms) gap.add(v);
    for (double v : r.lost_packets) lost.add(v);
    table.add_row({Table::fmt(r.fault_rate, 2),
                   Table::fmt_int(static_cast<long long>(r.calls)),
                   Table::fmt_int(static_cast<long long>(r.faulted)),
                   Table::fmt_int(static_cast<long long>(r.recovered)),
                   Table::fmt_int(static_cast<long long>(r.gave_up)),
                   Table::fmt_int(static_cast<long long>(r.unresolved)),
                   Table::fmt(percentile(r.recovery_latency_ms, 50), 0),
                   Table::fmt(percentile(r.recovery_latency_ms, 90), 0),
                   Table::fmt(gap.mean(), 0), Table::fmt(lost.mean(), 1),
                   Table::fmt(r.probes.mean(), 1)});
  }
  table.print();

  const RateResult& worst = swept.back();
  bench::print_cdf("Recovery latency CDF (fault rate 1.0)", "latency (ms)",
                   worst.recovery_latency_ms);
  bench::print_cdf("MOS degradation CDF (fault rate 1.0, pre - post)", "MOS drop",
                   worst.mos_drop);

  bench::print_section("Recovery message overhead");
  for (const auto& r : swept) {
    double clean = r.control_clean.mean();
    double faulted = r.control_faulted.mean();
    std::printf("rate %.2f: control msgs/call clean %.1f vs faulted %.1f "
                "(+%.1f, incl. failure notices and %.1f backup probes)\n",
                r.fault_rate, clean, faulted,
                r.control_faulted.count() ? faulted - clean : 0.0, r.probes.mean());
  }

  run_loss_bursts(env, calls_target, run);
  return 0;
}
