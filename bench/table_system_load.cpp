// Reproduces the paper's Sec. 6.3 system-load analysis:
//   * bootstrap storage — the serialized annotated AS graph / RIB is small
//     (the paper: ~800 KB for the 2005-09-26 AS graph);
//   * cluster sizes — 90% of clusters hold at most 100 online end hosts, so
//     a single surrogate per cluster suffices (multiple for ~1,000-host
//     clusters);
//   * surrogate request load under a nominal call rate.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "astopo/bgp_table.h"
#include "astopo/graph_io.h"

using namespace asap;

int main() {
  auto env = bench::read_env();
  bench::BenchRun run("table_system_load", env);
  auto world = bench::build_world(bench::eval_world_params(env), "sysload");
  const auto& pop = world->pop();

  bench::print_section("Bootstrap storage (Sec 6.3)");
  {
    // The annotated AS graph in its dissemination format (what a bootstrap
    // pushes to every surrogate).
    const auto& graph = world->graph();
    std::string graph_text = astopo::serialize_graph(graph);
    // Prefix -> (ASN, surrogate IP) mapping table.
    std::string mapping_text;
    for (ClusterId c : pop.populated_clusters()) {
      const auto& cluster = pop.cluster(c);
      mapping_text += cluster.prefix.to_string() + "|" +
                      std::to_string(graph.node(cluster.as).asn) + "|" +
                      pop.peer(cluster.surrogate).ip.to_string() + "\n";
    }
    Table table({"structure", "entries", "serialized size (KB)"});
    table.add_row({"annotated AS graph", Table::fmt_int(static_cast<long long>(graph.edge_count())),
                   Table::fmt(static_cast<double>(graph_text.size()) / 1024.0, 1)});
    table.add_row({"prefix->surrogate table",
                   Table::fmt_int(static_cast<long long>(pop.populated_clusters().size())),
                   Table::fmt(static_cast<double>(mapping_text.size()) / 1024.0, 1)});
    table.print();
  }

  bench::print_section("Cluster size distribution (Sec 6.3)");
  {
    std::vector<double> sizes;
    for (ClusterId c : pop.populated_clusters()) {
      sizes.push_back(static_cast<double>(pop.cluster(c).members.size()));
    }
    Table table({"statistic", "value"});
    table.add_row({"populated clusters", Table::fmt_int(static_cast<long long>(sizes.size()))});
    table.add_row({"median size", Table::fmt(percentile(sizes, 50), 1)});
    table.add_row({"p90 size", Table::fmt(percentile(sizes, 90), 1)});
    table.add_row({"max size", Table::fmt(percentile(sizes, 100), 0)});
    table.add_row({"clusters <= 100 hosts", Table::fmt_pct(fraction_at_most(sizes, 100.0), 1)});
    table.print();
  }

  bench::print_section("Per-surrogate close-set request load");
  {
    // With each host placing one call per hour and two close-set fetches
    // per call (caller + callee side), a member generates ~2 requests/hour
    // toward its assigned surrogate. Large clusters shard members over
    // several surrogates (Sec. 6.3), bounding per-surrogate load.
    std::vector<double> sizes;
    std::vector<double> per_surrogate;
    std::size_t multi = 0;
    for (ClusterId c : pop.populated_clusters()) {
      const auto& cluster = pop.cluster(c);
      sizes.push_back(static_cast<double>(cluster.members.size()));
      per_surrogate.push_back(static_cast<double>(cluster.members.size()) /
                              static_cast<double>(cluster.surrogates.size()));
      if (cluster.surrogates.size() > 1) ++multi;
    }
    Table table({"metric", "single-surrogate view", "with multi-surrogate sharding"});
    table.add_row({"p90 members served", Table::fmt(percentile(sizes, 90), 0),
                   Table::fmt(percentile(per_surrogate, 90), 0)});
    table.add_row({"max members served", Table::fmt(percentile(sizes, 100), 0),
                   Table::fmt(percentile(per_surrogate, 100), 0)});
    table.add_row({"max requests/hour", Table::fmt(2.0 * percentile(sizes, 100), 0),
                   Table::fmt(2.0 * percentile(per_surrogate, 100), 0)});
    table.print();
    std::printf("clusters running multiple surrogates: %zu\n", multi);
  }
  return 0;
}
