// Extension ablation: close-cluster-set staleness.
//
// Surrogates amortize close-set construction across sessions, so in a real
// deployment the sets age while the network drifts (BGP events, new
// congestion). This bench quantifies the cost: close sets are built against
// latency epoch 0, then sessions are evaluated against the *same topology*
// with freshly drawn link latencies and pathologies (epoch 1 — "a day
// later"). Fresh sets at epoch 1 are the control. The measured gap is the
// argument for the protocol's periodic close-set refresh.
#include <cstdio>

#include "bench_common.h"
#include "core/close_cluster.h"
#include "voip/quality.h"

using namespace asap;

namespace {

struct Outcome {
  std::vector<double> quality_paths;
  std::vector<double> shortest_rtt;
  std::size_t no_relay = 0;
};

// select-close-relay() with the candidate *selection* made on `planning`
// (where the close sets were measured) and the resulting paths *evaluated*
// on `actual` (today's network). The two worlds share topology and peers.
Outcome evaluate(const population::World& planning, const population::World& actual,
                 core::CloseSetCache& cache,
                 const std::vector<population::Session>& sessions,
                 const core::AsapParams& params) {
  Outcome out;
  const auto& pop = actual.pop();
  for (const auto& s : sessions) {
    const core::CloseClusterSet& s1 = cache.get(pop.peer(s.caller).cluster);
    const core::CloseClusterSet& s2 = cache.get(pop.peer(s.callee).cluster);
    std::uint64_t quality = 0;
    Millis best = kUnreachableMs;
    for (const auto& e1 : s1.entries) {
      const auto* e2 = s2.find(e1.cluster);
      if (e2 == nullptr) continue;
      // Acceptance uses the (possibly stale) measured close-set latencies.
      Millis estimate = e1.rtt_ms + e2->rtt_ms + 2.0 * params.relay_delay_one_way_ms;
      if (estimate >= params.lat_threshold_ms) continue;
      // Reality check happens on the actual epoch.
      HostId relay = pop.cluster(e1.cluster).surrogate;
      Millis rtt = actual.relay_rtt_ms(s.caller, relay, s.callee);
      if (voip::is_quality_rtt(rtt)) quality += pop.cluster(e1.cluster).members.size();
      best = std::min(best, rtt);
    }
    out.quality_paths.push_back(static_cast<double>(quality));
    if (best >= kUnreachableMs) {
      ++out.no_relay;
    }
    out.shortest_rtt.push_back(std::min(best, s.direct_rtt_ms));
  }
  (void)planning;
  return out;
}

}  // namespace

int main() {
  auto env = bench::read_env();
  bench::BenchRun run("ablation_staleness", env);
  auto params_epoch0 = bench::eval_world_params(env);
  auto params_epoch1 = params_epoch0;
  params_epoch1.latency_epoch = 1;

  auto yesterday = bench::build_world(params_epoch0, "staleness-epoch0");
  auto today = bench::build_world(params_epoch1, "staleness-epoch1");

  // Today's workload: the sessions that are latent *today*.
  auto workload = bench::sample_sessions(*today, env.sessions);
  std::vector<population::Session> sessions = workload.latent;
  if (sessions.size() > 300) sessions.resize(300);

  core::AsapParams asap_params;
  core::CloseSetCache stale_cache(*yesterday, asap_params);  // measured yesterday
  core::CloseSetCache fresh_cache(*today, asap_params);      // measured today

  auto stale = evaluate(*yesterday, *today, stale_cache, sessions, asap_params);
  auto fresh = evaluate(*today, *today, fresh_cache, sessions, asap_params);

  bench::print_section("Extension: close-cluster-set staleness (epoch-old measurements)");
  Table table({"close sets", "p50 quality paths", "p50 shortest RTT (ms)",
               "p90 shortest RTT", "sessions w/o candidate", "sessions > 300ms"});
  for (const auto* o : {&fresh, &stale}) {
    bool is_fresh = o == &fresh;
    table.add_row({is_fresh ? "fresh (today)" : "stale (yesterday)",
                   Table::fmt(percentile(o->quality_paths, 50), 0),
                   Table::fmt(percentile(o->shortest_rtt, 50), 1),
                   Table::fmt(percentile(o->shortest_rtt, 90), 1),
                   Table::fmt_int(static_cast<long long>(o->no_relay)),
                   Table::fmt_pct(fraction_above(o->shortest_rtt, 300.0), 1)});
  }
  table.print();
  std::printf("The fresh-vs-stale gap is the payoff of the surrogates' periodic close-set\n"
              "refresh; topology-driven candidates age gracefully because the valley-free\n"
              "BFS depends on the AS graph, which changes far slower than link quality.\n");
  return 0;
}
