// Reproduces paper Fig. 3: (a) the RTT reduction rate of the optimal
// one-hop relay for improved sessions (evenly spread in (0,1)); (b) direct
// vs optimal one-hop RTT for the latent sessions (direct > 300 ms), where
// the optimal one-hop relay always lands below 300 ms.
#include <cstdio>

#include "bench_common.h"
#include "population/measurement.h"

using namespace asap;

int main() {
  auto env = bench::read_env();
  bench::BenchRun run("fig03_rtt_reduction", env);
  auto world = bench::build_world(bench::eval_world_params(env), "fig03");
  auto workload = bench::sample_sessions(*world, env.sessions);
  population::OneHopScanner scanner(*world);

  // Fig 3(a): reduction rate over improved sessions.
  std::vector<double> reductions;
  for (const auto& s : workload.all) {
    auto best = scanner.best(s);
    if (best.rtt_ms < s.direct_rtt_ms) {
      reductions.push_back(population::reduction_rate(s.direct_rtt_ms, best.rtt_ms));
    }
  }
  bench::print_section("Fig 3(a): optimal 1-hop RTT reduction rate (improved sessions)");
  {
    LinearHistogram hist(0.0, 1.0, 10);
    for (double r : reductions) hist.add(r);
    Table table({"reduction rate bin", "sessions", "fraction"});
    for (std::size_t i = 0; i < hist.bins(); ++i) {
      table.add_row({Table::fmt(hist.bin_lo(i), 1) + " - " + Table::fmt(hist.bin_hi(i), 1),
                     Table::fmt_int(static_cast<long long>(hist.bin_count(i))),
                     Table::fmt_pct(static_cast<double>(hist.bin_count(i)) /
                                        static_cast<double>(std::max<std::size_t>(
                                            hist.total(), 1)),
                                    1)});
    }
    table.print();
  }

  // Fig 3(b): latent sessions only.
  bench::print_section("Fig 3(b): direct vs optimal 1-hop RTT for latent sessions (>300ms)");
  std::size_t below_300 = 0;
  std::vector<double> latent_direct;
  std::vector<double> latent_optimal;
  for (const auto& s : workload.latent) {
    auto best = scanner.best(s);
    latent_direct.push_back(s.direct_rtt_ms);
    latent_optimal.push_back(best.rtt_ms);
    if (best.rtt_ms < 300.0) ++below_300;
  }
  std::printf("latent sessions: %zu; optimal 1-hop below 300 ms for %zu (%.2f%%)\n",
              workload.latent.size(), below_300,
              workload.latent.empty()
                  ? 0.0
                  : 100.0 * static_cast<double>(below_300) /
                        static_cast<double>(workload.latent.size()));
  if (!latent_direct.empty()) {
    Table table({"percentile", "direct RTT (ms)", "optimal 1-hop RTT (ms)"});
    for (double q : {0.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
      table.add_row({Table::fmt(q, 0), Table::fmt(percentile(latent_direct, q), 1),
                     Table::fmt(percentile(latent_optimal, q), 1)});
    }
    table.print();
  }
  return 0;
}
