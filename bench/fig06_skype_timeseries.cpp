// Reproduces paper Fig. 6: the time-series of probed relay-path RTTs for
// the problematic Skype sessions (4, 9, 10). Relay-path RTTs are estimated
// the paper's way: King measurements from each end host to the relay plus
// the 40 ms round-trip relay allowance. Paper shape: major paths of
// sessions 4 and 10 sit above 350 ms; session 9's major path is ~250 ms
// even though cheaper probed paths existed; session 10 relays in two hops.
#include <cstdio>

#include "bench_common.h"
#include "trace/analyzer.h"
#include "trace/skype_model.h"

using namespace asap;

int main() {
  auto env = bench::read_env();
  bench::BenchRun run("fig06_skype_timeseries", env);
  auto world = bench::build_world(bench::eval_world_params(env), "fig06");
  auto study = bench::make_skype_study(*world);
  Rng rng = world->fork_rng(561);

  trace::SkypeModelParams params;
  for (int session_no : {4, 9, 10}) {
    auto [a, b] = study.session_pairs[static_cast<std::size_t>(session_no - 1)];
    HostId caller = study.sites[a];
    HostId callee = study.sites[b];
    auto session = trace::generate_skype_session(*world, caller, callee, params, rng);
    auto analysis = trace::analyze_session(session.capture);

    bench::print_section("Fig 6: session " + std::to_string(session_no) +
                         " probed relay-path RTT time-series");
    std::printf("direct RTT: %.1f ms; asymmetric=%s; forward two-hop=%s\n",
                world->host_rtt_ms(caller, callee), analysis.asymmetric ? "yes" : "no",
                analysis.forward_two_hop ? "yes" : "no");

    Table table({"t (s)", "probed relay", "relay path RTT (ms)", "became major"});
    Ipv4Addr major = analysis.forward.usage.empty()
                         ? Ipv4Addr()
                         : analysis.forward.major().next_hop;
    for (const auto& probe : session.truth.probes) {
      const auto& peer = world->pop().peer(probe.target);
      // King legs + 40 ms relay allowance, as in the paper's analysis; when
      // a King pair is unresponsive (as ~30% are), fall back to the path
      // ground truth, marked with '*'.
      auto king_a = world->king().measure_rtt(world->pop().peer(caller).as, peer.as);
      auto king_b = world->king().measure_rtt(peer.as, world->pop().peer(callee).as);
      std::string rtt;
      if (king_a && king_b) {
        rtt = Table::fmt(*king_a + *king_b + kRelayDelayRttMs, 1);
      } else {
        rtt = Table::fmt(world->relay_rtt_ms(caller, probe.target, callee), 1) + " *";
      }
      table.add_row({Table::fmt(probe.t_s, 1), peer.ip.to_string(), rtt,
                     peer.ip == major ? "major" : ""});
    }
    table.print();

    if (!analysis.forward.usage.empty()) {
      const auto& m = analysis.forward.major();
      Millis major_rtt = world->host_rtt_ms(caller, callee);
      if (!m.direct) {
        // Recover the relay host from the probe journal to get the true
        // end-to-end relay path RTT.
        for (const auto& probe : session.truth.probes) {
          if (world->pop().peer(probe.target).ip == m.next_hop) {
            major_rtt = world->relay_rtt_ms(caller, probe.target, callee);
            break;
          }
        }
      }
      std::printf("major forward path: %s (%s), carrying %.1f%% of voice packets, "
                  "true path RTT %.1f ms\n",
                  m.direct ? "direct" : m.next_hop.to_string().c_str(),
                  m.direct ? "no relay" : "one-hop relay", 100.0 * analysis.forward.major_share,
                  major_rtt);
    }
  }
  return 0;
}
