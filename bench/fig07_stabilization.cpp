// Reproduces paper Fig. 7: per-session (a) stabilization time, (b) total
// probed relay nodes, (c) relay nodes probed after stabilization, for the
// 14 Skype sessions. Paper shape: stabilization up to 329 s; sessions 10
// and 11 probe 59 and 37 nodes; most sessions probe 3-6 more nodes after
// stabilizing.
#include <cstdio>

#include "bench_common.h"
#include "trace/analyzer.h"
#include "trace/skype_model.h"

using namespace asap;

int main() {
  auto env = bench::read_env();
  bench::BenchRun run("fig07_stabilization", env);
  auto world = bench::build_world(bench::eval_world_params(env), "fig07");
  auto study = bench::make_skype_study(*world);
  Rng rng = world->fork_rng(562);
  trace::SkypeModelParams params;

  bench::print_section("Fig 7: Skype stabilization time and probing overhead");
  Table table({"session", "direct RTT (ms)", "stabilization (s)", "probed nodes",
               "probed after stab.", "asymmetric", "major share"});
  OnlineStats stab;
  OnlineStats probed;
  OnlineStats late;
  for (std::size_t i = 0; i < study.session_pairs.size(); ++i) {
    auto [a, b] = study.session_pairs[i];
    HostId caller = study.sites[a];
    HostId callee = study.sites[b];
    auto session = trace::generate_skype_session(*world, caller, callee, params, rng);
    auto analysis = trace::analyze_session(session.capture);
    stab.add(analysis.stabilization_s);
    probed.add(static_cast<double>(analysis.probed_nodes));
    late.add(static_cast<double>(analysis.probes_after_stabilization));
    table.add_row({Table::fmt_int(static_cast<long long>(i + 1)),
                   Table::fmt(world->host_rtt_ms(caller, callee), 0),
                   Table::fmt(analysis.stabilization_s, 1),
                   Table::fmt_int(static_cast<long long>(analysis.probed_nodes)),
                   Table::fmt_int(static_cast<long long>(analysis.probes_after_stabilization)),
                   analysis.asymmetric ? "yes" : "no",
                   Table::fmt_pct(std::max(analysis.forward.major_share,
                                           analysis.backward.major_share),
                                  1)});
  }
  table.print();
  std::printf("stabilization: mean %.1f s, max %.1f s | probed nodes: mean %.1f, max %.0f | "
              "after stabilization: mean %.1f\n",
              stab.mean(), stab.max(), probed.mean(), probed.max(), late.mean());
  return 0;
}
