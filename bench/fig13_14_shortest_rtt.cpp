// Reproduces paper Figs. 13 & 14: per-session shortest relay-path RTTs and
// their CCDF for all five methods over the latent sessions. Paper shape:
// ASAP tracks OPT closely (both far below the baselines, all sessions
// around/below ~115 ms in the paper's testbed), while DEDI/RAND/MIX leave
// >5% of sessions above one second.
#include <cstdio>

#include "bench_common.h"

using namespace asap;

int main(int argc, char** argv) {
  auto env = bench::read_env(argc, argv);
  bench::BenchRun run("fig13_14_shortest_rtt", env);
  auto world = bench::build_world(bench::eval_world_params(env), "fig13-14");
  auto workload = bench::sample_sessions(*world, env.sessions);

  auto config = run.eval_config();
  auto results = relay::evaluate_methods(*world, workload.latent, config);

  bench::print_method_summary("Fig 13: shortest relay RTT per latent session (ms)", results,
                              "shortest_rtt_ms");
  for (const auto& mr : results) {
    bench::print_ccdf("Fig 14: shortest-RTT CCDF — " + mr.method, "RTT (ms)",
                      mr.shortest_rtt_ms);
  }

  bench::print_section("Fig 13/14 headline comparison");
  Table table({"method", "max RTT (ms)", "sessions > 300ms", "sessions > 1s"});
  for (const auto& mr : results) {
    table.add_row({mr.method, Table::fmt(percentile(mr.shortest_rtt_ms, 100), 1),
                   Table::fmt_pct(fraction_above(mr.shortest_rtt_ms, 300.0), 1),
                   Table::fmt_pct(fraction_above(mr.shortest_rtt_ms, 1000.0), 1)});
  }
  table.print();
  return 0;
}
