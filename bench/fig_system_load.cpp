// System-load evaluation of the concurrent multi-session protocol runtime
// (no paper figure; extends Sec. 7's scalability axis to overlapping
// calls): sweeps the offered call arrival rate with Poisson arrivals over
// the message-level simulation with the relay-capacity model enabled, and
// reports setup time, relay-rejection (ProbeBusy) incidence, contention
// sheds/reroutes and the MOS distribution as relays saturate.
//
// Arrival times come from a seeded fork of the world RNG and the protocol
// simulation itself is single-threaded discrete-event execution, so the
// digest is byte-identical at any ASAP_THREADS setting.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/protocol.h"
#include "population/session_gen.h"
#include "sim/arrivals.h"

using namespace asap;

namespace {

constexpr Millis kVoiceMs = 2000.0;

core::AsapParams protocol_params() {
  core::AsapParams params;
  params.lat_threshold_ms = 200.0;  // small world: keep relayed sessions common
  params.probe_timeout_ms = 1000.0;
  // Capacity model on: a relay carries ~capacity/2 concurrent streams
  // (floored at 1), so popular surrogates saturate under load and refuse
  // relay-check probes with ProbeBusy.
  params.relay_streams_per_capacity = 0.5;
  return params;
}

struct LoadResult {
  double rate_per_s = 0.0;
  std::size_t calls = 0;
  std::size_t completed = 0;
  std::size_t relayed = 0;
  std::size_t busy_rejected_calls = 0;  // >= 1 ProbeBusy answer seen
  std::uint64_t busy_rejections = 0;
  std::uint64_t sheds = 0;
  std::size_t peak_concurrent = 0;
  std::vector<double> setup_ms;  // completed calls
  std::vector<double> mos;       // completed calls with voice
  OnlineStats control_msgs;
};

LoadResult run_rate(population::World& world, double rate_per_s,
                    std::span<const population::Session> calls, bench::BenchRun& run) {
  core::AsapSystem system(world, protocol_params(), 2, run.metrics());
  system.set_trace(run.trace());
  system.join_all();

  // Fork per rate: every sweep point draws its own arrival schedule, and
  // reruns place every call at the same instant.
  Rng arrival_rng =
      world.fork_rng(0x10AD + static_cast<std::uint64_t>(rate_per_s * 10.0));
  std::vector<Millis> arrivals = sim::exponential_arrivals(
      calls.size(), rate_per_s, arrival_rng, system.queue().now());

  std::vector<core::CallHandle> handles;
  handles.reserve(calls.size());
  for (std::size_t i = 0; i < calls.size(); ++i) {
    core::CallSpec spec;
    spec.caller = calls[i].caller;
    spec.callee = calls[i].callee;
    spec.start_at_ms = arrivals[i];
    spec.voice_duration_ms = kVoiceMs;
    handles.push_back(system.place_call(spec));
  }
  system.run_until_idle();

  LoadResult result;
  result.rate_per_s = rate_per_s;
  result.calls = calls.size();
  result.peak_concurrent = system.peak_concurrent_sessions();
  for (core::CallHandle handle : handles) {
    core::CallOutcome outcome = system.take_outcome(handle);
    if (outcome.completed) {
      ++result.completed;
      result.setup_ms.push_back(outcome.setup_time_ms);
      if (outcome.mos_pre_fault > 0.0) result.mos.push_back(outcome.mos_pre_fault);
    }
    if (outcome.used_relay) ++result.relayed;
    if (outcome.relay_busy_rejections > 0) ++result.busy_rejected_calls;
    result.busy_rejections += outcome.relay_busy_rejections;
    result.sheds += outcome.capacity_sheds;
    result.control_msgs.add(static_cast<double>(outcome.control_messages));
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  auto env = bench::read_env(argc, argv);
  bench::BenchRun run("fig_system_load", env);

  auto world = bench::build_world(bench::small_world_params(env.seed), "fig_system_load");
  Rng rng = world->fork_rng(4242);
  auto sessions = population::generate_sessions(*world, 4000, rng);
  auto latent = population::latent_sessions(sessions, 200.0);
  // At least 64 overlapping calls per sweep point (the acceptance floor);
  // the session knob can raise it.
  std::size_t calls_target = std::clamp<std::size_t>(env.sessions / 75, 64, 256);
  if (latent.size() > calls_target) latent.resize(calls_target);

  bench::print_section("System load sweep: Poisson call arrivals, capacity model on");
  std::printf("calls per rate: %zu, voice %.0f ms, relay_streams_per_capacity %.2f\n",
              latent.size(), kVoiceMs, protocol_params().relay_streams_per_capacity);

  std::vector<LoadResult> swept;
  for (double rate : {2.0, 5.0, 10.0, 20.0, 50.0}) {
    swept.push_back(run_rate(*world, rate, latent, run));
  }

  Table table({"arrivals/s", "calls", "completed", "relayed", "peak concurrent",
               "busy-rejected calls", "busy answers", "sheds", "p50 setup (ms)",
               "p90 setup (ms)", "mean MOS", "control msgs/call"});
  for (const auto& r : swept) {
    OnlineStats mos;
    for (double v : r.mos) mos.add(v);
    table.add_row({Table::fmt(r.rate_per_s, 0),
                   Table::fmt_int(static_cast<long long>(r.calls)),
                   Table::fmt_int(static_cast<long long>(r.completed)),
                   Table::fmt_int(static_cast<long long>(r.relayed)),
                   Table::fmt_int(static_cast<long long>(r.peak_concurrent)),
                   Table::fmt_int(static_cast<long long>(r.busy_rejected_calls)),
                   Table::fmt_int(static_cast<long long>(r.busy_rejections)),
                   Table::fmt_int(static_cast<long long>(r.sheds)),
                   Table::fmt(percentile(r.setup_ms, 50), 0),
                   Table::fmt(percentile(r.setup_ms, 90), 0), Table::fmt(mos.mean(), 2),
                   Table::fmt(r.control_msgs.mean(), 1)});
  }
  table.print();

  const LoadResult& worst = swept.back();
  bench::print_cdf("Setup time CDF (highest arrival rate)", "setup (ms)",
                   worst.setup_ms);
  bench::print_cdf("MOS CDF (highest arrival rate)", "MOS", worst.mos);
  return 0;
}
