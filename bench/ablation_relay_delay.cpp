// Ablation: the per-intermediary relay delay assumption. The paper measured
// ~12 ms in a 100 Mbps LAN and conservatively budgets 20 ms one-way (40 ms
// RTT). This sweep shows how sensitive ASAP's outcomes are to that number.
#include <cstdio>

#include "bench_common.h"

using namespace asap;

int main() {
  auto env = bench::read_env();
  bench::BenchRun run("ablation_relay_delay", env);

  bench::print_section("Ablation: relay delay per intermediary node");
  Table table({"relay delay one-way (ms)", "p50 quality paths", "p50 shortest RTT (ms)",
               "max shortest RTT (ms)", "latent sessions"});
  for (double delay : {0.0, 12.0, 20.0, 40.0, 60.0}) {
    auto params = bench::eval_world_params(env);
    params.relay_delay_one_way_ms = delay;
    auto world = bench::build_world(params, "relay-delay");
    auto workload = bench::sample_sessions(*world, env.sessions);
    std::vector<population::Session> sessions = workload.latent;
    if (sessions.size() > 300) sessions.resize(300);

    relay::EvaluationConfig config;
    config.metrics = run.metrics();
    config.asap.relay_delay_one_way_ms = delay;
    relay::AsapSelector selector(*world, config.asap,
                                 world->fork_rng(4000 + static_cast<std::uint64_t>(delay)));
    std::vector<double> paths;
    std::vector<double> rtts;
    for (const auto& s : sessions) {
      auto r = selector.select(s);
      paths.push_back(static_cast<double>(r.quality_paths));
      rtts.push_back(std::min(r.shortest_rtt_ms, s.direct_rtt_ms));
    }
    if (paths.empty()) continue;
    table.add_row({Table::fmt(delay, 0), Table::fmt(percentile(paths, 50), 0),
                   Table::fmt(percentile(rtts, 50), 1), Table::fmt(percentile(rtts, 100), 1),
                   Table::fmt_int(static_cast<long long>(sessions.size()))});
  }
  table.print();
  return 0;
}
