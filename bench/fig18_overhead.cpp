// Reproduces paper Fig. 18: CDF of control messages generated per session
// to find quality relay paths. DEDI/RAND/MIX probe fixed pools (160 / 400 /
// 320 messages); ASAP needs 2 messages for the one-hop exchange plus
// probing/two-hop fetches that depend on the close-set sizes — more than
// 80% of sessions stay within ~300 messages.
#include <cstdio>

#include "bench_common.h"

using namespace asap;

int main(int argc, char** argv) {
  auto env = bench::read_env(argc, argv);
  bench::BenchRun run("fig18_overhead", env);
  auto world = bench::build_world(bench::eval_world_params(env), "fig18");
  auto workload = bench::sample_sessions(*world, env.sessions);

  auto config = run.eval_config();
  config.include_opt = false;  // OPT is offline: no messages
  auto results = relay::evaluate_methods(*world, workload.latent, config);

  bench::print_method_summary("Fig 18: control messages per latent session", results,
                              "messages");
  for (const auto& mr : results) {
    bench::print_cdf("Fig 18: overhead CDF — " + mr.method, "messages", mr.messages);
  }

  bench::print_section("Fig 18 headline comparison");
  Table table({"method", "sessions <= 300 msgs", "p90 msgs", "max msgs"});
  for (const auto& mr : results) {
    table.add_row({mr.method, Table::fmt_pct(fraction_at_most(mr.messages, 300.0), 1),
                   Table::fmt(percentile(mr.messages, 90), 0),
                   Table::fmt(percentile(mr.messages, 100), 0)});
  }
  table.print();

  // Wire-byte view (extension): per-session control traffic. Baselines send
  // fixed probe pairs (~38 B each on the wire); ASAP's cost is dominated by
  // the close-set transfers, measured via the wire codec.
  {
    core::AsapParams params = config.asap;
    relay::AsapSelector asap(*world, params, world->fork_rng(99));
    std::vector<double> kb;
    for (const auto& s : workload.latent) {
      asap.select(s);
      kb.push_back(static_cast<double>(asap.last_detail().bytes) / 1024.0);
    }
    bench::print_section("Per-session control traffic in wire bytes (extension)");
    Table bytes_table({"method", "p50 (KB)", "p90 (KB)", "max (KB)"});
    for (const auto& mr : results) {
      if (mr.method == "ASAP") continue;
      double per_msg_kb = 38.0 / 1024.0;
      bytes_table.add_row({mr.method,
                           Table::fmt(percentile(mr.messages, 50) * per_msg_kb, 1),
                           Table::fmt(percentile(mr.messages, 90) * per_msg_kb, 1),
                           Table::fmt(percentile(mr.messages, 100) * per_msg_kb, 1)});
    }
    if (!kb.empty()) {
      bytes_table.add_row({"ASAP", Table::fmt(percentile(kb, 50), 1),
                           Table::fmt(percentile(kb, 90), 1),
                           Table::fmt(percentile(kb, 100), 1)});
    }
    bytes_table.print();
  }
  return 0;
}
