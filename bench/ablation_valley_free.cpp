// Ablation: does respecting valley-free (BGP policy) constraints in the
// close-set BFS matter? An unconstrained BFS reaches ASes over paths that
// BGP will never realize, so its hop estimates are optimistic: candidate
// clusters that look k-hop-close are admitted, probed (wasted messages)
// and then rejected by the latency check — or worse, admitted clusters'
// measured latencies no longer correlate with their BFS depth.
#include <cstdio>

#include "bench_common.h"

using namespace asap;

int main() {
  auto env = bench::read_env();
  bench::BenchRun run("ablation_valley_free", env);
  auto world = bench::build_world(bench::eval_world_params(env), "ablation-vf");
  auto workload = bench::sample_sessions(*world, env.sessions);
  std::vector<population::Session> sessions = workload.latent;
  if (sessions.size() > 300) sessions.resize(300);

  bench::print_section("Ablation: valley-free vs unconstrained close-set BFS");
  Table table({"BFS", "p50 quality paths", "p50 shortest RTT (ms)", "p90 messages",
               "construction probes / cluster"});
  for (bool valley_free : {true, false}) {
    relay::EvaluationConfig config;
    config.metrics = run.metrics();
    config.asap.valley_free = valley_free;
    relay::AsapSelector selector(*world, config.asap,
                                 world->fork_rng(5000 + (valley_free ? 1 : 0)));
    std::vector<double> paths;
    std::vector<double> rtts;
    std::vector<double> msgs;
    for (const auto& s : sessions) {
      auto r = selector.select(s);
      paths.push_back(static_cast<double>(r.quality_paths));
      rtts.push_back(std::min(r.shortest_rtt_ms, s.direct_rtt_ms));
      msgs.push_back(static_cast<double>(r.messages));
    }
    double probes_per_cluster =
        selector.cache().built_count() == 0
            ? 0.0
            : static_cast<double>(selector.cache().total_probe_messages()) /
                  static_cast<double>(selector.cache().built_count());
    table.add_row({valley_free ? "valley-free (ASAP)" : "unconstrained",
                   Table::fmt(percentile(paths, 50), 0), Table::fmt(percentile(rtts, 50), 1),
                   Table::fmt(percentile(msgs, 90), 0), Table::fmt(probes_per_cluster, 0)});
  }
  table.print();
  return 0;
}
