// Extension ablation: playout-buffer sizing on ASAP relay paths.
//
// The paper (and our evaluation) folds the playout buffer into a fixed
// E-Model term; this bench shows the underlying trade-off explicitly: late
// loss falls with buffer depth while the delay impairment rises, and the
// MOS-optimal depth shifts with the path's base delay — a relay path near
// the 150 ms one-way bound has far less buffer headroom than a short one.
#include <cstdio>

#include "bench_common.h"
#include "core/select_relay.h"
#include "voip/jitter_buffer.h"

using namespace asap;

int main() {
  auto env = bench::read_env();
  bench::BenchRun run("ablation_jitter_buffer", env);
  auto world = bench::build_world(bench::eval_world_params(env), "jitter");
  auto workload = bench::sample_sessions(*world, env.sessions);

  // Three representative paths: a good direct session, an ASAP relay path
  // for a latent session, and that session's (bad) direct path.
  struct Profile {
    const char* label;
    Millis one_way_ms;
    double loss;
  };
  std::vector<Profile> profiles;
  for (const auto& s : workload.all) {
    if (s.direct_rtt_ms < 120.0) {
      profiles.push_back({"short direct path", s.direct_rtt_ms / 2.0, s.direct_loss});
      break;
    }
  }
  if (!workload.latent.empty()) {
    const auto& s = workload.latent.front();
    core::AsapParams params;
    core::CloseSetCache cache(*world, params);
    Rng rng = world->fork_rng(900);
    auto result = core::select_close_relay(*world, cache, s, rng);
    if (result.best.found()) {
      profiles.push_back({"ASAP relay path (latent session)", result.best.rtt_ms / 2.0,
                          result.best.loss});
    }
    profiles.push_back({"latent session direct path", s.direct_rtt_ms / 2.0, s.direct_loss});
  }

  voip::EModel emodel(voip::kG729aVad);
  voip::JitterParams jitter;
  Rng rng = world->fork_rng(901);
  std::unique_ptr<voip::PlayoutCounters> playout;
  if (run.metrics() != nullptr) {
    playout = std::make_unique<voip::PlayoutCounters>(*run.metrics());
  }

  for (const auto& profile : profiles) {
    voip::JitterBufferSim sim(profile.one_way_ms, profile.loss, 20000, jitter, rng);
    bench::print_section(std::string("Playout buffer sweep — ") + profile.label);
    std::printf("base one-way %.1f ms, network loss %.2f%%\n", profile.one_way_ms,
                100.0 * profile.loss);
    Table table({"buffer depth (ms)", "late loss", "mouth-to-ear (ms)", "MOS"});
    for (const auto& r : sim.sweep(160.0, 20.0, emodel, playout.get())) {
      table.add_row({Table::fmt(r.buffer_depth_ms, 0), Table::fmt_pct(r.late_loss, 2),
                     Table::fmt(r.mouth_to_ear_ms, 0), Table::fmt(r.mos, 2)});
    }
    table.print();
    auto best = sim.best_depth(300.0, 5.0, emodel);
    std::printf("MOS-optimal depth: %.0f ms (MOS %.2f, late loss %s)\n",
                best.buffer_depth_ms, best.mos,
                Table::fmt_pct(best.late_loss, 2).c_str());
  }
  return 0;
}
