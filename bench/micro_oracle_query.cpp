// Single-thread throughput of the batched relay-RTT layer against the
// scalar World methods it replaces: for each session, score every relay in
// the RelayDirectory as a one-hop candidate, once via per-candidate
// relay_rtt_ms() (hash + table lookup per leg) and once via
// batch_relay_rtts() (endpoint tables hoisted, flat SoA scan). The two
// paths must agree bitwise on every candidate; the acceptance bar for the
// batched layer is a >= 3x single-thread speedup.
//
// Machine-readable summary on the last stdout line:
//   BENCH JSON {...}
// Respects ASAP_SEED / ASAP_SESSIONS / ASAP_SCALE like the figure benches.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "common/thread_pool.h"
#include "population/relay_directory.h"

using namespace asap;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

int main() {
  auto env = bench::read_env();
  bench::BenchRun run("micro_oracle_query", env);
  auto world = bench::build_world(bench::eval_world_params(env), "micro-oracle");
  // Enough sessions to dominate timer noise but keep the scalar pass short.
  std::size_t session_count = std::min<std::size_t>(env.sessions, 2000);
  auto workload = bench::sample_sessions(*world, session_count);
  const auto& sessions = workload.all;
  if (sessions.empty()) {
    std::printf("no sessions; increase ASAP_SESSIONS\n");
    return 1;
  }

  const population::RelayDirectory& dir = world->relay_directory();
  std::span<const HostId> candidates = dir.relays;
  // Warm every destination table first so both passes measure pure query
  // throughput, not one-off table builds.
  {
    ThreadPool pool(1);
    world->oracle().prewarm(world->pop().host_ases(), pool);
  }

  std::vector<Millis> scalar_out(candidates.size());
  std::vector<Millis> batch_out(candidates.size());
  std::uint64_t queries = 0;
  std::uint64_t mismatches = 0;

  // Scalar pass: exactly what evaluate_relay_pool did per candidate before
  // the batched layer (one hash-map-free oracle lookup per leg, two peer
  // loads per candidate).
  auto scalar_start = std::chrono::steady_clock::now();
  double scalar_sink = 0.0;
  for (const auto& s : sessions) {
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      scalar_out[i] = world->relay_rtt_ms(s.caller, candidates[i], s.callee);
    }
    scalar_sink += scalar_out[candidates.size() / 2];
    queries += candidates.size();
  }
  double scalar_seconds = seconds_since(scalar_start);

  // Batched pass over the same workload, cross-checked bitwise.
  auto batch_start = std::chrono::steady_clock::now();
  double batch_sink = 0.0;
  for (const auto& s : sessions) {
    world->batch_relay_rtts(s, candidates, batch_out);
    batch_sink += batch_out[candidates.size() / 2];
  }
  double batch_seconds = seconds_since(batch_start);
  for (const auto& s : sessions) {
    world->batch_relay_rtts(s, candidates, batch_out);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (batch_out[i] != world->relay_rtt_ms(s.caller, candidates[i], s.callee)) {
        ++mismatches;
      }
    }
  }

  double scalar_per_sec = static_cast<double>(queries) / scalar_seconds;
  double batch_per_sec = static_cast<double>(queries) / batch_seconds;
  double speedup = scalar_seconds / batch_seconds;

  bench::print_section("Relay-RTT query throughput (single thread, batched vs scalar)");
  Table table({"path", "seconds", "queries/sec", "speedup"});
  table.add_row({"scalar", Table::fmt(scalar_seconds, 3), Table::fmt(scalar_per_sec, 0),
                 "1.00"});
  table.add_row({"batched", Table::fmt(batch_seconds, 3), Table::fmt(batch_per_sec, 0),
                 Table::fmt(speedup, 2)});
  table.print();
  std::printf("sessions=%zu candidates=%zu mismatches=%llu (sink %.1f/%.1f)\n",
              sessions.size(), candidates.size(),
              static_cast<unsigned long long>(mismatches), scalar_sink, batch_sink);
  if (mismatches != 0) std::printf("WARNING: batched path disagreed with scalar\n");

  std::string json = "{\"bench\":\"micro_oracle_query\",\"seed\":" +
                     std::to_string(env.seed) +
                     ",\"sessions\":" + std::to_string(sessions.size()) +
                     ",\"candidates\":" + std::to_string(candidates.size()) +
                     ",\"relay_rtt_queries\":" + std::to_string(queries) +
                     ",\"scalar_seconds\":" + Table::fmt(scalar_seconds, 4) +
                     ",\"batch_seconds\":" + Table::fmt(batch_seconds, 4) +
                     ",\"scalar_queries_per_sec\":" + Table::fmt(scalar_per_sec, 1) +
                     ",\"batch_queries_per_sec\":" + Table::fmt(batch_per_sec, 1) +
                     ",\"speedup\":" + Table::fmt(speedup, 3) +
                     ",\"bitwise_identical\":" +
                     std::string(mismatches == 0 ? "true" : "false") + "}";
  std::printf("BENCH JSON %s\n", json.c_str());
  return mismatches == 0 ? 0 : 1;
}
