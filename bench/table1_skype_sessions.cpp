// Reproduces paper Fig. 5 / Table 1: the Skype measurement geometry — 17
// sites on two continents and the 14 caller-callee sessions — plus each
// session's direct RTT (the paper measured these with ping; e.g. sessions
// 10 and 11 had 238 ms and 355 ms).
#include <cstdio>

#include "bench_common.h"

using namespace asap;

int main() {
  auto env = bench::read_env();
  bench::BenchRun run("table1_skype_sessions", env);
  auto world = bench::build_world(bench::eval_world_params(env), "table1");
  auto study = bench::make_skype_study(*world);

  bench::print_section("Fig 5: measurement sites");
  {
    Table table({"site", "peer IP", "ASN", "continent role"});
    for (int s = 1; s <= 17; ++s) {
      HostId h = study.sites[s];
      const auto& peer = world->pop().peer(h);
      table.add_row({Table::fmt_int(s), peer.ip.to_string(),
                     Table::fmt_int(world->graph().node(peer.as).asn),
                     s <= 12 ? "continent A (USA/Canada role)" : "continent B (China role)"});
    }
    table.print();
  }

  bench::print_section("Table 1: the 14 Skype calling sessions");
  {
    Table table({"session", "caller site", "callee site", "direct RTT (ms)",
                 "intercontinental"});
    for (std::size_t i = 0; i < study.session_pairs.size(); ++i) {
      auto [a, b] = study.session_pairs[i];
      HostId caller = study.sites[a];
      HostId callee = study.sites[b];
      Millis rtt = world->host_rtt_ms(caller, callee);
      table.add_row({Table::fmt_int(static_cast<long long>(i + 1)), Table::fmt_int(a),
                     Table::fmt_int(b), Table::fmt(rtt, 1),
                     (a <= 12) != (b <= 12) ? "yes" : "no"});
    }
    table.print();
  }
  return 0;
}
