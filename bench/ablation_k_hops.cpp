// Ablation: the valley-free BFS depth k in construct-close-cluster-set().
// The paper fixes k = 4 because >90% of sub-300 ms direct paths have at
// most 4 AS hops. This sweep shows what shallower/deeper searches do to
// quality paths, shortest RTT and overhead.
#include <cstdio>

#include "bench_common.h"

using namespace asap;

int main() {
  auto env = bench::read_env();
  bench::BenchRun run("ablation_k_hops", env);
  auto world = bench::build_world(bench::eval_world_params(env), "ablation-k");
  auto workload = bench::sample_sessions(*world, env.sessions);
  // Subsample latent sessions: each k re-builds every close set.
  std::vector<population::Session> sessions = workload.latent;
  if (sessions.size() > 300) sessions.resize(300);

  // Context for the paper's choice: hop count of sub-300ms direct paths.
  {
    std::size_t below = 0;
    std::size_t within4 = 0;
    for (const auto& s : workload.all) {
      if (s.direct_rtt_ms >= 300.0) continue;
      ++below;
      auto hops = world->oracle().as_hops(world->pop().peer(s.caller).as,
                                          world->pop().peer(s.callee).as);
      if (hops <= 4) ++within4;
    }
    std::printf("direct paths <300ms with <=4 AS hops: %.1f%% (paper: >90%%)\n",
                below ? 100.0 * static_cast<double>(within4) / static_cast<double>(below)
                      : 0.0);
  }

  bench::print_section("Ablation: close-set BFS depth k");
  Table table({"k", "p50 quality paths", "p10 quality paths", "p50 shortest RTT (ms)",
               "max shortest RTT (ms)", "p90 messages", "close-set p50 size"});
  for (std::uint8_t k = 1; k <= 6; ++k) {
    relay::EvaluationConfig config;
    config.metrics = run.metrics();
    config.asap.k = k;
    relay::AsapSelector selector(*world, config.asap, world->fork_rng(1000 + k));
    std::vector<double> paths;
    std::vector<double> rtts;
    std::vector<double> msgs;
    for (const auto& s : sessions) {
      auto r = selector.select(s);
      paths.push_back(static_cast<double>(r.quality_paths));
      rtts.push_back(std::min(r.shortest_rtt_ms, s.direct_rtt_ms));
      msgs.push_back(static_cast<double>(r.messages));
    }
    // Median close-set size across the sets this sweep actually built.
    std::vector<double> set_sizes;
    for (const auto& s : sessions) {
      set_sizes.push_back(static_cast<double>(
          selector.cache().get(world->pop().peer(s.caller).cluster).entries.size()));
    }
    table.add_row({Table::fmt_int(k), Table::fmt(percentile(paths, 50), 0),
                   Table::fmt(percentile(paths, 10), 0), Table::fmt(percentile(rtts, 50), 1),
                   Table::fmt(percentile(rtts, 100), 1), Table::fmt(percentile(msgs, 90), 0),
                   Table::fmt(percentile(set_sizes, 50), 0)});
  }
  table.print();
  return 0;
}
