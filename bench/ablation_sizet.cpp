// Ablation: sizeT, the one-hop node count below which select-close-relay()
// expands to two-hop search (paper default 300). Higher sizeT triggers the
// expansion more often — more messages for little RTT benefit when one-hop
// candidates are plentiful.
#include <cstdio>

#include "bench_common.h"

using namespace asap;

int main() {
  auto env = bench::read_env();
  bench::BenchRun run("ablation_sizet", env);
  auto world = bench::build_world(bench::eval_world_params(env), "ablation-sizeT");
  auto workload = bench::sample_sessions(*world, env.sessions);
  std::vector<population::Session> sessions = workload.latent;
  if (sessions.size() > 300) sessions.resize(300);

  bench::print_section("Ablation: two-hop trigger threshold sizeT");
  Table table({"sizeT", "two-hop sessions", "p50 quality paths", "p50 shortest RTT",
               "p90 messages", "max messages"});
  for (std::uint32_t size_t_param : {0u, 100u, 300u, 1000u, 5000u}) {
    relay::EvaluationConfig config;
    config.metrics = run.metrics();
    config.asap.size_threshold = size_t_param;
    relay::AsapSelector selector(*world, config.asap, world->fork_rng(3000 + size_t_param));
    std::vector<double> paths;
    std::vector<double> rtts;
    std::vector<double> msgs;
    std::size_t two_hop = 0;
    for (const auto& s : sessions) {
      auto r = selector.select(s);
      paths.push_back(static_cast<double>(r.quality_paths));
      rtts.push_back(std::min(r.shortest_rtt_ms, s.direct_rtt_ms));
      msgs.push_back(static_cast<double>(r.messages));
      if (selector.last_detail().two_hop_triggered) ++two_hop;
    }
    table.add_row({Table::fmt_int(size_t_param),
                   Table::fmt_int(static_cast<long long>(two_hop)),
                   Table::fmt(percentile(paths, 50), 0), Table::fmt(percentile(rtts, 50), 1),
                   Table::fmt(percentile(msgs, 90), 0),
                   Table::fmt(percentile(msgs, 100), 0)});
  }
  table.print();
  return 0;
}
