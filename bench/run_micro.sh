#!/usr/bin/env sh
# Runs the micro-benches that print a "BENCH JSON {...}" summary line and
# collects the JSON objects into BENCH_micro.json (an array, one element per
# bench) in the current directory.
#
# Usage: bench/run_micro.sh [build-dir]   (default: ./build)
# Honors the usual bench env knobs (ASAP_SEED / ASAP_SESSIONS / ASAP_SCALE).
set -eu

BUILD_DIR="${1:-build}"
BENCH_DIR="$BUILD_DIR/bench"
OUT="BENCH_micro.json"

if [ ! -d "$BENCH_DIR" ]; then
  echo "error: $BENCH_DIR not found (build the project first)" >&2
  exit 1
fi

BENCHES="micro_oracle_query micro_parallel_eval"

printf '[' > "$OUT"
first=1
for bench in $BENCHES; do
  bin="$BENCH_DIR/$bench"
  if [ ! -x "$bin" ]; then
    echo "error: $bin not built" >&2
    exit 1
  fi
  echo "== $bench" >&2
  line=$("$bin" | tee /dev/stderr | sed -n 's/^BENCH JSON //p' | tail -n 1)
  if [ -z "$line" ]; then
    echo "error: $bench produced no BENCH JSON line" >&2
    exit 1
  fi
  [ "$first" -eq 1 ] || printf ',' >> "$OUT"
  printf '\n  %s' "$line" >> "$OUT"
  first=0
done
printf '\n]\n' >> "$OUT"
echo "wrote $OUT" >&2
