#!/usr/bin/env sh
# Runs the micro-benches that print a "BENCH JSON {...}" summary line and
# collects the JSON objects into BENCH_micro.json (an array, one element per
# bench) in the current directory.
#
# Usage: bench/run_micro.sh [--min-cores N] [build-dir]   (default: ./build)
# Honors the usual bench env knobs (ASAP_SEED / ASAP_SESSIONS / ASAP_SCALE).
#
# --min-cores N refuses to run (exit 3) on machines with fewer than N
# hardware threads: micro_parallel_eval's speedup numbers are meaningless
# when every worker count time-slices one CPU, so CI jobs that gate on
# scaling should pass --min-cores 2.
set -eu

MIN_CORES=0
if [ "${1:-}" = "--min-cores" ]; then
  MIN_CORES="${2:?--min-cores needs a value}"
  shift 2
fi

BUILD_DIR="${1:-build}"
BENCH_DIR="$BUILD_DIR/bench"
OUT="BENCH_micro.json"

if [ "$MIN_CORES" -gt 0 ]; then
  CORES=$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc 2>/dev/null || echo 1)
  if [ "$CORES" -lt "$MIN_CORES" ]; then
    echo "error: $CORES hardware thread(s) < --min-cores $MIN_CORES — speedup numbers would be meaningless" >&2
    exit 3
  fi
fi

if [ ! -d "$BENCH_DIR" ]; then
  echo "error: $BENCH_DIR not found (build the project first)" >&2
  exit 1
fi

BENCHES="micro_oracle_query micro_parallel_eval"

printf '[' > "$OUT"
first=1
for bench in $BENCHES; do
  bin="$BENCH_DIR/$bench"
  if [ ! -x "$bin" ]; then
    echo "error: $bin not built" >&2
    exit 1
  fi
  echo "== $bench" >&2
  line=$("$bin" | tee /dev/stderr | sed -n 's/^BENCH JSON //p' | tail -n 1)
  if [ -z "$line" ]; then
    echo "error: $bench produced no BENCH JSON line" >&2
    exit 1
  fi
  [ "$first" -eq 1 ] || printf ',' >> "$OUT"
  printf '\n  %s' "$line" >> "$OUT"
  first=0
done
printf '\n]\n' >> "$OUT"
echo "wrote $OUT" >&2
