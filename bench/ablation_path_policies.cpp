// Extension bench: the techniques the paper cites as combinable with ASAP
// (Sec. 6.2 — path switching [20] and packet path diversity [15, 19]),
// measured over ASAP-selected relay paths with time-varying quality.
//
// For each latent session, ASAP's select-close-relay() provides the
// candidate relay paths; the call then runs frame-by-frame over dynamic
// path quality (Gilbert-Elliott loss bursts + congestion episodes) under
// three policies: stick to the best path, switch on degradation, or
// duplicate frames over the two best paths.
#include <cstdio>

#include "bench_common.h"
#include "core/select_relay.h"
#include "voip/path_switching.h"

using namespace asap;

int main() {
  auto env = bench::read_env();
  bench::BenchRun run("ablation_path_policies", env);
  auto world = bench::build_world(bench::eval_world_params(env), "path-policies");
  auto workload = bench::sample_sessions(*world, env.sessions);
  std::vector<population::Session> sessions = workload.latent;
  if (sessions.size() > 200) sessions.resize(200);

  core::AsapParams asap_params;
  core::CloseSetCache cache(*world, asap_params);
  Rng select_rng = world->fork_rng(600);

  voip::EModel emodel(voip::kG729aVad);
  voip::DynamicsParams dynamics;
  voip::CallPolicyParams call_params;
  const double duration_s = 300.0;

  struct Agg {
    OnlineStats mean_mos;
    OnlineStats unsatisfied;
    OnlineStats switches;
    std::size_t calls = 0;
  };
  Agg agg[3];

  std::size_t skipped = 0;
  std::uint64_t call_salt = 0;
  for (const auto& s : sessions) {
    auto selection = core::select_close_relay(*world, cache, s, select_rng);
    if (!selection.best.found() || selection.one_hop_clusters.size() < 2) {
      ++skipped;
      continue;
    }
    // Candidate paths: the two best accepted relay clusters' surrogates.
    const auto& pop = world->pop();
    std::vector<std::pair<Millis, double>> path_specs;
    for (ClusterId c : selection.one_hop_clusters) {
      HostId relay = pop.cluster(c).surrogate;
      Millis rtt = world->relay_rtt_ms(s.caller, relay, s.callee);
      if (rtt >= kUnreachableMs) continue;
      path_specs.emplace_back(rtt, world->relay_loss(s.caller, relay, s.callee));
    }
    std::sort(path_specs.begin(), path_specs.end());
    if (path_specs.size() > 3) path_specs.resize(3);
    if (path_specs.size() < 2) {
      ++skipped;
      continue;
    }

    ++call_salt;
    std::vector<voip::PathDynamics> dyn;
    dyn.reserve(path_specs.size());
    for (std::size_t i = 0; i < path_specs.size(); ++i) {
      dyn.emplace_back(path_specs[i].first, path_specs[i].second, duration_s, dynamics,
                       world->params().seed + call_salt, i + 1);
    }
    std::vector<const voip::PathDynamics*> paths;
    for (const auto& d : dyn) paths.push_back(&d);

    for (int p = 0; p < 3; ++p) {
      Rng frame_rng = world->fork_rng(700 + call_salt);  // identical draws per policy
      auto result = run_call(paths, static_cast<voip::PathPolicy>(p), duration_s, emodel,
                             call_params, frame_rng);
      agg[p].mean_mos.add(result.mean_mos);
      agg[p].unsatisfied.add(result.unsatisfied_fraction);
      agg[p].switches.add(static_cast<double>(result.switches));
      ++agg[p].calls;
    }
  }

  bench::print_section("Extension: path policies over ASAP relay paths (dynamic quality)");
  std::printf("latent sessions simulated: %zu (skipped %zu without >=2 relay paths), "
              "%.0f s calls, G.729A+VAD\n",
              agg[0].calls, skipped, duration_s);
  Table table({"policy", "mean MOS", "worst call mean MOS", "unsatisfied windows",
               "mean switches/call"});
  for (int p = 0; p < 3; ++p) {
    if (agg[p].calls == 0) continue;
    table.add_row({std::string(voip::policy_name(static_cast<voip::PathPolicy>(p))),
                   Table::fmt(agg[p].mean_mos.mean(), 3),
                   Table::fmt(agg[p].mean_mos.min(), 3),
                   Table::fmt_pct(agg[p].unsatisfied.mean(), 2),
                   Table::fmt(agg[p].switches.mean(), 2)});
  }
  table.print();
  std::printf("Shape to expect: switching trims the unsatisfied-window fraction;\n"
              "diversity suppresses loss bursts at the cost of duplicate traffic.\n");
  return 0;
}
