// Gray-failure evaluation (robustness extension; no paper figure): a relay
// that stays alive but goes gray — dropping, delaying and jittering the
// voice it forwards — defeats the hard keepalive detector, which only sees
// total silence. This bench sweeps degradation severity and detector
// thresholds over the receiver-side quality monitor and reports the numbers
// the detector must be judged on: the false-failover rate on a healthy
// world (gated at exactly zero), time-to-evacuate a gray relay, route-flap
// counts under oscillating degradation, and the segmented pre/post-switch
// MOS against a detector-off baseline that rides the gray relay down.
//
// Every degradation episode is drawn from a seeded fork of the world RNG,
// so reruns are byte-identical; see src/sim/fault_plan.h.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/protocol.h"
#include "population/session_gen.h"
#include "sim/fault_plan.h"

using namespace asap;

namespace {

constexpr Millis kVoiceMs = 5000.0;
// Strike offset into the voice stream: late enough that the pre-fault MOS
// segment has settled, early enough that detection + evacuation + a clean
// post-switch segment all fit in the stream.
constexpr Millis kStrikeMs = 600.0;

struct Severity {
  const char* name;
  sim::DegradeProfile profile;
};

std::vector<Severity> severities() {
  std::vector<Severity> out;
  Severity mild{"mild", {}};
  mild.profile.loss = 0.15;
  mild.profile.jitter_ms = 10.0;
  out.push_back(mild);
  Severity moderate{"moderate", {}};
  moderate.profile.loss = 0.35;
  moderate.profile.jitter_ms = 20.0;
  moderate.profile.latency_add_ms = 40.0;
  out.push_back(moderate);
  Severity severe{"severe", {}};
  severe.profile.loss = 0.6;
  severe.profile.jitter_ms = 30.0;
  severe.profile.latency_add_ms = 80.0;
  out.push_back(severe);
  // Expire each episode inside its own call's event-queue drain so a struck
  // relay does not stay gray into later calls on the same system.
  for (auto& s : out) s.profile.duration_ms = kVoiceMs;
  return out;
}

core::AsapParams detector_params(bool enabled, double trigger_mos = 2.8) {
  core::AsapParams params;
  params.lat_threshold_ms = 200.0;  // small world: keep relayed sessions common
  params.probe_timeout_ms = 1000.0;
  params.quality_failover = enabled;
  params.quality_trigger_mos = trigger_mos;
  params.quality_recover_mos = trigger_mos + 0.5;
  return params;
}

struct SweepResult {
  std::size_t calls = 0;     // relayed calls measured
  std::size_t fired = 0;     // calls with >= 1 quality trigger
  std::size_t switched = 0;  // calls with >= 1 committed switchover
  std::vector<double> evacuate_ms;  // strike -> first quality trigger
  OnlineStats flaps;                // quality triggers per call
  OnlineStats mos_pre;   // pre-detection segment (whole stream, detector off)
  OnlineStats mos_post;  // post-switch segment (empty when never switched)
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
};

// One world, one detector configuration, `calls_target` relayed calls; when
// `strike` is set every call's active relay goes gray kStrikeMs into the
// stream (the deferred kActiveRelayDegrade form, so the fault lands on
// whatever relay the call actually selected).
SweepResult run_world(const bench::BenchEnv& env, const std::string& label,
                      const core::AsapParams& params,
                      const sim::DegradeProfile* strike,
                      std::size_t calls_target, bench::BenchRun& run) {
  auto world = bench::build_world(bench::small_world_params(env.seed), label);
  core::AsapSystem system(*world, params, 2, run.metrics());
  system.set_trace(run.trace());
  system.join_all();
  Rng rng = world->fork_rng(4242);
  auto sessions = population::generate_sessions(*world, 4000, rng);
  auto latent = population::latent_sessions(sessions, 200.0);

  SweepResult result;
  for (const auto& s : latent) {
    if (result.calls >= calls_target) break;
    if (strike != nullptr) {
      sim::FaultPlan plan;
      sim::FaultEvent event;
      event.at_ms = kStrikeMs;
      event.kind = sim::FaultKind::kActiveRelayDegrade;
      event.degrade = *strike;
      plan.add(event);
      system.arm_fault_plan(plan);
    }
    auto outcome = core::run_call(system, s.caller, s.callee, kVoiceMs);
    if (!outcome.used_relay) continue;  // direct calls have no relay to lose
    ++result.calls;
    result.sent += outcome.voice_packets_sent;
    result.received += outcome.voice_packets_received;
    result.flaps.add(static_cast<double>(outcome.quality_failovers));
    if (outcome.quality_failovers > 0) {
      ++result.fired;
      result.evacuate_ms.push_back(outcome.quality_detection_ms - kStrikeMs);
    }
    if (outcome.failovers > 0) ++result.switched;
    if (outcome.mos_pre_fault > 0.0) result.mos_pre.add(outcome.mos_pre_fault);
    if (outcome.mos_post_failover > 0.0) {
      result.mos_post.add(outcome.mos_post_failover);
    }
  }
  return result;
}

void add_sweep_row(Table& table, const std::string& head, const char* detector,
                   const SweepResult& r) {
  double delivered =
      r.sent ? static_cast<double>(r.received) / static_cast<double>(r.sent) : 0.0;
  table.add_row({head, detector, Table::fmt_int(static_cast<long long>(r.calls)),
                 Table::fmt_int(static_cast<long long>(r.fired)),
                 Table::fmt_int(static_cast<long long>(r.switched)),
                 Table::fmt(percentile(r.evacuate_ms, 50), 0),
                 Table::fmt(percentile(r.evacuate_ms, 90), 0),
                 Table::fmt(r.flaps.mean(), 2), Table::fmt_pct(delivered, 1),
                 Table::fmt(r.mos_pre.mean(), 2), Table::fmt(r.mos_post.mean(), 2)});
}

// Oscillating path-level degradation: 400 ms gray bursts at 50% loss with
// healthy gaps, hitting whatever route each call is on. The hysteresis and
// per-call cooldown must keep the route from flapping once per burst.
void run_flapping(const bench::BenchEnv& env, std::size_t calls_target,
                  bench::BenchRun& run) {
  bench::print_section("Oscillating degradation: cooldown bounds route flapping");
  auto world =
      bench::build_world(bench::small_world_params(env.seed), "grayfail_flap");
  core::AsapParams params = detector_params(true);
  core::AsapSystem system(*world, params, 2, run.metrics());
  system.set_trace(run.trace());
  system.join_all();
  Rng rng = world->fork_rng(4242);
  auto sessions = population::generate_sessions(*world, 4000, rng);
  auto latent = population::latent_sessions(sessions, 200.0);

  constexpr Millis kFlapVoiceMs = 7000.0;
  std::size_t calls = 0;
  OnlineStats flaps;
  std::uint32_t worst = 0;
  for (const auto& s : latent) {
    if (calls >= calls_target) break;
    sim::FaultPlan plan;
    for (int burst = 0; burst < 6; ++burst) {
      sim::FaultEvent start;
      start.at_ms = 1000.0 + 800.0 * burst;  // absolute: armed right before
      start.kind = sim::FaultKind::kNodeDegradeStart;
      start.target = sim::kDegradeAllTraffic;
      start.degrade.loss = 0.5;
      plan.add(start);
      sim::FaultEvent end = start;
      end.at_ms = start.at_ms + 400.0;
      end.kind = sim::FaultKind::kNodeDegradeEnd;
      plan.add(end);
    }
    system.arm_fault_plan(plan);
    auto outcome = core::run_call(system, s.caller, s.callee, kFlapVoiceMs);
    if (!outcome.used_relay) continue;
    ++calls;
    flaps.add(static_cast<double>(outcome.quality_failovers));
    worst = std::max(worst, outcome.quality_failovers);
  }
  // Six bursts, but at most one trigger per cooldown window: the route can
  // flap at most ceil(stream / cooldown) times, never once per burst.
  std::printf("relayed calls %zu over 6 gray bursts: mean flaps %.2f, worst %u "
              "(cooldown bound ceil(%.0f / %.0f) = %.0f)\n",
              calls, flaps.mean(), worst, kFlapVoiceMs, params.quality_cooldown_ms,
              std::ceil(kFlapVoiceMs / params.quality_cooldown_ms));
}

}  // namespace

int main(int argc, char** argv) {
  auto env = bench::read_env(argc, argv);
  bench::BenchRun run("fig_grayfail", env);
  // Protocol-level calls are far heavier than the algorithmic evaluation;
  // scale the per-configuration call budget down from the session knob.
  std::size_t calls_target = std::clamp<std::size_t>(env.sessions / 2000, 10, 200);

  bench::print_section("Healthy world: false-failover gate (detector on)");
  auto healthy = run_world(env, "grayfail_healthy", detector_params(true), nullptr,
                           calls_target, run);
  std::printf("relayed calls %zu, quality failovers %zu (must be 0), "
              "hard failovers %zu\n",
              healthy.calls, healthy.fired, healthy.switched);
  if (healthy.fired != 0 || healthy.switched != 0) {
    std::fprintf(stderr,
                 "FALSE FAILOVER: %zu quality triggers / %zu switchovers on a "
                 "healthy world\n",
                 healthy.fired, healthy.switched);
    return 1;
  }

  bench::print_section("Gray-relay severity sweep: detector off vs on");
  Table table({"severity", "detector", "calls", "fired", "switched",
               "p50 evac (ms)", "p90 evac (ms)", "mean flaps", "delivered",
               "MOS pre/whole", "MOS post-switch"});
  std::vector<double> severe_evacuations;
  for (const auto& sev : severities()) {
    for (bool detector : {false, true}) {
      std::string label =
          std::string("grayfail_") + sev.name + (detector ? "_on" : "_off");
      auto r = run_world(env, label, detector_params(detector), &sev.profile,
                         calls_target, run);
      add_sweep_row(table, sev.name, detector ? "on" : "off", r);
      if (detector && std::string(sev.name) == "severe") {
        severe_evacuations = r.evacuate_ms;
      }
    }
  }
  table.print();
  bench::print_cdf("Time-to-evacuate CDF (severe, detector on)",
                   "evacuation (ms)", severe_evacuations);

  bench::print_section("Detector threshold sweep (severe gray relay)");
  const sim::DegradeProfile severe = severities().back().profile;
  Table thresholds({"trigger MOS", "calls", "fired", "switched", "p50 evac (ms)",
                    "p90 evac (ms)", "mean flaps"});
  for (double trigger : {2.5, 2.8, 3.1}) {
    char label[32];
    std::snprintf(label, sizeof(label), "grayfail_t%02d",
                  static_cast<int>(trigger * 10.0 + 0.5));
    auto r = run_world(env, label, detector_params(true, trigger), &severe,
                       calls_target, run);
    thresholds.add_row({Table::fmt(trigger, 1),
                        Table::fmt_int(static_cast<long long>(r.calls)),
                        Table::fmt_int(static_cast<long long>(r.fired)),
                        Table::fmt_int(static_cast<long long>(r.switched)),
                        Table::fmt(percentile(r.evacuate_ms, 50), 0),
                        Table::fmt(percentile(r.evacuate_ms, 90), 0),
                        Table::fmt(r.flaps.mean(), 2)});
  }
  thresholds.print();

  run_flapping(env, calls_target, run);
  return 0;
}
