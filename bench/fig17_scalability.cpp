// Reproduces paper Fig. 17: the quality-path CDF when the online population
// grows from 23,366 to 103,625 peers (same clusters/topology). The paper's
// scalability argument: dividing ASAP's quality-path counts by the
// population ratio (103,625 / 23,366 = 4.434) re-produces the Fig. 12 ASAP
// curve almost exactly, i.e. quality paths grow linearly with population;
// DEDI/RAND/MIX stay flat (all sessions below ~30 per-capita paths).
#include <cstdio>

#include "bench_common.h"

using namespace asap;

int main(int argc, char** argv) {
  auto env = bench::read_env(argc, argv);
  bench::BenchRun run("fig17_scalability", env);

  auto small = bench::build_world(bench::eval_world_params(env), "fig17-base");
  auto small_sessions = bench::sample_sessions(*small, env.sessions);
  auto config = run.eval_config();
  config.include_opt = false;
  auto base_results = relay::evaluate_methods(*small, small_sessions.latent, config);

  auto big = bench::build_world(bench::scaled_world_params(env), "fig17-scaled");
  auto big_sessions = bench::sample_sessions(*big, env.sessions);
  auto scaled_results = relay::evaluate_methods(*big, big_sessions.latent, config);

  double ratio = static_cast<double>(big->pop().peer_count()) /
                 static_cast<double>(small->pop().peer_count());
  std::printf("population ratio: %zu / %zu = %.3f\n", big->pop().peer_count(),
              small->pop().peer_count(), ratio);

  for (std::size_t m = 0; m < scaled_results.size(); ++m) {
    std::vector<double> per_capita = scaled_results[m].quality_paths;
    for (double& v : per_capita) v /= ratio;
    bench::print_cdf("Fig 17: quality paths / " + Table::fmt(ratio, 3) + " — " +
                         scaled_results[m].method,
                     "quality paths (scaled)", per_capita);
  }

  bench::print_section("Scalability check: per-capita quality paths, scaled vs base world");
  Table table({"method", "base p50", "scaled p50 / ratio", "base p90", "scaled p90 / ratio"});
  for (std::size_t m = 0; m < base_results.size(); ++m) {
    const auto& base = base_results[m];
    const auto& scaled = scaled_results[m];
    if (base.quality_paths.empty() || scaled.quality_paths.empty()) continue;
    table.add_row({base.method, Table::fmt(percentile(base.quality_paths, 50), 0),
                   Table::fmt(percentile(scaled.quality_paths, 50) / ratio, 0),
                   Table::fmt(percentile(base.quality_paths, 90), 0),
                   Table::fmt(percentile(scaled.quality_paths, 90) / ratio, 0)});
  }
  table.print();
  std::printf("A method is scalable when scaled/ratio tracks base (ASAP) rather than\n"
              "collapsing toward the fixed probe budget (DEDI/RAND/MIX).\n");
  return 0;
}
