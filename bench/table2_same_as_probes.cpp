// Reproduces paper Table 2 (Limit 2): relay nodes probed within the same
// AS during one Skype session. The paper found two relays in session 8
// sharing a DNS zone (same AS) whose relay paths both measured ~360 ms —
// probing both is wasted effort since their paths share fate. We group each
// session's probed relays by origin AS (via the prefix-to-AS mapping) and
// report the duplicate groups with their relay-path RTTs.
#include <cstdio>

#include "bench_common.h"
#include "trace/analyzer.h"
#include "trace/skype_model.h"

using namespace asap;

int main() {
  auto env = bench::read_env();
  bench::BenchRun run("table2_same_as_probes", env);
  auto world = bench::build_world(bench::eval_world_params(env), "table2");
  auto study = bench::make_skype_study(*world);
  Rng rng = world->fork_rng(563);
  trace::SkypeModelParams params;

  const auto& pop = world->pop();
  auto as_of_ip = [&](Ipv4Addr ip) -> std::uint64_t {
    auto cluster = pop.cluster_of_ip(ip);
    if (!cluster) return 0;
    return pop.cluster(*cluster).as.value() + 1;  // +1: 0 is "unmapped"
  };

  std::size_t sessions_with_duplicates = 0;
  for (std::size_t i = 0; i < study.session_pairs.size(); ++i) {
    auto [a, b] = study.session_pairs[i];
    HostId caller = study.sites[a];
    HostId callee = study.sites[b];
    auto session = trace::generate_skype_session(*world, caller, callee, params, rng);
    auto groups = trace::same_group_probes(session.capture, as_of_ip);
    if (groups.empty()) continue;
    ++sessions_with_duplicates;

    bench::print_section("Table 2: same-AS probed relays in session " +
                         std::to_string(i + 1));
    Table table({"relay node", "origin ASN", "relay path RTT (ms)"});
    for (const auto& group : groups) {
      AsId as(static_cast<std::uint32_t>(group.group_key - 1));
      for (Ipv4Addr ip : group.targets) {
        auto cluster = pop.cluster_of_ip(ip);
        Millis rtt = kUnreachableMs;
        if (cluster) {
          HostId relay = pop.cluster(*cluster).delegate;
          rtt = world->relay_rtt_ms(caller, relay, callee);
        }
        table.add_row({ip.to_string(), Table::fmt_int(world->graph().node(as).asn),
                       rtt >= kUnreachableMs ? "unreachable" : Table::fmt(rtt, 1)});
      }
    }
    table.print();
  }
  std::printf("\nsessions with same-AS duplicate probes: %zu / %zu\n",
              sessions_with_duplicates, study.session_pairs.size());
  return 0;
}
