// The Section-3.2 relay-delay experiment, in-memory edition.
//
// The paper measured the time a relay host needs to move a voice packet
// from its receive queue, through memory, back to its transmit queue
// (~12 ms on a 2005 host/100 Mbps LAN; budgeted as 20 ms one-way). This
// bench measures our simulated relay pipeline's compute cost per forwarded
// packet — the point being that the modelled 20 ms is pure budget, with the
// software forwarding path contributing microseconds.
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "sim/event_queue.h"
#include "trace/packet.h"

using namespace asap;

namespace {

// Copy a voice-packet payload through an intermediate buffer, as a relay's
// user-space forwarding loop does.
void BM_RelayPacketCopy(benchmark::State& state) {
  std::vector<std::uint8_t> rx(trace::kVoicePacketBytes, 0xAB);
  std::vector<std::uint8_t> app(trace::kVoicePacketBytes);
  std::vector<std::uint8_t> tx(trace::kVoicePacketBytes);
  for (auto _ : state) {
    std::memcpy(app.data(), rx.data(), rx.size());
    benchmark::DoNotOptimize(app.data());
    std::memcpy(tx.data(), app.data(), app.size());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rx.size()) * 2);
}
BENCHMARK(BM_RelayPacketCopy);

// Full simulated relay hop: schedule, dequeue and forward one packet
// through the event queue (the DES overhead per relayed packet).
void BM_RelayEventHop(benchmark::State& state) {
  sim::EventQueue queue;
  std::uint64_t forwarded = 0;
  for (auto _ : state) {
    queue.after(0.0, [&queue, &forwarded]() {
      queue.after(0.0, [&forwarded]() { ++forwarded; });
    });
    queue.run();
  }
  benchmark::DoNotOptimize(forwarded);
}
BENCHMARK(BM_RelayEventHop);

}  // namespace

BENCHMARK_MAIN();
