// fig_overlay: the federated surrogate control plane (DESIGN.md §15).
//
// Sweeps gossip period × world churn and reports what federation costs and
// buys relative to the flat global oracle:
//   - per-node control-plane state (wire bytes a surrogate holds:
//     O(cluster + peered surrogates), vs the flat plane's O(world));
//   - information-base staleness (selection quality / MOS delta against the
//     flat oracle evaluated fresh on today's network);
//   - per-session setup messages (IB hits replace the flat plane's
//     per-caller close-set exchanges) and the gossip traffic that pays for
//     them.
// The churn rows gossip against yesterday's latencies (epoch 0), then the
// world flips to today (epoch 1): a period short enough to re-gossip before
// evaluation re-converges; a longer one serves stale entries within TTL.
//
// A final section drives the via tier end to end on the sim datapath: calls
// whose ASAP selection produced a two-hop route run with via source routing
// enabled (the route rides a ViaSetup session-setup frame; relays forward
// hop by hop), demonstrating completion through an intermediate relay. The
// socket-datapath twin of this check lives in the loopback integration
// tests.
#include <cstdio>
#include <limits>

#include "bench_common.h"
#include "core/protocol.h"
#include "overlay/federation.h"
#include "relay/asap_selector.h"
#include "relay/baselines.h"
#include "voip/emodel.h"
#include "voip/quality.h"

using namespace asap;

namespace {

constexpr Millis kEvalAtMs = 60'000.0;  // when the selection workload runs

struct RowResult {
  std::vector<double> rtt_ms;
  std::vector<double> mos;
  std::uint64_t setup_messages = 0;
  std::uint64_t setup_bytes = 0;
};

// Serial ASAP selection over `source`, paths evaluated on `world` (today).
// Serial keeps the run deterministic without a thread-count axis: the bench
// measures control-plane behaviour, not selector throughput.
RowResult evaluate(const population::World& world, core::CloseSetSource& source,
                   const std::vector<population::Session>& sessions,
                   const voip::EModel& emodel) {
  RowResult out;
  relay::AsapSelector selector(world, source, world.fork_rng(11));
  for (const auto& s : sessions) {
    relay::SelectionResult r = selector.select(s);
    const Millis rtt = std::min(r.shortest_rtt_ms, s.direct_rtt_ms);
    out.rtt_ms.push_back(rtt);
    out.mos.push_back(emodel.mos_for_rtt(rtt, 0.005));
    out.setup_messages += r.messages;
    out.setup_bytes += selector.last_detail().bytes;
  }
  return out;
}

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

}  // namespace

int main(int argc, char** argv) {
  auto env = bench::read_env(argc, argv);
  bench::BenchRun run("fig_overlay", env);

  auto params_epoch0 = bench::eval_world_params(env);
  auto params_epoch1 = params_epoch0;
  params_epoch1.latency_epoch = 1;
  auto yesterday = bench::build_world(params_epoch0, "overlay-epoch0");
  auto today = bench::build_world(params_epoch1, "overlay-epoch1");

  auto workload = bench::sample_sessions(*today, env.sessions);
  std::vector<population::Session> sessions = workload.latent;
  if (sessions.size() > 200) sessions.resize(200);

  core::AsapParams asap_params;
  voip::EModel emodel(voip::kG729aVad);

  // Control: the flat oracle, fresh on today's network.
  relay::FlatDirectoryProvider flat(*today, asap_params);
  RowResult flat_row = evaluate(*today, flat.close_sets(), sessions, emodel);
  const double flat_mos = mean(flat_row.mos);

  bench::print_section("Federated surrogate control plane: gossip period x churn");
  Table table({"plane", "churn", "p50 RTT (ms)", "p90 RTT", "MOS delta vs flat",
               "setup msgs/sess", "IB hit rate", "gossip msgs", "gossip KiB",
               "state B/node"});
  table.add_row({"flat", "-", Table::fmt(percentile(flat_row.rtt_ms, 50), 1),
                 Table::fmt(percentile(flat_row.rtt_ms, 90), 1), Table::fmt(0.0, 3),
                 Table::fmt(static_cast<double>(flat_row.setup_messages) /
                                static_cast<double>(sessions.size()),
                            1),
                 "-", "0", "0",
                 Table::fmt_int(static_cast<long long>(flat.max_state_bytes_per_node()))});

  for (const double period_ms : {5'000.0, 30'000.0, 120'000.0}) {
    for (const bool churn : {false, true}) {
      overlay::OverlayParams op;
      op.tier = overlay::Tier::kFederated;
      op.gossip_period_ms = period_ms;
      op.ib_ttl_ms = 4.0 * period_ms;
      // Static rows gossip on today throughout; churn rows take their first
      // round on yesterday, then the world flips under them.
      overlay::FederatedProvider fed(churn ? *yesterday : *today, asap_params, op);
      if (churn) {
        fed.plane().run_gossip_until(0.0);
        fed.set_world(*today);
      }
      fed.plane().run_gossip_until(kEvalAtMs);

      RowResult row = evaluate(*today, fed.close_sets(), sessions, emodel);
      const std::uint64_t hits = fed.plane().ib_hits();
      const std::uint64_t misses = fed.plane().ib_misses();
      const double hit_rate =
          hits + misses == 0 ? 0.0
                             : static_cast<double>(hits) /
                                   static_cast<double>(hits + misses);
      char label[32];
      std::snprintf(label, sizeof label, "federated %gs", period_ms / 1000.0);
      table.add_row(
          {label, churn ? "epoch flip" : "static",
           Table::fmt(percentile(row.rtt_ms, 50), 1),
           Table::fmt(percentile(row.rtt_ms, 90), 1),
           Table::fmt(mean(row.mos) - flat_mos, 3),
           Table::fmt(static_cast<double>(row.setup_messages) /
                          static_cast<double>(sessions.size()),
                      1),
           Table::fmt_pct(hit_rate, 1),
           Table::fmt_int(static_cast<long long>(fed.upkeep_messages())),
           Table::fmt_int(static_cast<long long>(fed.upkeep_bytes() / 1024)),
           Table::fmt_int(static_cast<long long>(fed.max_state_bytes_per_node()))});
    }
  }
  table.print();
  std::printf(
      "Federated surrogates hold O(cluster + peered surrogates) state per node vs the\n"
      "flat plane's O(world) directory; IB hits replace per-caller close-set exchanges\n"
      "at the price of gossip traffic and TTL-bounded staleness after churn.\n");

  // --- Via tier on the sim datapath ---------------------------------------
  // Same protocol system, via source routing enabled: two-hop selections
  // emit a ViaSetup session-setup frame and the voice is forwarded hop by
  // hop. Count completions through >= 2 relays.
  bench::print_section("Via tier: two-hop source-routed calls (sim datapath)");
  core::AsapParams via_params = asap_params;
  via_params.via_source_routing = true;
  // Force the two-hop expansion phase for every relayed call (the paper's
  // sizeT gate, maxed out) and drop the per-intermediary forwarding penalty
  // so a chain competes with one-hop on path latency alone — two extra
  // relay delays would otherwise price two-hop out of this small world.
  via_params.size_threshold = std::numeric_limits<std::uint32_t>::max();
  via_params.relay_delay_one_way_ms = 0.0;
  // A lower latency bar pulls far more sessions into relay selection than
  // the paper's 300 ms tail, giving two-hop chains enough draws to win.
  via_params.lat_threshold_ms = 150.0;
  core::AsapSystem system(*today, via_params, 2, run.metrics());
  system.set_trace(run.trace());
  system.join_all();
  Table via_table({"routing", "calls", "completed", "relayed",
                   "two-hop via routes", "two-hop completed"});

  // Selection-driven: ASAP picks the route; a two-hop chain must beat the
  // best one-hop candidate on estimated latency to win (rare in a world
  // whose close-set estimates respect the triangle inequality).
  std::size_t calls = 0, completed = 0, relayed = 0, two_hop = 0, two_hop_done = 0;
  for (const auto& s : workload.all) {
    if (calls >= 400 || two_hop >= 3) break;
    if (s.direct_rtt_ms <= via_params.lat_threshold_ms) continue;
    ++calls;
    auto outcome = core::run_call(system, s.caller, s.callee, 200.0);
    if (outcome.completed) ++completed;
    if (outcome.used_relay) ++relayed;
    if (outcome.used_relay && outcome.relay.is_two_hop()) {
      ++two_hop;
      if (outcome.completed) ++two_hop_done;
    }
  }
  via_table.add_row({"selected", Table::fmt_int(static_cast<long long>(calls)),
                     Table::fmt_int(static_cast<long long>(completed)),
                     Table::fmt_int(static_cast<long long>(relayed)),
                     Table::fmt_int(static_cast<long long>(two_hop)),
                     Table::fmt_int(static_cast<long long>(two_hop_done))});

  // Explicit: the caller dictates a two-relay chain (CallSpec::via_route,
  // the sim twin of asap-relay's --via-peer), exercising ViaSetup and
  // hop-by-hop forwarding deterministically.
  auto via_hosts = relay::dedicated_nodes(today->relay_directory(), 16);
  std::size_t ecalls = 0, edone = 0, erelayed = 0, etwo = 0, etwo_done = 0;
  for (const auto& s : workload.latent) {
    if (ecalls >= 5) break;
    core::CallSpec spec;
    spec.caller = s.caller;
    spec.callee = s.callee;
    spec.voice_duration_ms = 200.0;
    for (HostId h : via_hosts) {
      if (h == s.caller || h == s.callee) continue;
      spec.via_route.push_back(h);
      if (spec.via_route.size() == 2) break;
    }
    if (spec.via_route.size() < 2) continue;
    ++ecalls;
    auto outcome = core::run_call(system, spec);
    if (outcome.completed) ++edone;
    if (outcome.used_relay) ++erelayed;
    if (outcome.used_relay && outcome.relay.is_two_hop()) {
      ++etwo;
      if (outcome.completed) ++etwo_done;
    }
  }
  via_table.add_row({"explicit", Table::fmt_int(static_cast<long long>(ecalls)),
                     Table::fmt_int(static_cast<long long>(edone)),
                     Table::fmt_int(static_cast<long long>(erelayed)),
                     Table::fmt_int(static_cast<long long>(etwo)),
                     Table::fmt_int(static_cast<long long>(etwo_done))});
  via_table.print();
  std::printf(
      "Two-hop routes ride the ViaSetup session-setup frame; asap-relay daemons\n"
      "forward it hop by hop on the socket datapath (tests/integration).\n");
  return 0;
}
