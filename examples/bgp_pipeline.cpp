// BGP data pipeline demo (the paper's Sec. 3.1 plumbing): build a RIB as
// seen from an observer AS, serialize it to the text wire format, parse it
// back, derive the prefix->origin-AS table, extract AS links, run Gao's
// relationship inference on the AS paths, and check the inferred annotation
// against the generator's ground truth. Also applies a couple of BGP
// updates to show RIB maintenance.
#include <cstdio>

#include "astopo/bgp_table.h"
#include "astopo/gao_inference.h"
#include "astopo/topology_gen.h"

using namespace asap;
using namespace asap::astopo;

int main() {
  Rng rng(5);
  TopologyParams topo_params;
  topo_params.total_as = 400;
  Topology topo = generate_topology(topo_params, rng);
  std::printf("ground truth: %zu ASes, %zu links\n", topo.graph.as_count(),
              topo.graph.edge_count());

  // Allocate prefixes and build the RIB as observed from a stub AS.
  PrefixAllocationParams alloc_params;
  auto alloc = allocate_prefixes(topo.graph, topo.stubs, alloc_params, rng);
  AsId observer = topo.stubs.front();
  BgpRib rib = build_rib(topo.graph, alloc, observer);
  std::printf("RIB at observer ASN %u: %zu entries\n", topo.graph.node(observer).asn,
              rib.size());

  // Serialize -> parse round trip.
  std::string text = rib.serialize();
  auto parsed = BgpRib::parse(text);
  if (!parsed) {
    std::fprintf(stderr, "RIB parse failed: %s\n", parsed.error().message.c_str());
    return 1;
  }
  std::printf("serialized %.1f KB, re-parsed %zu entries\n",
              static_cast<double>(text.size()) / 1024.0, parsed->size());

  // Prefix -> origin lookups via the longest-prefix-match trie.
  const auto& [first_prefix, first_origin] = alloc.prefixes.front();
  Ipv4Addr inside(first_prefix.address().bits() | 1);
  std::printf("LPM: %s -> origin ASN %u (expected %u)\n", inside.to_string().c_str(),
              parsed->origin_of(inside), topo.graph.node(first_origin).asn);

  // Apply updates: withdraw one prefix, announce it from a new path.
  BgpUpdate withdraw{BgpUpdate::Kind::kWithdraw, first_prefix, {}};
  parsed->apply(withdraw);
  std::printf("after withdraw: origin_of = %u (0 = no route)\n", parsed->origin_of(inside));
  auto reannounce = parse_update("A|" + first_prefix.to_string() + "|64512 64513");
  parsed->apply(*reannounce);
  std::printf("after re-announce: origin_of = %u\n", parsed->origin_of(inside));

  // AS-link extraction + Gao relationship inference on the original RIB.
  auto links = rib.extract_links();
  auto inferred = infer_relationships(rib.distinct_paths());
  double accuracy = annotation_accuracy(topo.graph, inferred.graph);
  std::printf("\nextracted %zu AS links from AS paths\n", links.size());
  std::printf("Gao inference: %zu p2c, %zu peer, %zu sibling edges; accuracy vs truth: "
              "%.1f%%\n",
              inferred.provider_customer_edges, inferred.peer_edges, inferred.sibling_edges,
              100.0 * accuracy);
  return 0;
}
