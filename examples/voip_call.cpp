// Full protocol walk-through: joins every peer through the bootstraps, then
// places calls over the discrete-event network — including one with an
// injected surrogate failure to show the election/failover path — and
// reports observed setup times, relay choices and message counts.
#include <cstdio>

#include "core/protocol.h"
#include "population/session_gen.h"
#include "population/world.h"

using namespace asap;

int main() {
  population::WorldParams params;
  params.seed = 7;
  params.topo.total_as = 600;
  params.pop.host_as_count = 150;
  params.pop.total_peers = 3000;
  population::World world(params);

  core::AsapParams asap_params;
  core::AsapSystem system(world, asap_params, /*bootstrap_count=*/2);
  system.join_all();
  std::printf("joined %zu peers; join+publish messages: %llu\n", world.pop().peer_count(),
              static_cast<unsigned long long>(
                  system.counter().count(sim::MessageCategory::kJoin) +
                  system.counter().count(sim::MessageCategory::kPublish)));

  Rng rng = world.fork_rng(11);
  auto sessions = population::generate_sessions(world, 5000, rng);
  auto latent = population::latent_sessions(sessions);
  std::printf("workload: %zu sessions, %zu latent\n", sessions.size(), latent.size());

  // A couple of ordinary calls: one direct-quality, one latent.
  for (const auto* s : {sessions.empty() ? nullptr : &sessions.front(),
                        latent.empty() ? nullptr : &latent.front()}) {
    if (s == nullptr) continue;
    auto outcome = core::run_call(system, s->caller, s->callee, /*voice_duration_ms=*/400.0);
    std::printf("\ncall: direct RTT (ping) %.1f ms -> %s\n", outcome.direct_rtt_ms,
                outcome.used_relay ? "relayed" : "direct");
    if (outcome.used_relay) {
      std::printf("  relay path RTT %.1f ms\n", outcome.relay.rtt_ms);
    }
    std::printf("  setup %.1f ms | control msgs %llu | voice %u/%u delivered | "
                "mean one-way %.1f ms\n",
                outcome.setup_time_ms,
                static_cast<unsigned long long>(outcome.control_messages),
                outcome.voice_packets_received, outcome.voice_packets_sent,
                outcome.mean_voice_one_way_ms);
  }

  // Failover demonstration: crash the caller's surrogate mid-system, then
  // call again from a fresh host of that cluster.
  if (!latent.empty()) {
    const auto& s = latent.back();
    ClusterId cluster = world.pop().peer(s.caller).cluster;
    std::printf("\ninjecting surrogate failure in cluster %u ...\n", cluster.value());
    system.fail_surrogate(cluster);
    auto outcome = core::run_call(system, s.caller, s.callee, 200.0);
    std::printf("post-failure call: completed=%s used_relay=%s setup %.1f ms\n",
                outcome.completed ? "yes" : "no", outcome.used_relay ? "yes" : "no",
                outcome.setup_time_ms);
    std::printf("surrogate elections: %llu, timeouts observed: %llu\n",
                static_cast<unsigned long long>(
                    system.metrics().value("bootstrap.surrogates_elected")),
                static_cast<unsigned long long>(
                    system.metrics().value("host.surrogate_timeouts")));
  }
  return 0;
}
