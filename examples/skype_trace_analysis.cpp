// Trace tooling demo: generate a Skype-like session, write both end hosts'
// captures as real pcap files (openable in Wireshark/tcpdump), read them
// back, and run the analyzer on the round-tripped data — the paper's
// Section-5 pipeline end to end.
#include <cstdio>

#include "population/session_gen.h"
#include "population/world.h"
#include "trace/analyzer.h"
#include "trace/pcapio.h"
#include "trace/skype_model.h"

using namespace asap;

int main() {
  population::WorldParams params;
  params.seed = 17;
  params.topo.total_as = 600;
  params.pop.host_as_count = 150;
  params.pop.total_peers = 3000;
  population::World world(params);

  // A latent session makes for an interesting trace (relays get used).
  Rng rng = world.fork_rng(21);
  auto sessions = population::generate_sessions(world, 5000, rng);
  auto latent = population::latent_sessions(sessions);
  const population::Session& s = latent.empty() ? sessions.front() : latent.front();

  trace::SkypeModelParams model_params;
  auto session = trace::generate_skype_session(world, s.caller, s.callee, model_params, rng);
  std::printf("generated session: caller %s callee %s, %zu + %zu packets\n",
              session.capture.caller_ip.to_string().c_str(),
              session.capture.callee_ip.to_string().c_str(),
              session.capture.caller_side.size(), session.capture.callee_side.size());

  // Round-trip through real pcap files.
  const char* caller_pcap = "skype_caller.pcap";
  const char* callee_pcap = "skype_callee.pcap";
  if (!trace::write_pcap_file(caller_pcap, session.capture.caller_side) ||
      !trace::write_pcap_file(callee_pcap, session.capture.callee_side)) {
    std::fprintf(stderr, "failed to write pcap files\n");
    return 1;
  }
  auto caller_back = trace::read_pcap_file(caller_pcap);
  auto callee_back = trace::read_pcap_file(callee_pcap);
  if (!caller_back || !callee_back) {
    std::fprintf(stderr, "failed to read pcap files back\n");
    return 1;
  }
  std::printf("pcap round trip: %zu / %zu packets re-read (%s, %s)\n", caller_back->size(),
              callee_back->size(), caller_pcap, callee_pcap);

  trace::TwoSidedCapture reloaded;
  reloaded.caller_ip = session.capture.caller_ip;
  reloaded.callee_ip = session.capture.callee_ip;
  reloaded.caller_side = *caller_back;
  reloaded.callee_side = *callee_back;
  reloaded.duration_s = session.capture.duration_s;

  auto analysis = trace::analyze_session(reloaded);
  std::printf("\nanalysis of reloaded capture:\n");
  std::printf("  forward major: %s (share %.1f%%), %zu switches, stabilization %.1f s\n",
              analysis.forward.usage.empty()
                  ? "?"
                  : (analysis.forward.major().direct
                         ? "direct"
                         : analysis.forward.major().next_hop.to_string().c_str()),
              100.0 * analysis.forward.major_share, analysis.forward.switches,
              analysis.forward.stabilization_s);
  std::printf("  asymmetric=%s two-hop=%s probed nodes=%zu (after stabilization: %zu)\n",
              analysis.asymmetric ? "yes" : "no", analysis.forward_two_hop ? "yes" : "no",
              analysis.probed_nodes, analysis.probes_after_stabilization);

  // Limit-2 check: probed relays sharing an AS.
  const auto& pop = world.pop();
  auto groups = trace::same_group_probes(reloaded, [&](Ipv4Addr ip) -> std::uint64_t {
    auto cluster = pop.cluster_of_ip(ip);
    return cluster ? pop.cluster(*cluster).as.value() + 1 : 0;
  });
  std::printf("  same-AS probe groups: %zu\n", groups.size());
  return 0;
}
