# Empty dependencies file for skype_trace_analysis.
# This may be replaced when dependencies are built.
