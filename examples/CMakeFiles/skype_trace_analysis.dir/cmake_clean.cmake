file(REMOVE_RECURSE
  "CMakeFiles/skype_trace_analysis.dir/skype_trace_analysis.cpp.o"
  "CMakeFiles/skype_trace_analysis.dir/skype_trace_analysis.cpp.o.d"
  "skype_trace_analysis"
  "skype_trace_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skype_trace_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
