# Empty dependencies file for measurement_pipeline.
# This may be replaced when dependencies are built.
