file(REMOVE_RECURSE
  "CMakeFiles/measurement_pipeline.dir/measurement_pipeline.cpp.o"
  "CMakeFiles/measurement_pipeline.dir/measurement_pipeline.cpp.o.d"
  "measurement_pipeline"
  "measurement_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measurement_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
