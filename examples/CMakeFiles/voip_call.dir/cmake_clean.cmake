file(REMOVE_RECURSE
  "CMakeFiles/voip_call.dir/voip_call.cpp.o"
  "CMakeFiles/voip_call.dir/voip_call.cpp.o.d"
  "voip_call"
  "voip_call.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voip_call.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
