# Empty dependencies file for voip_call.
# This may be replaced when dependencies are built.
