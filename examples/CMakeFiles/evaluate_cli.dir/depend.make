# Empty dependencies file for evaluate_cli.
# This may be replaced when dependencies are built.
