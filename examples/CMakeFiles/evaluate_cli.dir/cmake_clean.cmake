file(REMOVE_RECURSE
  "CMakeFiles/evaluate_cli.dir/evaluate_cli.cpp.o"
  "CMakeFiles/evaluate_cli.dir/evaluate_cli.cpp.o.d"
  "evaluate_cli"
  "evaluate_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evaluate_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
