file(REMOVE_RECURSE
  "CMakeFiles/bgp_pipeline.dir/bgp_pipeline.cpp.o"
  "CMakeFiles/bgp_pipeline.dir/bgp_pipeline.cpp.o.d"
  "bgp_pipeline"
  "bgp_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
