
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/bgp_pipeline.cpp" "examples/CMakeFiles/bgp_pipeline.dir/bgp_pipeline.cpp.o" "gcc" "examples/CMakeFiles/bgp_pipeline.dir/bgp_pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/relay/CMakeFiles/asap_relay.dir/DependInfo.cmake"
  "/root/repo/src/trace/CMakeFiles/asap_trace.dir/DependInfo.cmake"
  "/root/repo/src/core/CMakeFiles/asap_core.dir/DependInfo.cmake"
  "/root/repo/src/sim/CMakeFiles/asap_sim.dir/DependInfo.cmake"
  "/root/repo/src/population/CMakeFiles/asap_population.dir/DependInfo.cmake"
  "/root/repo/src/voip/CMakeFiles/asap_voip.dir/DependInfo.cmake"
  "/root/repo/src/netmodel/CMakeFiles/asap_netmodel.dir/DependInfo.cmake"
  "/root/repo/src/astopo/CMakeFiles/asap_astopo.dir/DependInfo.cmake"
  "/root/repo/src/common/CMakeFiles/asap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
