# Empty dependencies file for bgp_pipeline.
# This may be replaced when dependencies are built.
