// Quickstart: build a small synthetic Internet, stand up the ASAP protocol
// (bootstraps, surrogates, end hosts), and select a relay for one latent
// VoIP session — the 60-second tour of the public API.
#include <cstdio>

#include "core/close_cluster.h"
#include "core/select_relay.h"
#include "population/session_gen.h"
#include "population/world.h"
#include "voip/emodel.h"

using namespace asap;

int main() {
  // 1. A world: AS topology + latency model + BGP-policy path oracle +
  //    peer population, all derived deterministically from one seed.
  population::WorldParams params;
  params.seed = 1;
  params.topo.total_as = 800;
  params.pop.host_as_count = 200;
  params.pop.total_peers = 5000;
  population::World world(params);
  std::printf("world: %zu ASes, %zu links, %zu clusters, %zu peers\n",
              world.graph().as_count(), world.graph().edge_count(),
              world.pop().populated_clusters().size(), world.pop().peer_count());

  // 2. A workload: random calling sessions; keep one whose direct IP path
  //    misses the 300 ms VoIP quality bar.
  Rng rng = world.fork_rng(2);
  auto sessions = population::generate_sessions(world, 20000, rng);
  auto latent = population::latent_sessions(sessions);
  std::printf("sessions: %zu sampled, %zu latent (direct RTT > 300 ms)\n", sessions.size(),
              latent.size());
  if (latent.empty()) {
    std::printf("no latent sessions in this small world; done.\n");
    return 0;
  }
  // 3. ASAP: close cluster sets (valley-free BFS, Fig. 9) + relay selection
  //    (close-set intersection, Fig. 10). Try latent sessions until one
  //    yields relay candidates (in a world this small, some corners of the
  //    map have none).
  core::AsapParams asap_params;
  core::CloseSetCache cache(world, asap_params);
  population::Session session = latent.front();
  core::SelectRelayResult result;
  for (const auto& candidate : latent) {
    result = core::select_close_relay(world, cache, candidate, rng);
    session = candidate;
    if (result.best.found()) break;
  }
  std::printf("picked session: direct RTT %.1f ms\n", session.direct_rtt_ms);
  std::printf("ASAP: %llu quality relay paths, %llu control messages\n",
              static_cast<unsigned long long>(result.quality_paths()),
              static_cast<unsigned long long>(result.messages));
  if (result.best.found()) {
    std::printf("best relay path: RTT %.1f ms (%s), loss %.3f%%\n", result.best.rtt_ms,
                result.best.is_two_hop() ? "two-hop" : "one-hop", 100.0 * result.best.loss);
    // 4. Speech quality of the chosen path under the ITU E-Model.
    voip::EModel emodel(voip::kG729aVad);
    std::printf("MOS via relay: %.2f (direct path: %.2f)\n",
                emodel.mos_for_rtt(result.best.rtt_ms, result.best.loss),
                emodel.mos_for_rtt(session.direct_rtt_ms, session.direct_loss));
  } else {
    std::printf("no relay met the threshold for this session\n");
  }
  return 0;
}
