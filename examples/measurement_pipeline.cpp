// The paper's Fig. 1 measurement procedure, end to end:
//
//   Gnutella crawl -> IP pool -> BGP tables -> prefix/origin extraction ->
//   AS-level cluster identification -> delegate selection -> King-based
//   pairwise delegate latency measurement -> routing benchmark.
//
// Our synthetic substitutes slot into the same pipeline: the peer
// population plays the crawler output, build_rib() the RouteViews dump,
// and the King estimator the DNS-based measurements (with its ~30%
// non-response rate). The output is the Section-3 "routing benchmark":
// measured delegate RTTs and the direct-vs-relay comparison.
#include <cstdio>

#include "astopo/bgp_table.h"
#include "population/measurement.h"
#include "population/session_gen.h"
#include "common/stats.h"
#include "common/table.h"

using namespace asap;

int main() {
  // Stage 1-2: the "crawl" (peer population) and the BGP snapshot.
  population::WorldParams params;
  params.seed = 31;
  params.topo.total_as = 1200;
  params.pop.host_as_count = 300;
  params.pop.total_peers = 8000;
  population::World world(params);
  std::printf("[crawl] %zu peer IPs collected\n", world.pop().peer_count());

  astopo::BgpRib rib = astopo::build_rib(world.graph(), world.pop().prefix_allocation(),
                                         world.topo().stubs.front());
  std::printf("[bgp] RIB with %zu entries; %zu AS links extracted\n", rib.size(),
              rib.extract_links().size());

  // Stage 3: group the IP pool by longest matched prefix (the paper: of
  // 269,413 IPs, 103,625 matched prefixes in 1,461 ASes).
  std::size_t matched = 0;
  for (std::uint32_t i = 0; i < world.pop().peer_count(); ++i) {
    if (rib.origin_of(world.pop().peer_ip(HostId(i))) != 0) ++matched;
  }
  std::printf("[grouping] %zu/%zu IPs matched a RIB prefix -> %zu clusters in %zu ASes\n",
              matched, world.pop().peer_count(),
              world.pop().populated_clusters().size(), world.pop().host_ases().size());

  // Stage 4: one delegate per cluster; King-style pairwise measurements.
  const auto& clusters = world.pop().populated_clusters();
  std::size_t responded = 0;
  std::size_t queried = 0;
  OnlineStats measured;
  Rng rng = world.fork_rng(5);
  for (std::size_t i = 0; i < 4000; ++i) {
    ClusterId a = clusters[rng.index_of(clusters)];
    ClusterId b = clusters[rng.index_of(clusters)];
    if (a == b) continue;
    ++queried;
    if (auto rtt = population::measure_delegate_rtt(world, a, b)) {
      ++responded;
      measured.add(*rtt);
    }
  }
  std::printf("[king] %zu/%zu delegate pairs responded (%.0f%%); measured RTT mean %.1f ms "
              "min %.1f max %.1f\n",
              responded, queried, 100.0 * static_cast<double>(responded) / queried,
              measured.mean(), measured.min(), measured.max());

  // Stage 5: the routing benchmark — direct vs optimal one-hop relay.
  Rng sess_rng = world.fork_rng(6);
  auto sessions = population::generate_sessions(world, 5000, sess_rng);
  auto latent = population::latent_sessions(sessions);
  population::OneHopScanner scanner(world);
  std::size_t fixed = 0;
  for (const auto& s : latent) {
    if (scanner.best(s).rtt_ms < kQualityRttThresholdMs) ++fixed;
  }
  std::printf("[benchmark] %zu sessions, %zu latent (>300 ms); optimal one-hop fixes "
              "%zu of them\n",
              sessions.size(), latent.size(), fixed);
  std::printf("pipeline complete — this is the technical foundation Sec. 3 builds for "
              "peer-relayed VoIP.\n");
  return 0;
}
