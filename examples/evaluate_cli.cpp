// evaluate_cli — a command-line driver for custom evaluation runs, the tool
// a downstream user reaches for before wiring the library into their own
// code:
//
//   evaluate_cli [--config FILE] [--save-config FILE]
//                [--seed N] [--ases N] [--host-ases N] [--peers N]
//                [--sessions N] [--k N] [--latt MS] [--sizet N]
//                [--threads N] [--no-opt] [--all-sessions]
//
// A config file (key = value; see core/config_io.h) is applied first;
// explicit flags override it. --save-config writes the effective
// configuration back out as a reproducible experiment description.
//
// Builds the world, samples the workload, runs every relay-selection method
// and prints the comparative summary (quality paths / shortest RTT / MOS /
// messages).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/config_io.h"
#include "relay/evaluation.h"
#include "common/stats.h"
#include "common/table.h"

using namespace asap;

namespace {

struct CliOptions {
  std::uint64_t seed = 20050926;
  std::size_t ases = 2000;
  std::size_t host_ases = 500;
  std::size_t peers = 10000;
  std::size_t sessions = 30000;
  core::AsapParams asap;
  std::size_t threads = 1;  // 0 = hardware concurrency
  bool include_opt = true;
  bool latent_only = true;
  std::string save_config_path;
  bool ok = true;
};

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--config FILE] [--save-config FILE]\n"
               "          [--seed N] [--ases N] [--host-ases N] [--peers N]\n"
               "          [--sessions N] [--k N] [--latt MS] [--sizet N]\n"
               "          [--threads N] [--no-opt] [--all-sessions]\n",
               argv0);
}

CliOptions parse_args(int argc, char** argv) {
  CliOptions opts;
  auto next_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      opts.ok = false;
      return "0";
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--config") == 0) {
      auto loaded = core::load_config_file(next_value(i));
      if (!loaded) {
        std::fprintf(stderr, "%s\n", loaded.error().message.c_str());
        opts.ok = false;
        continue;
      }
      opts.seed = loaded->world.seed;
      opts.ases = loaded->world.topo.total_as;
      opts.host_ases = loaded->world.pop.host_as_count;
      opts.peers = loaded->world.pop.total_peers;
      opts.sessions = loaded->sessions;
      opts.asap = loaded->asap;
    } else if (std::strcmp(arg, "--save-config") == 0) {
      opts.save_config_path = next_value(i);
    } else if (std::strcmp(arg, "--seed") == 0) {
      opts.seed = std::strtoull(next_value(i), nullptr, 10);
    } else if (std::strcmp(arg, "--ases") == 0) {
      opts.ases = std::strtoull(next_value(i), nullptr, 10);
    } else if (std::strcmp(arg, "--host-ases") == 0) {
      opts.host_ases = std::strtoull(next_value(i), nullptr, 10);
    } else if (std::strcmp(arg, "--peers") == 0) {
      opts.peers = std::strtoull(next_value(i), nullptr, 10);
    } else if (std::strcmp(arg, "--sessions") == 0) {
      opts.sessions = std::strtoull(next_value(i), nullptr, 10);
    } else if (std::strcmp(arg, "--k") == 0) {
      opts.asap.k = static_cast<std::uint8_t>(std::strtoul(next_value(i), nullptr, 10));
    } else if (std::strcmp(arg, "--latt") == 0) {
      opts.asap.lat_threshold_ms = std::strtod(next_value(i), nullptr);
    } else if (std::strcmp(arg, "--sizet") == 0) {
      opts.asap.size_threshold =
          static_cast<std::uint32_t>(std::strtoul(next_value(i), nullptr, 10));
    } else if (std::strcmp(arg, "--threads") == 0) {
      opts.threads = std::strtoull(next_value(i), nullptr, 10);
    } else if (std::strcmp(arg, "--no-opt") == 0) {
      opts.include_opt = false;
    } else if (std::strcmp(arg, "--all-sessions") == 0) {
      opts.latent_only = false;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      opts.ok = false;
    }
  }
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts = parse_args(argc, argv);
  if (!opts.ok) {
    usage(argv[0]);
    return 2;
  }

  population::WorldParams params;
  params.seed = opts.seed;
  params.topo.total_as = opts.ases;
  params.pop.host_as_count = opts.host_ases;
  params.pop.total_peers = opts.peers;
  if (!opts.save_config_path.empty()) {
    core::ExperimentConfig config;
    config.world = params;
    config.asap = opts.asap;
    config.sessions = opts.sessions;
    if (!core::save_config_file(opts.save_config_path, config)) {
      std::fprintf(stderr, "cannot write %s\n", opts.save_config_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", opts.save_config_path.c_str());
  }
  population::World world(params);
  std::printf("world: seed=%llu ases=%zu links=%zu clusters=%zu peers=%zu\n",
              static_cast<unsigned long long>(opts.seed), world.graph().as_count(),
              world.graph().edge_count(), world.pop().populated_clusters().size(),
              world.pop().peer_count());

  Rng rng = world.fork_rng(42);
  auto sessions = population::generate_sessions(world, opts.sessions, rng);
  auto latent = population::latent_sessions(sessions);
  std::printf("sessions: %zu sampled, %zu latent (>%g ms: %.2f%%)\n", sessions.size(),
              latent.size(), kQualityRttThresholdMs,
              100.0 * static_cast<double>(latent.size()) /
                  static_cast<double>(sessions.size()));

  const auto& eval_set = opts.latent_only ? latent : sessions;
  if (eval_set.empty()) {
    std::printf("nothing to evaluate (no latent sessions); try --all-sessions\n");
    return 0;
  }

  relay::EvaluationConfig config;
  config.asap = opts.asap;
  config.include_opt = opts.include_opt;
  config.threads = opts.threads;
  auto results = relay::evaluate_methods(world, eval_set, config);

  Table table({"method", "quality paths p50", "shortest RTT p50 (ms)", "RTT p90",
               "MOS p10", "messages p50"});
  for (const auto& mr : results) {
    table.add_row({mr.method, Table::fmt(percentile(mr.quality_paths, 50), 0),
                   Table::fmt(percentile(mr.shortest_rtt_ms, 50), 1),
                   Table::fmt(percentile(mr.shortest_rtt_ms, 90), 1),
                   Table::fmt(percentile(mr.highest_mos, 10), 2),
                   Table::fmt(percentile(mr.messages, 50), 0)});
  }
  table.print();
  return 0;
}
