// Bitwise equivalence of the batched selector implementations against
// scalar reference loops (the pre-batching code, reimplemented here on the
// scalar World methods, which are themselves unchanged). Every metric of
// every method must match EXACTLY — EXPECT_EQ on doubles, no tolerance —
// across randomized worlds; this is the contract that keeps Figs. 11-18
// byte-identical.
#include "relay/baselines.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "population/nat.h"
#include "relay/asap_selector.h"
#include "relay/evaluation.h"
#include "voip/quality.h"

namespace asap::relay {
namespace {

population::WorldParams params_for_seed(std::uint64_t seed) {
  population::WorldParams params;
  params.seed = seed;
  params.topo.total_as = 500;
  params.pop.host_as_count = 120;
  params.pop.total_peers = 3000;
  return params;
}

// The pre-batching evaluate_relay_pool, verbatim: scalar relay_rtt_ms per
// candidate, loss recomputed on every new best.
SelectionResult scalar_pool_eval(const population::World& world,
                                 const population::Session& session,
                                 const std::vector<HostId>& pool) {
  SelectionResult result;
  for (HostId relay : pool) {
    if (relay == session.caller || relay == session.callee) continue;
    result.messages += 2;
    if (!population::can_serve_as_relay(world.pop().peer(relay).nat)) continue;
    Millis rtt = world.relay_rtt_ms(session.caller, relay, session.callee);
    if (voip::is_quality_rtt(rtt)) ++result.quality_paths;
    if (rtt < result.shortest_rtt_ms) {
      result.shortest_rtt_ms = rtt;
      result.shortest_loss = world.relay_loss(session.caller, relay, session.callee);
    }
  }
  return result;
}

// The pre-batching dedicated_nodes: stable sort of the populated cluster
// list by AS degree, surrogates of the top `count`.
std::vector<HostId> scalar_dedicated_nodes(const population::World& world,
                                           std::size_t count) {
  const auto& pop = world.pop();
  const auto& graph = world.graph();
  std::vector<ClusterId> clusters = pop.populated_clusters();
  std::stable_sort(clusters.begin(), clusters.end(), [&](ClusterId a, ClusterId b) {
    return graph.degree(pop.cluster(a).as) > graph.degree(pop.cluster(b).as);
  });
  std::vector<HostId> nodes;
  for (ClusterId c : clusters) {
    if (nodes.size() >= count) break;
    nodes.push_back(pop.cluster(c).surrogate);
  }
  return nodes;
}

// The pre-batching OptSelector::select_session: per-cluster delegate
// derivation, scalar host_rtt_ms legs (unreachable legs kept in the beam
// vectors), scalar relay2_rtt_ms for every beam pair.
SelectionResult scalar_opt(const population::World& world,
                           const population::Session& session, std::size_t beam,
                           bool two_hop) {
  const auto& pop = world.pop();
  SelectionResult result;
  ClusterId ca = pop.peer(session.caller).cluster;
  ClusterId cb = pop.peer(session.callee).cluster;

  struct Leg {
    HostId relay;
    Millis rtt_ms;
  };
  std::vector<Leg> caller_legs;
  std::vector<Leg> callee_legs;
  for (ClusterId c : pop.populated_clusters()) {
    if (c == ca || c == cb) continue;
    const auto& cluster = pop.cluster(c);
    if (cluster.relay_capable_members == 0) continue;
    HostId relay = population::can_serve_as_relay(pop.peer(cluster.delegate).nat)
                       ? cluster.delegate
                       : cluster.surrogate;
    Millis leg_a = world.host_rtt_ms(session.caller, relay);
    Millis leg_b = world.host_rtt_ms(relay, session.callee);
    caller_legs.push_back(Leg{relay, leg_a});
    callee_legs.push_back(Leg{relay, leg_b});
    if (leg_a >= kUnreachableMs || leg_b >= kUnreachableMs) continue;
    Millis rtt = leg_a + leg_b + kRelayDelayRttMs;
    if (voip::is_quality_rtt(rtt)) ++result.quality_paths;
    if (rtt < result.shortest_rtt_ms) {
      result.shortest_rtt_ms = rtt;
      result.shortest_loss = world.relay_loss(session.caller, relay, session.callee);
    }
  }

  if (two_hop) {
    auto shortest = [](const Leg& a, const Leg& b) { return a.rtt_ms < b.rtt_ms; };
    std::size_t beam_a = std::min(beam, caller_legs.size());
    std::size_t beam_b = std::min(beam, callee_legs.size());
    std::partial_sort(caller_legs.begin(), caller_legs.begin() + beam_a,
                      caller_legs.end(), shortest);
    std::partial_sort(callee_legs.begin(), callee_legs.begin() + beam_b,
                      callee_legs.end(), shortest);
    for (std::size_t i = 0; i < beam_a; ++i) {
      for (std::size_t j = 0; j < beam_b; ++j) {
        HostId r1 = caller_legs[i].relay;
        HostId r2 = callee_legs[j].relay;
        if (r1 == r2) continue;
        Millis rtt = world.relay2_rtt_ms(session.caller, r1, r2, session.callee);
        if (rtt < result.shortest_rtt_ms) {
          result.shortest_rtt_ms = rtt;
          result.shortest_loss =
              1.0 - (1.0 - world.relay_loss(session.caller, r1, r2)) *
                        (1.0 - world.host_loss(r2, session.callee));
        }
      }
    }
  }

  result.messages = 0;
  return result;
}

void expect_same(const SelectionResult& got, const SelectionResult& want,
                 std::size_t session_index) {
  EXPECT_EQ(got.quality_paths, want.quality_paths) << "session " << session_index;
  EXPECT_EQ(got.shortest_rtt_ms, want.shortest_rtt_ms) << "session " << session_index;
  EXPECT_EQ(got.shortest_loss, want.shortest_loss) << "session " << session_index;
  EXPECT_EQ(got.messages, want.messages) << "session " << session_index;
}

class BatchEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    world = std::make_unique<population::World>(params_for_seed(GetParam()));
    Rng rng = world->fork_rng(1);
    sessions = population::generate_sessions(*world, 300, rng);
  }
  std::unique_ptr<population::World> world;
  std::vector<population::Session> sessions;
};

TEST_P(BatchEquivalenceTest, DediMatchesScalarReference) {
  DediSelector dedi(*world, 40);
  std::vector<HostId> pool = scalar_dedicated_nodes(*world, 40);
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    expect_same(dedi.select_session(sessions[i], i),
                scalar_pool_eval(*world, sessions[i], pool), i);
  }
}

TEST_P(BatchEquivalenceTest, RandMatchesScalarReference) {
  Rng base = world->fork_rng(5);
  RandSelector rand(*world, 120, base);
  const std::size_t peer_count = world->pop().peer_count();
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    Rng rng = base.fork(i);
    std::size_t n = std::min<std::size_t>(120, peer_count);
    std::vector<HostId> pool;
    for (auto idx : rng.sample_indices(peer_count, n)) {
      pool.push_back(HostId(static_cast<std::uint32_t>(idx)));
    }
    expect_same(rand.select_session(sessions[i], i),
                scalar_pool_eval(*world, sessions[i], pool), i);
  }
}

TEST_P(BatchEquivalenceTest, MixMatchesScalarReference) {
  Rng base = world->fork_rng(6);
  MixSelector mix(*world, 30, 70, base);
  const std::size_t peer_count = world->pop().peer_count();
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    Rng rng = base.fork(i);
    std::vector<HostId> pool = scalar_dedicated_nodes(*world, 30);
    std::size_t n = std::min<std::size_t>(70, peer_count);
    for (auto idx : rng.sample_indices(peer_count, n)) {
      pool.push_back(HostId(static_cast<std::uint32_t>(idx)));
    }
    expect_same(mix.select_session(sessions[i], i),
                scalar_pool_eval(*world, sessions[i], pool), i);
  }
}

TEST_P(BatchEquivalenceTest, OptMatchesScalarReference) {
  OptSelector opt(*world, 64);
  OptSelector one_hop(*world, 64, false);
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    expect_same(opt.select_session(sessions[i], i),
                scalar_opt(*world, sessions[i], 64, true), i);
    expect_same(one_hop.select_session(sessions[i], i),
                scalar_opt(*world, sessions[i], 64, false), i);
  }
}

// All five methods through the real pipeline: results must not depend on
// the thread count (the batched layer and the prewarmed oracle cache are
// shared mutable state; position-indexed outputs keep them deterministic).
TEST_P(BatchEquivalenceTest, EvaluationIsThreadCountInvariant) {
  EvaluationConfig config;
  config.include_opt = true;
  config.threads = 1;
  auto serial = evaluate_methods(*world, sessions, config);
  config.threads = 4;
  auto parallel = evaluate_methods(*world, sessions, config);
  ASSERT_EQ(serial.size(), parallel.size());
  ASSERT_EQ(serial.size(), 5u);  // DEDI, RAND, MIX, ASAP, OPT
  for (std::size_t m = 0; m < serial.size(); ++m) {
    EXPECT_EQ(serial[m].method, parallel[m].method);
    EXPECT_EQ(serial[m].quality_paths, parallel[m].quality_paths);
    EXPECT_EQ(serial[m].shortest_rtt_ms, parallel[m].shortest_rtt_ms);
    EXPECT_EQ(serial[m].highest_mos, parallel[m].highest_mos);
    EXPECT_EQ(serial[m].messages, parallel[m].messages);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchEquivalenceTest,
                         ::testing::Values(131ULL, 424242ULL));

}  // namespace
}  // namespace asap::relay
