#include "relay/evaluation.h"

#include <gtest/gtest.h>

#include "common/stats.h"

namespace asap::relay {
namespace {

population::WorldParams small_params() {
  population::WorldParams params;
  params.seed = 141;
  params.topo.total_as = 500;
  params.pop.host_as_count = 120;
  params.pop.total_peers = 3000;
  return params;
}

struct EvaluationFixture : public ::testing::Test {
  void SetUp() override {
    world = std::make_unique<population::World>(small_params());
    Rng rng = world->fork_rng(1);
    auto sessions = population::generate_sessions(*world, 5000, rng);
    latent = population::latent_sessions(sessions);
    if (latent.size() > 60) latent.resize(60);
  }
  std::unique_ptr<population::World> world;
  std::vector<population::Session> latent;
};

TEST_F(EvaluationFixture, SelectorSuiteHasExpectedMethods) {
  EvaluationConfig config;
  auto selectors = make_selectors(*world, config);
  ASSERT_EQ(selectors.size(), 5u);
  EXPECT_EQ(selectors[0]->name(), "DEDI");
  EXPECT_EQ(selectors[1]->name(), "RAND");
  EXPECT_EQ(selectors[2]->name(), "MIX");
  EXPECT_EQ(selectors[3]->name(), "ASAP");
  EXPECT_EQ(selectors[4]->name(), "OPT");
  config.include_opt = false;
  EXPECT_EQ(make_selectors(*world, config).size(), 4u);
}

TEST_F(EvaluationFixture, ResultsHaveOneEntryPerSession) {
  if (latent.empty()) GTEST_SKIP();
  EvaluationConfig config;
  auto results = evaluate_methods(*world, latent, config);
  for (const auto& mr : results) {
    EXPECT_EQ(mr.quality_paths.size(), latent.size());
    EXPECT_EQ(mr.shortest_rtt_ms.size(), latent.size());
    EXPECT_EQ(mr.highest_mos.size(), latent.size());
    EXPECT_EQ(mr.messages.size(), latent.size());
    for (double mos : mr.highest_mos) {
      EXPECT_GE(mos, 1.0);
      EXPECT_LE(mos, 4.5);
    }
  }
}

TEST_F(EvaluationFixture, ShortestRttNeverExceedsDirect) {
  if (latent.empty()) GTEST_SKIP();
  EvaluationConfig config;
  auto results = evaluate_methods(*world, latent, config);
  for (const auto& mr : results) {
    for (std::size_t i = 0; i < latent.size(); ++i) {
      EXPECT_LE(mr.shortest_rtt_ms[i], latent[i].direct_rtt_ms + 1e-6);
    }
  }
}

TEST_F(EvaluationFixture, PaperOrderingHolds) {
  // The headline comparative result: ASAP finds orders of magnitude more
  // quality paths than the fixed/random baselines and tracks OPT's shortest
  // RTTs.
  if (latent.size() < 10) GTEST_SKIP();
  EvaluationConfig config;
  auto results = evaluate_methods(*world, latent, config);
  auto median = [](std::vector<double> v) { return percentile(std::move(v), 50); };
  double asap_paths = 0.0;
  double baseline_paths = 0.0;
  double asap_rtt = 0.0;
  double opt_rtt = 0.0;
  double dedi_rtt = 0.0;
  for (const auto& mr : results) {
    if (mr.method == "ASAP") {
      asap_paths = median(mr.quality_paths);
      asap_rtt = median(mr.shortest_rtt_ms);
    }
    if (mr.method == "DEDI") {
      baseline_paths = median(mr.quality_paths);
      dedi_rtt = median(mr.shortest_rtt_ms);
    }
    if (mr.method == "OPT") opt_rtt = median(mr.shortest_rtt_ms);
  }
  EXPECT_GT(asap_paths, baseline_paths * 5) << "ASAP must dominate quality-path counts";
  EXPECT_LE(asap_rtt, dedi_rtt + 1e-6) << "ASAP at least matches DEDI";
  // OPT iterates cluster delegates while ASAP relays through surrogates
  // (different hosts, different access delays), so allow a small slack on
  // "OPT is the lower bound".
  EXPECT_LE(opt_rtt, asap_rtt * 1.05 + 1.0) << "OPT is the (near) lower bound";
  EXPECT_LT(asap_rtt, opt_rtt * 1.3) << "ASAP tracks OPT within ~30%";
}

TEST_F(EvaluationFixture, BestPathLossTieBreakFavorsDirect) {
  // Regression: at equal RTT the direct path is the natural choice, so its
  // loss must be reported — the old `<=` comparison leaked the relay's loss
  // into the loss/MOS curves whenever the two paths tied.
  EXPECT_DOUBLE_EQ(best_path_loss(250.0, 0.04, 250.0, 0.001), 0.001);
  // Strictly faster relay wins and reports its own loss.
  EXPECT_DOUBLE_EQ(best_path_loss(200.0, 0.04, 250.0, 0.001), 0.04);
  // Slower relay (or none found, kUnreachableMs) falls back to direct.
  EXPECT_DOUBLE_EQ(best_path_loss(300.0, 0.04, 250.0, 0.001), 0.001);
  EXPECT_DOUBLE_EQ(best_path_loss(kUnreachableMs, 1.0, 250.0, 0.001), 0.001);
}

TEST_F(EvaluationFixture, ResultsAreBitIdenticalForAnyThreadCount) {
  if (latent.empty()) GTEST_SKIP();
  EvaluationConfig config;
  config.threads = 1;
  auto serial = evaluate_methods(*world, latent, config);
  for (std::size_t threads : {2u, 8u}) {
    config.threads = threads;
    auto parallel = evaluate_methods(*world, latent, config);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t m = 0; m < serial.size(); ++m) {
      EXPECT_EQ(parallel[m].method, serial[m].method);
      // Bit-identical metric vectors: == on doubles, no tolerance.
      EXPECT_EQ(parallel[m].quality_paths, serial[m].quality_paths)
          << serial[m].method << " @ " << threads << " threads";
      EXPECT_EQ(parallel[m].shortest_rtt_ms, serial[m].shortest_rtt_ms)
          << serial[m].method << " @ " << threads << " threads";
      EXPECT_EQ(parallel[m].highest_mos, serial[m].highest_mos)
          << serial[m].method << " @ " << threads << " threads";
      EXPECT_EQ(parallel[m].messages, serial[m].messages)
          << serial[m].method << " @ " << threads << " threads";
    }
  }
}

TEST_F(EvaluationFixture, RepeatedRunsAreDeterministic) {
  if (latent.empty()) GTEST_SKIP();
  EvaluationConfig config;
  config.threads = 4;
  auto a = evaluate_methods(*world, latent, config);
  auto b = evaluate_methods(*world, latent, config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t m = 0; m < a.size(); ++m) {
    EXPECT_EQ(a[m].quality_paths, b[m].quality_paths);
    EXPECT_EQ(a[m].shortest_rtt_ms, b[m].shortest_rtt_ms);
    EXPECT_EQ(a[m].highest_mos, b[m].highest_mos);
    EXPECT_EQ(a[m].messages, b[m].messages);
  }
}

TEST_F(EvaluationFixture, FixedLossConfigControlsMos) {
  if (latent.empty()) GTEST_SKIP();
  EvaluationConfig fixed;
  fixed.fixed_loss_for_mos = true;
  fixed.fixed_loss = 0.30;  // absurd loss tanks every MOS
  auto results = evaluate_methods(*world, latent, fixed);
  for (const auto& mr : results) {
    for (double mos : mr.highest_mos) EXPECT_LT(mos, 2.0);
  }
}

}  // namespace
}  // namespace asap::relay
