#include "relay/baselines.h"

#include <gtest/gtest.h>

#include "population/nat.h"
#include "relay/asap_selector.h"
#include "voip/quality.h"

namespace asap::relay {
namespace {

population::WorldParams small_params() {
  population::WorldParams params;
  params.seed = 131;
  params.topo.total_as = 500;
  params.pop.host_as_count = 120;
  params.pop.total_peers = 3000;
  return params;
}

struct BaselineFixture : public ::testing::Test {
  void SetUp() override {
    world = std::make_unique<population::World>(small_params());
    Rng rng = world->fork_rng(1);
    sessions = population::generate_sessions(*world, 2000, rng);
    latent = population::latent_sessions(sessions);
  }
  std::unique_ptr<population::World> world;
  std::vector<population::Session> sessions;
  std::vector<population::Session> latent;
};

TEST_F(BaselineFixture, DedicatedNodesAreLargestDegreeClusters) {
  auto nodes = dedicated_nodes(world->relay_directory(), 10);
  ASSERT_EQ(nodes.size(), 10u);
  const auto& pop = world->pop();
  const auto& graph = world->graph();
  // Every selected node's cluster AS degree is >= that of any non-selected
  // populated cluster... verify against the minimum selected degree.
  std::size_t min_selected = SIZE_MAX;
  std::set<std::uint32_t> selected_clusters;
  for (HostId h : nodes) {
    selected_clusters.insert(pop.peer(h).cluster.value());
    min_selected = std::min(min_selected, graph.degree(pop.peer(h).as));
  }
  std::size_t better_unselected = 0;
  for (ClusterId c : pop.populated_clusters()) {
    if (selected_clusters.contains(c.value())) continue;
    if (graph.degree(pop.cluster(c).as) > min_selected) ++better_unselected;
  }
  EXPECT_EQ(better_unselected, 0u);
}

// Pool evaluation is internal to the selectors now (PR 10 unification);
// verify its counting contract through DEDI, whose pool is reproducible via
// the public dedicated_nodes().
TEST_F(BaselineFixture, DediPoolCountsQualityAndMessages) {
  const auto& s = sessions.front();
  auto pool = dedicated_nodes(world->relay_directory(), 30);
  DediSelector dedi(*world, 30);
  auto result = dedi.select(s);
  std::uint64_t expected_messages = 0;
  std::uint64_t quality = 0;
  Millis best = kUnreachableMs;
  const auto& pop = world->pop();
  for (HostId r : pool) {
    if (r == s.caller || r == s.callee) continue;
    expected_messages += 2;
    if (!population::can_serve_as_relay(pop.peer_nat(r))) continue;
    Millis rtt = world->relay_rtt_ms(s.caller, r, s.callee);
    if (voip::is_quality_rtt(rtt)) ++quality;
    best = std::min(best, rtt);
  }
  EXPECT_EQ(result.messages, expected_messages);
  EXPECT_EQ(result.quality_paths, quality);
  EXPECT_EQ(result.shortest_rtt_ms, best);
}

TEST_F(BaselineFixture, DediIsDeterministicPerSession) {
  DediSelector dedi(*world, 40);
  const auto& s = sessions[1];
  auto r1 = dedi.select(s);
  auto r2 = dedi.select(s);
  EXPECT_EQ(r1.quality_paths, r2.quality_paths);
  EXPECT_EQ(r1.shortest_rtt_ms, r2.shortest_rtt_ms);
  EXPECT_EQ(r1.messages, 80u);
}

TEST_F(BaselineFixture, RandProbesTheConfiguredBudget) {
  RandSelector rand(*world, 50, world->fork_rng(5));
  auto result = rand.select(sessions[2]);
  // Up to 2*50 messages (candidates colliding with endpoints are skipped).
  EXPECT_LE(result.messages, 100u);
  EXPECT_GE(result.messages, 96u);
  EXPECT_LE(result.quality_paths, 50u);
}

TEST_F(BaselineFixture, MixCombinesPools) {
  MixSelector mix(*world, 20, 30, world->fork_rng(6));
  auto result = mix.select(sessions[3]);
  EXPECT_LE(result.messages, 100u);
  EXPECT_GE(result.messages, 90u);
}

TEST_F(BaselineFixture, OptOneHopDominatesEveryOtherSelector) {
  OptSelector opt(*world, 32);
  DediSelector dedi(*world, 40);
  RandSelector rand(*world, 100, world->fork_rng(7));
  for (std::size_t i = 0; i < std::min<std::size_t>(latent.size(), 10); ++i) {
    auto best = opt.select(latent[i]);
    EXPECT_LE(best.shortest_rtt_ms, dedi.select(latent[i]).shortest_rtt_ms + 40.0 + 1e-6)
        << "OPT uses delegates; allow one relay-delay slack vs surrogate pools";
    // Against the same delegate universe RAND samples from, OPT wins.
    auto r = rand.select(latent[i]);
    EXPECT_LE(best.shortest_rtt_ms,
              r.shortest_rtt_ms + 200.0);  // loose: pools differ (members vs delegates)
    EXPECT_EQ(best.messages, 0u) << "OPT is offline";
  }
}

TEST_F(BaselineFixture, OptTwoHopNeverHurts) {
  OptSelector with_two_hop(*world, 32, true);
  OptSelector one_hop_only(*world, 32, false);
  for (std::size_t i = 0; i < std::min<std::size_t>(latent.size(), 10); ++i) {
    EXPECT_LE(with_two_hop.select(latent[i]).shortest_rtt_ms,
              one_hop_only.select(latent[i]).shortest_rtt_ms + 1e-6);
  }
}

TEST_F(BaselineFixture, AsapSelectorAgreesWithCoreAlgorithm) {
  core::AsapParams params;
  AsapSelector selector(*world, params, world->fork_rng(8));
  const auto& s = sessions[4];
  auto result = selector.select(s);
  EXPECT_EQ(result.quality_paths, selector.last_detail().quality_paths());
  EXPECT_EQ(result.messages, selector.last_detail().messages);
  EXPECT_EQ(result.shortest_rtt_ms, selector.last_detail().best.rtt_ms);
}

TEST_F(BaselineFixture, NamesAreStable) {
  EXPECT_EQ(DediSelector(*world, 4).name(), "DEDI");
  EXPECT_EQ(RandSelector(*world, 4, world->fork_rng(9)).name(), "RAND");
  EXPECT_EQ(MixSelector(*world, 2, 2, world->fork_rng(10)).name(), "MIX");
  EXPECT_EQ(OptSelector(*world, 4).name(), "OPT");
  EXPECT_EQ(AsapSelector(*world, core::AsapParams{}, world->fork_rng(11)).name(), "ASAP");
}

}  // namespace
}  // namespace asap::relay
