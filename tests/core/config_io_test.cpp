#include "core/config_io.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace asap::core {
namespace {

TEST(ConfigIo, DefaultsWhenEmpty) {
  auto config = parse_config("");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->world.seed, 20050926ull);
  EXPECT_EQ(config->asap.k, 4);
  EXPECT_EQ(config->sessions, 100000u);
}

TEST(ConfigIo, ParsesKeysCommentsAndWhitespace) {
  auto config = parse_config(R"(
# experiment
seed = 42          # trailing comment
topo.total_as=1234
pop.total_peers   =   9999
asap.k = 3
asap.lat_threshold_ms = 250.5
asap.valley_free = false
pop.nat_enabled = true
)");
  ASSERT_TRUE(config.has_value()) << (config ? "" : config.error().message);
  EXPECT_EQ(config->world.seed, 42u);
  EXPECT_EQ(config->world.topo.total_as, 1234u);
  EXPECT_EQ(config->world.pop.total_peers, 9999u);
  EXPECT_EQ(config->asap.k, 3);
  EXPECT_DOUBLE_EQ(config->asap.lat_threshold_ms, 250.5);
  EXPECT_FALSE(config->asap.valley_free);
  EXPECT_TRUE(config->world.pop.nat_enabled);
}

TEST(ConfigIo, RejectsUnknownKeyAndBadValues) {
  auto unknown = parse_config("definitely.a.typo = 1\n");
  ASSERT_FALSE(unknown.has_value());
  EXPECT_NE(unknown.error().message.find("unknown key"), std::string::npos);

  EXPECT_FALSE(parse_config("asap.k = banana\n").has_value());
  EXPECT_FALSE(parse_config("asap.valley_free = maybe\n").has_value());
  EXPECT_FALSE(parse_config("just some text\n").has_value());
}

TEST(ConfigIo, SerializeParseRoundTrip) {
  ExperimentConfig original;
  original.world.seed = 7;
  original.world.topo.total_as = 777;
  original.world.pop.nat_enabled = true;
  original.asap.k = 5;
  original.asap.probe_fraction = 0.25;
  original.sessions = 1234;
  original.world.pop.sharded_generation = true;
  original.world.pop.generation_threads = 4;
  original.world.oracle_cache.budget_bytes = 256u << 20;
  original.world.oracle_cache.compact_tables = true;
  auto back = parse_config(serialize_config(original));
  ASSERT_TRUE(back.has_value()) << (back ? "" : back.error().message);
  EXPECT_EQ(back->world.seed, 7u);
  EXPECT_EQ(back->world.topo.total_as, 777u);
  EXPECT_TRUE(back->world.pop.nat_enabled);
  EXPECT_EQ(back->asap.k, 5);
  EXPECT_DOUBLE_EQ(back->asap.probe_fraction, 0.25);
  EXPECT_EQ(back->sessions, 1234u);
  EXPECT_TRUE(back->world.pop.sharded_generation);
  EXPECT_EQ(back->world.pop.generation_threads, 4u);
  EXPECT_EQ(back->world.oracle_cache.budget_bytes, 256u << 20);
  EXPECT_TRUE(back->world.oracle_cache.compact_tables);
}

TEST(ConfigIo, ParsesMemoryArchitectureKnobs) {
  auto config = parse_config(R"(
oracle.cache_budget_bytes = 1048576
oracle.compact_tables = true
pop.sharded_generation = true
pop.generation_threads = 2
)");
  ASSERT_TRUE(config.has_value()) << (config ? "" : config.error().message);
  EXPECT_EQ(config->world.oracle_cache.budget_bytes, 1048576u);
  EXPECT_TRUE(config->world.oracle_cache.compact_tables);
  EXPECT_TRUE(config->world.pop.sharded_generation);
  EXPECT_EQ(config->world.pop.generation_threads, 2u);
  // Defaults stay off: historical configs keep the unbounded float cache.
  auto defaults = parse_config("");
  ASSERT_TRUE(defaults.has_value());
  EXPECT_EQ(defaults->world.oracle_cache.budget_bytes, 0u);
  EXPECT_FALSE(defaults->world.oracle_cache.compact_tables);
  EXPECT_FALSE(defaults->world.pop.sharded_generation);
}

TEST(ConfigIo, ParsesFailoverTimingKnobs) {
  auto config = parse_config(R"(
asap.probe_timeout_ms = 1500
asap.keepalive_interval_ms = 120
asap.failover_backoff_base_ms = 250
asap.failover_max_retries = 7
asap.max_backup_relays = 5
)");
  ASSERT_TRUE(config.has_value()) << (config ? "" : config.error().message);
  EXPECT_DOUBLE_EQ(config->asap.probe_timeout_ms, 1500.0);
  EXPECT_DOUBLE_EQ(config->asap.keepalive_interval_ms, 120.0);
  EXPECT_DOUBLE_EQ(config->asap.failover_backoff_base_ms, 250.0);
  EXPECT_EQ(config->asap.failover_max_retries, 7u);
  EXPECT_EQ(config->asap.max_backup_relays, 5u);
}

TEST(ConfigIo, RejectsNonPositiveTimeouts) {
  auto timeout = parse_config("asap.probe_timeout_ms = 0\n");
  ASSERT_FALSE(timeout.has_value());
  EXPECT_NE(timeout.error().message.find("probe_timeout_ms"), std::string::npos);

  auto keepalive = parse_config("asap.keepalive_interval_ms = -5\n");
  ASSERT_FALSE(keepalive.has_value());
  EXPECT_NE(keepalive.error().message.find("keepalive_interval_ms"), std::string::npos);

  auto backoff = parse_config(
      "asap.keepalive_interval_ms = 0.0001\n"
      "asap.failover_backoff_base_ms = 0\n");
  ASSERT_FALSE(backoff.has_value());
  EXPECT_NE(backoff.error().message.find("failover_backoff_base_ms"), std::string::npos);
}

TEST(ConfigIo, RejectsBackoffShorterThanKeepalive) {
  auto config = parse_config(
      "asap.keepalive_interval_ms = 500\n"
      "asap.failover_backoff_base_ms = 100\n");
  ASSERT_FALSE(config.has_value());
  // The error must explain the constraint, not just state it.
  EXPECT_NE(config.error().message.find("keepalive"), std::string::npos);
  EXPECT_NE(config.error().message.find("500"), std::string::npos);
  // Equal values are allowed.
  EXPECT_TRUE(parse_config("asap.keepalive_interval_ms = 500\n"
                           "asap.failover_backoff_base_ms = 500\n")
                  .has_value());
}

TEST(ConfigIo, ParsesQualityFailoverKnobs) {
  auto config = parse_config(R"(
asap.quality_failover.enabled = true
asap.quality_failover.trigger_mos = 2.5
asap.quality_failover.recover_mos = 3.1
asap.quality_failover.window_ms = 600
asap.quality_failover.cooldown_ms = 2500
asap.quality_failover.ewma_alpha = 0.2
asap.quality_failover.min_packets = 25
)");
  ASSERT_TRUE(config.has_value()) << (config ? "" : config.error().message);
  EXPECT_TRUE(config->asap.quality_failover);
  EXPECT_DOUBLE_EQ(config->asap.quality_trigger_mos, 2.5);
  EXPECT_DOUBLE_EQ(config->asap.quality_recover_mos, 3.1);
  EXPECT_DOUBLE_EQ(config->asap.quality_window_ms, 600.0);
  EXPECT_DOUBLE_EQ(config->asap.quality_cooldown_ms, 2500.0);
  EXPECT_DOUBLE_EQ(config->asap.quality_ewma_alpha, 0.2);
  EXPECT_EQ(config->asap.quality_min_packets, 25u);
  // Round-trips through serialize like every other key.
  auto back = parse_config(serialize_config(*config));
  ASSERT_TRUE(back.has_value()) << (back ? "" : back.error().message);
  EXPECT_TRUE(back->asap.quality_failover);
  EXPECT_DOUBLE_EQ(back->asap.quality_window_ms, 600.0);
  EXPECT_EQ(back->asap.quality_min_packets, 25u);
  // Off by default.
  auto defaults = parse_config("");
  ASSERT_TRUE(defaults.has_value());
  EXPECT_FALSE(defaults->asap.quality_failover);
}

TEST(ConfigIo, RejectsInvertedQualityHysteresis) {
  // trigger >= recover removes the hysteresis band: a path oscillating
  // around one threshold would flap the route.
  auto bad = parse_config(
      "asap.quality_failover.enabled = 1\n"
      "asap.quality_failover.trigger_mos = 3.5\n"
      "asap.quality_failover.recover_mos = 3.0\n");
  ASSERT_FALSE(bad.has_value());
  EXPECT_NE(bad.error().message.find("trigger_mos"), std::string::npos);
  EXPECT_NE(bad.error().message.find("hysteresis"), std::string::npos);
  // Equal thresholds are rejected too (no band at all).
  EXPECT_FALSE(parse_config("asap.quality_failover.enabled = 1\n"
                            "asap.quality_failover.trigger_mos = 3.0\n"
                            "asap.quality_failover.recover_mos = 3.0\n")
                   .has_value());
  // With the detector off the same values are inert and accepted.
  EXPECT_TRUE(parse_config("asap.quality_failover.trigger_mos = 3.5\n"
                           "asap.quality_failover.recover_mos = 3.0\n")
                  .has_value());
}

TEST(ConfigIo, RejectsQualityWindowShorterThanKeepalive) {
  auto bad = parse_config(
      "asap.quality_failover.enabled = 1\n"
      "asap.keepalive_interval_ms = 400\n"
      "asap.failover_backoff_base_ms = 400\n"
      "asap.quality_failover.window_ms = 200\n");
  ASSERT_FALSE(bad.has_value());
  EXPECT_NE(bad.error().message.find("window_ms"), std::string::npos);
  EXPECT_NE(bad.error().message.find("keepalive"), std::string::npos);
  // Equal is the boundary and allowed.
  EXPECT_TRUE(parse_config("asap.quality_failover.enabled = 1\n"
                           "asap.keepalive_interval_ms = 400\n"
                           "asap.failover_backoff_base_ms = 400\n"
                           "asap.quality_failover.window_ms = 400\n")
                  .has_value());
}

TEST(ConfigIo, RejectsQualityCooldownShorterThanBackoff) {
  auto bad = parse_config(
      "asap.quality_failover.enabled = 1\n"
      "asap.failover_backoff_base_ms = 1000\n"
      "asap.quality_failover.cooldown_ms = 500\n");
  ASSERT_FALSE(bad.has_value());
  EXPECT_NE(bad.error().message.find("cooldown_ms"), std::string::npos);
  EXPECT_NE(bad.error().message.find("backoff"), std::string::npos);
}

TEST(ConfigIo, RejectsBadQualityEstimatorKnobs) {
  EXPECT_FALSE(parse_config("asap.quality_failover.enabled = 1\n"
                            "asap.quality_failover.ewma_alpha = 0\n")
                   .has_value());
  EXPECT_FALSE(parse_config("asap.quality_failover.enabled = 1\n"
                            "asap.quality_failover.ewma_alpha = 1.5\n")
                   .has_value());
  EXPECT_FALSE(parse_config("asap.quality_failover.enabled = 1\n"
                            "asap.quality_failover.min_packets = 0\n")
                   .has_value());
  // alpha = 1 (no smoothing) is the boundary and allowed.
  EXPECT_TRUE(parse_config("asap.quality_failover.enabled = 1\n"
                           "asap.quality_failover.ewma_alpha = 1\n")
                  .has_value());
}

TEST(ConfigIo, ParsesOverlayKnobs) {
  auto config = parse_config(R"(
overlay.tier = federated
overlay.gossip_period_ms = 15000
overlay.ib_ttl_ms = 60000
overlay.via_budget = 2
)");
  ASSERT_TRUE(config.has_value()) << (config ? "" : config.error().message);
  EXPECT_EQ(config->overlay.tier, "federated");
  EXPECT_DOUBLE_EQ(config->overlay.gossip_period_ms, 15000.0);
  EXPECT_DOUBLE_EQ(config->overlay.ib_ttl_ms, 60000.0);
  EXPECT_EQ(config->overlay.via_budget, 2u);
  // Round-trips through serialize like every other key.
  auto back = parse_config(serialize_config(*config));
  ASSERT_TRUE(back.has_value()) << (back ? "" : back.error().message);
  EXPECT_EQ(back->overlay.tier, "federated");
  EXPECT_DOUBLE_EQ(back->overlay.gossip_period_ms, 15000.0);
  EXPECT_EQ(back->overlay.via_budget, 2u);
  // The flat control plane stays the default: historical configs are
  // untouched by the overlay redesign.
  auto defaults = parse_config("");
  ASSERT_TRUE(defaults.has_value());
  EXPECT_EQ(defaults->overlay.tier, "flat");
}

TEST(ConfigIo, RejectsOverlayMisconfiguration) {
  // Unknown tier names fail like unknown keys do.
  EXPECT_FALSE(parse_config("overlay.tier = hierarchical\n").has_value());

  // A federated plane needs a positive gossip period...
  auto period = parse_config(
      "overlay.tier = federated\n"
      "overlay.gossip_period_ms = 0\n");
  ASSERT_FALSE(period.has_value());
  EXPECT_NE(period.error().message.find("gossip_period_ms"), std::string::npos);

  // ...and a TTL no shorter than it, or every IB entry expires between
  // rounds and the plane degenerates to per-call fetches.
  auto ttl = parse_config(
      "overlay.tier = federated\n"
      "overlay.gossip_period_ms = 30000\n"
      "overlay.ib_ttl_ms = 1000\n");
  ASSERT_FALSE(ttl.has_value());
  EXPECT_NE(ttl.error().message.find("ib_ttl_ms"), std::string::npos);
  EXPECT_NE(ttl.error().message.find("gossip_period_ms"), std::string::npos);

  // The via budget is bounded by the wire RelayChoice (relay1/relay2).
  auto budget = parse_config("overlay.via_budget = 9\n");
  ASSERT_FALSE(budget.has_value());
  EXPECT_NE(budget.error().message.find("via_budget"), std::string::npos);

  // With the flat tier the federated-only constraints are inert.
  EXPECT_TRUE(parse_config("overlay.gossip_period_ms = 0\n").has_value());
}

TEST(ConfigIo, AdmissionControlRequiresCapacityModel) {
  // Class-of-service admission only acts through relay-capacity pressure;
  // enabling it with the capacity model off is a configuration error.
  auto bad = parse_config("asap.admission_control = 1\n");
  ASSERT_FALSE(bad.has_value());
  EXPECT_NE(bad.error().message.find("admission_control"), std::string::npos);

  auto good = parse_config(
      "asap.admission_control = 1\n"
      "asap.relay_streams_per_capacity = 0.5\n");
  ASSERT_TRUE(good.has_value()) << (good ? "" : good.error().message);
  EXPECT_TRUE(good->asap.admission_control);
}

TEST(ConfigIo, FileRoundTrip) {
  const char* path = "config_io_test_tmp.conf";
  ExperimentConfig config;
  config.world.seed = 99;
  ASSERT_TRUE(save_config_file(path, config));
  auto back = load_config_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->world.seed, 99u);
  std::remove(path);
  EXPECT_FALSE(load_config_file("does_not_exist.conf").has_value());
}

}  // namespace
}  // namespace asap::core
