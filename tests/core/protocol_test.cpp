#include "core/protocol.h"

#include <gtest/gtest.h>

#include "population/session_gen.h"
#include "relay/baselines.h"

namespace asap::core {
namespace {

population::WorldParams small_params() {
  population::WorldParams params;
  params.seed = 121;
  params.topo.total_as = 400;
  params.pop.host_as_count = 100;
  params.pop.total_peers = 1500;
  return params;
}

struct ProtocolFixture : public ::testing::Test {
  void SetUp() override {
    world = std::make_unique<population::World>(small_params());
    // A lower latency threshold guarantees relay-selection sessions even in
    // this small test world (which may have no >300 ms pairs).
    params.lat_threshold_ms = 200.0;
    system = std::make_unique<AsapSystem>(*world, params, 2);
    system->join_all();
    Rng rng = world->fork_rng(2);
    sessions = population::generate_sessions(*world, 2000, rng);
    latent = population::latent_sessions(sessions, params.lat_threshold_ms);
  }

  std::unique_ptr<population::World> world;
  AsapParams params;
  std::unique_ptr<AsapSystem> system;
  std::vector<population::Session> sessions;
  std::vector<population::Session> latent;
};

TEST_F(ProtocolFixture, AllHostsJoinViaBootstrap) {
  for (std::uint32_t i = 0; i < world->pop().peer_count(); ++i) {
    EXPECT_TRUE(system->is_joined(HostId(i)));
  }
  // Join request + reply per host, plus publishes.
  auto joins = system->counter().count(sim::MessageCategory::kJoin);
  EXPECT_GE(joins, 2 * world->pop().peer_count());
  EXPECT_GT(system->counter().count(sim::MessageCategory::kPublish), 0u);
}

TEST_F(ProtocolFixture, DirectQualityCallSkipsRelaySelection) {
  // Find a clearly-good direct session.
  const population::Session* good = nullptr;
  for (const auto& s : sessions) {
    if (s.direct_rtt_ms < 0.6 * params.lat_threshold_ms) {
      good = &s;
      break;
    }
  }
  ASSERT_NE(good, nullptr);
  auto outcome = system->call(good->caller, good->callee, 200.0);
  EXPECT_TRUE(outcome.completed);
  EXPECT_FALSE(outcome.used_relay);
  // Measured ping approximates ground truth.
  EXPECT_NEAR(outcome.direct_rtt_ms, good->direct_rtt_ms, 5.0);
  EXPECT_EQ(outcome.voice_packets_received, outcome.voice_packets_sent);
  // Voice one-way is about half the RTT.
  EXPECT_NEAR(outcome.mean_voice_one_way_ms, good->direct_rtt_ms / 2.0, 5.0);
}

TEST_F(ProtocolFixture, LatentCallUsesRelayAndImproves) {
  if (latent.empty()) GTEST_SKIP() << "no latent session in this world";
  const auto& s = latent.front();
  auto outcome = system->call(s.caller, s.callee, 200.0);
  EXPECT_TRUE(outcome.completed);
  EXPECT_GT(outcome.direct_rtt_ms, params.lat_threshold_ms * 0.9);
  if (outcome.used_relay) {
    EXPECT_TRUE(outcome.relay.relay1.valid());
    EXPECT_LT(outcome.relay.rtt_ms, s.direct_rtt_ms);
    // Voice actually flowed through the relay with the modelled delay.
    EXPECT_EQ(outcome.voice_packets_received, outcome.voice_packets_sent);
    EXPECT_NEAR(outcome.mean_voice_one_way_ms,
                world->relay_rtt_ms(s.caller, outcome.relay.relay1, s.callee) / 2.0, 25.0);
  }
  EXPECT_GT(outcome.control_messages, 0u);
}

TEST_F(ProtocolFixture, ProtocolMessagesMatchAlgorithmicAccounting) {
  // The message-level simulation and the algorithmic layer should agree on
  // the order of magnitude of per-session control traffic for relay calls.
  if (latent.empty()) GTEST_SKIP();
  const auto& s = latent.front();

  CloseSetCache cache(*world, params);
  Rng rng(3);
  auto algo = select_close_relay(*world, cache, s, rng);

  auto outcome = system->call(s.caller, s.callee, 100.0);
  ASSERT_TRUE(outcome.completed);
  // Protocol adds the initial ping, join-cache effects and close-set
  // request/reply pairs; both counts must land in the same regime.
  EXPECT_GT(outcome.control_messages, 2u);
  EXPECT_LT(outcome.control_messages, algo.messages + 50);
}

TEST_F(ProtocolFixture, SecondCallReusesCachedCloseSets) {
  if (latent.size() < 1) GTEST_SKIP();
  const auto& s = latent.front();
  auto first = system->call(s.caller, s.callee, 100.0);
  auto second = system->call(s.caller, s.callee, 100.0);
  ASSERT_TRUE(first.completed);
  ASSERT_TRUE(second.completed);
  EXPECT_LE(second.control_messages, first.control_messages);
}

TEST_F(ProtocolFixture, SurrogateFailureTriggersElectionAndCallStillWorks) {
  if (latent.empty()) GTEST_SKIP();
  // Pick a latent session whose caller's cluster has several members and
  // whose caller is not the surrogate itself.
  const population::Session* chosen = nullptr;
  for (const auto& s : latent) {
    ClusterId c = world->pop().peer(s.caller).cluster;
    if (world->pop().cluster(c).members.size() >= 3 &&
        world->pop().cluster(c).surrogate != s.caller) {
      chosen = &s;
      break;
    }
  }
  if (chosen == nullptr) GTEST_SKIP() << "no suitable session";

  ClusterId cluster = world->pop().peer(chosen->caller).cluster;
  HostId old_surrogate = world->pop().cluster(cluster).surrogate;
  system->fail_surrogate(cluster);
  auto outcome = system->call(chosen->caller, chosen->callee, 100.0);
  EXPECT_TRUE(outcome.completed);
  EXPECT_GE(system->metrics().value("host.surrogate_timeouts"), 1u);
  EXPECT_GE(system->metrics().value("bootstrap.surrogates_elected"), 1u);
  EXPECT_NE(world->pop().cluster(cluster).surrogate, old_surrogate);
  EXPECT_TRUE(world->pop().cluster(cluster).surrogate.valid());
}

TEST_F(ProtocolFixture, TwoHopExpansionRunsOverTheWire) {
  if (latent.empty()) GTEST_SKIP();
  // A huge sizeT forces the two-hop phase for every relay call; the
  // protocol must fetch OS surrogates' close sets over the network and may
  // pick a two-hop route, streaming voice through both relays.
  AsapParams forced = params;
  forced.size_threshold = std::numeric_limits<std::uint32_t>::max();
  AsapSystem two_hop_system(*world, forced, 2);
  two_hop_system.join_all();

  auto before = two_hop_system.counter().count(sim::MessageCategory::kCloseSet);
  bool saw_two_hop = false;
  std::size_t calls = 0;
  for (const auto& s : latent) {
    if (calls >= 6) break;
    ++calls;
    auto outcome = run_call(two_hop_system, s.caller, s.callee, 200.0);
    EXPECT_TRUE(outcome.completed);
    if (outcome.used_relay && outcome.relay.relay2.valid()) {
      saw_two_hop = true;
      EXPECT_TRUE(outcome.relay.relay1.valid());
      // Voice went through two relays: every packet still arrives, and the
      // mean one-way matches the two-hop path.
      EXPECT_EQ(outcome.voice_packets_received, outcome.voice_packets_sent);
      Millis expected = world->relay2_rtt_ms(s.caller, outcome.relay.relay1,
                                             outcome.relay.relay2, s.callee) / 2.0;
      EXPECT_NEAR(outcome.mean_voice_one_way_ms, expected, 30.0);
    }
  }
  auto after = two_hop_system.counter().count(sim::MessageCategory::kCloseSet);
  EXPECT_GT(after, before + 2 * calls)
      << "two-hop fetches must generate extra close-set traffic";
  (void)saw_two_hop;  // two-hop winning is world-dependent; traffic is not
}

TEST_F(ProtocolFixture, ExplicitViaRouteCommitsTwoHopChain) {
  // Via-tier source routing (DESIGN.md §15): a CallSpec with an explicit
  // two-relay chain skips discovery, announces the route with a ViaSetup
  // frame and streams voice hop by hop — the sim twin of the asap-relay
  // daemon's --via-peer configuration (socket_loopback_test).
  AsapParams via_params = params;
  via_params.via_source_routing = true;
  AsapSystem via_system(*world, via_params, 2);
  via_system.join_all();

  const auto& s = sessions.front();
  auto relays = relay::dedicated_nodes(world->relay_directory(), 8);
  CallSpec spec;
  spec.caller = s.caller;
  spec.callee = s.callee;
  spec.voice_duration_ms = 200.0;
  for (HostId h : relays) {
    if (h == s.caller || h == s.callee) continue;
    spec.via_route.push_back(h);
    if (spec.via_route.size() == 2) break;
  }
  ASSERT_EQ(spec.via_route.size(), 2u);

  auto outcome = run_call(via_system, spec);
  EXPECT_TRUE(outcome.completed);
  EXPECT_TRUE(outcome.used_relay);
  ASSERT_TRUE(outcome.relay.is_two_hop());
  EXPECT_EQ(outcome.relay.relay1, spec.via_route[0]);
  EXPECT_EQ(outcome.relay.relay2, spec.via_route[1]);
  // Voice flowed through both relays: nothing lost, and the mean one-way
  // matches the two-hop path model.
  EXPECT_EQ(outcome.voice_packets_received, outcome.voice_packets_sent);
  Millis expected = world->relay2_rtt_ms(s.caller, spec.via_route[0],
                                         spec.via_route[1], s.callee) / 2.0;
  EXPECT_NEAR(outcome.mean_voice_one_way_ms, expected, 30.0);
  EXPECT_EQ(outcome.relay.rtt_ms,
            world->relay2_rtt_ms(s.caller, spec.via_route[0], spec.via_route[1],
                                 s.callee));
}

TEST_F(ProtocolFixture, ViaRouteIgnoredWhenSourceRoutingOff) {
  // The gate that keeps default workloads bit-identical: without
  // via_source_routing, an explicit route is ignored and the call runs the
  // normal discovery flow.
  const auto& s = sessions.front();
  auto relays = relay::dedicated_nodes(world->relay_directory(), 4);
  ASSERT_FALSE(relays.empty());

  CallSpec plain;
  plain.caller = s.caller;
  plain.callee = s.callee;
  plain.voice_duration_ms = 200.0;
  CallSpec routed = plain;
  routed.via_route = {relays.front()};

  AsapSystem a(*world, params, 2);
  a.join_all();
  auto without = run_call(a, plain);
  AsapSystem b(*world, params, 2);
  b.join_all();
  auto with = run_call(b, routed);
  EXPECT_EQ(without.completed, with.completed);
  EXPECT_EQ(without.used_relay, with.used_relay);
  EXPECT_EQ(without.relay.relay1, with.relay.relay1);
  EXPECT_EQ(without.control_messages, with.control_messages);
}

TEST_F(ProtocolFixture, VoicePacketsCarrySimulatedLatency) {
  const auto& s = sessions.front();
  auto outcome = system->call(s.caller, s.callee, 400.0);
  ASSERT_TRUE(outcome.completed);
  EXPECT_EQ(outcome.voice_packets_sent, 20u);  // 400 ms at 50 pps
  EXPECT_GT(outcome.mean_voice_one_way_ms, 0.0);
}

}  // namespace
}  // namespace asap::core
