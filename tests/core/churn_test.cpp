// Failure-injection tests: the protocol must degrade gracefully, never
// deadlock, when hosts crash before or during calls.
#include <gtest/gtest.h>

#include "core/protocol.h"
#include "population/session_gen.h"

namespace asap::core {
namespace {

population::WorldParams small_params() {
  population::WorldParams params;
  params.seed = 191;
  params.topo.total_as = 400;
  params.pop.host_as_count = 100;
  params.pop.total_peers = 1500;
  // Low threshold so multi-surrogate clusters exist in this small world
  // (the secondary-failover test needs one).
  params.pop.members_per_surrogate = 40;
  return params;
}

struct ChurnFixture : public ::testing::Test {
  void SetUp() override {
    world = std::make_unique<population::World>(small_params());
    params.lat_threshold_ms = 200.0;  // guarantee relay sessions exist
    system = std::make_unique<AsapSystem>(*world, params, 2);
    system->join_all();
    Rng rng = world->fork_rng(2);
    sessions = population::generate_sessions(*world, 2000, rng);
    latent = population::latent_sessions(sessions, params.lat_threshold_ms);
  }

  std::unique_ptr<population::World> world;
  AsapParams params;
  std::unique_ptr<AsapSystem> system;
  std::vector<population::Session> sessions;
  std::vector<population::Session> latent;
};

TEST_F(ChurnFixture, DeadCalleeDoesNotHangTheCaller) {
  const auto& s = sessions.front();
  system->fail_host(s.callee);
  auto outcome = system->call(s.caller, s.callee, 200.0);
  // The direct ping times out; with an unreachable callee the call cannot
  // complete, but the simulation must terminate cleanly.
  EXPECT_EQ(outcome.voice_packets_received, 0u);
  EXPECT_FALSE(system->is_alive(s.callee));
}

TEST_F(ChurnFixture, RelayCrashMidCallFailsOverToBackup) {
  // Find a latent session that relays and retained at least one backup.
  for (const auto& s : latent) {
    auto probe_outcome = system->call(s.caller, s.callee, 100.0);
    if (!probe_outcome.used_relay || !probe_outcome.relay.relay1.valid()) continue;
    if (probe_outcome.backup_relays.empty()) continue;

    // Second call over the same pair: a fault plan kills the active relay
    // one second into the voice stream. The callee's keepalive gap fires,
    // the caller probes its ranked backups and the stream switches over.
    sim::FaultPlan plan;
    plan.add({1000.0, sim::FaultKind::kActiveRelayCrash, 0, 0.0, {}});
    system->arm_fault_plan(plan);
    auto outcome = system->call(s.caller, s.callee, 4000.0);
    EXPECT_TRUE(outcome.completed);
    ASSERT_GE(outcome.failovers, 1u) << "the call must switch to a backup relay";
    EXPECT_FALSE(outcome.failover_gave_up);
    EXPECT_GT(outcome.voice_packets_post_failover, 0u)
        << "voice must flow again after the switchover";
    EXPECT_LT(outcome.failover_latency_ms, kUnreachableMs);
    EXPECT_GT(outcome.failover_latency_ms, 0.0);
    EXPECT_GT(outcome.voice_gap_ms, 0.0) << "the crash must have left a gap";
    EXPECT_GT(outcome.failover_probes, 0u) << "backup probes are real messages";
    EXPECT_GT(outcome.mos_pre_fault, 1.0);
    EXPECT_GT(outcome.mos_post_failover, 1.0)
        << "post-failover segment carries voice, so it has a MOS";
    EXPECT_LT(outcome.voice_packets_received, outcome.voice_packets_sent)
        << "packets in the switchover window are still lost";
    return;
  }
  GTEST_SKIP() << "no relayed session with backups found in this world";
}

TEST_F(ChurnFixture, MassSurrogateFailureStillServesCallsDegraded) {
  // Kill the surrogates of 30 clusters, then place latent calls; every call
  // must terminate (relay selection may degrade to direct).
  const auto& pop = world->pop();
  std::size_t killed = 0;
  for (ClusterId c : pop.populated_clusters()) {
    if (killed >= 30) break;
    system->fail_surrogate(c);
    ++killed;
  }
  std::size_t completed = 0;
  std::size_t attempted = 0;
  for (const auto& s : latent) {
    if (attempted >= 3) break;
    ++attempted;
    auto outcome = system->call(s.caller, s.callee, 100.0);
    if (outcome.completed) ++completed;
  }
  EXPECT_EQ(completed, attempted) << "calls must always terminate";
}

TEST_F(ChurnFixture, FailedSecondaryIsReplacedOnDemand) {
  // Fail a non-primary surrogate of a multi-surrogate cluster and let one
  // of its assigned members fetch a close set: timeout -> report -> new
  // assignment.
  const auto& pop = world->pop();
  for (ClusterId c : pop.populated_clusters()) {
    const auto& cluster = pop.cluster(c);
    if (cluster.surrogates.size() < 2) continue;
    HostId secondary = cluster.surrogates[1];
    system->fail_host(secondary);
    // A member assigned to the dead secondary places a call that needs the
    // close set.
    HostId member = HostId::invalid();
    for (HostId h : cluster.members) {
      if (pop.assigned_surrogate(c, h) == secondary && h != secondary) {
        member = h;
        break;
      }
    }
    if (!member.valid()) continue;
    // Call someone far enough to require relay selection.
    for (const auto& s : latent) {
      auto outcome = system->call(member, s.callee, 100.0);
      EXPECT_TRUE(outcome.completed);
      break;
    }
    EXPECT_GE(system->metrics().value("host.surrogate_timeouts") +
                  system->metrics().value("bootstrap.surrogates_elected"),
              0u);  // flow exercised without deadlock
    return;
  }
  GTEST_SKIP() << "no multi-surrogate cluster in this world";
}

}  // namespace
}  // namespace asap::core
