#include "core/select_relay.h"

#include <gtest/gtest.h>

#include "population/session_gen.h"

namespace asap::core {
namespace {

population::WorldParams small_params() {
  population::WorldParams params;
  params.seed = 111;
  params.topo.total_as = 500;
  params.pop.host_as_count = 120;
  params.pop.total_peers = 3000;
  return params;
}

struct SelectRelayFixture : public ::testing::Test {
  void SetUp() override {
    world = std::make_unique<population::World>(small_params());
    Rng rng = world->fork_rng(1);
    sessions = population::generate_sessions(*world, 3000, rng);
    latent = population::latent_sessions(sessions);
  }
  std::unique_ptr<population::World> world;
  std::vector<population::Session> sessions;
  std::vector<population::Session> latent;
};

TEST_F(SelectRelayFixture, AcceptedClustersComeFromBothCloseSets) {
  AsapParams params;
  CloseSetCache cache(*world, params);
  Rng rng(2);
  ASSERT_FALSE(sessions.empty());
  const auto& s = sessions.front();
  auto result = select_close_relay(*world, cache, s, rng);
  const auto& pop = world->pop();
  const CloseClusterSet& s1 = cache.get(pop.peer(s.caller).cluster);
  const CloseClusterSet& s2 = cache.get(pop.peer(s.callee).cluster);
  for (ClusterId c : result.one_hop_clusters) {
    EXPECT_TRUE(s1.contains(c));
    EXPECT_TRUE(s2.contains(c));
    // relaylat estimate below the threshold.
    Millis estimate = s1.find(c)->rtt_ms + s2.find(c)->rtt_ms +
                      2.0 * params.relay_delay_one_way_ms;
    EXPECT_LT(estimate, params.lat_threshold_ms);
  }
}

TEST_F(SelectRelayFixture, OneHopNodesSumClusterSizes) {
  AsapParams params;
  CloseSetCache cache(*world, params);
  Rng rng(3);
  const auto& s = sessions[1];
  auto result = select_close_relay(*world, cache, s, rng);
  std::uint64_t expected = 0;
  for (ClusterId c : result.one_hop_clusters) {
    expected += world->pop().cluster(c).members.size();
  }
  EXPECT_EQ(result.one_hop_nodes, expected);
  EXPECT_EQ(result.quality_paths(), result.one_hop_nodes + result.two_hop_pairs);
}

TEST_F(SelectRelayFixture, TwoHopTriggersExactlyBelowSizeThreshold) {
  AsapParams params;
  CloseSetCache cache(*world, params);
  Rng rng(4);
  for (std::size_t i = 0; i < std::min<std::size_t>(sessions.size(), 30); ++i) {
    auto result = select_close_relay(*world, cache, sessions[i], rng);
    EXPECT_EQ(result.two_hop_triggered, result.one_hop_nodes < params.size_threshold);
    if (!result.two_hop_triggered) {
      EXPECT_EQ(result.two_hop_pairs, 0u);
    }
  }
}

TEST_F(SelectRelayFixture, HugeSizeThresholdForcesTwoHopSearch) {
  AsapParams params;
  params.size_threshold = std::numeric_limits<std::uint32_t>::max();
  CloseSetCache cache(*world, params);
  Rng rng(5);
  const auto& s = sessions[2];
  auto result = select_close_relay(*world, cache, s, rng);
  EXPECT_TRUE(result.two_hop_triggered);
  // Two-hop fetches cost 2 messages per accepted one-hop cluster.
  EXPECT_GE(result.messages, 2 + 2 * result.one_hop_clusters.size());
}

TEST_F(SelectRelayFixture, BestRelayMeetsReportedRtt) {
  AsapParams params;
  CloseSetCache cache(*world, params);
  Rng rng(6);
  for (const auto& s : latent) {
    auto result = select_close_relay(*world, cache, s, rng);
    if (!result.best.found()) continue;
    Millis actual =
        result.best.is_two_hop()
            ? world->relay2_rtt_ms(s.caller, result.best.relay1, result.best.relay2, s.callee)
            : world->relay_rtt_ms(s.caller, result.best.relay1, s.callee);
    EXPECT_NEAR(result.best.rtt_ms, actual, 1e-6);
  }
}

TEST_F(SelectRelayFixture, MessageAccountingFormula) {
  AsapParams params;
  params.probe_fraction = 1.0;
  params.max_probe_clusters = 0;  // no cap
  CloseSetCache cache(*world, params);
  Rng rng(7);
  const auto& s = sessions[3];
  auto result = select_close_relay(*world, cache, s, rng);
  std::uint64_t expected = 2  // close-set exchange with the callee
                           + 2 * result.one_hop_clusters.size();  // verification probes
  if (result.two_hop_triggered) {
    expected += 2 * result.one_hop_clusters.size();  // close-set fetches
  }
  EXPECT_EQ(result.messages, expected);
}

TEST(ProbeQuotaTest, MatchesTrueCeilingAtFractionBoundaries) {
  // Regression: the old `* fraction + 0.999` pseudo-ceil truncated whenever
  // the product's fractional part was at most 0.001 — accepted=1000 with
  // fraction=0.0990001 yielded 99 instead of ceil(99.0001) = 100.
  EXPECT_EQ(probe_quota(1000, 0.0990001), 100u);
  // Exact products stay exact (no spurious +1 from the ceiling).
  EXPECT_EQ(probe_quota(1000, 0.1), 100u);
  EXPECT_EQ(probe_quota(1000, 0.099), 99u);
  EXPECT_EQ(probe_quota(10, 0.5), 5u);
  // Tiny fractions still probe at least one candidate.
  EXPECT_EQ(probe_quota(10, 0.05), 1u);
  EXPECT_EQ(probe_quota(1, 0.0001), 1u);
  // Boundary fractions: everything / nothing.
  EXPECT_EQ(probe_quota(7, 1.0), 7u);
  EXPECT_EQ(probe_quota(7, 1.5), 7u);
  EXPECT_EQ(probe_quota(7, 0.0), 0u);
  EXPECT_EQ(probe_quota(0, 0.5), 0u);
  // Clamped to the accepted-candidate count.
  EXPECT_EQ(probe_quota(3, 0.999999), 3u);
}

TEST_F(SelectRelayFixture, ProbeCapLimitsMessages) {
  AsapParams params;
  params.probe_fraction = 1.0;
  params.max_probe_clusters = 5;
  CloseSetCache cache(*world, params);
  Rng rng(8);
  // Find a session with plenty of candidates.
  for (const auto& s : sessions) {
    auto result = select_close_relay(*world, cache, s, rng);
    if (result.one_hop_clusters.size() > 10 && !result.two_hop_triggered) {
      EXPECT_EQ(result.messages, 2u + 2u * 5u);
      return;
    }
  }
  GTEST_SKIP() << "no session with >10 one-hop clusters in this world";
}

TEST_F(SelectRelayFixture, LowerLatencyThresholdShrinksResults) {
  AsapParams strict;
  strict.lat_threshold_ms = 150.0;
  AsapParams loose;
  loose.lat_threshold_ms = 400.0;
  CloseSetCache strict_cache(*world, strict);
  CloseSetCache loose_cache(*world, loose);
  Rng rng(9);
  std::uint64_t strict_paths = 0;
  std::uint64_t loose_paths = 0;
  for (std::size_t i = 0; i < std::min<std::size_t>(latent.size(), 10); ++i) {
    strict_paths += select_close_relay(*world, strict_cache, latent[i], rng).quality_paths();
    loose_paths += select_close_relay(*world, loose_cache, latent[i], rng).quality_paths();
  }
  EXPECT_LE(strict_paths, loose_paths);
}

TEST_F(SelectRelayFixture, BestPathBeatsDirectForMostLatentSessions) {
  AsapParams params;
  CloseSetCache cache(*world, params);
  Rng rng(10);
  if (latent.empty()) GTEST_SKIP() << "no latent sessions in this small world";
  std::size_t improved = 0;
  for (const auto& s : latent) {
    auto result = select_close_relay(*world, cache, s, rng);
    if (result.best.found() && result.best.rtt_ms < s.direct_rtt_ms) ++improved;
  }
  EXPECT_GT(improved * 2, latent.size()) << "ASAP should help most latent sessions";
}

}  // namespace
}  // namespace asap::core
