// Concurrency contract of CloseSetCache: get() may be hammered from many
// threads, each set is built exactly once, returned references are stable,
// and the probe-message accounting (the Fig. 18 overhead numbers) matches a
// serial cache exactly.
#include "core/close_cluster.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace asap::core {
namespace {

population::WorldParams small_params() {
  population::WorldParams params;
  params.seed = 131;
  params.topo.total_as = 500;
  params.pop.host_as_count = 120;
  params.pop.total_peers = 3000;
  return params;
}

struct CacheConcurrencyFixture : public ::testing::Test {
  void SetUp() override {
    world = std::make_unique<population::World>(small_params());
    clusters = world->pop().populated_clusters();
    if (clusters.size() > 40) clusters.resize(40);
  }
  std::unique_ptr<population::World> world;
  std::vector<ClusterId> clusters;
  AsapParams params;
};

TEST_F(CacheConcurrencyFixture, HammeredGetBuildsEachSetExactlyOnce) {
  CloseSetCache cache(*world, params);
  constexpr int kThreads = 8;
  constexpr int kRounds = 20;
  std::vector<std::vector<const CloseClusterSet*>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Every thread requests every cluster repeatedly, from a different
      // starting offset so first-touches collide across threads.
      seen[t].resize(clusters.size());
      for (int round = 0; round < kRounds; ++round) {
        for (std::size_t i = 0; i < clusters.size(); ++i) {
          std::size_t at = (i + static_cast<std::size_t>(t)) % clusters.size();
          const CloseClusterSet& set = cache.get(clusters[at]);
          EXPECT_EQ(set.owner, clusters[at]);
          if (round == 0) {
            seen[t][at] = &set;
          } else {
            EXPECT_EQ(seen[t][at], &set) << "reference must be stable";
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  // Built exactly once per distinct cluster requested, never more.
  EXPECT_EQ(cache.built_count(), clusters.size());
  // All threads observed the same set instances.
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
}

TEST_F(CacheConcurrencyFixture, ProbeAccountingMatchesSerialCache) {
  CloseSetCache concurrent(*world, params);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (ClusterId c : clusters) concurrent.get(c);
    });
  }
  for (auto& thread : threads) thread.join();

  CloseSetCache serial(*world, params);
  for (ClusterId c : clusters) serial.get(c);

  EXPECT_EQ(concurrent.built_count(), serial.built_count());
  EXPECT_EQ(concurrent.total_probe_messages(), serial.total_probe_messages());
  for (ClusterId c : clusters) {
    EXPECT_EQ(concurrent.get(c).entries.size(), serial.get(c).entries.size());
  }
}

}  // namespace
}  // namespace asap::core
